open Tgd_syntax
open Tgd_instance

let x = Variable.make "x"
let y = Variable.make "y"
let z = Variable.make "z"

let e i = Relation.make (Printf.sprintf "E%d" i) 2

let chain_schema k = Schema.make (List.init (k + 1) e)

let linear_chain k =
  List.init k (fun i ->
      Tgd.make ~body:[ Atom.of_vars (e i) [ x; y ] ]
        ~head:[ Atom.of_vars (e (i + 1)) [ x; y ] ])

let existential_chain k =
  List.init k (fun i ->
      Tgd.make ~body:[ Atom.of_vars (e i) [ x; y ] ]
        ~head:[ Atom.of_vars (e (i + 1)) [ y; z ] ])

let transitive_closure =
  let edge = Relation.make "E" 2 in
  [ Tgd.make
      ~body:[ Atom.of_vars edge [ x; y ]; Atom.of_vars edge [ y; z ] ]
      ~head:[ Atom.of_vars edge [ x; z ] ]
  ]

let indexed name i arity = Relation.make (Printf.sprintf "%s%d" name i) arity

let guarded_rewritable k =
  List.concat
    (List.init k (fun i ->
         let r = indexed "R" i 2 in
         let p = indexed "P" i 1 in
         let t = indexed "T" i 1 in
         [ Tgd.make ~body:[ Atom.of_vars r [ x; y ] ] ~head:[ Atom.of_vars p [ x ] ];
           Tgd.make
             ~body:[ Atom.of_vars r [ x; y ]; Atom.of_vars p [ x ] ]
             ~head:[ Atom.of_vars t [ x ] ]
         ]))

let guarded_rewritable_expected k =
  List.concat
    (List.init k (fun i ->
         let r = indexed "R" i 2 in
         let p = indexed "P" i 1 in
         let t = indexed "T" i 1 in
         [ Tgd.make ~body:[ Atom.of_vars r [ x; y ] ] ~head:[ Atom.of_vars p [ x ] ];
           Tgd.make ~body:[ Atom.of_vars r [ x; y ] ] ~head:[ Atom.of_vars t [ x ] ]
         ]))

let guarded_unrewritable k =
  List.init k (fun i ->
      let r = indexed "R" i 1 in
      let p = indexed "P" i 1 in
      let t = indexed "T" i 1 in
      Tgd.make
        ~body:[ Atom.of_vars r [ x ]; Atom.of_vars p [ x ] ]
        ~head:[ Atom.of_vars t [ x ] ])

let fg_rewritable k =
  List.concat
    (List.init k (fun i ->
         let r = indexed "R" i 2 in
         let s = indexed "S" i 2 in
         let t = indexed "T" i 2 in
         [ (* frontier {x,y} is guarded by R, but z makes the body unguarded *)
           Tgd.make
             ~body:[ Atom.of_vars r [ x; y ]; Atom.of_vars s [ y; z ] ]
             ~head:[ Atom.of_vars t [ x; y ] ];
           Tgd.make ~body:[ Atom.of_vars r [ x; y ] ]
             ~head:[ Atom.of_vars s [ y; y ] ]
         ]))

let fg_unrewritable k =
  List.init k (fun i ->
      let r = indexed "R" i 1 in
      let p = indexed "P" i 1 in
      let t = indexed "T" i 1 in
      Tgd.make
        ~body:[ Atom.of_vars r [ x ]; Atom.of_vars p [ y ] ]
        ~head:[ Atom.of_vars t [ x ] ])

let dl_lite_roles k =
  List.concat
    (List.init k (fun i ->
         let a = indexed "A" i 1 in
         let a' = indexed "A" (i + 1) 1 in
         let r = indexed "R" i 2 in
         [ Tgd.make ~body:[ Atom.of_vars a [ x ] ]
             ~head:[ Atom.of_vars r [ x; y ] ];
           Tgd.make ~body:[ Atom.of_vars r [ x; y ] ] ~head:[ Atom.of_vars a' [ y ] ]
         ]))

let c = Constant.named "c"
let d = Constant.named "d"

let separation_linear_vs_guarded =
  let r = Relation.make "R" 1 in
  let p = Relation.make "P" 1 in
  let t = Relation.make "T" 1 in
  let schema = Schema.make [ r; p; t ] in
  let sigma =
    [ Tgd.make
        ~body:[ Atom.of_vars r [ x ]; Atom.of_vars p [ x ] ]
        ~head:[ Atom.of_vars t [ x ] ]
    ]
  in
  let i = Instance.of_facts schema [ Fact.make r [ c ]; Fact.make p [ c ] ] in
  (sigma, i)

let separation_guarded_vs_fg =
  let r = Relation.make "R" 1 in
  let p = Relation.make "P" 1 in
  let t = Relation.make "T" 1 in
  let schema = Schema.make [ r; p; t ] in
  let sigma =
    [ Tgd.make
        ~body:[ Atom.of_vars r [ x ]; Atom.of_vars p [ y ] ]
        ~head:[ Atom.of_vars t [ x ] ]
    ]
  in
  let i = Instance.of_facts schema [ Fact.make r [ c ]; Fact.make p [ d ] ] in
  (sigma, i)

let example_5_2 =
  let r = Relation.make "R" 2 in
  let s = Relation.make "S" 2 in
  let t = Relation.make "T" 2 in
  let schema = Schema.make [ r; s; t ] in
  let sigma =
    [ Tgd.make
        ~body:[ Atom.of_vars r [ x; y ]; Atom.of_vars s [ y; z ] ]
        ~head:[ Atom.of_vars t [ x; z ] ]
    ]
  in
  let a = Constant.named "a" and b = Constant.named "b" in
  let i =
    Instance.of_facts schema
      [ Fact.make r [ a; b ]; Fact.make s [ b; a ]; Fact.make t [ a; a ] ]
  in
  (sigma, i)

let e2_schema = Schema.make [ Relation.make "E" 2 ]

let clique k = Tgd_core.Enumerate.canonical_domain k |> Critical.over e2_schema

let cycle k =
  let e = Relation.make "E" 2 in
  let cs = Array.of_list (Tgd_core.Enumerate.canonical_domain k) in
  Instance.of_facts e2_schema
    (List.init k (fun i -> Fact.make e [ cs.(i); cs.((i + 1) mod k) ]))

let grid w h =
  let e = Relation.make "E" 2 in
  let node i j = Constant.indexed ((i * h) + j) in
  let right =
    List.concat_map
      (fun i -> List.init h (fun j -> (i, j)))
      (List.init (max 0 (w - 1)) (fun i -> i))
    |> List.map (fun (i, j) -> Fact.make e [ node i j; node (i + 1) j ])
  in
  let down =
    List.concat_map
      (fun i -> List.init (max 0 (h - 1)) (fun j -> (i, j)))
      (List.init w (fun i -> i))
    |> List.map (fun (i, j) -> Fact.make e [ node i j; node i (j + 1) ])
  in
  Instance.of_facts e2_schema (right @ down)

(* ------------------------------------------------------------------ *)
(* Scalable layered ontologies — the parallel-screening workloads.     *)
(*                                                                     *)
(* [copies] independent gadgets, each a depth-bounded layer chain      *)
(*                                                                     *)
(*   RcLl(x,y) -> RcL(l+1)(y,x)     (forward, flipping the pair)       *)
(*   RcLl(x,y) -> PcLl(x)           (projection)                       *)
(*   RcLl(x,y), PcLl(x) -> TcLl(x)  (guarded join; rewritable)         *)
(*                                                                     *)
(* Every rule is full and guarded, so the set is plain Datalog —       *)
(* certified terminating, [Strategy.predicted_cost = Moderate] — and   *)
(* the schema carries 4·copies·depth + copies relations, putting the   *)
(* Section 9.2 candidate space in the 10⁴–10⁵ range at a few dozen     *)
(* copies: per-candidate screening is cheap, so only cost-sized        *)
(* chunking makes the sweep parallelise.  Copies are independent       *)
(* (no cross-copy derivations), which keeps the entailed set — and     *)
(* hence the backward check — proportional to [copies], not quadratic. *)
(* ------------------------------------------------------------------ *)

let layer_rel name ci l arity =
  Relation.make (Printf.sprintf "%s%dL%d" name ci l) arity

let layered ~copies ~depth =
  List.concat
    (List.init copies (fun ci ->
         List.concat
           (List.init depth (fun l ->
                let r = layer_rel "R" ci l 2 in
                let r' = layer_rel "R" ci (l + 1) 2 in
                let p = layer_rel "P" ci l 1 in
                let t = layer_rel "T" ci l 1 in
                [ Tgd.make
                    ~body:[ Atom.of_vars r [ x; y ] ]
                    ~head:[ Atom.of_vars r' [ y; x ] ];
                  Tgd.make
                    ~body:[ Atom.of_vars r [ x; y ] ]
                    ~head:[ Atom.of_vars p [ x ] ];
                  Tgd.make
                    ~body:[ Atom.of_vars r [ x; y ]; Atom.of_vars p [ x ] ]
                    ~head:[ Atom.of_vars t [ x ] ]
                ]))))

let layered_existential ~copies ~depth =
  layered ~copies ~depth
  @ List.init copies (fun ci ->
        let r = layer_rel "R" ci depth 2 in
        let e = layer_rel "E" ci depth 2 in
        (* z is existential: still weakly acyclic (E never occurs in a
           body), but the set is no longer full — exercising the
           Chase_to_completion strategy and m = 1 candidate spaces *)
        Tgd.make ~body:[ Atom.of_vars r [ x; y ] ] ~head:[ Atom.of_vars e [ x; z ] ])

let schema_of_tgds sigma =
  Schema.make
    (List.concat_map
       (fun s -> List.map Atom.rel (Tgd.body s @ Tgd.head s))
       sigma)

let layered_instance ~copies ~depth ~chain =
  let schema = schema_of_tgds (layered_existential ~copies ~depth) in
  (* named constants so the instance prints in surface syntax (fixtures) *)
  let a =
    Array.init (chain + 1) (fun j -> Constant.named (Printf.sprintf "a%d" j))
  in
  Instance.of_facts schema
    (List.concat
       (List.init copies (fun ci ->
            let r0 = layer_rel "R" ci 0 2 in
            List.init chain (fun j -> Fact.make r0 [ a.(j); a.(j + 1) ]))))

let guarded_rewritable_wide k =
  List.concat
    (List.init k (fun i ->
         let r = indexed "R" i 3 in
         let p = indexed "P" i 1 in
         let t = indexed "T" i 1 in
         [ Tgd.make
             ~body:[ Atom.of_vars r [ x; y; z ] ]
             ~head:[ Atom.of_vars p [ x ] ];
           Tgd.make
             ~body:[ Atom.of_vars r [ x; y; z ]; Atom.of_vars p [ x ] ]
             ~head:[ Atom.of_vars t [ x ] ]
         ]))
