(** Deterministic scalable workload families used by the benchmark harness
    and the examples.

    Each family is indexed by a size parameter and has a known ground truth
    (rewritable or not, chase-terminating or not), so benches can verify
    results while measuring. *)

open Tgd_syntax

val chain_schema : int -> Schema.t
(** Binary relations [E0 … E_{k}]. *)

val linear_chain : int -> Tgd.t list
(** [E_i(x,y) → E_{i+1}(x,y)] for [i < k] — linear, full, weakly acyclic. *)

val existential_chain : int -> Tgd.t list
(** [E_i(x,y) → ∃z. E_{i+1}(y,z)] — linear with existentials; the chase
    terminates on it (each rule fires forward along the chain). *)

val transitive_closure : Tgd.t list
(** [E(x,y), E(y,z) → E(x,z)] — full but neither guarded nor
    frontier-guarded; the classic plain tgd. *)

val guarded_rewritable : int -> Tgd.t list
(** [k] independent copies of [{R_i(x,y) → P_i(x);  R_i(x,y), P_i(x) → T_i(x)}]
    — guarded, and equivalent to the linear set
    [{R_i(x,y) → P_i(x); R_i(x,y) → T_i(x)}]. *)

val guarded_rewritable_expected : int -> Tgd.t list
(** The expected linear rewriting of {!guarded_rewritable}. *)

val guarded_unrewritable : int -> Tgd.t list
(** [k] copies of the Section 9.1 separation set [{R_i(x), P_i(x) → T_i(x)}]
    — guarded, not expressible by linear tgds. *)

val fg_rewritable : int -> Tgd.t list
(** [k] copies of
    [{R_i(x,y), S_i(y,z) → T_i(x,y);  R_i(x,y) → S_i(y,y)}] —
    frontier-guarded but not guarded (the first rule's [z] escapes every
    guard), and equivalent to the linear — hence guarded — set
    [{R_i(x,y) → S_i(y,y); R_i(x,y) → T_i(x,y)}]. *)

val fg_unrewritable : int -> Tgd.t list
(** [k] copies of the Section 9.1 separation set [{R_i(x), P_i(y) → T_i(x)}]
    — frontier-guarded, not expressible by guarded tgds. *)

val dl_lite_roles : int -> Tgd.t list
(** A DL-Lite-style ontology: [A_i(x) → ∃y. R_i(x,y)],
    [R_i(x,y) → A_{i+1}(y)] — the description-logic shape the introduction
    contrasts with higher-arity tgds. *)

val separation_linear_vs_guarded : Tgd.t list * Tgd_instance.Instance.t
(** The exact [Σ_G = {R(x), P(x) → T(x)}] and
    [I = {R(c), P(c)}]-with-[T] instance of Section 9.1. *)

val separation_guarded_vs_fg : Tgd.t list * Tgd_instance.Instance.t
(** [Σ_F = {R(x), P(y) → T(x)}] and [I = {R(c), P(d)}]. *)

val example_5_2 : Tgd.t list * Tgd_instance.Instance.t
(** The Makowsky–Vardi counterexample: [σ = R(x,y), S(y,z) → T(x,z)] and
    [I = {R(a,b), S(b,a), T(a,a)}]. *)

val clique : int -> Tgd_instance.Instance.t
(** Complete digraph (with loops) on [k] canonical constants over [{E/2}] —
    the k-critical instance of that schema. *)

val grid : int -> int -> Tgd_instance.Instance.t
(** [grid w h]: directed grid over [{E/2}] with right- and down-edges. *)

val cycle : int -> Tgd_instance.Instance.t
(** Directed [k]-cycle over [{E/2}]. *)

val guarded_rewritable_wide : int -> Tgd.t list
(** Like {!guarded_rewritable} but each copy uses a ternary guard
    [R_i(x,y,z)] — stresses candidate enumeration at arity 3. *)

val layered : copies:int -> depth:int -> Tgd.t list
(** The scalable parallel-screening workload: [copies] independent
    depth-bounded gadgets of
    [{RcLl(x,y) → RcL(l+1)(y,x);  RcLl(x,y) → PcLl(x);
      RcLl(x,y), PcLl(x) → TcLl(x)}] — [3·copies·depth] guarded full
    rules (plain Datalog: certified terminating, predicted [Moderate])
    over enough relations to put the §9.2 candidate space in the
    10⁴–10⁵ range at a few dozen copies.  Copies are independent, so the
    entailed set grows linearly in [copies]. *)

val layered_existential : copies:int -> depth:int -> Tgd.t list
(** {!layered} plus one existential sink rule per copy
    ([RcLd(x,y) → ∃z. EcLd(x,z)]): still weakly acyclic, but no longer
    full — the [Chase_to_completion] strategy with [m = 1] candidate
    spaces. *)

val layered_instance : copies:int -> depth:int -> chain:int -> Tgd_instance.Instance.t
(** Seed facts [RcL0(a_j, a_{j+1})] ([j < chain], per copy) over the
    {!layered_existential} schema: saturation propagates every seed
    through all [depth] layers, giving the match phase
    [O(copies·depth)] independent pivot tasks per round. *)
