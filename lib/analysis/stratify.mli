(** Chase stratification (after Deutsch–Nash–Remmel).

    Rules are partitioned into strata along a relation-level
    over-approximation of the chase precedence: rule [i] precedes rule
    [j] when some head relation of [i] occurs in [j]'s body.  Strongly
    connected components of that graph are the strata, listed
    sources-first so a left-to-right pass respects the chase order.

    Over-approximating the precedence only merges strata, never splits
    mutually feeding rules, so composing per-stratum termination
    certificates along the stratum order stays sound: if every stratum
    certifies on its own, the Skolem chase of the whole set terminates
    on every instance. *)

open Tgd_syntax

type t = {
  n_rules : int;
  edges : (int * int) list;
      (** the relation-level precedence over rule indices *)
  strata : int list list;
      (** SCCs of the precedence, sources first, each sorted ascending *)
}

val precedence : Tgd.t list -> (int * int) list
val build : Tgd.t list -> t

val is_trivial : t -> bool
(** [true] when there is at most one stratum — stratification cannot
    refine the analysis. *)

val rules_of : Tgd.t list -> int list -> Tgd.t list
(** The sub-program at the given rule indices, in index order. *)

val pp : t Fmt.t
