open Tgd_syntax

type t = {
  n_rules : int;
  edges : (int * int) list;
  strata : int list list;
}

let head_rels tgd =
  List.fold_left
    (fun acc a -> Relation.Set.add (Atom.rel a) acc)
    Relation.Set.empty (Tgd.head tgd)

let body_rels tgd =
  List.fold_left
    (fun acc a -> Relation.Set.add (Atom.rel a) acc)
    Relation.Set.empty (Tgd.body tgd)

(* Relation-level over-approximation of the chase precedence: firing [i]
   can only enable a new trigger of [j] if some head relation of [i]
   occurs in the body of [j].  Over-approximating only merges strata —
   it never splits rules that genuinely feed each other, so composing
   per-stratum certificates along this graph stays sound. *)
let precedence sigma =
  let arr = Array.of_list sigma in
  let n = Array.length arr in
  let heads = Array.map head_rels arr in
  let bodies = Array.map body_rels arr in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if not (Relation.Set.is_empty (Relation.Set.inter heads.(i) bodies.(j)))
      then edges := (i, j) :: !edges
    done
  done;
  List.rev !edges

(* Tarjan's strongly connected components, emitted in reverse topological
   order of the condensation and then reversed: sources (strata no other
   stratum feeds) come first, so a left-to-right pass respects the chase
   order. *)
let sccs ~n edges =
  let succs = Array.make n [] in
  List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) edges;
  let index = ref 0 in
  let idx = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let out = ref [] in
  let rec strong v =
    idx.(v) <- !index;
    low.(v) <- !index;
    incr index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if idx.(w) = -1 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) idx.(w))
      succs.(v);
    if low.(v) = idx.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      out := List.sort Int.compare (pop []) :: !out
    end
  in
  for v = 0 to n - 1 do
    if idx.(v) = -1 then strong v
  done;
  (* Tarjan emits components in reverse topological order *)
  !out

let build sigma =
  let n = List.length sigma in
  let edges = precedence sigma in
  { n_rules = n; edges; strata = sccs ~n edges }

let is_trivial t = List.length t.strata <= 1

let rules_of sigma indices =
  let arr = Array.of_list sigma in
  List.map (fun i -> arr.(i)) indices

let pp ppf t =
  Fmt.pf ppf "%d strata: %a" (List.length t.strata)
    Fmt.(list ~sep:(any " | ") (list ~sep:(any ",") int))
    t.strata
