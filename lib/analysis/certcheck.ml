open Tgd_syntax

(* The independent certificate checker.

   Shares exactly two things with the certificate producers: the rule
   syntax (the rules are the checker's own input, not part of the claim)
   and the [tgdcert v1] wire format, re-parsed here from scratch.  All
   verification machinery is deliberately disjoint: where the producers
   detect cycles with gray/black DFS, the checker uses Kahn's algorithm
   and Kosaraju condensation; where the place graph unifies with a
   triangular substitution, the checker substitutes eagerly; model
   closure is checked with a naive relation-indexed join rather than the
   semi-naive engine.

   Witnesses are allowed to over-approximate (a bigger claimed graph or
   movement set only adds constraints), but they must contain everything
   the checker re-derives, be closed, and still pass the acyclicity
   check — so a passing certificate is sound even from a dishonest
   producer. *)

exception Reject of string

let reject fmt = Fmt.kstr (fun s -> raise (Reject s)) fmt

(* ------------------------------------------------------------------ *)
(* Wire-format parsing                                                 *)
(* ------------------------------------------------------------------ *)

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let int_of tok =
  match int_of_string_opt tok with
  | Some i -> i
  | None -> reject "malformed integer %S" tok

let const_of tok =
  if String.length tok < 3 || tok.[1] <> ':' then
    reject "malformed constant token %S" tok
  else
    let body = String.sub tok 2 (String.length tok - 2) in
    match tok.[0] with
    | 'n' -> Constant.named body
    | 'i' -> Constant.indexed (int_of body)
    | 'N' -> Constant.null (int_of body)
    | _ -> reject "malformed constant token %S" tok

(* [R:3] — split on the last colon so relation names may contain one. *)
let relpos_of tok =
  match String.rindex_opt tok ':' with
  | None -> reject "malformed position token %S" tok
  | Some i ->
    ( String.sub tok 0 i,
      int_of (String.sub tok (i + 1) (String.length tok - i - 1)) )

type parsed =
  | P_weak of (string * int * string * int * bool) list
  | P_joint of (int * string * (string * int) list) list
  | P_superweak of (int * (int * int * int) list) list
  | P_msa of Fact.t list
  | P_mfa of Fact.t list * (Constant.t * (int * string * Constant.t list)) list
  | P_stratified of int list list * parsed list

(* Payload parser over a cursor into the line array; recursive for the
   stratified sub-blocks, which end at [endsub] (nested) or [end] (top). *)
let rec parse_payload lines pos =
  let line () =
    if !pos >= Array.length lines then reject "truncated certificate"
    else begin
      let l = lines.(!pos) in
      incr pos;
      l
    end
  in
  let peek () =
    if !pos >= Array.length lines then None else Some lines.(!pos)
  in
  let notion =
    match split_ws (line ()) with
    | [ "notion"; n ] -> n
    | _ -> reject "expected a notion line"
  in
  let finished () =
    match peek () with
    | None -> true
    | Some l -> (
      match split_ws l with
      | [ "end" ] | [ "endsub" ] | "sub" :: _ -> true
      | _ -> false)
  in
  let fact_of = function
    | "fact" :: rel :: toks when toks <> [] ->
      let args = List.map const_of toks in
      Fact.make (Relation.make rel (List.length args)) args
    | _ -> reject "malformed fact line"
  in
  match notion with
  | "weak" ->
    let edges = ref [] in
    while not (finished ()) do
      match split_ws (line ()) with
      | [ "edge"; r1; p1; r2; p2; kind ] ->
        let special =
          match kind with
          | "special" -> true
          | "regular" -> false
          | _ -> reject "edge kind must be special|regular, got %S" kind
        in
        edges := (r1, int_of p1, r2, int_of p2, special) :: !edges
      | _ -> reject "malformed weak-acyclicity edge line"
    done;
    P_weak (List.rev !edges)
  | "joint" ->
    let movs = ref [] in
    while not (finished ()) do
      match split_ws (line ()) with
      | "mov" :: rule :: exvar :: toks ->
        movs := (int_of rule, exvar, List.map relpos_of toks) :: !movs
      | _ -> reject "malformed movement line"
    done;
    P_joint (List.rev !movs)
  | "superweak" ->
    let moves = ref [] in
    while not (finished ()) do
      match split_ws (line ()) with
      | "move" :: rule :: toks ->
        let place tok =
          match String.split_on_char ':' tok with
          | [ r; a; p ] -> (int_of r, int_of a, int_of p)
          | _ -> reject "malformed place token %S" tok
        in
        moves := (int_of rule, List.map place toks) :: !moves
      | _ -> reject "malformed move line"
    done;
    P_superweak (List.rev !moves)
  | "msa" ->
    let facts = ref [] in
    while not (finished ()) do
      facts := fact_of (split_ws (line ())) :: !facts
    done;
    P_msa (List.rev !facts)
  | "mfa" ->
    let facts = ref [] and creation = ref [] in
    while not (finished ()) do
      match split_ws (line ()) with
      | "fact" :: _ as l -> facts := fact_of l :: !facts
      | "null" :: c :: rule :: exvar :: args ->
        creation :=
          (const_of c, (int_of rule, exvar, List.map const_of args))
          :: !creation
      | _ -> reject "malformed mfa line"
    done;
    P_mfa (List.rev !facts, List.rev !creation)
  | "stratified" ->
    let strata = ref [] in
    let more_strata = ref true in
    while !more_strata do
      match peek () with
      | Some l when split_ws l <> [] && List.hd (split_ws l) = "stratum" ->
        (match split_ws (line ()) with
        | "stratum" :: toks -> strata := List.map int_of toks :: !strata
        | _ -> assert false)
      | _ -> more_strata := false
    done;
    let subs = ref [] in
    let more_subs = ref true in
    while !more_subs do
      match peek () with
      | Some l when split_ws l <> [] && List.hd (split_ws l) = "sub" ->
        ignore (line ());
        subs := parse_payload lines pos :: !subs;
        (match split_ws (line ()) with
        | [ "endsub" ] -> ()
        | _ -> reject "sub-certificate not closed by endsub")
      | _ -> more_subs := false
    done;
    P_stratified (List.rev !strata, List.rev !subs)
  | n -> reject "unknown notion %S" n

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
    |> Array.of_list
  in
  if Array.length lines < 3 then reject "truncated certificate";
  (match split_ws lines.(0) with
  | [ "tgdcert"; "v1" ] -> ()
  | _ -> reject "not a tgdcert v1 file");
  let n, digest =
    match split_ws lines.(1) with
    | [ "rules"; n; d ] -> (int_of n, d)
    | _ -> reject "missing rules binding line"
  in
  let pos = ref 2 in
  let payload = parse_payload lines pos in
  (match split_ws lines.(!pos) with
  | [ "end" ] -> ()
  | _ -> reject "certificate not closed by end");
  (n, digest, payload)

(* ------------------------------------------------------------------ *)
(* Checker-side graph algorithms                                       *)
(* ------------------------------------------------------------------ *)

(* Kahn's topological sort as an acyclicity test over integer nodes. *)
let kahn_acyclic ~n edges =
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  List.iter
    (fun (a, b) ->
      succs.(a) <- b :: succs.(a);
      indeg.(b) <- indeg.(b) + 1)
    edges;
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let processed = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr processed;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      succs.(v)
  done;
  !processed = n

(* Kosaraju's SCC numbering: [scc.(v) = scc.(w)] iff [v] and [w] lie on a
   common cycle (or are equal). *)
let kosaraju ~n edges =
  let succs = Array.make n [] and preds = Array.make n [] in
  List.iter
    (fun (a, b) ->
      succs.(a) <- b :: succs.(a);
      preds.(b) <- a :: preds.(b))
    edges;
  let visited = Array.make n false in
  let order = ref [] in
  let rec pass1 v =
    if not visited.(v) then begin
      visited.(v) <- true;
      List.iter pass1 succs.(v);
      order := v :: !order
    end
  in
  for v = 0 to n - 1 do
    pass1 v
  done;
  let comp = Array.make n (-1) in
  let rec pass2 c v =
    if comp.(v) = -1 then begin
      comp.(v) <- c;
      List.iter (pass2 c) preds.(v)
    end
  in
  let c = ref 0 in
  List.iter
    (fun v ->
      if comp.(v) = -1 then begin
        pass2 !c v;
        incr c
      end)
    !order;
  comp

(* ------------------------------------------------------------------ *)
(* Shared rule views (checker-side)                                    *)
(* ------------------------------------------------------------------ *)

let var_positions atoms v =
  List.concat_map
    (fun a ->
      Array.to_list (Atom.args_arr a)
      |> List.mapi (fun i t -> (i, t))
      |> List.filter_map (fun (i, t) ->
             match t with
             | Term.Var w when Variable.equal v w ->
               Some (Relation.name (Atom.rel a), i)
             | Term.Var _ | Term.Const _ -> None))
    atoms

let existentials_of tgd = Variable.Set.elements (Tgd.existential_vars tgd)
let frontier_of tgd = Variable.Set.elements (Tgd.frontier tgd)

(* ------------------------------------------------------------------ *)
(* Weak acyclicity                                                     *)
(* ------------------------------------------------------------------ *)

let derive_wa_edges sigma =
  List.concat_map
    (fun tgd ->
      let ex_pos =
        List.concat_map (var_positions (Tgd.head tgd)) (existentials_of tgd)
      in
      List.concat_map
        (fun x ->
          let srcs = var_positions (Tgd.body tgd) x in
          List.concat_map
            (fun src ->
              List.map
                (fun tgt -> (src, tgt, false))
                (var_positions (Tgd.head tgd) x)
              @ List.map (fun tgt -> (src, tgt, true)) ex_pos)
            srcs)
        (frontier_of tgd))
    sigma

let check_weak sigma claimed =
  let mem (r1, p1) (r2, p2) special =
    List.exists
      (fun (cr1, cp1, cr2, cp2, cs) ->
        cr1 = r1 && cp1 = p1 && cr2 = r2 && cp2 = p2
        && (cs = special || (cs && not special)))
      claimed
    (* a regular edge claimed as special only strengthens the check *)
  in
  List.iter
    (fun (src, tgt, special) ->
      if not (mem src tgt special) then
        reject "claimed graph omits the %s edge %s[%d] -> %s[%d]"
          (if special then "special" else "regular")
          (fst src) (snd src) (fst tgt) (snd tgt))
    (derive_wa_edges sigma);
  (* no special edge inside one strongly connected component *)
  let nodes = Hashtbl.create 32 in
  let node (r, p) =
    let key = Printf.sprintf "%s/%d" r p in
    match Hashtbl.find_opt nodes key with
    | Some i -> i
    | None ->
      let i = Hashtbl.length nodes in
      Hashtbl.add nodes key i;
      i
  in
  let edges =
    List.map (fun (r1, p1, r2, p2, _) -> (node (r1, p1), node (r2, p2))) claimed
  in
  let comp = kosaraju ~n:(Hashtbl.length nodes) edges in
  List.iter
    (fun (r1, p1, r2, p2, special) ->
      if special && comp.(node (r1, p1)) = comp.(node (r2, p2)) then
        reject "special edge %s[%d] -> %s[%d] lies on a cycle" r1 p1 r2 p2)
    claimed

(* ------------------------------------------------------------------ *)
(* Joint acyclicity                                                    *)
(* ------------------------------------------------------------------ *)

let check_joint sigma claimed =
  let rules = Array.of_list sigma in
  let mov i y =
    match
      List.find_opt (fun (r, z, _) -> r = i && z = Variable.name y) claimed
    with
    | Some (_, _, m) -> m
    | None ->
      reject "movement set for existential %s of rule %d missing"
        (Variable.name y) i
  in
  let subset a b = List.for_all (fun p -> List.mem p b) a in
  let nodes =
    List.concat
      (List.mapi (fun i tgd -> List.map (fun y -> (i, y)) (existentials_of tgd))
         sigma)
  in
  (* seed containment and closure of every claimed set *)
  List.iter
    (fun (i, y) ->
      let m = mov i y in
      if not (subset (var_positions (Tgd.head rules.(i)) y) m) then
        reject "Mov(%s) of rule %d misses the variable's own head positions"
          (Variable.name y) i;
      Array.iteri
        (fun j r ->
          Variable.Set.iter
            (fun x ->
              let bpos = var_positions (Tgd.body r) x in
              if subset bpos m && not (subset (var_positions (Tgd.head r) x) m)
              then
                reject
                  "Mov(%s) of rule %d is not closed under frontier variable \
                   %s of rule %d"
                  (Variable.name y) i (Variable.name x) j)
            (Tgd.frontier r))
        rules)
    nodes;
  (* the induced existential graph, recomputed from the claimed sets *)
  let idx = List.mapi (fun k n -> (n, k)) nodes in
  let node_id n =
    List.assoc_opt n idx |> function Some k -> k | None -> assert false
  in
  let edges =
    List.concat_map
      (fun (i, y) ->
        let m = mov i y in
        List.filter_map
          (fun (j, z) ->
            if
              Variable.Set.exists
                (fun x -> subset (var_positions (Tgd.body rules.(j)) x) m)
                (Tgd.frontier rules.(j))
            then Some (node_id (i, y), node_id (j, z))
            else None)
          nodes)
      nodes
  in
  if not (kahn_acyclic ~n:(List.length nodes) edges) then
    reject "claimed movement sets induce a cyclic existential graph"

(* ------------------------------------------------------------------ *)
(* Super-weak acyclicity                                               *)
(* ------------------------------------------------------------------ *)

(* Checker-side skolemized terms: eager-substitution unification, unlike
   the producer's triangular walk/occurs machinery. *)
type cterm =
  | CVar of int * string
  | CFun of string * cterm list

let rec csubst key v t =
  match t with
  | CVar (ns, x) -> if (ns, x) = key then v else t
  | CFun (f, args) -> CFun (f, List.map (csubst key v) args)

let rec coccurs key = function
  | CVar (ns, x) -> (ns, x) = key
  | CFun (_, args) -> List.exists (coccurs key) args

let rec cunify eqs =
  match eqs with
  | [] -> true
  | (CVar (n1, x1), CVar (n2, x2)) :: rest when (n1, x1) = (n2, x2) ->
    cunify rest
  | (CVar (ns, x), t) :: rest | (t, CVar (ns, x)) :: rest ->
    (not (coccurs (ns, x) t))
    && cunify
         (List.map
            (fun (a, b) -> (csubst (ns, x) t a, csubst (ns, x) t b))
            rest)
  | (CFun (f, a1), CFun (g, a2)) :: rest ->
    String.equal f g
    && List.length a1 = List.length a2
    && cunify (List.combine a1 a2 @ rest)

let sk_head_atom rule_idx tgd atom =
  let frontier = frontier_of tgd in
  let ex = Tgd.existential_vars tgd in
  Array.map
    (fun t ->
      match t with
      | Term.Const c -> CFun ("const:" ^ Constant.to_string c, [])
      | Term.Var v ->
        if Variable.Set.mem v ex then
          CFun
            ( Printf.sprintf "f%d_%s" rule_idx (Variable.name v),
              List.map (fun x -> CVar (0, Variable.name x)) frontier )
        else CVar (0, Variable.name v))
    (Atom.args_arr atom)

let body_atom_terms atom =
  Array.map
    (fun t ->
      match t with
      | Term.Const c -> CFun ("const:" ^ Constant.to_string c, [])
      | Term.Var v -> CVar (1, Variable.name v))
    (Atom.args_arr atom)

let check_superweak sigma claimed =
  let rules = Array.of_list sigma in
  let n = Array.length rules in
  let body_atoms = Array.map (fun t -> Array.of_list (Tgd.body t)) rules in
  let head_atoms = Array.map (fun t -> Array.of_list (Tgd.head t)) rules in
  let head_sk =
    Array.mapi
      (fun i t -> Array.map (sk_head_atom i t) head_atoms.(i))
      rules
  in
  let body_sk = Array.map (Array.map body_atom_terms) body_atoms in
  let valid_head (r, a, p) =
    r >= 0 && r < n
    && a >= 0
    && a < Array.length head_atoms.(r)
    && p >= 0
    && p < Atom.arity head_atoms.(r).(a)
  in
  let move i =
    match List.find_opt (fun (r, _) -> r = i) claimed with
    | Some (_, places) ->
      List.iter
        (fun pl ->
          if not (valid_head pl) then
            reject "move set of rule %d claims an out-of-range head place" i)
        places;
      places
    | None -> reject "move set for rule %d missing" i
  in
  (* does the head place support the body place?  same relation and
     position, and the skolemized atoms unify *)
  let supports (hr, ha, hp) (br, ba, bp) =
    hp = bp
    && Relation.equal
         (Atom.rel head_atoms.(hr).(ha))
         (Atom.rel body_atoms.(br).(ba))
    && cunify
         (List.combine
            (Array.to_list head_sk.(hr).(ha))
            (Array.to_list body_sk.(br).(ba)))
  in
  let places_of atoms rule v =
    List.concat_map
      (fun (ai, a) ->
        Array.to_list (Atom.args_arr a)
        |> List.mapi (fun p t -> (p, t))
        |> List.filter_map (fun (p, t) ->
               match t with
               | Term.Var w when Variable.equal v w -> Some (rule, ai, p)
               | Term.Var _ | Term.Const _ -> None))
      (Array.to_list (Array.mapi (fun ai a -> (ai, a)) atoms))
  in
  for i = 0 to n - 1 do
    let m = move i in
    (* seed: the existential head places of rule i *)
    List.iter
      (fun z ->
        List.iter
          (fun pl ->
            if not (List.mem pl m) then
              reject
                "move set of rule %d misses a head place of its existential %s"
                i (Variable.name z))
          (places_of head_atoms.(i) i z))
      (existentials_of rules.(i));
    (* closure under every rule's universal variables *)
    for j = 0 to n - 1 do
      Variable.Set.iter
        (fun v ->
          let bp = places_of body_atoms.(j) j v in
          if
            bp <> []
            && List.for_all (fun b -> List.exists (fun h -> supports h b) m) bp
          then
            List.iter
              (fun hp ->
                if not (List.mem hp m) then
                  reject
                    "move set of rule %d is not closed under variable %s of \
                     rule %d"
                    i (Variable.name v) j)
              (places_of head_atoms.(j) j v))
        (Tgd.universal_vars rules.(j))
    done
  done;
  (* the trigger graph, recomputed from the claimed move sets.  In(σ')
     holds only the body places of σ''s frontier variables: a null
     binding a variable that never reaches the head cannot change what
     the rule produces, so it must not count as a trigger. *)
  let edges = ref [] in
  for i = 0 to n - 1 do
    let m = move i in
    for j = 0 to n - 1 do
      let body_places =
        Variable.Set.elements (Tgd.frontier rules.(j))
        |> List.concat_map (fun v -> places_of body_atoms.(j) j v)
      in
      if
        List.exists
          (fun b -> List.exists (fun h -> supports h b) m)
          body_places
      then edges := (i, j) :: !edges
    done
  done;
  if not (kahn_acyclic ~n !edges) then
    reject "claimed move sets induce a cyclic trigger graph"

(* ------------------------------------------------------------------ *)
(* Model checks (MSA / MFA)                                            *)
(* ------------------------------------------------------------------ *)

module FactSet = Set.Make (Fact)

let fact_index facts =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let key = Relation.name (Fact.rel f) in
      Hashtbl.replace tbl key (f :: Option.value ~default:[] (Hashtbl.find_opt tbl key)))
    facts;
  tbl

let match_atom env atom fact =
  if Atom.arity atom <> List.length (Fact.tuple fact) then None
  else
    let args = Atom.args_arr atom in
    let tuple = Array.of_list (Fact.tuple fact) in
    let rec go env i =
      if i = Array.length args then Some env
      else
        match args.(i) with
        | Term.Const c ->
          if Constant.equal c tuple.(i) then go env (i + 1) else None
        | Term.Var v -> (
          match Variable.Map.find_opt v env with
          | Some c ->
            if Constant.equal c tuple.(i) then go env (i + 1) else None
          | None -> go (Variable.Map.add v tuple.(i) env) (i + 1))
    in
    go env 0

(* All bindings of the atom list into the indexed fact set, naive
   backtracking join. *)
let rec joins index env = function
  | [] -> [ env ]
  | atom :: rest ->
    let candidates =
      Option.value ~default:[]
        (Hashtbl.find_opt index (Relation.name (Atom.rel atom)))
    in
    List.concat_map
      (fun f ->
        match match_atom env atom f with
        | Some env' -> joins index env' rest
        | None -> [])
      candidates

let ground env atom =
  Fact.make (Atom.rel atom)
    (Array.to_list
       (Array.map
          (fun t ->
            match t with
            | Term.Const c -> c
            | Term.Var v -> (
              match Variable.Map.find_opt v env with
              | Some c -> c
              | None -> reject "internal: unbound variable when grounding"))
          (Atom.args_arr atom)))

(* The critical base: every relation of the rules filled with the single
   indexed constant 0 — re-derived from the format spec, not taken from
   the instance layer. *)
let critical_base sigma =
  let star = Constant.indexed 0 in
  let rels = Hashtbl.create 16 in
  List.iter
    (fun tgd ->
      List.iter
        (fun a -> Hashtbl.replace rels (Relation.name (Atom.rel a)) (Atom.rel a))
        (Tgd.body tgd @ Tgd.head tgd))
    sigma;
  Hashtbl.fold
    (fun _ r acc -> Fact.make r (List.init (Relation.arity r) (fun _ -> star)) :: acc)
    rels []

let require_facts set facts what =
  List.iter
    (fun f ->
      if not (FactSet.mem f set) then
        reject "model misses %s fact %s" what (Fact.to_string f))
    facts

(* ------------------------------------------------------------------ *)
(* MSA                                                                 *)
(* ------------------------------------------------------------------ *)

let msa_d_name = "__msa_D"
let msa_marker_name i z = Printf.sprintf "__msa_c%d_%s" i (Variable.name z)

let check_msa sigma model =
  let set = FactSet.of_list model in
  let index = fact_index model in
  require_facts set (critical_base sigma) "critical-instance";
  (* per-rule transformed shape, re-derived from the format spec *)
  List.iteri
    (fun i tgd ->
      let exs = existentials_of tgd in
      let subst, markers =
        List.fold_left
          (fun (subst, markers) z ->
            let u = Variable.fresh ~prefix:"chk_u" () in
            let rel = Relation.make (msa_marker_name i z) 1 in
            ( Variable.Map.add z u subst,
              (z, u, rel) :: markers ))
          (Variable.Map.empty, []) exs
      in
      (* seeds present *)
      List.iter
        (fun (z, _, rel) ->
          require_facts set
            [ Fact.make rel [ Constant.named (msa_marker_name i z) ] ]
            "summarising seed")
        markers;
      let body =
        Tgd.body tgd
        @ List.map (fun (_, u, rel) -> Atom.make rel [ Term.var u ]) markers
      in
      let d_rel = Relation.make msa_d_name 2 in
      let head =
        List.map (Atom.rename subst) (Tgd.head tgd)
        @ List.concat_map
            (fun (_, u, _) ->
              List.map
                (fun x -> Atom.make d_rel [ Term.var x; Term.var u ])
                (frontier_of tgd))
            markers
      in
      (* closure: every trigger of the summarised rule is satisfied *)
      List.iter
        (fun env ->
          List.iter
            (fun a ->
              let f = ground env a in
              if not (FactSet.mem f set) then
                reject "model not closed: rule %d derives %s" i
                  (Fact.to_string f))
            head)
        (joins index Variable.Map.empty body))
    sigma;
  (* the __msa_D graph must be acyclic *)
  let nodes = Hashtbl.create 32 in
  let node c =
    let key = Constant.to_string c in
    match Hashtbl.find_opt nodes key with
    | Some i -> i
    | None ->
      let i = Hashtbl.length nodes in
      Hashtbl.add nodes key i;
      i
  in
  let edges =
    List.filter_map
      (fun f ->
        if Relation.name (Fact.rel f) = msa_d_name then
          match Fact.tuple f with
          | [ a; b ] -> Some (node a, node b)
          | _ -> reject "malformed %s fact" msa_d_name
        else None)
      model
  in
  if not (kahn_acyclic ~n:(Hashtbl.length nodes) edges) then
    reject "the summarised dependency graph has a cycle"

(* ------------------------------------------------------------------ *)
(* MFA                                                                 *)
(* ------------------------------------------------------------------ *)

let check_mfa sigma model creation =
  let set = FactSet.of_list model in
  let index = fact_index model in
  require_facts set (critical_base sigma) "critical-instance";
  (* the creation map must be injective in both directions *)
  let by_null = Hashtbl.create 32 in
  let by_term = Hashtbl.create 32 in
  List.iter
    (fun (c, (rule, exvar, args)) ->
      let ckey = Constant.to_string c in
      if Hashtbl.mem by_null ckey then
        reject "null %s has two creation entries" ckey;
      Hashtbl.add by_null ckey (rule, exvar, args);
      let tkey =
        Printf.sprintf "%d/%s/%s" rule exvar
          (String.concat "," (List.map Constant.to_string args))
      in
      if Hashtbl.mem by_term tkey then
        reject "skolem term %s maps to two nulls" tkey;
      Hashtbl.add by_term tkey c)
    creation;
  (* term acyclicity: no null's skolem symbol occurs in its own
     ancestry; a cycle among the argument edges is itself a violation *)
  let state = Hashtbl.create 32 in
  let rec ancestry c =
    let key = Constant.to_string c in
    match Hashtbl.find_opt state key with
    | Some (`Done pairs) -> pairs
    | Some `Busy -> reject "skolem term of %s contains itself" key
    | None -> (
      match Hashtbl.find_opt by_null key with
      | None -> (
        match c with
        | Constant.Null _ ->
          reject "null %s appears without a creation entry" key
        | _ -> [])
      | Some (rule, exvar, args) ->
        Hashtbl.replace state key `Busy;
        let below =
          List.concat_map ancestry args |> List.sort_uniq compare
        in
        if List.mem (rule, exvar) below then
          reject
            "cyclic skolem term: rule %d reinvents %s inside its own term"
            rule exvar;
        let pairs = List.sort_uniq compare ((rule, exvar) :: below) in
        Hashtbl.replace state key (`Done pairs);
        pairs)
  in
  List.iter (fun (c, _) -> ignore (ancestry c)) creation;
  (* every null occurring in the model has a pedigree *)
  List.iter
    (fun f ->
      List.iter
        (fun c ->
          match c with
          | Constant.Null _ ->
            if not (Hashtbl.mem by_null (Constant.to_string c)) then
              reject "model null %s has no creation entry"
                (Constant.to_string c)
          | _ -> ())
        (Fact.tuple f))
    model;
  (* closure under semi-oblivious firing: every body match must find its
     head in the model, existentials bound through the creation map *)
  List.iteri
    (fun i tgd ->
      let frontier = frontier_of tgd in
      let exs = existentials_of tgd in
      List.iter
        (fun env ->
          let args =
            List.map
              (fun x ->
                match Variable.Map.find_opt x env with
                | Some c -> c
                | None -> assert false)
              frontier
          in
          let env =
            List.fold_left
              (fun env z ->
                let tkey =
                  Printf.sprintf "%d/%s/%s" i (Variable.name z)
                    (String.concat ","
                       (List.map Constant.to_string args))
                in
                match Hashtbl.find_opt by_term tkey with
                | Some c -> Variable.Map.add z c env
                | None ->
                  reject
                    "model not closed: rule %d lacks a null for %s over (%s)"
                    i (Variable.name z)
                    (String.concat "," (List.map Constant.to_string args)))
              env exs
          in
          List.iter
            (fun a ->
              let f = ground env a in
              if not (FactSet.mem f set) then
                reject "model not closed: rule %d derives %s" i
                  (Fact.to_string f))
            (Tgd.head tgd))
        (joins index Variable.Map.empty (Tgd.body tgd)))
    sigma

(* ------------------------------------------------------------------ *)
(* Stratified composition                                              *)
(* ------------------------------------------------------------------ *)

let derive_precedence sigma =
  let arr = Array.of_list sigma in
  let n = Array.length arr in
  let rels atoms =
    List.sort_uniq String.compare
      (List.map (fun a -> Relation.name (Atom.rel a)) atoms)
  in
  let heads = Array.map (fun t -> rels (Tgd.head t)) arr in
  let bodies = Array.map (fun t -> rels (Tgd.body t)) arr in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if List.exists (fun r -> List.mem r bodies.(j)) heads.(i) then
        edges := (i, j) :: !edges
    done
  done;
  !edges

let rec check_payload sigma parsed =
  let n = List.length sigma in
  match parsed with
  | P_weak claimed ->
    check_weak sigma claimed;
    Termination.Weakly_acyclic
  | P_joint claimed ->
    check_joint sigma claimed;
    Termination.Jointly_acyclic
  | P_superweak claimed ->
    check_superweak sigma claimed;
    Termination.Super_weakly_acyclic
  | P_msa model ->
    check_msa sigma model;
    Termination.Model_summarising
  | P_mfa (model, creation) ->
    check_mfa sigma model creation;
    Termination.Model_faithful
  | P_stratified (strata, subs) ->
    (* the strata partition the rule indices *)
    let all = List.sort Int.compare (List.concat strata) in
    if all <> List.init n Fun.id then
      reject "strata do not partition the %d rule indices" n;
    if List.length strata < 2 then
      reject "a stratified certificate needs at least two strata";
    if List.length subs <> List.length strata then
      reject "%d strata but %d sub-certificates" (List.length strata)
        (List.length subs);
    (* every precedence edge must respect the claimed order *)
    let stratum_of = Array.make n (-1) in
    List.iteri
      (fun k indices -> List.iter (fun i -> stratum_of.(i) <- k) indices)
      strata;
    List.iter
      (fun (i, j) ->
        if stratum_of.(i) > stratum_of.(j) then
          reject
            "precedence edge rule %d -> rule %d runs against the stratum \
             order"
            i j)
      (derive_precedence sigma);
    let arr = Array.of_list sigma in
    List.iter2
      (fun indices sub ->
        ignore (check_payload (List.map (fun i -> arr.(i)) indices) sub))
      strata subs;
    Termination.Stratified

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(* The digest binds the certificate to the rule set: MD5 over the sorted
   canonical rule texts, per the format spec. *)
let own_digest sigma =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          (List.sort String.compare (List.map Tgd.to_string sigma))))

let verify sigma text =
  try
    let n, digest, payload = parse text in
    if n <> List.length sigma then
      reject "certificate binds %d rules, got %d" n (List.length sigma);
    if not (String.equal digest (own_digest sigma)) then
      reject "certificate digest does not match the rule set";
    Ok (check_payload sigma payload)
  with
  | Reject reason -> Error reason
  | Invalid_argument s -> Error ("malformed certificate: " ^ s)
  | Failure s -> Error ("malformed certificate: " ^ s)
