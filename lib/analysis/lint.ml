open Tgd_syntax
open Tgd_instance

let canonical_key s = Tgd.to_string (Canonical.tgd s)

let duplicates sigma =
  let seen = Hashtbl.create 16 in
  List.concat
    (List.mapi
       (fun i s ->
         let key = canonical_key s in
         match Hashtbl.find_opt seen key with
         | Some j ->
           [ Diagnostic.make ~rule:i Diagnostic.Warning ~code:"duplicate-rule"
               (Fmt.str "%a duplicates rule %d up to renaming" Tgd.pp s j)
           ]
         | None ->
           Hashtbl.add seen key i;
           [])
       sigma)

(* A head that maps homomorphically into the body (fixing the frontier)
   already holds wherever the body does; the rule can never add anything. *)
let tautological s =
  let body = Tgd.body s in
  body <> []
  &&
  let schema = Schema.make (List.map Atom.rel (body @ Tgd.head s)) in
  let frozen =
    Variable.Set.fold
      (fun v acc ->
        Binding.add v (Constant.named ("~taut." ^ Variable.name v)) acc)
      (Tgd.universal_vars s) Binding.empty
  in
  let facts =
    List.map
      (fun a ->
        match Binding.ground_atom frozen a with
        | Some f -> f
        | None -> assert false (* body variables are all frozen *))
      body
  in
  let inst = Instance.of_facts schema facts in
  let partial = Binding.restrict (Tgd.frontier s) frozen in
  Hom.exists_hom ~partial (Tgd.head s) inst

let tautological_heads sigma =
  List.concat
    (List.mapi
       (fun i s ->
         if tautological s then
           [ Diagnostic.make ~rule:i Diagnostic.Error ~code:"tautological-head"
               (Fmt.str "%a: head follows from the body alone; the rule can never derive anything"
                  Tgd.pp s)
           ]
         else [])
       sigma)

let occurrences s v =
  List.fold_left
    (fun acc a ->
      Array.fold_left
        (fun acc t ->
          match t with
          | Term.Var w when Variable.equal v w -> acc + 1
          | Term.Var _ | Term.Const _ -> acc)
        acc (Atom.args_arr a))
    0
    (Tgd.body s @ Tgd.head s)

let unused_universals sigma =
  List.concat
    (List.mapi
       (fun i s ->
         let lonely =
           Variable.Set.filter (fun v -> occurrences s v = 1)
             (Tgd.universal_vars s)
         in
         if Variable.Set.is_empty lonely then []
         else
           [ Diagnostic.make ~rule:i Diagnostic.Info ~code:"unused-universal"
               (Fmt.str "%a: universal variable%s %a occur%s only once"
                  Tgd.pp s
                  (if Variable.Set.cardinal lonely > 1 then "s" else "")
                  Fmt.(list ~sep:(any ", ") Variable.pp)
                  (Variable.Set.elements lonely)
                  (if Variable.Set.cardinal lonely > 1 then "" else "s"))
           ])
       sigma)

let class_downgrades sigma =
  List.concat
    (List.mapi
       (fun i s ->
         if Tgd_class.is_frontier_guarded s && not (Tgd_class.is_guarded s)
         then begin
           (* the frontier guard exists; report what it fails to cover *)
           let guard_vars =
             match Tgd_class.frontier_guard s with
             | Some a -> Atom.vars a
             | None -> Variable.Set.empty
           in
           let missing =
             Variable.Set.elements
               (Variable.Set.diff (Tgd.universal_vars s) guard_vars)
           in
           [ Diagnostic.make ~rule:i Diagnostic.Hint ~code:"almost-guarded"
               (Fmt.str
                  "%a: frontier-guarded but not guarded — no body atom covers %a"
                  Tgd.pp s
                  Fmt.(list ~sep:(any ", ") Variable.pp)
                  missing)
           ]
         end
         else if
           Tgd_class.is_guarded s
           && (not (Tgd_class.is_linear s))
           && List.length (Tgd.body s) = 2
         then
           [ Diagnostic.make ~rule:i Diagnostic.Hint ~code:"almost-linear"
               (Fmt.str "%a: guarded with a two-atom body — one join away from linear"
                  Tgd.pp s)
           ]
         else [])
       sigma)

let subsumed ~oracle sigma =
  let arr = Array.of_list sigma in
  let key = Array.map canonical_key arr in
  List.concat
    (List.mapi
       (fun i s ->
         let copies =
           Array.fold_left
             (fun n k -> if String.equal k key.(i) then n + 1 else n)
             0 key
         in
         let duplicate = copies > 1 in
         if duplicate then []
         else
           let rest =
             List.filteri (fun j _ -> j <> i) sigma
           in
           if rest <> [] && oracle rest s then
             [ Diagnostic.make ~rule:i Diagnostic.Warning ~code:"subsumed-rule"
                 (Fmt.str "%a is entailed by the other rules" Tgd.pp s)
             ]
           else [])
       sigma)

let all ?oracle sigma =
  duplicates sigma @ tautological_heads sigma @ unused_universals sigma
  @ class_downgrades sigma
  @ (match oracle with
    | Some oracle -> subsumed ~oracle sigma
    | None -> [])
