(** The multi-pass analysis driver.

    [run sigma] executes every static pass — dependency graph, the full
    termination lattice ({!Lattice.profile}), rule lints, strategy
    selection — and returns one report.  The optional [oracle] enables
    the (chase-backed, hence comparatively expensive) subsumption lint;
    callers above the chase layer inject
    [fun rest s -> Entailment.entails rest s = Proved]. *)

open Tgd_syntax

type report = {
  n_rules : int;
  strategy : Strategy.t;
      (** the shallow strategy upgraded with the lattice verdict: a set
          certified only by a chase-based notion still selects
          {!Strategy.Chase_to_completion} *)
  lattice : Lattice.profile;
      (** every lattice notion evaluated independently — the
          [--explain] view *)
  wa_witness : Termination.wa_witness option;
      (** present exactly when the set is not weakly acyclic *)
  ja_witness : Termination.ja_witness option;
      (** present exactly when the set is not jointly acyclic *)
  sccs : Relation.t list list;
  strata_depth : int;
  dead_rules : int list;
  diagnostics : Diagnostic.t list;  (** sorted, most severe first *)
}

val run : ?oracle:(Tgd.t list -> Tgd.t -> bool) -> Tgd.t list -> report

val certificate : report -> Cert.t option
(** The proof-carrying certificate behind the lattice verdict, when the
    set certified — render with {!Cert.to_string} / {!Cert.to_file}. *)

val exit_code : report -> int
(** [Diagnostic.exit_code] of the report's diagnostics: 0 clean, 1 warnings,
    2 errors. *)

val pp : report Fmt.t
(** Human-readable multi-line rendering (the [tgdtool analyze] text
    output). *)

val pp_explain : report Fmt.t
(** The per-notion lattice verdicts with their refutations — the
    [tgdtool analyze --explain] addendum. *)

val to_json : report -> string
(** Single-line JSON object, [schema_version] 2: the v1 summary fields
    and diagnostics array plus a [lattice] object with one
    [{"verdict", "detail"?}] entry per notion and the stratum partition.
    Stable key order. *)
