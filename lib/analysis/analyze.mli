(** The multi-pass analysis driver.

    [run sigma] executes every static pass — dependency graph, termination
    certificates, rule lints, strategy selection — and returns one report.
    The optional [oracle] enables the (chase-backed, hence comparatively
    expensive) subsumption lint; callers above the chase layer inject
    [fun rest s -> Entailment.entails rest s = Proved]. *)

open Tgd_syntax

type report = {
  n_rules : int;
  strategy : Strategy.t;
  wa_witness : Termination.wa_witness option;
      (** present exactly when the set is not weakly acyclic *)
  ja_witness : Termination.ja_witness option;
      (** present exactly when the set is not jointly acyclic *)
  sccs : Relation.t list list;
  strata_depth : int;
  dead_rules : int list;
  diagnostics : Diagnostic.t list;  (** sorted, most severe first *)
}

val run : ?oracle:(Tgd.t list -> Tgd.t -> bool) -> Tgd.t list -> report

val exit_code : report -> int
(** [Diagnostic.exit_code] of the report's diagnostics: 0 clean, 1 warnings,
    2 errors. *)

val pp : report Fmt.t
(** Human-readable multi-line rendering (the [tgdtool analyze] text
    output). *)

val to_json : report -> string
(** Single-line JSON object with the summary fields and the diagnostics
    array; stable key order. *)
