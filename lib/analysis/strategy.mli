(** Analysis-driven engine strategy.

    The analyzer's verdicts translate into concrete engine behavior:

    - a set of {e full} tgds is plain Datalog — saturate, no nulls, no
      termination question;
    - a certified-terminating set may chase to completion: round budgets
      are advisory and a [Truncated Rounds] outcome is promoted by
      re-running without the round cap ({!Chase.restricted} with
      [~analyze:true] does this automatically);
    - anything else chases under the caller's budget and keeps the typed
      [Truncated] outcome. *)

open Tgd_syntax

type engine =
  | Datalog_saturation   (** all rules full: finite saturation, no nulls *)
  | Chase_to_completion  (** termination certificate: run the chase out *)
  | Budgeted_chase       (** no certificate: trust the budget, keep [Truncated] *)

type t = {
  engine : engine;
  cert : Termination.cert option;
  common_classes : Tgd_class.cls list;
      (** classes every rule belongs to, most restrictive first *)
}

val decide : ?deep:bool -> Tgd.t list -> t
(** Strategy for the rule set.  The default consults only the
    polynomial front of the termination lattice (weak, joint, super-weak
    acyclicity) — cheap enough for per-request admission and
    per-candidate screening.  [~deep:true] runs the full
    {!Lattice.classify}, including the budgeted critical-instance
    notions (MSA, MFA) and stratified composition — deterministic, but
    potentially a chase; reserve it for cached or offline paths. *)

val may_promote : t -> bool
(** May a round-capped [Truncated] be promoted to a definite result by
    re-running uncapped?  True exactly for {!Datalog_saturation} and
    {!Chase_to_completion}. *)

type cost =
  | Cheap      (** no chase at all (static ops like classify/analyze) *)
  | Moderate   (** chase work bounded by a termination certificate *)
  | Expensive  (** uncertified: may burn its entire budget *)
(** Predicted per-request cost class, for admission control in the
    serving layer. *)

val predicted_cost : t -> cost
(** [Moderate] for {!Datalog_saturation} and {!Chase_to_completion} (the
    chase is provably finite), [Expensive] for {!Budgeted_chase}.  Never
    [Cheap]: a strategy is only consulted for requests that chase. *)

val cost_weight : cost -> int
(** Relative per-item weight of a cost class: [1] for [Cheap]/[Moderate],
    [64] for [Expensive].  The common currency between the screening
    chunker here and the serving layer's batch chunker. *)

val item_weight : t -> int
(** Relative cost of screening one rewrite candidate: [1] when the chase
    per candidate is provably bounded ({!Datalog_saturation},
    {!Chase_to_completion}), [64] when uncertified ({!Budgeted_chase}) —
    each candidate may burn its whole per-candidate budget.
    [item_weight t = cost_weight (predicted_cost t)]. *)

val chunk_weight_target : int
(** Weight a pool chunk should carry — enough to amortize one queue
    claim into noise.  [chunk ≈ chunk_weight_target / per-item weight]. *)

val screen_chunk : t -> jobs:int -> n:int -> int
(** Cost-sized chunk for a screening sweep of [n] candidates on a
    [jobs]-worker pool: certified items pack many per queue claim (to
    amortize dispatch), uncertified items get small chunks (dynamic
    claiming balances their high variance), and the result never drops
    below ~4 chunks per worker so work-stealing has something to steal.
    Always ≥ 1; pass it as [?chunk] to the {!Pool} batch operations. *)

val sweep_cost : t -> cap:float -> candidates:float -> cost
(** Admission cost of a candidate sweep: the candidate count weighted by
    {!item_weight} (calibrated so [cap] bounds an {e uncertified} space).
    A certified sweep admits a 64× larger space before turning
    [Expensive], keeping large certified workloads on the warm path;
    otherwise the result is {!predicted_cost} (at least [Moderate]). *)

val max_cost : cost -> cost -> cost
val cost_name : cost -> string
val pp_cost : cost Fmt.t

val engine_name : engine -> string
val pp_engine : engine Fmt.t
val pp : t Fmt.t
