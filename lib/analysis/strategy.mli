(** Analysis-driven engine strategy.

    The analyzer's verdicts translate into concrete engine behavior:

    - a set of {e full} tgds is plain Datalog — saturate, no nulls, no
      termination question;
    - a certified-terminating set may chase to completion: round budgets
      are advisory and a [Truncated Rounds] outcome is promoted by
      re-running without the round cap ({!Chase.restricted} with
      [~analyze:true] does this automatically);
    - anything else chases under the caller's budget and keeps the typed
      [Truncated] outcome. *)

open Tgd_syntax

type engine =
  | Datalog_saturation   (** all rules full: finite saturation, no nulls *)
  | Chase_to_completion  (** termination certificate: run the chase out *)
  | Budgeted_chase       (** no certificate: trust the budget, keep [Truncated] *)

type t = {
  engine : engine;
  cert : Termination.cert option;
  common_classes : Tgd_class.cls list;
      (** classes every rule belongs to, most restrictive first *)
}

val decide : Tgd.t list -> t

val may_promote : t -> bool
(** May a round-capped [Truncated] be promoted to a definite result by
    re-running uncapped?  True exactly for {!Datalog_saturation} and
    {!Chase_to_completion}. *)

type cost =
  | Cheap      (** no chase at all (static ops like classify/analyze) *)
  | Moderate   (** chase work bounded by a termination certificate *)
  | Expensive  (** uncertified: may burn its entire budget *)
(** Predicted per-request cost class, for admission control in the
    serving layer. *)

val predicted_cost : t -> cost
(** [Moderate] for {!Datalog_saturation} and {!Chase_to_completion} (the
    chase is provably finite), [Expensive] for {!Budgeted_chase}.  Never
    [Cheap]: a strategy is only consulted for requests that chase. *)

val max_cost : cost -> cost -> cost
val cost_name : cost -> string
val pp_cost : cost Fmt.t

val engine_name : engine -> string
val pp_engine : engine Fmt.t
val pp : t Fmt.t
