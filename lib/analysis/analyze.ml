open Tgd_syntax

type report = {
  n_rules : int;
  strategy : Strategy.t;
  lattice : Lattice.profile;
  wa_witness : Termination.wa_witness option;
  ja_witness : Termination.ja_witness option;
  sccs : Relation.t list list;
  strata_depth : int;
  dead_rules : int list;
  diagnostics : Diagnostic.t list;
}

let reachability_diagnostics sigma dead =
  let dead_diags =
    List.map
      (fun i ->
        Diagnostic.make ~rule:i Diagnostic.Warning ~code:"dead-rule"
          (Fmt.str
             "%a can never fire when databases populate only extensional \
              relations: a body relation is neither extensional nor derivable"
             Tgd.pp (List.nth sigma i)))
      dead
  in
  let underived =
    Relation.Set.elements (Depgraph.underived sigma)
    |> List.map (fun r ->
           Diagnostic.make Diagnostic.Info ~code:"underived-predicate"
             (Fmt.str "%s is never derivable from the extensional relations"
                (Relation.name r)))
  in
  let unconsumed =
    Relation.Set.elements (Depgraph.unconsumed sigma)
    |> List.map (fun r ->
           Diagnostic.make Diagnostic.Info ~code:"unconsumed-predicate"
             (Fmt.str "%s is derived but never used in any rule body"
                (Relation.name r)))
  in

  dead_diags @ underived @ unconsumed

let termination_diagnostics strategy wa_witness =
  match strategy.Strategy.cert with
  | Some _ -> []
  | None ->
    let detail =
      match wa_witness with
      | Some w -> Fmt.str " (%a)" Termination.pp_wa_witness w
      | None -> ""
    in
    [ Diagnostic.make Diagnostic.Warning ~code:"no-termination-certificate"
        ("chase termination could not be certified anywhere in the lattice; \
          budgeted results stay truncated" ^ detail)
    ]

let run ?oracle sigma =
  let g = Depgraph.make sigma in
  let lattice = Lattice.profile sigma in
  (* the strategy consumes the lattice verdict directly rather than
     re-running the deep classification *)
  let strategy =
    let shallow = Strategy.decide sigma in
    match (shallow.Strategy.cert, lattice.Lattice.certified) with
    | None, Some (cert, _) ->
      { shallow with
        Strategy.cert = Some cert;
        engine =
          (match shallow.Strategy.engine with
          | Strategy.Budgeted_chase -> Strategy.Chase_to_completion
          | e -> e)
      }
    | _ -> shallow
  in
  let wa_witness = Termination.weak_acyclicity_witness sigma in
  let ja_witness = Termination.jointly_acyclic_witness sigma in
  let sccs = Depgraph.sccs g in
  let strata = Depgraph.strata g in
  let strata_depth =
    Relation.Map.fold (fun _ l acc -> max acc (l + 1)) strata 0
  in
  let dead = Depgraph.dead_rules sigma in
  let diagnostics =
    Diagnostic.sort
      (Lint.all ?oracle sigma
      @ reachability_diagnostics sigma dead
      @ termination_diagnostics strategy wa_witness)
  in
  { n_rules = List.length sigma;
    strategy;
    lattice;
    wa_witness;
    ja_witness;
    sccs;
    strata_depth;
    dead_rules = dead;
    diagnostics
  }

let certificate r = Option.map snd r.lattice.Lattice.certified

let exit_code r = Diagnostic.exit_code r.diagnostics

let pp ppf r =
  Fmt.pf ppf "@[<v>rules: %d@,%a@,sccs: %d (strata depth %d)@," r.n_rules
    Strategy.pp r.strategy (List.length r.sccs) r.strata_depth;
  (match r.strategy.Strategy.cert, r.wa_witness with
  | None, Some w -> Fmt.pf ppf "not weakly acyclic: %a@," Termination.pp_wa_witness w
  | _ -> ());
  (match r.strategy.Strategy.cert, r.ja_witness with
  | None, Some w -> Fmt.pf ppf "not jointly acyclic: %a@," Termination.pp_ja_witness w
  | _ -> ());
  if r.diagnostics = [] then Fmt.pf ppf "no diagnostics@]"
  else
    Fmt.pf ppf "%a@]"
      Fmt.(list ~sep:cut Diagnostic.pp)
      r.diagnostics

let pp_explain ppf r =
  Fmt.pf ppf "@[<v>termination lattice:@,%a" Lattice.pp_profile r.lattice;
  (match r.lattice.Lattice.strata with
  | [] | [ _ ] -> ()
  | strata ->
    Fmt.pf ppf "@,strata: %a"
      Fmt.(list ~sep:(any " | ") (list ~sep:(any ",") int))
      strata);
  Fmt.pf ppf "@]"

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let verdict_json v =
  match Lattice.verdict_detail v with
  | None -> Printf.sprintf "{\"verdict\":\"%s\"}" (Lattice.verdict_name v)
  | Some d ->
    Printf.sprintf "{\"verdict\":\"%s\",\"detail\":\"%s\"}"
      (Lattice.verdict_name v) (json_escape d)

(* Schema version 2: version 1 had no [schema_version] key and no
   [lattice] object; every v1 key keeps its meaning, [certificate] now
   reports the strongest lattice notion rather than only WA/JA. *)
let to_json r =
  let buf = Buffer.create 512 in
  let classes =
    r.strategy.Strategy.common_classes
    |> List.map (fun c -> "\"" ^ Tgd_class.cls_name c ^ "\"")
    |> String.concat ","
  in
  let p = r.lattice in
  let strata_json =
    p.Lattice.strata
    |> List.map (fun s ->
           "[" ^ String.concat "," (List.map string_of_int s) ^ "]")
    |> String.concat ","
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema_version\":2,\"rules\":%d,\"engine\":\"%s\",\"certificate\":%s,"
       r.n_rules
       (Strategy.engine_name r.strategy.Strategy.engine)
       (match r.strategy.Strategy.cert with
       | Some c -> "\"" ^ Termination.cert_name c ^ "\""
       | None -> "null"));
  Buffer.add_string buf
    (Printf.sprintf
       "\"lattice\":{\"weak\":%s,\"joint\":%s,\"super_weak\":%s,\"msa\":%s,\"mfa\":%s,\"stratified\":%s,\"strata\":[%s]},"
       (verdict_json p.Lattice.wa) (verdict_json p.Lattice.ja)
       (verdict_json p.Lattice.swa) (verdict_json p.Lattice.msa)
       (verdict_json p.Lattice.mfa)
       (verdict_json p.Lattice.stratification)
       strata_json);
  Buffer.add_string buf
    (Printf.sprintf
       "\"classes\":[%s],\"sccs\":%d,\"strata_depth\":%d,\"dead_rules\":[%s],\"exit_code\":%d,\"diagnostics\":["
       classes (List.length r.sccs) r.strata_depth
       (String.concat "," (List.map string_of_int r.dead_rules))
       (exit_code r));
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Diagnostic.to_json d))
    r.diagnostics;
  Buffer.add_string buf "]}";
  Buffer.contents buf
