open Tgd_syntax

(* Proof-carrying termination certificates.  Each constructor carries the
   machine-checkable witness of its notion; {!to_string} renders the
   versioned wire format that {!Certcheck} verifies with fully independent
   code (the format below is the only contract between the two). *)

type t =
  | Weak of { edges : (Relation.t * int * Relation.t * int * bool) list }
  | Joint of { movement : (int * string * (Relation.t * int) list) list }
  | Super_weak of { moves : (int * (int * int * int) list) list }
  | Model_summarising of { model : Fact.t list }
  | Model_faithful of {
      model : Fact.t list;
      creation : (Constant.t * Critical_chase.creation) list;
    }
  | Stratified of { strata : int list list; subs : t list }

let notion = function
  | Weak _ -> Termination.Weakly_acyclic
  | Joint _ -> Termination.Jointly_acyclic
  | Super_weak _ -> Termination.Super_weakly_acyclic
  | Model_summarising _ -> Termination.Model_summarising
  | Model_faithful _ -> Termination.Model_faithful
  | Stratified _ -> Termination.Stratified

(* Certificates are bound to the rule set by a digest over the sorted
   canonical rule texts — order-independent, renaming-sensitive (the
   checker re-parses the same source, so renaming insensitivity is not
   needed). *)
let sigma_digest sigma =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" (List.sort String.compare (List.map Tgd.to_string sigma))))

let no_space s =
  if String.exists (fun c -> c = ' ' || c = '\n' || c = '\t') s then
    invalid_arg ("certificate token contains whitespace: " ^ s)
  else s

let const_token = function
  | Constant.Named s -> "n:" ^ no_space s
  | Constant.Indexed i -> "i:" ^ string_of_int i
  | Constant.Null i -> "N:" ^ string_of_int i
  | Constant.Pair _ -> invalid_arg "certificate constants cannot be products"

let fact_line buf f =
  Buffer.add_string buf "fact ";
  Buffer.add_string buf (no_space (Relation.name (Fact.rel f)));
  List.iter
    (fun c ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (const_token c))
    (Fact.tuple f);
  Buffer.add_char buf '\n'

let rec payload buf = function
  | Weak { edges } ->
    Buffer.add_string buf "notion weak\n";
    List.iter
      (fun (r1, p1, r2, p2, special) ->
        Buffer.add_string buf
          (Printf.sprintf "edge %s %d %s %d %s\n"
             (no_space (Relation.name r1))
             p1
             (no_space (Relation.name r2))
             p2
             (if special then "special" else "regular")))
      edges
  | Joint { movement } ->
    Buffer.add_string buf "notion joint\n";
    List.iter
      (fun (rule, exvar, positions) ->
        Buffer.add_string buf (Printf.sprintf "mov %d %s" rule (no_space exvar));
        List.iter
          (fun (r, p) ->
            Buffer.add_string buf
              (Printf.sprintf " %s:%d" (no_space (Relation.name r)) p))
          positions;
        Buffer.add_char buf '\n')
      movement
  | Super_weak { moves } ->
    Buffer.add_string buf "notion superweak\n";
    List.iter
      (fun (rule, places) ->
        Buffer.add_string buf (Printf.sprintf "move %d" rule);
        List.iter
          (fun (r, a, p) ->
            Buffer.add_string buf (Printf.sprintf " %d:%d:%d" r a p))
          places;
        Buffer.add_char buf '\n')
      moves
  | Model_summarising { model } ->
    Buffer.add_string buf "notion msa\n";
    List.iter (fact_line buf) (List.sort Fact.compare model)
  | Model_faithful { model; creation } ->
    Buffer.add_string buf "notion mfa\n";
    List.iter (fact_line buf) (List.sort Fact.compare model);
    List.iter
      (fun (c, cr) ->
        Buffer.add_string buf
          (Printf.sprintf "null %s %d %s" (const_token c)
             cr.Critical_chase.c_rule
             (no_space cr.Critical_chase.c_exvar));
        List.iter
          (fun a ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (const_token a))
          cr.Critical_chase.c_args;
        Buffer.add_char buf '\n')
      creation
  | Stratified { strata; subs } ->
    Buffer.add_string buf "notion stratified\n";
    List.iter
      (fun rules ->
        Buffer.add_string buf "stratum";
        List.iter (fun i -> Buffer.add_string buf (" " ^ string_of_int i)) rules;
        Buffer.add_char buf '\n')
      strata;
    List.iteri
      (fun i sub ->
        Buffer.add_string buf (Printf.sprintf "sub %d\n" i);
        payload buf sub;
        Buffer.add_string buf "endsub\n")
      subs

let to_string sigma t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "tgdcert v1\n";
  Buffer.add_string buf
    (Printf.sprintf "rules %d %s\n" (List.length sigma) (sigma_digest sigma));
  payload buf t;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let to_file path sigma t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string sigma t))

let pp ppf t = Fmt.string ppf (Termination.cert_name (notion t))
