(** Independent verification of [tgdcert v1] certificates.

    The checker shares only the wire format and the rule syntax with the
    certificate producers ({!Cert}, {!Lattice}): it re-parses the
    certificate text from scratch and re-derives every graph and closure
    with its own algorithms (Kahn / Kosaraju where the producers use
    DFS, eager-substitution unification where the place graph walks a
    triangular substitution, a naive relation-indexed join where the
    chase uses the semi-naive engine).

    Claimed witnesses may over-approximate — a larger graph or movement
    set only adds constraints — but they must contain everything the
    checker re-derives, be closed, and still pass the acyclicity check,
    so [Ok _] is sound even against a dishonest producer. *)

open Tgd_syntax

val verify : Tgd.t list -> string -> (Termination.cert, string) result
(** [verify sigma text] checks the certificate [text] against the rule
    set [sigma]: format, rule-count and digest binding, witness
    containment, closure, and the notion's acyclicity condition.
    [Ok notion] means the rules provably have a terminating (restricted
    and Skolem) chase on every instance; [Error reason] pinpoints the
    first check that failed. *)
