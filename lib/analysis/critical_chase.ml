open Tgd_syntax
open Tgd_instance
open Tgd_engine

(* ------------------------------------------------------------------ *)
(* Shared scaffolding                                                  *)
(* ------------------------------------------------------------------ *)

let schema_of sigma =
  let rels =
    List.fold_left
      (fun acc tgd ->
        List.fold_left
          (fun acc a -> Relation.Set.add (Atom.rel a) acc)
          acc
          (Tgd.body tgd @ Tgd.head tgd))
      Relation.Set.empty sigma
  in
  Schema.make (Relation.Set.elements rels)

let default_budget () = Budget.make ~rounds:128 ~facts:20_000 ~fuel:60_000 ()

(* Index rules by syntactic identity so [on_fire]'s tgd value maps back to
   its position in the analysed list. *)
let rule_index sigma =
  let arr = Array.of_list sigma in
  fun tgd ->
    let rec go i =
      if i >= Array.length arr then invalid_arg "rule_index: unknown rule"
      else if Tgd.equal arr.(i) tgd then i
      else go (i + 1)
    in
    go 0

let sorted_frontier tgd = Variable.Set.elements (Tgd.frontier tgd)

(* Reserved names for the MSA transformation; a user schema using the
   [__msa_] prefix would collide, so the analysis refuses it upfront. *)
let msa_d_rel = Relation.make "__msa_D" 2
let msa_const_name i z = Printf.sprintf "__msa_c%d_%s" i (Variable.name z)
let reserved_prefix = "__msa_"

let uses_reserved sigma =
  List.exists
    (fun tgd ->
      List.exists
        (fun a ->
          String.length (Relation.name (Atom.rel a))
          >= String.length reserved_prefix
          && String.sub (Relation.name (Atom.rel a)) 0
               (String.length reserved_prefix)
             = reserved_prefix)
        (Tgd.body tgd @ Tgd.head tgd))
    sigma

(* ------------------------------------------------------------------ *)
(* MFA — model-faithful acyclicity (Cuenca Grau et al., JAIR 2013)     *)
(* ------------------------------------------------------------------ *)

type creation = { c_rule : int; c_exvar : string; c_args : Constant.t list }

type mfa_witness = {
  mfa_model : Fact.t list;
  mfa_creation : (Constant.t * creation) list;
  mfa_digest : string;
}

type mfa_refutation = {
  mfa_cycle_rule : int;
  mfa_cycle_exvar : string;
  mfa_depth : int;
}

type 'w verdict =
  | Holds of 'w
  | Fails of string
  | Unknown of string

module IntSet = Set.Make (Int)

let trace_digest facts creation =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f -> Buffer.add_string buf (Fact.to_string f); Buffer.add_char buf '\n')
    (List.sort Fact.compare facts);
  List.iter
    (fun (c, cr) ->
      Buffer.add_string buf
        (Printf.sprintf "%s<-%d.%s(%s)\n" (Constant.to_string c) cr.c_rule
           cr.c_exvar
           (String.concat "," (List.map Constant.to_string cr.c_args))))
    (List.sort compare creation);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Run the Skolem (semi-oblivious) chase of the critical instance,
   tracking which (rule, existential) pairs occur in the ancestry of each
   invented null.  A null whose creator already occurs among its
   ancestors is a cyclic Skolem term: the chase cannot be
   model-faithfully acyclic.  The detection raises {!Seminaive.Halt}, so
   a refutation costs only the prefix of the chase that exposes it. *)
let mfa ?budget sigma =
  match sigma with
  | [] -> Holds { mfa_model = []; mfa_creation = []; mfa_digest = trace_digest [] [] }
  | _ ->
    let budget = match budget with Some b -> b | None -> default_budget () in
    let idx_of = rule_index sigma in
    let ids : (int * string, int) Hashtbl.t = Hashtbl.create 16 in
    let id_of i z =
      let key = (i, Variable.name z) in
      match Hashtbl.find_opt ids key with
      | Some id -> id
      | None ->
        let id = Hashtbl.length ids in
        Hashtbl.add ids key id;
        id
    in
    let anc : (Constant.t, IntSet.t) Hashtbl.t = Hashtbl.create 64 in
    let creation : (Constant.t, creation) Hashtbl.t = Hashtbl.create 64 in
    let refutation = ref None in
    let on_fire tgd hom facts =
      let i = idx_of tgd in
      let existentials = Tgd.existential_vars tgd in
      if not (Variable.Set.is_empty existentials) then begin
        let args =
          List.map
            (fun x ->
              match Binding.find x hom with
              | Some c -> c
              | None -> assert false)
            (sorted_frontier tgd)
        in
        let parent_anc =
          List.fold_left
            (fun acc c ->
              match Hashtbl.find_opt anc c with
              | Some s -> IntSet.union s acc
              | None -> acc)
            IntSet.empty args
        in
        (* the null invented for existential [z] is the constant standing
           where [z] does in the grounded head *)
        let seen = Hashtbl.create 4 in
        List.iter2
          (fun atom fact ->
            Array.iteri
              (fun pos t ->
                match t with
                | Term.Var z
                  when Variable.Set.mem z existentials
                       && not (Hashtbl.mem seen (Variable.name z)) ->
                  Hashtbl.add seen (Variable.name z) ();
                  let c = (Fact.tuple_arr fact).(pos) in
                  if not (Hashtbl.mem creation c) then begin
                    let id = id_of i z in
                    if IntSet.mem id parent_anc then begin
                      refutation :=
                        Some
                          { mfa_cycle_rule = i;
                            mfa_cycle_exvar = Variable.name z;
                            mfa_depth = IntSet.cardinal parent_anc
                          };
                      raise Seminaive.Halt
                    end;
                    Hashtbl.add creation c
                      { c_rule = i; c_exvar = Variable.name z; c_args = args };
                    Hashtbl.add anc c (IntSet.add id parent_anc)
                  end
                | Term.Var _ | Term.Const _ -> ())
              (Atom.args_arr atom))
          (Tgd.head tgd) facts
      end
    in
    let inst = Critical.make (schema_of sigma) 1 in
    let r = Seminaive.run ~mode:Seminaive.Skolem ~budget ~on_fire sigma inst in
    match (!refutation, r.Seminaive.outcome) with
    | Some ref_, _ ->
      Fails
        (Fmt.str
           "cyclic skolem term: rule %d reinvents %s inside its own term \
            (nesting depth %d)"
           ref_.mfa_cycle_rule ref_.mfa_cycle_exvar ref_.mfa_depth)
    | None, Seminaive.Terminated ->
      let model = Instance.fact_list r.Seminaive.instance in
      let creation_l = Hashtbl.fold (fun c cr acc -> (c, cr) :: acc) creation [] in
      let creation_l = List.sort compare creation_l in
      Holds
        { mfa_model = model;
          mfa_creation = creation_l;
          mfa_digest = trace_digest model creation_l
        }
    | None, Seminaive.Truncated reason ->
      Unknown
        (Fmt.str "critical-instance chase exhausted its budget (%s)"
           (Budget.exhaustion_to_string reason))

(* ------------------------------------------------------------------ *)
(* MSA — model-summarising acyclicity                                  *)
(* ------------------------------------------------------------------ *)

(* The summarised program replaces the Skolem term of each existential
   [z] of rule [i] by one fresh constant [c_{i,z}].  Tgds are
   constant-free, so the constant is smuggled in through a unary marker
   relation seeded with exactly that constant:

     B(x̄) -> ∃z. H(x̄, z)
   becomes
     B(x̄), __msa_c_i_z(u) -> H(x̄, u), __msa_D(x_1, u), …, __msa_D(x_k, u)

   with one [__msa_D] edge from every frontier value to the summarising
   constant.  The program is full, so its saturation from the critical
   instance is finite; the set is MSA when the [__msa_D] graph of the
   saturation has no cycle through a summarising constant. *)

type msa_witness = { msa_model : Fact.t list; msa_digest : string }

let summarise sigma =
  List.mapi
    (fun i tgd ->
      let existentials = Variable.Set.elements (Tgd.existential_vars tgd) in
      if existentials = [] then (Tgd.make ~body:(Tgd.body tgd) ~head:(Tgd.head tgd), [])
      else begin
        let subst, markers, consts =
          List.fold_left
            (fun (subst, markers, consts) z ->
              let u = Variable.fresh ~prefix:"u" () in
              let rel = Relation.make (msa_const_name i z) 1 in
              ( Variable.Map.add z u subst,
                Atom.make rel [ Term.var u ] :: markers,
                Fact.make rel [ Constant.named (msa_const_name i z) ] :: consts ))
            (Variable.Map.empty, [], [])
            existentials
        in
        let frontier = sorted_frontier tgd in
        let d_edges =
          List.concat_map
            (fun z ->
              let u = Variable.Map.find z subst in
              List.map
                (fun x -> Atom.make msa_d_rel [ Term.var x; Term.var u ])
                frontier)
            existentials
        in
        let head =
          List.map (Atom.rename subst) (Tgd.head tgd) @ d_edges
        in
        (Tgd.make ~body:(Tgd.body tgd @ List.rev markers) ~head, List.rev consts)
      end)
    sigma

let find_const_cycle edges =
  (* [edges]: adjacency among constants; report any cycle. *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl a) in
      Hashtbl.replace tbl a (b :: cur))
    edges;
  let state = Hashtbl.create 64 in
  let cycle = ref None in
  let rec dfs stack c =
    match Hashtbl.find_opt state c with
    | Some `Black -> ()
    | Some `Gray ->
      if !cycle = None then begin
        let rec suffix = function
          | [] -> []
          | d :: rest -> if Constant.equal d c then [ d ] else d :: suffix rest
        in
        cycle := Some (List.rev (suffix stack))
      end
    | None ->
      Hashtbl.replace state c `Gray;
      List.iter
        (fun d -> if !cycle = None then dfs (d :: stack) d)
        (Option.value ~default:[] (Hashtbl.find_opt tbl c));
      Hashtbl.replace state c `Black
  in
  List.iter (fun (a, _) -> if !cycle = None then dfs [ a ] a) edges;
  !cycle

let msa ?budget sigma =
  match sigma with
  | [] -> Holds { msa_model = []; msa_digest = trace_digest [] [] }
  | _ when uses_reserved sigma ->
    Unknown "schema uses the reserved __msa_ prefix"
  | _ ->
    let budget = match budget with Some b -> b | None -> default_budget () in
    let transformed = summarise sigma in
    let rules = List.map fst transformed in
    let seeds = List.concat_map snd transformed in
    let base = Critical.make (schema_of sigma) 1 in
    let schema' = schema_of rules in
    let inst =
      List.fold_left Instance.add_fact
        (List.fold_left Instance.add_fact (Instance.empty schema')
           (Instance.fact_list base))
        seeds
    in
    let r = Seminaive.run ~mode:Seminaive.Restricted ~budget rules inst in
    (match r.Seminaive.outcome with
    | Seminaive.Truncated reason ->
      Unknown
        (Fmt.str "critical-instance saturation exhausted its budget (%s)"
           (Budget.exhaustion_to_string reason))
    | Seminaive.Terminated ->
      let model = Instance.fact_list r.Seminaive.instance in
      let d_edges =
        List.filter_map
          (fun f ->
            if Relation.equal (Fact.rel f) msa_d_rel then
              match Fact.tuple f with [ a; b ] -> Some (a, b) | _ -> None
            else None)
          model
      in
      (match find_const_cycle d_edges with
      | Some cycle ->
        Fails
          (Fmt.str "summarised dependency cycle %a"
             Fmt.(list ~sep:(any " -> ") Constant.pp)
             cycle)
      | None ->
        Holds { msa_model = model; msa_digest = trace_digest model [] }))
