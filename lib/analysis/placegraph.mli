(** Place graphs and super-weak acyclicity (Marnette, PODS 2009).

    The position dependency graph of {!Termination} collapses every
    occurrence of a relation to one node per argument position.  A
    {e place} keeps occurrences apart — one node per argument position of
    each atom occurrence of each rule — and null propagation between
    places is tested by {e unification of Skolemized atoms} rather than
    position equality, so a rule like [T(y,y) -> S(y)] only consumes a
    null that can actually appear in both arguments of one [T]-fact.

    Super-weak acyclicity holds when the rule-level trigger relation
    [σ ⊏ σ'] — "a null invented by σ can move into a body place of σ',
    enabling a new trigger" — is acyclic.  It guarantees termination of
    the Skolem (semi-oblivious) and therefore also the restricted chase
    on every instance.  SWA strictly generalizes weak acyclicity and is
    incomparable with joint acyclicity. *)

open Tgd_syntax

type place = { rule : int; atom : int; pos : int }
(** One argument position of one atom occurrence.  [rule] indexes the
    analysed list; [atom] indexes the rule's body or head atom list
    (which one is determined by context); [pos] is the argument
    position. *)

val place_compare : place -> place -> int

type swa_witness = {
  moves : (int * place list) list;
      (** For each rule [i], the closure [Move(Σ, Out(σ_i))] as a set of
          {e head} places: every head place a null invented by [σ_i] can
          be copied out of. *)
  trigger_edges : (int * int) list;
      (** The trigger relation computed from [moves] — acyclic, or the
          witness would be a refutation. *)
}

type swa_refutation = { rule_cycle : int list }
(** Rules forming a cycle of the trigger relation. *)

val analyse : Tgd.t list -> (swa_witness, swa_refutation) result

val is_super_weakly_acyclic : Tgd.t list -> bool

val pp_place : place Fmt.t
val pp_refutation : swa_refutation Fmt.t
