(** Rule-level lints.

    Each pass returns diagnostics indexed into the rule list it was given.
    The subsumption pass needs entailment, which lives above this library in
    the dependency order, so it takes the prover as an [oracle] argument —
    [Analyze.run] injects [Entailment]-backed closures when asked to. *)

open Tgd_syntax

val duplicates : Tgd.t list -> Diagnostic.t list
(** Rules syntactically equal to an earlier rule up to variable renaming
    (via {!Canonical.equal_up_to_renaming}); the later occurrence is
    flagged.  [Warning], code ["duplicate-rule"]. *)

val tautological : Tgd.t -> bool
(** Does the head map homomorphically into the body, fixing the frontier?
    Equivalent to entailment by the empty theory, decided without a chase;
    {!Candidates} uses it to prune tautological candidates statically. *)

val tautological_heads : Tgd.t list -> Diagnostic.t list
(** Rules whose head already follows from their body alone (a homomorphism
    from the head into the body fixing the frontier): firing them can never
    add information.  [Error], code ["tautological-head"]. *)

val unused_universals : Tgd.t list -> Diagnostic.t list
(** Universal variables occurring exactly once in the rule (one body
    position, never in the head): they only assert that the position is
    occupied and usually indicate a typo.  [Info], code
    ["unused-universal"]. *)

val class_downgrades : Tgd.t list -> Diagnostic.t list
(** Hints that a rule narrowly misses a cheaper syntactic class: a
    frontier-guarded rule one guard atom short of guarded (the missing
    universals are listed), or a guarded rule with a two-atom body that a
    join rewrite could make linear.  [Hint], codes ["almost-guarded"] /
    ["almost-linear"]. *)

val subsumed :
  oracle:(Tgd.t list -> Tgd.t -> bool) -> Tgd.t list -> Diagnostic.t list
(** Rules entailed by the other rules of the set: [oracle rest rule] must
    return [true] only when [rest ⊨ rule] definitely holds.  [Warning],
    code ["subsumed-rule"].  Duplicate rules are reported by {!duplicates}
    already, so exact (up to renaming) copies are skipped here. *)

val all : ?oracle:(Tgd.t list -> Tgd.t -> bool) -> Tgd.t list -> Diagnostic.t list
(** Every pass above; the subsumption pass only when an oracle is given. *)
