(** Proof-carrying termination certificates.

    A certificate names its acyclicity notion {e and} carries the witness
    that makes the claim machine-checkable: the full dependency graph for
    weak acyclicity, the movement sets for joint acyclicity, the
    place-move closures for super-weak acyclicity, the saturated critical
    model for MSA, the terminal Skolem chase with its null-provenance map
    for MFA, and the stratum partition with per-stratum sub-certificates
    for stratified sets.

    {!to_string} renders the versioned [tgdcert v1] wire format; the
    independent checker ({!Certcheck}) consumes only that text plus the
    original rules, sharing no verification code with the producers. *)

open Tgd_syntax

type t =
  | Weak of { edges : (Relation.t * int * Relation.t * int * bool) list }
      (** The complete position dependency graph; the claim is that no
          special edge lies on a cycle. *)
  | Joint of { movement : (int * string * (Relation.t * int) list) list }
      (** [Mov(y)] for every existential [(rule, y)]; the claim is that
          the induced existential-variable graph is acyclic. *)
  | Super_weak of { moves : (int * (int * int * int) list) list }
      (** [Move(Σ, Out(σ_i))] per rule, each place as
          [(rule, head atom, pos)]; the claim is that the induced trigger
          relation is acyclic. *)
  | Model_summarising of { model : Fact.t list }
      (** The saturation of the summarised program over the critical
          instance; the claim is closure plus [__msa_D]-acyclicity. *)
  | Model_faithful of {
      model : Fact.t list;
      creation : (Constant.t * Critical_chase.creation) list;
    }
      (** The terminal critical-instance Skolem chase and each null's
          Skolem term; the claim is closure plus term acyclicity. *)
  | Stratified of { strata : int list list; subs : t list }
      (** A partition of the rules whose cross-stratum precedence is
          acyclic, with one sub-certificate per stratum. *)

val notion : t -> Termination.cert

val sigma_digest : Tgd.t list -> string
(** Hex digest binding a certificate to its rule set: MD5 over the
    sorted canonical rule texts. *)

val to_string : Tgd.t list -> t -> string
(** The [tgdcert v1] rendering: header [tgdcert v1], a
    [rules <n> <digest>] binding line, the notion payload, and a trailing
    [end]. *)

val to_file : string -> Tgd.t list -> t -> unit

val pp : t Fmt.t
