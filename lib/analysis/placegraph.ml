open Tgd_syntax

(* A place is one argument position of one atom occurrence of one rule —
   the refinement of [Termination.position] that super-weak acyclicity
   needs: two occurrences of the same relation in a rule are different
   places even though they share every position. *)
type place = { rule : int; atom : int; pos : int }

let place_compare a b =
  let c = Int.compare a.rule b.rule in
  if c <> 0 then c
  else
    let c = Int.compare a.atom b.atom in
    if c <> 0 then c else Int.compare a.pos b.pos

(* ------------------------------------------------------------------ *)
(* Skolemized terms and unification                                    *)
(* ------------------------------------------------------------------ *)

(* Variables are tagged with a namespace so the two atoms of a
   unification query are standardized apart without renaming. *)
type sterm =
  | SV of int * Variable.t
  | SF of string * sterm list

(* Skolemized head atom of rule [i]: existential variables become
   function terms over the (sorted) frontier.  The function symbol is
   unique per (rule, existential variable). *)
let skolemize ~ns rule_idx tgd atom =
  let frontier = Variable.Set.elements (Tgd.frontier tgd) in
  let existentials = Tgd.existential_vars tgd in
  Array.map
    (fun t ->
      match t with
      | Term.Const c -> SF ("const:" ^ Constant.to_string c, [])
      | Term.Var v ->
        if Variable.Set.mem v existentials then
          SF
            ( Printf.sprintf "sk_%d_%s" rule_idx (Variable.name v),
              List.map (fun x -> SV (ns, x)) frontier )
        else SV (ns, v))
    (Atom.args_arr atom)

let body_sterms ~ns atom =
  Array.map
    (fun t ->
      match t with
      | Term.Const c -> SF ("const:" ^ Constant.to_string c, [])
      | Term.Var v -> SV (ns, v))
    (Atom.args_arr atom)

module VKey = struct
  type t = int * Variable.t

  let compare (n1, v1) (n2, v2) =
    let c = Int.compare n1 n2 in
    if c <> 0 then c else Variable.compare v1 v2
end

module VMap = Map.Make (VKey)

let rec walk subst t =
  match t with
  | SV (ns, v) -> (
    match VMap.find_opt (ns, v) subst with
    | Some t' -> walk subst t'
    | None -> t)
  | SF _ -> t

let rec occurs subst key t =
  match walk subst t with
  | SV (ns, v) -> VKey.compare (ns, v) key = 0
  | SF (_, args) -> List.exists (occurs subst key) args

let rec unify subst t1 t2 =
  let t1 = walk subst t1 and t2 = walk subst t2 in
  match (t1, t2) with
  | SV (n1, v1), SV (n2, v2) when VKey.compare (n1, v1) (n2, v2) = 0 ->
    Some subst
  | SV (ns, v), t | t, SV (ns, v) ->
    if occurs subst (ns, v) t then None
    else Some (VMap.add (ns, v) t subst)
  | SF (f, a1), SF (g, a2) ->
    if String.equal f g && List.length a1 = List.length a2 then
      List.fold_left2
        (fun acc x y ->
          match acc with None -> None | Some s -> unify s x y)
        (Some subst) a1 a2
    else None

let atoms_unify a1 a2 =
  Array.length a1 = Array.length a2
  &&
  let rec go subst i =
    if i = Array.length a1 then true
    else
      match unify subst a1.(i) a2.(i) with
      | None -> false
      | Some s -> go s (i + 1)
  in
  go VMap.empty 0

(* ------------------------------------------------------------------ *)
(* Super-weak acyclicity (Marnette, PODS 2009)                         *)
(* ------------------------------------------------------------------ *)

type swa_witness = {
  moves : (int * place list) list;
  trigger_edges : (int * int) list;
}

type swa_refutation = { rule_cycle : int list }

(* Everything below works on precomputed per-rule views. *)
type view = {
  tgd : Tgd.t;
  body_atoms : Atom.t array;
  head_atoms : Atom.t array;
  body_sk : sterm array array;  (* namespace 1 *)
  head_sk : sterm array array;  (* namespace 0 *)
}

let view_of i tgd =
  let body_atoms = Array.of_list (Tgd.body tgd) in
  let head_atoms = Array.of_list (Tgd.head tgd) in
  { tgd;
    body_atoms;
    head_atoms;
    body_sk = Array.map (body_sterms ~ns:1) body_atoms;
    head_sk = Array.map (skolemize ~ns:0 i tgd) head_atoms
  }

(* [h] is a head place of [views.(h.rule)]; does the value sitting there
   move into body place [b]?  Same relation, same position, and the two
   atoms unify after skolemizing the head. *)
let moves_to views h b =
  let vh = views.(h.rule) and vb = views.(b.rule) in
  let ha = vh.head_atoms.(h.atom) and ba = vb.body_atoms.(b.atom) in
  h.pos = b.pos
  && Relation.equal (Atom.rel ha) (Atom.rel ba)
  && atoms_unify vh.head_sk.(h.atom) vb.body_sk.(b.atom)

let places_of_var atoms v =
  let acc = ref [] in
  Array.iteri
    (fun ai a ->
      Array.iteri
        (fun pos t ->
          match t with
          | Term.Var w when Variable.equal v w -> acc := (ai, pos) :: !acc
          | Term.Var _ | Term.Const _ -> ())
        (Atom.args_arr a))
    atoms;
  List.rev !acc

(* Move(Σ, Out(σ)) for rule [i], as the set of head places the nulls of
   [σ]'s existential variables can be copied out of.  Seeded with the head
   places of the existentials; closed under "some rule σ' has a variable
   v whose body places are all reachable from the set — then v's head
   places are reachable too". *)
let move_closure views i =
  let seed =
    let v = views.(i) in
    Variable.Set.fold
      (fun z acc ->
        List.map
          (fun (atom, pos) -> { rule = i; atom; pos })
          (places_of_var v.head_atoms z)
        @ acc)
      (Tgd.existential_vars v.tgd) []
  in
  let current = ref (List.sort_uniq place_compare seed) in
  let reaches b = List.exists (fun h -> moves_to views h b) !current in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun j vj ->
        Variable.Set.iter
          (fun v ->
            let bplaces =
              List.map
                (fun (atom, pos) -> { rule = j; atom; pos })
                (places_of_var vj.body_atoms v)
            in
            if bplaces <> [] && List.for_all reaches bplaces then begin
              let hplaces =
                List.map
                  (fun (atom, pos) -> { rule = j; atom; pos })
                  (places_of_var vj.head_atoms v)
              in
              let u =
                List.sort_uniq place_compare (hplaces @ !current)
              in
              if List.length u > List.length !current then begin
                current := u;
                changed := true
              end
            end)
          (Tgd.universal_vars vj.tgd))
      views;
    ()
  done;
  !current

(* σ ⊏ σ': a null of σ can move into some place of In(σ') — a body
   place of a {e frontier} variable of σ'.  A null binding a variable
   that never reaches the head cannot alter what σ' produces (the
   semi-oblivious chase keys firings on the frontier), so non-frontier
   places must not generate triggers: with them WA ⇒ SWA would fail on
   rules whose head shares no variable with the body. *)
let trigger_edges views moves =
  let n = Array.length views in
  let edges = ref [] in
  for i = 0 to n - 1 do
    let mv = List.assoc i moves in
    for j = 0 to n - 1 do
      let vj = views.(j) in
      let frontier = Tgd.frontier vj.tgd in
      let hit = ref false in
      Array.iteri
        (fun atom a ->
          if not !hit then
            Array.iteri
              (fun pos t ->
                if
                  (not !hit)
                  && (match t with
                     | Term.Var v -> Variable.Set.mem v frontier
                     | Term.Const _ -> false)
                  && List.exists
                       (fun h -> moves_to views h { rule = j; atom; pos })
                       mv
                then hit := true)
              (Atom.args_arr a))
        vj.body_atoms;
      if !hit then edges := (i, j) :: !edges
    done
  done;
  List.rev !edges

(* Cycle detection over rule indices with cycle extraction. *)
let find_cycle ~n edges =
  let succs i = List.filter_map (fun (a, b) -> if a = i then Some b else None) edges in
  let state = Array.make n `White in
  let cycle = ref None in
  let rec dfs stack i =
    match state.(i) with
    | `Black -> ()
    | `Gray ->
      if !cycle = None then begin
        let rec suffix = function
          | [] -> []
          | j :: rest -> if j = i then [ j ] else j :: suffix rest
        in
        cycle := Some (List.rev (suffix stack))
      end
    | `White ->
      state.(i) <- `Gray;
      List.iter (fun j -> if !cycle = None then dfs (j :: stack) j) (succs i);
      state.(i) <- `Black
  in
  for i = 0 to n - 1 do
    if !cycle = None then dfs [ i ] i
  done;
  !cycle

let analyse sigma =
  let views = Array.of_list (List.mapi view_of sigma) in
  let n = Array.length views in
  let moves = List.init n (fun i -> (i, move_closure views i)) in
  let edges = trigger_edges views moves in
  match find_cycle ~n edges with
  | Some rule_cycle -> Error { rule_cycle }
  | None -> Ok { moves; trigger_edges = edges }

let is_super_weakly_acyclic sigma =
  match analyse sigma with Ok _ -> true | Error _ -> false

let pp_place ppf p = Fmt.pf ppf "r%d/a%d[%d]" p.rule p.atom p.pos

let pp_refutation ppf r =
  Fmt.pf ppf "trigger cycle %a"
    Fmt.(list ~sep:(any " -> ") int)
    (r.rule_cycle @ [ List.hd r.rule_cycle ])
