(** Typed, severity-ranked diagnostics emitted by the static analyzer.

    Every pass of {!Analyze} reports its findings as a [Diagnostic.t]; the
    driver sorts them most severe first and derives the process exit code
    from the worst severity present ({!exit_code}), which is what the CI
    lint gate keys on. *)

type severity =
  | Error    (** the rule set is broken: the finding defeats the rule's purpose *)
  | Warning  (** suspicious; the engines may behave worse than expected *)
  | Info     (** notable structure, no action required *)
  | Hint     (** an opportunity (e.g. a cheaper syntactic class is close) *)

type t = {
  severity : severity;
  code : string;  (** stable machine-readable identifier, e.g. ["dead-rule"] *)
  message : string;
  rule : int option;  (** 0-based index into the analyzed rule list *)
}

val make : ?rule:int -> severity -> code:string -> string -> t

val severity_name : severity -> string
val severity_rank : severity -> int
(** [0] for [Error] up to [3] for [Hint]; used for sorting. *)

val compare : t -> t -> int
(** Most severe first, then by code, rule index, and message. *)

val sort : t list -> t list

val exit_code : t list -> int
(** [2] when any [Error] is present, [1] when any [Warning] (and no error),
    [0] otherwise — the contract of [tgdtool analyze]. *)

val pp_severity : severity Fmt.t
val pp : t Fmt.t

val to_json : t -> string
(** One JSON object; strings are escaped. *)
