(** Critical-instance acyclicity: MFA and MSA (Cuenca Grau et al., JAIR
    2013).

    Both notions chase the {e critical instance} — one constant [∗], every
    relation holding every [∗]-tuple ({!Tgd_instance.Critical}) — which
    over-approximates every input database up to homomorphism, so
    termination there is termination everywhere:

    - {e model-faithful acyclicity} (MFA) runs the Skolem (semi-oblivious)
      chase itself ({!Tgd_engine.Seminaive} in [Skolem] mode) and rejects
      as soon as a {e cyclic Skolem term} appears — a null whose creating
      (rule, existential) pair already occurs in its own ancestry;
    - {e model-summarising acyclicity} (MSA) approximates each Skolem term
      by a single summarising constant, yielding a {e full} program whose
      saturation is finite; the set is MSA when the derived
      [__msa_D]-graph (frontier value → summarising constant) is acyclic.

    [MSA ⇒ MFA], and both subsume joint and super-weak acyclicity; a
    holding verdict implies the Skolem — hence also the restricted —
    chase terminates on every instance.  Both checks can be exponential,
    so they run under a {!Tgd_engine.Budget} (deterministic round / fact /
    fuel caps, no wall clock) and report [Unknown] on exhaustion. *)

open Tgd_syntax

type creation = {
  c_rule : int;  (** index of the rule whose existential invented the null *)
  c_exvar : string;  (** name of that existential variable *)
  c_args : Constant.t list;
      (** frontier values at invention time, sorted by variable name — the
          arguments of the corresponding Skolem term *)
}

type mfa_witness = {
  mfa_model : Fact.t list;
      (** the terminal critical-instance Skolem chase *)
  mfa_creation : (Constant.t * creation) list;
      (** every invented null with its Skolem term, sorted *)
  mfa_digest : string;  (** hex digest of the canonical trace *)
}

type mfa_refutation = {
  mfa_cycle_rule : int;
  mfa_cycle_exvar : string;
  mfa_depth : int;
}

type 'w verdict =
  | Holds of 'w
  | Fails of string  (** with a human-readable refutation *)
  | Unknown of string  (** budget exhausted (or reserved-name clash) *)

val default_budget : unit -> Tgd_engine.Budget.t
(** Deterministic analysis budget: 128 rounds, 20k facts, 60k fuel — no
    deadline, so verdicts are machine-independent. *)

val mfa : ?budget:Tgd_engine.Budget.t -> Tgd.t list -> mfa_witness verdict

type msa_witness = {
  msa_model : Fact.t list;
      (** the saturation of the summarised program over the critical
          instance, including the [__msa_*] bookkeeping facts *)
  msa_digest : string;
}

val msa : ?budget:Tgd_engine.Budget.t -> Tgd.t list -> msa_witness verdict

val summarise : Tgd.t list -> (Tgd.t * Fact.t list) list
(** The MSA transformation: each rule paired with the seed facts of its
    summarising constants.  Exposed for tests and the certificate
    checker's format specification. *)

val schema_of : Tgd.t list -> Schema.t
(** Every relation occurring in the rules, as a schema. *)

val msa_d_rel : Relation.t
val msa_const_name : int -> Variable.t -> string
