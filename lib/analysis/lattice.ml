open Tgd_syntax

type verdict =
  | Holds
  | Fails of string
  | Unknown of string

let holds = function Holds -> true | Fails _ | Unknown _ -> false

type limits = { rounds : int; facts : int; fuel : int }

let default_limits = { rounds = 128; facts = 20_000; fuel = 60_000 }

let budget_of l =
  Tgd_engine.Budget.make ~rounds:l.rounds ~facts:l.facts ~fuel:l.fuel ()

type profile = {
  wa : verdict;
  ja : verdict;
  swa : verdict;
  msa : verdict;
  mfa : verdict;
  stratification : verdict;
  strata : int list list;
  certified : (Termination.cert * Cert.t) option;
}

(* ------------------------------------------------------------------ *)
(* Per-notion verdicts and certificate builders                        *)
(* ------------------------------------------------------------------ *)

let weak_cert sigma =
  Cert.Weak
    { edges =
        List.map
          (fun e ->
            let sr, sp = e.Termination.source in
            let tr, tp = e.Termination.target in
            (sr, sp, tr, tp, e.Termination.special))
          (Termination.dependency_graph sigma)
    }

let wa_check sigma =
  match Termination.weak_acyclicity_witness sigma with
  | None -> (Holds, Some (weak_cert sigma))
  | Some w -> (Fails (Fmt.str "%a" Termination.pp_wa_witness w), None)

let joint_cert sigma =
  Cert.Joint
    { movement =
        List.concat
          (List.mapi
             (fun i tgd ->
               List.map
                 (fun y ->
                   (i, Variable.name y, Termination.movement sigma ~rule:i y))
                 (Variable.Set.elements (Tgd.existential_vars tgd)))
             sigma)
    }

let ja_check sigma =
  match Termination.jointly_acyclic_witness sigma with
  | None -> (Holds, Some (joint_cert sigma))
  | Some w -> (Fails (Fmt.str "%a" Termination.pp_ja_witness w), None)

let swa_check sigma =
  match Placegraph.analyse sigma with
  | Ok w ->
    let moves =
      List.map
        (fun (i, places) ->
          ( i,
            List.map
              (fun p ->
                Placegraph.(p.rule, p.atom, p.pos))
              places ))
        w.Placegraph.moves
    in
    (Holds, Some (Cert.Super_weak { moves }))
  | Error r -> (Fails (Fmt.str "%a" Placegraph.pp_refutation r), None)

let msa_check ~limits sigma =
  match Critical_chase.msa ~budget:(budget_of limits) sigma with
  | Critical_chase.Holds w ->
    (Holds, Some (Cert.Model_summarising { model = w.Critical_chase.msa_model }))
  | Critical_chase.Fails reason -> (Fails reason, None)
  | Critical_chase.Unknown reason -> (Unknown reason, None)

let mfa_check ~limits sigma =
  match Critical_chase.mfa ~budget:(budget_of limits) sigma with
  | Critical_chase.Holds w ->
    ( Holds,
      Some
        (Cert.Model_faithful
           { model = w.Critical_chase.mfa_model;
             creation = w.Critical_chase.mfa_creation
           }) )
  | Critical_chase.Fails reason -> (Fails reason, None)
  | Critical_chase.Unknown reason -> (Unknown reason, None)

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

(* Cheap-to-expensive, strongest-certificate-first: the first notion that
   holds also carries the tightest bounds, so short-circuiting is both
   the fast path and the right answer. *)
let classify_flat ~limits sigma =
  let ( <|> ) acc check =
    match acc with
    | Some _ -> acc
    | None -> (
      match check () with
      | Holds, Some cert -> Some (Cert.notion cert, cert)
      | _ -> None)
  in
  None
  <|> (fun () -> wa_check sigma)
  <|> (fun () -> ja_check sigma)
  <|> (fun () -> swa_check sigma)
  <|> (fun () -> msa_check ~limits sigma)
  <|> (fun () -> mfa_check ~limits sigma)

(* Per-stratum composition: every stratum must certify on its own (with
   the same limits, but a fresh budget each).  Sound because the
   cross-stratum precedence is acyclic: the Skolem chase of the whole set
   equals the stratum-by-stratum chase, and each stage terminates on
   arbitrary inputs by its stratum's certificate.  The practical win is
   divide and conquer — a critical-instance chase that exhausts its
   budget on the whole set can succeed on each stratum separately. *)
let stratified_check ~limits sigma strat =
  if Stratify.is_trivial strat then
    (Fails "single stratum: stratification cannot refine the analysis", None)
  else
    let subs =
      List.map
        (fun indices -> classify_flat ~limits (Stratify.rules_of sigma indices))
        strat.Stratify.strata
    in
    if List.for_all Option.is_some subs then
      ( Holds,
        Some
          (Cert.Stratified
             { strata = strat.Stratify.strata;
               subs = List.map (fun s -> snd (Option.get s)) subs
             }) )
    else
      (Unknown "some stratum remained uncertified", None)

let classify ?(limits = default_limits) sigma =
  if sigma = [] then Some (Termination.Weakly_acyclic, Cert.Weak { edges = [] })
  else
    match classify_flat ~limits sigma with
    | Some r -> Some r
    | None -> (
      let strat = Stratify.build sigma in
      match stratified_check ~limits sigma strat with
      | Holds, Some cert -> Some (Cert.notion cert, cert)
      | _ -> None)

let profile ?(limits = default_limits) sigma =
  if sigma = [] then
    { wa = Holds;
      ja = Holds;
      swa = Holds;
      msa = Holds;
      mfa = Holds;
      stratification = Fails "single stratum: stratification cannot refine the analysis";
      strata = [];
      certified = Some (Termination.Weakly_acyclic, Cert.Weak { edges = [] })
    }
  else begin
    let wa, wa_cert = wa_check sigma in
    let ja, ja_cert = ja_check sigma in
    let swa, swa_cert = swa_check sigma in
    let msa, msa_cert = msa_check ~limits sigma in
    let mfa, mfa_cert = mfa_check ~limits sigma in
    let strat = Stratify.build sigma in
    let stratification, strat_cert = stratified_check ~limits sigma strat in
    let certified =
      List.fold_left
        (fun acc c ->
          match (acc, c) with
          | Some _, _ -> acc
          | None, Some cert -> Some (Cert.notion cert, cert)
          | None, None -> None)
        None
        [ wa_cert; ja_cert; swa_cert; msa_cert; mfa_cert; strat_cert ]
    in
    { wa; ja; swa; msa; mfa; stratification; strata = strat.Stratify.strata;
      certified }
  end

(* The cumulative lattice: level [c] is covered when some notion at or
   below [c]'s rank holds, so the chain WA ⇒ JA ⇒ SWA ⇒ MSA ⇒ MFA holds
   by construction even where the raw notions are incomparable (JA and
   SWA, notably). *)
let covers p c =
  let raw = [ p.wa; p.ja; p.swa; p.msa; p.mfa; p.stratification ] in
  let rank = Termination.cert_rank c in
  List.exists holds
    (List.filteri (fun i _ -> i <= rank) raw)

let verdict_name = function
  | Holds -> "holds"
  | Fails _ -> "fails"
  | Unknown _ -> "unknown"

let verdict_detail = function Holds -> None | Fails s | Unknown s -> Some s

let pp_verdict ppf v =
  match v with
  | Holds -> Fmt.string ppf "holds"
  | Fails s -> Fmt.pf ppf "fails (%s)" s
  | Unknown s -> Fmt.pf ppf "unknown (%s)" s

let pp_profile ppf p =
  Fmt.pf ppf
    "@[<v>weak acyclicity:            %a@,\
     joint acyclicity:           %a@,\
     super-weak acyclicity:      %a@,\
     model-summarising (MSA):    %a@,\
     model-faithful (MFA):       %a@,\
     stratification:             %a@,\
     certified:                  %a@]"
    pp_verdict p.wa pp_verdict p.ja pp_verdict p.swa pp_verdict p.msa
    pp_verdict p.mfa pp_verdict p.stratification
    Fmt.(option ~none:(any "none") (using (fun (n, _) -> n) Termination.pp_cert))
    p.certified
