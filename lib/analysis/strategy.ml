open Tgd_syntax

type engine =
  | Datalog_saturation
  | Chase_to_completion
  | Budgeted_chase

type t = {
  engine : engine;
  cert : Termination.cert option;
  common_classes : Tgd_class.cls list;
}

let common_classes sigma =
  List.filter
    (fun c -> Tgd_class.all_in_class c sigma)
    [ Tgd_class.Linear; Tgd_class.Guarded; Tgd_class.Frontier_guarded;
      Tgd_class.Full ]

(* The polynomial front of the lattice: weak, joint, then super-weak
   acyclicity.  No chase runs, so per-request admission can afford this
   on every decision. *)
let shallow_certificate sigma =
  match Termination.certificate sigma with
  | Some c -> Some c
  | None ->
    if Placegraph.is_super_weakly_acyclic sigma then
      Some Termination.Super_weakly_acyclic
    else None

let decide ?(deep = false) sigma =
  let cert =
    if deep then Option.map fst (Lattice.classify sigma)
    else shallow_certificate sigma
  in
  let classes = common_classes sigma in
  let engine =
    if List.mem Tgd_class.Full classes then Datalog_saturation
    else
      match cert with
      | Some _ -> Chase_to_completion
      | None -> Budgeted_chase
  in
  { engine; cert; common_classes = classes }

let may_promote t =
  match t.engine with
  | Datalog_saturation | Chase_to_completion -> true
  | Budgeted_chase -> false

type cost =
  | Cheap
  | Moderate
  | Expensive

(* Per-request admission control keys off this: a certified-terminating
   (or plain Datalog) set does bounded chase work per request, an
   uncertified set may burn its whole budget before answering.  [Cheap]
   is reserved for requests that never chase at all (classify/analyze) —
   the serving layer assigns it without consulting a strategy. *)
let predicted_cost t =
  match t.engine with
  | Datalog_saturation | Chase_to_completion -> Moderate
  | Budgeted_chase -> Expensive

(* Relative cost of screening one rewrite candidate: a termination
   certificate (or plain Datalog) bounds each candidate's chase to a
   handful of rounds, while an uncertified candidate may burn its whole
   per-candidate budget — two orders of magnitude apart in practice. *)
let cost_weight = function
  | Cheap | Moderate -> 1
  | Expensive -> 64

let item_weight t = cost_weight (predicted_cost t)

(* A chunk should carry about this much weight: enough work to amortize
   one queue claim (mutex + condition wake-up) into noise. *)
let chunk_weight_target = 256

let screen_chunk t ~jobs ~n =
  if n <= 0 then 1
  else begin
    (* certified items are cheap, so pack many per claim; uncertified
       items are heavy and high-variance, so keep chunks small and let
       dynamic claiming balance the load — but never fewer than ~4 chunks
       per worker, or there is nothing left to steal *)
    let by_dispatch = max 1 (chunk_weight_target / item_weight t) in
    let by_balance = max 1 (n / (4 * max 1 jobs)) in
    max 1 (min by_dispatch by_balance)
  end

let max_cost a b =
  match (a, b) with
  | Expensive, _ | _, Expensive -> Expensive
  | Moderate, _ | _, Moderate -> Moderate
  | Cheap, Cheap -> Cheap

let sweep_cost t ~cap ~candidates =
  let base = max_cost Moderate (predicted_cost t) in
  (* Measure the sweep in weight units and calibrate [cap] to weight-64
     (uncertified) items: an uncertified space past [cap] candidates is
     expensive, while a certified sweep — 1/64 the per-item work — admits
     a proportionally larger space before shedding.  This is what keeps
     large *certified* workloads on the warm path instead of spuriously
     classifying them [Expensive] on raw candidate count. *)
  let weighted = candidates *. (float_of_int (item_weight t) /. 64.) in
  if weighted > cap then Expensive else base

let cost_name = function
  | Cheap -> "cheap"
  | Moderate -> "moderate"
  | Expensive -> "expensive"

let pp_cost ppf c = Fmt.string ppf (cost_name c)

let engine_name = function
  | Datalog_saturation -> "datalog-saturation"
  | Chase_to_completion -> "chase-to-completion"
  | Budgeted_chase -> "budgeted-chase"

let pp_engine ppf e = Fmt.string ppf (engine_name e)

let pp ppf t =
  Fmt.pf ppf "engine: %a; certificate: %a; classes: %a" pp_engine t.engine
    Fmt.(option ~none:(any "none") Termination.pp_cert)
    t.cert
    Fmt.(list ~sep:(any ", ") Tgd_class.pp_cls)
    t.common_classes
