open Tgd_syntax

type engine =
  | Datalog_saturation
  | Chase_to_completion
  | Budgeted_chase

type t = {
  engine : engine;
  cert : Termination.cert option;
  common_classes : Tgd_class.cls list;
}

let common_classes sigma =
  List.filter
    (fun c -> Tgd_class.all_in_class c sigma)
    [ Tgd_class.Linear; Tgd_class.Guarded; Tgd_class.Frontier_guarded;
      Tgd_class.Full ]

let decide sigma =
  let cert = Termination.certificate sigma in
  let classes = common_classes sigma in
  let engine =
    if List.mem Tgd_class.Full classes then Datalog_saturation
    else
      match cert with
      | Some _ -> Chase_to_completion
      | None -> Budgeted_chase
  in
  { engine; cert; common_classes = classes }

let may_promote t =
  match t.engine with
  | Datalog_saturation | Chase_to_completion -> true
  | Budgeted_chase -> false

type cost =
  | Cheap
  | Moderate
  | Expensive

(* Per-request admission control keys off this: a certified-terminating
   (or plain Datalog) set does bounded chase work per request, an
   uncertified set may burn its whole budget before answering.  [Cheap]
   is reserved for requests that never chase at all (classify/analyze) —
   the serving layer assigns it without consulting a strategy. *)
let predicted_cost t =
  match t.engine with
  | Datalog_saturation | Chase_to_completion -> Moderate
  | Budgeted_chase -> Expensive

let max_cost a b =
  match (a, b) with
  | Expensive, _ | _, Expensive -> Expensive
  | Moderate, _ | _, Moderate -> Moderate
  | Cheap, Cheap -> Cheap

let cost_name = function
  | Cheap -> "cheap"
  | Moderate -> "moderate"
  | Expensive -> "expensive"

let pp_cost ppf c = Fmt.string ppf (cost_name c)

let engine_name = function
  | Datalog_saturation -> "datalog-saturation"
  | Chase_to_completion -> "chase-to-completion"
  | Budgeted_chase -> "budgeted-chase"

let pp_engine ppf e = Fmt.string ppf (engine_name e)

let pp ppf t =
  Fmt.pf ppf "engine: %a; certificate: %a; classes: %a" pp_engine t.engine
    Fmt.(option ~none:(any "none") Termination.pp_cert)
    t.cert
    Fmt.(list ~sep:(any ", ") Tgd_class.pp_cls)
    t.common_classes
