(** The termination-analysis lattice.

    Runs the acyclicity notions cheap-to-expensive — weak acyclicity,
    joint acyclicity, super-weak acyclicity, MSA, MFA, then per-stratum
    composition — and reports the first (hence strongest, tightest-bound)
    certificate that holds, as a {!Cert.t} carrying its machine-checkable
    witness.

    The chase-based notions (MSA, MFA) run under a deterministic budget
    derived from {!type:limits}; exhausting it yields [Unknown], never a
    wrong verdict. *)

open Tgd_syntax

type verdict =
  | Holds
  | Fails of string  (** with a human-readable refutation *)
  | Unknown of string  (** the check could not decide (budget, reserved names) *)

val holds : verdict -> bool

type limits = { rounds : int; facts : int; fuel : int }
(** Deterministic caps for the critical-instance chases — no wall clock,
    so verdicts are machine-independent. *)

val default_limits : limits

type profile = {
  wa : verdict;
  ja : verdict;
  swa : verdict;
  msa : verdict;
  mfa : verdict;
  stratification : verdict;
  strata : int list list;
  certified : (Termination.cert * Cert.t) option;
}

val classify :
  ?limits:limits -> Tgd.t list -> (Termination.cert * Cert.t) option
(** First notion that holds, in lattice order; [None] when nothing
    certifies.  [Some _] implies the restricted chase terminates on every
    instance. *)

val profile : ?limits:limits -> Tgd.t list -> profile
(** Every notion evaluated independently (no short-circuiting) — the
    [--explain] view. *)

val covers : profile -> Termination.cert -> bool
(** Cumulative lattice membership: level [c] is covered when some notion
    of rank [<= Termination.cert_rank c] holds.  By construction the
    chain [WA ⇒ JA ⇒ SWA ⇒ MSA ⇒ MFA] holds on [covers] even where the
    raw notions are incomparable. *)

val verdict_name : verdict -> string
val verdict_detail : verdict -> string option
val pp_verdict : verdict Fmt.t
val pp_profile : profile Fmt.t
