(** Chase-termination certificates.

    Two static, polynomial-time checks, each {e sufficient but not
    necessary} for termination of the (restricted and oblivious) chase on
    every instance:

    - {e weak acyclicity} (Fagin–Kolaitis–Miller–Popa): no special edge of
      the position dependency graph lies on a cycle;
    - {e joint acyclicity} (Krötzsch–Rudolph), strictly more permissive:
      the existential-variable dependency graph built from the per-variable
      movement sets [Mov(y)] is acyclic.

    [WA ⇒ JA]; {!certificate} reports the strongest familiar name (weak
    acyclicity when it holds, else joint acyclicity, else [None]).  A
    [None] certificate says nothing: the chase of a non-certified set may
    still terminate — termination itself is undecidable. *)

open Tgd_syntax

type position = Relation.t * int
(** [(R, i)] — the [i]-th position (0-based) of relation [R]. *)

type edge = { source : position; target : position; special : bool }

val dependency_graph : Tgd.t list -> edge list
(** Position dependency graph.  Regular edges propagate a frontier variable
    from a body position to a head position; special edges go from the body
    positions of each frontier variable to the positions of the existential
    variables of the same tgd. *)

type wa_witness = {
  cycle : position list;
  (** Positions [p₀ … p_k] with an edge [pᵢ → pᵢ₊₁] for each [i] and an
      edge [p_k → p₀] closing the cycle. *)
  special_edge : position * position;
  (** The special edge on the cycle ([p₀ → p₁] by construction). *)
}

val weak_acyclicity_witness : Tgd.t list -> wa_witness option
(** [None] when the set is weakly acyclic; otherwise a special-edge cycle
    demonstrating the failure. *)

val is_weakly_acyclic : Tgd.t list -> bool

type ja_witness = {
  variables : (int * Variable.t) list;
  (** Existential variables [(rule index, z₀) … (rule index, z_k)] forming a
      cycle in the existential-dependency graph: a null created for [zᵢ] can
      reach a frontier position of the rule of [zᵢ₊₁] (indices mod k+1). *)
}

val jointly_acyclic_witness : Tgd.t list -> ja_witness option
val is_jointly_acyclic : Tgd.t list -> bool

val movement : Tgd.t list -> rule:int -> Variable.t -> position list
(** [Mov(y)] for the existential variable [y] of rule [rule]: every position
    a null invented for [y] can reach, sorted.  Exposed for tests. *)

type cert =
  | Weakly_acyclic
  | Jointly_acyclic
  | Super_weakly_acyclic  (** Marnette's place-based SWA — see {!Placegraph}. *)
  | Model_summarising  (** MSA via critical-instance Datalog — {!Critical_chase}. *)
  | Model_faithful  (** MFA via critical-instance Skolem chase — {!Critical_chase}. *)
  | Stratified  (** Per-stratum certificates composed — {!Stratify}. *)

val certificate : Tgd.t list -> cert option
(** The strongest {e polynomial-time} certificate (weak, then joint
    acyclicity), or [None].  This is the cheap front of the lattice; the
    full classification including the place-based and chase-based notions
    is {!Lattice.classify}.  [Some _] implies the unbudgeted restricted
    chase terminates on every instance. *)

val cert_name : cert -> string

val cert_rank : cert -> int
(** Position in the lattice, [0] (weak acyclicity) to [5] (stratified);
    lower ranks are cheaper to establish and carry tighter bounds. *)

val pp_cert : cert Fmt.t
val pp_position : position Fmt.t
val pp_wa_witness : wa_witness Fmt.t
val pp_ja_witness : ja_witness Fmt.t
