(** Predicate-level dependency graph of a tgd set.

    Nodes are the relation symbols mentioned by the rules; there is an edge
    [R → S] when some rule has [R] in its body and [S] in its head.  This
    relation-level abstraction over-approximates fact flow: anything the
    chase can derive lies inside the {!derivable} fixpoint, which is what
    makes the reachability lints (and the candidate prefilter used by
    rewriting) sound. *)

open Tgd_syntax

type t

val make : Tgd.t list -> t

val relations : t -> Relation.Set.t
(** Every relation mentioned in a body or head. *)

val edb : t -> Relation.Set.t
(** The extensional relations: mentioned, but occurring in no head.  These
    are the input positions of the rule set — the relations a database can
    populate without help from the rules. *)

val sccs : t -> Relation.t list list
(** Strongly connected components in topological order of the condensation
    (callees before callers: an edge between components points forward in
    the list), each component sorted. *)

val strata : t -> int Relation.Map.t
(** Stratum index per relation: the length of the longest SCC-condensation
    path ending at the relation's component.  Relations in one SCC share a
    stratum; an edge [R → S] with [R, S] in different components implies
    [strata R < strata S]. *)

val recursive : t -> Relation.Set.t
(** Relations in a non-trivial SCC, or carrying a self-loop. *)

val derivable : Tgd.t list -> from:Relation.Set.t -> Relation.Set.t
(** Least fixpoint of relation-level rule application: start from [from],
    fire a rule (adding its head relations) once all its body relations are
    in the set; empty-body rules always fire.  Sound over-approximation: a
    chase from any instance whose facts use only [from]-relations can only
    derive facts over [derivable ~from] relations. *)

val close : t -> Relation.Set.t -> Relation.Set.t
(** [close g from = derivable sigma ~from] against the rules [g] was built
    from, without re-walking the tgds — the form used per candidate by the
    rewrite prefilter. *)

val dead_rules : Tgd.t list -> int list
(** Indices of rules that can never fire from the critical instance over the
    extensional relations: some body relation lies outside
    [derivable ~from:(edb g)].  This adopts the closed Datalog convention
    that databases populate extensional relations only; an ontology chased
    over arbitrary instances may populate head relations directly, so the
    finding is a warning, not an error. *)

val underived : Tgd.t list -> Relation.Set.t
(** Intensional relations (occurring in some head) outside the derivable
    fixpoint from the extensional ones — e.g. an SCC with no external
    support. *)

val unconsumed : Tgd.t list -> Relation.Set.t
(** Relations occurring in some head but in no body: derived and then never
    used by the rules themselves.  Often fine (they are the "output"), hence
    only informational. *)

val pp : t Fmt.t
