open Tgd_syntax

type position = Relation.t * int

type edge = { source : position; target : position; special : bool }

let position_compare (r1, i1) (r2, i2) =
  let c = Relation.compare r1 r2 in
  if c <> 0 then c else Int.compare i1 i2

let pos_equal p q = position_compare p q = 0
let pos_mem p l = List.exists (pos_equal p) l
let pos_subset a b = List.for_all (fun p -> pos_mem p b) a

let pos_union a b =
  List.fold_left (fun acc p -> if pos_mem p acc then acc else p :: acc) a b

let positions_of_var atoms v =
  List.concat_map
    (fun a ->
      Atom.args_arr a
      |> Array.to_list
      |> List.mapi (fun i t -> (i, t))
      |> List.filter_map (fun (i, t) ->
             match t with
             | Term.Var w when Variable.equal v w -> Some (Atom.rel a, i)
             | Term.Var _ | Term.Const _ -> None))
    atoms

let dependency_graph sigma =
  List.concat_map
    (fun tgd ->
      let body = Tgd.body tgd in
      let head = Tgd.head tgd in
      let frontier = Tgd.frontier tgd in
      let existentials = Tgd.existential_vars tgd in
      let ex_positions =
        Variable.Set.fold
          (fun z acc -> positions_of_var head z @ acc)
          existentials []
      in
      Variable.Set.fold
        (fun x acc ->
          let sources = positions_of_var body x in
          let regular_targets = positions_of_var head x in
          let edges_for src =
            List.map
              (fun tgt -> { source = src; target = tgt; special = false })
              regular_targets
            @ List.map
                (fun tgt -> { source = src; target = tgt; special = true })
                ex_positions
          in
          List.concat_map edges_for sources @ acc)
        frontier [])
    sigma

(* ------------------------------------------------------------------ *)
(* Weak acyclicity with cycle witnesses                                *)
(* ------------------------------------------------------------------ *)

type wa_witness = {
  cycle : position list;
  special_edge : position * position;
}

(* A simple path from [src] to [dst] along the edge list, as a position
   list including both endpoints; [None] when unreachable. *)
let find_path edges src dst =
  let succ p =
    List.filter_map
      (fun e -> if pos_equal e.source p then Some e.target else None)
      edges
  in
  let visited = ref [] in
  let rec dfs p =
    if pos_mem p !visited then None
    else begin
      visited := p :: !visited;
      if pos_equal p dst then Some [ p ]
      else
        List.fold_left
          (fun acc q ->
            match acc with
            | Some _ -> acc
            | None -> Option.map (fun path -> p :: path) (dfs q))
          None (succ p)
    end
  in
  dfs src

let weak_acyclicity_witness sigma =
  let edges = dependency_graph sigma in
  let specials = List.filter (fun e -> e.special) edges in
  List.fold_left
    (fun acc e ->
      match acc with
      | Some _ -> acc
      | None -> (
        match find_path edges e.target e.source with
        | None -> None
        | Some path ->
          (* path = target … source; the special edge source → target closes
             the cycle, so the cycle is source :: path minus its last node *)
          let cycle =
            match List.rev path with
            | _last :: rev_prefix -> e.source :: List.rev rev_prefix
            | [] -> assert false
          in
          Some { cycle; special_edge = (e.source, e.target) }))
    None specials

let is_weakly_acyclic sigma = weak_acyclicity_witness sigma = None

(* ------------------------------------------------------------------ *)
(* Joint acyclicity (Krötzsch–Rudolph, IJCAI 2011)                     *)
(* ------------------------------------------------------------------ *)

(* Mov(y): every position a null invented for the existential variable [y]
   can reach.  Seeded with y's head positions; closed under "some rule has a
   frontier variable x whose body positions all lie in the set — then the
   null can sit at x, so x's head positions are reachable too". *)
let mov_of sigma head_positions =
  let current = ref head_positions in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        Variable.Set.iter
          (fun x ->
            let bpos = positions_of_var (Tgd.body s) x in
            if pos_subset bpos !current then begin
              let u = pos_union !current (positions_of_var (Tgd.head s) x) in
              if List.length u > List.length !current then begin
                current := u;
                changed := true
              end
            end)
          (Tgd.frontier s))
      sigma
  done;
  !current

let ex_nodes sigma =
  List.concat
    (List.mapi
       (fun i s ->
         List.map
           (fun y -> (i, y))
           (Variable.Set.elements (Tgd.existential_vars s)))
       sigma)

let movement sigma ~rule y =
  let s = List.nth sigma rule in
  List.sort position_compare
    (mov_of sigma (positions_of_var (Tgd.head s) y))

type ja_witness = { variables : (int * Variable.t) list }

let node_equal (i, y) (j, z) = i = j && Variable.equal y z

let jointly_acyclic_witness sigma =
  let rules = Array.of_list sigma in
  let nodes = ex_nodes sigma in
  let movs =
    List.map
      (fun (i, y) ->
        ((i, y), mov_of sigma (positions_of_var (Tgd.head rules.(i)) y)))
      nodes
  in
  let mov n =
    match List.find_opt (fun (m, _) -> node_equal m n) movs with
    | Some (_, v) -> v
    | None -> []
  in
  let succs n =
    let m = mov n in
    List.filter
      (fun (j, _) ->
        let r = rules.(j) in
        Variable.Set.exists
          (fun x -> pos_subset (positions_of_var (Tgd.body r) x) m)
          (Tgd.frontier r))
      nodes
  in
  (* DFS cycle detection over the existential-variable graph; gray nodes are
     on the current stack, so meeting one yields the cycle. *)
  let gray = ref [] and black = ref [] in
  let rec dfs stack n =
    if List.exists (node_equal n) !black then None
    else if List.exists (node_equal n) !gray then begin
      (* the cycle is the stack suffix from the previous visit of [n] *)
      let rec suffix = function
        | [] -> []
        | m :: rest -> if node_equal m n then [ m ] else m :: suffix rest
      in
      Some (List.rev (suffix stack))
    end
    else begin
      gray := n :: !gray;
      let r =
        List.fold_left
          (fun acc m ->
            match acc with Some _ -> acc | None -> dfs (m :: stack) m)
          None (succs n)
      in
      (match r with
      | Some _ -> ()
      | None ->
        gray := List.filter (fun m -> not (node_equal m n)) !gray;
        black := n :: !black);
      r
    end
  in
  List.fold_left
    (fun acc n ->
      match acc with Some _ -> acc | None -> dfs [ n ] n)
    None nodes
  |> Option.map (fun cycle -> { variables = cycle })

let is_jointly_acyclic sigma = jointly_acyclic_witness sigma = None

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)
(* ------------------------------------------------------------------ *)

type cert =
  | Weakly_acyclic
  | Jointly_acyclic
  | Super_weakly_acyclic
  | Model_summarising
  | Model_faithful
  | Stratified

let certificate sigma =
  if sigma = [] then Some Weakly_acyclic
  else if is_weakly_acyclic sigma then Some Weakly_acyclic
  else if is_jointly_acyclic sigma then Some Jointly_acyclic
  else None

let cert_name = function
  | Weakly_acyclic -> "weakly-acyclic"
  | Jointly_acyclic -> "jointly-acyclic"
  | Super_weakly_acyclic -> "super-weakly-acyclic"
  | Model_summarising -> "model-summarising-acyclic"
  | Model_faithful -> "model-faithful-acyclic"
  | Stratified -> "stratified"

(* Rank in the lattice: lower ranks are cheaper to establish and carry
   stronger size bounds, so ties between certificates resolve to the
   smallest rank ("strongest certificate wins"). *)
let cert_rank = function
  | Weakly_acyclic -> 0
  | Jointly_acyclic -> 1
  | Super_weakly_acyclic -> 2
  | Model_summarising -> 3
  | Model_faithful -> 4
  | Stratified -> 5

let pp_cert ppf c = Fmt.string ppf (cert_name c)

let pp_position ppf (r, i) = Fmt.pf ppf "%s[%d]" (Relation.name r) i

let pp_wa_witness ppf w =
  let src, tgt = w.special_edge in
  Fmt.pf ppf "special edge %a ~> %a on cycle %a" pp_position src pp_position
    tgt
    Fmt.(list ~sep:(any " -> ") pp_position)
    (w.cycle @ [ List.hd w.cycle ])

let pp_ja_witness ppf w =
  Fmt.pf ppf "existential cycle %a"
    Fmt.(
      list ~sep:(any " ~> ") (fun ppf (i, y) ->
          Fmt.pf ppf "%a(rule %d)" Variable.pp y i))
    w.variables
