type severity =
  | Error
  | Warning
  | Info
  | Hint

type t = {
  severity : severity;
  code : string;
  message : string;
  rule : int option;
}

let make ?rule severity ~code message = { severity; code; message; rule }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"
  | Hint -> "hint"

let severity_rank = function
  | Error -> 0
  | Warning -> 1
  | Info -> 2
  | Hint -> 3

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c =
        Option.compare Int.compare a.rule b.rule
      in
      if c <> 0 then c else String.compare a.message b.message

let sort ds = List.sort compare ds

let exit_code ds =
  if List.exists (fun d -> d.severity = Error) ds then 2
  else if List.exists (fun d -> d.severity = Warning) ds then 1
  else 0

let pp_severity ppf s = Fmt.string ppf (severity_name s)

let pp ppf d =
  Fmt.pf ppf "%a[%s]%a %s" pp_severity d.severity d.code
    Fmt.(option (fun ppf i -> Fmt.pf ppf " rule %d:" i))
    d.rule d.message

(* Minimal JSON string escaping: the diagnostics only carry printed tgds and
   relation names, but a rule name could in principle contain anything. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let rule =
    match d.rule with
    | Some i -> Printf.sprintf ",\"rule\":%d" i
    | None -> ""
  in
  Printf.sprintf "{\"severity\":\"%s\",\"code\":\"%s\",\"message\":\"%s\"%s}"
    (severity_name d.severity) (json_escape d.code) (json_escape d.message)
    rule
