open Tgd_syntax

let rels_of atoms =
  List.fold_left
    (fun acc a -> Relation.Set.add (Atom.rel a) acc)
    Relation.Set.empty atoms

type rule_rels = { body : Relation.Set.t; head : Relation.Set.t }

type t = {
  rules : rule_rels list;
  nodes : Relation.Set.t;
  succs : Relation.Set.t Relation.Map.t;
}

let make sigma =
  let rules =
    List.map
      (fun s ->
        { body = rels_of (Tgd.body s); head = rels_of (Tgd.head s) })
      sigma
  in
  let nodes =
    List.fold_left
      (fun acc r -> Relation.Set.union acc (Relation.Set.union r.body r.head))
      Relation.Set.empty rules
  in
  let succs =
    List.fold_left
      (fun acc r ->
        Relation.Set.fold
          (fun src acc ->
            let old =
              Option.value ~default:Relation.Set.empty
                (Relation.Map.find_opt src acc)
            in
            Relation.Map.add src (Relation.Set.union old r.head) acc)
          r.body acc)
      Relation.Map.empty rules
  in
  { rules; nodes; succs }

let relations g = g.nodes

let succ g r =
  Option.value ~default:Relation.Set.empty (Relation.Map.find_opt r g.succs)

let edb g =
  let heads =
    List.fold_left
      (fun acc r -> Relation.Set.union acc r.head)
      Relation.Set.empty g.rules
  in
  Relation.Set.diff g.nodes heads

(* Tarjan's algorithm, iterative bookkeeping via explicit recursion on the
   (small) predicate graphs at hand. *)
let sccs g =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    Relation.Set.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if Relation.equal w v then w :: acc else pop (w :: acc)
      in
      out := List.sort Relation.compare (pop []) :: !out
    end
  in
  Relation.Set.iter
    (fun v -> if not (Hashtbl.mem index v) then strongconnect v)
    g.nodes;
  (* Tarjan emits sink components first (callers before callees in our
     edge direction); accumulating with [::] reverses that into the
     callees-first order [strata] needs. *)
  !out

let strata g =
  let components = sccs g in
  let comp_id = Hashtbl.create 16 in
  List.iteri
    (fun i comp -> List.iter (fun r -> Hashtbl.replace comp_id r i) comp)
    components;
  (* components arrive callees-first, so one left-to-right pass suffices *)
  let level = Hashtbl.create 16 in
  List.iteri
    (fun i comp ->
      let lvl = ref 0 in
      List.iter
        (fun r ->
          Relation.Set.iter
            (fun p ->
              if Relation.Set.mem r (succ g p) then begin
                let pi = Hashtbl.find comp_id p in
                if pi <> i then
                  lvl :=
                    max !lvl
                      (1 + Option.value ~default:0 (Hashtbl.find_opt level pi))
              end)
            g.nodes)
        comp;
      Hashtbl.replace level i !lvl)
    components;
  Relation.Set.fold
    (fun r acc ->
      Relation.Map.add r (Hashtbl.find level (Hashtbl.find comp_id r)) acc)
    g.nodes Relation.Map.empty

let recursive g =
  List.fold_left
    (fun acc comp ->
      match comp with
      | [ r ] ->
        if Relation.Set.mem r (succ g r) then Relation.Set.add r acc else acc
      | rs -> List.fold_left (fun acc r -> Relation.Set.add r acc) acc rs)
    Relation.Set.empty (sccs g)

let close g from =
  let d = ref from in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        if Relation.Set.subset r.body !d
           && not (Relation.Set.subset r.head !d)
        then begin
          d := Relation.Set.union !d r.head;
          changed := true
        end)
      g.rules
  done;
  !d

let derivable sigma ~from = close (make sigma) from

let dead_rules sigma =
  let g = make sigma in
  let reachable = derivable sigma ~from:(edb g) in
  List.concat
    (List.mapi
       (fun i s ->
         if Relation.Set.subset (rels_of (Tgd.body s)) reachable then []
         else [ i ])
       sigma)

let underived sigma =
  let g = make sigma in
  let reachable = derivable sigma ~from:(edb g) in
  Relation.Set.diff g.nodes reachable

let unconsumed sigma =
  let g = make sigma in
  let bodies =
    List.fold_left
      (fun acc r -> Relation.Set.union acc r.body)
      Relation.Set.empty g.rules
  in
  let heads =
    List.fold_left
      (fun acc r -> Relation.Set.union acc r.head)
      Relation.Set.empty g.rules
  in
  Relation.Set.diff heads bodies

let pp ppf g =
  Fmt.pf ppf "@[<v>";
  Relation.Set.iter
    (fun r ->
      let s = succ g r in
      if not (Relation.Set.is_empty s) then
        Fmt.pf ppf "%s -> %a@,"
          (Relation.name r)
          Fmt.(list ~sep:(any ", ") string)
          (List.map Relation.name (Relation.Set.elements s)))
    g.nodes;
  Fmt.pf ppf "@]"
