(** Multi-process shard fleet: process-isolated serving with supervision,
    failover, and graceful degradation.

    {!start} forks [shards] worker processes, each running the ordinary
    socket serve loop ({!Transport.serve}) on its own Unix socket with
    its own domain pool and warm caches, and runs a front-end router in
    the parent that proxies NDJSON request lines to shards by rendezvous
    hash of the ontology digest — the same rule set always lands on the
    same shard, preserving per-shard cache affinity.  One shard OOMing,
    crashing, or wedging takes out only its own process.

    {b Supervision.}  Shards heartbeat the parent over a pipe; the
    monitor thread reaps exits ([waitpid WNOHANG]), treats heartbeat
    silence past the {!Tgd_engine.Supervisor} wedge window as a wedge
    (SIGKILL), and respawns dead shards with capped exponential backoff.
    An exhausted restart budget trips the breaker.  The
    {!Tgd_engine.Chaos.kill_shot} family (site ["fleet.shard"]) is
    consulted every tick, so drills can [kill -9] shards under load on a
    deterministic schedule.

    {b Failover.}  A shard dying mid-request makes the router retry the
    request line on the next live shard in rendezvous order, with the
    serve loop's exponential-backoff ladder; responses are forwarded
    byte-for-byte, so a failed-over response is identical to the one a
    healthy fleet (or a single server) would have produced.  Only a
    fleet with nothing live left after [retries] attempts answers a
    typed [unavailable] error.

    {b Degraded mode.}  With fewer than [quorum] shards live (or the
    breaker tripped) the fleet keeps serving but sheds requests whose
    static cost prediction is [Expensive] at the router edge, with a
    typed [overloaded] error carrying ["degraded": true].

    An [{"op": "fleet_status"}] request is answered by the router itself
    with {!status_json}; everything else proxies. *)

type config = {
  shards : int;                  (** worker processes (>= 1) *)
  shard : Transport.config;      (** per-shard serving config *)
  cache_bytes : int option;      (** per-shard warm-cache ceiling *)
  quorum : int option;           (** live shards below this = degraded;
                                     default majority ([shards/2 + 1]) *)
  beat_s : float;                (** shard heartbeat period *)
  policy : Tgd_engine.Supervisor.policy;
      (** respawn backoff, wedge window, monitor tick *)
  max_connections : int;         (** router connection limit *)
  idle_timeout_s : float option; (** close router sessions quiet this long *)
  drain_grace_s : float;         (** drain patience before cutting *)
  retries : int;                 (** failover attempts per request *)
  backoff_base_s : float;        (** failover ladder base delay *)
  shard_dir : string option;     (** directory for shard sockets; default
                                     derives from the fleet address *)
}

val default_config : config
(** 4 shards of {!Transport.default_config}, majority quorum, 250 ms
    heartbeats, 1000-restart budget with 50 ms–2 s backoff and a 3 s
    wedge window, 4 failover retries. *)

(** {2 Placement} *)

val shard_rank : shards:int -> string -> int list
(** Rendezvous (highest-random-weight) ranking of all shard indices for
    a digest, best first — a permutation of [0..shards-1] that is a pure
    function of [(shards, digest)].  Head is the home shard; the tail is
    the failover order.  Removing one shard from service only remaps the
    digests it owned. *)

val shard_of_digest : shards:int -> string -> int
(** [List.hd (shard_rank ~shards digest)]. *)

val request_digest : Tgd_serve.Json.t -> string
(** The routing key: a digest of the request's ontology ([tgds]) text,
    folding in every sub-request of a [batch].  Requests over the same
    rule set share a digest, hence a shard, hence its warm caches. *)

(** {2 Lifecycle} *)

type t

val start : config -> Transport.addr -> t
(** Shut down any warm in-process domain pools (forking requires a
    single running domain), bind the front-end address, fork all shards,
    and serve in background threads.
    @raise Unix.Unix_error if the address cannot be bound.
    @raise Invalid_argument if [shards < 1]. *)

val drain : t -> unit
(** Begin graceful shutdown; returns immediately.  In-flight requests
    finish writing, then shards get SIGTERM and drain their own
    sessions. *)

val wait : t -> int
(** Block until fully drained: accept loop joined, router sessions
    closed, every shard terminated and reaped, sockets unlinked.
    Returns the process exit code (0). *)

val stop : t -> int
(** [drain] then [wait]. *)

val serve : ?signals:bool -> config -> Transport.addr -> int
(** [start], optionally (default) install SIGINT/SIGTERM drain handlers,
    then {!wait}.  The blocking entry point behind
    [tgdtool serve --shards N]. *)

(** {2 Introspection and drills} *)

val status_json : t -> Tgd_serve.Json.t
(** The [fleet_status] result: shard liveness and pids, quorum,
    degraded/breaker flags, respawn / death / wedge / chaos-kill counts,
    and router counters (requests, failovers, shed, unavailable,
    session-end classes). *)

val degraded : t -> bool
(** Fewer than quorum shards live, or the breaker has tripped. *)

val respawn_count : t -> int
(** Shards respawned after a death or wedge (initial spawns excluded). *)

val chaos_kill_count : t -> int
(** Shards killed by the chaos [kill_shot] family. *)

val kill_shard : t -> int -> bool
(** SIGKILL shard [i] (for failover drills); [false] if the index is out
    of range or the shard is already down.  The monitor observes the
    death and respawns on the usual schedule. *)
