(** Closed-loop load generator for the socket server.

    [run addr ~connections ~requests workload] opens [connections]
    concurrent client connections, each issuing [requests] requests
    back-to-back (send, block for the response, record latency), and
    aggregates the outcome.  Responses are validated for protocol shape;
    violations count as [malformed] while well-formed error responses
    (shedding, faults) count as [errors].  Backs [tgdtool loadgen] and
    the E16 serving benchmark. *)

type result = {
  connections : int;
  requests : int;  (** total sent across all connections *)
  ok : int;
  errors : int;    (** well-formed [ok = false] responses *)
  malformed : int; (** unparsable or protocol-shape-violating lines *)
  elapsed_s : float;
  latencies_s : float array;  (** one entry per answered request *)
}

val run :
  Transport.addr ->
  connections:int ->
  requests:int ->
  (int -> Tgd_serve.Json.t) ->
  result
(** The workload function maps a globally unique request index to a
    request object (it should carry an ["id"]). *)

val connect : ?attempts:int -> Transport.addr -> Unix.file_descr
(** Client connect with brief retries (default 50 × 100 ms) to absorb
    the server's startup race in CI. *)

val percentile : float array -> float -> float
(** [percentile lat p] with linear interpolation; 0 on empty input. *)

val throughput : result -> float
(** Successful requests per second of wall clock. *)

val entail_workload : ?distinct:int -> unit -> int -> Tgd_serve.Json.t
(** Entailment requests over a fixed transitive-ish sigma with
    [distinct] different chain-length goals — repeats warm the cache. *)

val classify_workload : ?distinct:int -> unit -> int -> Tgd_serve.Json.t
val mixed_workload : ?distinct:int -> unit -> int -> Tgd_serve.Json.t

val rewrite_workload : ?tgds:string -> unit -> int -> Tgd_serve.Json.t
(** [g2l] rewrite sweeps over [tgds] (surface syntax; default: a small
    layered ontology).  Every request screens the same candidate space,
    end-to-end checking that cost-based admission keeps certified
    fixtures on the warm path — a spurious [overloaded] shed counts as
    an error in the result. *)

val batch_workload :
  ?distinct:int -> ?batch:int -> unit -> int -> Tgd_serve.Json.t
(** [batch] (default 8) mixed sub-requests per submission, exercising
    the dispatcher's chunked batch path. *)

val workload_of_name :
  ?distinct:int ->
  ?tgds:string ->
  ?batch:int ->
  string ->
  (int -> Tgd_serve.Json.t) option
(** ["entail"], ["classify"], ["mixed"], ["rewrite"], ["batch"]. *)

val result_json : result -> Tgd_serve.Json.t
(** Summary object with req/s and p50/p99 millisecond latencies. *)
