(** Closed-loop load generator for the socket server.

    [run addr ~connections ~requests workload] opens [connections]
    concurrent client connections, each issuing [requests] requests
    back-to-back (send, block for the response, record latency), and
    aggregates the outcome.  Responses are validated for protocol shape;
    violations count as [malformed] while well-formed error responses
    (shedding, faults) count as [errors].  Backs [tgdtool loadgen] and
    the E16 serving benchmark.

    With [~fault_tolerant:true] a transport failure (reset, refused,
    EOF instead of a response) makes the client reconnect and resend the
    request it was waiting on, counted under [reconnects] instead of
    failing the run — the client half of the fleet's shard-kill drill,
    where every request must complete even as shards die.  Reconnects
    stay distinct from [errors]: typed refusals are the server working,
    reconnects are the transport hiccuping. *)

type result = {
  connections : int;
  requests : int;  (** total sent across all connections *)
  ok : int;
  errors : int;    (** well-formed [ok = false] responses *)
  malformed : int; (** unparsable or protocol-shape-violating lines *)
  reconnects : int; (** transport failures recovered by reconnect+resend *)
  elapsed_s : float;
  latencies_s : float array;  (** one entry per answered request *)
}

val run :
  ?fault_tolerant:bool ->
  Transport.addr ->
  connections:int ->
  requests:int ->
  (int -> Tgd_serve.Json.t) ->
  result
(** The workload function maps a globally unique request index to a
    request object (it should carry an ["id"]).  [fault_tolerant]
    (default false) enables reconnect+resend on transport failures. *)

val connect : ?attempts:int -> Transport.addr -> Unix.file_descr
(** Client connect with brief retries (default 50 × 100 ms) to absorb
    the server's startup race in CI. *)

val percentile : float array -> float -> float
(** [percentile lat p] with linear interpolation; 0 on empty input. *)

val throughput : result -> float
(** Successful requests per second of wall clock. *)

val entail_workload : ?distinct:int -> unit -> int -> Tgd_serve.Json.t
(** Entailment requests over a fixed transitive-ish sigma with
    [distinct] different chain-length goals — repeats warm the cache. *)

val classify_workload : ?distinct:int -> unit -> int -> Tgd_serve.Json.t
val mixed_workload : ?distinct:int -> unit -> int -> Tgd_serve.Json.t

val rewrite_workload : ?tgds:string -> unit -> int -> Tgd_serve.Json.t
(** [g2l] rewrite sweeps over [tgds] (surface syntax; default: a small
    layered ontology).  Every request screens the same candidate space,
    end-to-end checking that cost-based admission keeps certified
    fixtures on the warm path — a spurious [overloaded] shed counts as
    an error in the result. *)

val batch_workload :
  ?distinct:int -> ?batch:int -> unit -> int -> Tgd_serve.Json.t
(** [batch] (default 8) mixed sub-requests per submission, exercising
    the dispatcher's chunked batch path. *)

val multi_workload :
  ?ontologies:int -> ?distinct:int -> unit -> int -> Tgd_serve.Json.t
(** Entailment over [ontologies] (default 8) renamed copies of the
    chain sigma, request [i] hitting ontology [i mod ontologies].
    Distinct rule sets spread across the fleet's digest-routed shards —
    the workload for drills and fleet benchmarks, where a single-sigma
    stream would (by design) hotspot one shard. *)

val workload_of_name :
  ?distinct:int ->
  ?tgds:string ->
  ?batch:int ->
  ?ontologies:int ->
  string ->
  (int -> Tgd_serve.Json.t) option
(** ["entail"], ["classify"], ["mixed"], ["rewrite"], ["batch"],
    ["multi"]. *)

val result_json : result -> Tgd_serve.Json.t
(** Summary object with req/s and p50/p99 millisecond latencies. *)
