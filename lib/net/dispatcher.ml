(* Request dispatcher: N connections, M supervised workers.

   Connection sessions (systhreads, {!Transport}) call {!handle}
   concurrently; each admitted request is executed as a one-item batch on
   the shared {!Tgd_engine.Pool} of supervised domains.  That reuses the
   whole PR-5 fault ladder for free: a worker killed mid-request
   ([pool.worker] chaos site) is respawned by the supervisor and the
   request requeued; a fault surfacing at the batch join ([pool.chunk])
   is retried here with the same backoff schedule {!Tgd_serve.Server}
   uses for [serve.request], and only after [retries] attempts becomes a
   typed [fault] response.  [Server.handle] itself is total, so the only
   exceptions that can reach the join are injected ones.

   Admission runs before any engine work ({!Admission}): past the queue
   limit — or past [expensive_at] for requests whose static cost
   prediction says [Expensive] — the dispatcher answers a typed
   [overloaded] error carrying the predicted cost and observed depth, so
   clients can tell shed-because-full from shed-because-you're-pricey.

   Cache counters are deliberately NOT part of normal responses: equal
   requests must produce byte-identical responses on every connection
   (the qcheck property relies on it), and hit counters are global
   mutable state.  They are surfaced through the [stats] op, or per
   request when the client opts in with ["cache_stats": true]. *)

module Json = Tgd_serve.Json
module Server = Tgd_serve.Server
module Pool = Tgd_engine.Pool
module Chaos = Tgd_engine.Chaos

type config = {
  server : Server.config;
  workers : int;
  admission : Admission.config;
}

let default_config =
  let server = Server.default_config in
  { server;
    workers = 4;
    admission = Admission.default_config ~queue_limit:server.Server.queue_limit
  }

type t = {
  config : config;
  pool : Pool.t;
  fairq : Fairq.t;
  depth : int Atomic.t;
  served : int Atomic.t;
  shed : int Atomic.t;
  mutable extra_stats : (string * (unit -> Json.t)) list;
}

let create config =
  let workers = max 1 config.workers in
  { config;
    pool = Pool.create ~jobs:workers ();
    (* the fair queue is the pool's waiting room: as many grants
       outstanding as there are worker domains, everything else parks in
       per-connection queues and is granted round-robin *)
    fairq = Fairq.create ~capacity:workers;
    depth = Atomic.make 0;
    served = Atomic.make 0;
    shed = Atomic.make 0;
    extra_stats = []
  }

let shutdown t = Pool.shutdown t.pool

let queue_depth t = Atomic.get t.depth

let add_stats t key provider =
  t.extra_stats <- t.extra_stats @ [ (key, provider) ]

let stats_json t =
  let h = Pool.health t.pool in
  let c = Pool.counters t.pool in
  Json.Obj
    ([ ("requests_served", Json.Int (Atomic.get t.served));
      ("requests_shed", Json.Int (Atomic.get t.shed));
      ("queue_depth", Json.Int (Atomic.get t.depth));
      ("workers", Json.Int (Pool.jobs t.pool));
      ( "fair_queue",
        Json.Obj
          [ ("capacity", Json.Int (Fairq.capacity t.fairq));
            ("in_flight", Json.Int (Fairq.in_flight t.fairq));
            ("waiting", Json.Int (Fairq.waiting t.fairq));
            ( "depths",
              Json.Obj
                (List.map
                   (fun (conn, d) -> (string_of_int conn, Json.Int d))
                   (Fairq.depths t.fairq)) )
          ] );
      ( "pool",
        Json.Obj
          [ ("alive", Json.Int h.Tgd_engine.Supervisor.alive);
            ("deaths", Json.Int h.Tgd_engine.Supervisor.deaths);
            ("restarts", Json.Int h.Tgd_engine.Supervisor.restarts);
            ("wedged", Json.Int h.Tgd_engine.Supervisor.wedged);
            ( "breaker_tripped",
              Json.Bool h.Tgd_engine.Supervisor.breaker_tripped );
            ("batches", Json.Int c.Pool.batches);
            ("chunks", Json.Int c.Pool.chunks);
            ("chunks_stolen", Json.Int c.Pool.chunks_stolen);
            ("chunk_items", Json.Int c.Pool.chunk_items);
            ("merge_time_s", Json.Float c.Pool.merge_time_s)
          ] );
      ("cache", Warm.counters_json (Warm.counters ()))
    ]
    @ List.map (fun (key, provider) -> (key, provider ())) t.extra_stats)

let overloaded t ~cost ~depth req =
  let id = Server.request_id req in
  Json.Obj
    [ ("id", id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [ ("code", Json.String "overloaded");
            ( "message",
              Json.String
                (Printf.sprintf "queue depth %d at limit %d" depth
                   t.config.admission.Admission.queue_limit) );
            ( "predicted_cost",
              Json.String (Tgd_analysis.Strategy.cost_name cost) );
            ("queue_depth", Json.Int depth)
          ] )
    ]

(* One request as a one-item batch on the worker pool.  [Server.handle]
   is total, so an exception at the join is pool-level fault injection;
   retry it on the server's schedule before conceding a [fault]. *)
let run_on_pool t req =
  let cfg = t.config.server in
  let rec attempt k =
    match
      Pool.parallel_map t.pool ~chunk:1 (Server.handle cfg) (Seq.return req)
    with
    | [ resp ] -> resp
    | _ ->
      Server.error (Server.request_id req) "internal"
        "worker pool returned no response"
    | exception Chaos.Injected site when k < cfg.Server.retries ->
      ignore site;
      Unix.sleepf (cfg.Server.backoff_base_s *. (2. ** float_of_int k));
      attempt (k + 1)
    | exception Chaos.Injected site ->
      Server.error (Server.request_id req) "fault"
        (Printf.sprintf "injected fault at %s persisted after %d retries"
           site cfg.Server.retries)
    | exception exn ->
      Server.error (Server.request_id req) "internal" (Printexc.to_string exn)
  in
  attempt 0

(* A [batch] request carries sub-requests that run as ONE chunked pool
   batch — the same cost-sized submission path the rewrite screener uses.
   The chunk packs sub-requests to {!Tgd_analysis.Strategy.chunk_weight_target}
   using the admission cost model ([cost_weight] of each sub-request's
   prediction), floored at ~4 chunks per worker so stealing has slack.
   Responses keep submission order (the pool preserves input order), so a
   batch of [k] requests is byte-identical to [k] sequential requests. *)
let batch_chunk t reqs =
  let module Strategy = Tgd_analysis.Strategy in
  let n = List.length reqs in
  if n = 0 then 1
  else begin
    let weight =
      List.fold_left
        (fun acc r ->
          acc + Strategy.cost_weight (Admission.predict t.config.admission r))
        0 reqs
    in
    let mean_weight = max 1 (weight / n) in
    let by_dispatch = max 1 (Strategy.chunk_weight_target / mean_weight) in
    let by_balance = max 1 (n / (4 * max 1 (Pool.jobs t.pool))) in
    max 1 (min by_dispatch by_balance)
  end

let run_batch t reqs =
  let cfg = t.config.server in
  let chunk = batch_chunk t reqs in
  let rec attempt k =
    match
      Pool.parallel_map t.pool ~chunk (Server.handle cfg) (List.to_seq reqs)
    with
    | resps -> resps
    | exception Chaos.Injected site when k < cfg.Server.retries ->
      ignore site;
      Unix.sleepf (cfg.Server.backoff_base_s *. (2. ** float_of_int k));
      attempt (k + 1)
    | exception Chaos.Injected site ->
      List.map
        (fun req ->
          Server.error (Server.request_id req) "fault"
            (Printf.sprintf "injected fault at %s persisted after %d retries"
               site cfg.Server.retries))
        reqs
    | exception exn ->
      List.map
        (fun req ->
          Server.error (Server.request_id req) "internal"
            (Printexc.to_string exn))
        reqs
  in
  attempt 0

let batch_response t req =
  match Json.member "requests" req with
  | Some (Json.List subs) ->
    let resps = run_batch t subs in
    ignore (Atomic.fetch_and_add t.served (List.length subs));
    Json.Obj
      [ ("id", Server.request_id req);
        ("ok", Json.Bool true);
        ("result", Json.Obj [ ("responses", Json.List resps) ])
      ]
  | _ ->
    Server.error (Server.request_id req) "bad_request"
      "\"batch\" needs a \"requests\" array"

let with_cache_stats req resp =
  let wants =
    match Json.member "cache_stats" req with Some (Json.Bool b) -> b | _ -> false
  in
  if not wants then resp
  else
    match resp with
    | Json.Obj fields ->
      Json.Obj (fields @ [ ("cache", Warm.counters_json (Warm.counters ())) ])
    | other -> other

let handle ?(conn = -1) t req =
  match Json.member "op" req with
  | Some (Json.String "stats") ->
    Json.Obj
      [ ("id", Server.request_id req);
        ("ok", Json.Bool true);
        ("result", stats_json t)
      ]
  | _ -> (
    let depth = Atomic.fetch_and_add t.depth 1 in
    Fun.protect
      ~finally:(fun () -> ignore (Atomic.fetch_and_add t.depth (-1)))
      (fun () ->
        match Admission.decide t.config.admission ~queue_depth:depth req with
        | Admission.Shed cost ->
          ignore (Atomic.fetch_and_add t.shed 1);
          overloaded t ~cost ~depth req
        | Admission.Admit _ ->
          (* admitted: wait for a fair-queue slot before touching the
             pool, so pool entry rotates round-robin across connections
             instead of first-come-first-served across whoever pipelines
             hardest *)
          Fairq.with_slot t.fairq ~conn (fun () ->
              match Json.member "op" req with
              | Some (Json.String "batch") -> batch_response t req
              | _ ->
                let resp = run_on_pool t req in
                ignore (Atomic.fetch_and_add t.served 1);
                with_cache_stats req resp)))
