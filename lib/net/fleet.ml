(* Multi-process shard fleet: process-isolated serving with supervision,
   failover, and graceful degradation.

   One [tgdtool serve] process holds every session thread, warm cache,
   and domain pool — so one runaway request, memory blowup, or crash
   takes down all clients at once.  The fleet splits the blast radius:
   a parent supervisor forks [shards] worker processes, each running the
   existing socket serve loop ({!Transport.serve}) on its own Unix
   socket with its own domain pool and caches, and a front-end router
   in the parent accepts client connections and proxies request lines to
   shards by rendezvous hash of the ontology digest — the same rule set
   always lands on the same shard, so per-shard warm caches keep their
   hit rates.

   {b Supervision.}  Each shard holds the write end of a heartbeat pipe
   and beats every [beat_s]; the parent's monitor thread selects on the
   read ends, reaps exits with [waitpid WNOHANG], and reuses the PR-5
   {!Tgd_engine.Supervisor} state machine for the rest: a missed-beat
   window marks a shard wedged (SIGKILL, then the death path), deaths
   respawn with capped exponential backoff, and an exhausted restart
   budget trips the breaker.  Chaos's process-kill family
   ({!Tgd_engine.Chaos.kill_shot}, site ["fleet.shard"]) is consulted
   once per tick so a deterministic shot stream can [kill -9] shards
   under load in drills.

   {b Failover.}  The decision services are stateless per request
   modulo caches, so when a shard dies mid-request the router retries
   the line on the next-best live shard in rendezvous order — the same
   retry-with-backoff ladder the PR-5 serve loop uses for injected
   faults.  A client sees its ordinary response, just slower; only a
   fleet with nothing left to try answers a typed [unavailable].

   {b Degraded mode.}  Below quorum (default: majority) the fleet keeps
   answering instead of refusing service, but tightens load shedding:
   requests whose static cost prediction says [Expensive] are shed at
   the router edge with a typed [overloaded] error carrying
   ["degraded": true], preserving the surviving shards' headroom for
   traffic that will finish quickly.

   {b Forking.}  [Unix.fork] requires a single running domain, and the
   child must not inherit parent descriptors: every fd the parent holds
   (listener, client sessions, backend connections, heartbeat read ends)
   is registered in one table, fd creation and forking serialize on one
   mutex, and a fresh child closes the whole snapshot before serving.
   Children leave via [Unix._exit], never [exit] — flushing the
   parent's inherited stdout buffer from a child would duplicate
   output. *)

module Json = Tgd_serve.Json
module Server = Tgd_serve.Server
module Chaos = Tgd_engine.Chaos
module Supervisor = Tgd_engine.Supervisor
module Pool = Tgd_engine.Pool

type config = {
  shards : int;
  shard : Transport.config;     (* per-shard serving config *)
  cache_bytes : int option;     (* per-shard warm-cache ceiling *)
  quorum : int option;          (* live shards below this => degraded;
                                   default majority *)
  beat_s : float;               (* shard heartbeat period *)
  policy : Supervisor.policy;   (* respawn backoff, wedge window, tick *)
  max_connections : int;        (* router front-end *)
  idle_timeout_s : float option;
  drain_grace_s : float;
  retries : int;                (* failover attempts per request *)
  backoff_base_s : float;
  shard_dir : string option;    (* where shard sockets live *)
}

let default_policy =
  { Supervisor.max_restarts = 1000;
    backoff_base_s = 0.05;
    backoff_cap_s = 2.0;
    wedge_timeout_s = Some 3.0;
    tick_s = 0.1
  }

let default_config =
  { shards = 4;
    shard = Transport.default_config;
    cache_bytes = None;
    quorum = None;
    beat_s = 0.25;
    policy = default_policy;
    max_connections = 64;
    idle_timeout_s = None;
    drain_grace_s = 5.0;
    retries = 4;
    backoff_base_s = 0.05;
    shard_dir = None
  }

(* ---- consistent placement ------------------------------------------- *)

(* Rendezvous (highest-random-weight) hashing: every (digest, shard)
   pair gets a pseudo-random score, a digest is served by its
   highest-scoring shard, and the full ranking is the failover order.
   For a fixed shard count the assignment is a pure function of the
   digest (the stability the qcheck property pins down); when one shard
   is down only the digests it owned move, everyone else's cache
   affinity survives the failure. *)
let score digest i =
  let d = Digest.string (Printf.sprintf "%s#%d" digest i) in
  let v = ref 0 in
  for k = 0 to 6 do
    v := (!v lsl 8) lor Char.code d.[k]
  done;
  !v

let shard_rank ~shards digest =
  if shards < 1 then invalid_arg "Fleet.shard_rank: shards must be >= 1";
  List.init shards Fun.id
  |> List.sort (fun a b -> compare (score digest b, b) (score digest a, a))

let shard_of_digest ~shards digest = List.hd (shard_rank ~shards digest)

(* The affinity key is the ontology text: requests over the same rule
   set land on the same shard, which is exactly the granularity of the
   sigma-keyed warm caches (entailment memo level 1, analyze memo).
   A batch folds in every sub-request's ontology so the whole submission
   routes as one unit. *)
let rec affinity_parts req acc =
  let acc =
    match Json.member "tgds" req with
    | Some (Json.String s) -> s :: acc
    | _ -> acc
  in
  match Json.member "requests" req with
  | Some (Json.List subs) ->
    List.fold_left (fun acc sub -> affinity_parts sub acc) acc subs
  | _ -> acc

let request_digest req =
  Digest.to_hex
    (Digest.string (String.concat "\x00" (List.rev (affinity_parts req []))))

(* ---- fleet state ----------------------------------------------------- *)

type shard_slot = {
  idx : int;
  sock : string;
  mutable pid : int;                     (* 0 = down *)
  mutable hb : Unix.file_descr option;   (* heartbeat read end *)
  mutable last_beat : float;
}

type t = {
  config : config;
  addr : Transport.addr;
  quorum : int;
  listener : Unix.file_descr;
  sup : Supervisor.t;
  shards : shard_slot array;
  draining : bool Atomic.t;
  (* every parent-held fd, so a fresh child can close the lot; creation
     and forking serialize on [fork_mu] so the child's snapshot is
     consistent *)
  fork_mu : Mutex.t;
  fds : (Unix.file_descr, unit) Hashtbl.t;
  mu : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  session_ends : Transport.session_counters;
  mutable sessions : Thread.t list;
  mutable next_conn : int;
  mutable accept_thread : Thread.t option;
  mutable monitor_thread : Thread.t option;
  respawns : int Atomic.t;
  chaos_kills : int Atomic.t;
  requests : int Atomic.t;
  failovers : int Atomic.t;
  degraded_shed : int Atomic.t;
  unavailable : int Atomic.t;
}

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let unregister_fd t fd = locked t.fork_mu (fun () -> Hashtbl.remove t.fds fd)

let alive_count t =
  Array.fold_left (fun n sh -> if sh.pid > 0 then n + 1 else n) 0 t.shards

let degraded t = alive_count t < t.quorum || Supervisor.tripped t.sup
let respawn_count t = Atomic.get t.respawns
let chaos_kill_count t = Atomic.get t.chaos_kills

(* ---- shard child ----------------------------------------------------- *)

(* The child process: beat the heartbeat pipe from a side thread, then
   run the ordinary socket serve loop until drained.  EPIPE on the beat
   means the parent is gone — an orphaned shard exits rather than
   serving a socket nobody routes to. *)
let run_shard config sock hb_w =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Warm.configure ~cache_bytes:config.cache_bytes;
  let stop = Atomic.make false in
  ignore
    (Thread.create
       (fun () ->
         let buf = Bytes.make 1 'h' in
         let rec beat () =
           if not (Atomic.get stop) then begin
             (match Unix.write hb_w buf 0 1 with
             | _ -> ()
             | exception Unix.Unix_error (EPIPE, _, _) -> Unix._exit 0
             | exception Unix.Unix_error (_, _, _) -> ());
             Thread.delay config.beat_s;
             beat ()
           end
         in
         beat ())
       ());
  let code =
    try Transport.serve ~signals:true config.shard (Transport.Unix_sock sock)
    with _ -> 70
  in
  Atomic.set stop true;
  Unix._exit code

(* Fork shard [i].  Holds [fork_mu] across pipe creation and the fork so
   no other thread can register or create descriptors mid-snapshot. *)
let spawn_shard t i =
  let sh = t.shards.(i) in
  locked t.fork_mu (fun () ->
      let r, w = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        (try Unix.close r with Unix.Unix_error (_, _, _) -> ());
        Hashtbl.iter
          (fun fd () ->
            try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
          t.fds;
        run_shard t.config sh.sock w
      | pid ->
        (try Unix.close w with Unix.Unix_error (_, _, _) -> ());
        sh.pid <- pid;
        sh.hb <- Some r;
        sh.last_beat <- Unix.gettimeofday ();
        Hashtbl.replace t.fds r ());
  ignore (Supervisor.note_spawned t.sup i);
  Supervisor.note_busy t.sup i ~now:(Unix.gettimeofday ())

(* A shard is gone (reaped by waitpid): release its heartbeat fd and let
   the supervisor schedule the respawn with backoff. *)
let shard_down t sh ~now =
  (match sh.hb with
  | Some fd ->
    unregister_fd t fd;
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
    sh.hb <- None
  | None -> ());
  sh.pid <- 0;
  Supervisor.note_death t.sup sh.idx ~now

(* SIGKILL and synchronously reap — only called when the process is
   certainly dying (we just signalled it). *)
let terminate_shard sh =
  if sh.pid > 0 then begin
    (try Unix.kill sh.pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
    try ignore (Unix.waitpid [] sh.pid)
    with Unix.Unix_error (_, _, _) -> ()
  end

let kill_shard t i =
  if i < 0 || i >= Array.length t.shards then false
  else begin
    let sh = t.shards.(i) in
    if sh.pid > 0 then begin
      (try Unix.kill sh.pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
      true
    end
    else false
  end

(* ---- supervision loop ------------------------------------------------ *)

let monitor t =
  let tick_s = t.config.policy.Supervisor.tick_s in
  let next_tick = ref (Unix.gettimeofday ()) in
  let rec loop () =
    if Atomic.get t.draining then ()
    else begin
      (* heartbeat pipes: drain readable ones, refresh the wedge clock;
         EOF just retires the fd — death is waitpid's verdict, a silent
         live process is the wedge window's *)
      let hb_fds =
        Array.to_list t.shards
        |> List.filter_map (fun sh ->
               Option.map (fun fd -> (fd, sh)) sh.hb)
      in
      let timeout = Float.max 0.01 (!next_tick -. Unix.gettimeofday ()) in
      (match Unix.select (List.map fst hb_fds) [] [] timeout with
      | readable, _, _ ->
        let buf = Bytes.create 64 in
        List.iter
          (fun fd ->
            match List.assoc_opt fd hb_fds with
            | None -> ()
            | Some sh -> (
              match Unix.read fd buf 0 64 with
              | 0 ->
                unregister_fd t fd;
                (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
                sh.hb <- None
              | _ ->
                let now = Unix.gettimeofday () in
                sh.last_beat <- now;
                Supervisor.note_busy t.sup sh.idx ~now
              | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _)
                -> ()
              | exception Unix.Unix_error (_, _, _) ->
                unregister_fd t fd;
                (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
                sh.hb <- None))
          readable
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error (EBADF, _, _) -> ());
      let now = Unix.gettimeofday () in
      if now >= !next_tick then begin
        next_tick := now +. tick_s;
        (* reap exits *)
        Array.iter
          (fun sh ->
            if sh.pid > 0 then
              match Unix.waitpid [ WNOHANG ] sh.pid with
              | 0, _ -> ()
              | _, _ -> shard_down t sh ~now
              | exception Unix.Unix_error (ECHILD, _, _) ->
                shard_down t sh ~now)
          t.shards;
        (* the process-kill chaos family: one deterministic draw per tick *)
        (match Chaos.kill_shot ~site:"fleet.shard" ~n:t.config.shards with
        | Some v when t.shards.(v).pid > 0 ->
          ignore (Atomic.fetch_and_add t.chaos_kills 1);
          (try Unix.kill t.shards.(v).pid Sys.sigkill
           with Unix.Unix_error (_, _, _) -> ())
        | _ -> ());
        (* supervisor verdicts: wedged shards are killed and take the
           death path; dead shards past their backoff respawn; an
           exhausted restart budget trips the breaker (permanent
           degraded mode) *)
        List.iter
          (fun action ->
            match (action : Supervisor.action) with
            | Supervisor.Abandon i ->
              let sh = t.shards.(i) in
              Fmt.epr "fleet: shard %d wedged (no heartbeat), killing@." i;
              terminate_shard sh;
              Supervisor.note_wedged t.sup i ~now;
              (match sh.hb with
              | Some fd ->
                unregister_fd t fd;
                (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
                sh.hb <- None
              | None -> ());
              sh.pid <- 0
            | Supervisor.Respawn i ->
              ignore (Atomic.fetch_and_add t.respawns 1);
              spawn_shard t i
            | Supervisor.Trip_breaker ->
              Fmt.epr
                "fleet: restart budget exhausted, breaker tripped \
                 (degraded)@.";
              Supervisor.trip t.sup)
          (Supervisor.decide t.sup ~now)
      end;
      loop ()
    end
  in
  loop ()

(* ---- router ---------------------------------------------------------- *)

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let send_json oc resp = send_line oc (Json.to_string resp)

let error_response req code message extra =
  Json.Obj
    [ ("id", Server.request_id req);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          (("code", Json.String code)
          :: ("message", Json.String message)
          :: extra) )
    ]

let status_json t =
  let h = Supervisor.health t.sup in
  let now = Unix.gettimeofday () in
  Json.Obj
    [ ("shards", Json.Int t.config.shards);
      ("alive", Json.Int (alive_count t));
      ("quorum", Json.Int t.quorum);
      ("degraded", Json.Bool (degraded t));
      ("breaker_tripped", Json.Bool h.Supervisor.breaker_tripped);
      ("respawns", Json.Int (Atomic.get t.respawns));
      ("deaths", Json.Int h.Supervisor.deaths);
      ("wedged", Json.Int h.Supervisor.wedged);
      ("chaos_kills", Json.Int (Atomic.get t.chaos_kills));
      ( "router",
        Json.Obj
          [ ("requests", Json.Int (Atomic.get t.requests));
            ("failovers", Json.Int (Atomic.get t.failovers));
            ("degraded_shed", Json.Int (Atomic.get t.degraded_shed));
            ("unavailable", Json.Int (Atomic.get t.unavailable));
            ( "sessions",
              Json.Int (locked t.mu (fun () -> Hashtbl.length t.conns)) );
            ("session_ends", Transport.session_counters_json t.session_ends)
          ] );
      ( "shard",
        Json.List
          (Array.to_list t.shards
          |> List.map (fun sh ->
                 Json.Obj
                   [ ("idx", Json.Int sh.idx);
                     ("pid", Json.Int sh.pid);
                     ("live", Json.Bool (sh.pid > 0));
                     ( "beat_age_s",
                       Json.Float
                         (if sh.pid > 0 then now -. sh.last_beat else -1.) )
                   ])) )
    ]

(* Per-session backend connections, one per shard, opened lazily and
   dropped on the first transport error (the failover path reopens
   against the respawned process). *)
type backends = (int, in_channel * out_channel * Unix.file_descr) Hashtbl.t

let drop_backend t (backends : backends) i =
  match Hashtbl.find_opt backends i with
  | None -> ()
  | Some (_, _, fd) ->
    Hashtbl.remove backends i;
    unregister_fd t fd;
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let get_backend t (backends : backends) i =
  match Hashtbl.find_opt backends i with
  | Some (ic, oc, _) -> (ic, oc)
  | None ->
    let sh = t.shards.(i) in
    locked t.fork_mu (fun () ->
        let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
        match Unix.connect fd (ADDR_UNIX sh.sock) with
        | () ->
          Hashtbl.replace t.fds fd ();
          let ic = Unix.in_channel_of_descr fd
          and oc = Unix.out_channel_of_descr fd in
          Hashtbl.replace backends i (ic, oc, fd);
          (ic, oc)
        | exception e ->
          (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
          raise e)

let call_backend t backends i line =
  match
    let ic, oc = get_backend t backends i in
    send_line oc line;
    input_line ic
  with
  | resp -> Some resp
  | exception
      ( End_of_file | Sys_error _ | Sys_blocked_io
      | Unix.Unix_error (_, _, _) ) ->
    drop_backend t backends i;
    None

(* Proxy one request line: rank the shards for the request's ontology
   digest, try the best live one, and on a transport failure fall over
   to the next with the retry ladder's backoff.  [skip] remembers shards
   that already failed this request; when every candidate has failed (or
   everything is down) the ladder waits a backoff step for the
   supervisor to respawn something before conceding [unavailable]. *)
let route t backends req line =
  let order = shard_rank ~shards:t.config.shards (request_digest req) in
  let rec attempt k skip =
    let candidate =
      List.find_opt
        (fun i -> t.shards.(i).pid > 0 && not (List.mem i skip))
        order
    in
    match candidate with
    | None ->
      if k >= t.config.retries then begin
        ignore (Atomic.fetch_and_add t.unavailable 1);
        Json.to_string
          (error_response req "unavailable"
             (Printf.sprintf "no live shard after %d attempts" (k + 1))
             [])
      end
      else begin
        Unix.sleepf (t.config.backoff_base_s *. (2. ** float_of_int k));
        attempt (k + 1) []
      end
    | Some i -> (
      match call_backend t backends i line with
      | Some resp -> resp
      | None ->
        ignore (Atomic.fetch_and_add t.failovers 1);
        if k >= t.config.retries then begin
          ignore (Atomic.fetch_and_add t.unavailable 1);
          Json.to_string
            (error_response req "unavailable"
               (Printf.sprintf "shard failover exhausted after %d attempts"
                  (k + 1))
               [])
        end
        else begin
          Unix.sleepf (t.config.backoff_base_s *. (2. ** float_of_int k));
          attempt (k + 1) (i :: skip)
        end)
  in
  attempt 0 []

let handle_line t backends oc line =
  match Json.of_string line with
  | Error msg ->
    send_json oc (Server.error Json.Null "bad_request" ("invalid JSON: " ^ msg))
  | Ok req -> (
    match Option.bind (Json.member "op" req) Json.as_string with
    | Some "fleet_status" ->
      send_json oc
        (Json.Obj
           [ ("id", Server.request_id req);
             ("ok", Json.Bool true);
             ("result", status_json t)
           ])
    | _ ->
      ignore (Atomic.fetch_and_add t.requests 1);
      let admission = t.config.shard.Transport.dispatcher.Dispatcher.admission in
      if
        degraded t
        && Admission.predict admission req = Tgd_analysis.Strategy.Expensive
      then begin
        (* degraded mode: Expensive-work shedding tightened to the router
           edge — surviving shards keep their headroom for cheap traffic *)
        ignore (Atomic.fetch_and_add t.degraded_shed 1);
        send_json oc
          (error_response req "overloaded"
             (Printf.sprintf
                "fleet degraded (%d of %d shards live, quorum %d): expensive \
                 work shed"
                (alive_count t) t.config.shards t.quorum)
             [ ( "predicted_cost",
                 Json.String
                   (Tgd_analysis.Strategy.cost_name
                      Tgd_analysis.Strategy.Expensive) );
               ("degraded", Json.Bool true)
             ])
      end
      else send_line oc (route t backends req line))

let session t conn fd =
  let max_line =
    t.config.shard.Transport.dispatcher.Dispatcher.server
      .Server.max_line_bytes
  in
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  let backends : backends = Hashtbl.create 8 in
  let rec loop () =
    if Atomic.get t.draining then Transport.Drained
    else
      match Json.read_line_bounded ~max_bytes:max_line ic with
      | Json.Eof ->
        if Atomic.get t.draining then Transport.Drained
        else Transport.Client_closed
      | Json.Oversized n ->
        send_json oc
          (Server.error Json.Null "request_too_large"
             (Printf.sprintf "request line of %d bytes exceeds limit %d" n
                max_line));
        loop ()
      | Json.Line line ->
        let line = String.trim line in
        if line = "" then loop ()
        else begin
          handle_line t backends oc line;
          loop ()
        end
  in
  let reason = try loop () with exn -> Transport.classify_session_exn exn in
  Transport.count_session_end t.session_ends reason;
  ignore conn;
  Hashtbl.iter (fun _ (_, _, bfd) ->
      unregister_fd t bfd;
      try Unix.close bfd with Unix.Unix_error (_, _, _) -> ())
    backends;
  (try flush oc
   with Sys_error _ | Sys_blocked_io | Unix.Unix_error (_, _, _) -> ());
  unregister_fd t fd;
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let reject_over_limit t fd =
  let oc = Unix.out_channel_of_descr fd in
  (try
     send_json oc
       (Server.error Json.Null "overloaded" "connection limit reached")
   with Sys_error _ | Unix.Unix_error (_, _, _) -> ());
  unregister_fd t fd;
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let live_conns t = locked t.mu (fun () -> Hashtbl.length t.conns)

let accept_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else begin
      (match Unix.select [ t.listener ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        (* accept under the fork mutex so the new fd is registered
           before any fork can snapshot the table without it *)
        match
          locked t.fork_mu (fun () ->
              match Unix.accept t.listener with
              | fd, _peer ->
                Hashtbl.replace t.fds fd ();
                Some fd
              | exception
                  Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _) ->
                None)
        with
        | None -> ()
        | Some fd ->
          if Atomic.get t.draining || live_conns t >= t.config.max_connections
          then reject_over_limit t fd
          else begin
            (match t.config.idle_timeout_s with
            | Some s when s > 0. -> (
              try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
              with Unix.Unix_error (_, _, _) -> ())
            | _ -> ());
            let id =
              locked t.mu (fun () ->
                  let id = t.next_conn in
                  t.next_conn <- id + 1;
                  Hashtbl.replace t.conns id fd;
                  id)
            in
            let th =
              Thread.create
                (fun () ->
                  Fun.protect
                    ~finally:(fun () ->
                      locked t.mu (fun () -> Hashtbl.remove t.conns id))
                    (fun () -> session t id fd))
                ()
            in
            locked t.mu (fun () -> t.sessions <- th :: t.sessions)
          end)
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* ---- lifecycle ------------------------------------------------------- *)

let shard_sock_path config addr i =
  match (config.shard_dir, addr) with
  | Some dir, _ -> Filename.concat dir (Printf.sprintf "shard%d.sock" i)
  | None, Transport.Unix_sock path -> Printf.sprintf "%s.shard%d" path i
  | None, Transport.Tcp _ ->
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tgd_fleet_%d_shard%d.sock" (Unix.getpid ()) i)

let bind_listener addr =
  match addr with
  | Transport.Unix_sock path ->
    (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Transport.Tcp (host, port) ->
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
    in
    Unix.bind fd (ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let start (config : config) addr =
  if config.shards < 1 then invalid_arg "Fleet.start: shards must be >= 1";
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  (* [Unix.fork] needs a single running domain; the warm-pool registry is
     the one thing in this process that may be holding domains alive *)
  Pool.warm_shutdown ();
  let t =
    { config;
      addr;
      quorum =
        (match config.quorum with
        | Some q -> max 1 (min q config.shards)
        | None -> (config.shards / 2) + 1);
      listener = bind_listener addr;
      sup = Supervisor.create config.policy ~slots:config.shards;
      shards =
        Array.init config.shards (fun i ->
            { idx = i;
              sock = shard_sock_path config addr i;
              pid = 0;
              hb = None;
              last_beat = 0.
            });
      draining = Atomic.make false;
      fork_mu = Mutex.create ();
      fds = Hashtbl.create 64;
      mu = Mutex.create ();
      conns = Hashtbl.create 16;
      session_ends = Transport.fresh_session_counters ();
      sessions = [];
      next_conn = 0;
      accept_thread = None;
      monitor_thread = None;
      respawns = Atomic.make 0;
      chaos_kills = Atomic.make 0;
      requests = Atomic.make 0;
      failovers = Atomic.make 0;
      degraded_shed = Atomic.make 0;
      unavailable = Atomic.make 0
    }
  in
  Hashtbl.replace t.fds t.listener ();
  for i = 0 to config.shards - 1 do
    spawn_shard t i
  done;
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.monitor_thread <- Some (Thread.create (fun () -> monitor t) ());
  t

let drain t = Atomic.set t.draining true

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (try Unix.close t.listener with Unix.Unix_error (_, _, _) -> ());
  (match t.addr with
  | Transport.Unix_sock path -> (
    try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Transport.Tcp _ -> ());
  (* wake client readers; in-flight proxy calls still finish writing *)
  let shutdown_conns mode =
    let fds =
      locked t.mu (fun () ->
          Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [])
    in
    List.iter
      (fun fd ->
        try Unix.shutdown fd mode with Unix.Unix_error (_, _, _) -> ())
      fds
  in
  shutdown_conns Unix.SHUTDOWN_RECEIVE;
  let deadline = Unix.gettimeofday () +. t.config.drain_grace_s in
  let rec poll () =
    if live_conns t > 0 && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.02;
      poll ()
    end
  in
  poll ();
  if live_conns t > 0 then shutdown_conns Unix.SHUTDOWN_ALL;
  let sessions = locked t.mu (fun () -> t.sessions) in
  List.iter Thread.join sessions;
  (match t.monitor_thread with Some th -> Thread.join th | None -> ());
  (* only now stop the shards: every proxied request got its response *)
  Array.iter
    (fun sh ->
      if sh.pid > 0 then
        try Unix.kill sh.pid Sys.sigterm with Unix.Unix_error (_, _, _) -> ())
    t.shards;
  let deadline = Unix.gettimeofday () +. t.config.drain_grace_s in
  let rec reap () =
    let pending =
      Array.fold_left
        (fun acc sh ->
          if sh.pid <= 0 then acc
          else
            match Unix.waitpid [ WNOHANG ] sh.pid with
            | 0, _ -> sh :: acc
            | _, _ ->
              sh.pid <- 0;
              acc
            | exception Unix.Unix_error (ECHILD, _, _) ->
              sh.pid <- 0;
              acc)
        [] t.shards
    in
    if pending <> [] then
      if Unix.gettimeofday () < deadline then begin
        Thread.delay 0.02;
        reap ()
      end
      else
        List.iter
          (fun sh ->
            terminate_shard sh;
            sh.pid <- 0)
          pending
  in
  reap ();
  Array.iter
    (fun sh ->
      (match sh.hb with
      | Some fd -> (
        try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      | None -> ());
      try Unix.unlink sh.sock with Unix.Unix_error (_, _, _) -> ())
    t.shards;
  0

let stop t =
  drain t;
  wait t

let serve ?(signals = true) config addr =
  let t = start config addr in
  if signals then begin
    let handler = Sys.Signal_handle (fun _ -> drain t) in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler
  end;
  wait t
