(** Concurrent request dispatcher over the supervised worker pool.

    N connection sessions call {!handle} concurrently; admitted requests
    run as one-item batches on a shared {!Tgd_engine.Pool} of [workers]
    domains, inheriting the PR-5 supervision ladder (worker respawn,
    requeue, circuit breaker, typed faults).  {!Admission} sheds requests
    ahead of the pool with typed [overloaded] responses carrying the
    predicted cost class.

    A [batch] op ([{"op": "batch", "requests": [...]}]) runs its
    sub-requests as one chunked pool batch — the same cost-sized
    submission path the rewrite screener uses, with the chunk packed to
    {!Tgd_analysis.Strategy.chunk_weight_target} from each sub-request's
    predicted cost.  Responses preserve submission order, so a batch of
    [k] requests returns exactly the [k] responses sequential submission
    would.  Admission predicts a batch at its dearest member's cost.

    Admitted requests wait for a {!Fairq} slot before entering the pool:
    per-connection queues granted round-robin, so a connection
    pipelining requests back-to-back cannot starve the others.  Pass the
    session's connection id to {!handle} to get a dedicated queue;
    callers without one (stdio, tests) share a default queue.

    A [stats] op reports served/shed counts, pool health, chunk counters
    (chunks submitted/stolen, items, barrier merge time), fair-queue
    state (per-connection queue depths), and warm-cache counters; normal
    responses stay byte-identical across connections unless the client
    opts in with ["cache_stats": true]. *)

type config = {
  server : Tgd_serve.Server.config;  (** per-request budgets and retries *)
  workers : int;                     (** worker domains in the pool *)
  admission : Admission.config;
}

val default_config : config
(** [Server.default_config], 4 workers, admission at the server's queue
    limit. *)

type t

val create : config -> t
(** Spawn the worker pool.  Pair with {!shutdown}. *)

val handle : ?conn:int -> t -> Tgd_serve.Json.t -> Tgd_serve.Json.t
(** One parsed request to its terminal response.  Total: never raises.
    Safe to call from any number of threads or domains concurrently.
    [conn] names the calling connection's fair queue (default [-1], a
    queue shared by all anonymous callers). *)

val add_stats : t -> string -> (unit -> Tgd_serve.Json.t) -> unit
(** Append a provider whose value is included under [key] in every
    [stats] result — how the transport surfaces session counters that
    the dispatcher cannot see.  Call before serving traffic. *)

val queue_depth : t -> int
(** Requests currently between admission and response. *)

val stats_json : t -> Tgd_serve.Json.t
(** The [stats] op's result object (also usable for logging). *)

val shutdown : t -> unit
(** Stop and join the worker pool.  Idempotent. *)
