(* Per-client fair queueing.

   Before this module the dispatcher's waiting room was whatever order
   session threads happened to hit the worker pool in — effectively one
   global FIFO, so a connection pipelining requests back-to-back could
   keep the pool saturated and starve everyone who arrived behind it.
   Here each connection gets its own queue and grants rotate round-robin
   across the connections that have waiters: a greedy connection still
   gets full throughput when it is alone, but the moment a second
   connection shows up the two alternate, and K connections each see
   ~1/K of the pool no matter how deep anyone's pipeline is.

   Mechanics: [acquire] parks the calling thread on a per-connection
   queue as a granted-flag cell; whenever capacity frees up the scheduler
   pops the head of the next connection's queue in rotation, flips its
   flag, and broadcasts.  Within one connection order stays FIFO (the
   NDJSON protocol promises in-order responses per connection, and each
   session thread is serial anyway).  [capacity] bounds how many grants
   are outstanding — the dispatcher sizes it to the worker pool, so the
   queue is exactly the pool's waiting room, reordered. *)

type t = {
  mu : Mutex.t;
  cond : Condition.t;
  capacity : int;
  queues : (int, bool ref Queue.t) Hashtbl.t;
  mutable rotation : int list; (* conns with waiters, next-to-grant first *)
  mutable in_flight : int;
  mutable waiting : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Fairq.create: capacity must be >= 1";
  { mu = Mutex.create ();
    cond = Condition.create ();
    capacity;
    queues = Hashtbl.create 16;
    rotation = [];
    in_flight = 0;
    waiting = 0
  }

let capacity t = t.capacity

(* Grant as long as there is headroom and someone is waiting.  Must be
   called with [t.mu] held. *)
let rec grant_locked t =
  if t.in_flight < t.capacity then
    match t.rotation with
    | [] -> ()
    | conn :: rest ->
      let q = Hashtbl.find t.queues conn in
      let granted = Queue.pop q in
      granted := true;
      t.in_flight <- t.in_flight + 1;
      t.waiting <- t.waiting - 1;
      (if Queue.is_empty q then begin
         Hashtbl.remove t.queues conn;
         t.rotation <- rest
       end
       else t.rotation <- rest @ [ conn ]);
      Condition.broadcast t.cond;
      grant_locked t

let acquire t ~conn =
  Mutex.lock t.mu;
  let granted = ref false in
  let q =
    match Hashtbl.find_opt t.queues conn with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add t.queues conn q;
      t.rotation <- t.rotation @ [ conn ];
      q
  in
  Queue.push granted q;
  t.waiting <- t.waiting + 1;
  grant_locked t;
  while not !granted do
    Condition.wait t.cond t.mu
  done;
  Mutex.unlock t.mu

let release t =
  Mutex.lock t.mu;
  t.in_flight <- t.in_flight - 1;
  grant_locked t;
  Mutex.unlock t.mu

let with_slot t ~conn f =
  acquire t ~conn;
  Fun.protect ~finally:(fun () -> release t) f

let waiting t =
  Mutex.lock t.mu;
  let n = t.waiting in
  Mutex.unlock t.mu;
  n

let in_flight t =
  Mutex.lock t.mu;
  let n = t.in_flight in
  Mutex.unlock t.mu;
  n

let depths t =
  Mutex.lock t.mu;
  let ds =
    Hashtbl.fold (fun conn q acc -> (conn, Queue.length q) :: acc) t.queues []
  in
  Mutex.unlock t.mu;
  List.sort (fun (a, _) (b, _) -> compare a b) ds
