(* Cross-request warm state.

   The caches that make repeated classify/entail/rewrite traffic cheap —
   the two-level entailment memo and the chase-result cache — are
   process-wide already ({!Tgd_chase.Entailment}, {!Tgd_chase.Chase}).
   This module is the server-scope view over them: one switch that
   installs an overall byte ceiling with LRU eviction across all three
   tables, and one set of counters the dispatcher surfaces in [stats]
   responses (and, opt-in, per request).  The split gives the entailment
   side half the ceiling and the chase-result cache the other half; each
   table enforces its share independently, so one hot workload cannot
   evict the other side's entire working set. *)

module Memo = Tgd_engine.Memo
module Json = Tgd_serve.Json

let configure ~cache_bytes =
  match cache_bytes with
  | None ->
    Tgd_chase.Entailment.set_cache_limit ~bytes:None;
    Tgd_chase.Chase.set_memo_limit ~bytes:None
  | Some b ->
    let half = max 8192 (b / 2) in
    Tgd_chase.Entailment.set_cache_limit ~bytes:(Some half);
    Tgd_chase.Chase.set_memo_limit ~bytes:(Some (max 8192 (b - half)))

let reset () =
  Tgd_chase.Entailment.clear_memos ();
  Tgd_chase.Chase.clear_memo ()

let counters () =
  Memo.combine_counters
    (Tgd_chase.Entailment.cache_counters ())
    (Tgd_chase.Chase.memo_counters ())

let counters_json (c : Memo.counters) =
  Json.Obj
    [ ("hits", Json.Int c.Memo.hits);
      ("misses", Json.Int c.Memo.misses);
      ("entries", Json.Int c.Memo.entries);
      ("approx_bytes", Json.Int c.Memo.bytes);
      ("evictions", Json.Int c.Memo.evicted)
    ]
