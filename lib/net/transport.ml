(* Socket transport: accept loop, framed NDJSON sessions, graceful drain.

   Concurrency model: the engine's parallelism lives in the dispatcher's
   domain pool; connections only need to block on IO, so each session is
   a systhread ([threads.posix]) — blocking reads release the runtime
   lock, and a thousand mostly-idle connections cost a stack each, not a
   domain each.  The accept loop is itself a thread that polls a
   [select] with a short timeout so it can notice the draining flag
   without a wakeup pipe.

   Framing is the same NDJSON protocol as the stdio loop, read through
   {!Tgd_serve.Json.read_line_bounded}: oversized lines are consumed and
   answered with [request_too_large], CRLF and trailing partial lines
   are tolerated.  Idle connections are bounded with [SO_RCVTIMEO]; the
   timeout surfaces as a [Sys_error] from the channel read and closes
   the session.

   Graceful drain (SIGINT/SIGTERM or {!drain}): the accept loop exits,
   the listener closes, and every in-flight connection is woken with
   [shutdown SHUTDOWN_RECEIVE] — a blocked reader sees end-of-file, a
   session mid-request finishes writing its response first.  Sessions
   still open after [drain_grace_s] are cut with [SHUTDOWN_ALL].  Only
   then is the worker pool shut down, so no admitted request loses its
   worker. *)

module Json = Tgd_serve.Json
module Server = Tgd_serve.Server

type addr = Unix_sock of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_sock path -> Fmt.pf ppf "unix:%s" path
  | Tcp (host, port) -> Fmt.pf ppf "tcp:%s:%d" host port

type config = {
  dispatcher : Dispatcher.config;
  max_connections : int;
  idle_timeout_s : float option;
  drain_grace_s : float;
}

let default_config =
  { dispatcher = Dispatcher.default_config;
    max_connections = 64;
    idle_timeout_s = None;
    drain_grace_s = 5.0
  }

type t = {
  config : config;
  addr : addr;
  dispatcher : Dispatcher.t;
  listener : Unix.file_descr;
  draining : bool Atomic.t;
  mu : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable sessions : Thread.t list;
  mutable next_conn : int;
  mutable accept_thread : Thread.t option;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let register t fd =
  locked t (fun () ->
      let id = t.next_conn in
      t.next_conn <- id + 1;
      Hashtbl.replace t.conns id fd;
      id)

let deregister t id = locked t (fun () -> Hashtbl.remove t.conns id)
let live_conns t = locked t (fun () -> Hashtbl.length t.conns)

let send oc resp =
  output_string oc (Json.to_string resp);
  output_char oc '\n';
  flush oc

(* Answer lines until end-of-input, drain, or a connection error.  Every
   parsed line gets exactly one terminal response; transport-level errors
   (peer gone, idle timeout) just end the session. *)
let session t fd =
  let cfg = t.config.dispatcher.Dispatcher.server in
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    if Atomic.get t.draining then ()
    else
      match
        Json.read_line_bounded ~max_bytes:cfg.Server.max_line_bytes ic
      with
      | Json.Eof -> ()
      | Json.Oversized n ->
        send oc
          (Server.error Json.Null "request_too_large"
             (Printf.sprintf "request line of %d bytes exceeds limit %d" n
                cfg.Server.max_line_bytes));
        loop ()
      | Json.Line line ->
        let line = String.trim line in
        if line = "" then loop ()
        else begin
          (match Json.of_string line with
          | Error msg -> send oc (Server.error Json.Null "bad_request" msg)
          | Ok req -> send oc (Dispatcher.handle t.dispatcher req));
          loop ()
        end
  in
  (try loop () with
  | Sys_error _ | End_of_file | Unix.Unix_error (_, _, _) -> ());
  (try flush oc with Sys_error _ | Unix.Unix_error (_, _, _) -> ());
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let reject_over_limit fd =
  let oc = Unix.out_channel_of_descr fd in
  (try
     send oc
       (Server.error Json.Null "overloaded" "connection limit reached")
   with Sys_error _ | Unix.Unix_error (_, _, _) -> ());
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let accept_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else begin
      (match Unix.select [ t.listener ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listener with
        | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _) ->
          ()
        | fd, _peer ->
          if Atomic.get t.draining || live_conns t >= t.config.max_connections
          then reject_over_limit fd
          else begin
            (match t.config.idle_timeout_s with
            | Some s when s > 0. -> (
              try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
              with Unix.Unix_error (_, _, _) -> ())
            | _ -> ());
            let id = register t fd in
            let th =
              Thread.create
                (fun () ->
                  Fun.protect
                    ~finally:(fun () -> deregister t id)
                    (fun () -> session t fd))
                ()
            in
            locked t (fun () -> t.sessions <- th :: t.sessions)
          end)
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

let bind_listener addr =
  match addr with
  | Unix_sock path ->
    (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
    in
    Unix.bind fd (ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let start config addr =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let t =
    { config;
      addr;
      dispatcher = Dispatcher.create config.dispatcher;
      listener = bind_listener addr;
      draining = Atomic.make false;
      mu = Mutex.create ();
      conns = Hashtbl.create 16;
      sessions = [];
      next_conn = 0;
      accept_thread = None
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let drain t = Atomic.set t.draining true

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (try Unix.close t.listener with Unix.Unix_error (_, _, _) -> ());
  (match t.addr with
  | Unix_sock path -> (
    try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Tcp _ -> ());
  (* Wake readers blocked on quiet connections: they see end-of-file and
     fall out of their session loop; writes in flight still complete. *)
  let shutdown_conns mode =
    let fds = locked t (fun () -> Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns []) in
    List.iter
      (fun fd ->
        try Unix.shutdown fd mode with Unix.Unix_error (_, _, _) -> ())
      fds
  in
  shutdown_conns Unix.SHUTDOWN_RECEIVE;
  let deadline = Unix.gettimeofday () +. t.config.drain_grace_s in
  let rec poll () =
    if live_conns t > 0 && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.02;
      poll ()
    end
  in
  poll ();
  if live_conns t > 0 then shutdown_conns Unix.SHUTDOWN_ALL;
  let sessions = locked t (fun () -> t.sessions) in
  List.iter Thread.join sessions;
  Dispatcher.shutdown t.dispatcher;
  0

let stop t =
  drain t;
  wait t

let dispatcher t = t.dispatcher

let serve ?(signals = true) config addr =
  let t = start config addr in
  if signals then begin
    let handler = Sys.Signal_handle (fun _ -> drain t) in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler
  end;
  wait t
