(* Socket transport: accept loop, framed NDJSON sessions, graceful drain.

   Concurrency model: the engine's parallelism lives in the dispatcher's
   domain pool; connections only need to block on IO, so each session is
   a systhread ([threads.posix]) — blocking reads release the runtime
   lock, and a thousand mostly-idle connections cost a stack each, not a
   domain each.  The accept loop is itself a thread that polls a
   [select] with a short timeout so it can notice the draining flag
   without a wakeup pipe.

   Framing is the same NDJSON protocol as the stdio loop, read through
   {!Tgd_serve.Json.read_line_bounded}: oversized lines are consumed and
   answered with [request_too_large], CRLF and trailing partial lines
   are tolerated.  Idle connections are bounded with [SO_RCVTIMEO]; the
   timeout surfaces as a [Sys_error] from the channel read and closes
   the session.

   Graceful drain (SIGINT/SIGTERM or {!drain}): the accept loop exits,
   the listener closes, and every in-flight connection is woken with
   [shutdown SHUTDOWN_RECEIVE] — a blocked reader sees end-of-file, a
   session mid-request finishes writing its response first.  Sessions
   still open after [drain_grace_s] are cut with [SHUTDOWN_ALL].  Only
   then is the worker pool shut down, so no admitted request loses its
   worker. *)

module Json = Tgd_serve.Json
module Server = Tgd_serve.Server

type addr = Unix_sock of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_sock path -> Fmt.pf ppf "unix:%s" path
  | Tcp (host, port) -> Fmt.pf ppf "tcp:%s:%d" host port

type config = {
  dispatcher : Dispatcher.config;
  max_connections : int;
  idle_timeout_s : float option;
  drain_grace_s : float;
}

let default_config =
  { dispatcher = Dispatcher.default_config;
    max_connections = 64;
    idle_timeout_s = None;
    drain_grace_s = 5.0
  }

(* Why a session ended, as the transport saw it.  [EPIPE]/[ECONNRESET]
   and the [SO_RCVTIMEO] idle timeout used to vanish into one generic
   channel-failure bucket; typing them lets the [stats] op answer "are
   clients going away cleanly, getting reset, or rotting idle?" — three
   different operational problems. *)
type session_end =
  | Client_closed  (* orderly end-of-stream from the peer *)
  | Peer_reset     (* EPIPE / ECONNRESET / ESHUTDOWN mid-session *)
  | Idle_timeout   (* SO_RCVTIMEO expired on a quiet connection *)
  | Drained        (* server-initiated drain ended the session *)
  | Session_error of string  (* anything else the channel surfaced *)

let session_end_name = function
  | Client_closed -> "client_closed"
  | Peer_reset -> "peer_reset"
  | Idle_timeout -> "idle_timeout"
  | Drained -> "drained"
  | Session_error _ -> "error"

(* Channel reads wrap the raw errno two ways: [Unix_error] from
   unbuffered paths, [Sys_error strerror-text] once stdlib buffering is
   involved (and EAGAIN from a read timeout as [Sys_blocked_io]).  The
   string match is regrettable but the only handle [Sys_error] offers. *)
let classify_session_exn exn =
  let msg_has msg sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length msg
      && (String.sub msg i n = sub || go (i + 1))
    in
    go 0
  in
  match exn with
  | End_of_file -> Client_closed
  | Sys_blocked_io -> Idle_timeout
  | Unix.Unix_error ((EPIPE | ECONNRESET | ESHUTDOWN | ENOTCONN), _, _) ->
    Peer_reset
  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) -> Idle_timeout
  | Sys_error msg when msg_has msg "Broken pipe" || msg_has msg "Connection reset"
    -> Peer_reset
  | Sys_error msg
    when msg_has msg "Resource temporarily unavailable"
         || msg_has msg "timed out" || msg_has msg "would block" ->
    Idle_timeout
  | Sys_error msg -> Session_error msg
  | Unix.Unix_error (e, _, _) -> Session_error (Unix.error_message e)
  | exn -> Session_error (Printexc.to_string exn)

type session_counters = {
  client_closed : int Atomic.t;
  peer_reset : int Atomic.t;
  idle_timeout : int Atomic.t;
  drained : int Atomic.t;
  errors : int Atomic.t;
}

let fresh_session_counters () =
  { client_closed = Atomic.make 0;
    peer_reset = Atomic.make 0;
    idle_timeout = Atomic.make 0;
    drained = Atomic.make 0;
    errors = Atomic.make 0
  }

let count_session_end c = function
  | Client_closed -> ignore (Atomic.fetch_and_add c.client_closed 1)
  | Peer_reset -> ignore (Atomic.fetch_and_add c.peer_reset 1)
  | Idle_timeout -> ignore (Atomic.fetch_and_add c.idle_timeout 1)
  | Drained -> ignore (Atomic.fetch_and_add c.drained 1)
  | Session_error _ -> ignore (Atomic.fetch_and_add c.errors 1)

let idle_timeouts c = Atomic.get c.idle_timeout
let peer_resets c = Atomic.get c.peer_reset

let session_counters_json c =
  Json.Obj
    [ ("client_closed", Json.Int (Atomic.get c.client_closed));
      ("peer_reset", Json.Int (Atomic.get c.peer_reset));
      ("idle_timeout", Json.Int (Atomic.get c.idle_timeout));
      ("drained", Json.Int (Atomic.get c.drained));
      ("errors", Json.Int (Atomic.get c.errors))
    ]

type t = {
  config : config;
  addr : addr;
  dispatcher : Dispatcher.t;
  listener : Unix.file_descr;
  draining : bool Atomic.t;
  mu : Mutex.t;
  conns : (int, Unix.file_descr) Hashtbl.t;
  session_ends : session_counters;
  mutable sessions : Thread.t list;
  mutable next_conn : int;
  mutable accept_thread : Thread.t option;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let register t fd =
  locked t (fun () ->
      let id = t.next_conn in
      t.next_conn <- id + 1;
      Hashtbl.replace t.conns id fd;
      id)

let deregister t id = locked t (fun () -> Hashtbl.remove t.conns id)
let live_conns t = locked t (fun () -> Hashtbl.length t.conns)

let send oc resp =
  output_string oc (Json.to_string resp);
  output_char oc '\n';
  flush oc

(* Answer lines until end-of-input, drain, or a connection error.  Every
   parsed line gets exactly one terminal response; transport-level
   session ends (peer gone, reset, idle timeout) are classified and
   counted, never answered. *)
let session t conn fd =
  let cfg = t.config.dispatcher.Dispatcher.server in
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    if Atomic.get t.draining then Drained
    else
      match
        Json.read_line_bounded ~max_bytes:cfg.Server.max_line_bytes ic
      with
      | Json.Eof -> if Atomic.get t.draining then Drained else Client_closed
      | Json.Oversized n ->
        send oc
          (Server.error Json.Null "request_too_large"
             (Printf.sprintf "request line of %d bytes exceeds limit %d" n
                cfg.Server.max_line_bytes));
        loop ()
      | Json.Line line ->
        let line = String.trim line in
        if line = "" then loop ()
        else begin
          (match Json.of_string line with
          | Error msg -> send oc (Server.error Json.Null "bad_request" msg)
          | Ok req -> send oc (Dispatcher.handle ~conn t.dispatcher req));
          loop ()
        end
  in
  let reason = try loop () with exn -> classify_session_exn exn in
  count_session_end t.session_ends reason;
  (try flush oc
   with Sys_error _ | Sys_blocked_io | Unix.Unix_error (_, _, _) -> ());
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let reject_over_limit fd =
  let oc = Unix.out_channel_of_descr fd in
  (try
     send oc
       (Server.error Json.Null "overloaded" "connection limit reached")
   with Sys_error _ | Unix.Unix_error (_, _, _) -> ());
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let accept_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else begin
      (match Unix.select [ t.listener ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.listener with
        | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _) ->
          ()
        | fd, _peer ->
          if Atomic.get t.draining || live_conns t >= t.config.max_connections
          then reject_over_limit fd
          else begin
            (match t.config.idle_timeout_s with
            | Some s when s > 0. -> (
              try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
              with Unix.Unix_error (_, _, _) -> ())
            | _ -> ());
            let id = register t fd in
            let th =
              Thread.create
                (fun () ->
                  Fun.protect
                    ~finally:(fun () -> deregister t id)
                    (fun () -> session t id fd))
                ()
            in
            locked t (fun () -> t.sessions <- th :: t.sessions)
          end)
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

let bind_listener addr =
  match addr with
  | Unix_sock path ->
    (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp (host, port) ->
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    let inet =
      try Unix.inet_addr_of_string host
      with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
    in
    Unix.bind fd (ADDR_INET (inet, port));
    Unix.listen fd 64;
    fd

let start config addr =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let t =
    { config;
      addr;
      dispatcher = Dispatcher.create config.dispatcher;
      listener = bind_listener addr;
      draining = Atomic.make false;
      mu = Mutex.create ();
      conns = Hashtbl.create 16;
      session_ends = fresh_session_counters ();
      sessions = [];
      next_conn = 0;
      accept_thread = None
    }
  in
  Dispatcher.add_stats t.dispatcher "sessions" (fun () ->
      session_counters_json t.session_ends);
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let drain t = Atomic.set t.draining true

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (try Unix.close t.listener with Unix.Unix_error (_, _, _) -> ());
  (match t.addr with
  | Unix_sock path -> (
    try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | Tcp _ -> ());
  (* Wake readers blocked on quiet connections: they see end-of-file and
     fall out of their session loop; writes in flight still complete. *)
  let shutdown_conns mode =
    let fds = locked t (fun () -> Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns []) in
    List.iter
      (fun fd ->
        try Unix.shutdown fd mode with Unix.Unix_error (_, _, _) -> ())
      fds
  in
  shutdown_conns Unix.SHUTDOWN_RECEIVE;
  let deadline = Unix.gettimeofday () +. t.config.drain_grace_s in
  let rec poll () =
    if live_conns t > 0 && Unix.gettimeofday () < deadline then begin
      Thread.delay 0.02;
      poll ()
    end
  in
  poll ();
  if live_conns t > 0 then shutdown_conns Unix.SHUTDOWN_ALL;
  let sessions = locked t (fun () -> t.sessions) in
  List.iter Thread.join sessions;
  Dispatcher.shutdown t.dispatcher;
  0

let stop t =
  drain t;
  wait t

let dispatcher t = t.dispatcher
let session_ends t = t.session_ends

let serve ?(signals = true) config addr =
  let t = start config addr in
  if signals then begin
    let handler = Sys.Signal_handle (fun _ -> drain t) in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler
  end;
  wait t
