(* Cost-based admission control.

   Load shedding at the queue edge (PR 5's [--queue-limit]) treats every
   request the same; but the static analyzer can predict, before any chase
   runs, roughly how much a request will cost: a certified-terminating
   rule set does bounded work per entailment, an uncertified one may burn
   its entire budget, and a rewrite sweep's candidate space is a counting
   formula of the schema (Section 9.2).  So admission is graded: cheap
   requests are admitted until the queue is actually full, while requests
   predicted expensive are shed earlier, at [expensive_at], keeping the
   queue's headroom for traffic that will finish quickly.

   Prediction must itself be cheap.  Parsing the rule set and running
   {!Tgd_analysis.Strategy.decide} is linear-ish in the rule text —
   microseconds against the milliseconds-to-seconds of the chase work it
   gates — and a request whose tgds do not parse is admitted as [Cheap]:
   it will fail fast with [bad_request] inside the handler anyway. *)

module Json = Tgd_serve.Json
module Strategy = Tgd_analysis.Strategy

type config = {
  queue_limit : int;
  expensive_at : int;
  candidate_space_cap : float;
}

let default_config ~queue_limit =
  { queue_limit;
    expensive_at = max 1 (queue_limit / 2);
    candidate_space_cap = 1e6
  }

type decision =
  | Admit of Strategy.cost
  | Shed of Strategy.cost

let tgds_of req =
  match Option.bind (Json.member "tgds" req) Json.as_string with
  | None -> None
  | Some src -> (
    match Tgd_parse.Parse.tgds src with Ok tgds -> Some tgds | Error _ -> None)

let chase_cost req =
  match tgds_of req with
  | None -> Strategy.Cheap (* unparsable: fails fast as bad_request *)
  | Some sigma -> Strategy.predicted_cost (Strategy.decide sigma)

(* A rewrite request enumerates a candidate space bounded by the Section
   9.2 counting formulas; past [candidate_space_cap] candidates the sweep
   is expensive no matter what the termination certificate says. *)
let rewrite_cost config req =
  match tgds_of req with
  | None -> Strategy.Cheap
  | Some sigma ->
    let base =
      Strategy.max_cost Strategy.Moderate
        (Strategy.predicted_cost (Strategy.decide sigma))
    in
    let schema = Tgd_core.Rewrite.schema_of sigma in
    let n, m = Tgd_core.Rewrite.class_bounds sigma in
    let bound =
      Tgd_core.Bigint.to_float
        (Tgd_core.Counting.guarded_candidates_bound schema ~n ~m)
    in
    if bound > config.candidate_space_cap then Strategy.Expensive else base

let predict config req =
  match Option.bind (Json.member "op" req) Json.as_string with
  | Some ("classify" | "analyze" | "stats") -> Strategy.Cheap
  | Some ("chase" | "entail") -> chase_cost req
  | Some "rewrite" -> rewrite_cost config req
  | _ -> Strategy.Cheap (* unknown op: fails fast as bad_request *)

let decide config ~queue_depth req =
  let cost = predict config req in
  if queue_depth >= config.queue_limit then Shed cost
  else
    match cost with
    | Strategy.Expensive when queue_depth >= config.expensive_at -> Shed cost
    | _ -> Admit cost
