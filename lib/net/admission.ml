(* Cost-based admission control.

   Load shedding at the queue edge (PR 5's [--queue-limit]) treats every
   request the same; but the static analyzer can predict, before any chase
   runs, roughly how much a request will cost: a certified-terminating
   rule set does bounded work per entailment, an uncertified one may burn
   its entire budget, and a rewrite sweep's candidate space is a counting
   formula of the schema (Section 9.2).  So admission is graded: cheap
   requests are admitted until the queue is actually full, while requests
   predicted expensive are shed earlier, at [expensive_at], keeping the
   queue's headroom for traffic that will finish quickly.

   Prediction must itself be cheap.  Parsing the rule set and running
   {!Tgd_analysis.Strategy.decide} is linear-ish in the rule text —
   microseconds against the milliseconds-to-seconds of the chase work it
   gates — and a request whose tgds do not parse is admitted as [Cheap]:
   it will fail fast with [bad_request] inside the handler anyway. *)

module Json = Tgd_serve.Json
module Strategy = Tgd_analysis.Strategy

type config = {
  queue_limit : int;
  expensive_at : int;
  candidate_space_cap : float;
}

let default_config ~queue_limit =
  { queue_limit;
    expensive_at = max 1 (queue_limit / 2);
    candidate_space_cap = 1e6
  }

type decision =
  | Admit of Strategy.cost
  | Shed of Strategy.cost

let tgds_of req =
  match Option.bind (Json.member "tgds" req) Json.as_string with
  | None -> None
  | Some src -> (
    match Tgd_parse.Parse.tgds src with Ok tgds -> Some tgds | Error _ -> None)

let chase_cost req =
  match tgds_of req with
  | None -> Strategy.Cheap (* unparsable: fails fast as bad_request *)
  | Some sigma -> Strategy.predicted_cost (Strategy.decide sigma)

(* A rewrite request screens a candidate space the handler enumerates
   under its atom caps — NOT the uncapped Section 9.2 bound, which is
   astronomical for any real schema and would shed every rewrite as
   [Expensive].  The estimate below counts what the sweep will actually
   enumerate: bodies are single atoms for a linear target (g2l) or
   atom subsets up to the body cap (fg2g), heads are atom subsets up to
   the head cap, over the exact per-variable atom counts of Section 9.2.
   {!Strategy.sweep_cost} then weights that space by the same per-item
   cost the screening chunker ({!Strategy.screen_chunk}) uses — keeping
   the admission verdict consistent with what the warm pool will pay,
   instead of shedding large certified workloads on raw candidate
   count. *)
let subsets_up_to cap atoms =
  (* Σ_{j=1..cap} C(atoms, j), computed in float — cap is 1 or 2 in
     practice, and the estimate only feeds a three-way cost verdict *)
  let rec go j acc term =
    if j > cap || term <= 0. then acc
    else
      let term = term *. (atoms -. float_of_int (j - 1)) /. float_of_int j in
      go (j + 1) (acc +. term) term
  in
  go 1 0. 1.

let rewrite_cost config req =
  match tgds_of req with
  | None -> Strategy.Cheap
  | Some sigma ->
    let strat = Strategy.decide sigma in
    let schema = Tgd_core.Rewrite.schema_of sigma in
    let n, m = Tgd_core.Rewrite.class_bounds sigma in
    let cap_of key default =
      match Option.bind (Json.member key req) Json.as_int with
      | Some v when v > 0 -> v
      | _ -> default
    in
    let body_cap = cap_of "max_body_atoms" 2 in
    let head_cap = cap_of "max_head_atoms" 2 in
    let body_atoms =
      float_of_int (Tgd_core.Counting.exact_atom_count schema ~vars:n)
    in
    let head_atoms =
      float_of_int (Tgd_core.Counting.exact_atom_count schema ~vars:(n + m))
    in
    let linear_target =
      match Option.bind (Json.member "direction" req) Json.as_string with
      | Some "g2l" -> true
      | _ -> false
    in
    let bodies =
      if linear_target then body_atoms else subsets_up_to body_cap body_atoms
    in
    let heads = subsets_up_to head_cap head_atoms in
    Strategy.sweep_cost strat ~cap:config.candidate_space_cap
      ~candidates:(bodies *. heads)

let rec predict config req =
  match Option.bind (Json.member "op" req) Json.as_string with
  | Some ("classify" | "analyze" | "stats") -> Strategy.Cheap
  | Some ("chase" | "entail") -> chase_cost req
  | Some "rewrite" -> rewrite_cost config req
  | Some "batch" -> (
    (* a batch costs what its dearest member costs — one Expensive
       sub-request makes the whole submission sheddable early *)
    match Option.bind (Json.member "requests" req) Json.as_list with
    | None | Some [] -> Strategy.Cheap
    | Some subs ->
      List.fold_left
        (fun acc sub -> Strategy.max_cost acc (predict config sub))
        Strategy.Cheap subs)
  | _ -> Strategy.Cheap (* unknown op: fails fast as bad_request *)

let decide config ~queue_depth req =
  let cost = predict config req in
  if queue_depth >= config.queue_limit then Shed cost
  else
    match cost with
    | Strategy.Expensive when queue_depth >= config.expensive_at -> Shed cost
    | _ -> Admit cost
