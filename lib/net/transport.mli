(** Socket transport for the serving subsystem.

    Listens on a Unix-domain or TCP socket and speaks the same NDJSON
    protocol as the stdio loop: one request object per line, one
    terminal response per request, on that connection, in order.  Each
    connection is served by a lightweight systhread; engine work runs on
    the dispatcher's shared domain pool.  Connections beyond
    [max_connections] receive one [overloaded] line and are closed;
    idle connections are closed after [idle_timeout_s].

    {b Drain.} {!drain} (or SIGINT/SIGTERM under {!serve}) stops
    accepting, wakes blocked readers, lets in-flight requests finish
    writing their responses, and cuts stragglers after [drain_grace_s];
    only then is the worker pool shut down. *)

type addr = Unix_sock of string | Tcp of string * int

val pp_addr : addr Fmt.t

type config = {
  dispatcher : Dispatcher.config;
  max_connections : int;        (** concurrent connections served *)
  idle_timeout_s : float option;(** close connections quiet this long *)
  drain_grace_s : float;        (** drain patience before cutting *)
}

val default_config : config
(** Dispatcher defaults, 64 connections, no idle timeout, 5 s grace. *)

type t

val start : config -> addr -> t
(** Bind, listen, and serve in background threads.  A pre-existing Unix
    socket path is unlinked first.
    @raise Unix.Unix_error if the address cannot be bound. *)

val drain : t -> unit
(** Begin graceful shutdown; returns immediately. *)

val wait : t -> int
(** Block until the server has fully drained (accept loop joined,
    sessions closed, pool shut down); returns the process exit code
    (0).  Call {!drain} first, or rely on {!serve}'s signal handlers. *)

val stop : t -> int
(** [drain] then [wait]. *)

val dispatcher : t -> Dispatcher.t
(** The server's dispatcher (for stats or embedding). *)

val serve : ?signals:bool -> config -> addr -> int
(** [start], optionally (default) install SIGINT/SIGTERM drain handlers,
    then {!wait}.  The blocking entry point behind
    [tgdtool serve --socket]. *)
