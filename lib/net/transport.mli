(** Socket transport for the serving subsystem.

    Listens on a Unix-domain or TCP socket and speaks the same NDJSON
    protocol as the stdio loop: one request object per line, one
    terminal response per request, on that connection, in order.  Each
    connection is served by a lightweight systhread; engine work runs on
    the dispatcher's shared domain pool.  Connections beyond
    [max_connections] receive one [overloaded] line and are closed;
    idle connections are closed after [idle_timeout_s].

    {b Drain.} {!drain} (or SIGINT/SIGTERM under {!serve}) stops
    accepting, wakes blocked readers, lets in-flight requests finish
    writing their responses, and cuts stragglers after [drain_grace_s];
    only then is the worker pool shut down. *)

type addr = Unix_sock of string | Tcp of string * int

val pp_addr : addr Fmt.t

type config = {
  dispatcher : Dispatcher.config;
  max_connections : int;        (** concurrent connections served *)
  idle_timeout_s : float option;(** close connections quiet this long *)
  drain_grace_s : float;        (** drain patience before cutting *)
}

val default_config : config
(** Dispatcher defaults, 64 connections, no idle timeout, 5 s grace. *)

type t

val start : config -> addr -> t
(** Bind, listen, and serve in background threads.  A pre-existing Unix
    socket path is unlinked first.
    @raise Unix.Unix_error if the address cannot be bound. *)

val drain : t -> unit
(** Begin graceful shutdown; returns immediately. *)

val wait : t -> int
(** Block until the server has fully drained (accept loop joined,
    sessions closed, pool shut down); returns the process exit code
    (0).  Call {!drain} first, or rely on {!serve}'s signal handlers. *)

val stop : t -> int
(** [drain] then [wait]. *)

val dispatcher : t -> Dispatcher.t
(** The server's dispatcher (for stats or embedding). *)

(** {2 Session-end classification}

    Why sessions ended, as the transport saw them.  [EPIPE]/[ECONNRESET]
    map to {!Peer_reset}, the [SO_RCVTIMEO] idle timeout to
    {!Idle_timeout}, orderly end-of-stream to {!Client_closed}, a
    server-initiated drain to {!Drained}; anything else keeps its
    message in {!Session_error}.  Counted per class and surfaced under
    ["sessions"] in the dispatcher's [stats] op. *)

type session_end =
  | Client_closed
  | Peer_reset
  | Idle_timeout
  | Drained
  | Session_error of string

val session_end_name : session_end -> string
val classify_session_exn : exn -> session_end

type session_counters

val fresh_session_counters : unit -> session_counters
val count_session_end : session_counters -> session_end -> unit
val session_ends : t -> session_counters
val session_counters_json : session_counters -> Tgd_serve.Json.t

val idle_timeouts : session_counters -> int
val peer_resets : session_counters -> int

val serve : ?signals:bool -> config -> addr -> int
(** [start], optionally (default) install SIGINT/SIGTERM drain handlers,
    then {!wait}.  The blocking entry point behind
    [tgdtool serve --socket]. *)
