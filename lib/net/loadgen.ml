(* Closed-loop load generator for the socket server.

   K client threads each open one connection and issue [requests]
   requests back-to-back: send a line, block for the response line,
   record the latency.  Closed-loop means offered load adapts to the
   server — the generator measures sustained throughput and latency
   under full pipelines rather than building an unbounded backlog.

   Every response line is checked for protocol shape (parses as JSON,
   echoes an [id], has an ["ok"] bool); anything else counts as
   [malformed] — the CI smoke job fails on a single one.  [ok = false]
   responses (overloaded, fault, …) are counted as [errors], not
   malformed: shedding under load is the protocol working.

   Fault tolerance is opt-in ([~fault_tolerant:true]): a transport
   failure (connection refused/reset, EOF instead of a response) makes
   the client reconnect and resend the request it was waiting on,
   counting a [reconnect] rather than a failure — the fleet drill's
   client-side half, where shard kills sever router sessions but every
   request must still complete.  Reconnects are deliberately a separate
   counter from [errors]: a typed error response is the server refusing
   work, a reconnect is the transport hiccuping, and conflating them
   would let a crash-looping server pass a shed-tolerant check. *)

module Json = Tgd_serve.Json

type result = {
  connections : int;
  requests : int;  (** total sent across all connections *)
  ok : int;
  errors : int;    (** well-formed [ok = false] responses *)
  malformed : int; (** unparsable or protocol-shape-violating lines *)
  reconnects : int; (** transport-level reconnect+resend recoveries *)
  elapsed_s : float;
  latencies_s : float array;  (** one entry per request, unordered *)
}

let percentile lat p =
  let n = Array.length lat in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy lat in
    Array.sort compare sorted;
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank)
    and hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let frac = rank -. float_of_int lo in
      ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

(* Retry the connect briefly: CI starts the server and the clients
   concurrently, and the socket file appears a beat after exec. *)
let connect ?(attempts = 50) addr =
  let sockaddr, domain =
    match addr with
    | Transport.Unix_sock path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Transport.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).h_addr_list.(0)
      in
      (Unix.ADDR_INET (inet, port), Unix.PF_INET)
  in
  let rec go k =
    let fd = Unix.socket domain SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception Unix.Unix_error (_, _, _) when k < attempts ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Thread.delay 0.1;
      go (k + 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      raise e
  in
  go 0

type tally = {
  mutable t_ok : int;
  mutable t_errors : int;
  mutable t_malformed : int;
  mutable t_reconnects : int;
  mutable t_lat : float list;
}

let well_formed resp =
  match resp with
  | Json.Obj fields ->
    List.mem_assoc "id" fields
    && (match List.assoc_opt "ok" fields with
       | Some (Json.Bool _) -> true
       | _ -> false)
  | _ -> false

(* Per-request reconnect budget in fault-tolerant mode: enough to ride
   out a shard kill plus its respawn backoff, small enough that a truly
   dead server still fails the run promptly. *)
let reconnect_budget = 8

let record tally t0 line =
  tally.t_lat <- (Unix.gettimeofday () -. t0) :: tally.t_lat;
  match Json.of_string line with
  | Error _ -> tally.t_malformed <- tally.t_malformed + 1
  | Ok resp when not (well_formed resp) ->
    tally.t_malformed <- tally.t_malformed + 1
  | Ok resp -> (
    match Json.member "ok" resp with
    | Some (Json.Bool true) -> tally.t_ok <- tally.t_ok + 1
    | _ -> tally.t_errors <- tally.t_errors + 1)

let client ?(fault_tolerant = false) addr ~requests workload tid =
  let tally =
    { t_ok = 0; t_errors = 0; t_malformed = 0; t_reconnects = 0; t_lat = [] }
  in
  let conn = ref None in
  let get_conn () =
    match !conn with
    | Some c -> c
    | None ->
      let fd = connect addr in
      let c = (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd) in
      conn := Some c;
      c
  in
  let drop_conn () =
    match !conn with
    | None -> ()
    | Some (fd, _, _) ->
      conn := None;
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
  in
  (* The legacy (non-tolerant) path preserves its exact accounting: EOF
     mid-response counts one malformed and moves on; a send-side
     transport error counts one malformed and aborts the connection. *)
  let exception Abort in
  (* one request: send, block for the line; fault-tolerant mode
     reconnects and resends on any transport failure *)
  let rec issue req t0 k =
    match
      let _, ic, oc = get_conn () in
      output_string oc (Json.to_string req);
      output_char oc '\n';
      flush oc;
      input_line ic
    with
    | line -> record tally t0 line
    | exception End_of_file when not fault_tolerant ->
      tally.t_malformed <- tally.t_malformed + 1
    | exception (End_of_file | Sys_error _ | Unix.Unix_error (_, _, _)) ->
      drop_conn ();
      if not fault_tolerant then begin
        tally.t_malformed <- tally.t_malformed + 1;
        raise Abort
      end
      else if k < reconnect_budget then begin
        tally.t_reconnects <- tally.t_reconnects + 1;
        Thread.delay (0.05 *. float_of_int (k + 1));
        issue req t0 (k + 1)
      end
      else tally.t_malformed <- tally.t_malformed + 1
  in
  (try
     for i = 0 to requests - 1 do
       let req = workload ((tid * requests) + i) in
       issue req (Unix.gettimeofday ()) 0
     done
   with
  | Abort -> ()
  | Sys_error _ | Unix.Unix_error (_, _, _) ->
    tally.t_malformed <- tally.t_malformed + 1);
  drop_conn ();
  tally

(* [Thread.join] discards the closure's result, so each client parks
   its tally in a per-thread cell for the joiner to collect. *)
let run ?fault_tolerant addr ~connections ~requests workload =
  let t0 = Unix.gettimeofday () in
  let cells = Array.make (max 1 connections) None in
  let threads =
    List.init connections (fun tid ->
        Thread.create
          (fun () ->
            cells.(tid) <-
              Some (client ?fault_tolerant addr ~requests workload tid))
          ())
  in
  List.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let ok = ref 0
  and errors = ref 0
  and malformed = ref 0
  and reconnects = ref 0
  and lat = ref [] in
  Array.iter
    (function
      | None -> incr malformed (* thread died before reporting *)
      | Some t ->
        ok := !ok + t.t_ok;
        errors := !errors + t.t_errors;
        malformed := !malformed + t.t_malformed;
        reconnects := !reconnects + t.t_reconnects;
        lat := List.rev_append t.t_lat !lat)
    cells;
  { connections;
    requests = connections * requests;
    ok = !ok;
    errors = !errors;
    malformed = !malformed;
    reconnects = !reconnects;
    elapsed_s;
    latencies_s = Array.of_list !lat
  }

let throughput r =
  if r.elapsed_s <= 0. then 0. else float_of_int r.ok /. r.elapsed_s

(* Workloads.  The entailment chain is the paper's bread-and-butter
   shape: sigma closes E-paths into S then T, and goal [i] asks whether
   a length-k E-chain forces T at its end — k varies with [distinct] so
   a warm cache sees repeats while a cold one keeps computing. *)
let chain_sigma = "E(x,y) -> S(y). S(x) -> T(x)."

let chain_goal k =
  let buf = Buffer.create 64 in
  for j = 0 to k - 1 do
    if j > 0 then Buffer.add_string buf ", ";
    Buffer.add_string buf (Printf.sprintf "E(x%d, x%d)" j (j + 1))
  done;
  Buffer.add_string buf (Printf.sprintf " -> T(x%d)." k);
  Buffer.contents buf

let entail_workload ?(distinct = 8) () i =
  let k = 2 + (i mod max 1 distinct) in
  Json.Obj
    [ ("id", Json.Int i);
      ("op", Json.String "entail");
      ("tgds", Json.String chain_sigma);
      ("goal", Json.String (chain_goal k))
    ]

let classify_workload ?(distinct = 8) () i =
  let k = 1 + (i mod max 1 distinct) in
  let tgds =
    Printf.sprintf "E(x,y) -> S(y). S(x) -> T(x). %s" (chain_goal k)
  in
  Json.Obj
    [ ("id", Json.Int i);
      ("op", Json.String "classify");
      ("tgds", Json.String tgds)
    ]

let mixed_workload ?(distinct = 8) () i =
  if i mod 3 = 0 then classify_workload ~distinct () i
  else entail_workload ~distinct () i

(* [ontologies] renamed copies of the entailment chain: request [i] runs
   against ontology [i mod ontologies], so the stream spreads over
   [ontologies] distinct rule sets.  Single-sigma workloads all hash to
   one shard under the fleet's digest routing (cache affinity working as
   designed) — this is the workload that actually exercises every shard,
   and the one the fleet drill and bench use. *)
let multi_sigma o =
  Printf.sprintf "E%d(x,y) -> S%d(y). S%d(x) -> T%d(x)." o o o o

let multi_goal o k =
  let buf = Buffer.create 64 in
  for j = 0 to k - 1 do
    if j > 0 then Buffer.add_string buf ", ";
    Buffer.add_string buf (Printf.sprintf "E%d(x%d, x%d)" o j (j + 1))
  done;
  Buffer.add_string buf (Printf.sprintf " -> T%d(x%d)." o k);
  Buffer.contents buf

let multi_workload ?(ontologies = 8) ?(distinct = 4) () i =
  let o = i mod max 1 ontologies in
  let k = 2 + (i mod max 1 distinct) in
  Json.Obj
    [ ("id", Json.Int i);
      ("op", Json.String "entail");
      ("tgds", Json.String (multi_sigma o));
      ("goal", Json.String (multi_goal o k))
    ]

(* Rewrite sweeps against a real (typically generated, large) ontology:
   every request screens the same candidate space, so the run checks the
   admission path end-to-end — a spurious [overloaded] shed on a
   certified fixture shows up as [errors] > 0.  Single-atom heads keep
   the space at its Section 9.2 floor; the default sigma is a small
   layered ontology so the op works without a fixture on hand. *)
let default_rewrite_sigma =
  "R0L0(x,y) -> R0L1(y,x). R0L0(x,y) -> P0L0(x). \
   R0L0(x,y), P0L0(x) -> T0L0(x). \
   R1L0(x,y) -> R1L1(y,x). R1L0(x,y) -> P1L0(x). \
   R1L0(x,y), P1L0(x) -> T1L0(x)."

let rewrite_workload ?tgds () i =
  let src = Option.value tgds ~default:default_rewrite_sigma in
  Json.Obj
    [ ("id", Json.Int i);
      ("op", Json.String "rewrite");
      ("direction", Json.String "g2l");
      ("tgds", Json.String src);
      ("max_head_atoms", Json.Int 1)
    ]

(* Batches of [batch] mixed sub-requests per submission — drives the
   dispatcher's chunked batch path instead of one-item pool batches. *)
let batch_workload ?(distinct = 8) ?(batch = 8) () i =
  let subs =
    List.init (max 1 batch) (fun j ->
        mixed_workload ~distinct () ((i * max 1 batch) + j))
  in
  Json.Obj
    [ ("id", Json.Int i);
      ("op", Json.String "batch");
      ("requests", Json.List subs)
    ]

let workload_of_name ?distinct ?tgds ?batch ?ontologies name =
  match name with
  | "entail" -> Some (entail_workload ?distinct ())
  | "classify" -> Some (classify_workload ?distinct ())
  | "mixed" -> Some (mixed_workload ?distinct ())
  | "rewrite" -> Some (rewrite_workload ?tgds ())
  | "batch" -> Some (batch_workload ?distinct ?batch ())
  | "multi" -> Some (multi_workload ?ontologies ?distinct ())
  | _ -> None

let result_json r =
  Json.Obj
    [ ("connections", Json.Int r.connections);
      ("requests", Json.Int r.requests);
      ("ok", Json.Int r.ok);
      ("errors", Json.Int r.errors);
      ("malformed", Json.Int r.malformed);
      ("reconnects", Json.Int r.reconnects);
      ("elapsed_s", Json.Float r.elapsed_s);
      ("req_per_s", Json.Float (throughput r));
      ("p50_ms", Json.Float (1000. *. percentile r.latencies_s 50.));
      ("p99_ms", Json.Float (1000. *. percentile r.latencies_s 99.))
    ]
