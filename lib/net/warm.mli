(** Server-scope warm state: the entailment memo and chase-result cache,
    shared across every connection of a server, under one byte ceiling.

    The underlying tables are process-wide; a server "owns" them in the
    sense that it installs the ceiling at startup and reports their
    counters.  Repeated classify/entail/rewrite requests from different
    connections hit the same warm entries — the whole point of serving
    from one process. *)

val configure : cache_bytes:int option -> unit
(** Install (or with [None] remove) an overall byte ceiling with LRU
    eviction: half to the entailment caches, half to the chase-result
    cache.  Changing the ceiling clears the tables (see
    {!Tgd_engine.Memo.set_limit}). *)

val reset : unit -> unit
(** Drop all warm entries (counters on the fresh tables restart at 0). *)

val counters : unit -> Tgd_engine.Memo.counters
(** Combined hit/miss/entry/byte/eviction counters across the tables. *)

val counters_json : Tgd_engine.Memo.counters -> Tgd_serve.Json.t
(** The counters as a response fragment:
    [{"hits": …, "misses": …, "entries": …, "approx_bytes": …,
    "evictions": …}]. *)
