(** Cost-based admission control for the serving subsystem.

    Every request is assigned a predicted cost class before any engine
    work runs, from static evidence only: the op (classify/analyze never
    chase), the rule set's termination certificate
    ({!Tgd_analysis.Strategy.predicted_cost}), and — for rewrite — the
    Section 9.2 candidate-space bound.  Requests predicted [Expensive]
    are shed once the queue reaches [expensive_at] (half the limit by
    default); everything is shed at [queue_limit].  Shedding produces a
    typed [overloaded] response upstream, never a silent drop. *)

type config = {
  queue_limit : int;        (** absolute depth at which everything sheds *)
  expensive_at : int;       (** depth at which [Expensive] requests shed *)
  candidate_space_cap : float;
      (** rewrite candidate-space bound (Section 9.2 counting formula)
          above which the request is classed [Expensive] regardless of
          certificate *)
}

val default_config : queue_limit:int -> config
(** [expensive_at = queue_limit / 2], candidate-space cap [1e6]. *)

val predict : config -> Tgd_serve.Json.t -> Tgd_analysis.Strategy.cost
(** Static cost prediction; total — malformed requests predict [Cheap]
    (they fail fast as [bad_request] inside the handler). *)

type decision =
  | Admit of Tgd_analysis.Strategy.cost
  | Shed of Tgd_analysis.Strategy.cost

val decide : config -> queue_depth:int -> Tgd_serve.Json.t -> decision
