(** Per-client fair queueing for the dispatcher's waiting room.

    Replaces the implicit global FIFO in front of the worker pool with
    per-connection queues and a round-robin grant rotation: a single
    connection pipelining requests back-to-back cannot starve the
    others — with K connections waiting, each is granted ~1/K of the
    [capacity] slots.  Order within one connection stays FIFO, matching
    the protocol's in-order-per-connection response contract.

    Threads park in {!acquire} until granted; {!release} frees a slot
    and wakes the next connection in rotation.  All operations are
    thread-safe. *)

type t

val create : capacity:int -> t
(** At most [capacity] grants outstanding at once.
    @raise Invalid_argument when [capacity < 1]. *)

val capacity : t -> int

val acquire : t -> conn:int -> unit
(** Block until a slot is granted to [conn]'s queue, round-robin across
    connections with waiters. *)

val release : t -> unit
(** Free a slot and grant the next waiter in rotation. *)

val with_slot : t -> conn:int -> (unit -> 'a) -> 'a
(** [acquire], run, always [release] (also on exceptions). *)

val waiting : t -> int
(** Requests currently parked across all connections. *)

val in_flight : t -> int
(** Slots currently granted. *)

val depths : t -> (int * int) list
(** Per-connection queue depth (conn id, waiters), connections with an
    empty queue omitted, sorted by conn id. *)
