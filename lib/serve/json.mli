(** Minimal JSON codec for the serve protocol.

    The container ships no external JSON library, and the line-delimited
    protocol of {!Server} needs only scalars, arrays and objects — so the
    codec is owned here: a strict recursive-descent parser (string escapes
    incl. [\uXXXX] and surrogate pairs; no trailing garbage) and a printer
    emitting compact one-line documents, suitable for NDJSON framing.

    Printer notes: non-finite floats become [null] (JSON has no [NaN]);
    object fields print in construction order; strings are escaped
    minimally ([\n], [\t], quotes, backslash, other control characters as
    [\u00XX]) and other bytes pass through verbatim, so UTF-8 payloads
    survive a round trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering (no newlines for any input). *)

val of_string : string -> (t, string) result
(** Parse exactly one JSON value (plus surrounding whitespace).  [Error]
    carries a message with a byte offset.  Integer literals outside the
    native [int] range fall back to [Float]. *)

type line =
  | Line of string      (** one logical line, CR/LF framing stripped *)
  | Oversized of int    (** line over the cap; payload discarded, total
                            bytes consumed reported *)
  | Eof

val default_max_line_bytes : int
(** 1 MiB. *)

val read_line_bounded : ?max_bytes:int -> in_channel -> line
(** Bounded NDJSON framing: like [input_line] but CRLF-tolerant (one
    trailing ['\r'] is stripped), a trailing partial line at EOF is still
    returned as a [Line] (the next call reports [Eof]), and a line longer
    than [max_bytes] is consumed to its newline {e without} being buffered
    — [Oversized] carries the total length, so the caller can answer with
    a typed [request_too_large] error and keep the stream framed. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val as_string : t -> string option
val as_bool : t -> bool option

val as_int : t -> int option
(** [Int], or [Float] with an exact integral value. *)

val as_float : t -> float option
(** [Float] or widened [Int]. *)

val as_list : t -> t list option
