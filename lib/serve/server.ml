open Tgd_syntax
open Tgd_instance
module Budget = Tgd_engine.Budget
module Chaos = Tgd_engine.Chaos
module Memo = Tgd_engine.Memo
module Chase = Tgd_chase.Chase
module Entailment = Tgd_chase.Entailment
module Rewrite = Tgd_core.Rewrite
module Candidates = Tgd_core.Candidates
module Parse = Tgd_parse.Parse

type config = {
  rounds : int;
  max_facts : int;
  timeout_s : float option;
  retries : int;
  backoff_base_s : float;
  queue_limit : int;
  max_line_bytes : int;
  checkpoint_dir : string option;
  checkpoint_every : int;
}

let default_config =
  { rounds = 64;
    max_facts = 20_000;
    timeout_s = None;
    retries = 3;
    backoff_base_s = 0.01;
    queue_limit = 64;
    max_line_bytes = Json.default_max_line_bytes;
    checkpoint_dir = None;
    checkpoint_every = 8
  }

(* A request that failed for a reason retrying can fix: an injected fault
   (directly, or surfaced as a typed [Fault] truncation by an engine run).
   Deterministic failures — bad input, genuine budget exhaustion — must
   never retry: they would fail identically [retries] more times. *)
exception Transient of string

exception Bad_request of string

(* ---- request plumbing -------------------------------------------- *)

let get field req =
  match Json.member field req with
  | Some v -> v
  | None -> raise (Bad_request (Printf.sprintf "missing %S" field))

let get_string field req =
  match Json.as_string (get field req) with
  | Some s -> s
  | None -> raise (Bad_request (Printf.sprintf "%S must be a string" field))

let get_int_opt field req =
  match Json.member field req with
  | None -> None
  | Some v -> (
    match Json.as_int v with
    | Some i -> Some i
    | None -> raise (Bad_request (Printf.sprintf "%S must be an integer" field)))

let parse_tgds src =
  match Parse.tgds src with
  | Ok tgds -> tgds
  | Error e -> raise (Bad_request (Fmt.str "tgds: %a" Parse.pp_error e))

let budget_of config req =
  let rounds = Option.value (get_int_opt "rounds" req) ~default:config.rounds in
  let facts =
    Option.value (get_int_opt "max_facts" req) ~default:config.max_facts
  in
  Budget.make ~rounds ~facts ?timeout_s:config.timeout_s ()

let tgd_string t = Fmt.str "%a" Tgd.pp t

(* ---- operations --------------------------------------------------- *)

let classify_op req =
  let sigma = parse_tgds (get_string "tgds" req) in
  let n, m = Rewrite.class_bounds sigma in
  Json.Obj
    [ ( "tgds",
        Json.List
          (List.map
             (fun t ->
               Json.Obj
                 [ ("tgd", Json.String (tgd_string t));
                   ( "classes",
                     Json.List
                       (List.map
                          (fun c ->
                            Json.String (Fmt.str "%a" Tgd_class.pp_cls c))
                          (Tgd_class.classify t)) );
                   ("n", Json.Int (Tgd.n_universal t));
                   ("m", Json.Int (Tgd.m_existential t))
                 ])
             sigma) );
      ("n", Json.Int n);
      ("m", Json.Int m)
    ]

let instance_of_request ~sigma req =
  let src = get_string "facts" req in
  match Parse.program src with
  | Error e -> raise (Bad_request (Fmt.str "facts: %a" Parse.pp_error e))
  | Ok p ->
    let schema = Schema.union (Rewrite.schema_of sigma) p.Parse.schema in
    Instance.of_facts schema p.Parse.facts

let chase_op config req =
  let tgds_src = get_string "tgds" req in
  let sigma = parse_tgds tgds_src in
  let db = instance_of_request ~sigma req in
  let budget = budget_of config req in
  let r =
    match config.checkpoint_dir with
    | None -> Chase.restricted ~budget sigma db
    | Some dir ->
      (* Durable mid-request progress: the chain is keyed on the request
         content, so the retry ladder (and a restarted server receiving
         the same request again) resumes the chase instead of refiring it
         from the input.  The chain is kept only across transient-fault
         retries; any terminal response removes it. *)
      let name =
        "req-"
        ^ Digest.to_hex
            (Digest.string (tgds_src ^ "\x00" ^ get_string "facts" req))
      in
      let log = Chase.log_config ~dir ~name () in
      let resume =
        match Chase.load_log log with
        | Ok v ->
          Option.iter
            (fun r ->
              List.iter
                (fun w -> Fmt.epr "serve: checkpoint warning: %s@." w)
                r.Chase.rz_warnings)
            v;
          v
        | Error _ ->
          (* self-heal: a request checkpoint with no verifiable base is
             recoverable state, not client data — drop it and start over *)
          Tgd_engine.Delta_log.remove log;
          None
      in
      let r =
        Chase.restricted_resumable ~budget ~every:config.checkpoint_every
          ~log ?resume sigma db
      in
      (match r.Chase.outcome with
      | Chase.Truncated (Budget.Fault _) -> ()
      | Chase.Truncated _ ->
        (* deterministic exhaustion: the truncated response is terminal,
           so the chain must not leak onto the next identical request *)
        Tgd_engine.Delta_log.remove log
      | Chase.Terminated -> ());
      r
  in
  (match r.Chase.outcome with
  | Chase.Truncated (Budget.Fault site) -> raise (Transient site)
  | _ -> ());
  let outcome, reason =
    match r.Chase.outcome with
    | Chase.Terminated -> ("terminated", None)
    | Chase.Truncated reason ->
      ("truncated", Some (Budget.exhaustion_to_string reason))
  in
  Json.Obj
    (List.concat
       [ [ ("outcome", Json.String outcome) ];
         (match reason with
         | Some r -> [ ("reason", Json.String r) ]
         | None -> []);
         [ ("rounds", Json.Int r.Chase.rounds);
           ("fired", Json.Int r.Chase.fired);
           ("fact_count", Json.Int (Instance.fact_count r.Chase.instance));
           ( "facts",
             Json.List
               (Instance.fact_list r.Chase.instance
               |> List.map Fact.to_string
               |> List.sort String.compare
               |> List.map (fun f -> Json.String f)) )
         ]
       ])

let entail_op config req =
  let sigma = parse_tgds (get_string "tgds" req) in
  let goal =
    let src = get_string "goal" req in
    try Parse.tgd_exn src
    with Failure msg -> raise (Bad_request ("goal: " ^ msg))
  in
  let budget = budget_of config req in
  let answer = Entailment.entails ~budget sigma goal in
  Json.Obj
    [ ( "answer",
        Json.String
          (match answer with
          | Entailment.Proved -> "proved"
          | Entailment.Disproved -> "disproved"
          | Entailment.Unknown -> "unknown") )
    ]

let rewrite_op config req =
  let sigma = parse_tgds (get_string "tgds" req) in
  let direction = get_string "direction" req in
  let caps =
    Candidates.
      { max_body_atoms =
          Option.value (get_int_opt "max_body_atoms" req) ~default:2;
        max_head_atoms =
          Option.value (get_int_opt "max_head_atoms" req) ~default:2;
        keep_tautologies = false
      }
  in
  let rconfig =
    { Rewrite.default_config with
      caps;
      budget = budget_of config req
    }
  in
  let run =
    match direction with
    | "g2l" -> Rewrite.g_to_l
    | "fg2g" -> Rewrite.fg_to_g
    | d ->
      raise
        (Bad_request
           (Printf.sprintf "unknown direction %S (expected g2l or fg2g)" d))
  in
  let outcome =
    try run ~config:rconfig sigma
    with Invalid_argument msg -> raise (Bad_request msg)
  in
  (match outcome with
  | Budget.Truncated { reason = Budget.Fault site; _ } ->
    raise (Transient site)
  | _ -> ());
  let report_fields (report : Rewrite.report) =
    [ ("candidates_enumerated", Json.Int report.Rewrite.candidates_enumerated);
      ("candidates_entailed", Json.Int report.Rewrite.candidates_entailed)
    ]
  in
  let outcome_fields (o : Rewrite.outcome) =
    match o with
    | Rewrite.Rewritable sigma' ->
      [ ("outcome", Json.String "rewritable");
        ("tgds", Json.List (List.map (fun t -> Json.String (tgd_string t)) sigma'))
      ]
    | Rewrite.Not_rewritable { complete; unknown_candidates } ->
      [ ("outcome", Json.String "not_rewritable");
        ("complete", Json.Bool complete);
        ("unknown_candidates", Json.Int unknown_candidates)
      ]
    | Rewrite.Unknown why ->
      [ ("outcome", Json.String "unknown"); ("reason", Json.String why) ]
  in
  match outcome with
  | Budget.Complete report ->
    Json.Obj (outcome_fields report.Rewrite.outcome @ report_fields report)
  | Budget.Truncated { reason; partial; _ } ->
    Json.Obj
      (("truncated", Json.String (Budget.exhaustion_to_string reason))
      :: outcome_fields partial.Rewrite.outcome
      @ report_fields partial)

(* Analysis is pure in the rule set, and the deep lattice notions may
   chase the critical instance — worth caching.  Keyed by the canonical
   ontology digest ([Memo.sigma_key]), so syntactic noise (whitespace,
   comments) in the request still hits. *)
let analyze_memo : string Memo.t = Memo.create ~name:"serve-analyze" ()

let analyze_op req =
  let sigma = parse_tgds (get_string "tgds" req) in
  let json =
    Memo.find_or_add analyze_memo (Memo.sigma_key sigma) (fun () ->
        Tgd_analysis.Analyze.to_json (Tgd_analysis.Analyze.run sigma))
  in
  match Json.of_string json with
  | Ok j -> j
  | Error msg -> failwith ("analyze report did not round-trip: " ^ msg)

let dispatch config op req =
  match op with
  | "classify" -> classify_op req
  | "chase" -> chase_op config req
  | "entail" -> entail_op config req
  | "rewrite" -> rewrite_op config req
  | "analyze" -> analyze_op req
  | op -> raise (Bad_request (Printf.sprintf "unknown op %S" op))

(* ---- responses ----------------------------------------------------- *)

let ok id result =
  Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ]

let error id code message =
  Json.Obj
    [ ("id", id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj
          [ ("code", Json.String code); ("message", Json.String message) ] )
    ]

let request_id req = Option.value (Json.member "id" req) ~default:Json.Null

let handle config req =
  let id = request_id req in
  match Json.member "op" req with
  | None -> error id "bad_request" "missing \"op\""
  | Some op_j -> (
    match Json.as_string op_j with
    | None -> error id "bad_request" "\"op\" must be a string"
    | Some op ->
      (* Retry ladder: transient faults (the [serve.request] chaos site, or
         a typed [Fault] truncation out of an engine run) get up to
         [retries] fresh attempts with exponential backoff; everything
         else is deterministic and answers immediately.  Every path ends
         in a terminal response — the loop cannot raise. *)
      let rec attempt k =
        match
          Chaos.step ~site:"serve.request";
          dispatch config op req
        with
        | result -> ok id result
        | exception Bad_request msg -> error id "bad_request" msg
        | exception Chaos.Injected site -> retry k site
        | exception Transient site -> retry k site
        | exception e -> error id "internal" (Printexc.to_string e)
      and retry k site =
        if k >= config.retries then
          error id "fault"
            (Printf.sprintf "injected fault at %s after %d attempts" site
               (k + 1))
        else begin
          Unix.sleepf (config.backoff_base_s *. (2. ** float_of_int k));
          attempt (k + 1)
        end
      in
      attempt 0)

(* ---- the serve loop ------------------------------------------------ *)

let serve ?(config = default_config) ?(signals = true) ic oc =
  let draining = Atomic.make false in
  if signals then begin
    let handler = Sys.Signal_handle (fun _ -> Atomic.set draining true) in
    Sys.set_signal Sys.sigterm handler;
    Sys.set_signal Sys.sigint handler
  end;
  let qmutex = Mutex.create () in
  let queue : string Queue.t = Queue.create () in
  let eof = Atomic.make false in
  let out_mutex = Mutex.create () in
  let respond json =
    Mutex.lock out_mutex;
    output_string oc (Json.to_string json);
    output_char oc '\n';
    flush oc;
    Mutex.unlock out_mutex
  in
  let line_id line =
    match Json.of_string line with Ok req -> request_id req | Error _ -> Json.Null
  in
  (* Reader domain: stdin is a blocking stream, so a dedicated domain
     feeds the queue while the main domain works.  Load shedding happens
     at the enqueue edge — a request over the depth limit is answered
     [overloaded] immediately, never silently dropped — and requests
     arriving after a drain signal are answered [shutting_down]. *)
  let reader =
    Domain.spawn (fun () ->
        let rec go () =
          match Json.read_line_bounded ~max_bytes:config.max_line_bytes ic with
          | Json.Eof -> Atomic.set eof true
          | Json.Oversized n ->
            (* the id was discarded with the payload; still answer, so the
               client sees exactly one terminal response for the line *)
            respond
              (error Json.Null "request_too_large"
                 (Printf.sprintf
                    "request line of %d bytes exceeds the %d byte limit" n
                    config.max_line_bytes));
            go ()
          | Json.Line line ->
            if String.trim line = "" then go ()
            else if Atomic.get draining then begin
              respond
                (error (line_id line) "shutting_down"
                   "server is draining; request not accepted");
              go ()
            end
            else begin
              let shed =
                Mutex.lock qmutex;
                let shed = Queue.length queue >= config.queue_limit in
                if not shed then Queue.push line queue;
                Mutex.unlock qmutex;
                shed
              in
              if shed then
                respond
                  (error (line_id line) "overloaded"
                     (Printf.sprintf "request queue is full (limit %d)"
                        config.queue_limit));
              go ()
            end
          | exception Sys_error _ -> Atomic.set eof true
        in
        go ())
  in
  let rec main () =
    let item =
      Mutex.lock qmutex;
      let it = if Queue.is_empty queue then None else Some (Queue.pop queue) in
      Mutex.unlock qmutex;
      it
    in
    match item with
    | Some line ->
      (match Json.of_string line with
      | Ok req -> respond (handle config req)
      | Error msg ->
        respond (error Json.Null "bad_request" ("invalid JSON: " ^ msg)));
      main ()
    | None ->
      (* drain contract: exit only once the queue is empty, so every
         request accepted before EOF/SIGTERM got its terminal response *)
      if Atomic.get eof || Atomic.get draining then 0
      else begin
        (* the stdlib has no timed condition wait; a coarse sleep-poll on
           the idle path costs nothing measurable at request granularity *)
        Unix.sleepf 0.02;
        main ()
      end
  in
  let code = main () in
  (* after EOF the reader has returned and can be reaped; after a drain
     signal it may still be blocked on [input_line] — leave it to die with
     the process rather than hang the shutdown on a read *)
  if Atomic.get eof then Domain.join reader;
  code
