(* Minimal JSON codec for the serve protocol.  The toolchain deliberately
   has no external JSON dependency, and the protocol needs only scalars,
   arrays and objects — a few hundred lines of recursive descent is the
   whole cost of owning the format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    if not (Float.is_finite f) then Buffer.add_string b "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else Buffer.add_string b (Printf.sprintf "%.12g" f)
  | String s -> add_escaped b s
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        add b x)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        add_escaped b k;
        Buffer.add_char b ':';
        add b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Err of string * int

let of_string src =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Err (msg, !pos)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && src.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let len = String.length lit in
    if !pos + len <= n && String.sub src !pos len = lit then begin
      pos := !pos + len;
      v
    end
    else fail "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match src.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "invalid \\u escape"
      in
      v := (!v * 16) + d;
      incr pos
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match src.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents b
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match src.[!pos] with
          | '"' -> Buffer.add_char b '"'; incr pos
          | '\\' -> Buffer.add_char b '\\'; incr pos
          | '/' -> Buffer.add_char b '/'; incr pos
          | 'b' -> Buffer.add_char b '\b'; incr pos
          | 'f' -> Buffer.add_char b '\012'; incr pos
          | 'n' -> Buffer.add_char b '\n'; incr pos
          | 'r' -> Buffer.add_char b '\r'; incr pos
          | 't' -> Buffer.add_char b '\t'; incr pos
          | 'u' ->
            incr pos;
            let c1 = hex4 () in
            let code =
              (* a high surrogate must pair with a following \u low one *)
              if
                c1 >= 0xD800 && c1 <= 0xDBFF
                && !pos + 1 < n
                && src.[!pos] = '\\'
                && src.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let c2 = hex4 () in
                if c2 >= 0xDC00 && c2 <= 0xDFFF then
                  0x10000 + ((c1 - 0xD800) lsl 10) + (c2 - 0xDC00)
                else fail "invalid low surrogate"
              end
              else c1
            in
            (match Uchar.of_int code with
            | u -> Buffer.add_utf_8_uchar b u
            | exception Invalid_argument _ -> fail "invalid unicode escape")
          | _ -> fail "invalid escape");
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char src.[!pos] do
      incr pos
    done;
    let text = String.sub src start (!pos - start) in
    let integral =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text)
    in
    if integral then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* out of native range: keep the value as a float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "invalid number")
    else
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_list ()
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; go ()
        | Some '}' -> incr pos
        | _ -> fail "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end
  and parse_list () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      List []
    end
    else begin
      let items = ref [] in
      let rec go () =
        let v = parse_value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; go ()
        | Some ']' -> incr pos
        | _ -> fail "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Err (msg, p) -> Error (Printf.sprintf "%s at offset %d" msg p)

(* ------------------------------------------------------------------ *)
(* NDJSON line framing                                                 *)
(* ------------------------------------------------------------------ *)

type line =
  | Line of string
  | Oversized of int
  | Eof

let default_max_line_bytes = 1 lsl 20

(* Bounded replacement for [input_line]: CRLF framing is tolerated (one
   trailing '\r' before the newline is stripped), a trailing partial line
   at EOF is returned as a [Line] (the next read reports [Eof]), and a
   line longer than [max_bytes] stops buffering, keeps consuming up to the
   next newline so the stream stays framed, and reports [Oversized] with
   the total length consumed — the caller answers with a typed
   [request_too_large] error instead of buffering without bound. *)
let read_line_bounded ?(max_bytes = default_max_line_bytes) ic =
  let b = Buffer.create 256 in
  let overflow = ref 0 in
  let finish () =
    if !overflow > 0 then Oversized (Buffer.length b + !overflow)
    else begin
      let s = Buffer.contents b in
      let n = String.length s in
      Line (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
    end
  in
  let rec go () =
    match input_char ic with
    | '\n' -> finish ()
    | c ->
      if !overflow > 0 then incr overflow
      else if Buffer.length b >= max_bytes then overflow := 1
      else Buffer.add_char b c;
      go ()
    | exception End_of_file ->
      if Buffer.length b = 0 && !overflow = 0 then Eof else finish ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let as_string = function String s -> Some s | _ -> None
let as_bool = function Bool b -> Some b | _ -> None

let as_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 52. ->
    Some (int_of_float f)
  | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_list = function List l -> Some l | _ -> None
