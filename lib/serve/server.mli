(** The fault-tolerant request loop behind [tgdtool serve].

    The protocol is line-delimited JSON ({!Json}): one request object per
    line on the input channel, one terminal response object per request on
    the output channel.  Requests are [{"id": …, "op": …, …}] where [op]
    is one of [classify], [chase], [entail], [rewrite], [analyze];
    responses echo the [id] and are either
    [{"id": …, "ok": true, "result": …}] or
    [{"id": …, "ok": false, "error": {"code": …, "message": …}}] with
    codes [bad_request], [overloaded], [fault], [internal],
    [shutting_down], [request_too_large].

    {b Robustness contract.}  Every accepted request gets exactly one
    terminal response, in request order; no input — malformed JSON,
    unknown op, injected fault — crashes the loop.  Transient failures
    (the [serve.request] {!Tgd_engine.Chaos} site, or engine runs
    truncated by an injected [Fault]) retry with exponential backoff up
    to [retries] attempts before answering [fault].  Requests beyond
    [queue_limit] in-flight lines are shed immediately with [overloaded]
    rather than queued without bound.  SIGINT/SIGTERM switch the loop
    into draining: queued requests are answered, new ones get
    [shutting_down], and {!serve} returns. *)

type config = {
  rounds : int;       (** default chase round cap per request *)
  max_facts : int;    (** default fact cap per request *)
  timeout_s : float option;  (** per-request wall-clock deadline *)
  retries : int;      (** retry attempts after a transient fault *)
  backoff_base_s : float;    (** first retry delay; doubles per attempt *)
  queue_limit : int;  (** queued requests beyond which new ones shed *)
  max_line_bytes : int;
      (** request lines longer than this are answered with a typed
          [request_too_large] error instead of buffered without bound *)
  checkpoint_dir : string option;
      (** persist per-request chase progress as incremental delta chains
          under this directory ({!Tgd_chase.Chase.restricted_resumable}),
          keyed on the request content — a transient-fault retry (or a
          restarted server receiving the same request) resumes the chase
          mid-request instead of refiring from the input.  Terminal
          responses remove the chain; an unverifiable one is dropped and
          the request starts over (self-heal — a request checkpoint is
          recoverable state, not client data).  [None] (default): chases
          run in memory only. *)
  checkpoint_every : int;
      (** committed chase rounds per delta record (default 8); only
          meaningful with [checkpoint_dir] set *)
}

val default_config : config
(** 64 rounds, 20_000 facts, no deadline, 3 retries, 10 ms base backoff,
    queue limit 64, 1 MiB line cap, no checkpointing. *)

val request_id : Json.t -> Json.t
(** The request's [id] field, or [Null] — echoed in every response.
    Exposed for transports layered over {!handle}. *)

val error : Json.t -> string -> string -> Json.t
(** [error id code message] — a terminal error response in the protocol's
    shape.  Exposed for transports layered over {!handle}. *)

val analyze_memo : string Tgd_engine.Memo.t
(** The per-process [analyze] report cache, keyed by the canonical
    ontology digest ({!Tgd_engine.Memo.sigma_key}): analysis is pure in
    the rule set and the deep lattice notions may chase the critical
    instance, so repeated requests for the same ontology — under any
    syntactic presentation — hit.  Exposed for tests and cache
    introspection. *)

val handle : config -> Json.t -> Json.t
(** Process one parsed request to its terminal response.  Total: never
    raises, for any input (including injected faults — those either retry
    to success or surface as the [fault] error code).  Exposed for tests
    and for embedding the dispatcher without the IO loop. *)

val serve : ?config:config -> ?signals:bool -> in_channel -> out_channel -> int
(** Run the loop until end-of-input or a drain signal; returns the process
    exit code (0).  A dedicated domain reads lines while the caller's
    domain answers them, so slow requests don't stall shedding.

    [signals] (default [true]) installs SIGINT/SIGTERM handlers that
    trigger a graceful drain; pass [false] when embedding in a process
    that owns its signal disposition (tests use this with channel pairs
    backed by temp files). *)
