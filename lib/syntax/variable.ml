type t = string

let make name =
  if String.length name = 0 then invalid_arg "Variable.make: empty name";
  name

let name v = v
let compare = String.compare
let equal = String.equal
let hash = Hashtbl.hash
let pp = Fmt.string
let to_string v = v

(* Atomic so refreshing tgds is safe from concurrent domains. *)
let fresh_counter = Atomic.make 0

let fresh ?(prefix = "v") () =
  Printf.sprintf "%s#%d" prefix (1 + Atomic.fetch_and_add fresh_counter 1)

let indexed p i = p ^ string_of_int i

module Set = Set.Make (String)
module Map = Map.Make (String)
