open Tgd_syntax

(* Tables are sharded by key hash, each shard behind its own mutex, so
   concurrent Σ ⊨ σ checks running on {!Pool} workers share one cache
   without a global lock.  Computation happens OUTSIDE the shard lock: two
   domains racing on the same fresh key may both compute (the second insert
   is dropped), which wastes a little work but can never deadlock — a
   compute that recursively consults another memo never holds a lock. *)

let shard_count = 16

(* Entries carry an approximate byte footprint (0 while no ceiling is
   installed — weighing is then skipped entirely) and the shard clock value
   of their last access, which is all the LRU eviction sweep needs. *)
type 'a entry = {
  value : 'a;
  mutable tick : int;
  entry_bytes : int;
}

type 'a shard = {
  table : (string, 'a entry) Hashtbl.t;
  lock : Mutex.t;
  shard_stats : Stats.t;
  mutable clock : int;
  mutable bytes : int;
  mutable evictions : int;
  mutable limit : int option;  (* per-shard byte ceiling *)
}

type 'a t = {
  shards : 'a shard array;
  memo_name : string;
}

let create ?(name = "memo") () =
  { shards =
      Array.init shard_count (fun _ ->
          { table = Hashtbl.create 64;
            lock = Mutex.create ();
            shard_stats = Stats.create ();
            clock = 0;
            bytes = 0;
            evictions = 0;
            limit = None
          });
    memo_name = name
  }

let name m = m.memo_name

let shard_of m key = m.shards.(Hashtbl.hash key land (shard_count - 1))

(* Shard counters are only touched under the shard lock; the domain-local
   global accumulator needs no lock. *)
let hit sh =
  sh.shard_stats.Stats.memo_hits <- sh.shard_stats.Stats.memo_hits + 1;
  let g = Stats.global () in
  g.Stats.memo_hits <- g.Stats.memo_hits + 1

let miss sh =
  sh.shard_stats.Stats.memo_misses <- sh.shard_stats.Stats.memo_misses + 1;
  let g = Stats.global () in
  g.Stats.memo_misses <- g.Stats.memo_misses + 1

let touch sh e =
  sh.clock <- sh.clock + 1;
  e.tick <- sh.clock

(* LRU sweep, under the shard lock: drop least-recently-touched entries
   until the shard is back under 7/8 of its ceiling (the hysteresis keeps
   the sweep off the per-insert fast path).  The newest entry — maximal
   tick, so last in the sorted order — always survives, even when it alone
   exceeds the ceiling: an oversized result still serves the request that
   computed it. *)
let evict_lru sh =
  match sh.limit with
  | None -> ()
  | Some limit when sh.bytes <= limit -> ()
  | Some limit ->
    let target = limit - (limit / 8) in
    let entries =
      Hashtbl.fold (fun k e acc -> (k, e) :: acc) sh.table []
      |> List.sort (fun (_, a) (_, b) -> compare a.tick b.tick)
    in
    List.iter
      (fun (k, e) ->
        if sh.bytes > target && Hashtbl.length sh.table > 1 then begin
          Hashtbl.remove sh.table k;
          sh.bytes <- sh.bytes - e.entry_bytes;
          sh.evictions <- sh.evictions + 1
        end)
      entries

(* Weighing traverses the value ([Obj.reachable_words]); shared substructure
   is counted once per entry, overestimating the true marginal footprint —
   which only makes eviction fire earlier, never lets the table run away. *)
let weigh key v =
  (8 * Obj.reachable_words (Obj.repr v)) + String.length key + 64

(* Under the shard lock; an existing entry wins (same rule as before). *)
let store sh key v =
  if not (Hashtbl.mem sh.table key) then begin
    let entry_bytes = match sh.limit with None -> 0 | Some _ -> weigh key v in
    sh.clock <- sh.clock + 1;
    Hashtbl.replace sh.table key { value = v; tick = sh.clock; entry_bytes };
    sh.bytes <- sh.bytes + entry_bytes;
    evict_lru sh
  end

let find_or_add m key compute =
  let sh = shard_of m key in
  Mutex.lock sh.lock;
  match Hashtbl.find_opt sh.table key with
  | Some e ->
    hit sh;
    touch sh e;
    Mutex.unlock sh.lock;
    e.value
  | None ->
    miss sh;
    Mutex.unlock sh.lock;
    let v = compute () in
    Mutex.lock sh.lock;
    let v =
      match Hashtbl.find_opt sh.table key with
      | Some winner ->
        (* a concurrent compute beat us; use its value *)
        touch sh winner;
        winner.value
      | None ->
        store sh key v;
        v
    in
    Mutex.unlock sh.lock;
    v

let add m key v =
  let sh = shard_of m key in
  Mutex.lock sh.lock;
  store sh key v;
  Mutex.unlock sh.lock

let find m key =
  let sh = shard_of m key in
  Mutex.lock sh.lock;
  let r =
    match Hashtbl.find_opt sh.table key with
    | Some e ->
      hit sh;
      touch sh e;
      Some e.value
    | None ->
      miss sh;
      None
  in
  Mutex.unlock sh.lock;
  r

let clear m =
  Array.iter
    (fun sh ->
      Mutex.lock sh.lock;
      Hashtbl.reset sh.table;
      sh.bytes <- 0;
      Mutex.unlock sh.lock)
    m.shards

let set_limit m ~bytes =
  let per_shard =
    Option.map (fun b -> max 4096 (b / shard_count)) bytes
  in
  Array.iter
    (fun sh ->
      Mutex.lock sh.lock;
      (* footprints of entries stored under the previous regime are stale
         (unweighed, or weighed against a ceiling being removed), so a
         limit change restarts the table from empty, fully accounted *)
      Hashtbl.reset sh.table;
      sh.bytes <- 0;
      sh.limit <- per_shard;
      Mutex.unlock sh.lock)
    m.shards

let size m =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let n = Hashtbl.length sh.table in
      Mutex.unlock sh.lock;
      acc + n)
    0 m.shards

let approx_bytes m =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let b = sh.bytes in
      Mutex.unlock sh.lock;
      acc + b)
    0 m.shards

let evictions m =
  Array.fold_left
    (fun acc sh ->
      Mutex.lock sh.lock;
      let e = sh.evictions in
      Mutex.unlock sh.lock;
      acc + e)
    0 m.shards

let stats m =
  let total = Stats.create () in
  Array.iter
    (fun sh ->
      Mutex.lock sh.lock;
      let copy = Stats.copy sh.shard_stats in
      Mutex.unlock sh.lock;
      Stats.add ~into:total copy)
    m.shards;
  total

(* ------------------------------------------------------------------ *)
(* Aggregated counters (for surfacing cache state in serve responses)  *)
(* ------------------------------------------------------------------ *)

type counters = {
  hits : int;
  misses : int;
  entries : int;
  bytes : int;
  evicted : int;
}

let zero_counters = { hits = 0; misses = 0; entries = 0; bytes = 0; evicted = 0 }

let combine_counters a b =
  { hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    entries = a.entries + b.entries;
    bytes = a.bytes + b.bytes;
    evicted = a.evicted + b.evicted
  }

let counters m =
  let s = stats m in
  { hits = s.Stats.memo_hits;
    misses = s.Stats.memo_misses;
    entries = size m;
    bytes = approx_bytes m;
    evicted = evictions m
  }

(* ------------------------------------------------------------------ *)
(* Key builders                                                        *)
(* ------------------------------------------------------------------ *)

let exact_limit = 5

(* Variables renamed in order of first occurrence across the atom list. *)
let first_occurrence_renaming atoms =
  let counter = ref 0 in
  List.fold_left
    (fun map atom ->
      List.fold_left
        (fun map v ->
          if Variable.Map.mem v map then map
          else begin
            let v' = Variable.indexed "b" !counter in
            incr counter;
            Variable.Map.add v v' map
          end)
        map (Atom.var_list atom))
    Variable.Map.empty atoms

let render_conjunction atoms =
  let renaming = first_occurrence_renaming atoms in
  atoms
  |> List.map (fun a -> Atom.to_string (Atom.rename renaming a))
  |> String.concat " /\\ "

let sorted_fallback atoms =
  atoms |> List.map Atom.to_string |> List.sort String.compare
  |> String.concat " /\\ "

let body_canonical atoms =
  match atoms with
  | [] -> ([], Variable.Map.empty)
  | _ when List.length atoms <= exact_limit ->
    let best =
      Combinat.permutations atoms
      |> Seq.fold_left
           (fun acc perm ->
             let s = render_conjunction perm in
             match acc with
             | Some (best, _) when String.compare best s <= 0 -> acc
             | _ -> Some (s, perm))
           None
    in
    let _, perm = Option.get best in
    let renaming = first_occurrence_renaming perm in
    (List.map (Atom.rename renaming) perm, renaming)
  | _ ->
    let sorted =
      List.sort (fun a b -> String.compare (Atom.to_string a) (Atom.to_string b))
        atoms
    in
    let identity =
      List.fold_left
        (fun map atom ->
          List.fold_left
            (fun map v -> Variable.Map.add v v map)
            map (Atom.var_list atom))
        Variable.Map.empty sorted
    in
    (sorted, identity)

let body_key atoms =
  match atoms with
  | [] -> ""
  | _ when List.length atoms <= exact_limit ->
    Combinat.permutations atoms
    |> Seq.fold_left
         (fun acc perm ->
           let s = render_conjunction perm in
           match acc with
           | Some best when String.compare best s <= 0 -> acc
           | _ -> Some s)
         None
    |> Option.get
  | _ -> sorted_fallback atoms

(* Per-domain key cache: no locks, and physical-equality-friendly reuse
   within a domain covers the common sweep shapes. *)
let tgd_keys_key : (Tgd.t, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let tgd_key tgd =
  let tgd_keys = Domain.DLS.get tgd_keys_key in
  match Hashtbl.find_opt tgd_keys tgd with
  | Some k -> k
  | None ->
    let n = List.length (Tgd.body tgd) + List.length (Tgd.head tgd) in
    let k =
      if n <= exact_limit then Tgd.to_string (Canonical.tgd tgd)
      else
        Fmt.str "%s => %s"
          (sorted_fallback (Tgd.body tgd))
          (sorted_fallback (Tgd.head tgd))
    in
    Hashtbl.replace tgd_keys tgd k;
    k

let sigma_key sigma =
  sigma |> List.map tgd_key
  |> List.sort_uniq String.compare
  |> String.concat " ;; "
