open Tgd_syntax

type 'a t = {
  table : (string, 'a) Hashtbl.t;
  memo_name : string;
  stats : Stats.t;
}

let create ?(name = "memo") () =
  { table = Hashtbl.create 256; memo_name = name; stats = Stats.create () }

let name m = m.memo_name

let hit m =
  m.stats.Stats.memo_hits <- m.stats.Stats.memo_hits + 1;
  Stats.global.Stats.memo_hits <- Stats.global.Stats.memo_hits + 1

let miss m =
  m.stats.Stats.memo_misses <- m.stats.Stats.memo_misses + 1;
  Stats.global.Stats.memo_misses <- Stats.global.Stats.memo_misses + 1

let find_or_add m key compute =
  match Hashtbl.find_opt m.table key with
  | Some v ->
    hit m;
    v
  | None ->
    miss m;
    let v = compute () in
    Hashtbl.replace m.table key v;
    v

let find m key =
  match Hashtbl.find_opt m.table key with
  | Some v ->
    hit m;
    Some v
  | None ->
    miss m;
    None

let clear m = Hashtbl.reset m.table
let size m = Hashtbl.length m.table
let stats m = m.stats

(* ------------------------------------------------------------------ *)
(* Key builders                                                        *)
(* ------------------------------------------------------------------ *)

let exact_limit = 5

(* Variables renamed in order of first occurrence across the atom list. *)
let first_occurrence_renaming atoms =
  let counter = ref 0 in
  List.fold_left
    (fun map atom ->
      List.fold_left
        (fun map v ->
          if Variable.Map.mem v map then map
          else begin
            let v' = Variable.indexed "b" !counter in
            incr counter;
            Variable.Map.add v v' map
          end)
        map (Atom.var_list atom))
    Variable.Map.empty atoms

let render_conjunction atoms =
  let renaming = first_occurrence_renaming atoms in
  atoms
  |> List.map (fun a -> Atom.to_string (Atom.rename renaming a))
  |> String.concat " /\\ "

let sorted_fallback atoms =
  atoms |> List.map Atom.to_string |> List.sort String.compare
  |> String.concat " /\\ "

let body_canonical atoms =
  match atoms with
  | [] -> ([], Variable.Map.empty)
  | _ when List.length atoms <= exact_limit ->
    let best =
      Combinat.permutations atoms
      |> Seq.fold_left
           (fun acc perm ->
             let s = render_conjunction perm in
             match acc with
             | Some (best, _) when String.compare best s <= 0 -> acc
             | _ -> Some (s, perm))
           None
    in
    let _, perm = Option.get best in
    let renaming = first_occurrence_renaming perm in
    (List.map (Atom.rename renaming) perm, renaming)
  | _ ->
    let sorted =
      List.sort (fun a b -> String.compare (Atom.to_string a) (Atom.to_string b))
        atoms
    in
    let identity =
      List.fold_left
        (fun map atom ->
          List.fold_left
            (fun map v -> Variable.Map.add v v map)
            map (Atom.var_list atom))
        Variable.Map.empty sorted
    in
    (sorted, identity)

let body_key atoms =
  match atoms with
  | [] -> ""
  | _ when List.length atoms <= exact_limit ->
    Combinat.permutations atoms
    |> Seq.fold_left
         (fun acc perm ->
           let s = render_conjunction perm in
           match acc with
           | Some best when String.compare best s <= 0 -> acc
           | _ -> Some s)
         None
    |> Option.get
  | _ -> sorted_fallback atoms

let tgd_keys : (Tgd.t, string) Hashtbl.t = Hashtbl.create 256

let tgd_key tgd =
  match Hashtbl.find_opt tgd_keys tgd with
  | Some k -> k
  | None ->
    let n = List.length (Tgd.body tgd) + List.length (Tgd.head tgd) in
    let k =
      if n <= exact_limit then Tgd.to_string (Canonical.tgd tgd)
      else
        Fmt.str "%s => %s"
          (sorted_fallback (Tgd.body tgd))
          (sorted_fallback (Tgd.head tgd))
    in
    Hashtbl.replace tgd_keys tgd k;
    k

let sigma_key sigma =
  sigma |> List.map tgd_key
  |> List.sort_uniq String.compare
  |> String.concat " ;; "
