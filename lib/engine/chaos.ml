type config = {
  seed : int;
  delay_p : float;
  delay_s : float;
  alloc_p : float;
  alloc_words : int;
  raise_p : float;
  kill_p : float;
}

let default_config =
  { seed = 0;
    delay_p = 0.;
    delay_s = 1e-3;
    alloc_p = 0.;
    alloc_words = 65_536;
    raise_p = 0.;
    kill_p = 0.
  }

exception Injected of string

let state : config option Atomic.t = Atomic.make None

(* Per-site shot counters.  A draw is a pure hash of
   (seed, site, site-local shot number), so the fault schedule of a site is
   a function of how many times {e that site} stepped — not of what any
   other site did.  [install] resets the counters, so two runs under the
   same config replay the identical schedule (exactly, on a single domain;
   per-site as a set under [jobs > 1], where the counter increments
   interleave across workers).  Creation and increment are serialized by
   one mutex: chaos is only ever active in the robustness suites, where the
   fairness of a lock beats the cleverness of a lock-free map. *)
let sites : (string, int ref) Hashtbl.t = Hashtbl.create 64
let sites_mutex = Mutex.create ()

let next_shot site =
  Mutex.lock sites_mutex;
  let counter =
    match Hashtbl.find_opt sites site with
    | Some c -> c
    | None ->
      let c = ref 0 in
      Hashtbl.add sites site c;
      c
  in
  let shot = !counter in
  incr counter;
  Mutex.unlock sites_mutex;
  shot

let shot_count ~site =
  Mutex.lock sites_mutex;
  let n = match Hashtbl.find_opt sites site with Some c -> !c | None -> 0 in
  Mutex.unlock sites_mutex;
  n

let reset_shots () =
  Mutex.lock sites_mutex;
  Hashtbl.reset sites;
  Mutex.unlock sites_mutex

let install cfg =
  reset_shots ();
  Atomic.set state (Some cfg)

let uninstall () = Atomic.set state None
let active () = Atomic.get state <> None

let with_config cfg f =
  install cfg;
  Fun.protect ~finally:uninstall f

(* Uniform draw in [0,1) from a pure hash — no shared RNG state, so
   concurrent sites never contend or skew each other's streams. *)
let draw seed site shot salt =
  let h = Hashtbl.hash (seed, site, shot, salt) in
  float_of_int (h land 0x3FFFFFF) /. float_of_int 0x4000000

let step ~site =
  match Atomic.get state with
  | None -> ()
  | Some cfg ->
    let shot = next_shot site in
    if draw cfg.seed site shot 0 < cfg.delay_p then Unix.sleepf cfg.delay_s;
    if draw cfg.seed site shot 1 < cfg.alloc_p then
      ignore (Sys.opaque_identity (Array.make cfg.alloc_words 0));
    if draw cfg.seed site shot 2 < cfg.raise_p then
      raise (Injected (Printf.sprintf "%s#%d" site shot))

(* The process-kill family.  Unlike the in-process faults above, chaos
   cannot kill a shard itself — it has no business holding pids — so the
   draw only *decides*: the fleet monitor steps this site once per
   supervision tick and carries out the sentence on the victim index.
   Same determinism contract as [step]: the kill schedule (which ticks
   fire, which of [n] victims each picks) is a pure function of
   (seed, site, tick count). *)
let kill_shot ~site ~n =
  match Atomic.get state with
  | None -> None
  | Some cfg ->
    if cfg.kill_p <= 0. || n <= 0 then None
    else begin
      let shot = next_shot site in
      if draw cfg.seed site shot 3 < cfg.kill_p then
        Some (int_of_float (draw cfg.seed site shot 4 *. float_of_int n))
      else None
    end
