type config = {
  seed : int;
  delay_p : float;
  delay_s : float;
  alloc_p : float;
  alloc_words : int;
  raise_p : float;
}

let default_config =
  { seed = 0;
    delay_p = 0.;
    delay_s = 1e-3;
    alloc_p = 0.;
    alloc_words = 65_536;
    raise_p = 0.
  }

exception Injected of string

let state : config option Atomic.t = Atomic.make None
let shots = Atomic.make 0

let install cfg = Atomic.set state (Some cfg)
let uninstall () = Atomic.set state None
let active () = Atomic.get state <> None

let with_config cfg f =
  install cfg;
  Fun.protect ~finally:uninstall f

(* Uniform draw in [0,1) from a pure hash — no shared RNG state, so
   concurrent sites never contend or skew each other's streams. *)
let draw seed site shot salt =
  let h = Hashtbl.hash (seed, site, shot, salt) in
  float_of_int (h land 0x3FFFFFF) /. float_of_int 0x4000000

let step ~site =
  match Atomic.get state with
  | None -> ()
  | Some cfg ->
    let shot = Atomic.fetch_and_add shots 1 in
    if draw cfg.seed site shot 0 < cfg.delay_p then Unix.sleepf cfg.delay_s;
    if draw cfg.seed site shot 1 < cfg.alloc_p then
      ignore (Sys.opaque_identity (Array.make cfg.alloc_words 0));
    if draw cfg.seed site shot 2 < cfg.raise_p then
      raise (Injected (Printf.sprintf "%s#%d" site shot))
