(** Binary encoding primitives for checkpoint payloads.

    A tiny, dependency-free wire format used by {!Delta_log} records and the
    structural codecs ({!Codec}): LEB128 varints, length-prefixed strings,
    and a table-based CRC-32 (IEEE 802.3 polynomial, reflected) for
    per-record integrity.  Everything here is deterministic — the same value
    always encodes to the same bytes — which is what makes delta-chain
    replay byte-comparable across runs.

    Writers append to a [Buffer.t]; readers consume a [string] through a
    mutable cursor and raise {!Corrupt} (never [Invalid_argument] or an
    out-of-bounds crash) on truncated or malformed input, so a loader can
    turn arbitrary bytes into a typed rejection. *)

exception Corrupt of string
(** Raised by every [read_*] on malformed input: truncation, varint
    overflow, or a length prefix pointing past the end. *)

(* Writers *)

val write_varint : Buffer.t -> int -> unit
(** Unsigned LEB128.  Raises [Invalid_argument] on negative input — the
    formats built on this module only ever encode counts and indices. *)

val write_string : Buffer.t -> string -> unit
(** Varint byte length, then the raw bytes. *)

val write_bool : Buffer.t -> bool -> unit

(* Readers *)

type reader
(** A cursor over an immutable byte string (or a slice of one). *)

val reader : ?pos:int -> ?len:int -> string -> reader
(** [reader s] reads from the whole of [s]; [pos]/[len] select a slice. *)

val at_end : reader -> bool
(** All bytes of the slice have been consumed. *)

val pos : reader -> int
(** Current cursor offset into the underlying string. *)

val read_varint : reader -> int
val read_string : reader -> string
val read_bool : reader -> bool

(* Integrity *)

val crc32 : ?crc:int -> string -> pos:int -> len:int -> int
(** CRC-32 (IEEE: polynomial 0xEDB88320, reflected, init/xorout
    0xFFFFFFFF) of [len] bytes of [s] starting at [pos], as a non-negative
    int below 2{^32}.  Pass a previous result as [crc] to continue a
    running digest. *)
