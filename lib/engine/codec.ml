open Tgd_syntax
open Tgd_instance

(* ------------------------------------------------------------------ *)
(* Constants                                                           *)
(* ------------------------------------------------------------------ *)

let rec write_constant buf = function
  | Constant.Named s ->
    Buffer.add_char buf '\000';
    Wire.write_string buf s
  | Constant.Indexed i ->
    Buffer.add_char buf '\001';
    Wire.write_varint buf i
  | Constant.Pair (a, b) ->
    Buffer.add_char buf '\002';
    write_constant buf a;
    write_constant buf b
  | Constant.Null i ->
    Buffer.add_char buf '\003';
    Wire.write_varint buf i

let rec read_constant r =
  match Wire.read_varint r with
  | 0 -> Constant.named (Wire.read_string r)
  | 1 -> Constant.indexed (Wire.read_varint r)
  | 2 ->
    let a = read_constant r in
    let b = read_constant r in
    Constant.pair a b
  | 3 -> Constant.null (Wire.read_varint r)
  | t -> raise (Wire.Corrupt (Printf.sprintf "bad constant tag %d" t))

(* ------------------------------------------------------------------ *)
(* Relations and schemas                                               *)
(* ------------------------------------------------------------------ *)

let write_relation buf rel =
  Wire.write_string buf (Relation.name rel);
  Wire.write_varint buf (Relation.arity rel)

let read_relation r =
  let name = Wire.read_string r in
  let arity = Wire.read_varint r in
  Relation.make name arity

let write_schema buf schema =
  let rels = Schema.relations schema in
  Wire.write_varint buf (List.length rels);
  List.iter (write_relation buf) rels

let read_schema r =
  let n = Wire.read_varint r in
  Schema.make (List.init n (fun _ -> read_relation r))

(* ------------------------------------------------------------------ *)
(* Facts relative to a schema                                          *)
(* ------------------------------------------------------------------ *)

type rel_writer = (Relation.t, int) Hashtbl.t
type rel_reader = Relation.t array

let rel_writer schema =
  let t = Hashtbl.create 16 in
  List.iteri (fun i rel -> Hashtbl.replace t rel i) (Schema.relations schema);
  t

let rel_reader schema = Array.of_list (Schema.relations schema)

let write_fact w buf f =
  let rel = Fact.rel f in
  (match Hashtbl.find_opt w rel with
  | Some i -> Wire.write_varint buf (i + 1)
  | None ->
    (* a relation outside the schema the table was built from: inline it *)
    Wire.write_varint buf 0;
    write_relation buf rel);
  Array.iter (write_constant buf) (Fact.tuple_arr f)

let read_fact rr r =
  let rel =
    match Wire.read_varint r with
    | 0 -> read_relation r
    | i when i <= Array.length rr -> rr.(i - 1)
    | i ->
      raise
        (Wire.Corrupt
           (Printf.sprintf "relation index %d out of range (%d relations)" i
              (Array.length rr)))
  in
  Fact.make_arr rel (Array.init (Relation.arity rel) (fun _ -> read_constant r))

let write_facts w buf facts =
  Wire.write_varint buf (List.length facts);
  List.iter (write_fact w buf) facts

let read_facts rr r =
  let n = Wire.read_varint r in
  List.init n (fun _ -> read_fact rr r)

(* ------------------------------------------------------------------ *)
(* Instances                                                           *)
(* ------------------------------------------------------------------ *)

let write_instance buf inst =
  let schema = Instance.schema inst in
  write_schema buf schema;
  let dom = Constant.Set.elements (Instance.dom inst) in
  Wire.write_varint buf (List.length dom);
  List.iter (write_constant buf) dom;
  write_facts (rel_writer schema) buf (Instance.fact_list inst)

let read_instance r =
  let schema = read_schema r in
  let ndom = Wire.read_varint r in
  let dom = List.init ndom (fun _ -> read_constant r) in
  let facts = read_facts (rel_reader schema) r in
  let extras =
    List.filter (fun f -> not (Schema.mem schema (Fact.rel f))) facts
    |> List.map Fact.rel
  in
  let schema = if extras = [] then schema else Schema.extend schema extras in
  Instance.of_facts ~dom schema facts

(* ------------------------------------------------------------------ *)
(* Tgds                                                                *)
(* ------------------------------------------------------------------ *)

let write_term buf = function
  | Term.Var v ->
    Buffer.add_char buf '\000';
    Wire.write_string buf (Variable.name v)
  | Term.Const c ->
    Buffer.add_char buf '\001';
    write_constant buf c

let read_term r =
  match Wire.read_varint r with
  | 0 -> Term.var (Variable.make (Wire.read_string r))
  | 1 -> Term.const (read_constant r)
  | t -> raise (Wire.Corrupt (Printf.sprintf "bad term tag %d" t))

let write_atom buf a =
  write_relation buf (Atom.rel a);
  Array.iter (write_term buf) (Atom.args_arr a)

let read_atom r =
  let rel = read_relation r in
  Atom.make_arr rel (Array.init (Relation.arity rel) (fun _ -> read_term r))

let write_atoms buf atoms =
  Wire.write_varint buf (List.length atoms);
  List.iter (write_atom buf) atoms

let read_atoms r =
  let n = Wire.read_varint r in
  List.init n (fun _ -> read_atom r)

let write_tgd buf tgd =
  write_atoms buf (Tgd.body tgd);
  write_atoms buf (Tgd.head tgd)

let read_tgd r =
  let body = read_atoms r in
  let head = read_atoms r in
  Tgd.make ~body ~head
