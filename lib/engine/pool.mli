(** A supervised domain pool for embarrassingly parallel screening loops.

    Built on plain [Domain] + [Mutex]/[Condition] (no dependencies beyond
    the OCaml 5 stdlib).  [create ~jobs] spawns [jobs] worker domains that
    block on a shared queue; each batch operation chops its input into
    chunks, and idle workers claim the next chunk dynamically — the load
    balancing that matters when per-item cost varies by orders of magnitude
    (e.g. candidate tgds whose chases terminate in one round vs exhaust the
    budget).

    {b Supervision.}  A monitor domain drives a {!Supervisor} state
    machine over the workers.  A worker that {e dies} after claiming a
    chunk (fault-injected at the [pool.worker] {!Chaos} site) requeues its
    untouched chunk and is replaced after capped exponential backoff — the
    batch still completes with the correct result, and the respawns are
    counted in [Stats.restarts] (folded into the submitting domain at each
    join) and visible via {!health}.  A worker {e wedged} (busy beyond the
    policy's opt-in timeout) has its in-flight chunk abandoned with
    [Chaos.Injected "pool.wedged#<slot>"] — failing the batch through the
    normal typed-fault path — and its slot respawned under a fresh
    generation; the stale domain exits on its own when it wakes up.  When
    total respawns exhaust [max_restarts] the circuit breaker trips:
    queued chunks are rescue-drained inline and subsequent batches run
    {e sequentially} in the submitting domain (degraded mode — slower,
    but every call still returns).  Each chunk commits exactly once
    (compare-and-set), however many workers touched it.

    {b Determinism.}  All batch operations preserve input order: the result
    of [parallel_filter_map] is the same list the sequential
    [Seq.filter_map] would produce, and [parallel_find_map] returns the
    first hit in input order regardless of scheduling (a later hit never
    suppresses an earlier item — see the domination argument in the
    implementation).

    {b Stats.}  {!Stats.global} is domain-local, so work done by a worker
    lands in that worker's accumulator.  Around every chunk the pool
    records the worker's delta and, when the batch joins, folds the sum
    into the {e submitting} domain's accumulator — callers that diff
    [Stats.global ()] around a parallel region therefore see exactly the
    counters the sequential run would have produced (modulo
    memo-hit/miss divergence when concurrent lookups race to compute the
    same entry).

    {b Exceptions.}  If a chunk raises, the batch still drains, and the
    first recorded exception is re-raised in the submitting domain.

    {b Cancellation.}  Every batch operation accepts a {!Budget.Cancel.t}
    token, polled between items (one atomic read).  Once the token trips —
    typically because a worker's budget check hit a deadline — every worker
    abandons the remainder of its chunk, the batch drains, and the call
    returns with only the items processed before the trip.  Skipped items
    are simply absent from a [parallel_filter_map]/[parallel_map] result
    (not necessarily a contiguous prefix: chunks interleave), so callers
    treat any result obtained under a tripped token as partial and decide
    their own commit granularity — the chase drops the interrupted round,
    the rewriting sweep drops the interrupted batch.

    {b Fault injection.}  Each chunk passes a {!Chaos.step} site
    ([pool.chunk]); an injected exception travels the normal failure path
    (batch drains, re-raised at the join).  Each {e claim} passes the
    [pool.worker] site; an injection there kills the worker domain
    instead, exercising the supervision ladder above.  The chaos suite
    asserts that no pool ever hangs or swallows a fault either way.

    Items are processed on worker domains: the closures passed in must not
    touch non-atomic shared mutable state (the engine's own shared
    structures — {!Memo} shards, {!Stats} — are already safe). *)

type t

val create : ?policy:Supervisor.policy -> jobs:int -> unit -> t
(** Spawn [jobs] worker domains ([jobs >= 1]) plus one monitor domain.
    The submitting domain does not execute chunks itself, so total
    parallelism is [jobs].  [policy] defaults to
    {!Supervisor.default_policy}. *)

val jobs : t -> int

val health : t -> Supervisor.health
(** Snapshot of the supervision state: live workers, deaths, restarts,
    wedge abandonments, breaker state. *)

val shutdown : t -> unit
(** Stop and join the monitor and every worker the supervisor vouches
    for (live ones exit on the closing flag; self-died ones have already
    returned).  Wedged zombie domains are {e not} joined — they exit on
    their own when their generation check fails — so shutdown cannot hang
    on a dead or stuck worker.  Idempotent. *)

val with_pool : ?policy:Supervisor.policy -> jobs:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown] (also on exceptions). *)

val warm : ?policy:Supervisor.policy -> jobs:int -> unit -> t
(** A process-wide pool kept alive across calls, one per [jobs] count.
    Spawning a domain costs hundreds of microseconds, so re-creating a
    pool per engine phase used to dominate the work it parallelised;
    [warm] amortises the spawn over the whole process.  The returned pool
    is {e borrowed}: callers must not [shutdown] it.  A warm pool whose
    circuit breaker has tripped is transparently replaced by a fresh one
    on the next call (the retired pool is drained at exit).  All warm
    pools are shut down by an [at_exit] hook, or eagerly via
    {!warm_shutdown}. *)

val warm_shutdown : unit -> unit
(** Shut down every warm pool (including retired ones) and empty the
    registry.  Safe to call repeatedly; subsequent {!warm} calls spawn
    fresh pools. *)

val with_warm : ?policy:Supervisor.policy -> jobs:int -> (t option -> 'a) -> 'a
(** The standard engine entry point: run [f] with [Some pool] borrowed
    from the warm registry, or [None] when parallelism is unavailable —
    [jobs <= 1], or the calling domain is itself a pool worker (nested
    submission would deadlock on the shared queue).  When {!Chaos.active}
    the call falls back to an ephemeral {!with_pool} so fault injection
    can kill workers and trip breakers without poisoning the shared warm
    registry. *)

type counters = {
  batches : int;        (** batch operations joined on this pool *)
  chunks : int;         (** chunks submitted across all batches *)
  chunks_stolen : int;  (** chunks claimed off their intended slot *)
  chunk_items : int;    (** total items carried by submitted chunks *)
  merge_time_s : float; (** seconds spent in batch-join merges *)
}

val counters : t -> counters
(** Cumulative chunk-level counters since pool creation (folded at each
    batch join, so a snapshot taken between batches is exact). *)

val parallel_filter_map :
  t -> ?chunk:int -> ?cancel:Budget.Cancel.t -> ('a -> 'b option) -> 'a Seq.t -> 'b list
(** Order-preserving parallel [Seq.filter_map .. |> List.of_seq].  The
    input sequence is forced on the submitting domain; [chunk] items are
    processed per queue claim (default: a size balancing queue traffic
    against load balance).  With [cancel], items are skipped once the
    token trips (see the cancellation note above). *)

val parallel_map :
  t -> ?chunk:int -> ?cancel:Budget.Cancel.t -> ('a -> 'b) -> 'a Seq.t -> 'b list
(** Order-preserving parallel [List.map] (shorter when cancelled). *)

val parallel_find_map :
  t -> ?chunk:int -> ?cancel:Budget.Cancel.t -> ('a -> 'b option) -> 'a Seq.t -> 'b option
(** First hit in input order, with early exit: once a hit at index [i] is
    known, items after [i] are skipped without calling [f].  A hit found
    before a [cancel] trip is still returned; [None] under a tripped token
    means the search was abandoned, not exhausted. *)
