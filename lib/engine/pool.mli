(** A domain pool for embarrassingly parallel screening loops.

    Built on plain [Domain] + [Mutex]/[Condition] (no dependencies beyond
    the OCaml 5 stdlib).  [create ~jobs] spawns [jobs] worker domains that
    block on a shared queue; each batch operation chops its input into
    chunks, and idle workers claim the next chunk dynamically — the load
    balancing that matters when per-item cost varies by orders of magnitude
    (e.g. candidate tgds whose chases terminate in one round vs exhaust the
    budget).

    {b Determinism.}  All batch operations preserve input order: the result
    of [parallel_filter_map] is the same list the sequential
    [Seq.filter_map] would produce, and [parallel_find_map] returns the
    first hit in input order regardless of scheduling (a later hit never
    suppresses an earlier item — see the domination argument in the
    implementation).

    {b Stats.}  {!Stats.global} is domain-local, so work done by a worker
    lands in that worker's accumulator.  Around every chunk the pool
    records the worker's delta and, when the batch joins, folds the sum
    into the {e submitting} domain's accumulator — callers that diff
    [Stats.global ()] around a parallel region therefore see exactly the
    counters the sequential run would have produced (modulo
    memo-hit/miss divergence when concurrent lookups race to compute the
    same entry).

    {b Exceptions.}  If a chunk raises, the batch still drains, and the
    first recorded exception is re-raised in the submitting domain.

    {b Cancellation.}  Every batch operation accepts a {!Budget.Cancel.t}
    token, polled between items (one atomic read).  Once the token trips —
    typically because a worker's budget check hit a deadline — every worker
    abandons the remainder of its chunk, the batch drains, and the call
    returns with only the items processed before the trip.  Skipped items
    are simply absent from a [parallel_filter_map]/[parallel_map] result
    (not necessarily a contiguous prefix: chunks interleave), so callers
    treat any result obtained under a tripped token as partial and decide
    their own commit granularity — the chase drops the interrupted round,
    the rewriting sweep drops the interrupted batch.

    {b Fault injection.}  Each chunk passes a {!Chaos.step} site
    ([pool.chunk]); an injected exception travels the normal failure path
    (batch drains, re-raised at the join), so the chaos suite can assert
    that no pool ever hangs or swallows a fault.

    Items are processed on worker domains: the closures passed in must not
    touch non-atomic shared mutable state (the engine's own shared
    structures — {!Memo} shards, {!Stats} — are already safe). *)

type t

val create : jobs:int -> t
(** Spawn [jobs] worker domains ([jobs >= 1]).  The submitting domain does
    not execute chunks itself, so total parallelism is [jobs]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Drain outstanding tasks, stop and join all workers.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown] (also on exceptions). *)

val parallel_filter_map :
  t -> ?chunk:int -> ?cancel:Budget.Cancel.t -> ('a -> 'b option) -> 'a Seq.t -> 'b list
(** Order-preserving parallel [Seq.filter_map .. |> List.of_seq].  The
    input sequence is forced on the submitting domain; [chunk] items are
    processed per queue claim (default: a size balancing queue traffic
    against load balance).  With [cancel], items are skipped once the
    token trips (see the cancellation note above). *)

val parallel_map :
  t -> ?chunk:int -> ?cancel:Budget.Cancel.t -> ('a -> 'b) -> 'a Seq.t -> 'b list
(** Order-preserving parallel [List.map] (shorter when cancelled). *)

val parallel_find_map :
  t -> ?chunk:int -> ?cancel:Budget.Cancel.t -> ('a -> 'b option) -> 'a Seq.t -> 'b option
(** First hit in input order, with early exit: once a hit at index [i] is
    known, items after [i] are skipped without calling [f].  A hit found
    before a [cancel] trip is still returned; [None] under a tripped token
    means the search was abandoned, not exhausted. *)
