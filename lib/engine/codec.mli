(** Structural binary codecs for checkpoint payloads.

    Hand-rolled encoders/decoders over {!Wire} for the syntax and instance
    types that checkpoints persist — no [Marshal] anywhere, so payloads are
    compact, versionable, and safe to decode from untrusted bytes: every
    decoder raises {!Wire.Corrupt} (or [Invalid_argument] from a smart
    constructor) on malformed input rather than crashing or fabricating
    values, and CRC framing upstream ({!Delta_log}) makes either outcome a
    typed rejection.

    Encodings are deterministic: instances serialize their facts in
    [Instance.fact_list] (sorted) order, so equal states encode to equal
    bytes. *)

open Tgd_syntax
open Tgd_instance

val write_constant : Buffer.t -> Constant.t -> unit
val read_constant : Wire.reader -> Constant.t

val write_relation : Buffer.t -> Relation.t -> unit
val read_relation : Wire.reader -> Relation.t

val write_schema : Buffer.t -> Schema.t -> unit
val read_schema : Wire.reader -> Schema.t

(** {1 Facts relative to a schema}

    Fact records reference their relation as a varint index into the
    schema's sorted relation list (one or two bytes instead of the name),
    falling back to an inline (name, arity) pair for relations outside it. *)

type rel_writer
type rel_reader

val rel_writer : Schema.t -> rel_writer
val rel_reader : Schema.t -> rel_reader

val write_fact : rel_writer -> Buffer.t -> Fact.t -> unit
val read_fact : rel_reader -> Wire.reader -> Fact.t

val write_facts : rel_writer -> Buffer.t -> Fact.t list -> unit
val read_facts : rel_reader -> Wire.reader -> Fact.t list

val write_instance : Buffer.t -> Instance.t -> unit
(** Schema, then the full domain (which may exceed the active domain), then
    the facts in sorted order. *)

val read_instance : Wire.reader -> Instance.t
(** Inverse of {!write_instance}; facts over inline relations extend the
    decoded schema, so replay never rejects a fact the encoder accepted. *)

val write_tgd : Buffer.t -> Tgd.t -> unit
val read_tgd : Wire.reader -> Tgd.t
