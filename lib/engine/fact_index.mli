(** Per-relation hash indexes over facts, keyed on
    (relation, position, constant), with insertion-round stamps.

    The index is the engine's single source of truth during saturation: a
    fact inserted in round [r] carries the stamp [r], and every lookup can
    be bounded by [?up_to] — so the same structure serves

    - snapshot semantics (round [r] matches only facts with stamp [< r]),
    - delta extraction (facts with stamp exactly [r-1]), and
    - activity checks against the live instance (no bound).

    Buckets preserve insertion order (oldest first), keeping the engine
    deterministic.  Lookups bump [probes] on the {!Stats.t} the index was
    created with.

    {b Two layers.}  The index is physically split into a {e base} layer
    (every committed round) and a {e delta} layer (facts inserted since
    the last {!commit}).  {!add} lands in the delta; lookups transparently
    see both layers, base entries first, so semantics are unchanged — but
    during a parallel match phase the pool workers only ever probe base
    bucket arrays, which no concurrent insert can resize.  {!commit} folds
    the delta into the base at the round barrier, in insertion order and
    O(|delta|), and returns the per-relation grouping the next round's
    pivot tasks consume directly. *)

open Tgd_syntax

type t

val create : ?stats:Stats.t -> unit -> t
(** Fresh empty index.  [stats] defaults to a private throw-away record. *)

val with_stats : t -> Stats.t -> t
(** A view of the same index whose lookups bump a different {!Stats.t} —
    used to give each parallel match task its own counter record while
    sharing the underlying tables (read-only during matching). *)

val add : t -> round:int -> Fact.t -> bool
(** Insert with stamp [round] into the delta layer; [false] when the fact
    is already present in either layer (the index is unchanged — first
    stamp wins). *)

val commit : t -> Fact.t list * (Relation.t, Fact.t list) Hashtbl.t
(** Merge the delta layer into the base layer — the round barrier.  The
    merge replays delta entries in their exact insertion order, so after
    the commit every bucket reads as if the facts had been inserted into a
    single-layer index sequentially.  Returns the delta as a flat list (in
    insertion order) and grouped per relation (each group in insertion
    order) — O(|delta|), computed from the delta's own buckets.  The delta
    layer is empty afterwards.  Rounds must be committed in non-decreasing
    order to keep bucket stamps monotone. *)

val mem : t -> Fact.t -> bool
val round_of : t -> Fact.t -> int option
val fact_count : t -> int

val lookup : t -> ?up_to:int -> Relation.t -> pos:int -> Constant.t -> Fact.t Seq.t
(** Facts [R(…,c,…)] with [c] at position [pos] and stamp [≤ up_to]
    (default: no bound).  Counts as one probe. *)

val all : t -> ?up_to:int -> Relation.t -> Fact.t Seq.t
(** Every fact of the relation with stamp [≤ up_to].  Counts as one probe. *)

val mem_up_to : t -> ?up_to:int -> Fact.t -> bool
(** O(1) membership for a ground fact with stamp [≤ up_to] (default: no
    bound) — the cheapest possible probe for a fully bound atom, used so
    activity checks never fall back to relation scans.  Counts as one
    probe. *)

val bucket_size : t -> Relation.t -> pos:int -> Constant.t -> int
(** Size of the (relation, position, constant) bucket — the selectivity
    estimate used to order joins.  Free: not counted as a probe. *)

val rel_size : t -> Relation.t -> int
(** Number of facts of the relation.  Not counted as a probe. *)
