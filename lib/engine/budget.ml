type exhaustion =
  | Rounds
  | Facts
  | Fuel
  | Deadline
  | Memory
  | Cancelled
  | Fault of string

let exhaustion_to_string = function
  | Rounds -> "rounds"
  | Facts -> "facts"
  | Fuel -> "fuel"
  | Deadline -> "deadline"
  | Memory -> "memory"
  | Cancelled -> "cancelled"
  | Fault site -> "fault:" ^ site

let pp_exhaustion ppf r = Fmt.string ppf (exhaustion_to_string r)

module Cancel = struct
  (* Write-once: the first cancellation's reason sticks, so every holder
     reports the same cause no matter how many workers trip concurrently. *)
  type t = exhaustion option Atomic.t

  let create () : t = Atomic.make None

  let cancel ?(reason = Cancelled) (t : t) =
    ignore (Atomic.compare_and_set t None (Some reason))

  let reason (t : t) = Atomic.get t
  let is_cancelled (t : t) = reason t <> None
end

type t = {
  max_rounds : int;
  max_facts : int;
  fuel : int Atomic.t option;
  deadline : float option;
  max_memory_words : int option;
  cancel : Cancel.t;
}

let now () = Unix.gettimeofday ()

let make ?(rounds = 64) ?(facts = 20_000) ?fuel ?timeout_s ?memory_words
    ?cancel () =
  { max_rounds = rounds;
    max_facts = facts;
    fuel = Option.map Atomic.make fuel;
    deadline = Option.map (fun s -> now () +. s) timeout_s;
    max_memory_words = memory_words;
    cancel = (match cancel with Some c -> c | None -> Cancel.create ())
  }

let limits ~rounds ~facts = make ~rounds ~facts ()
let default = limits ~rounds:64 ~facts:20_000
let unlimited = limits ~rounds:max_int ~facts:max_int
let with_rounds b rounds = { b with max_rounds = rounds }
let with_facts b facts = { b with max_facts = facts }
let token b = b.cancel

let trip b reason =
  Cancel.cancel ~reason b.cancel;
  Some reason

let check b =
  match Cancel.reason b.cancel with
  | Some _ as r -> r
  | None -> (
    match b.deadline with
    | Some d when now () > d -> trip b Deadline
    | _ -> (
      match b.max_memory_words with
      | Some w when (Gc.quick_stat ()).Gc.heap_words > w -> trip b Memory
      | _ -> (
        match b.fuel with
        | Some f when Atomic.get f <= 0 -> trip b Fuel
        | _ -> None)))

let cancelled b = Cancel.reason b.cancel

let spend_fuel b n =
  match b.fuel with
  | None -> None
  | Some f -> if Atomic.fetch_and_add f (-n) - n < 0 then trip b Fuel else None

let key b = Fmt.str "r%d/f%d" b.max_rounds b.max_facts

type 'a outcome =
  | Complete of 'a
  | Truncated of {
      reason : exhaustion;
      partial : 'a;
      progress : Stats.t;
    }

let value = function Complete v -> v | Truncated { partial; _ } -> partial

let map f = function
  | Complete v -> Complete (f v)
  | Truncated { reason; partial; progress } ->
    Truncated { reason; partial = f partial; progress }

let is_complete = function Complete _ -> true | Truncated _ -> false

let pp_outcome pp_v ppf = function
  | Complete v -> Fmt.pf ppf "@[complete:@ %a@]" pp_v v
  | Truncated { reason; partial; _ } ->
    Fmt.pf ppf "@[truncated (%a):@ %a@]" pp_exhaustion reason pp_v partial
