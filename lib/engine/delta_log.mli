(** Incremental checkpoints: a full base snapshot plus an append-only chain
    of delta records, with generational compaction and a graceful recovery
    ladder.

    A log named [name] under [dir] occupies three kinds of file:

    - [name.current] — a one-line pointer naming the live generation,
      replaced atomically ([.tmp] + rename);
    - [name.<g>.base] — the full state as of the start of generation [g]:
      a plain-text header (magic, kind, version, generation, payload length,
      CRC-32) followed by one binary payload;
    - [name.<g>.log] — a header line followed by CRC-framed records
      (varint payload length, 4-byte little-endian CRC-32, payload)
      appended at each checkpoint barrier.

    Payloads are opaque byte strings; callers bring their own codecs
    ({!Codec}).  {!compact} folds the chain into a fresh generation's base
    and retires generations beyond [keep] — the bounded replacement for an
    unbounded [.prev] rotation.

    Recovery distinguishes the two ways a chain goes bad.  A record cut off
    by the end of the file is the expected signature of a crash mid-append
    (kill -9, power loss): it is silently dropped and the load still counts
    as clean ({!Resumed} with [torn_bytes > 0]).  A CRC-invalid record with
    more bytes after it means real corruption: the verified prefix is kept,
    the damage is reported as warnings, and the load is {!Resumed_partial}
    — degraded, but never a hard failure while any prefix verifies.  When
    the live generation's base itself is unreadable, older retained
    generations are tried before rejecting.

    Durability: writes are buffered and flushed per record; [fsync]
    additionally syncs the descriptor at every barrier (base writes,
    appends, pointer switches), trading throughput for power-loss safety.
    Kill -9 alone never needs it — the page cache survives the process.

    Counters: base writes bump [Stats.snapshots], appends
    [Stats.delta_records], compactions [Stats.compactions]. *)

type config = {
  dir : string;
  name : string;  (** plain file stem, no path separators *)
  kind : string;  (** payload type tag; mismatches are rejected at load *)
  version : int;
  keep : int;  (** generations retained after compaction (≥ 1) *)
  fsync : bool;
}

val config :
  ?version:int ->
  ?keep:int ->
  ?fsync:bool ->
  dir:string ->
  name:string ->
  kind:string ->
  unit ->
  config
(** [version] defaults to 1, [keep] to 2, [fsync] to false.
    @raise Invalid_argument on a non-filename [name] or [keep < 1]. *)

val current_path : config -> string
val base_path : config -> generation:int -> string
val log_path : config -> generation:int -> string

type error = { path : string; message : string }

val pp_error : error Fmt.t
val error_to_string : error -> string

type chain = {
  generation : int;
  base : string;  (** the base payload, CRC-verified *)
  deltas : string list;  (** verified record payloads, in append order *)
  torn_bytes : int;
      (** bytes of an incomplete final record silently dropped (expected
          after a crash mid-append); [0] when the tail is clean *)
  dropped_records : int;
      (** complete records discarded after a mid-chain corruption *)
  warnings : string list;
      (** human-readable degradations; [[]] iff the load was clean *)
  log_valid_bytes : int;
      (** byte length of the verified log prefix — where appends resume *)
}

type load =
  | Fresh  (** nothing on disk: start from scratch *)
  | Resumed of chain  (** clean chain (a torn tail does not count against) *)
  | Resumed_partial of chain
      (** a verified prefix was recovered, but records were lost to
          mid-chain corruption or the load fell back to an older
          generation; [warnings] says what was dropped *)
  | Rejected of error list
      (** files exist but no generation yields a verifiable base *)

val load : config -> load
(** Never raises on corrupt input.  Tries the generation named by
    [name.current] first, then any other on-disk generations newest
    first. *)

type t
(** An open log handle, appending to one generation. *)

val start : config -> base:string -> t
(** Begin a new generation: write its base atomically, start an empty
    record chain, switch the pointer, and prune generations beyond
    [keep]. *)

val resume : config -> chain -> t
(** Reopen a loaded chain for appending.  The unverified suffix (torn tail
    or corrupt records) is truncated away first, so subsequent appends
    extend the verified prefix. *)

val append : t -> string -> unit
(** Append one CRC-framed delta record and flush it. *)

val compact : t -> base:string -> unit
(** Fold the chain into a fresh generation whose base is [base] (the
    caller's encoding of the current full state), then prune old
    generations.  Equivalent to {!start} on the same handle. *)

val delta_count : t -> int
(** Records appended to the current generation (including loaded ones). *)

val generation : t -> int
val config_of : t -> config

val close : t -> unit

val remove : config -> unit
(** Delete the pointer and every generation's files — call when the
    checkpointed computation completes, so a later run starts {!Fresh}. *)

(** {1 Inspection} — used by [tgdtool checkpoint inspect]. *)

type record_info = {
  r_index : int;
  r_offset : int;  (** byte offset of the frame in the log file *)
  r_bytes : int;  (** payload bytes *)
  r_status : [ `Ok | `Torn | `Corrupt of string ];
}

type generation_info = {
  g_generation : int;
  g_current : bool;  (** named by the pointer file *)
  g_base_path : string;
  g_base_bytes : int;  (** file size; 0 when missing *)
  g_base_status : [ `Ok | `Missing | `Bad of string ];
  g_log_path : string;
  g_log_bytes : int;
  g_records : record_info list;
}

val inspect :
  dir:string -> name:string -> (string * int * int) option * generation_info list
(** All on-disk generations of [name] (newest first) with per-record CRC
    status, plus the pointer's [(kind, version, generation)] when readable.
    Purely observational: no kind/version check, nothing modified. *)

val scan : dir:string -> string list
(** Names of the delta logs under [dir] (stems of [*.current] files and of
    any orphaned [*.N.base]), sorted. *)
