(** Unified resource governance for the chase and the Section 9 sweeps.

    One [Budget.t] carries every limit the engine honours: the classic
    round and fact caps, an optional fuel tank (total trigger firings), an
    optional wall-clock deadline, an approximate memory ceiling, and a
    cooperative cancellation token shared with {!Pool} workers.  Limits are
    checked cooperatively — at chase-round, trigger-batch, and pool-chunk
    granularity — so a tripped budget always leaves a usable prefix of the
    work behind, surfaced as the typed {!type:outcome}.

    {b Determinism.}  Round, fact and fuel caps are functions of the work
    itself, so results truncated by them are reproducible.  Deadline,
    memory and external cancellation depend on the wall clock and the heap;
    runs truncated by them still return a prefix of the same deterministic
    sequence, but {e where} the prefix ends varies run to run.  Caches key
    on the deterministic caps only and store only reproducible results —
    see {!Memo} users. *)

type exhaustion =
  | Rounds           (** round cap reached with active triggers left *)
  | Facts            (** fact cap exceeded *)
  | Fuel             (** fuel tank (total firings) drained *)
  | Deadline         (** wall-clock deadline passed *)
  | Memory           (** approximate heap ceiling exceeded *)
  | Cancelled        (** external cancellation (no more specific reason) *)
  | Fault of string  (** injected fault ({!Chaos}) surfaced at this site *)

val pp_exhaustion : exhaustion Fmt.t
val exhaustion_to_string : exhaustion -> string

(** Cooperative cancellation tokens.  A token is a write-once cell shared
    between the run that owns the budget and any {!Pool} workers serving
    it: the first [cancel] wins, later ones are ignored, and every holder
    observes the flip on its next poll. *)
module Cancel : sig
  type t

  val create : unit -> t

  val cancel : ?reason:exhaustion -> t -> unit
  (** Trip the token.  The default reason is [Cancelled]. *)

  val is_cancelled : t -> bool
  val reason : t -> exhaustion option
end

type t = private {
  max_rounds : int;
  max_facts : int;
  fuel : int Atomic.t option;       (** remaining firings, shared by copies *)
  deadline : float option;          (** absolute time, {!now} scale *)
  max_memory_words : int option;    (** against [Gc.quick_stat].heap_words *)
  cancel : Cancel.t;
}
(** The record is private so a budget cannot be rebuilt with [{ b with … }]
    — that would silently share (and possibly poison) [b]'s token and fuel
    tank.  Use {!make} for a fresh budget, {!with_rounds}/{!with_facts} to
    retune the caps of an existing one {e keeping} its token, fuel and
    deadline (what {!Theory}'s one-round inner steps need). *)

val make :
  ?rounds:int ->
  ?facts:int ->
  ?fuel:int ->
  ?timeout_s:float ->
  ?memory_words:int ->
  ?cancel:Cancel.t ->
  unit ->
  t
(** Fresh budget.  Defaults: [rounds = 64], [facts = 20_000], no fuel, no
    deadline, no memory ceiling, fresh token.  [timeout_s] is relative to
    {!now} at creation time. *)

val limits : rounds:int -> facts:int -> t
(** Caps-only budget ([make ~rounds ~facts ()]) — the PR-2-era knobs. *)

val default : t
(** [limits ~rounds:64 ~facts:20_000]. *)

val unlimited : t
(** No cap trips ([max_int] rounds/facts, nothing else armed). *)

val with_rounds : t -> int -> t
(** Same token, fuel, deadline and ceiling; new round cap. *)

val with_facts : t -> int -> t

val now : unit -> float
(** The clock deadlines are measured against.  Monotonic for the engine's
    purposes: [Unix.gettimeofday], the best the stdlib offers without
    external deps; steps backwards only delay a trip, never corrupt it. *)

val token : t -> Cancel.t

val check : t -> exhaustion option
(** Full cooperative check: cancellation, then deadline, then memory, then
    an empty fuel tank.  A deadline/memory/fuel trip also cancels the
    embedded token, so pool workers polling {!cancelled} stand down
    promptly.  Does {e not} look at rounds/facts — those are counted by the
    loops that own them. *)

val cancelled : t -> exhaustion option
(** Cheap poll of the token only (one atomic read) — no clock, no [Gc].
    Safe at per-item granularity in hot loops. *)

val spend_fuel : t -> int -> exhaustion option
(** Draw [n] units from the fuel tank.  [Some Fuel] (and a token trip) when
    the tank runs dry; [None] when no tank is armed. *)

val key : t -> string
(** Cache-key fragment covering the deterministic caps only ([r64/f20000]).
    Sound for caches that store only reproducible results: deadline, fuel
    and memory can only make a run return {e less} than the caps allow. *)

type 'a outcome =
  | Complete of 'a
  | Truncated of {
      reason : exhaustion;
      partial : 'a;       (** everything finished before the trip *)
      progress : Stats.t; (** work performed up to the trip *)
    }

val value : 'a outcome -> 'a
(** The payload, complete or partial. *)

val map : ('a -> 'b) -> 'a outcome -> 'b outcome
val is_complete : 'a outcome -> bool

val pp_outcome : 'a Fmt.t -> 'a outcome Fmt.t
