(* Generational base + delta-chain checkpoints.  See the .mli for the file
   layout and recovery contract.

   Crash ordering: a new generation is made durable base-first (atomic
   tmp+rename), then its empty log, then the pointer switch — so at any
   instant the pointer names a generation whose base is complete.  A crash
   between the base write and the pointer switch leaves an orphan newer
   generation; the loader prefers the pointer but falls back to on-disk
   generations (newest first), so even that window resumes. *)

type config = {
  dir : string;
  name : string;
  kind : string;
  version : int;
  keep : int;
  fsync : bool;
}

let config ?(version = 1) ?(keep = 2) ?(fsync = false) ~dir ~name ~kind () =
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ()
      | _ -> invalid_arg "Delta_log.config: name must be a plain file stem")
    name;
  if name = "" then invalid_arg "Delta_log.config: empty name";
  if keep < 1 then invalid_arg "Delta_log.config: keep must be >= 1";
  { dir; name; kind; version; keep; fsync }

let ptr_magic = "TGDLOGPTR1"
let base_magic = "TGDBASE1"
let log_magic = "TGDLOG1"

let current_path c = Filename.concat c.dir (c.name ^ ".current")

let base_path c ~generation =
  Filename.concat c.dir (Printf.sprintf "%s.%d.base" c.name generation)

let log_path c ~generation =
  Filename.concat c.dir (Printf.sprintf "%s.%d.log" c.name generation)

type error = { path : string; message : string }

let pp_error ppf e = Fmt.pf ppf "%s: %s" e.path e.message
let error_to_string e = Fmt.str "%a" pp_error e

type chain = {
  generation : int;
  base : string;
  deltas : string list;
  torn_bytes : int;
  dropped_records : int;
  warnings : string list;
  log_valid_bytes : int;
}

type load =
  | Fresh
  | Resumed of chain
  | Resumed_partial of chain
  | Rejected of error list

(* ------------------------------------------------------------------ *)
(* Small file helpers                                                  *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> () (* lost a race: fine *)
  end

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let sync_out c oc =
  flush oc;
  if c.fsync then Unix.fsync (Unix.descr_of_out_channel oc)

(* Atomic whole-file replacement: contents to a .tmp sibling, then rename. *)
let write_atomic c path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc contents;
      sync_out c oc);
  Sys.rename tmp path

(* Generations with a base file on disk, newest first. *)
let gens_on_disk c =
  let prefix = c.name ^ "." and suffix = ".base" in
  let files = try Sys.readdir c.dir with Sys_error _ -> [||] in
  Array.to_list files
  |> List.filter_map (fun f ->
         if
           String.length f > String.length prefix + String.length suffix
           && String.sub f 0 (String.length prefix) = prefix
           && Filename.check_suffix f suffix
         then
           int_of_string_opt
             (String.sub f (String.length prefix)
                (String.length f - String.length prefix - String.length suffix))
         else None)
  |> List.sort_uniq (fun a b -> Int.compare b a)

(* ------------------------------------------------------------------ *)
(* Pointer file                                                        *)
(* ------------------------------------------------------------------ *)

type pointer =
  | P_missing
  | P_ok of string * int * int (* kind, version, generation *)
  | P_bad of error

let read_pointer c =
  let p = current_path c in
  if not (Sys.file_exists p) then P_missing
  else
    match read_file p with
    | exception Sys_error m -> P_bad { path = p; message = m }
    | src -> (
      match String.split_on_char ' ' (String.trim src) with
      | [ magic; kind; version; generation ] when magic = ptr_magic -> (
        match (int_of_string_opt version, int_of_string_opt generation) with
        | Some v, Some g -> P_ok (kind, v, g)
        | _ -> P_bad { path = p; message = "malformed pointer fields" })
      | _ -> P_bad { path = p; message = "not a delta-log pointer" })

let write_pointer c ~generation =
  write_atomic c (current_path c)
    (Printf.sprintf "%s %s %d %d\n" ptr_magic c.kind c.version generation)

(* ------------------------------------------------------------------ *)
(* Base files                                                          *)
(* ------------------------------------------------------------------ *)

let write_base c ~generation base =
  let crc = Wire.crc32 base ~pos:0 ~len:(String.length base) in
  write_atomic c
    (base_path c ~generation)
    (Printf.sprintf "%s\nkind %s\nversion %d\ngeneration %d\nlength %d\ncrc %08x\n\n%s"
       base_magic c.kind c.version generation (String.length base) crc base);
  let g = Stats.global () in
  g.Stats.snapshots <- g.Stats.snapshots + 1

(* Structural parse, no expectations: header fields + CRC-checked payload. *)
let parse_base src =
  let pos = ref 0 in
  let line () =
    match String.index_from_opt src !pos '\n' with
    | None -> Error "truncated header"
    | Some nl ->
      let l = String.sub src !pos (nl - !pos) in
      pos := nl + 1;
      Ok l
  in
  let ( let* ) = Result.bind in
  let field expect =
    let* l = line () in
    match String.index_opt l ' ' with
    | Some i when String.sub l 0 i = expect ->
      Ok (String.sub l (i + 1) (String.length l - i - 1))
    | _ -> Error ("malformed header (expected `" ^ expect ^ " ...`)")
  in
  let int_field expect =
    let* s = field expect in
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error ("header " ^ expect ^ " is not an int")
  in
  let* magic = line () in
  if magic <> base_magic then Error "not a delta-log base (bad magic)"
  else
    let* kind = field "kind" in
    let* version = int_field "version" in
    let* generation = int_field "generation" in
    let* length = int_field "length" in
    let* crc_s = field "crc" in
    let* blank = line () in
    if blank <> "" then Error "missing blank separator"
    else if String.length src - !pos <> length then
      Error
        (Printf.sprintf "truncated payload (%d of %d bytes)"
           (String.length src - !pos) length)
    else
      let crc = Wire.crc32 src ~pos:!pos ~len:length in
      if Printf.sprintf "%08x" crc <> crc_s then Error "payload CRC mismatch"
      else Ok (kind, version, generation, String.sub src !pos length)

let read_base c ~generation =
  let p = base_path c ~generation in
  match read_file p with
  | exception Sys_error m -> Error { path = p; message = m }
  | src -> (
    match parse_base src with
    | Error m -> Error { path = p; message = m }
    | Ok (kind, version, g, payload) ->
      if kind <> c.kind then
        Error
          { path = p;
            message =
              Printf.sprintf "base of kind %S, expected %S" kind c.kind
          }
      else if version <> c.version then
        Error
          { path = p;
            message =
              Printf.sprintf "format version %d, expected %d" version c.version
          }
      else if g <> generation then
        Error
          { path = p;
            message =
              Printf.sprintf "header names generation %d, file is %d" g
                generation
          }
      else Ok payload)

(* ------------------------------------------------------------------ *)
(* Log files: header line + CRC-framed records                         *)
(* ------------------------------------------------------------------ *)

let log_header c ~generation =
  Printf.sprintf "%s %s %d %d\n" log_magic c.kind c.version generation

let frame payload =
  let buf = Buffer.create (String.length payload + 10) in
  Wire.write_varint buf (String.length payload);
  let crc = Wire.crc32 payload ~pos:0 ~len:(String.length payload) in
  Buffer.add_char buf (Char.chr (crc land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 24) land 0xff));
  Buffer.add_string buf payload;
  Buffer.contents buf

type record_info = {
  r_index : int;
  r_offset : int;
  r_bytes : int;
  r_status : [ `Ok | `Torn | `Corrupt of string ];
}

(* One frame at [pos].  [`Torn] = the frame runs past the end of the file
   (the signature of a crash mid-append); [`Bad] = a complete frame whose
   payload fails its CRC; [`Undecodable] = the length prefix itself is
   garbage, so no further framing can be trusted. *)
let read_frame src pos =
  let len = String.length src in
  match
    let r = Wire.reader ~pos ~len:(len - pos) src in
    let plen = Wire.read_varint r in
    (plen, Wire.pos r)
  with
  | exception Wire.Corrupt _ ->
    if len - pos < 10 then `Torn else `Undecodable
  | plen, hpos ->
    if hpos + 4 + plen > len then `Torn
    else
      let stored =
        Char.code src.[hpos]
        lor (Char.code src.[hpos + 1] lsl 8)
        lor (Char.code src.[hpos + 2] lsl 16)
        lor (Char.code src.[hpos + 3] lsl 24)
      in
      let payload_pos = hpos + 4 in
      let crc = Wire.crc32 src ~pos:payload_pos ~len:plen in
      let payload = String.sub src payload_pos plen in
      if crc = stored then `Frame (payload, payload_pos + plen)
      else `Bad (payload_pos + plen, plen)

type log_scan = {
  ls_deltas : string list; (* verified prefix, append order *)
  ls_records : record_info list; (* every frame seen, for inspection *)
  ls_torn : int;
  ls_dropped : int;
  ls_warnings : string list;
  ls_valid : int; (* byte length of the verified prefix (incl. header) *)
}

let empty_scan =
  { ls_deltas = [];
    ls_records = [];
    ls_torn = 0;
    ls_dropped = 0;
    ls_warnings = [];
    ls_valid = 0
  }

(* Count the complete frames following a mid-chain corruption — they are
   individually intact but cannot be kept (the state they extend is gone). *)
let rec count_complete src pos acc =
  if pos >= String.length src then acc
  else
    match read_frame src pos with
    | `Frame (_, next) | `Bad (next, _) -> count_complete src next (acc + 1)
    | `Torn | `Undecodable -> acc

let scan_log path src start =
  let len = String.length src in
  let deltas = ref [] and records = ref [] in
  let torn = ref 0 and dropped = ref 0 in
  let warnings = ref [] in
  let valid = ref start in
  let pos = ref start in
  let idx = ref 0 in
  let stop = ref false in
  while (not !stop) && !pos < len do
    let record status bytes =
      records :=
        { r_index = !idx; r_offset = !pos; r_bytes = bytes; r_status = status }
        :: !records
    in
    (match read_frame src !pos with
    | `Frame (payload, next) ->
      record `Ok (String.length payload);
      deltas := payload :: !deltas;
      valid := next;
      pos := next
    | `Torn ->
      record `Torn (len - !pos);
      torn := len - !pos;
      stop := true
    | `Bad (next, bytes) when next >= len ->
      (* a CRC-bad final record is a torn tail too: the partial write hit
         the payload instead of the frame boundary *)
      record `Torn bytes;
      torn := len - !pos;
      stop := true
    | `Bad (next, bytes) ->
      record (`Corrupt "payload CRC mismatch") bytes;
      dropped := 1 + count_complete src next 0;
      warnings :=
        Printf.sprintf
          "%s: record %d (offset %d) failed its CRC; dropped it and %d \
           record(s) after it, resuming from the last good prefix"
          path !idx !pos (!dropped - 1)
        :: !warnings;
      stop := true
    | `Undecodable ->
      record (`Corrupt "unreadable record length") (len - !pos);
      dropped := 1;
      warnings :=
        Printf.sprintf
          "%s: record %d (offset %d) has an unreadable length prefix; \
           dropped the rest of the chain (%d bytes)"
          path !idx !pos (len - !pos)
        :: !warnings;
      stop := true);
    incr idx
  done;
  { ls_deltas = List.rev !deltas;
    ls_records = List.rev !records;
    ls_torn = !torn;
    ls_dropped = !dropped;
    ls_warnings = List.rev !warnings;
    ls_valid = !valid
  }

(* [ls_valid = 0] signals "no usable header": {!resume} recreates the file. *)
let read_log c ~generation =
  let p = log_path c ~generation in
  match read_file p with
  | exception Sys_error _ ->
    (* a base without a log is the crash window between the base write and
       the log create — an empty chain, not an error *)
    empty_scan
  | src -> (
    let expected = log_header c ~generation in
    let hlen = String.length expected in
    if String.length src >= hlen && String.sub src 0 hlen = expected then
      scan_log p src hlen
    else
      { empty_scan with
        ls_warnings =
          [ Printf.sprintf
              "%s: log header unreadable; dropped the whole chain (%d bytes)"
              p (String.length src)
          ]
      })

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let load_generation c ~generation ~extra_warnings =
  match read_base c ~generation with
  | Error e -> Error e
  | Ok base ->
    let scan = read_log c ~generation in
    Ok
      { generation;
        base;
        deltas = scan.ls_deltas;
        torn_bytes = scan.ls_torn;
        dropped_records = scan.ls_dropped;
        warnings = extra_warnings @ scan.ls_warnings;
        log_valid_bytes = scan.ls_valid
      }

let load c =
  let pointer = read_pointer c in
  let disk = gens_on_disk c in
  let pointer_gen, pointer_warnings =
    match pointer with
    | P_missing -> (None, [])
    | P_bad e -> (None, [ Printf.sprintf "%s: %s" e.path e.message ])
    | P_ok (kind, version, g) ->
      if kind <> c.kind || version <> c.version then
        ( None,
          [ Printf.sprintf
              "%s: pointer names kind %S version %d, expected %S version %d"
              (current_path c) kind version c.kind c.version
          ] )
      else (Some g, [])
  in
  let candidates =
    match pointer_gen with
    | Some g -> g :: List.filter (fun g' -> g' <> g) disk
    | None -> disk
  in
  if candidates = [] then
    if pointer = P_missing then Fresh
    else
      Rejected
        [ { path = current_path c;
            message =
              (match pointer_warnings with
              | m :: _ -> m
              | [] -> "pointer names a generation with no files on disk")
          }
        ]
  else begin
    let errors = ref [] in
    let rec try_gens first = function
      | [] -> Rejected (List.rev !errors)
      | g :: rest ->
        let fallback_warnings =
          if first then pointer_warnings
          else
            pointer_warnings
            @ List.rev_map
                (fun e -> Printf.sprintf "%s: %s" e.path e.message)
                !errors
            @ [ Printf.sprintf
                  "fell back to generation %d (newer generations unreadable)"
                  g
              ]
        in
        (match load_generation c ~generation:g ~extra_warnings:fallback_warnings with
        | Error e ->
          errors := e :: !errors;
          try_gens false rest
        | Ok chain ->
          if chain.warnings = [] then Resumed chain else Resumed_partial chain)
    in
    try_gens true candidates
  end

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  cfg : config;
  mutable gen : int;
  mutable oc : out_channel option;
  mutable count : int;
}

let prune c ~newest =
  List.iter
    (fun g ->
      if g <= newest - c.keep then
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ base_path c ~generation:g; log_path c ~generation:g ])
    (gens_on_disk c)

let open_generation c ~generation ~base =
  mkdir_p c.dir;
  write_base c ~generation base;
  let oc = open_out_bin (log_path c ~generation) in
  output_string oc (log_header c ~generation);
  sync_out c oc;
  write_pointer c ~generation;
  prune c ~newest:generation;
  oc

let start c ~base =
  mkdir_p c.dir;
  let newest =
    List.fold_left max
      (match read_pointer c with P_ok (_, _, g) -> g | _ -> 0)
      (gens_on_disk c)
  in
  let generation = newest + 1 in
  let oc = open_generation c ~generation ~base in
  { cfg = c; gen = generation; oc = Some oc; count = 0 }

let resume c chain =
  let p = log_path c ~generation:chain.generation in
  let oc =
    if chain.log_valid_bytes = 0 then begin
      (* missing log or unusable header: recreate it fresh *)
      mkdir_p c.dir;
      let oc = open_out_bin p in
      output_string oc (log_header c ~generation:chain.generation);
      sync_out c oc;
      oc
    end
    else begin
      (* drop the unverified suffix so appends extend the good prefix *)
      (try Unix.truncate p chain.log_valid_bytes
       with Unix.Unix_error _ -> ());
      open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 p
    end
  in
  (* make a generation fallback durable: later loads go straight there *)
  (match read_pointer c with
  | P_ok (k, v, g) when k = c.kind && v = c.version && g = chain.generation ->
    ()
  | _ -> write_pointer c ~generation:chain.generation);
  { cfg = c; gen = chain.generation; oc = Some oc; count = List.length chain.deltas }

let channel t =
  match t.oc with
  | Some oc -> oc
  | None -> invalid_arg "Delta_log: handle is closed"

let append t payload =
  let oc = channel t in
  output_string oc (frame payload);
  sync_out t.cfg oc;
  t.count <- t.count + 1;
  let g = Stats.global () in
  g.Stats.delta_records <- g.Stats.delta_records + 1

let compact t ~base =
  ignore (channel t);
  Option.iter close_out_noerr t.oc;
  let generation = t.gen + 1 in
  let oc = open_generation t.cfg ~generation ~base in
  t.gen <- generation;
  t.count <- 0;
  t.oc <- Some oc;
  let g = Stats.global () in
  g.Stats.compactions <- g.Stats.compactions + 1

let delta_count t = t.count
let generation t = t.gen
let config_of t = t.cfg

let close t =
  Option.iter close_out_noerr t.oc;
  t.oc <- None

let remove c =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    (current_path c :: (current_path c ^ ".tmp")
    :: List.concat_map
         (fun g ->
           [ base_path c ~generation:g;
             base_path c ~generation:g ^ ".tmp";
             log_path c ~generation:g
           ])
         (gens_on_disk c))

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

type generation_info = {
  g_generation : int;
  g_current : bool;
  g_base_path : string;
  g_base_bytes : int;
  g_base_status : [ `Ok | `Missing | `Bad of string ];
  g_log_path : string;
  g_log_bytes : int;
  g_records : record_info list;
}

let file_size p = try (Unix.stat p).Unix.st_size with Unix.Unix_error _ -> 0

let inspect ~dir ~name =
  (* a lenient config: paths only, no kind/version expectations *)
  let c = { dir; name; kind = ""; version = 0; keep = 1; fsync = false } in
  let pointer =
    match read_pointer c with P_ok (k, v, g) -> Some (k, v, g) | _ -> None
  in
  let disk = gens_on_disk c in
  let gens =
    match pointer with
    | Some (_, _, g) when not (List.mem g disk) ->
      List.sort (fun a b -> Int.compare b a) (g :: disk)
    | _ -> disk
  in
  let info g =
    let bp = base_path c ~generation:g and lp = log_path c ~generation:g in
    let base_status =
      if not (Sys.file_exists bp) then `Missing
      else
        match read_file bp with
        | exception Sys_error m -> `Bad m
        | src -> (
          match parse_base src with
          | Error m -> `Bad m
          | Ok (_, _, hg, _) when hg <> g ->
            `Bad (Printf.sprintf "header names generation %d" hg)
          | Ok _ -> `Ok)
    in
    let records =
      match read_file lp with
      | exception Sys_error _ -> []
      | src ->
        (* skip the header line, whatever its fields say *)
        let start =
          match String.index_opt src '\n' with
          | Some nl
            when String.length src >= String.length log_magic
                 && String.sub src 0 (String.length log_magic) = log_magic ->
            nl + 1
          | _ -> 0
        in
        (scan_log lp src start).ls_records
    in
    { g_generation = g;
      g_current =
        (match pointer with Some (_, _, pg) -> pg = g | None -> false);
      g_base_path = bp;
      g_base_bytes = file_size bp;
      g_base_status = base_status;
      g_log_path = lp;
      g_log_bytes = file_size lp;
      g_records = records
    }
  in
  (pointer, List.map info gens)

let scan ~dir =
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.to_list files
  |> List.filter_map (fun f ->
         if Filename.check_suffix f ".current" then
           Some (Filename.chop_suffix f ".current")
         else if Filename.check_suffix f ".base" then
           (* strip ".<gen>.base" *)
           let stem = Filename.chop_suffix f ".base" in
           match String.rindex_opt stem '.' with
           | Some i
             when i < String.length stem - 1
                  && int_of_string_opt
                       (String.sub stem (i + 1) (String.length stem - i - 1))
                     <> None -> Some (String.sub stem 0 i)
           | _ -> None
         else None)
  |> List.sort_uniq String.compare
