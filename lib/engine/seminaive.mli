(** Indexed semi-naive saturation.

    A delta-driven replacement for the snapshot-rescan chase loop: round 1
    enumerates every body homomorphism against the input facts; round [r > 1]
    only enumerates triggers whose body touches at least one fact derived in
    round [r-1], by pivoting each body atom through the delta and matching
    the remaining atoms against stamped index lookups (atoms left of the
    pivot see only rounds [≤ r-2], atoms right of it rounds [≤ r-1] — the
    classic stratification, so no trigger is enumerated twice).

    The restricted / oblivious semantics of [Chase] are preserved exactly:

    - [Restricted] rechecks trigger activity against the {e live} instance
      immediately before firing (activity is antitone in the instance, so
      skipping re-enumeration of old triggers loses nothing);
    - [Oblivious] fires every trigger exactly once, identified by the same
      (tgd, universal-variable binding) key as [Trigger.key];
    - [Skolem] is the semi-oblivious chase: triggers are identified by the
      (tgd, {e frontier} binding) key instead, so two body homomorphisms
      agreeing on the frontier fire once between them.  The invented nulls
      then stand in bijection with the Skolem terms
      [f_{σ,z}(frontier values)] of the Skolemized rule set — this is the
      mode the critical-instance termination analysis
      ({!Tgd_analysis}'s MFA pass) drives.

    Joins are ordered dynamically by index selectivity: at each step the
    engine matches the pending atom whose tightest (relation, position,
    constant) bucket is smallest. *)

open Tgd_syntax
open Tgd_instance

type mode =
  | Restricted
  | Oblivious
  | Skolem

exception Halt
(** An [on_fire] callback may raise [Halt] to stop the saturation
    immediately and cooperatively: the facts of the halting trigger are not
    added, the run returns [Truncated Cancelled] with the instance as of
    the last committed round plus the facts fired earlier in the current
    round.  Used by analyses that drive the chase as an instrument and can
    reach a verdict before saturation (e.g. cyclic-Skolem-term
    detection). *)

type outcome =
  | Terminated
  | Truncated of Budget.exhaustion

type result = {
  instance : Instance.t;
  outcome : outcome;
  rounds : int;
  fired : int;
  stats : Stats.t;
}

val run :
  mode:mode ->
  ?budget:Budget.t ->
  ?on_fire:(Tgd.t -> Binding.t -> Fact.t list -> unit) ->
  ?on_commit:(round:int -> Fact.t list -> unit) ->
  ?pool:Pool.t ->
  ?chunk:int ->
  Tgd.t list ->
  Instance.t ->
  result
(** [run ~mode sigma inst] saturates [inst] under [sigma] within [budget]
    (default {!Budget.default}).  [on_fire] observes every fired trigger —
    the tgd, its body homomorphism ({e before} null invention, as in
    [Chase]), and the grounded head facts (new or not).  [on_commit]
    observes every round barrier that commits: the round number and the
    flat delta {!Fact_index.commit} returned (exactly the facts added to
    the instance this round, in insertion order — deterministic across
    [jobs]/[chunk]); rounds discarded by a match-phase trip or an injected
    fault are {e not} reported, matching the truncation commit rule below.
    This is the hook incremental checkpoints ({!Delta_log}) are written
    from.  When [pool] is
    given, each round's match phase runs its per-(tgd, pivot) tasks on the
    pool's worker domains ([chunk] tasks per claim, see
    {!Pool.parallel_map}); results and all counters are merged in task
    order, so the outcome, trigger order, and stats totals are identical to
    the sequential run.  The fire phase is always sequential; each round
    ends with a {!Fact_index.commit} barrier merging the round's delta into
    the base layer (timed in [Stats.merge_time]).

    Budget checks are cooperative: the full check (clock, memory, fuel)
    runs at every round boundary, every 16th trigger of the fire phase, and
    strided inside match tasks; the cancellation token is polled per match
    item.  The truncation commit rule keeps partial results deterministic
    across [jobs]: a trip during the {e match} phase discards that round's
    triggers entirely (the partial instance is the last fully committed
    round), while a trip during the always-sequential {e fire} phase keeps
    the facts fired so far — in both cases the partial instance is a prefix
    of the same deterministic chase sequence.  Injected faults
    ({!Chaos.Injected}) are caught at this boundary and surface as
    [Truncated (Fault site)].  The result's [stats] are also folded into
    the calling domain's {!Stats.global} accumulator. *)
