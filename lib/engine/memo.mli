(** Entailment caches keyed on canonicalized syntax.

    A memo table maps string keys to previously computed answers; the keys
    are built so that renaming-equivalent inputs collide:

    - {!tgd_key} is the printed {!Canonical.tgd} form (so [σ] and any
      variable-renamed copy share one entry);
    - {!sigma_key} sorts the member keys, making the theory key independent
      of the order tgds are listed in;
    - {!body_key} canonicalizes a conjunction of atoms on its own — the
      chase-level cache uses it so that candidate tgds sharing a body also
      share one chase.

    Canonicalization minimizes over atom permutations and is therefore
    factorial in the atom count; above {!val:exact_limit} atoms the keys fall
    back to a deterministic sorted printed form.  The fallback is sound — it
    only distinguishes some inputs that the exact form would identify,
    reducing the hit rate, never the correctness.

    Hits and misses are counted on the table's own {!Stats.t} {e and} on
    the calling domain's {!Stats.global} accumulator.

    Tables are sharded {!shard_count} ways by key hash, each shard behind
    its own mutex, so concurrent lookups from {!Pool} workers share one
    cache safely.  [compute] callbacks run outside any lock: two domains
    racing on the same fresh key may both compute (one insert is dropped),
    trading a little duplicated work for deadlock freedom. *)

open Tgd_syntax

type 'a t

val create : ?name:string -> unit -> 'a t
val name : 'a t -> string

val shard_count : int
(** Number of lock-protected shards per table. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add memo key compute] returns the cached answer for [key],
    computing and storing it on first use. *)

val find : 'a t -> string -> 'a option
(** Lookup without computing; counts a hit or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Store without computing or counting; an existing entry wins (same
    last-writer-loses rule as racing [find_or_add] computes).  Paired with
    {!find} by callers that cache conditionally — e.g. only results whose
    truncation is deterministic (see {!Budget}). *)

val clear : 'a t -> unit
val size : 'a t -> int

val set_limit : 'a t -> bytes:int option -> unit
(** Install (or with [None] remove) an approximate byte ceiling on the
    table, split evenly across shards (at least 4 KiB per shard).  With a
    ceiling installed, every insert weighs its value
    ([Obj.reachable_words], so shared substructure is {e over}counted —
    eviction can only fire early, never late) and a shard over its share
    evicts least-recently-used entries down to 7/8 of it; the newest entry
    always survives.  Changing the limit resets the table: footprints
    recorded under the previous regime would be stale. *)

val approx_bytes : 'a t -> int
(** Accounted footprint of the live entries; 0 while no ceiling is
    installed (weighing is skipped entirely on the unlimited path). *)

val evictions : 'a t -> int
(** Entries dropped by the LRU sweep since creation / last limit change. *)

val stats : 'a t -> Stats.t
(** Snapshot of the table's hit/miss counters, merged across shards. *)

type counters = {
  hits : int;
  misses : int;
  entries : int;
  bytes : int;    (** accounted footprint; 0 without a ceiling *)
  evicted : int;
}
(** Flat summary of one table's cache state, cheap to surface in a serve
    response. *)

val zero_counters : counters
val combine_counters : counters -> counters -> counters
val counters : 'a t -> counters

val exact_limit : int
(** Maximum atom count (body + head for tgds) for exact canonical keys. *)

val tgd_key : Tgd.t -> string
(** Stable under variable renaming and atom reordering (below
    {!exact_limit}); results are cached per tgd. *)

val sigma_key : Tgd.t list -> string
(** Stable under renaming, reordering and duplication of the theory's
    members. *)

val body_key : Atom.t list -> string
(** Canonical key for a conjunction of atoms, stable under variable renaming
    and atom reordering (below {!exact_limit}). *)

val body_canonical : Atom.t list -> Atom.t list * Variable.t Variable.Map.t
(** The canonical conjunction together with the renaming from the original
    variables to the canonical ones, so a cached artifact built from the
    canonical atoms (e.g. a frozen chase) can be translated back to any
    conjunction sharing the same {!body_key}.  Above {!exact_limit} the
    atoms are returned sorted by printed form under the identity renaming —
    consistent with {!body_key}'s fallback. *)
