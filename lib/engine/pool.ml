(* A chunk-claiming domain pool built on Domain + Mutex/Condition only.

   Workers block on [nonempty] and claim chunk tasks from a shared queue —
   dynamic claiming is what balances load when per-item cost varies by
   orders of magnitude (a candidate whose chase terminates in one round vs
   one that exhausts the budget).  Each chunk task snapshots the worker
   domain's [Stats.global] before running and folds the delta into the
   batch accumulator, which the submitting domain merges into its own
   global when the batch joins — so counter attribution is exact and
   race-free without a single atomic counter in the hot path. *)

type task = unit -> unit

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closing do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.queue && pool.closing then Mutex.unlock pool.mutex
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    { jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = []
    }
  in
  pool.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closing <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

type batch = {
  bmutex : Mutex.t;
  finished : Condition.t;
  mutable remaining : int;  (* chunk tasks not yet completed *)
  mutable failure : exn option;
  acc : Stats.t;            (* worker Stats.global deltas, merged on join *)
}

let default_chunk ~jobs n = max 1 (min 32 (n / (8 * jobs)))

let submit pool tasks =
  Mutex.lock pool.mutex;
  List.iter (fun t -> Queue.push t pool.queue) tasks;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex

let join_batch batch =
  Mutex.lock batch.bmutex;
  while batch.remaining > 0 do
    Condition.wait batch.finished batch.bmutex
  done;
  Mutex.unlock batch.bmutex;
  (* fold the workers' counters into the submitting domain's accumulator *)
  Stats.add ~into:(Stats.global ()) batch.acc;
  match batch.failure with Some e -> raise e | None -> ()

(* Wrap [body], which processes one chunk, with stats harvesting and batch
   completion signalling.  [Chaos.step] sits inside the try: an injected
   fault is recorded as the batch failure and re-raised at the join, the
   same path any chunk exception takes — the batch still drains. *)
let chunk_task batch body () =
  let before = Stats.copy (Stats.global ()) in
  let outcome =
    try
      Chaos.step ~site:"pool.chunk";
      Ok (body ())
    with e -> Error e
  in
  let delta = Stats.diff (Stats.copy (Stats.global ())) before in
  Mutex.lock batch.bmutex;
  Stats.add ~into:batch.acc delta;
  (match outcome with
  | Ok () -> ()
  | Error e -> if batch.failure = None then batch.failure <- Some e);
  batch.remaining <- batch.remaining - 1;
  if batch.remaining = 0 then Condition.broadcast batch.finished;
  Mutex.unlock batch.bmutex

let run_chunked pool ?chunk ~n body =
  let chunk =
    match chunk with
    | Some c when c >= 1 -> c
    | Some _ -> invalid_arg "Pool: chunk must be >= 1"
    | None -> default_chunk ~jobs:pool.jobs n
  in
  let nchunks = (n + chunk - 1) / chunk in
  let batch =
    { bmutex = Mutex.create ();
      finished = Condition.create ();
      remaining = nchunks;
      failure = None;
      acc = Stats.create ()
    }
  in
  let tasks =
    List.init nchunks (fun ci ->
        let lo = ci * chunk in
        let hi = min n (lo + chunk) in
        chunk_task batch (fun () -> body ~lo ~hi))
  in
  submit pool tasks;
  join_batch batch

(* Between-item cancellation poll: one atomic read per item.  A tripped
   token makes every worker abandon the rest of its chunk; the batch still
   drains and joins normally, so a cancelled call returns (with whatever
   items were processed) instead of hanging. *)
let stopped cancel =
  match cancel with
  | Some c -> Budget.Cancel.is_cancelled c
  | None -> false

let parallel_filter_map pool ?chunk ?cancel f seq =
  let items = Array.of_seq seq in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let slots = Array.make n None in
    run_chunked pool ?chunk ~n (fun ~lo ~hi ->
        let i = ref lo in
        while !i < hi && not (stopped cancel) do
          slots.(!i) <- f items.(!i);
          incr i
        done);
    (* slots writes happen-before the join via the batch mutex *)
    Array.to_seq slots |> Seq.filter_map Fun.id |> List.of_seq
  end

let parallel_map pool ?chunk ?cancel f seq =
  parallel_filter_map pool ?chunk ?cancel (fun x -> Some (f x)) seq

let parallel_find_map pool ?chunk ?cancel f seq =
  let items = Array.of_seq seq in
  let n = Array.length items in
  if n = 0 then None
  else begin
    let slots = Array.make n None in
    (* Smallest item index with a hit so far.  An item may be skipped only
       when a strictly earlier hit already exists — that hit dominates
       whatever the item could produce, so the returned hit is always the
       first in input order, independent of scheduling. *)
    let best = Atomic.make max_int in
    let rec lower_best i =
      let cur = Atomic.get best in
      if i < cur && not (Atomic.compare_and_set best cur i) then lower_best i
    in
    run_chunked pool ?chunk ~n (fun ~lo ~hi ->
        let i = ref lo in
        let stop = ref false in
        while (not !stop) && !i < hi do
          if Atomic.get best < !i || stopped cancel then stop := true
          else begin
            (match f items.(!i) with
            | Some _ as hit ->
              slots.(!i) <- hit;
              lower_best !i;
              stop := true
            | None -> ());
            incr i
          end
        done);
    match Atomic.get best with
    | i when i = max_int -> None
    | i -> slots.(i)
  end
