(* A supervised chunk-claiming domain pool built on Domain + Mutex/Condition.

   Workers block on [nonempty] and claim chunk execs from a shared queue —
   dynamic claiming is what balances load when per-item cost varies by
   orders of magnitude (a candidate whose chase terminates in one round vs
   one that exhausts the budget).  Each chunk snapshots the worker domain's
   [Stats.global] before running and folds the delta into the batch
   accumulator, which the submitting domain merges into its own global when
   the batch joins — so counter attribution is exact and race-free without
   a single atomic counter in the hot path.

   Supervision.  A monitor domain ticks the {!Supervisor} state machine:
   a worker that dies after claiming a chunk (simulated by [Chaos.step] at
   site [pool.worker]) requeues its untouched chunk and returns, and the
   monitor spawns a replacement after capped exponential backoff — the
   batch completes with the correct result despite the deaths.  A worker
   busy longer than the (opt-in) wedge timeout is presumed stuck: its
   in-flight chunk is abandoned with [Chaos.Injected "pool.wedged#<slot>"]
   (failing the batch through the normal typed-fault path) and the slot is
   respawned under a fresh generation; the stale domain recognises its
   generation on wake-up and exits without touching anything.  Once total
   respawns exhaust the policy's budget the circuit breaker trips: the
   monitor rescue-drains whatever is queued (running it inline, so no join
   can hang waiting for workers that will not come back) and subsequent
   batches execute sequentially in the submitting domain.

   Exactly-once chunks.  Both the worker's completion and the monitor's
   abandonment commit through one compare-and-set per exec, so a chunk
   decrements its batch exactly once — a stale worker that finishes after
   its chunk was abandoned simply loses the race and discards.

   Shutdown joins only domains the supervisor vouches for: live workers
   (they exit on [closing]) and self-died workers (already returned).
   Wedged zombies are skipped — they exit on their own when they wake up
   stale, and the process does not wait for them. *)

type exec = {
  run : unit -> unit;       (* chunk body + exactly-once commit *)
  abandon : exn -> unit;    (* exactly-once failure commit, no body *)
  owner : int;              (* slot the round-robin split aimed this chunk at *)
  steal : unit -> unit;     (* claimed off its intended slot: count it *)
}

type counters = {
  batches : int;
  chunks : int;
  chunks_stolen : int;
  chunk_items : int;
  merge_time_s : float;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : exec Queue.t;
  sup : Supervisor.t;
  current : exec option array;           (* per slot: exec in flight *)
  domains : unit Domain.t option array;  (* per slot: current-gen handle *)
  joinable : bool array;                 (* false = wedged zombie, skip *)
  mutable reported_restarts : int;       (* folded into Stats so far *)
  (* cumulative chunk accounting, guarded by [mutex]; surfaced by the
     serving layer's [stats] op via {!counters} *)
  mutable c_batches : int;
  mutable c_chunks : int;
  mutable c_stolen : int;
  mutable c_items : int;
  mutable c_merge_s : float;
  mutable closing : bool;
  mutable shut : bool;
  mutable monitor : unit Domain.t option;
}

let now () = Unix.gettimeofday ()

(* True on pool worker domains: a nested batch operation started from
   inside a chunk must not submit to (and join on) the pool that is
   running it — {!with_warm} checks this and degrades to the sequential
   path instead of deadlocking. *)
let on_worker_key = Domain.DLS.new_key (fun () -> false)

let rec worker_loop pool slot gen =
  Mutex.lock pool.mutex;
  while
    Queue.is_empty pool.queue
    && (not pool.closing)
    && Supervisor.generation pool.sup slot = gen
  do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Supervisor.generation pool.sup slot <> gen || Queue.is_empty pool.queue
  then Mutex.unlock pool.mutex (* stale or closing: exit *)
  else begin
    let exec = Queue.pop pool.queue in
    Supervisor.note_busy pool.sup slot ~now:(now ());
    pool.current.(slot) <- Some exec;
    Mutex.unlock pool.mutex;
    if exec.owner >= 0 && exec.owner <> slot then exec.steal ();
    match Chaos.step ~site:"pool.worker" with
    | () ->
      exec.run ();
      Mutex.lock pool.mutex;
      let live = Supervisor.generation pool.sup slot = gen in
      if live then begin
        pool.current.(slot) <- None;
        Supervisor.note_idle pool.sup slot
      end;
      Mutex.unlock pool.mutex;
      (* a stale worker was wedge-abandoned while running: its commit lost
         the CAS above, and the slot now belongs to a newer generation *)
      if live then worker_loop pool slot gen
    | exception Chaos.Injected _ ->
      (* simulated worker crash after claiming: the body never ran, so
         requeue the untouched exec for a surviving or respawned worker,
         record the death, and let the domain return (joinable) *)
      Mutex.lock pool.mutex;
      if Supervisor.generation pool.sup slot = gen then begin
        pool.current.(slot) <- None;
        Queue.push exec pool.queue;
        Condition.broadcast pool.nonempty;
        Supervisor.note_death pool.sup slot ~now:(now ())
      end;
      Mutex.unlock pool.mutex
  end

let rec monitor_loop pool =
  Unix.sleepf (Supervisor.policy pool.sup).Supervisor.tick_s;
  Mutex.lock pool.mutex;
  if pool.closing then Mutex.unlock pool.mutex
  else begin
    let actions = Supervisor.decide pool.sup ~now:(now ()) in
    List.iter
      (fun action ->
        match (action : Supervisor.action) with
        | Abandon slot -> (
          match pool.current.(slot) with
          | None -> () (* raced: the worker finished before this tick *)
          | Some exec ->
            pool.current.(slot) <- None;
            pool.joinable.(slot) <- false; (* zombie: exits stale, unjoined *)
            pool.domains.(slot) <- None;
            Supervisor.note_wedged pool.sup slot ~now:(now ());
            exec.abandon
              (Chaos.Injected (Printf.sprintf "pool.wedged#%d" slot)))
        | Respawn slot ->
          (* reap the dead worker's returned domain, then replace it *)
          (match pool.domains.(slot) with
          | Some d when pool.joinable.(slot) -> Domain.join d
          | _ -> ());
          let gen = Supervisor.note_spawned pool.sup slot in
          pool.joinable.(slot) <- true;
          pool.domains.(slot) <-
            Some
              (Domain.spawn (fun () ->
                   Domain.DLS.set on_worker_key true;
                   worker_loop pool slot gen))
        | Trip_breaker -> Supervisor.trip pool.sup)
      actions;
    let rescued = ref [] in
    if Supervisor.tripped pool.sup then
      (* degraded mode: pull queued chunks and run them here, sequentially,
         so no join waits on workers that will not come back *)
      while not (Queue.is_empty pool.queue) do
        rescued := Queue.pop pool.queue :: !rescued
      done;
    Mutex.unlock pool.mutex;
    List.iter (fun exec -> exec.run ()) (List.rev !rescued);
    monitor_loop pool
  end

let create ?(policy = Supervisor.default_policy) ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    { jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      sup = Supervisor.create policy ~slots:jobs;
      current = Array.make jobs None;
      domains = Array.make jobs None;
      joinable = Array.make jobs true;
      reported_restarts = 0;
      c_batches = 0;
      c_chunks = 0;
      c_stolen = 0;
      c_items = 0;
      c_merge_s = 0.;
      closing = false;
      shut = false;
      monitor = None
    }
  in
  for slot = 0 to jobs - 1 do
    pool.domains.(slot) <-
      Some
        (Domain.spawn (fun () ->
             Domain.DLS.set on_worker_key true;
             worker_loop pool slot 0))
  done;
  pool.monitor <- Some (Domain.spawn (fun () -> monitor_loop pool));
  pool

let jobs pool = pool.jobs

let health pool =
  Mutex.lock pool.mutex;
  let h = Supervisor.health pool.sup in
  Mutex.unlock pool.mutex;
  h

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.shut then Mutex.unlock pool.mutex
  else begin
    pool.shut <- true;
    pool.closing <- true;
    Condition.broadcast pool.nonempty;
    (* join only domains that will return: live workers exit on [closing],
       self-died workers already returned; wedged zombies are skipped *)
    let to_join =
      List.filter_map Fun.id
        (List.mapi
           (fun slot d -> if pool.joinable.(slot) then d else None)
           (Array.to_list pool.domains))
    in
    let monitor = pool.monitor in
    pool.monitor <- None;
    Array.fill pool.domains 0 (Array.length pool.domains) None;
    Mutex.unlock pool.mutex;
    List.iter Domain.join to_join;
    Option.iter Domain.join monitor
  end

let with_pool ?policy ~jobs f =
  let pool = create ?policy ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ------------------------------------------------------------------ *)
(* Batches                                                             *)
(* ------------------------------------------------------------------ *)

type batch = {
  bmutex : Mutex.t;
  finished : Condition.t;
  mutable remaining : int;  (* chunk execs not yet committed *)
  mutable failure : exn option;
  acc : Stats.t;            (* worker Stats.global deltas, merged on join *)
  stolen : int Atomic.t;    (* chunks claimed off their intended slot *)
  nchunks : int;
  nitems : int;
}

let default_chunk ~jobs n = max 1 (min 32 (n / (8 * jobs)))

let submit pool execs =
  Mutex.lock pool.mutex;
  List.iter (fun e -> Queue.push e pool.queue) execs;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex

let join_batch pool batch =
  Mutex.lock batch.bmutex;
  while batch.remaining > 0 do
    Condition.wait batch.finished batch.bmutex
  done;
  Mutex.unlock batch.bmutex;
  let t0 = now () in
  (* fold the workers' counters into the submitting domain's accumulator *)
  let g = Stats.global () in
  Stats.add ~into:g batch.acc;
  let stolen = Atomic.get batch.stolen in
  g.Stats.chunks <- g.Stats.chunks + batch.nchunks;
  g.Stats.chunks_stolen <- g.Stats.chunks_stolen + stolen;
  g.Stats.chunk_items <- g.Stats.chunk_items + batch.nitems;
  (* and surface supervision activity since the last join *)
  Mutex.lock pool.mutex;
  let h = Supervisor.health pool.sup in
  let fresh = h.Supervisor.restarts - pool.reported_restarts in
  pool.reported_restarts <- h.Supervisor.restarts;
  let merge_s = now () -. t0 in
  pool.c_batches <- pool.c_batches + 1;
  pool.c_chunks <- pool.c_chunks + batch.nchunks;
  pool.c_stolen <- pool.c_stolen + stolen;
  pool.c_items <- pool.c_items + batch.nitems;
  pool.c_merge_s <- pool.c_merge_s +. merge_s;
  Mutex.unlock pool.mutex;
  g.Stats.merge_time <- g.Stats.merge_time +. merge_s;
  if fresh > 0 then g.Stats.restarts <- g.Stats.restarts + fresh;
  match batch.failure with Some e -> raise e | None -> ()

let counters pool =
  Mutex.lock pool.mutex;
  let c =
    { batches = pool.c_batches;
      chunks = pool.c_chunks;
      chunks_stolen = pool.c_stolen;
      chunk_items = pool.c_items;
      merge_time_s = pool.c_merge_s
    }
  in
  Mutex.unlock pool.mutex;
  c

(* Wrap [body], which processes one chunk, as an exec whose completion —
   worker success, worker-caught exception, or monitor abandonment —
   commits exactly once through [committed].  [Chaos.step] at [pool.chunk]
   sits inside the try: an injected fault there is recorded as the batch
   failure and re-raised at the join, the same path any chunk exception
   takes — the batch still drains. *)
let make_exec batch ~owner body =
  let committed = Atomic.make false in
  let commit outcome delta =
    if Atomic.compare_and_set committed false true then begin
      Mutex.lock batch.bmutex;
      Stats.add ~into:batch.acc delta;
      (match outcome with
      | Ok () -> ()
      | Error e -> if batch.failure = None then batch.failure <- Some e);
      batch.remaining <- batch.remaining - 1;
      if batch.remaining = 0 then Condition.broadcast batch.finished;
      Mutex.unlock batch.bmutex
    end
  in
  let run () =
    let before = Stats.copy (Stats.global ()) in
    let outcome =
      try
        Chaos.step ~site:"pool.chunk";
        Ok (body ())
      with e -> Error e
    in
    let delta = Stats.diff (Stats.copy (Stats.global ())) before in
    commit outcome delta
  in
  let abandon e = commit (Error e) (Stats.create ()) in
  { run; abandon; owner; steal = (fun () -> Atomic.incr batch.stolen) }

let degraded pool =
  Mutex.lock pool.mutex;
  let d = Supervisor.tripped pool.sup in
  Mutex.unlock pool.mutex;
  d

let run_chunked pool ?chunk ~n body =
  let chunk =
    match chunk with
    | Some c when c >= 1 -> c
    | Some _ -> invalid_arg "Pool: chunk must be >= 1"
    | None -> default_chunk ~jobs:pool.jobs n
  in
  let nchunks = (n + chunk - 1) / chunk in
  if degraded pool then
    (* breaker tripped: sequential fallback in the submitting domain *)
    for ci = 0 to nchunks - 1 do
      let lo = ci * chunk in
      let hi = min n (lo + chunk) in
      body ~lo ~hi
    done
  else begin
    let batch =
      { bmutex = Mutex.create ();
        finished = Condition.create ();
        remaining = nchunks;
        failure = None;
        acc = Stats.create ();
        stolen = Atomic.make 0;
        nchunks;
        nitems = n
      }
    in
    let execs =
      (* A steal is a chunk claimed off the slot a static round-robin split
         would have given it — dynamic claiming rebalancing the load.  A
         single-chunk batch has no intended placement, so it never counts. *)
      List.init nchunks (fun ci ->
          let lo = ci * chunk in
          let hi = min n (lo + chunk) in
          let owner = if nchunks = 1 then -1 else ci mod pool.jobs in
          make_exec batch ~owner (fun () -> body ~lo ~hi))
    in
    submit pool execs;
    join_batch pool batch
  end

(* Between-item cancellation poll: one atomic read per item.  A tripped
   token makes every worker abandon the rest of its chunk; the batch still
   drains and joins normally, so a cancelled call returns (with whatever
   items were processed) instead of hanging. *)
let stopped cancel =
  match cancel with
  | Some c -> Budget.Cancel.is_cancelled c
  | None -> false

let parallel_filter_map pool ?chunk ?cancel f seq =
  let items = Array.of_seq seq in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let slots = Array.make n None in
    run_chunked pool ?chunk ~n (fun ~lo ~hi ->
        let i = ref lo in
        while !i < hi && not (stopped cancel) do
          slots.(!i) <- f items.(!i);
          incr i
        done);
    (* slots writes happen-before the join via the batch mutex *)
    Array.to_seq slots |> Seq.filter_map Fun.id |> List.of_seq
  end

let parallel_map pool ?chunk ?cancel f seq =
  parallel_filter_map pool ?chunk ?cancel (fun x -> Some (f x)) seq

(* ------------------------------------------------------------------ *)
(* Warm pools                                                          *)
(* ------------------------------------------------------------------ *)

(* Spawning a domain costs hundreds of microseconds — re-spawning a pool
   per engine phase (one chase, one screening sweep) used to swamp the
   work it parallelised.  [warm ~jobs] keeps one pool per jobs count alive
   across calls; callers borrow it and must NOT shut it down.  A pool
   whose circuit breaker tripped is retired (it would run everything
   sequentially forever) and replaced by a fresh one; retired pools are
   drained at exit together with the registry. *)

let warm_mutex = Mutex.create ()
let warm_pools : (int, t) Hashtbl.t = Hashtbl.create 4
let warm_retired : t list ref = ref []
let warm_installed = ref false

let warm_shutdown () =
  Mutex.lock warm_mutex;
  let pools = Hashtbl.fold (fun _ p acc -> p :: acc) warm_pools !warm_retired in
  Hashtbl.reset warm_pools;
  warm_retired := [];
  Mutex.unlock warm_mutex;
  List.iter shutdown pools

let warm ?policy ~jobs () =
  Mutex.lock warm_mutex;
  if not !warm_installed then begin
    warm_installed := true;
    at_exit warm_shutdown
  end;
  let p =
    match Hashtbl.find_opt warm_pools jobs with
    | Some p when not (degraded p) -> p
    | prev ->
      (* tripped (or absent): retire and respawn.  The retired pool may
         still be borrowed by a concurrent caller, so it is only drained
         at exit, never shut down mid-flight. *)
      Option.iter (fun p -> warm_retired := p :: !warm_retired) prev;
      let p = create ?policy ~jobs () in
      Hashtbl.replace warm_pools jobs p;
      p
  in
  Mutex.unlock warm_mutex;
  p

let with_warm ?policy ~jobs f =
  if jobs <= 1 || Domain.DLS.get on_worker_key then f None
  else if Chaos.active () then
    (* fault-injection runs keep their own ephemeral pool: chaos must be
       able to kill workers and trip breakers without poisoning the warm
       registry shared by every later call *)
    with_pool ?policy ~jobs (fun p -> f (Some p))
  else f (Some (warm ?policy ~jobs ()))

let parallel_find_map pool ?chunk ?cancel f seq =
  let items = Array.of_seq seq in
  let n = Array.length items in
  if n = 0 then None
  else begin
    let slots = Array.make n None in
    (* Smallest item index with a hit so far.  An item may be skipped only
       when a strictly earlier hit already exists — that hit dominates
       whatever the item could produce, so the returned hit is always the
       first in input order, independent of scheduling. *)
    let best = Atomic.make max_int in
    let rec lower_best i =
      let cur = Atomic.get best in
      if i < cur && not (Atomic.compare_and_set best cur i) then lower_best i
    in
    run_chunked pool ?chunk ~n (fun ~lo ~hi ->
        let i = ref lo in
        let stop = ref false in
        while (not !stop) && !i < hi do
          if Atomic.get best < !i || stopped cancel then stop := true
          else begin
            (match f items.(!i) with
            | Some _ as hit ->
              slots.(!i) <- hit;
              lower_best !i;
              stop := true
            | None -> ());
            incr i
          end
        done);
    match Atomic.get best with
    | i when i = max_int -> None
    | i -> slots.(i)
  end
