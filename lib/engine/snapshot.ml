(* Durable checkpoints: a small self-describing container around a
   marshalled payload.

   Layout of a snapshot file — a plain-text header (debuggable with `head`)
   followed by the binary payload:

     TGDSNAP1\n
     kind <kind>\n
     version <int>\n
     length <payload bytes>\n
     md5 <hex digest of payload>\n
     \n
     <payload>

   Writes are atomic: the full file goes to `<path>.tmp`, which is then
   renamed over `<path>` (rename is atomic on POSIX), after the previous
   good snapshot was rotated to `<path>.prev`.  A crash at any instant
   therefore leaves either the new snapshot, the old one, or the old one
   plus a stale tmp file — never a half-written current file.  Loads verify
   the digest before unmarshalling, fall back to the `.prev` rotation when
   the current file is damaged, and reject (typed, never a crash or silent
   garbage) when no intact generation remains. *)

type store = {
  dir : string;
  name : string;
  kind : string;
  version : int;
  keep_backup : bool;
}

let magic = "TGDSNAP1"

let create ?(version = 1) ?(keep_backup = true) ~dir ~name ~kind () =
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ()
      | _ -> invalid_arg "Snapshot.create: name must be a plain file stem")
    name;
  { dir; name; kind; version; keep_backup }

let path store = Filename.concat store.dir (store.name ^ ".snap")
let backup_path store = path store ^ ".prev"
let tmp_path store = path store ^ ".tmp"
let kind store = store.kind

type error =
  | Io_error of { path : string; message : string }
  | Bad_magic of { path : string }
  | Bad_header of { path : string; message : string }
  | Kind_mismatch of { path : string; expected : string; found : string }
  | Version_mismatch of { path : string; expected : int; found : int }
  | Truncated_payload of { path : string; expected : int; found : int }
  | Checksum_mismatch of { path : string }
  | Unmarshal_failure of { path : string; message : string }

let error_path = function
  | Io_error { path; _ }
  | Bad_magic { path }
  | Bad_header { path; _ }
  | Kind_mismatch { path; _ }
  | Version_mismatch { path; _ }
  | Truncated_payload { path; _ }
  | Checksum_mismatch { path }
  | Unmarshal_failure { path; _ } -> path

let pp_error ppf = function
  | Io_error { path; message } -> Fmt.pf ppf "%s: %s" path message
  | Bad_magic { path } -> Fmt.pf ppf "%s: not a snapshot file (bad magic)" path
  | Bad_header { path; message } ->
    Fmt.pf ppf "%s: malformed header (%s)" path message
  | Kind_mismatch { path; expected; found } ->
    Fmt.pf ppf "%s: snapshot of kind %S, expected %S" path found expected
  | Version_mismatch { path; expected; found } ->
    Fmt.pf ppf "%s: snapshot format version %d, expected %d" path found
      expected
  | Truncated_payload { path; expected; found } ->
    Fmt.pf ppf "%s: truncated payload (%d of %d bytes)" path found expected
  | Checksum_mismatch { path } ->
    Fmt.pf ppf "%s: payload checksum mismatch (corrupted)" path
  | Unmarshal_failure { path; message } ->
    Fmt.pf ppf "%s: payload does not unmarshal (%s)" path message

let error_to_string e = Fmt.str "%a" pp_error e

type 'a load =
  | Resumed of 'a
  | Fresh
  | Rejected of error list

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> () (* lost a race: fine *)
  end

let save store value =
  mkdir_p store.dir;
  let payload = Marshal.to_string value [] in
  let digest = Digest.to_hex (Digest.string payload) in
  let tmp = tmp_path store in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s\nkind %s\nversion %d\nlength %d\nmd5 %s\n\n"
        magic store.kind store.version (String.length payload) digest;
      output_string oc payload;
      flush oc);
  let current = path store in
  if store.keep_backup && Sys.file_exists current then
    Sys.rename current (backup_path store);
  Sys.rename tmp current;
  let g = Stats.global () in
  g.Stats.snapshots <- g.Stats.snapshots + 1

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One header line: everything up to the next '\n' starting at [!pos]. *)
let next_line src pos =
  match String.index_from_opt src !pos '\n' with
  | None -> None
  | Some nl ->
    let line = String.sub src !pos (nl - !pos) in
    pos := nl + 1;
    Some line

let field p expect line =
  match String.index_opt line ' ' with
  | Some i when String.sub line 0 i = expect ->
    Ok (String.sub line (i + 1) (String.length line - i - 1))
  | _ ->
    Error (Bad_header { path = p; message = "expected `" ^ expect ^ " ...`" })

let int_field p expect line =
  Result.bind (field p expect line) (fun s ->
      match int_of_string_opt s with
      | Some n -> Ok n
      | None ->
        Error (Bad_header { path = p; message = expect ^ " is not an int" }))

let load_file store p : ('a, error) result =
  match read_file p with
  | exception Sys_error m -> Error (Io_error { path = p; message = m })
  | src ->
    let pos = ref 0 in
    let ( let* ) = Result.bind in
    let line msg =
      match next_line src pos with
      | Some l -> Ok l
      | None -> Error (Bad_header { path = p; message = "missing " ^ msg })
    in
    let* first = line "magic" in
    if first <> magic then Error (Bad_magic { path = p })
    else
      let* kind_line = line "kind" in
      let* found_kind = field p "kind" kind_line in
      if found_kind <> store.kind then
        Error
          (Kind_mismatch { path = p; expected = store.kind; found = found_kind })
      else
        let* version_line = line "version" in
        let* found_version = int_field p "version" version_line in
        if found_version <> store.version then
          Error
            (Version_mismatch
               { path = p; expected = store.version; found = found_version })
        else
          let* length_line = line "length" in
          let* length = int_field p "length" length_line in
          let* md5_line = line "md5" in
          let* digest = field p "md5" md5_line in
          let* blank = line "blank separator" in
          if blank <> "" then
            Error (Bad_header { path = p; message = "missing blank separator" })
          else begin
            let available = String.length src - !pos in
            if available <> length then
              Error
                (Truncated_payload
                   { path = p; expected = length; found = available })
            else
              let payload = String.sub src !pos length in
              if Digest.to_hex (Digest.string payload) <> digest then
                Error (Checksum_mismatch { path = p })
              else
                (* digest verified, so the bytes are exactly what [save]
                   wrote; the [kind] tag is what guarantees the marshalled
                   type matches — a mismatch there was already rejected *)
                match Marshal.from_string payload 0 with
                | v -> Ok v
                | exception (Failure m | Invalid_argument m) ->
                  Error (Unmarshal_failure { path = p; message = m })
          end

let load store =
  let current = path store and backup = backup_path store in
  match (Sys.file_exists current, Sys.file_exists backup) with
  | false, false -> Fresh
  | has_current, has_backup -> (
    let primary = if has_current then Some (load_file store current) else None in
    match primary with
    | Some (Ok v) -> Resumed v
    | Some (Error e) when not has_backup -> Rejected [ e ]
    | _ -> (
      (* current damaged or missing: fall back to the last good rotation *)
      let first_error = match primary with Some (Error e) -> [ e ] | _ -> [] in
      match load_file store backup with
      | Ok v -> Resumed v
      | Error e -> Rejected (first_error @ [ e ])))

let remove store =
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ path store; backup_path store; tmp_path store ]
