(** Fault injection for robustness testing.

    When a configuration is installed, {!step} probabilistically injects
    delays, allocation spikes, and exceptions at the engine's instrumented
    sites — chase trigger firings ([chase.fire], [chase.naive]) and pool
    chunks ([pool.chunk]).  With no configuration installed (the default),
    {!step} is a single atomic read and injects nothing; production code
    never pays more than that.

    Draws are a pure hash of (seed, site, shot number), so a given seed
    replays the same fault schedule per shot; shot numbers are taken from
    one process-wide counter and therefore interleave nondeterministically
    across domains — the suites assert {e typed-outcome} invariants, never
    which exact shot fired.

    Injected exceptions carry the distinguished {!Injected} exception; the
    engine's run boundaries catch it and surface a typed
    [Truncated (Fault site)] outcome ({!Budget.outcome}) instead of letting
    it escape. *)

type config = {
  seed : int;
  delay_p : float;      (** probability of sleeping [delay_s] at a site *)
  delay_s : float;
  alloc_p : float;      (** probability of a transient allocation spike *)
  alloc_words : int;
  raise_p : float;      (** probability of raising {!Injected} *)
}

val default_config : config
(** All probabilities 0; [delay_s = 1e-3], [alloc_words = 65_536]. *)

exception Injected of string
(** The payload names the site and shot, e.g. ["chase.fire#42"]. *)

val install : config -> unit
val uninstall : unit -> unit
val active : unit -> bool

val with_config : config -> (unit -> 'a) -> 'a
(** [install], run, always [uninstall] (also on exceptions). *)

val step : site:string -> unit
(** Possibly inject at [site].  No-op when nothing is installed.
    @raise Injected when the raise draw fires. *)
