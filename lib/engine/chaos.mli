(** Fault injection for robustness testing.

    When a configuration is installed, {!step} probabilistically injects
    delays, allocation spikes, and exceptions at the engine's instrumented
    sites — chase trigger firings ([chase.fire], [chase.naive]), pool
    chunks ([pool.chunk]), pool workers ([pool.worker] — an injection
    there kills the worker domain, exercising the {!Supervisor}), and the
    serve loop ([serve.request]).  With no configuration installed (the
    default), {!step} is a single atomic read and injects nothing;
    production code never pays more than that.

    {b Determinism.}  Draws are a pure hash of (seed, site, shot number),
    where the shot number counts the steps of {e that site alone} — one
    site's schedule is independent of how often other sites step.
    {!install} resets all counters, so a single-domain run under a given
    config replays an identical fault schedule every time (the property
    the deterministic-replay tests assert).  With [jobs > 1] the per-site
    counter increments interleave nondeterministically across worker
    domains, so the {e set} of firing shots per site is deterministic but
    their attribution to work items is not — the suites assert
    {e typed-outcome} invariants there, never which exact item faulted.

    Injected exceptions carry the distinguished {!Injected} exception; the
    engine's run boundaries catch it and surface a typed
    [Truncated (Fault site)] outcome ({!Budget.outcome}) instead of letting
    it escape. *)

type config = {
  seed : int;
  delay_p : float;      (** probability of sleeping [delay_s] at a site *)
  delay_s : float;
  alloc_p : float;      (** probability of a transient allocation spike *)
  alloc_words : int;
  raise_p : float;      (** probability of raising {!Injected} *)
  kill_p : float;       (** probability per {!kill_shot} that a process-kill
                            fires (consulted by the shard-fleet monitor) *)
}

val default_config : config
(** All probabilities 0; [delay_s = 1e-3], [alloc_words = 65_536]. *)

exception Injected of string
(** The payload names the site and its site-local shot, e.g.
    ["chase.fire#42"]. *)

val install : config -> unit
(** Install [cfg] and reset every per-site shot counter, so schedules
    replay from shot 0. *)

val uninstall : unit -> unit
val active : unit -> bool

val with_config : config -> (unit -> 'a) -> 'a
(** [install], run, always [uninstall] (also on exceptions). *)

val step : site:string -> unit
(** Possibly inject at [site].  No-op when nothing is installed.
    @raise Injected when the raise draw fires. *)

val shot_count : site:string -> int
(** Steps taken at [site] since the last {!install} — how far that site's
    deterministic stream has advanced. *)

val kill_shot : site:string -> n:int -> int option
(** The process-kill fault family.  Steps [site]'s deterministic stream
    once and decides whether a kill fires this shot and, if so, which of
    [n] victims it picks ([Some v] with [0 <= v < n]).  The caller — the
    shard-fleet supervision loop, once per tick — owns the actual
    [kill -9]; chaos only supplies the deterministic schedule.  [None]
    always when no config is installed, [kill_p <= 0], or [n <= 0] (the
    stream does not advance in those cases either, so enabling kills does
    not perturb the other families' schedules). *)
