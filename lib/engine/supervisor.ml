type policy = {
  max_restarts : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  wedge_timeout_s : float option;
  tick_s : float;
}

let default_policy =
  { max_restarts = 16;
    backoff_base_s = 1e-3;
    backoff_cap_s = 0.1;
    wedge_timeout_s = None;
    tick_s = 2e-3
  }

type state =
  | Idle
  | Busy of float  (* since *)
  | Dead of float  (* respawn not before *)

type slot = {
  mutable state : state;
  mutable gen : int;
  mutable respawns : int;  (* respawns of this slot, drives its backoff *)
}

type t = {
  policy : policy;
  slots : slot array;
  mutable restarts : int;
  mutable deaths : int;
  mutable wedged : int;
  mutable breaker : bool;
}

let create policy ~slots =
  if slots < 1 then invalid_arg "Supervisor.create: slots must be >= 1";
  { policy;
    slots = Array.init slots (fun _ -> { state = Idle; gen = 0; respawns = 0 });
    restarts = 0;
    deaths = 0;
    wedged = 0;
    breaker = false
  }

let policy t = t.policy

type action =
  | Respawn of int
  | Abandon of int
  | Trip_breaker

let backoff t slot =
  Float.min t.policy.backoff_cap_s
    (t.policy.backoff_base_s *. (2. ** float_of_int slot.respawns))

let wedged_at t ~now slot =
  match (slot.state, t.policy.wedge_timeout_s) with
  | Busy since, Some timeout -> now -. since > timeout
  | _ -> false

let decide t ~now =
  let acts = ref [] in
  let trip_needed = ref false in
  Array.iteri
    (fun i slot ->
      if wedged_at t ~now slot then acts := Abandon i :: !acts
      else
        match slot.state with
        | Dead until when (not t.breaker) && now >= until ->
          if t.restarts >= t.policy.max_restarts then trip_needed := true
          else acts := Respawn i :: !acts
        | _ -> ())
    t.slots;
  let acts = List.rev !acts in
  if !trip_needed then
    (* out of restart budget: degrade instead of respawning anything *)
    Trip_breaker :: List.filter (function Respawn _ -> false | _ -> true) acts
  else acts

let note_spawned t i =
  let slot = t.slots.(i) in
  slot.state <- Idle;
  slot.gen <- slot.gen + 1;
  slot.respawns <- slot.respawns + 1;
  t.restarts <- t.restarts + 1;
  slot.gen

let note_busy t i ~now = t.slots.(i).state <- Busy now
let note_idle t i = t.slots.(i).state <- Idle

let note_death t i ~now =
  let slot = t.slots.(i) in
  slot.state <- Dead (now +. backoff t slot);
  t.deaths <- t.deaths + 1

let note_wedged t i ~now =
  note_death t i ~now;
  t.wedged <- t.wedged + 1

let trip t = t.breaker <- true
let tripped t = t.breaker
let generation t i = t.slots.(i).gen

type health = {
  alive : int;
  deaths : int;
  restarts : int;
  wedged : int;
  breaker_tripped : bool;
}

let health t =
  let alive =
    Array.fold_left
      (fun n s -> match s.state with Dead _ -> n | Idle | Busy _ -> n + 1)
      0 t.slots
  in
  { alive;
    deaths = t.deaths;
    restarts = t.restarts;
    wedged = t.wedged;
    breaker_tripped = t.breaker
  }

let pp_health ppf h =
  Fmt.pf ppf "%d alive, %d deaths, %d restarts, %d wedged%s" h.alive h.deaths
    h.restarts h.wedged
    (if h.breaker_tripped then ", breaker tripped (degraded)" else "")
