exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun m -> raise (Corrupt m)) fmt

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)
(* ------------------------------------------------------------------ *)

let write_varint buf n =
  if n < 0 then invalid_arg "Wire.write_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let write_string buf s =
  write_varint buf (String.length s);
  Buffer.add_string buf s

let write_bool buf b = Buffer.add_char buf (if b then '\001' else '\000')

(* ------------------------------------------------------------------ *)
(* Readers                                                             *)
(* ------------------------------------------------------------------ *)

type reader = { src : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?len src =
  let limit = match len with Some l -> pos + l | None -> String.length src in
  if pos < 0 || limit > String.length src || pos > limit then
    invalid_arg "Wire.reader: slice out of bounds";
  { src; pos; limit }

let at_end r = r.pos >= r.limit
let pos r = r.pos

let read_byte r =
  if r.pos >= r.limit then corrupt "truncated input (offset %d)" r.pos
  else begin
    let b = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    b
  end

(* 9 × 7 = 63 payload bits: every OCaml int round-trips, and a tenth
   continuation byte is unambiguously garbage. *)
let read_varint r =
  let rec go acc shift =
    if shift > 63 then corrupt "varint overflow (offset %d)" r.pos
    else
      let b = read_byte r in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if acc < 0 then corrupt "varint overflow (offset %d)" r.pos
      else if b land 0x80 = 0 then acc
      else go acc (shift + 7)
  in
  go 0 0

let read_string r =
  let len = read_varint r in
  if len > r.limit - r.pos then
    corrupt "string length %d exceeds remaining input (offset %d)" len r.pos
  else begin
    let s = String.sub r.src r.pos len in
    r.pos <- r.pos + len;
    s
  end

let read_bool r =
  match read_byte r with
  | 0 -> false
  | 1 -> true
  | b -> corrupt "bad bool byte 0x%02x (offset %d)" b (r.pos - 1)

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE, reflected)                                            *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(crc = 0) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Wire.crc32: slice out of bounds";
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF
