type t = {
  mutable probes : int;
  mutable scans : int;
  mutable fired : int;
  mutable rounds : int;
  mutable delta_facts : int;
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable restarts : int;
  mutable snapshots : int;
  mutable delta_records : int;
  mutable compactions : int;
  mutable chunks : int;
  mutable chunks_stolen : int;
  mutable chunk_items : int;
  mutable match_time : float;
  mutable fire_time : float;
  mutable merge_time : float;
}

let create () =
  { probes = 0;
    scans = 0;
    fired = 0;
    rounds = 0;
    delta_facts = 0;
    memo_hits = 0;
    memo_misses = 0;
    restarts = 0;
    snapshots = 0;
    delta_records = 0;
    compactions = 0;
    chunks = 0;
    chunks_stolen = 0;
    chunk_items = 0;
    match_time = 0.;
    fire_time = 0.;
    merge_time = 0.
  }

let reset s =
  s.probes <- 0;
  s.scans <- 0;
  s.fired <- 0;
  s.rounds <- 0;
  s.delta_facts <- 0;
  s.memo_hits <- 0;
  s.memo_misses <- 0;
  s.restarts <- 0;
  s.snapshots <- 0;
  s.delta_records <- 0;
  s.compactions <- 0;
  s.chunks <- 0;
  s.chunks_stolen <- 0;
  s.chunk_items <- 0;
  s.match_time <- 0.;
  s.fire_time <- 0.;
  s.merge_time <- 0.

let copy s = { s with probes = s.probes }

let add ~into s =
  into.probes <- into.probes + s.probes;
  into.scans <- into.scans + s.scans;
  into.fired <- into.fired + s.fired;
  into.rounds <- into.rounds + s.rounds;
  into.delta_facts <- into.delta_facts + s.delta_facts;
  into.memo_hits <- into.memo_hits + s.memo_hits;
  into.memo_misses <- into.memo_misses + s.memo_misses;
  into.restarts <- into.restarts + s.restarts;
  into.snapshots <- into.snapshots + s.snapshots;
  into.delta_records <- into.delta_records + s.delta_records;
  into.compactions <- into.compactions + s.compactions;
  into.chunks <- into.chunks + s.chunks;
  into.chunks_stolen <- into.chunks_stolen + s.chunks_stolen;
  into.chunk_items <- into.chunk_items + s.chunk_items;
  into.match_time <- into.match_time +. s.match_time;
  into.fire_time <- into.fire_time +. s.fire_time;
  into.merge_time <- into.merge_time +. s.merge_time

let diff a b =
  { probes = a.probes - b.probes;
    scans = a.scans - b.scans;
    fired = a.fired - b.fired;
    rounds = a.rounds - b.rounds;
    delta_facts = a.delta_facts - b.delta_facts;
    memo_hits = a.memo_hits - b.memo_hits;
    memo_misses = a.memo_misses - b.memo_misses;
    restarts = a.restarts - b.restarts;
    snapshots = a.snapshots - b.snapshots;
    delta_records = a.delta_records - b.delta_records;
    compactions = a.compactions - b.compactions;
    chunks = a.chunks - b.chunks;
    chunks_stolen = a.chunks_stolen - b.chunks_stolen;
    chunk_items = a.chunk_items - b.chunk_items;
    match_time = a.match_time -. b.match_time;
    fire_time = a.fire_time -. b.fire_time;
    merge_time = a.merge_time -. b.merge_time
  }

(* One accumulator per domain: engine runs and memo accesses on a worker
   domain land in that domain's record, race-free by construction.  The
   {!Pool} merges worker deltas back into the submitting domain around each
   parallel batch, so single-domain callers see the same totals as before. *)
let global_key = Domain.DLS.new_key create

let global () = Domain.DLS.get global_key

let hit_rate s =
  let total = s.memo_hits + s.memo_misses in
  if total = 0 then 0. else float_of_int s.memo_hits /. float_of_int total

let mean_chunk_items s =
  if s.chunks = 0 then 0. else float_of_int s.chunk_items /. float_of_int s.chunks

let total_time s = s.match_time +. s.fire_time

let pp ppf s =
  Fmt.pf ppf
    "@[<v>probes: %d; scans: %d; fired: %d; rounds: %d; delta facts: %d@,\
     memo: %d hits / %d misses (%.0f%% hit rate)@,\
     pool: %d chunks (%d stolen, mean %.1f items/chunk)@,\
     recovery: %d worker restarts, %d snapshots written, %d delta records, \
     %d compactions@,\
     time: %.4fs match + %.4fs fire + %.4fs barrier merge@]"
    s.probes s.scans s.fired s.rounds s.delta_facts s.memo_hits s.memo_misses
    (100. *. hit_rate s) s.chunks s.chunks_stolen (mean_chunk_items s)
    s.restarts s.snapshots s.delta_records s.compactions s.match_time s.fire_time s.merge_time
