(** Durable, checksummed, atomically-written checkpoints.

    A {!store} names one checkpoint slot on disk: [dir/name.snap] plus a
    [.snap.prev] rotation of the previous good generation.  {!save}
    marshals a value under a plain-text header (magic, kind tag, format
    version, payload length, MD5 digest), writes the whole file to a [.tmp]
    sibling, and renames it into place — so a crash at any instant leaves
    either the new snapshot or the old one, never a torn file.  {!load}
    verifies the header and digest {e before} unmarshalling, falls back to
    the [.prev] generation when the current file is damaged, and returns a
    typed outcome: corruption is {!Rejected} with a diagnosis, never a
    crash or silently wrong state.

    The [kind] tag is the type-safety story: [Marshal] is untyped, so a
    store must only ever be created with one ['a] per [kind] string.  Keep
    kinds distinct per payload type (e.g. ["chase-state"],
    ["rewrite-sweep"]) and bump [version] when the payload type changes —
    stale snapshots are then rejected instead of misread.

    Payloads must not contain closures or custom blocks; chase instances
    and rewrite checkpoints are plain data and marshal cleanly.

    Each successful {!save} increments [Stats.(global ()).snapshots]. *)

type store

val create :
  ?version:int ->
  ?keep_backup:bool ->
  dir:string ->
  name:string ->
  kind:string ->
  unit ->
  store
(** [version] defaults to 1; bump it when the marshalled type changes.
    [keep_backup] (default true) rotates the previous snapshot to
    [.snap.prev] before each save, giving {!load} a fallback generation.
    @raise Invalid_argument if [name] contains path separators or other
    non-filename characters. *)

val path : store -> string
(** The primary snapshot file, [dir/name.snap]. *)

val backup_path : store -> string
val kind : store -> string

type error =
  | Io_error of { path : string; message : string }
  | Bad_magic of { path : string }
  | Bad_header of { path : string; message : string }
  | Kind_mismatch of { path : string; expected : string; found : string }
  | Version_mismatch of { path : string; expected : int; found : int }
  | Truncated_payload of { path : string; expected : int; found : int }
  | Checksum_mismatch of { path : string }
  | Unmarshal_failure of { path : string; message : string }

val error_path : error -> string
val pp_error : error Fmt.t
val error_to_string : error -> string

type 'a load =
  | Resumed of 'a  (** an intact snapshot was found and decoded *)
  | Fresh  (** no snapshot exists — start from scratch *)
  | Rejected of error list
      (** snapshot file(s) exist but none is intact; the list diagnoses
          each generation tried (current first, then backup) *)

val save : store -> 'a -> unit
(** Atomically replace the snapshot with [v] (creating [dir] as needed),
    rotating the previous generation to the backup first. *)

val load : store -> 'a load
(** Try the current generation, then the backup.  Never raises on
    corrupted input. *)

val remove : store -> unit
(** Delete the snapshot, its backup, and any stale temp file.  Call when
    the checkpointed computation completes, so a later run starts
    {!Fresh}. *)
