(** Worker-supervision state machine.

    Pure bookkeeping, no domains: {!Pool} owns the worker domains and a
    monitor loop, and drives this module under its own lock — [note_*] on
    events (a worker claimed work, went idle, died), {!decide} on every
    monitor tick.  Keeping the policy side-effect-free makes the whole
    restart/backoff/breaker ladder testable with synthetic clocks, no
    domains or sleeps involved.

    Per slot (one slot per worker index) the machine tracks a state
    ([Idle] / [Busy since] / [Dead until]), a {e generation} — bumped on
    every respawn so a stale worker that wakes up after being replaced can
    recognise itself and exit without touching the slot — and a respawn
    count driving capped exponential backoff.  Globally it counts deaths,
    respawns, and wedge abandonments; once total respawns reach
    [max_restarts], {!decide} emits [Trip_breaker] instead of another
    [Respawn], after which the pool runs in degraded sequential mode.

    Wedge detection is opt-in ([wedge_timeout_s]): a slot [Busy] longer
    than the timeout yields [Abandon] — the pool fails that worker's
    in-flight chunk with [Chaos.Injected "pool.wedged#<slot>"] (so the
    fault surfaces through the usual typed [Truncated (Fault _)] path) and
    reports {!note_wedged}, which schedules a replacement like any other
    death.  The timeout must be much larger than an honest chunk. *)

type policy = {
  max_restarts : int;  (** total respawns before the breaker trips *)
  backoff_base_s : float;  (** first respawn delay for a slot *)
  backoff_cap_s : float;  (** backoff doubles per respawn up to this cap *)
  wedge_timeout_s : float option;  (** busy longer than this = wedged *)
  tick_s : float;  (** monitor polling interval *)
}

val default_policy : policy
(** [max_restarts = 16]; backoff 1ms doubling, capped at 100ms; wedge
    detection off; 2ms ticks. *)

type t

val create : policy -> slots:int -> t
(** All slots start alive, idle, generation 0.  Not thread-safe on its
    own — the caller serializes access (the pool uses its queue lock). *)

val policy : t -> policy

type action =
  | Respawn of int  (** slot's backoff expired: spawn a replacement *)
  | Abandon of int  (** slot is wedged: fail its chunk, then report
                        {!note_wedged} *)
  | Trip_breaker  (** restart budget exhausted: call {!trip} and fall
                      back to sequential execution *)

val decide : t -> now:float -> action list
(** What the monitor should do now.  Pure — performing an action must be
    reported back via {!note_spawned} / {!note_wedged} / {!trip}.
    [Trip_breaker] appears at most once and suppresses [Respawn]s; after
    the breaker has tripped only [Abandon]s are emitted (wedged chunks
    must still fail so joins never hang). *)

val note_spawned : t -> int -> int
(** A replacement was spawned for the slot: mark it idle, count the
    restart, and return the slot's new generation. *)

val note_busy : t -> int -> now:float -> unit
(** The slot's worker claimed a chunk (heartbeat). *)

val note_idle : t -> int -> unit
(** The slot's worker finished its chunk and is back on the queue. *)

val note_death : t -> int -> now:float -> unit
(** The slot's worker died; schedules a respawn after the slot's current
    backoff delay. *)

val note_wedged : t -> int -> now:float -> unit
(** Like {!note_death}, but also counted as a wedge abandonment. *)

val trip : t -> unit
val tripped : t -> bool

val generation : t -> int -> int
(** Current generation of the slot; a worker holding an older generation
    is stale and must exit without touching the slot. *)

type health = {
  alive : int;  (** slots with a live worker *)
  deaths : int;  (** worker deaths observed (incl. wedges) *)
  restarts : int;  (** replacements spawned *)
  wedged : int;  (** in-flight chunks abandoned as wedged *)
  breaker_tripped : bool;
}

val health : t -> health
val pp_health : health Fmt.t
