open Tgd_syntax
open Tgd_instance

type mode =
  | Restricted
  | Oblivious
  | Skolem

exception Halt

type outcome =
  | Terminated
  | Truncated of Budget.exhaustion

type result = {
  instance : Instance.t;
  outcome : outcome;
  rounds : int;
  fired : int;
  stats : Stats.t;
}

let rec max_null_in_const acc = function
  | Constant.Null i -> max acc i
  | Constant.Pair (a, b) -> max_null_in_const (max_null_in_const acc a) b
  | Constant.Named _ | Constant.Indexed _ -> acc

let max_null inst =
  Constant.Set.fold (fun c acc -> max_null_in_const acc c) (Instance.dom inst) 0

(* ------------------------------------------------------------------ *)
(* Index-backed conjunctive matching                                   *)
(* ------------------------------------------------------------------ *)

(* A goal is an atom together with the round bound its matches must respect
   (snapshot semantics / delta stratification). *)
type goal = { atom : Atom.t; up_to : int }

(* The tightest probe available for [atom] under [binding]: the bound
   position with the smallest bucket, if any position is bound. *)
let best_probe idx binding atom =
  let args = Atom.args_arr atom in
  let best = ref None in
  Array.iteri
    (fun pos t ->
      let const =
        match t with
        | Term.Const c -> Some c
        | Term.Var v -> Binding.find v binding
      in
      match const with
      | None -> ()
      | Some c ->
        let size = Fact_index.bucket_size idx (Atom.rel atom) ~pos c in
        (match !best with
        | Some (_, _, s) when s <= size -> ()
        | _ -> best := Some (pos, c, size)))
    args;
  !best

let estimate idx binding atom =
  match best_probe idx binding atom with
  | Some (_, _, size) -> size
  | None -> Fact_index.rel_size idx (Atom.rel atom)

let candidates idx binding g =
  match best_probe idx binding g.atom with
  | Some (pos, c, _) -> Fact_index.lookup idx ~up_to:g.up_to (Atom.rel g.atom) ~pos c
  | None -> Fact_index.all idx ~up_to:g.up_to (Atom.rel g.atom)

(* Pull the cheapest goal to the front (stable for ties). *)
let pick_best idx binding goals =
  match goals with
  | [] | [ _ ] -> goals
  | _ ->
    let scored = List.map (fun g -> (estimate idx binding g.atom, g)) goals in
    let best =
      List.fold_left (fun acc (s, _) -> min acc s) max_int scored
    in
    let chosen = ref None in
    let rest =
      List.filter_map
        (fun (s, g) ->
          if s = best && !chosen = None then begin
            chosen := Some g;
            None
          end
          else Some g)
        scored
    in
    (match !chosen with Some g -> g :: rest | None -> goals)

let rec solve idx binding goals : Binding.t Seq.t =
  match pick_best idx binding goals with
  | [] -> Seq.return binding
  | g :: rest -> (
    (* A goal whose atom is fully bound needs only an O(1) membership test
       — never a bucket (let alone full-relation) scan.  This is the
       dominant cost of activity checks, whose head atoms are usually
       ground under the frontier binding. *)
    match Binding.ground_atom binding g.atom with
    | Some f ->
      if Fact_index.mem_up_to idx ~up_to:g.up_to f then solve idx binding rest
      else Seq.empty
    | None ->
      candidates idx binding g
      |> Seq.filter_map (fun f -> Hom.match_atom binding g.atom f)
      |> Seq.concat_map (fun b -> solve idx b rest))

let goals_up_to up_to atoms = List.map (fun atom -> { atom; up_to }) atoms

let exists_extension idx partial atoms =
  not (Seq.is_empty (solve idx partial (goals_up_to max_int atoms)))

(* Active in the restricted-chase sense: no extension of the frontier
   binding maps the head into the current instance.  Pays index probes but
   books no scan: only enumerated triggers count as scans, so the engine's
   scan totals are comparable with the naive loop's. *)
let is_active idx tgd hom =
  let partial = Binding.restrict (Tgd.frontier tgd) hom in
  not (exists_extension idx partial (Tgd.head tgd))

(* Same stable identification as [Trigger.key]. *)
let trigger_key tgd hom =
  Fmt.str "%a|%a" Tgd.pp tgd Binding.pp
    (Binding.restrict (Tgd.universal_vars tgd) hom)

(* Skolem-chase identification: two triggers agreeing on the frontier
   produce the same head facts, so they share one key (and one firing). *)
let skolem_key tgd hom =
  Fmt.str "%a|%a" Tgd.pp tgd Binding.pp
    (Binding.restrict (Tgd.frontier tgd) hom)

(* ------------------------------------------------------------------ *)
(* Trigger enumeration                                                 *)
(* ------------------------------------------------------------------ *)

(* The match phase of a round decomposes into independent tasks — one per
   tgd in round 1, one per (tgd, pivot position) afterwards.  Each task is
   a function of an abort poll (budget/cancellation — a task that observes
   a trip returns early, its partial trigger list is discarded with the
   round), the stats record its probes/scans should land in, and an index
   view wired to it; executing the tasks in order and concatenating
   reproduces the sequential trigger list exactly, which is what lets the
   pool run them on worker domains without changing any observable. *)
type match_task =
  abort:(unit -> bool) -> Stats.t -> Fact_index.t -> (Tgd.t * Binding.t) list

(* Round 1: every body homomorphism into the input facts (stamp 0). *)
let initial_tasks sigma : match_task list =
  List.map
    (fun tgd ~abort stats idx ->
      solve idx Binding.empty (goals_up_to 0 (Tgd.body tgd))
      |> Seq.take_while (fun _ -> not (abort ()))
      |> Seq.map (fun h ->
             stats.Stats.scans <- stats.Stats.scans + 1;
             (tgd, h))
      |> List.of_seq)
    sigma

(* Round r > 1: stratified pivoting through the delta.  For pivot position
   [j], atoms before [j] match rounds ≤ r-2, the pivot matches a delta fact
   (stamp r-1), atoms after [j] match rounds ≤ r-1; the pivot cases
   partition the triggers that touch the delta. *)
let delta_tasks sigma ~round ~delta_by_rel : match_task list =
  let old_limit = round - 2 and recent_limit = round - 1 in
  List.concat_map
    (fun tgd ->
      let body = Array.of_list (Tgd.body tgd) in
      List.filter_map Fun.id
        (List.init (Array.length body) (fun j ->
             let pivot = body.(j) in
             match Hashtbl.find_opt delta_by_rel (Atom.rel pivot) with
             | None -> None
             | Some delta_facts ->
               Some
                 (fun ~abort stats idx ->
                   List.concat_map
                     (fun f ->
                       if abort () then []
                       else
                       match Hom.match_atom Binding.empty pivot f with
                       | None -> []
                       | Some partial ->
                         let goals =
                           List.concat
                             (List.init (Array.length body) (fun i ->
                                  if i = j then []
                                  else
                                    [ { atom = body.(i);
                                        up_to =
                                          (if i < j then old_limit
                                           else recent_limit)
                                      } ]))
                         in
                         solve idx partial goals
                         |> Seq.take_while (fun _ -> not (abort ()))
                         |> Seq.map (fun h ->
                                stats.Stats.scans <- stats.Stats.scans + 1;
                                (tgd, h))
                         |> List.of_seq)
                     delta_facts))))
    sigma

(* Does any active trigger remain?  Used only when the round budget runs out
   (mirrors the naive loop's final [Trigger.active] sweep). *)
let some_active_trigger stats idx sigma =
  List.exists
    (fun tgd ->
      solve idx Binding.empty (goals_up_to max_int (Tgd.body tgd))
      |> Seq.exists (fun h ->
             stats.Stats.scans <- stats.Stats.scans + 1;
             is_active idx tgd h))
    sigma

(* ------------------------------------------------------------------ *)
(* Saturation loop                                                     *)
(* ------------------------------------------------------------------ *)

(* Per-task abort poll: cheap token read per call, full budget check
   (clock, memory, fuel) every 256th — the full check is the one that
   actually trips the token on a deadline, so one long-running match task
   cannot outlive the budget by more than a stride. *)
let make_abort budget =
  let n = ref 0 in
  fun () ->
    incr n;
    if !n land 255 = 0 then Budget.check budget <> None
    else Budget.cancelled budget <> None

let run ~mode ?(budget = Budget.default) ?(on_fire = fun _ _ _ -> ())
    ?(on_commit = fun ~round:_ _ -> ()) ?pool ?chunk sigma inst =
  let stats = Stats.create () in
  let idx = Fact_index.create ~stats () in
  (* Run one match task against a private stats record and an index view
     wired to it, so tasks running on pool workers never share a mutable
     counter; merging the records in task order afterwards reproduces the
     sequential totals. *)
  let exec_task task =
    let ts = Stats.create () in
    if Budget.cancelled budget <> None then ([], ts)
    else begin
      ignore (Budget.check budget);
      let view = Fact_index.with_stats idx ts in
      (task ~abort:(make_abort budget) ts view, ts)
    end
  in
  let run_tasks tasks =
    let results =
      match pool with
      | None -> List.map exec_task tasks
      | Some p ->
        Pool.parallel_map p ?chunk ~cancel:(Budget.token budget) exec_task
          (List.to_seq tasks)
    in
    List.iter (fun (_, ts) -> Stats.add ~into:stats ts) results;
    List.concat_map fst results
  in
  let initial_facts = Instance.fact_list inst in
  List.iter (fun f -> ignore (Fact_index.add idx ~round:0 f)) initial_facts;
  (* barrier 0: the input facts become the base layer before any match *)
  ignore (Fact_index.commit idx);
  let current = ref inst in
  let null_counter = ref (max_null inst) in
  let fired_keys : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let delta = ref initial_facts in
  let delta_by_rel = ref (Hashtbl.create 0) in
  let round = ref 0 in
  let fired = ref 0 in
  let trip = ref None in
  let set_trip r = if !trip = None then trip := Some r in
  let fire_poll = ref 0 in
  let first = ref true in
  (try
     while
       (!first || !delta <> [])
       && !trip = None
       && !round < budget.Budget.max_rounds
     do
       first := false;
       match Budget.check budget with
       | Some r -> set_trip r
       | None ->
         incr round;
         let t0 = Unix.gettimeofday () in
         let triggers =
           if !round = 1 then run_tasks (initial_tasks sigma)
           else
             (* the previous round's barrier commit already grouped its
                delta per relation — no per-round rebuild *)
             run_tasks
               (delta_tasks sigma ~round:!round ~delta_by_rel:!delta_by_rel)
         in
         let t1 = Unix.gettimeofday () in
         stats.Stats.match_time <- stats.Stats.match_time +. (t1 -. t0);
         (* A trip during matching may have cut the trigger list anywhere
            (including mid-task under the pool), so the whole round is
            dropped: the partial result is always the instance as of the
            last fully committed round — one deterministic prefix,
            whatever [jobs] was. *)
         (match Budget.cancelled budget with
         | Some r -> set_trip r
         | None ->
           (try
              List.iter
                (fun (tgd, hom) ->
                  Chaos.step ~site:"chase.fire";
                  incr fire_poll;
                  if !fire_poll land 15 = 0 then (
                    match Budget.check budget with
                    | Some r ->
                      set_trip r;
                      raise Exit
                    | None -> ());
                  let fire_it =
                    match mode with
                    | Oblivious | Skolem ->
                      let key =
                        match mode with
                        | Skolem -> skolem_key tgd hom
                        | _ -> trigger_key tgd hom
                      in
                      if Hashtbl.mem fired_keys key then false
                      else begin
                        Hashtbl.add fired_keys key ();
                        true
                      end
                    | Restricted -> is_active idx tgd hom
                  in
                  if fire_it then begin
                    (match Budget.spend_fuel budget 1 with
                    | Some r ->
                      set_trip r;
                      raise Exit
                    | None -> ());
                    let h =
                      Variable.Set.fold
                        (fun z acc ->
                          incr null_counter;
                          Binding.add z (Constant.null !null_counter) acc)
                        (Tgd.existential_vars tgd)
                        hom
                    in
                    match Binding.ground_atoms h (Tgd.head tgd) with
                    | None ->
                      assert false (* body ∪ existential vars cover the head *)
                    | Some facts ->
                      (try on_fire tgd hom facts
                       with Halt ->
                         set_trip Budget.Cancelled;
                         raise Exit);
                      incr fired;
                      stats.Stats.fired <- stats.Stats.fired + 1;
                      List.iter
                        (fun f ->
                          if Fact_index.add idx ~round:!round f then
                            current := Instance.add_fact !current f)
                        facts;
                      if Instance.fact_count !current > budget.Budget.max_facts
                      then begin
                        set_trip Budget.Facts;
                        raise Exit
                      end
                  end)
                triggers
            with Exit -> ());
           let t2 = Unix.gettimeofday () in
           stats.Stats.fire_time <- stats.Stats.fire_time +. (t2 -. t1);
           (* round barrier: fold this round's delta layer into the base
              in insertion order; the returned grouping feeds the next
              round's pivot tasks directly *)
           let dflat, dby_rel = Fact_index.commit idx in
           stats.Stats.merge_time <-
             stats.Stats.merge_time +. (Unix.gettimeofday () -. t2);
           on_commit ~round:!round dflat;
           delta := dflat;
           delta_by_rel := dby_rel;
           stats.Stats.delta_facts <- stats.Stats.delta_facts + List.length !delta)
     done
   with Chaos.Injected site -> set_trip (Budget.Fault site));
  stats.Stats.rounds <- !round;
  let outcome =
    match !trip with
    | Some r -> Truncated r
    | None ->
      if !delta = [] then Terminated
      else if some_active_trigger stats idx sigma then Truncated Budget.Rounds
      else Terminated
  in
  Stats.add ~into:(Stats.global ()) stats;
  { instance = !current; outcome; rounds = !round; fired = !fired; stats }
