open Tgd_syntax

type entry = { fact : Fact.t; round : int }

(* Buckets keep entries newest-first internally and expose them oldest-first
   (insertion order) through [to_seq]. *)
type bucket = { mutable entries : entry list; mutable size : int }

type t = {
  by_key : (Relation.t * int * Constant.t, bucket) Hashtbl.t;
  by_rel : (Relation.t, bucket) Hashtbl.t;
  stamps : (Fact.t, int) Hashtbl.t;
  stats : Stats.t;
}

let create ?(stats = Stats.create ()) () =
  { by_key = Hashtbl.create 256;
    by_rel = Hashtbl.create 16;
    stamps = Hashtbl.create 256;
    stats
  }

let mem idx f = Hashtbl.mem idx.stamps f
let round_of idx f = Hashtbl.find_opt idx.stamps f
let fact_count idx = Hashtbl.length idx.stamps

let push tbl key e =
  match Hashtbl.find_opt tbl key with
  | Some b ->
    b.entries <- e :: b.entries;
    b.size <- b.size + 1
  | None -> Hashtbl.replace tbl key { entries = [ e ]; size = 1 }

let add idx ~round f =
  if mem idx f then false
  else begin
    Hashtbl.replace idx.stamps f round;
    let e = { fact = f; round } in
    let rel = Fact.rel f in
    push idx.by_rel rel e;
    Array.iteri (fun pos c -> push idx.by_key (rel, pos, c) e) (Fact.tuple_arr f);
    true
  end

let bucket_seq ?(up_to = max_int) bucket =
  (* entries are newest-first; restore insertion order *)
  List.rev bucket.entries |> List.to_seq
  |> Seq.filter_map (fun e -> if e.round <= up_to then Some e.fact else None)

let lookup idx ?up_to rel ~pos c =
  idx.stats.Stats.probes <- idx.stats.Stats.probes + 1;
  match Hashtbl.find_opt idx.by_key (rel, pos, c) with
  | Some b -> bucket_seq ?up_to b
  | None -> Seq.empty

let all idx ?up_to rel =
  idx.stats.Stats.probes <- idx.stats.Stats.probes + 1;
  match Hashtbl.find_opt idx.by_rel rel with
  | Some b -> bucket_seq ?up_to b
  | None -> Seq.empty

let bucket_size idx rel ~pos c =
  match Hashtbl.find_opt idx.by_key (rel, pos, c) with
  | Some b -> b.size
  | None -> 0

let rel_size idx rel =
  match Hashtbl.find_opt idx.by_rel rel with
  | Some b -> b.size
  | None -> 0
