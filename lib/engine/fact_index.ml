open Tgd_syntax

type entry = { fact : Fact.t; round : int }

(* Buckets are growable arrays in insertion order.  Rounds are
   non-decreasing along a bucket (the engine inserts round r facts only
   during round r, and commits rounds in order), so an [up_to] bound
   selects a prefix found by binary search — bounded lookups never touch
   newer entries. *)
type bucket = { mutable arr : entry array; mutable size : int }

(* One physical store: (relation, position, constant)-keyed buckets,
   per-relation buckets, and a stamp table. *)
type layer = {
  by_key : (Relation.t * int * Constant.t, bucket) Hashtbl.t;
  by_rel : (Relation.t, bucket) Hashtbl.t;
  stamps : (Fact.t, int) Hashtbl.t;
  mutable pending : entry list; (* newest first; used only on the delta *)
}

(* Two layers: [base] holds every committed round and is immutable during
   a match phase (pool workers probe its bucket arrays without any
   concurrent resize); [add] lands in [delta], and [commit] folds the
   delta into the base at the round barrier, in insertion order, in
   O(|delta|) — also handing back the per-relation grouping the next
   round's pivot tasks need, so the saturation loop never rebuilds it. *)
type t = { base : layer; delta : layer; stats : Stats.t }

let layer () =
  { by_key = Hashtbl.create 256;
    by_rel = Hashtbl.create 16;
    stamps = Hashtbl.create 256;
    pending = []
  }

let create ?(stats = Stats.create ()) () =
  { base = layer (); delta = layer (); stats }

let with_stats idx stats = { idx with stats }

let mem idx f = Hashtbl.mem idx.base.stamps f || Hashtbl.mem idx.delta.stamps f

let round_of idx f =
  match Hashtbl.find_opt idx.base.stamps f with
  | Some _ as r -> r
  | None -> Hashtbl.find_opt idx.delta.stamps f

let fact_count idx =
  Hashtbl.length idx.base.stamps + Hashtbl.length idx.delta.stamps

let bucket_push b e =
  let cap = Array.length b.arr in
  if b.size = cap then begin
    let arr = Array.make (2 * cap) b.arr.(0) in
    Array.blit b.arr 0 arr 0 b.size;
    b.arr <- arr
  end;
  b.arr.(b.size) <- e;
  b.size <- b.size + 1

let push tbl key e =
  match Hashtbl.find_opt tbl key with
  | Some b -> bucket_push b e
  | None -> Hashtbl.replace tbl key { arr = Array.make 4 e; size = 1 }

let layer_add layer e =
  Hashtbl.replace layer.stamps e.fact e.round;
  let rel = Fact.rel e.fact in
  push layer.by_rel rel e;
  Array.iteri
    (fun pos c -> push layer.by_key (rel, pos, c) e)
    (Fact.tuple_arr e.fact)

let add idx ~round f =
  if mem idx f then false
  else begin
    let e = { fact = f; round } in
    layer_add idx.delta e;
    idx.delta.pending <- e :: idx.delta.pending;
    true
  end

let commit idx =
  let d = idx.delta in
  let entries = List.rev d.pending in
  List.iter (layer_add idx.base) entries;
  let by_rel : (Relation.t, Fact.t list) Hashtbl.t =
    Hashtbl.create (Hashtbl.length d.by_rel)
  in
  Hashtbl.iter
    (fun rel b ->
      Hashtbl.replace by_rel rel (List.init b.size (fun i -> b.arr.(i).fact)))
    d.by_rel;
  Hashtbl.reset d.by_key;
  Hashtbl.reset d.by_rel;
  Hashtbl.reset d.stamps;
  d.pending <- [];
  (List.map (fun e -> e.fact) entries, by_rel)

(* Number of leading entries with round <= up_to (rounds are monotone). *)
let prefix_le bucket up_to =
  if bucket.size = 0 || bucket.arr.(0).round > up_to then 0
  else if bucket.arr.(bucket.size - 1).round <= up_to then bucket.size
  else begin
    (* arr.(lo).round <= up_to < arr.(hi).round *)
    let lo = ref 0 and hi = ref (bucket.size - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if bucket.arr.(mid).round <= up_to then lo := mid else hi := mid
    done;
    !lo + 1
  end

let bucket_seq ?up_to bucket =
  let limit =
    match up_to with None -> bucket.size | Some u -> prefix_le bucket u
  in
  Seq.init limit (fun i -> bucket.arr.(i).fact)

(* Base entries precede delta entries globally, so appending the two
   bucket sequences preserves insertion order. *)
let two_layer_seq ?up_to tbl_of idx key =
  let seq layer =
    match Hashtbl.find_opt (tbl_of layer) key with
    | Some b -> bucket_seq ?up_to b
    | None -> Seq.empty
  in
  Seq.append (seq idx.base) (seq idx.delta)

let lookup idx ?up_to rel ~pos c =
  idx.stats.Stats.probes <- idx.stats.Stats.probes + 1;
  two_layer_seq ?up_to (fun l -> l.by_key) idx (rel, pos, c)

let all idx ?up_to rel =
  idx.stats.Stats.probes <- idx.stats.Stats.probes + 1;
  two_layer_seq ?up_to (fun l -> l.by_rel) idx rel

let mem_up_to idx ?(up_to = max_int) f =
  idx.stats.Stats.probes <- idx.stats.Stats.probes + 1;
  match round_of idx f with Some r -> r <= up_to | None -> false

let layer_bucket_size tbl key =
  match Hashtbl.find_opt tbl key with Some b -> b.size | None -> 0

let bucket_size idx rel ~pos c =
  layer_bucket_size idx.base.by_key (rel, pos, c)
  + layer_bucket_size idx.delta.by_key (rel, pos, c)

let rel_size idx rel =
  layer_bucket_size idx.base.by_rel rel + layer_bucket_size idx.delta.by_rel rel
