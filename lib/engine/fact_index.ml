open Tgd_syntax

type entry = { fact : Fact.t; round : int }

(* Buckets are growable arrays in insertion order.  Rounds are
   non-decreasing along a bucket (the engine inserts round r facts only
   during round r), so an [up_to] bound selects a prefix found by binary
   search — bounded lookups never touch newer entries. *)
type bucket = { mutable arr : entry array; mutable size : int }

type t = {
  by_key : (Relation.t * int * Constant.t, bucket) Hashtbl.t;
  by_rel : (Relation.t, bucket) Hashtbl.t;
  stamps : (Fact.t, int) Hashtbl.t;
  stats : Stats.t;
}

let create ?(stats = Stats.create ()) () =
  { by_key = Hashtbl.create 256;
    by_rel = Hashtbl.create 16;
    stamps = Hashtbl.create 256;
    stats
  }

let with_stats idx stats = { idx with stats }

let mem idx f = Hashtbl.mem idx.stamps f
let round_of idx f = Hashtbl.find_opt idx.stamps f
let fact_count idx = Hashtbl.length idx.stamps

let bucket_push b e =
  let cap = Array.length b.arr in
  if b.size = cap then begin
    let arr = Array.make (2 * cap) b.arr.(0) in
    Array.blit b.arr 0 arr 0 b.size;
    b.arr <- arr
  end;
  b.arr.(b.size) <- e;
  b.size <- b.size + 1

let push tbl key e =
  match Hashtbl.find_opt tbl key with
  | Some b -> bucket_push b e
  | None -> Hashtbl.replace tbl key { arr = Array.make 4 e; size = 1 }

let add idx ~round f =
  if mem idx f then false
  else begin
    Hashtbl.replace idx.stamps f round;
    let e = { fact = f; round } in
    let rel = Fact.rel f in
    push idx.by_rel rel e;
    Array.iteri (fun pos c -> push idx.by_key (rel, pos, c) e) (Fact.tuple_arr f);
    true
  end

(* Number of leading entries with round <= up_to (rounds are monotone). *)
let prefix_le bucket up_to =
  if bucket.size = 0 || bucket.arr.(0).round > up_to then 0
  else if bucket.arr.(bucket.size - 1).round <= up_to then bucket.size
  else begin
    (* arr.(lo).round <= up_to < arr.(hi).round *)
    let lo = ref 0 and hi = ref (bucket.size - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if bucket.arr.(mid).round <= up_to then lo := mid else hi := mid
    done;
    !lo + 1
  end

let bucket_seq ?up_to bucket =
  let limit =
    match up_to with None -> bucket.size | Some u -> prefix_le bucket u
  in
  Seq.init limit (fun i -> bucket.arr.(i).fact)

let lookup idx ?up_to rel ~pos c =
  idx.stats.Stats.probes <- idx.stats.Stats.probes + 1;
  match Hashtbl.find_opt idx.by_key (rel, pos, c) with
  | Some b -> bucket_seq ?up_to b
  | None -> Seq.empty

let all idx ?up_to rel =
  idx.stats.Stats.probes <- idx.stats.Stats.probes + 1;
  match Hashtbl.find_opt idx.by_rel rel with
  | Some b -> bucket_seq ?up_to b
  | None -> Seq.empty

let mem_up_to idx ?(up_to = max_int) f =
  idx.stats.Stats.probes <- idx.stats.Stats.probes + 1;
  match Hashtbl.find_opt idx.stamps f with
  | Some r -> r <= up_to
  | None -> false

let bucket_size idx rel ~pos c =
  match Hashtbl.find_opt idx.by_key (rel, pos, c) with
  | Some b -> b.size
  | None -> 0

let rel_size idx rel =
  match Hashtbl.find_opt idx.by_rel rel with
  | Some b -> b.size
  | None -> 0
