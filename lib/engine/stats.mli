(** Engine counters.

    One mutable record accumulates the work performed by the saturation
    engine ({!Fact_index} probes, triggers scanned and fired, delta sizes,
    wall time split into the matching and firing phases) and by the
    entailment memo ({!Memo} hits and misses).  Every engine run writes its
    own fresh record — surfaced through [Chase.result] — and additionally
    folds its counters into {!global}, so callers that orchestrate many runs
    (the rewriting algorithms, [tgdtool --stats], the bench harness) can
    diff {!global} around a region of interest.

    On the naive chase path no index exists; there [scans] counts the facts
    of each rule's body relations re-examined every round (a lower bound on
    the snapshot-rescan enumeration work the semi-naive engine avoids) plus
    activity rechecks, and [probes] stays 0. *)

type t = {
  mutable probes : int;      (** index bucket lookups *)
  mutable scans : int;       (** triggers enumerated + activity checks *)
  mutable fired : int;       (** triggers fired *)
  mutable rounds : int;      (** saturation rounds performed *)
  mutable delta_facts : int; (** total size of all deltas (new facts) *)
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable match_time : float; (** seconds spent enumerating triggers *)
  mutable fire_time : float;  (** seconds spent checking/firing/inserting *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val add : into:t -> t -> unit
(** Pointwise accumulation. *)

val diff : t -> t -> t
(** [diff after before] — pointwise subtraction; use with {!copy} of
    {!global} to attribute counters to a region of code. *)

val global : t
(** Process-wide accumulator.  Every engine run and memo access adds to it. *)

val hit_rate : t -> float
(** [memo_hits / (memo_hits + memo_misses)]; 0 when no lookup happened. *)

val total_time : t -> float

val pp : t Fmt.t
