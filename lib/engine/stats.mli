(** Engine counters.

    One mutable record accumulates the work performed by the saturation
    engine ({!Fact_index} probes, triggers scanned and fired, delta sizes,
    wall time split into the matching and firing phases) and by the
    entailment memo ({!Memo} hits and misses).  Every engine run writes its
    own fresh record — surfaced through [Chase.result] — and additionally
    folds its counters into {!global}, so callers that orchestrate many runs
    (the rewriting algorithms, [tgdtool --stats], the bench harness) can
    diff {!global} around a region of interest.

    [scans] counts each trigger enumerated during matching exactly once, on
    both paths: the naive loop re-enumerates every trigger of the full
    snapshot each round, while the semi-naive engine only enumerates
    triggers touching the delta — making the two counts directly
    comparable.  Activity checks are not scans; they pay for themselves in
    index [probes] (and on the naive path, which has no index, they are
    part of the rescan already counted). *)

type t = {
  mutable probes : int;      (** index bucket lookups (incl. ground hits) *)
  mutable scans : int;       (** triggers enumerated during matching *)
  mutable fired : int;       (** triggers fired *)
  mutable rounds : int;      (** saturation rounds performed *)
  mutable delta_facts : int; (** total size of all deltas (new facts) *)
  mutable memo_hits : int;
  mutable memo_misses : int;
  mutable restarts : int;    (** pool worker domains respawned ({!Supervisor}) *)
  mutable snapshots : int;   (** full base snapshots written ({!Snapshot}, {!Delta_log}) *)
  mutable delta_records : int; (** incremental delta records appended ({!Delta_log}) *)
  mutable compactions : int;   (** delta chains folded into a fresh base *)
  mutable chunks : int;        (** chunks submitted to the {!Pool} *)
  mutable chunks_stolen : int; (** chunks claimed off their intended slot *)
  mutable chunk_items : int;   (** items carried by submitted chunks *)
  mutable match_time : float; (** seconds spent enumerating triggers *)
  mutable fire_time : float;  (** seconds spent checking/firing/inserting *)
  mutable merge_time : float; (** seconds in round-barrier merges (batch
                                  joins, {!Fact_index} delta commits) *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val add : into:t -> t -> unit
(** Pointwise accumulation. *)

val diff : t -> t -> t
(** [diff after before] — pointwise subtraction; use with {!copy} of
    {!global} to attribute counters to a region of code. *)

val global : unit -> t
(** The calling domain's accumulator (domain-local storage).  Every engine
    run and memo access adds to the accumulator of the domain it runs on, so
    counters are race-free under {!Pool} parallelism; the pool folds each
    worker's delta back into the submitting domain when a parallel batch
    joins.  Single-domain programs observe exactly the old process-wide
    semantics. *)

val hit_rate : t -> float
(** [memo_hits / (memo_hits + memo_misses)]; 0 when no lookup happened. *)

val mean_chunk_items : t -> float
(** [chunk_items / chunks] — the mean cost-sized batch granularity actually
    submitted; 0 when no parallel batch ran. *)

val total_time : t -> float

val pp : t Fmt.t
