(** The locality properties — the paper's main conceptual contribution
    (Definition 3.5) and its three refinements: linear (Definition 6.1),
    guarded (Definition 7.1) and frontier-guarded (Definition 8.1) locality.

    Local embeddability of [O] in [I] asks, for every small "test
    configuration" inside [I] (a subinstance [K], plus a fixed set [F] in the
    frontier-guarded case), for a witness [J ∈ O] containing [K] all of whose
    [m]-neighbourhoods fold back into [I] fixing [F].  The witness is an
    existential over an infinite class, so the checker searches witnesses by
    strategy: the chase of [K] under the axioms (the canonical member
    containing [K]) and/or exhaustive enumeration of small members.  A
    configuration with a found witness is definitively embeddable; exhausting
    the strategy yields a definite [`No] only in the sense "no witness within
    the strategy" — hence the one-sided contracts documented below. *)

open Tgd_syntax
open Tgd_instance

type variant =
  | Plain
  | Linear
  | Guarded
  | Frontier_guarded

val variant_name : variant -> string

type strategy = {
  use_chase : Tgd_chase.Chase.budget option;
      (** try [chase(K, Σ)] as the witness (axiomatic ontologies) *)
  enumerate_extra : int option;
      (** also search members over [adom(K)] plus at most this many fresh
          elements *)
}

val default_strategy : strategy

type configuration = { fixed : Constant.Set.t; sub : Instance.t }
(** A test configuration: the pair [(F, K)].  For the plain, linear and
    guarded variants [F = adom(K)]. *)

val configurations : variant -> n:int -> Instance.t -> configuration Seq.t
(** The configurations the respective definition quantifies over, enumerated
    up to fact-equivalence.  For [Frontier_guarded], sets [F] of size at most
    [n] are considered (the proof of Lemma 8.3 only exercises [|F| ≤ n]). *)

val witness_ok :
  m:int -> fixed:Constant.Set.t -> witness:Instance.t -> target:Instance.t ->
  bool
(** Does the witness [J] satisfy the neighbourhood condition: every [J'] in
    the [m]-neighbourhood of [F] in [J] maps into the target fixing [F]? *)

type embeddability =
  | Embeddable
      (** every configuration has a verified witness — definitive *)
  | No_witness of configuration
      (** some configuration got no witness within the strategy *)

val locally_embeddable :
  ?strategy:strategy -> ?jobs:int -> variant -> n:int -> m:int -> Ontology.t ->
  Instance.t -> embeddability
(** [jobs > 1] checks configurations on a domain pool; the result is the
    same configuration the sequential scan would report (first in
    enumeration order), but the configuration sequence is forced up front,
    so prefer [jobs = 1] (the default, pool-free) when the enumeration is
    the expensive part. *)

type locality_verdict =
  | Local_on_tests
      (** no counterexample among the tested instances *)
  | Not_local of Instance.t
      (** a tested instance in which [O] is (definitively) locally
          embeddable but which is not a member — a genuine witness that [O]
          is not (n,m)-local in the given variant *)

val check_local_on :
  ?strategy:strategy -> ?jobs:int -> ?budget:Tgd_engine.Budget.t ->
  variant -> n:int -> m:int -> Ontology.t ->
  Instance.t list -> locality_verdict Tgd_engine.Budget.outcome
(** [jobs > 1] screens test instances on a domain pool, one instance per
    task (the per-instance embeddability check stays sequential); the
    verdict — and which counterexample is reported — is identical to the
    sequential scan's.

    The scan polls [budget] (default {!Tgd_engine.Budget.unlimited}, which
    never trips) between test instances.  A counterexample found before the
    trip is [Complete (Not_local i)] — definitive regardless of the budget;
    a tripped scan with no hit is [Truncated] with [Local_on_tests] as the
    sound partial verdict over the instances actually tested. *)

val check_local_up_to :
  ?strategy:strategy -> ?jobs:int -> ?budget:Tgd_engine.Budget.t ->
  variant -> n:int -> m:int -> Ontology.t ->
  int -> locality_verdict Tgd_engine.Budget.outcome
(** All instances with canonical domains of size [≤ k] as tests.  [jobs] and
    [budget] as in {!check_local_on}, but note [jobs > 1] forces the whole
    instance enumeration up front. *)
