open Tgd_syntax

type caps = {
  max_body_atoms : int;
  max_head_atoms : int;
  keep_tautologies : bool;
}

let default_caps =
  { max_body_atoms = 2; max_head_atoms = 2; keep_tautologies = false }

let uvar i = Variable.indexed "x" i
let evar i = Variable.indexed "z" i

let atoms_over schema vars =
  if vars = [] then
    (* only 0-ary atoms are expressible *)
    List.filter_map
      (fun r -> if Relation.arity r = 0 then Some (Atom.make r []) else None)
      (Schema.relations schema)
  else
    List.concat_map
      (fun r ->
        Combinat.tuples (List.map Term.var vars) (Relation.arity r)
        |> Seq.map (fun args -> Atom.make r args)
        |> List.of_seq)
      (Schema.relations schema)

(* Existential variables of a head conjunction must form a prefix
   z0, …, z_{t-1} of the pool — other choices are renamings. *)
let evars_prefix_ok m atoms =
  let used =
    List.fold_left
      (fun acc a -> Variable.Set.union acc (Atom.vars a))
      Variable.Set.empty atoms
  in
  let rec go i seen_gap ok =
    if i >= m then ok
    else
      let present = Variable.Set.mem (evar i) used in
      if present && seen_gap then false
      else go (i + 1) (seen_gap || not present) ok
  in
  go 0 false true

let head_conjunctions caps schema uvars ~m =
  let alphabet = uvars @ List.init m evar in
  let pool = atoms_over schema alphabet in
  Combinat.subsets_up_to caps.max_head_atoms pool
  |> Seq.filter (fun atoms -> atoms <> [] && evars_prefix_ok m atoms)

(* Single-atom body patterns over at most [n] variables, canonical via
   restricted growth strings. *)
let single_atom_bodies schema ~n =
  Schema.relations schema
  |> List.to_seq
  |> Seq.concat_map (fun r ->
         Combinat.growth_strings (Relation.arity r) n
         |> Seq.map (fun pattern ->
                Atom.make r (List.map (fun i -> Term.var (uvar i)) pattern)))

let used_vars atoms =
  List.fold_left
    (fun acc a -> Variable.Set.union acc (Atom.vars a))
    Variable.Set.empty atoms
  |> Variable.Set.elements

(* Entailment by the empty theory needs no chase at all: the static
   head-into-body homomorphism check decides it ({!Tgd_analysis.Lint}),
   and keeps the enumerators off the entailment caches entirely. *)
let is_tautology = Tgd_analysis.Lint.tautological

let dedup_canonical seq =
  let seen = ref Tgd.Set.empty in
  Seq.filter_map
    (fun s ->
      let c = Canonical.tgd s in
      if Tgd.Set.mem c !seen then None
      else begin
        seen := Tgd.Set.add c !seen;
        Some c
      end)
    seq

let assemble caps bodies_with_heads =
  bodies_with_heads
  |> Seq.filter_map (fun (body, head) ->
         match Tgd.make ~body ~head with
         | s -> Some s
         | exception Invalid_argument _ -> None)
  |> Seq.filter (fun s -> caps.keep_tautologies || not (is_tautology s))
  |> dedup_canonical

let bodiless caps schema ~m =
  if m = 0 then Seq.empty
  else
    head_conjunctions caps schema [] ~m
    |> Seq.map (fun head -> ([], head))

let linear ?(caps = default_caps) schema ~n ~m =
  let with_body =
    single_atom_bodies schema ~n
    |> Seq.concat_map (fun b ->
           head_conjunctions caps schema (used_vars [ b ]) ~m
           |> Seq.map (fun head -> ([ b ], head)))
  in
  assemble caps (Seq.append (bodiless caps schema ~m) with_body)

let guarded ?(caps = default_caps) schema ~n ~m =
  let with_body =
    single_atom_bodies schema ~n
    |> Seq.concat_map (fun guard ->
           let gvars = used_vars [ guard ] in
           let side_pool =
             List.filter
               (fun a -> not (Atom.equal a guard))
               (atoms_over schema gvars)
           in
           Combinat.subsets_up_to (max 0 (caps.max_body_atoms - 1)) side_pool
           |> Seq.concat_map (fun side ->
                  let body = guard :: side in
                  head_conjunctions caps schema gvars ~m
                  |> Seq.map (fun head -> (body, head))))
  in
  assemble caps (Seq.append (bodiless caps schema ~m) with_body)

let generic ?(caps = default_caps) schema ~n ~m =
  let body_pool = atoms_over schema (List.init n uvar) in
  let with_body =
    Combinat.subsets_up_to caps.max_body_atoms body_pool
    |> Seq.filter (fun body -> body <> [])
    |> Seq.concat_map (fun body ->
           head_conjunctions caps schema (used_vars body) ~m
           |> Seq.map (fun head -> (body, head)))
  in
  assemble caps (Seq.append (bodiless caps schema ~m) with_body)

let full ?caps schema ~n = generic ?caps schema ~n ~m:0

let frontier_guarded ?caps schema ~n ~m =
  Seq.filter Tgd_class.is_frontier_guarded (generic ?caps schema ~n ~m)

type stats = { enumerated : int; complete : bool }

let atom_pool_size schema vars_count =
  List.fold_left
    (fun acc r ->
      acc
      + int_of_float
          (float_of_int vars_count ** float_of_int (Relation.arity r)))
    0
    (Schema.relations schema)

let linear_complete caps schema ~n ~m =
  caps.max_head_atoms >= atom_pool_size schema (n + m)

let guarded_complete caps schema ~n ~m =
  linear_complete caps schema ~n ~m
  && caps.max_body_atoms - 1 >= atom_pool_size schema n

let count seq = Seq.fold_left (fun acc _ -> acc + 1) 0 seq

let generic_complete caps schema ~n ~m =
  caps.max_head_atoms >= atom_pool_size schema (n + m)
  && caps.max_body_atoms >= atom_pool_size schema n
