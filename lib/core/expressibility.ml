open Tgd_syntax

type class_status = {
  cls : Tgd_class.cls;
  syntactic : bool;
  semantic : Rewrite.outcome option;
}

type profile = {
  critical : bool;
  product_closed : bool;
  intersection_closed : bool;
  union_closed : bool;
  domain_independent : bool;
}

type report = {
  sigma : Tgd.t list;
  n : int;
  m : int;
  weakly_acyclic : bool;
  termination_cert : Tgd_analysis.Termination.cert option;
  classes : class_status list;
  profile : profile;
  dom_size : int;
}

let holds = Properties.verdict_holds

let diagnose ?config ?(dom_size = 2) sigma =
  let n, m = Rewrite.class_bounds sigma in
  let is_guarded = Tgd_class.all_in_class Tgd_class.Guarded sigma in
  let is_fg = Tgd_class.all_in_class Tgd_class.Frontier_guarded sigma in
  let attempt f =
    Some (Tgd_engine.Budget.value (f ?config ?resume:None sigma)).Rewrite.outcome
  in
  let classes =
    [ { cls = Tgd_class.Linear;
        syntactic = Tgd_class.all_in_class Tgd_class.Linear sigma;
        semantic = (if is_guarded then attempt Rewrite.g_to_l else None)
      };
      { cls = Tgd_class.Guarded;
        syntactic = is_guarded;
        semantic = (if is_fg then attempt Rewrite.fg_to_g else None)
      };
      { cls = Tgd_class.Frontier_guarded;
        syntactic = is_fg;
        semantic = attempt Rewrite.to_frontier_guarded
      };
      { cls = Tgd_class.Full;
        syntactic = Tgd_class.all_in_class Tgd_class.Full sigma;
        semantic = attempt Rewrite.to_full
      }
    ]
  in
  let o = Ontology.axiomatic (Rewrite.schema_of sigma) sigma in
  let profile =
    { critical = holds (Properties.critical_up_to o dom_size);
      product_closed = holds (Properties.closed_under_products o ~dom_size);
      intersection_closed =
        holds (Properties.closed_under_intersections o ~dom_size);
      union_closed = holds (Properties.closed_under_unions o ~dom_size);
      domain_independent = holds (Properties.domain_independent o ~dom_size)
    }
  in
  { sigma;
    n;
    m;
    weakly_acyclic = Tgd_analysis.Termination.is_weakly_acyclic sigma;
    termination_cert = Tgd_analysis.Termination.certificate sigma;
    classes;
    profile;
    dom_size
  }

let pp_semantic ppf = function
  | None -> Fmt.string ppf "not attempted"
  | Some (Rewrite.Rewritable s) ->
    Fmt.pf ppf "expressible (%d tgds)" (List.length s)
  | Some (Rewrite.Not_rewritable { complete = true; _ }) ->
    Fmt.string ppf "NOT expressible (definitive)"
  | Some (Rewrite.Not_rewritable { complete = false; _ }) ->
    Fmt.string ppf "no rewriting within caps"
  | Some (Rewrite.Unknown why) -> Fmt.pf ppf "unknown (%s)" why

let pp_report ppf r =
  Fmt.pf ppf "@[<v>Σ ∈ TGD_{%d,%d}; termination certificate: %a@," r.n r.m
    Fmt.(option ~none:(any "none") Tgd_analysis.Termination.pp_cert)
    r.termination_cert;
  List.iter
    (fun cs ->
      Fmt.pf ppf "%-18s syntactic: %-5b semantic: %a@,"
        (Tgd_class.cls_name cs.cls) cs.syntactic pp_semantic cs.semantic)
    r.classes;
  Fmt.pf ppf
    "profile (dom ≤ %d): critical %b; ⊗-closed %b; ∩-closed %b; ∪-closed %b; dom-indep %b@]"
    r.dom_size r.profile.critical r.profile.product_closed
    r.profile.intersection_closed r.profile.union_closed
    r.profile.domain_independent
