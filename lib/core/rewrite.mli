(** The rewriting procedures of Section 9: Algorithm 1 (G-to-L) and
    Algorithm 2 (FG-to-G).

    Both follow the paper verbatim: collect every candidate tgd of the
    target class with at most [n] universal and [m] existential variables
    (the bounds carried by the input set — justified by the Linearization
    and Guardedization Lemmas) that is entailed by the input, then test
    whether the collected set entails the input back.

    Two sources of approximation are surfaced honestly in the result:
    entailment is chase-based and three-valued, and the candidate space may
    be capped (see {!Candidates.caps}).  A [Not_rewritable] verdict is
    definitive exactly when [complete] is true and no candidate or backward
    check came back unknown — on the paper's own examples both hold.

    Resource governance: every procedure runs under the config's
    {!Tgd_engine.Budget} and returns a {!Tgd_engine.Budget.outcome}.  A
    truncated run carries a {!checkpoint} — the candidate cursor plus the
    answers screened so far — and passing it back as [?resume] continues
    the enumeration from the cursor instead of restarting, so
    [resume ∘ truncate] converges to the unbudgeted result. *)

open Tgd_syntax
open Tgd_instance
open Tgd_engine

type checkpoint_sink =
  | Full of Tgd_engine.Snapshot.store
      (** legacy: marshal the whole checkpoint each save (the baseline the
          benches compare against) *)
  | Incremental of Tgd_engine.Delta_log.t
      (** append only the entries committed since the last save to a delta
          chain, compacted generationally — the affordable path *)

type config = {
  caps : Candidates.caps;
  budget : Tgd_chase.Chase.budget;
  minimize : bool;  (** greedily drop redundant members of [Σ'] *)
  naive : bool;     (** route chases through the snapshot-rescan loop *)
  memo : bool;      (** cache entailment answers and chases (default) *)
  jobs : int;
      (** worker domains screening candidates in parallel; [1] (the
          default) bypasses the pool entirely.  Pools are borrowed from
          the warm registry ({!Tgd_engine.Pool.with_warm}), so repeated
          sweeps pay no domain spawns.  Outcomes are independent of
          [jobs]: screening preserves candidate order, and the backward
          [Σ' ⊨ Σ] check and minimization are always sequential. *)
  chunk : int option;
      (** candidates per pool claim.  [None] (the default) sizes chunks
          from the analysis strategy
          ({!Tgd_analysis.Strategy.screen_chunk}): certified-terminating
          sets pack many cheap candidates per claim, uncertified sets get
          small chunks for load balance.  Outcomes are independent of
          [chunk]. *)
  analyze : bool;
      (** run the static-analysis prefilter (default): candidates whose
          head mentions a relation outside the relation-level derivability
          closure of their body ({!Tgd_analysis.Depgraph}) are answered
          [Disproved] without chasing, and the chases that do run inherit
          certificate-based promotion ({!Tgd_chase.Chase.restricted}).
          The outcome is unchanged either way — the prefilter only skips
          work the chase would have rejected. *)
  checkpoint : checkpoint_sink option;
      (** persist the screening checkpoint through this sink at batch
          boundaries, on truncation, and remove it on completion — so a
          killed sweep resumes from disk.  [None] (default): no
          persistence.  Load the state yourself ({!load_log} for
          {!Incremental}, [Snapshot.load] for {!Full}) and pass it as
          [?resume]; a rejected load is an error to surface, not a fresh
          start. *)
  checkpoint_every : int;
      (** committed batches between durable saves (default 1 = every
          batch).  Larger values trade re-screening after a crash for
          less write amplification. *)
}

val default_config : config

val snapshot_kind : string
(** The {!Tgd_engine.Snapshot} kind tag for sweep checkpoints
    (["rewrite-sweep"]). *)

val snapshot_store : dir:string -> name:string -> Tgd_engine.Snapshot.store
(** A full-state store of {!snapshot_kind} under [dir], for the legacy
    {!Full} sink. *)

type outcome =
  | Rewritable of Tgd.t list
  | Not_rewritable of { complete : bool; unknown_candidates : int }
  | Unknown of string

val pp_outcome : outcome Fmt.t

type checkpoint = {
  cursor : int;
      (** candidates consumed from the enumeration — always a batch
          boundary, so resuming re-screens nothing twice *)
  screened_prefix : (Tgd.t * Tgd_chase.Entailment.answer) list;
      (** the (candidate, answer) pairs already committed, in enumeration
          order *)
}

val log_kind : string
(** The {!Tgd_engine.Delta_log} kind tag for incremental sweep checkpoints
    (["rewrite-delta"]). *)

val log_config :
  ?keep:int ->
  ?fsync:bool ->
  dir:string ->
  name:string ->
  unit ->
  Tgd_engine.Delta_log.config
(** An incremental checkpoint log of {!log_kind} under [dir] ([keep]
    generations retained after compaction, default 2; [fsync] syncs every
    barrier, default off). *)

type resumed = {
  rz_checkpoint : checkpoint;  (** base + verified deltas, replayed *)
  rz_chain : Tgd_engine.Delta_log.chain;
  rz_warnings : string list;
      (** non-empty = degraded resume (mid-chain corruption or generation
          fallback): surface, then continue from the verified prefix *)
}

val load_log :
  Tgd_engine.Delta_log.config -> (resumed option, string list) Stdlib.result
(** Load and replay an incremental sweep chain.  [Ok None] — nothing on
    disk; [Ok (Some r)] — resume from [r] (a torn final record is dropped
    silently, mid-chain damage lands in [rz_warnings]); [Error] — no
    generation verifies. *)

val start_log : Tgd_engine.Delta_log.config -> Tgd_engine.Delta_log.t
(** Open a fresh chain (empty base) for a sweep starting from scratch. *)

val resume_log :
  Tgd_engine.Delta_log.config -> resumed -> Tgd_engine.Delta_log.t
(** Reopen a loaded chain for appending (truncating any unverified
    suffix); pair with [?resume:r.rz_checkpoint]. *)

type report = {
  outcome : outcome;
  n : int;
  m : int;
  candidates_enumerated : int;
  candidates_entailed : int;
  candidates_skipped : int;
      (** candidates rejected by the analysis prefilter during this run
          (without a chase); always [0] with [analyze = false] *)
  checkpoint : checkpoint option;
      (** [Some] exactly on truncated reports: where to resume *)
  stats : Tgd_engine.Stats.t;
      (** engine work attributed to this rewrite: index probes, triggers
          scanned/fired, memo hit rate (diff of {!Tgd_engine.Stats.global}
          around the run) *)
}

val schema_of : Tgd.t list -> Schema.t
val class_bounds : Tgd.t list -> int * int
(** [(n, m)]: maximum universal / existential variable counts over the set. *)

val g_to_l :
  ?config:config -> ?resume:checkpoint -> Tgd.t list -> report Budget.outcome
(** Algorithm 1.  Raises [Invalid_argument] when the input is not a set of
    guarded tgds. *)

val fg_to_g :
  ?config:config -> ?resume:checkpoint -> Tgd.t list -> report Budget.outcome
(** Algorithm 2.  Raises [Invalid_argument] when the input is not a set of
    frontier-guarded tgds. *)

val rewrite_into :
  ?config:config -> ?resume:checkpoint ->
  (Candidates.caps -> Schema.t -> n:int -> m:int -> Tgd.t Seq.t) ->
  complete:(Candidates.caps -> Schema.t -> n:int -> m:int -> bool) ->
  Tgd.t list -> report Budget.outcome
(** The generic engine behind both algorithms; exposed for ablations and for
    rewriting into other classes.

    Screening commits per batch of [4 × jobs × chunk] candidates: the budget is
    checked at every batch boundary, a batch in flight when a live limit
    trips (or a {!Tgd_engine.Chaos} fault fires) is discarded wholesale,
    and the checkpoint cursor points at the last committed boundary — so
    partial results are identical at any [jobs].  A trip during the
    backward check or minimization also reports [Truncated], with the full
    screening checkpoint, since answers influenced by an already-cancelled
    budget must not be trusted. *)

val verify_equivalence_bounded :
  Tgd.t list -> Tgd.t list -> dom_size:int -> Instance.t option
(** Exhaustive model-agreement check on all instances with canonical domains
    of size [≤ dom_size]; [Some] is a countermodel distinguishing the two
    sets. *)

val to_frontier_guarded :
  ?config:config -> ?resume:checkpoint -> Tgd.t list -> report Budget.outcome
(** Rewrite an arbitrary finite set of tgds into frontier-guarded ones when
    possible — the Zhang-et-al. direction the paper's related work cites;
    built on the same generic engine with {!Candidates.frontier_guarded}
    candidates. *)

val to_full :
  ?config:config -> ?resume:checkpoint -> Tgd.t list -> report Budget.outcome
(** Rewrite into existential-free (full) tgds when possible
    (cf. Corollary 5.1: the target class is [TGD_{n,0}]). *)

val minimize : ?budget:Tgd_chase.Chase.budget -> Tgd.t list -> Tgd.t list
(** Greedy redundancy elimination: repeatedly drop a tgd entailed by the
    remainder (largest first).  The result is logically equivalent to the
    input. *)
