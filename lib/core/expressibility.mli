(** One-stop diagnosis of a finite set of tgds against the paper's
    class lattice [LTGD ⊊ GTGD ⊊ FGTGD ≠ FTGD].

    For an input Σ, the report records (i) which classes Σ {e syntactically}
    belongs to, (ii) which weaker classes it is {e semantically} expressible
    in, as decided by the rewriting engines, and (iii) the bounded
    model-theoretic property profile of Mod(Σ) — the observable face of the
    paper's characterizations.  Backs [tgdtool diagnose]. *)

open Tgd_syntax

type class_status = {
  cls : Tgd_class.cls;
  syntactic : bool;           (** every member of Σ is in the class *)
  semantic : Rewrite.outcome option;
      (** result of rewriting Σ into the class; [None] when not attempted
          (the rewriting engine requires inputs from the next class up,
          e.g. G-to-L needs guarded input) *)
}

type profile = {
  critical : bool;
  product_closed : bool;
  intersection_closed : bool;
  union_closed : bool;
  domain_independent : bool;
}

type report = {
  sigma : Tgd.t list;
  n : int;
  m : int;
  weakly_acyclic : bool;
  termination_cert : Tgd_analysis.Termination.cert option;
      (** strongest static termination certificate, [None] if uncertified;
          [Some Weakly_acyclic] iff [weakly_acyclic] *)
  classes : class_status list;
  profile : profile;       (** bounded checks, dom ≤ [dom_size] *)
  dom_size : int;
}

val diagnose :
  ?config:Rewrite.config -> ?dom_size:int -> Tgd.t list -> report
(** [dom_size] defaults to 2.  Rewriting attempts follow the lattice:
    FG-to-G whenever Σ is frontier-guarded, G-to-L whenever Σ is guarded,
    to-full and to-frontier-guarded always. *)

val pp_report : report Fmt.t
