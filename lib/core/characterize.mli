(** The constructive content of Theorem 4.1 — Steps 1–3 of Section 4.2 —
    realized over bounded universes.

    Given an ontology presented by a membership oracle (any {!Ontology.t}),
    the pipeline builds

    - [Σ^∨]: the edds of [E_{n,m}] satisfied by every member (Step 1),
    - [Σ^{∃,=}]: its tgds and egds (Step 2),
    - [Σ^∃]: its tgds (Step 3),

    where "every member" is every member with a canonical domain of size at
    most [dom_bound], and [E_{n,m}] is enumerated under syntactic caps.  For
    ontologies that really are [TGD_{n,m}]-ontologies (and parameters large
    enough to cover them), [Σ^∃] is an equivalent axiomatization, which
    {!verify_axiomatization} then certifies exhaustively. *)

open Tgd_syntax
open Tgd_instance

type caps = {
  max_body_atoms : int;
  max_conjunct_atoms : int;  (** atoms per existential disjunct *)
  max_disjuncts : int;
  dom_bound : int;           (** validity is checked on members up to this size *)
}

val default_caps : caps

val edds_e_nm : ?caps:caps -> Schema.t -> n:int -> m:int -> Edd.t Seq.t
(** The (capped) class [E_{n,m}] over the schema: bodies over at most [n]
    variables, disjuncts that are equalities between body variables or
    existential conjunctions with at most [m] existential variables. *)

val sigma_vee :
  ?caps:caps -> ?jobs:int -> ?budget:Tgd_engine.Budget.t ->
  Ontology.t -> n:int -> m:int -> Edd.t list Tgd_engine.Budget.outcome
(** Step 1.  [jobs > 1] validates candidate edds against the bounded
    members on a domain pool; the result list is identical to the
    sequential one (order preserved).  [budget] (default
    {!Tgd_engine.Budget.unlimited}) is polled at candidate-batch
    boundaries; a truncated sweep returns the valid edds committed so far —
    a deterministic prefix at any [jobs]. *)

val sigma_exists_eq : Edd.t list -> Dependency.t list
(** Step 2: the tgds and egds among [Σ^∨]. *)

val sigma_exists : Dependency.t list -> Tgd.t list
(** Step 3: the tgds among [Σ^{∃,=}]. *)

val synthesize :
  ?caps:caps -> ?candidate_caps:Candidates.caps -> ?minimize:bool ->
  ?jobs:int -> ?budget:Tgd_engine.Budget.t ->
  Ontology.t -> n:int -> m:int -> Tgd.t list Tgd_engine.Budget.outcome
(** Direct route to [Σ^∃]: enumerate [TGD_{n,m}] candidates and keep those
    satisfied by every bounded member of the ontology.  Equivalent to
    [sigma_exists (sigma_exists_eq (sigma_vee …))] but far cheaper (no
    disjunctions), since Steps 2–3 discard everything but the tgds.  With
    [~minimize:true] redundant members are removed by chase entailment
    (skipped on a truncated sweep — the partial set is valid but
    incomplete, and minimization would spend more of an exhausted
    budget).  [budget] as in {!sigma_vee}. *)

val verify_axiomatization :
  Ontology.t -> Tgd.t list -> dom_size:int -> Instance.t option
(** A countermodel (member without the property, or model that is not a
    member) among instances up to the given size, or [None]. *)

(** {2 Theorem 5.6 — the FTGD profile} *)

type ftgd_profile = {
  one_critical : bool;
  domain_independent : bool;
  modular : bool;          (** n-modularity for the given [modularity_n] *)
  intersection_closed : bool;
  non_oblivious_closed : bool;
}

val ftgd_profile :
  ?dom_size:int -> ?modularity_n:int -> Ontology.t -> ftgd_profile
(** The five properties of Theorem 5.6, checked on bounded universes
    ([dom_size] defaults to 2, [modularity_n] to [dom_size]). *)

val ftgd_profile_holds : ftgd_profile -> bool
(** All five — the bounded face of "O is an FTGD-ontology". *)

(** {2 End-to-end classification of black-box ontologies} *)

type classification = {
  axioms : Tgd.t list option;
      (** a verified [TGD_{n,m}] axiomatization, when one exists on the
          bounded universe *)
  diagnosis : Expressibility.report option;
      (** class-lattice analysis of the recovered axioms *)
  analysis : Tgd_analysis.Analyze.report option;
      (** static analysis of the recovered axioms: termination certificate,
          dependency-graph reachability, rule lints
          ({!Tgd_analysis.Analyze.run}) *)
}

val classify_oracle :
  ?caps:caps -> ?candidate_caps:Candidates.caps -> ?config:Rewrite.config ->
  Ontology.t -> n:int -> m:int -> classification
(** The composition of the paper's two directions: synthesize [Σ^∃] from the
    membership oracle (Theorem 4.1), verify it on the bounded universe, and
    — if it verifies — diagnose which of the paper's classes it falls into
    (Corollaries 4.2, 5.1, 6.5, 7.5, 8.5, decided by the Section 9
    machinery). *)
