open Tgd_syntax
open Tgd_instance
module Budget = Tgd_engine.Budget
module Chaos = Tgd_engine.Chaos
module Stats = Tgd_engine.Stats
module Pool = Tgd_engine.Pool

type caps = {
  max_body_atoms : int;
  max_conjunct_atoms : int;
  max_disjuncts : int;
  dom_bound : int;
}

let default_caps =
  { max_body_atoms = 2; max_conjunct_atoms = 1; max_disjuncts = 2; dom_bound = 2 }

let uvar i = Variable.indexed "x" i
let evar i = Variable.indexed "z" i

let atoms_over schema vars =
  if vars = [] then
    List.filter_map
      (fun r -> if Relation.arity r = 0 then Some (Atom.make r []) else None)
      (Schema.relations schema)
  else
    List.concat_map
      (fun r ->
        Combinat.tuples (List.map Term.var vars) (Relation.arity r)
        |> Seq.map (fun args -> Atom.make r args)
        |> List.of_seq)
      (Schema.relations schema)

let used_vars atoms =
  List.fold_left
    (fun acc a -> Variable.Set.union acc (Atom.vars a))
    Variable.Set.empty atoms

let edds_e_nm ?(caps = default_caps) schema ~n ~m =
  let body_pool = atoms_over schema (List.init n uvar) in
  Combinat.subsets_up_to caps.max_body_atoms body_pool
  |> Seq.concat_map (fun body ->
         let bvars = Variable.Set.elements (used_vars body) in
         let eq_pool =
           List.concat_map
             (fun y ->
               List.filter_map
                 (fun z ->
                   if Variable.compare y z < 0 then Some (Edd.Eq (y, z))
                   else None)
                 bvars)
             bvars
         in
         let exists_pool =
           Combinat.subsets_up_to caps.max_conjunct_atoms
             (atoms_over schema (bvars @ List.init m evar))
           |> Seq.filter (fun atoms -> atoms <> [])
           |> Seq.map (fun atoms -> Edd.Exists atoms)
           |> List.of_seq
         in
         Combinat.subsets_up_to caps.max_disjuncts (eq_pool @ exists_pool)
         |> Seq.filter (fun ds -> ds <> [])
         |> Seq.filter_map (fun disjuncts ->
                match Edd.make ~body ~disjuncts with
                | d -> Some d
                | exception Invalid_argument _ -> None))

let holds_in_all_members caps o sat =
  Seq.for_all sat (Ontology.models_up_to o caps.dom_bound)

let take n seq =
  let rec go n acc seq =
    if n = 0 then (List.rev acc, seq)
    else
      match seq () with
      | Seq.Nil -> (List.rev acc, Seq.empty)
      | Seq.Cons (x, rest) -> go (n - 1) (x :: acc) rest
  in
  go n [] seq

(* Keep the candidates that pass [valid], sequentially or — [jobs > 1] —
   on a domain pool.  The pool preserves input order, so both paths return
   the same list.  Candidates are consumed in batches of [4 × jobs]; the
   budget is polled at batch boundaries and an interrupted batch is
   discarded wholesale, so a truncated result is a deterministic prefix of
   the sequential filter at any [jobs].  Injected faults surface in the
   trip, never as escaping exceptions. *)
let filter_valid ~jobs ~budget valid candidates =
  let keep c = if valid c then Some c else None in
  let batch_size = max 1 (4 * jobs) in
  let run pool =
    let kept_rev = ref [] in
    let trip = ref None in
    let rest = ref candidates in
    let exhausted = ref false in
    while !trip = None && not !exhausted do
      match Budget.check budget with
      | Some r -> trip := Some r
      | None ->
        let batch, rest' = take batch_size !rest in
        if batch = [] then exhausted := true
        else begin
          match
            (match pool with
            | None -> List.filter_map keep batch
            | Some pool ->
              Pool.parallel_filter_map pool keep (List.to_seq batch))
          with
          | results ->
            (match Budget.check budget with
            | Some r -> trip := Some r
            | None ->
              kept_rev := List.rev_append results !kept_rev;
              rest := rest')
          | exception Chaos.Injected site -> trip := Some (Budget.Fault site)
        end
    done;
    (!trip, List.rev !kept_rev)
  in
  Pool.with_warm ~jobs run

let governed ~jobs ~budget valid candidates =
  let before = Stats.copy (Stats.global ()) in
  match filter_valid ~jobs ~budget valid candidates with
  | None, kept -> Budget.Complete kept
  | Some reason, kept ->
    Budget.Truncated
      { reason;
        partial = kept;
        progress = Stats.diff (Stats.copy (Stats.global ())) before
      }

let sigma_vee ?(caps = default_caps) ?(jobs = 1) ?(budget = Budget.unlimited)
    o ~n ~m =
  edds_e_nm ~caps (Ontology.schema o) ~n ~m
  |> governed ~jobs ~budget (fun d ->
         holds_in_all_members caps o (fun i -> Satisfaction.edd i d))

let sigma_exists_eq sigma_vee =
  List.filter_map
    (fun d ->
      match Edd.as_tgd d with
      | Some s -> Some (Dependency.tgd s)
      | None -> (
        match Edd.as_egd d with
        | Some e -> Some (Dependency.egd e)
        | None -> None))
    sigma_vee

let sigma_exists deps = Dependency.tgds deps

let synthesize ?(caps = default_caps) ?(candidate_caps = Candidates.default_caps)
    ?(minimize = false) ?(jobs = 1) ?(budget = Budget.unlimited) o ~n ~m =
  let candidate_caps = { candidate_caps with keep_tautologies = false } in
  let outcome =
    Candidates.generic ~caps:candidate_caps (Ontology.schema o) ~n ~m
    |> governed ~jobs ~budget (fun s ->
           holds_in_all_members caps o (fun i -> Satisfaction.tgd i s))
  in
  match outcome with
  | Budget.Complete sigma ->
    Budget.Complete (if minimize then Rewrite.minimize sigma else sigma)
  | Budget.Truncated _ ->
    (* a truncated candidate sweep is already a valid (if incomplete) set;
       minimizing it would spend more of an exhausted budget *)
    outcome

let verify_axiomatization o sigma ~dom_size =
  Enumerate.instances_up_to (Ontology.schema o) dom_size
  |> Seq.filter (fun i -> Ontology.mem o i <> Satisfaction.tgds i sigma)
  |> fun seq ->
  match seq () with Seq.Nil -> None | Seq.Cons (i, _) -> Some i

type ftgd_profile = {
  one_critical : bool;
  domain_independent : bool;
  modular : bool;
  intersection_closed : bool;
  non_oblivious_closed : bool;
}

let ftgd_profile ?(dom_size = 2) ?modularity_n o =
  let modularity_n = Option.value modularity_n ~default:dom_size in
  let holds = Properties.verdict_holds in
  { one_critical = holds (Properties.critical_up_to o 1);
    domain_independent = holds (Properties.domain_independent o ~dom_size);
    modular = holds (Properties.modular o ~n:modularity_n ~dom_size);
    intersection_closed =
      holds (Properties.closed_under_intersections o ~dom_size);
    non_oblivious_closed =
      holds (Properties.closed_under_non_oblivious_dupext o ~dom_size)
  }

let ftgd_profile_holds p =
  p.one_critical && p.domain_independent && p.modular && p.intersection_closed
  && p.non_oblivious_closed

type classification = {
  axioms : Tgd.t list option;
  diagnosis : Expressibility.report option;
  analysis : Tgd_analysis.Analyze.report option;
}

let classify_oracle ?(caps = default_caps) ?candidate_caps ?config o ~n ~m =
  let sigma =
    Budget.value (synthesize ~caps ?candidate_caps ~minimize:true o ~n ~m)
  in
  match verify_axiomatization o sigma ~dom_size:caps.dom_bound with
  | Some _ -> { axioms = None; diagnosis = None; analysis = None }
  | None ->
    { axioms = Some sigma;
      diagnosis = Some (Expressibility.diagnose ?config ~dom_size:caps.dom_bound sigma);
      analysis = Some (Tgd_analysis.Analyze.run sigma)
    }
