open Tgd_syntax
open Tgd_instance
module Budget = Tgd_engine.Budget
module Chaos = Tgd_engine.Chaos
module Stats = Tgd_engine.Stats
module Pool = Tgd_engine.Pool

type variant =
  | Plain
  | Linear
  | Guarded
  | Frontier_guarded

let variant_name = function
  | Plain -> "plain"
  | Linear -> "linear"
  | Guarded -> "guarded"
  | Frontier_guarded -> "frontier-guarded"

type strategy = {
  use_chase : Tgd_chase.Chase.budget option;
  enumerate_extra : int option;
}

let default_strategy =
  { use_chase = Some Tgd_chase.Chase.default_budget; enumerate_extra = Some 1 }

type configuration = { fixed : Constant.Set.t; sub : Instance.t }

let of_sub k = { fixed = Instance.adom k; sub = k }

let plain_configurations ~n i =
  Enumerate.subinstances_le i ~max_adom:n |> Seq.map of_sub

let linear_configurations ~n i =
  let schema = Instance.schema i in
  let empty = Instance.empty schema in
  Seq.cons (of_sub empty)
    (Fact.Set.to_seq (Instance.facts i)
    |> Seq.filter (fun f -> Constant.Set.cardinal (Fact.constants f) <= n)
    |> Seq.map (fun f -> of_sub (Instance.of_facts schema [ f ])))

let guarded_configurations ~n i =
  let schema = Instance.schema i in
  let empty = Instance.empty schema in
  Seq.cons (of_sub empty)
    (Fact.Set.to_seq (Instance.facts i)
    |> Seq.filter (fun f -> Constant.Set.cardinal (Fact.constants f) <= n)
    |> Seq.map (fun f -> of_sub (Instance.induced i (Fact.constants f))))

let frontier_guarded_configurations ~n i =
  let adom_elems = Constant.Set.elements (Instance.adom i) in
  Combinat.subsets_up_to n adom_elems
  |> Seq.concat_map (fun f_list ->
         let f = Constant.set_of_list f_list in
         Enumerate.subinstances_le i ~max_adom:n
         |> Seq.filter (fun k ->
                Instance.is_empty k
                || Fact.Set.exists
                     (fun fact -> Constant.Set.subset f (Fact.constants fact))
                     (Instance.facts k))
         |> Seq.map (fun k -> { fixed = f; sub = k }))

let configurations variant ~n i =
  match variant with
  | Plain -> plain_configurations ~n i
  | Linear -> linear_configurations ~n i
  | Guarded -> guarded_configurations ~n i
  | Frontier_guarded -> frontier_guarded_configurations ~n i

let witness_ok ~m ~fixed ~witness ~target =
  Neighborhood.of_set fixed witness m
  |> Seq.for_all (fun j' -> Hom.embeds_fixing fixed j' target)

type embeddability =
  | Embeddable
  | No_witness of configuration

let witnesses strategy o conf =
  let chase_seq =
    match strategy.use_chase with
    | Some budget -> (
      fun () ->
        match Ontology.chase_witness ~budget o conf.sub with
        | Some j -> Seq.Cons (j, Seq.empty)
        | None -> Seq.Nil)
    | None -> Seq.empty
  in
  let enum_seq =
    match strategy.enumerate_extra with
    | Some max_extra -> Ontology.member_extending ~max_extra o conf.sub
    | None -> Seq.empty
  in
  Seq.append chase_seq enum_seq

(* First element satisfying [pred], sequentially (lazy — later elements are
   never produced) or on a domain pool ([jobs > 1] — the sequence is forced,
   but a hit lets later chunks exit early).  Exceptions propagate (the pool
   re-raises the first failure at join); [cancel] stops pool workers between
   items. *)
let find_first ~jobs ?cancel pred seq =
  let hit x = if pred x then Some x else None in
  Pool.with_warm ~jobs (function
    | None -> Seq.find_map hit seq
    | Some pool -> Pool.parallel_find_map pool ?cancel hit seq)

let locally_embeddable ?(strategy = default_strategy) ?(jobs = 1) variant ~n ~m
    o i =
  let fails conf =
    not
      (Seq.exists
         (fun j -> witness_ok ~m ~fixed:conf.fixed ~witness:j ~target:i)
         (witnesses strategy o conf))
  in
  match find_first ~jobs fails (configurations variant ~n i) with
  | None -> Embeddable
  | Some conf -> No_witness conf

type locality_verdict =
  | Local_on_tests
  | Not_local of Instance.t

(* Non-membership plus embeddability makes [i] a locality counterexample.
   The inner embeddability check stays sequential when [jobs > 1]: the
   parallelism is one instance per pool task. *)
let is_counterexample ?strategy variant ~n ~m o i =
  (not (Ontology.mem o i))
  &&
  match locally_embeddable ?strategy variant ~n ~m o i with
  | Embeddable -> true
  | No_witness _ -> false

(* Budget-governed counterexample scan.  The budget is polled between test
   instances (sequentially via an exception, on the pool via the
   cancellation token — workers stop between items); the per-instance
   embeddability check runs to completion, so granularity is one test.  A
   hit found before the trip is a definitive [Not_local] either way;
   otherwise a tripped scan is [Truncated] with [Local_on_tests] as the
   sound partial verdict ("no counterexample among the instances actually
   tested").  Injected faults ({!Chaos.Injected}) are caught here — they
   re-raise on this domain at pool join — and surface as [Fault]. *)
let budgeted_scan ~jobs ~budget pred seq =
  let before = Stats.copy (Stats.global ()) in
  let exception Tripped in
  let guarded x =
    if Budget.check budget <> None then raise Tripped else pred x
  in
  let fault = ref None in
  let found =
    try find_first ~jobs ~cancel:(Budget.token budget) guarded seq with
    | Tripped -> None
    | Chaos.Injected site ->
      fault := Some (Budget.Fault site);
      None
  in
  match found with
  | Some i -> Budget.Complete (Not_local i)
  | None -> (
    let trip =
      match !fault with Some _ as f -> f | None -> Budget.cancelled budget
    in
    match trip with
    | None -> Budget.Complete Local_on_tests
    | Some reason ->
      Budget.Truncated
        { reason;
          partial = Local_on_tests;
          progress = Stats.diff (Stats.copy (Stats.global ())) before
        })

let check_local_on ?strategy ?(jobs = 1) ?(budget = Budget.unlimited) variant
    ~n ~m o tests =
  budgeted_scan ~jobs ~budget
    (is_counterexample ?strategy variant ~n ~m o)
    (List.to_seq tests)

let check_local_up_to ?strategy ?(jobs = 1) ?(budget = Budget.unlimited)
    variant ~n ~m o k =
  budgeted_scan ~jobs ~budget
    (is_counterexample ?strategy variant ~n ~m o)
    (Enumerate.instances_up_to (Ontology.schema o) k)
