open Tgd_syntax
open Tgd_instance
module Entailment = Tgd_chase.Entailment
module Stats = Tgd_engine.Stats
module Pool = Tgd_engine.Pool

type config = {
  caps : Candidates.caps;
  budget : Tgd_chase.Chase.budget;
  minimize : bool;
  naive : bool;
  memo : bool;
  jobs : int;
}

let default_config =
  { caps = Candidates.default_caps;
    budget = Tgd_chase.Chase.default_budget;
    minimize = true;
    naive = false;
    memo = true;
    jobs = 1
  }

type outcome =
  | Rewritable of Tgd.t list
  | Not_rewritable of { complete : bool; unknown_candidates : int }
  | Unknown of string

let pp_outcome ppf = function
  | Rewritable sigma' ->
    Fmt.pf ppf "@[<v>rewritable:@,%a@]"
      Fmt.(list ~sep:cut (box Tgd.pp))
      sigma'
  | Not_rewritable { complete; unknown_candidates } ->
    Fmt.pf ppf "not rewritable (%s%s)"
      (if complete then "definitive" else "within caps")
      (if unknown_candidates = 0 then ""
       else Printf.sprintf ", %d undecided candidates" unknown_candidates)
  | Unknown why -> Fmt.pf ppf "unknown: %s" why

type report = {
  outcome : outcome;
  n : int;
  m : int;
  candidates_enumerated : int;
  candidates_entailed : int;
  stats : Stats.t;
}

let schema_of sigma =
  Schema.make
    (List.concat_map
       (fun s -> List.map Atom.rel (Tgd.body s @ Tgd.head s))
       sigma)

let class_bounds sigma =
  List.fold_left
    (fun (n, m) s -> (max n (Tgd.n_universal s), max m (Tgd.m_existential s)))
    (0, 0) sigma

(* Greedy minimization: drop a member when the remainder still entails it.
   Larger members are tried first so the surviving set is small. *)
let minimize_set ?naive ?memo budget sigma' =
  let by_size =
    List.sort (fun a b -> Int.compare (Tgd.size b) (Tgd.size a)) sigma'
  in
  List.fold_left
    (fun kept s ->
      let rest = List.filter (fun t -> not (Tgd.equal t s)) kept in
      match Entailment.entails ?naive ?memo ~budget rest s with
      | Entailment.Proved -> rest
      | Entailment.Disproved | Entailment.Unknown -> kept)
    by_size by_size

let rewrite_into ?(config = default_config) enumerate ~complete sigma =
  let naive = config.naive and memo = config.memo in
  let before = Stats.copy (Stats.global ()) in
  let schema = schema_of sigma in
  let n, m = class_bounds sigma in
  (* Forward screening: each candidate's Σ ⊨ σ check is independent, so
     with [jobs > 1] the candidates are screened on a domain pool.  The
     pool preserves input order and merges worker counters back here, so
     the entailed list (and hence the outcome) is the same as the
     sequential path's; only memo hit/miss splits may differ when workers
     race to compute one entry.  The backward Σ' ⊨ Σ check and greedy
     minimization stay sequential — both consume the previous answer
     before choosing the next query, so there is nothing to fan out. *)
  let screen candidate =
    Entailment.entails ~naive ~memo ~budget:config.budget sigma candidate
  in
  let screened =
    let candidates = enumerate config.caps schema ~n ~m in
    if config.jobs <= 1 then
      candidates |> Seq.map (fun c -> (c, screen c)) |> List.of_seq
    else
      Pool.with_pool ~jobs:config.jobs (fun pool ->
          Pool.parallel_map pool (fun c -> (c, screen c)) candidates)
  in
  let enumerated = List.length screened in
  let unknown = ref 0 in
  let entailed =
    List.filter_map
      (fun (candidate, answer) ->
        match answer with
        | Entailment.Proved -> Some candidate
        | Entailment.Unknown ->
          incr unknown;
          None
        | Entailment.Disproved -> None)
      screened
  in
  let backward =
    Entailment.entails_set ~naive ~memo ~budget:config.budget entailed sigma
  in
  let outcome =
    match backward with
    | Entailment.Proved ->
      let sigma' =
        if config.minimize then minimize_set ~naive ~memo config.budget entailed
        else entailed
      in
      Rewritable sigma'
    | Entailment.Disproved ->
      Not_rewritable
        { complete = complete config.caps schema ~n ~m && !unknown = 0;
          unknown_candidates = !unknown
        }
    | Entailment.Unknown ->
      Unknown "chase budget exhausted while checking Σ' ⊨ Σ"
  in
  { outcome;
    n;
    m;
    candidates_enumerated = enumerated;
    candidates_entailed = List.length entailed;
    stats = Stats.diff (Stats.copy (Stats.global ())) before
  }

let g_to_l ?config sigma =
  if not (Tgd_class.all_in_class Tgd_class.Guarded sigma) then
    invalid_arg "Rewrite.g_to_l: input must be a set of guarded tgds";
  rewrite_into ?config
    (fun caps schema ~n ~m -> Candidates.linear ~caps schema ~n ~m)
    ~complete:(fun caps schema ~n ~m ->
      Candidates.linear_complete caps schema ~n ~m)
    sigma

let fg_to_g ?config sigma =
  if not (Tgd_class.all_in_class Tgd_class.Frontier_guarded sigma) then
    invalid_arg "Rewrite.fg_to_g: input must be frontier-guarded tgds";
  rewrite_into ?config
    (fun caps schema ~n ~m -> Candidates.guarded ~caps schema ~n ~m)
    ~complete:(fun caps schema ~n ~m ->
      Candidates.guarded_complete caps schema ~n ~m)
    sigma

let verify_equivalence_bounded sigma sigma' ~dom_size =
  let schema = Schema.union (schema_of sigma) (schema_of sigma') in
  Enumerate.instances_up_to schema dom_size
  |> Seq.filter (fun i ->
         Satisfaction.tgds i sigma <> Satisfaction.tgds i sigma')
  |> fun seq ->
  match seq () with Seq.Nil -> None | Seq.Cons (i, _) -> Some i

let to_frontier_guarded ?config sigma =
  rewrite_into ?config
    (fun caps schema ~n ~m -> Candidates.frontier_guarded ~caps schema ~n ~m)
    ~complete:(fun caps schema ~n ~m ->
      Candidates.generic_complete caps schema ~n ~m)
    sigma

let to_full ?config sigma =
  rewrite_into ?config
    (fun caps schema ~n ~m:_ -> Candidates.full ~caps schema ~n)
    ~complete:(fun caps schema ~n ~m:_ ->
      Candidates.generic_complete caps schema ~n ~m:0)
    sigma

let minimize ?(budget = Tgd_chase.Chase.default_budget) sigma =
  minimize_set budget sigma
