open Tgd_syntax
open Tgd_instance
module Entailment = Tgd_chase.Entailment
module Stats = Tgd_engine.Stats
module Pool = Tgd_engine.Pool
module Budget = Tgd_engine.Budget
module Chaos = Tgd_engine.Chaos
module Snapshot = Tgd_engine.Snapshot
module Delta_log = Tgd_engine.Delta_log
module Wire = Tgd_engine.Wire
module Codec = Tgd_engine.Codec

type checkpoint_sink =
  | Full of Snapshot.store
  | Incremental of Delta_log.t

type config = {
  caps : Candidates.caps;
  budget : Tgd_chase.Chase.budget;
  minimize : bool;
  naive : bool;
  memo : bool;
  jobs : int;
  chunk : int option;
  analyze : bool;
  checkpoint : checkpoint_sink option;
  checkpoint_every : int;
}

let default_config =
  { caps = Candidates.default_caps;
    budget = Tgd_chase.Chase.default_budget;
    minimize = true;
    naive = false;
    memo = true;
    jobs = 1;
    chunk = None;
    analyze = true;
    checkpoint = None;
    checkpoint_every = 1
  }

let snapshot_kind = "rewrite-sweep"

let snapshot_store ~dir ~name =
  Snapshot.create ~dir ~name ~kind:snapshot_kind ()

let log_kind = "rewrite-delta"

let log_config ?keep ?fsync ~dir ~name () =
  Delta_log.config ?keep ?fsync ~dir ~name ~kind:log_kind ()

type outcome =
  | Rewritable of Tgd.t list
  | Not_rewritable of { complete : bool; unknown_candidates : int }
  | Unknown of string

let pp_outcome ppf = function
  | Rewritable sigma' ->
    Fmt.pf ppf "@[<v>rewritable:@,%a@]"
      Fmt.(list ~sep:cut (box Tgd.pp))
      sigma'
  | Not_rewritable { complete; unknown_candidates } ->
    Fmt.pf ppf "not rewritable (%s%s)"
      (if complete then "definitive" else "within caps")
      (if unknown_candidates = 0 then ""
       else Printf.sprintf ", %d undecided candidates" unknown_candidates)
  | Unknown why -> Fmt.pf ppf "unknown: %s" why

type checkpoint = {
  cursor : int;
  screened_prefix : (Tgd.t * Entailment.answer) list;
}

(* --- incremental checkpoint codec ------------------------------------- *)

(* Base and delta records share one shape: the cursor {e after} the carried
   entries, then the entries themselves ((tgd, answer) pairs, structurally
   encoded — no [Marshal]).  A base carries the whole screened prefix, a
   delta only the entries committed since the previous record; folding
   base + deltas in order reconstructs the checkpoint exactly. *)
let encode_entries ~cursor entries =
  let buf = Buffer.create 512 in
  Wire.write_varint buf cursor;
  Wire.write_varint buf (List.length entries);
  List.iter
    (fun (tgd, answer) ->
      Codec.write_tgd buf tgd;
      Wire.write_varint buf
        (match answer with
        | Entailment.Proved -> 0
        | Entailment.Disproved -> 1
        | Entailment.Unknown -> 2))
    entries;
  Buffer.contents buf

let decode_entries payload =
  let r = Wire.reader payload in
  let cursor = Wire.read_varint r in
  let n = Wire.read_varint r in
  let entries =
    List.init n (fun _ ->
        let tgd = Codec.read_tgd r in
        let answer =
          match Wire.read_varint r with
          | 0 -> Entailment.Proved
          | 1 -> Entailment.Disproved
          | 2 -> Entailment.Unknown
          | t -> raise (Wire.Corrupt (Printf.sprintf "bad answer tag %d" t))
        in
        (tgd, answer))
  in
  (cursor, entries)

let decode_chain (chain : Delta_log.chain) =
  let cursor0, base_entries = decode_entries chain.Delta_log.base in
  let cursor, entries_rev =
    List.fold_left
      (fun (_, acc) payload ->
        let cursor, es = decode_entries payload in
        (cursor, List.rev_append es acc))
      (cursor0, List.rev base_entries)
      chain.Delta_log.deltas
  in
  { cursor; screened_prefix = List.rev entries_rev }

type resumed = {
  rz_checkpoint : checkpoint;
  rz_chain : Delta_log.chain;
  rz_warnings : string list;
}

let load_log cfg =
  match Delta_log.load cfg with
  | Delta_log.Fresh -> Ok None
  | Delta_log.Rejected errs -> Error (List.map Delta_log.error_to_string errs)
  | Delta_log.Resumed chain | Delta_log.Resumed_partial chain -> (
    match decode_chain chain with
    | cp ->
      Ok
        (Some
           { rz_checkpoint = cp;
             rz_chain = chain;
             rz_warnings = chain.Delta_log.warnings
           })
    | exception (Wire.Corrupt m | Invalid_argument m) ->
      Error
        [ Printf.sprintf "%s: undecodable checkpoint payload (%s)"
            cfg.Delta_log.name m
        ])

let start_log cfg = Delta_log.start cfg ~base:(encode_entries ~cursor:0 [])
let resume_log cfg r = Delta_log.resume cfg r.rz_chain

(* Delta records between compactions; past this the chain is folded into a
   fresh base so replay work and retained bytes stay bounded. *)
let compact_threshold = 64

type report = {
  outcome : outcome;
  n : int;
  m : int;
  candidates_enumerated : int;
  candidates_entailed : int;
  candidates_skipped : int;
  checkpoint : checkpoint option;
  stats : Stats.t;
}

let schema_of sigma =
  Schema.make
    (List.concat_map
       (fun s -> List.map Atom.rel (Tgd.body s @ Tgd.head s))
       sigma)

let class_bounds sigma =
  List.fold_left
    (fun (n, m) s -> (max n (Tgd.n_universal s), max m (Tgd.m_existential s)))
    (0, 0) sigma

(* Greedy minimization: drop a member when the remainder still entails it.
   Larger members are tried first so the surviving set is small. *)
let minimize_set ?naive ?memo ?analyze budget sigma' =
  let by_size =
    List.sort (fun a b -> Int.compare (Tgd.size b) (Tgd.size a)) sigma'
  in
  List.fold_left
    (fun kept s ->
      let rest = List.filter (fun t -> not (Tgd.equal t s)) kept in
      match Entailment.entails ?naive ?memo ?analyze ~budget rest s with
      | Entailment.Proved -> rest
      | Entailment.Disproved | Entailment.Unknown -> kept)
    by_size by_size

(* First [n] items of [seq] as a list, plus the remainder. *)
let take n seq =
  let rec go n acc seq =
    if n = 0 then (List.rev acc, seq)
    else
      match seq () with
      | Seq.Nil -> (List.rev acc, Seq.empty)
      | Seq.Cons (x, rest) -> go (n - 1) (x :: acc) rest
  in
  go n [] seq

let rewrite_into ?(config = default_config) ?resume enumerate ~complete sigma =
  let naive = config.naive and memo = config.memo in
  let analyze = config.analyze in
  let budget = config.budget in
  let before = Stats.copy (Stats.global ()) in
  let schema = schema_of sigma in
  let n, m = class_bounds sigma in
  let start, prefix =
    match resume with
    | Some cp -> (cp.cursor, cp.screened_prefix)
    | None -> (0, [])
  in
  (* Forward screening: each candidate's Σ ⊨ σ check is independent, so
     with [jobs > 1] the candidates are screened on a domain pool.  The
     pool preserves input order and merges worker counters back here, so
     the entailed list (and hence the outcome) is the same as the
     sequential path's; only memo hit/miss splits may differ when workers
     race to compute one entry.  The backward Σ' ⊨ Σ check and greedy
     minimization stay sequential — both consume the previous answer
     before choosing the next query, so there is nothing to fan out.

     Screening commits per {e batch}: the budget is checked before and
     after each batch, and a batch during which a live limit tripped (or a
     fault was injected) is discarded wholesale — its answers may have been
     computed against an already-cancelled budget.  The checkpoint cursor
     therefore always points at a batch boundary, and a resumed run
     re-screens from exactly there, so resume ∘ truncate = unbudgeted. *)
  (* Analysis prefilter: a candidate whose head mentions a relation outside
     the relation-level derivability closure of its body relations is
     definitely not entailed — the chase of the frozen body can only derive
     facts over that closure (see {!Tgd_analysis.Depgraph.derivable}) — so
     it is answered [Disproved] without chasing.  The answer is recorded in
     the screened prefix like any other, keeping checkpoints and resume
     byte-compatible; the counter is atomic because pool workers screen
     concurrently. *)
  let skipped = Atomic.make 0 in
  let prefilter =
    if not config.analyze then fun _ -> false
    else begin
      let g = Tgd_analysis.Depgraph.make sigma in
      let rels atoms =
        List.fold_left
          (fun acc a -> Relation.Set.add (Atom.rel a) acc)
          Relation.Set.empty atoms
      in
      fun candidate ->
        let reachable =
          Tgd_analysis.Depgraph.close g (rels (Tgd.body candidate))
        in
        not (Relation.Set.subset (rels (Tgd.head candidate)) reachable)
    end
  in
  (* A resumed prefix replays recorded answers without re-screening, so its
     prefilter hits must be re-derived here — otherwise the skipped counter
     would depend on where the previous run stopped. *)
  List.iter (fun (c, _) -> if prefilter c then Atomic.incr skipped) prefix;
  let screen candidate =
    if prefilter candidate then begin
      Atomic.incr skipped;
      Entailment.Disproved
    end
    else Entailment.entails ~naive ~memo ~budget ~analyze sigma candidate
  in
  (* Cost-sized chunking: the analysis strategy predicts the per-candidate
     screening cost (a termination certificate bounds each chase), and
     {!Tgd_analysis.Strategy.screen_chunk} turns that into how many
     candidates one pool claim should carry — many when certified-cheap,
     few when uncertified-heavy.  [config.chunk] overrides the prediction
     (the [--chunk] knob).  Each committed batch holds ~4 chunks per
     worker so dynamic claiming has slack to rebalance. *)
  let strat = Tgd_analysis.Strategy.decide sigma in
  let chunk_for ~items =
    match config.chunk with
    | Some c -> max 1 c
    | None -> Tgd_analysis.Strategy.screen_chunk strat ~jobs:config.jobs ~n:items
  in
  let batch_size = max 1 (4 * config.jobs * chunk_for ~items:max_int) in
  (* Durable checkpoints ride the same batch boundaries the in-memory
     checkpoint uses: the persisted cursor always points at a committed
     boundary, so a process killed mid-batch resumes exactly where an
     in-process truncation would have.  [persist] runs on the submitting
     domain only — workers never touch the store. *)
  let persisted = ref (List.length prefix) in
  let persist cp =
    match config.checkpoint with
    | None -> ()
    | Some (Full store) -> Snapshot.save store cp
    | Some (Incremental t) ->
      (* append only the entries committed since the last record — the
         write cost is the batch, not the whole prefix *)
      let fresh =
        List.filteri (fun i _ -> i >= !persisted) cp.screened_prefix
      in
      Delta_log.append t (encode_entries ~cursor:cp.cursor fresh);
      persisted := List.length cp.screened_prefix;
      if Delta_log.delta_count t >= compact_threshold then
        Delta_log.compact t
          ~base:(encode_entries ~cursor:cp.cursor cp.screened_prefix)
  in
  let run pool =
    let screened_rev = ref (List.rev prefix) in
    let cursor = ref start in
    let trip = ref None in
    let rest = ref (Seq.drop start (enumerate config.caps schema ~n ~m)) in
    let exhausted = ref false in
    let since_save = ref 0 in
    while !trip = None && not !exhausted do
      match Budget.check budget with
      | Some r -> trip := Some r
      | None ->
        let batch, rest' = take batch_size !rest in
        if batch = [] then exhausted := true
        else begin
          match
            (match pool with
            | None -> List.map (fun c -> (c, screen c)) batch
            | Some pool ->
              Pool.parallel_map pool
                ~chunk:(chunk_for ~items:(List.length batch))
                (fun c -> (c, screen c))
                (List.to_seq batch))
          with
          | results ->
            (match Budget.check budget with
            | Some r -> trip := Some r (* discard the polluted batch *)
            | None ->
              screened_rev := List.rev_append results !screened_rev;
              cursor := !cursor + List.length batch;
              rest := rest';
              incr since_save;
              if
                Option.is_some config.checkpoint
                && !since_save >= config.checkpoint_every
              then begin
                since_save := 0;
                persist
                  { cursor = !cursor;
                    screened_prefix = List.rev !screened_rev
                  }
              end)
          | exception Chaos.Injected site -> trip := Some (Budget.Fault site)
        end
    done;
    (!trip, List.rev !screened_rev, !cursor)
  in
  (* Warm pool: borrowed from the process-wide registry so repeated sweeps
     (benches, serving) never pay domain spawns per call; [with_warm]
     hands back [None] — the sequential path — when [jobs <= 1]. *)
  let trip, screened, cursor = Pool.with_warm ~jobs:config.jobs run in
  let unknown = ref 0 in
  let entailed =
    List.filter_map
      (fun (candidate, answer) ->
        match answer with
        | Entailment.Proved -> Some candidate
        | Entailment.Unknown ->
          incr unknown;
          None
        | Entailment.Disproved -> None)
      screened
  in
  let mk_report outcome checkpoint =
    { outcome;
      n;
      m;
      candidates_enumerated = cursor;
      candidates_entailed = List.length entailed;
      candidates_skipped = Atomic.get skipped;
      checkpoint;
      stats = Stats.diff (Stats.copy (Stats.global ())) before
    }
  in
  let truncated ~phase reason =
    let cp = { cursor; screened_prefix = screened } in
    persist cp;
    let partial =
      mk_report
        (Unknown
           (Fmt.str "truncated during %s: %a" phase Budget.pp_exhaustion reason))
        (Some cp)
    in
    Budget.Truncated { reason; partial; progress = partial.stats }
  in
  match trip with
  | Some reason -> truncated ~phase:"candidate screening" reason
  | None -> (
    let backward =
      Entailment.entails_set ~naive ~memo ~budget ~analyze entailed sigma
    in
    match Budget.check budget with
    | Some reason -> truncated ~phase:"the backward Σ' ⊨ Σ check" reason
    | None -> (
      let outcome =
        match backward with
        | Entailment.Proved ->
          let sigma' =
            if config.minimize then
              minimize_set ~naive ~memo ~analyze budget entailed
            else entailed
          in
          Rewritable sigma'
        | Entailment.Disproved ->
          Not_rewritable
            { complete = complete config.caps schema ~n ~m && !unknown = 0;
              unknown_candidates = !unknown
            }
        | Entailment.Unknown ->
          Unknown "chase budget exhausted while checking Σ' ⊨ Σ"
      in
      match Budget.check budget with
      | Some reason ->
        (* minimization tripped: entailment answers of [Unknown] kept
           redundant members, so the set is correct but possibly larger
           than the unbudgeted run's — report it as truncated with the
           full checkpoint so a resume recomputes the tail phases *)
        let cp = { cursor; screened_prefix = screened } in
        persist cp;
        let partial = mk_report outcome (Some cp) in
        Budget.Truncated { reason; partial; progress = partial.stats }
      | None ->
        (match config.checkpoint with
        | Some (Full store) -> Snapshot.remove store
        | Some (Incremental t) ->
          Delta_log.close t;
          Delta_log.remove (Delta_log.config_of t)
        | None -> ());
        Budget.Complete (mk_report outcome None)))

let g_to_l ?config ?resume sigma =
  if not (Tgd_class.all_in_class Tgd_class.Guarded sigma) then
    invalid_arg "Rewrite.g_to_l: input must be a set of guarded tgds";
  rewrite_into ?config ?resume
    (fun caps schema ~n ~m -> Candidates.linear ~caps schema ~n ~m)
    ~complete:(fun caps schema ~n ~m ->
      Candidates.linear_complete caps schema ~n ~m)
    sigma

let fg_to_g ?config ?resume sigma =
  if not (Tgd_class.all_in_class Tgd_class.Frontier_guarded sigma) then
    invalid_arg "Rewrite.fg_to_g: input must be frontier-guarded tgds";
  rewrite_into ?config ?resume
    (fun caps schema ~n ~m -> Candidates.guarded ~caps schema ~n ~m)
    ~complete:(fun caps schema ~n ~m ->
      Candidates.guarded_complete caps schema ~n ~m)
    sigma

let verify_equivalence_bounded sigma sigma' ~dom_size =
  let schema = Schema.union (schema_of sigma) (schema_of sigma') in
  Enumerate.instances_up_to schema dom_size
  |> Seq.filter (fun i ->
         Satisfaction.tgds i sigma <> Satisfaction.tgds i sigma')
  |> fun seq ->
  match seq () with Seq.Nil -> None | Seq.Cons (i, _) -> Some i

let to_frontier_guarded ?config ?resume sigma =
  rewrite_into ?config ?resume
    (fun caps schema ~n ~m -> Candidates.frontier_guarded ~caps schema ~n ~m)
    ~complete:(fun caps schema ~n ~m ->
      Candidates.generic_complete caps schema ~n ~m)
    sigma

let to_full ?config ?resume sigma =
  rewrite_into ?config ?resume
    (fun caps schema ~n ~m:_ -> Candidates.full ~caps schema ~n)
    ~complete:(fun caps schema ~n ~m:_ ->
      Candidates.generic_complete caps schema ~n ~m:0)
    sigma

let minimize ?(budget = Tgd_chase.Chase.default_budget) sigma =
  minimize_set budget sigma
