(** Weak acyclicity of a set of tgds (Fagin–Kolaitis–Miller–Popa).

    @deprecated This module is a thin alias kept for compatibility; the
    pass lives in {!Tgd_analysis.Termination}, which also produces cycle
    witnesses, the strictly stronger joint-acyclicity check, and the
    combined {!Tgd_analysis.Termination.certificate}.

    Weak acyclicity is {e sufficient, but not necessary}, for termination
    of the restricted chase (in polynomially many rounds); a rule set
    without the certificate may still terminate on every instance —
    termination itself is undecidable.  {!Chase} and {!Entailment} use the
    certificate to promote budget-truncated answers to definite ones. *)

open Tgd_syntax

type position = Tgd_analysis.Termination.position
(** [(R, i)] — the [i]-th position (0-based) of relation [R]. *)

type edge = Tgd_analysis.Termination.edge = {
  source : position;
  target : position;
  special : bool;
}

val dependency_graph : Tgd.t list -> edge list
(** Regular edges propagate a universal variable from a body position to a
    head position; special edges go from the body positions of each
    head-occurring universal variable to the positions of the existential
    variables of the same tgd. *)

val is_weakly_acyclic : Tgd.t list -> bool
(** No cycle goes through a special edge. *)

val pp_position : position Fmt.t
