(** Semi-naive Datalog evaluation for full tgds.

    Full tgds are exactly Datalog rules (no existentials, possibly
    multi-atom heads).  Saturation delegates to the indexed semi-naive
    engine ({!Tgd_engine.Seminaive}): each round only joins rule bodies in
    which at least one atom matches a {e delta} fact derived in the previous
    round, with the remaining atoms resolved against (relation, position,
    constant) hash indexes.

    Used as the fast path for entailment between full tgds and exposed as an
    ablation against {!Chase} (bench [ablate-datalog]). *)

open Tgd_syntax
open Tgd_instance

val saturate : ?max_facts:int -> Tgd.t list -> Instance.t -> Instance.t
(** Least fixpoint of the rules over the instance.  Raises
    [Invalid_argument] if some tgd has existential variables, and [Failure]
    if the fixpoint exceeds [max_facts] (default 1_000_000 — on a finite
    instance the fixpoint is finite, so this only guards against
    misconfiguration). *)

type stats = { rounds : int; derived : int }

val saturate_with_stats :
  ?max_facts:int -> Tgd.t list -> Instance.t -> Instance.t * stats

val entails : Tgd.t list -> Tgd.t -> bool
(** Decision procedure for entailment between full tgds: freeze the goal
    body, saturate, check the goal head.  Total and exact (both sides
    existential-free). *)
