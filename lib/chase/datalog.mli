(** Semi-naive Datalog evaluation for full tgds.

    Full tgds are exactly Datalog rules (no existentials, possibly
    multi-atom heads).  Saturation delegates to the indexed semi-naive
    engine ({!Tgd_engine.Seminaive}): each round only joins rule bodies in
    which at least one atom matches a {e delta} fact derived in the previous
    round, with the remaining atoms resolved against (relation, position,
    constant) hash indexes.

    Resource governance: saturation runs under a {!Tgd_engine.Budget} and
    returns a typed {!Tgd_engine.Budget.outcome} instead of raising — a
    truncated saturation still carries the sound prefix computed so far.

    Used as the fast path for entailment between full tgds and exposed as an
    ablation against {!Chase} (bench [ablate-datalog]). *)

open Tgd_syntax
open Tgd_instance
open Tgd_engine

val default_budget : Budget.t
(** Unlimited rounds, 1_000_000 facts, no deadline.  On a finite instance
    the fixpoint is finite, so the fact cap only guards against
    misconfiguration. *)

val saturate :
  ?budget:Budget.t -> Tgd.t list -> Instance.t -> Instance.t Budget.outcome
(** Least fixpoint of the rules over the instance.  [Complete] carries the
    fixpoint; [Truncated] carries the sound partial instance computed when
    the budget tripped, with the reason and engine counters.  Raises
    [Invalid_argument] if some tgd has existential variables. *)

type stats = { rounds : int; derived : int }

val saturate_with_stats :
  ?budget:Budget.t ->
  Tgd.t list -> Instance.t -> (Instance.t * stats) Budget.outcome

val entails : ?budget:Budget.t -> Tgd.t list -> Tgd.t -> Entailment.answer
(** Entailment between full tgds: freeze the goal body, saturate, check the
    goal head.  Exact ([Proved]/[Disproved]) when saturation completes —
    both sides are existential-free; a truncated saturation still proves
    positives from its sound prefix but reports [Unknown] instead of
    [Disproved]. *)
