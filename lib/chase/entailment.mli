(** Logical entailment between sets of tgds, via freezing and the chase
    (Section 9.2: "[Σ ⊨ σ] iff [Σ] and the database [D_φ], obtained by
    freezing [φ(x̄,ȳ)], entail the Boolean conjunctive query [q_φ] obtained
    from [∃z̄ ψ(x̄,z̄)] after freezing [x̄]" — citing Maier–Mendelzon–Sagiv).

    Entailment of arbitrary tgds is undecidable, so answers are three-valued:
    [Proved] and [Disproved] are definite; [Unknown] reports that the chase
    budget was exhausted before a verdict.  On weakly acyclic sets (in
    particular on full tgds) the restricted chase terminates and the answer
    is always definite given a sufficient budget. *)

open Tgd_syntax
open Tgd_instance

type answer =
  | Proved
  | Disproved
  | Unknown

val pp_answer : answer Fmt.t
val answer_to_string : answer -> string

val freeze : Atom.t list -> Binding.t
(** Assign a distinct frozen constant to every variable of the atoms. *)

val freeze_instance : Schema.t -> Atom.t list -> Binding.t * Instance.t
(** The database [D_φ] together with the freezing assignment. *)

val entails :
  ?naive:bool -> ?memo:bool -> ?budget:Chase.budget -> ?analyze:bool ->
  Tgd.t list -> Tgd.t -> answer
(** [entails sigma s] — does [Σ ⊨ σ]?

    With [~memo:true] (the default) answers are cached at two levels, both
    keyed up to variable renaming via {!Tgd_engine.Memo}: an answer cache on
    the canonical [(Σ, σ, budget)] triple, and below it a chase cache on
    [(Σ, canonical body of σ, budget)] — so candidate tgds sharing a body
    (the common shape in Algorithm 1/2 candidate sweeps) share one chase and
    only the final head-homomorphism check runs per candidate.  Hits and
    misses are counted in {!Tgd_engine.Stats.global}.

    [~naive:true] routes the underlying chases through the snapshot-rescan
    reference loop instead of the semi-naive engine.

    [analyze] (default [true]) is forwarded to {!Chase.restricted}: on rule
    sets carrying a termination certificate a round-capped chase is re-run
    uncapped, so answers that would have been [Unknown] only because of the
    round budget become definite.  The caches do not key on [analyze] — a
    promoted entry can only {e improve} an answer ([Unknown] → definite),
    never change a definite one, so sharing entries across both settings is
    sound. *)

val clear_memos : unit -> unit
(** Drop both entailment caches (e.g. between benchmark runs). *)

val memo_sizes : unit -> int * int
(** [(answer entries, cached chases)]. *)

val set_cache_limit : bytes:int option -> unit
(** Install (or remove) an overall byte ceiling across both entailment
    caches with LRU eviction ({!Tgd_engine.Memo.set_limit}): an eighth for
    the answer table, the rest for the chase table, whose entries dominate
    the footprint.  Changing the limit clears both tables. *)

val cache_counters : unit -> Tgd_engine.Memo.counters
(** Combined hit/miss/entry/byte/eviction counters of both caches — the
    warm-state numbers the serving layer reports. *)

val entails_set :
  ?naive:bool -> ?memo:bool -> ?budget:Chase.budget -> ?analyze:bool ->
  Tgd.t list -> Tgd.t list -> answer
(** Conjunction over the right-hand set: [Proved] if all are proved,
    [Disproved] if some is disproved, otherwise [Unknown]. *)

val equivalent :
  ?naive:bool -> ?memo:bool -> ?budget:Chase.budget -> ?analyze:bool ->
  Tgd.t list -> Tgd.t list -> answer
(** Logical equivalence [Σ ≡ Σ'] (mutual entailment). *)

val entails_egd : Tgd.t list -> Egd.t -> answer
(** A set of tgds entails an egd iff the egd is trivial on the frozen body —
    tgds cannot force equalities.  Definite. *)

val entailed_subset :
  ?naive:bool -> ?memo:bool -> ?budget:Chase.budget -> ?analyze:bool ->
  Tgd.t list -> Tgd.t list -> Tgd.t list * Tgd.t list
(** [entailed_subset sigma candidates] partitions the candidates into those
    provably entailed by [sigma] and the rest (disproved or unknown). *)
