open Tgd_syntax
open Tgd_instance
open Tgd_engine

type stats = { rounds : int; derived : int }

let check_full sigma =
  if
    List.exists
      (fun t -> not (Variable.Set.is_empty (Tgd.existential_vars t)))
      sigma
  then invalid_arg "Datalog.saturate: rules must be existential-free"

let saturate_with_stats ?(max_facts = 1_000_000) sigma inst =
  check_full sigma;
  let schema =
    List.fold_left
      (fun acc t ->
        Schema.union acc
          (Schema.make (List.map Atom.rel (Tgd.body t @ Tgd.head t))))
      (Instance.schema inst) sigma
  in
  let db =
    Instance.of_facts
      ~dom:(Constant.Set.elements (Instance.dom inst))
      schema (Instance.fact_list inst)
  in
  let r = Seminaive.run ~mode:Seminaive.Restricted ~max_rounds:max_int ~max_facts sigma db in
  (match r.Seminaive.outcome with
  | Seminaive.Budget_exhausted -> failwith "Datalog.saturate: max_facts exceeded"
  | Seminaive.Terminated -> ());
  let derived =
    Instance.fact_count r.Seminaive.instance - Instance.fact_count db
  in
  (r.Seminaive.instance, { rounds = r.Seminaive.rounds; derived })

let saturate ?max_facts sigma inst = fst (saturate_with_stats ?max_facts sigma inst)

let entails sigma goal =
  check_full sigma;
  check_full [ goal ];
  let schema =
    Schema.make
      (List.concat_map
         (fun t -> List.map Atom.rel (Tgd.body t @ Tgd.head t))
         (goal :: sigma))
  in
  let frozen, db = Entailment.freeze_instance schema (Tgd.body goal) in
  let saturated = saturate sigma db in
  match Binding.ground_atoms frozen (Tgd.head goal) with
  | Some facts -> List.for_all (Instance.mem saturated) facts
  | None -> false
