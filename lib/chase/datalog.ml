open Tgd_syntax
open Tgd_instance
open Tgd_engine

type stats = { rounds : int; derived : int }

let default_budget = Budget.make ~rounds:max_int ~facts:1_000_000 ()

let check_full sigma =
  if
    List.exists
      (fun t -> not (Variable.Set.is_empty (Tgd.existential_vars t)))
      sigma
  then invalid_arg "Datalog.saturate: rules must be existential-free"

let saturate_with_stats ?(budget = default_budget) sigma inst =
  check_full sigma;
  let schema =
    List.fold_left
      (fun acc t ->
        Schema.union acc
          (Schema.make (List.map Atom.rel (Tgd.body t @ Tgd.head t))))
      (Instance.schema inst) sigma
  in
  let db =
    Instance.of_facts
      ~dom:(Constant.Set.elements (Instance.dom inst))
      schema (Instance.fact_list inst)
  in
  let r = Seminaive.run ~mode:Seminaive.Restricted ~budget sigma db in
  let derived =
    Instance.fact_count r.Seminaive.instance - Instance.fact_count db
  in
  let value = (r.Seminaive.instance, { rounds = r.Seminaive.rounds; derived }) in
  match r.Seminaive.outcome with
  | Seminaive.Terminated -> Budget.Complete value
  | Seminaive.Truncated reason ->
    Budget.Truncated { reason; partial = value; progress = r.Seminaive.stats }

let saturate ?budget sigma inst =
  Budget.map fst (saturate_with_stats ?budget sigma inst)

let entails ?budget sigma goal =
  check_full sigma;
  check_full [ goal ];
  let schema =
    Schema.make
      (List.concat_map
         (fun t -> List.map Atom.rel (Tgd.body t @ Tgd.head t))
         (goal :: sigma))
  in
  let frozen, db = Entailment.freeze_instance schema (Tgd.body goal) in
  let holds saturated =
    match Binding.ground_atoms frozen (Tgd.head goal) with
    | Some facts -> List.for_all (Instance.mem saturated) facts
    | None -> false
  in
  match saturate ?budget sigma db with
  | Budget.Complete saturated ->
    (* the fixpoint is complete, so absence refutes *)
    if holds saturated then Entailment.Proved else Entailment.Disproved
  | Budget.Truncated { partial; _ } ->
    (* the prefix is sound: presence proves, absence stays open *)
    if holds partial then Entailment.Proved else Entailment.Unknown
