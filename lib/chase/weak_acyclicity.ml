(* Deprecated alias: the pass moved to {!Tgd_analysis.Termination}, which
   adds cycle witnesses and the strictly stronger joint-acyclicity check.
   Kept so existing callers keep compiling; new code should use the
   analysis library directly. *)

type position = Tgd_analysis.Termination.position

type edge = Tgd_analysis.Termination.edge = {
  source : position;
  target : position;
  special : bool;
}

let dependency_graph = Tgd_analysis.Termination.dependency_graph
let is_weakly_acyclic = Tgd_analysis.Termination.is_weakly_acyclic
let pp_position = Tgd_analysis.Termination.pp_position
