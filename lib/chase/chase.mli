(** The chase procedure.

    Both the {e restricted} chase (fire only active triggers) and the
    {e oblivious} chase (fire every trigger once) are provided, under an
    explicit budget.  Soundness note used by {!Entailment}: every finite
    prefix of the (restricted or oblivious) chase of [D] with [Σ] maps
    homomorphically, fixing [D]'s constants, into every model [M ⊨ Σ] with
    [facts(D) ⊆ facts(M)] — so facts derived within the budget are certain,
    while exhaustion of the budget leaves satisfaction open.

    By default both chases run on the indexed semi-naive engine
    ({!Tgd_engine.Seminaive}); [~naive:true] selects the original
    snapshot-rescan loop, kept as a reference implementation for
    differential testing and benchmarking. *)

open Tgd_syntax
open Tgd_instance
open Tgd_engine

type budget = Budget.t
(** The unified governance record ({!Tgd_engine.Budget}): round/fact/fuel
    caps, optional wall-clock deadline and memory ceiling, cancellation
    token.  Build with [Budget.make]/[Budget.limits]. *)

val default_budget : budget
(** {!Tgd_engine.Budget.default}: 64 rounds, 20_000 facts, nothing else. *)

type outcome =
  | Terminated  (** no active trigger remains: the result is a model *)
  | Truncated of Budget.exhaustion
      (** a limit tripped; the result is a sound prefix of the chase, and
          the reason says which limit.  [Rounds]/[Facts] truncations are
          reproducible; deadline/memory/fuel/cancellation/fault ones stop
          at a wall-clock accident but still commit a prefix of the same
          deterministic firing sequence (independent of [jobs]). *)

type result = {
  instance : Instance.t;
  outcome : outcome;
  rounds : int;    (** rounds actually performed *)
  fired : int;     (** triggers fired *)
  stats : Stats.t; (** engine counters for this run (also in Stats.global) *)
}

val restricted :
  ?naive:bool ->
  ?budget:budget -> ?on_fire:(Trigger.t -> Fact.t list -> unit) ->
  ?jobs:int -> ?chunk:int -> ?memo:bool -> ?analyze:bool ->
  Tgd.t list -> Instance.t -> result
(** Breadth-first restricted chase.  When [outcome = Terminated] the
    instance is a universal model of [(facts(D), Σ)].  [on_fire] observes
    every fired trigger together with the grounded head facts (new or
    not) — the hook behind {!Provenance}.

    [jobs > 1] runs each round's match phase on a warm domain pool
    ({!Tgd_engine.Pool.with_warm} — live across rounds and across calls);
    results are merged deterministically, so the outcome is identical to
    [jobs = 1], which bypasses the pool entirely (ignored on the naive
    path).  [chunk] fixes the match tasks per pool claim (default: sized
    by the pool); the outcome is independent of it.  [memo:true] consults
    a process-wide
    result cache keyed on (kind, implementation, budget, canonical theory,
    input facts) — only when no [on_fire] observer is passed, since a
    cached replay could not invoke it.

    [analyze] (default [true]) promotes a [Truncated Rounds] outcome on a
    rule set carrying a termination certificate
    ({!Tgd_analysis.Termination.certificate}) by re-running with the round
    cap lifted: the certificate guarantees the rerun finishes (or trips a
    {e different} limit, which is then reported honestly).  Fact caps,
    deadlines, fuel and cancellation are never overridden.  Pass
    [~analyze:false] to keep the raw budgeted behavior. *)

val oblivious :
  ?naive:bool ->
  ?budget:budget -> ?on_fire:(Trigger.t -> Fact.t list -> unit) ->
  ?jobs:int -> ?chunk:int -> ?memo:bool -> ?analyze:bool ->
  Tgd.t list -> Instance.t -> result
(** Oblivious (naive) chase: every trigger fires exactly once.  [jobs],
    [chunk], [memo] and [analyze] as in {!restricted}. *)

val clear_memo : unit -> unit
(** Drop every entry of the [~memo:true] result cache. *)

val set_memo_limit : bytes:int option -> unit
(** Install (or remove) a byte ceiling with LRU eviction on the
    [~memo:true] result cache ({!Tgd_engine.Memo.set_limit}); changing the
    limit clears the cache. *)

val memo_counters : unit -> Tgd_engine.Memo.counters
(** Hit/miss/entry/byte/eviction counters of the result cache. *)

type checkpoint = {
  chk_instance : Instance.t;  (** committed saturation prefix *)
  chk_rounds : int;           (** rounds completed across all slices *)
  chk_fired : int;
}
(** On-disk chase state, persisted through {!Tgd_engine.Snapshot}. *)

val snapshot_kind : string
(** The {!Tgd_engine.Snapshot} kind tag for legacy full-state chase
    checkpoints (["chase-state"]).  Kept as the [Marshal] baseline the
    benches compare the delta chain against. *)

val snapshot_store : dir:string -> name:string -> Tgd_engine.Snapshot.store
(** A full-state store of {!snapshot_kind} under [dir] (legacy path). *)

val log_kind : string
(** The {!Tgd_engine.Delta_log} kind tag for incremental chase checkpoints
    (["chase-delta"]). *)

val log_config :
  ?keep:int ->
  ?fsync:bool ->
  dir:string ->
  name:string ->
  unit ->
  Delta_log.config
(** An incremental checkpoint log of {!log_kind} under [dir]: a full base
    snapshot plus per-barrier delta records, compacted generationally
    ([keep] retained, default 2).  [fsync] syncs every barrier (default
    off — kill -9 does not need it). *)

type resumed = {
  rz_checkpoint : checkpoint;  (** base + verified deltas, replayed *)
  rz_chain : Delta_log.chain;  (** where appends continue *)
  rz_warnings : string list;
      (** non-empty = degraded resume: records were lost to mid-chain
          corruption or a generation fallback (callers should surface
          these, then continue) *)
}

val load_log :
  Delta_log.config -> (resumed option, string list) Stdlib.result
(** Load and replay an incremental checkpoint chain.  [Ok None] — nothing
    on disk, start fresh.  [Ok (Some r)] — resume from [r]; a torn final
    record (the expected kill -9 signature) is dropped silently, while
    mid-chain corruption surfaces in [rz_warnings] with the resume taken
    from the last verifiable prefix.  [Error] — no generation yields a
    verifiable base: surface the diagnoses, don't silently restart. *)

val restricted_resumable :
  ?budget:budget ->
  ?jobs:int ->
  ?chunk:int ->
  ?every:int ->
  ?compact_every:int ->
  log:Delta_log.config ->
  ?resume:resumed ->
  Tgd.t list -> Instance.t -> result
(** {!restricted} with incremental durable checkpoints: one engine run
    whose round-barrier commits append delta records to [log] — one record
    every [every] committed rounds (default 8; [every = 1] is affordable,
    records cost only that span's new facts), folded into a fresh base
    generation every [compact_every] records (default 64).  The log is
    removed when the chase terminates; on truncation the chain is synced
    to the exact returned state, so a killed or budget-tripped run resumes
    from [load_log] via [?resume] instead of refiring from the input.
    The budget governs the whole run across resumes ([rounds] counts
    cumulatively); promotion ([analyze]) and [memo] are disabled.  A
    resumed run reaches the same saturation up to null renaming (the
    engine's delta stratification restarts at the checkpoint). *)

val is_model : result -> bool
(** [outcome = Terminated]. *)

val deterministic_result : result -> bool
(** Whether the result is a function of the deterministic caps alone —
    [Terminated] or [Truncated (Rounds | Facts)].  Deadline-, memory-,
    fuel-, cancellation-, and fault-truncated runs stopped at a wall-clock
    accident and are not reproducible; caches keyed on {!Budget.key} (which
    covers only the caps) must store nothing else. *)

val pp_result : result Fmt.t
