open Tgd_syntax
open Tgd_instance
open Tgd_engine

type budget = Budget.t

let default_budget = Budget.default

type outcome =
  | Terminated
  | Truncated of Budget.exhaustion

type result = {
  instance : Instance.t;
  outcome : outcome;
  rounds : int;
  fired : int;
  stats : Stats.t;
}

let rec max_null_in_const acc = function
  | Constant.Null i -> max acc i
  | Constant.Pair (a, b) -> max_null_in_const (max_null_in_const acc a) b
  | Constant.Named _ | Constant.Indexed _ -> acc

let max_null inst =
  Constant.Set.fold (fun c acc -> max_null_in_const acc c) (Instance.dom inst) 0

let fire ?(on_fire = fun _ _ -> ()) null_counter inst tr =
  let tgd = tr.Trigger.tgd in
  let h =
    Variable.Set.fold
      (fun z acc ->
        incr null_counter;
        Binding.add z (Constant.null !null_counter) acc)
      (Tgd.existential_vars tgd)
      tr.Trigger.hom
  in
  match Binding.ground_atoms h (Tgd.head tgd) with
  | Some facts ->
    on_fire tr facts;
    List.fold_left Instance.add_fact inst facts
  | None -> assert false (* body ∪ existential vars cover the head *)

(* The original snapshot-rescan loop, kept as a reference implementation
   behind [~naive:true] and exercised by the differential tests.

   Scan accounting: one scan per trigger enumerated during matching — the
   same unit the engine books, so naive/engine scan totals are directly
   comparable.  The rescan cost shows up as the naive loop re-enumerating
   {e every} body homomorphism of the snapshot each round, where the engine
   only enumerates triggers touching the previous delta. *)
let run_naive ~recheck_active ~skip_fired ?(budget = default_budget) ?on_fire
    sigma inst =
  let stats = Stats.create () in
  let null_counter = ref (max_null inst) in
  let fired_keys : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let current = ref inst in
  let rounds = ref 0 in
  let fired = ref 0 in
  let trip = ref None in
  let set_trip r = if !trip = None then trip := Some r in
  let poll = ref 0 in
  let progressed = ref true in
  (try
     while !progressed && !trip = None && !rounds < budget.Budget.max_rounds do
       (match Budget.check budget with
       | Some r -> set_trip r
       | None ->
         incr rounds;
         progressed := false;
         let before = Instance.fact_count !current in
         let snapshot = !current in
         let t0 = Unix.gettimeofday () in
         List.iter
           (fun tgd ->
             if !trip = None then
               Seq.iter
                 (fun tr ->
                   if !trip = None then begin
                     Chaos.step ~site:"chase.naive";
                     incr poll;
                     if !poll land 63 = 0 then
                       Option.iter set_trip (Budget.check budget);
                     stats.Stats.scans <- stats.Stats.scans + 1;
                     let skip =
                       !trip <> None
                       || (skip_fired && Hashtbl.mem fired_keys (Trigger.key tr))
                       || (recheck_active && not (Trigger.is_active tr !current))
                     in
                     if not skip then begin
                       match Budget.spend_fuel budget 1 with
                       | Some r -> set_trip r
                       | None ->
                         if skip_fired then
                           Hashtbl.add fired_keys (Trigger.key tr) ();
                         current := fire ?on_fire null_counter !current tr;
                         incr fired;
                         stats.Stats.fired <- stats.Stats.fired + 1;
                         progressed := true;
                         if Instance.fact_count !current > budget.Budget.max_facts
                         then set_trip Budget.Facts
                     end
                   end)
                 (* activity is antitone in the instance, so filtering the
                    full snapshot enumeration against the live instance
                    fires exactly the triggers the old double check (active
                    in snapshot, then in current) did, in the same order *)
                 (Trigger.all tgd snapshot))
           sigma;
         stats.Stats.fire_time <-
           stats.Stats.fire_time +. (Unix.gettimeofday () -. t0);
         stats.Stats.delta_facts <-
           stats.Stats.delta_facts + (Instance.fact_count !current - before))
     done
   with Chaos.Injected site -> set_trip (Budget.Fault site));
  stats.Stats.rounds <- !rounds;
  let outcome =
    match !trip with
    | Some r -> Truncated r
    | None ->
      if !progressed then
        (* the loop stopped because of max_rounds while still making progress *)
        if !rounds >= budget.Budget.max_rounds
           && List.exists
                (fun tgd -> not (Seq.is_empty (Trigger.active tgd !current)))
                sigma
        then Truncated Budget.Rounds
        else Terminated
      else Terminated
  in
  Stats.add ~into:(Stats.global ()) stats;
  { instance = !current; outcome; rounds = !rounds; fired = !fired; stats }

let run_engine ~mode ?(budget = default_budget) ?on_fire ~jobs ?chunk sigma
    inst =
  let on_fire =
    Option.map
      (fun f tgd hom facts -> f { Trigger.tgd; hom } facts)
      on_fire
  in
  (* warm pool: saturation rounds (and repeated chases — screening runs
     thousands) reuse live domains instead of re-spawning per call *)
  let r =
    Pool.with_warm ~jobs (fun pool ->
        Seminaive.run ~mode ~budget ?on_fire ?pool ?chunk sigma inst)
  in
  { instance = r.Seminaive.instance;
    outcome =
      (match r.Seminaive.outcome with
      | Seminaive.Terminated -> Terminated
      | Seminaive.Truncated reason -> Truncated reason);
    rounds = r.Seminaive.rounds;
    fired = r.Seminaive.fired;
    stats = r.Seminaive.stats
  }

(* ------------------------------------------------------------------ *)
(* Chase-result cache                                                  *)
(* ------------------------------------------------------------------ *)

(* Keyed on everything a {e reproducible} result depends on: chase kind,
   implementation, the deterministic budget caps ({!Budget.key}), the
   canonical theory key, and the (sorted, printed) input facts.  Only
   consulted when the caller opts in with [~memo:true] and passes no
   [on_fire] observer (a cached replay could not invoke it). *)
let result_memo : result Memo.t = Memo.create ~name:"chase-results" ()

let clear_memo () = Memo.clear result_memo

let set_memo_limit ~bytes = Memo.set_limit result_memo ~bytes

let memo_counters () = Memo.counters result_memo

let chase_key ~kind ~naive ~budget sigma inst =
  Fmt.str "%s|naive=%b|%s|%s|%s" kind naive (Budget.key budget)
    (Memo.sigma_key sigma)
    (Instance.fact_list inst |> List.map Fact.to_string
    |> List.sort String.compare |> String.concat ",")

(* A result may be stored only when it is a function of the caps in the
   key: complete runs and cap-truncated runs qualify; deadline-, memory-,
   fuel-, cancellation- or fault-truncated runs stopped at a wall-clock
   accident and must not be replayed.  Lookups stay sound for any budget
   sharing the caps — a cached deterministic result is exactly what the
   live-limited run would have produced given enough time. *)
let deterministic_result r =
  match r.outcome with
  | Terminated | Truncated (Budget.Rounds | Budget.Facts) -> true
  | Truncated _ -> false

let cached ~kind ~naive ~budget ~memo ~has_on_fire sigma inst run =
  if memo && not has_on_fire then begin
    let key = chase_key ~kind ~naive ~budget sigma inst in
    match Memo.find result_memo key with
    | Some r -> r
    | None ->
      let r = run () in
      if deterministic_result r then Memo.add result_memo key r;
      r
  end
  else run ()

(* ------------------------------------------------------------------ *)
(* Analysis-driven promotion                                           *)
(*                                                                     *)
(* A termination certificate (weak or joint acyclicity) guarantees the *)
(* chase finishes on every instance, so a round cap on a certified set *)
(* is advisory: when it trips, re-running with the cap lifted turns    *)
(* the [Truncated Rounds] into a definite result.  Only the round cap  *)
(* is lifted — fact caps, deadlines, fuel and cancellation are memory/ *)
(* wall-clock guards the certificate says nothing about.  The rerun    *)
(* goes through the same [cached] wrapper with the lifted budget, so   *)
(* every cache entry stays keyed by the caps that produced it.         *)
(* ------------------------------------------------------------------ *)

let cert_memo : bool Memo.t = Memo.create ~name:"termination-certs" ()

let certified_terminating sigma =
  let key = Memo.sigma_key sigma in
  match Memo.find cert_memo key with
  | Some b -> b
  | None ->
    let b = Tgd_analysis.Termination.certificate sigma <> None in
    Memo.add cert_memo key b;
    b

let with_promotion ~analyze ~budget ~rerun sigma r =
  match r.outcome with
  | Truncated Budget.Rounds
    when analyze
         && budget.Budget.max_rounds < max_int
         && certified_terminating sigma ->
    rerun (Budget.with_rounds budget max_int)
  | _ -> r

let restricted ?(naive = false) ?(budget = default_budget) ?on_fire
    ?(jobs = 1) ?chunk ?(memo = false) ?(analyze = true) sigma inst =
  let go budget =
    cached ~kind:"restricted" ~naive ~budget ~memo
      ~has_on_fire:(Option.is_some on_fire) sigma inst (fun () ->
        if naive then
          run_naive ~recheck_active:true ~skip_fired:false ~budget ?on_fire
            sigma inst
        else
          run_engine ~mode:Seminaive.Restricted ~budget ?on_fire ~jobs ?chunk
            sigma inst)
  in
  with_promotion ~analyze ~budget ~rerun:go sigma (go budget)

let oblivious ?(naive = false) ?(budget = default_budget) ?on_fire ?(jobs = 1)
    ?chunk ?(memo = false) ?(analyze = true) sigma inst =
  let go budget =
    cached ~kind:"oblivious" ~naive ~budget ~memo
      ~has_on_fire:(Option.is_some on_fire) sigma inst (fun () ->
        if naive then
          run_naive ~recheck_active:false ~skip_fired:true ~budget ?on_fire
            sigma inst
        else
          run_engine ~mode:Seminaive.Oblivious ~budget ?on_fire ~jobs ?chunk
            sigma inst)
  in
  with_promotion ~analyze ~budget ~rerun:go sigma (go budget)

(* ------------------------------------------------------------------ *)
(* Durable checkpoints                                                 *)
(* ------------------------------------------------------------------ *)

type checkpoint = {
  chk_instance : Instance.t;
  chk_rounds : int;
  chk_fired : int;
}

let snapshot_kind = "chase-state"

let snapshot_store ~dir ~name =
  Snapshot.create ~dir ~name ~kind:snapshot_kind ()

(* Checkpointed restricted chase: run in slices of [every] rounds and
   persist the committed instance at each slice boundary, so a killed run
   resumes from the last boundary instead of refiring from the input.
   [Budget.with_rounds] shares the fuel tank, deadline and cancellation
   token across slices, so the overall governance is that of [budget]; the
   per-slice round cap is the only retuned knob.

   Resumed runs re-derive the same saturation (the committed prefix is
   sound, and restricted firing is idempotent on satisfied triggers), but
   the semi-naive engine restarts each slice with the full instance as its
   delta, so round numbering and fresh-null naming may differ from the
   uninterrupted run — the result is identical up to null renaming
   (isomorphism), which is all the chase ever promises.  Certificate-based
   promotion is disabled: lifting the round cap would defeat slicing. *)
let restricted_resumable ?(budget = default_budget) ?(jobs = 1) ?(every = 8)
    ~store ?resume sigma inst =
  if every < 1 then
    invalid_arg "Chase.restricted_resumable: every must be >= 1";
  let acc = Stats.create () in
  let rec go inst rounds_done fired_done =
    let slice = min every (budget.Budget.max_rounds - rounds_done) in
    let r =
      restricted ~budget:(Budget.with_rounds budget slice) ~jobs
        ~analyze:false sigma inst
    in
    Stats.add ~into:acc r.stats;
    let rounds_done = rounds_done + r.rounds in
    let fired_done = fired_done + r.fired in
    let save () =
      Snapshot.save store
        { chk_instance = r.instance;
          chk_rounds = rounds_done;
          chk_fired = fired_done
        }
    in
    let finish outcome =
      { instance = r.instance;
        outcome;
        rounds = rounds_done;
        fired = fired_done;
        stats = acc
      }
    in
    match r.outcome with
    | Terminated ->
      Snapshot.remove store;
      finish Terminated
    | Truncated Budget.Rounds when rounds_done < budget.Budget.max_rounds ->
      (* only the slice cap tripped: persist and keep going *)
      save ();
      go r.instance rounds_done fired_done
    | Truncated reason ->
      save ();
      finish (Truncated reason)
  in
  match resume with
  | Some cp -> go cp.chk_instance cp.chk_rounds cp.chk_fired
  | None -> go inst 0 0

let is_model r = r.outcome = Terminated

let pp_result ppf r =
  Fmt.pf ppf "@[<v>outcome: %s; rounds: %d; fired: %d; facts: %d@]"
    (match r.outcome with
    | Terminated -> "terminated"
    | Truncated reason ->
      "truncated: " ^ Budget.exhaustion_to_string reason)
    r.rounds r.fired
    (Instance.fact_count r.instance)
