open Tgd_syntax
open Tgd_instance
open Tgd_engine

type budget = Budget.t

let default_budget = Budget.default

type outcome =
  | Terminated
  | Truncated of Budget.exhaustion

type result = {
  instance : Instance.t;
  outcome : outcome;
  rounds : int;
  fired : int;
  stats : Stats.t;
}

let rec max_null_in_const acc = function
  | Constant.Null i -> max acc i
  | Constant.Pair (a, b) -> max_null_in_const (max_null_in_const acc a) b
  | Constant.Named _ | Constant.Indexed _ -> acc

let max_null inst =
  Constant.Set.fold (fun c acc -> max_null_in_const acc c) (Instance.dom inst) 0

let fire ?(on_fire = fun _ _ -> ()) null_counter inst tr =
  let tgd = tr.Trigger.tgd in
  let h =
    Variable.Set.fold
      (fun z acc ->
        incr null_counter;
        Binding.add z (Constant.null !null_counter) acc)
      (Tgd.existential_vars tgd)
      tr.Trigger.hom
  in
  match Binding.ground_atoms h (Tgd.head tgd) with
  | Some facts ->
    on_fire tr facts;
    List.fold_left Instance.add_fact inst facts
  | None -> assert false (* body ∪ existential vars cover the head *)

(* The original snapshot-rescan loop, kept as a reference implementation
   behind [~naive:true] and exercised by the differential tests.

   Scan accounting: one scan per trigger enumerated during matching — the
   same unit the engine books, so naive/engine scan totals are directly
   comparable.  The rescan cost shows up as the naive loop re-enumerating
   {e every} body homomorphism of the snapshot each round, where the engine
   only enumerates triggers touching the previous delta. *)
let run_naive ~recheck_active ~skip_fired ?(budget = default_budget) ?on_fire
    sigma inst =
  let stats = Stats.create () in
  let null_counter = ref (max_null inst) in
  let fired_keys : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let current = ref inst in
  let rounds = ref 0 in
  let fired = ref 0 in
  let trip = ref None in
  let set_trip r = if !trip = None then trip := Some r in
  let poll = ref 0 in
  let progressed = ref true in
  (try
     while !progressed && !trip = None && !rounds < budget.Budget.max_rounds do
       (match Budget.check budget with
       | Some r -> set_trip r
       | None ->
         incr rounds;
         progressed := false;
         let before = Instance.fact_count !current in
         let snapshot = !current in
         let t0 = Unix.gettimeofday () in
         List.iter
           (fun tgd ->
             if !trip = None then
               Seq.iter
                 (fun tr ->
                   if !trip = None then begin
                     Chaos.step ~site:"chase.naive";
                     incr poll;
                     if !poll land 63 = 0 then
                       Option.iter set_trip (Budget.check budget);
                     stats.Stats.scans <- stats.Stats.scans + 1;
                     let skip =
                       !trip <> None
                       || (skip_fired && Hashtbl.mem fired_keys (Trigger.key tr))
                       || (recheck_active && not (Trigger.is_active tr !current))
                     in
                     if not skip then begin
                       match Budget.spend_fuel budget 1 with
                       | Some r -> set_trip r
                       | None ->
                         if skip_fired then
                           Hashtbl.add fired_keys (Trigger.key tr) ();
                         current := fire ?on_fire null_counter !current tr;
                         incr fired;
                         stats.Stats.fired <- stats.Stats.fired + 1;
                         progressed := true;
                         if Instance.fact_count !current > budget.Budget.max_facts
                         then set_trip Budget.Facts
                     end
                   end)
                 (* activity is antitone in the instance, so filtering the
                    full snapshot enumeration against the live instance
                    fires exactly the triggers the old double check (active
                    in snapshot, then in current) did, in the same order *)
                 (Trigger.all tgd snapshot))
           sigma;
         stats.Stats.fire_time <-
           stats.Stats.fire_time +. (Unix.gettimeofday () -. t0);
         stats.Stats.delta_facts <-
           stats.Stats.delta_facts + (Instance.fact_count !current - before))
     done
   with Chaos.Injected site -> set_trip (Budget.Fault site));
  stats.Stats.rounds <- !rounds;
  let outcome =
    match !trip with
    | Some r -> Truncated r
    | None ->
      if !progressed then
        (* the loop stopped because of max_rounds while still making progress *)
        if !rounds >= budget.Budget.max_rounds
           && List.exists
                (fun tgd -> not (Seq.is_empty (Trigger.active tgd !current)))
                sigma
        then Truncated Budget.Rounds
        else Terminated
      else Terminated
  in
  Stats.add ~into:(Stats.global ()) stats;
  { instance = !current; outcome; rounds = !rounds; fired = !fired; stats }

let run_engine ~mode ?(budget = default_budget) ?on_fire ~jobs ?chunk sigma
    inst =
  let on_fire =
    Option.map
      (fun f tgd hom facts -> f { Trigger.tgd; hom } facts)
      on_fire
  in
  (* warm pool: saturation rounds (and repeated chases — screening runs
     thousands) reuse live domains instead of re-spawning per call *)
  let r =
    Pool.with_warm ~jobs (fun pool ->
        Seminaive.run ~mode ~budget ?on_fire ?pool ?chunk sigma inst)
  in
  { instance = r.Seminaive.instance;
    outcome =
      (match r.Seminaive.outcome with
      | Seminaive.Terminated -> Terminated
      | Seminaive.Truncated reason -> Truncated reason);
    rounds = r.Seminaive.rounds;
    fired = r.Seminaive.fired;
    stats = r.Seminaive.stats
  }

(* ------------------------------------------------------------------ *)
(* Chase-result cache                                                  *)
(* ------------------------------------------------------------------ *)

(* Keyed on everything a {e reproducible} result depends on: chase kind,
   implementation, the deterministic budget caps ({!Budget.key}), the
   canonical theory key, and the (sorted, printed) input facts.  Only
   consulted when the caller opts in with [~memo:true] and passes no
   [on_fire] observer (a cached replay could not invoke it). *)
let result_memo : result Memo.t = Memo.create ~name:"chase-results" ()

let clear_memo () = Memo.clear result_memo

let set_memo_limit ~bytes = Memo.set_limit result_memo ~bytes

let memo_counters () = Memo.counters result_memo

let chase_key ~kind ~naive ~budget sigma inst =
  Fmt.str "%s|naive=%b|%s|%s|%s" kind naive (Budget.key budget)
    (Memo.sigma_key sigma)
    (Instance.fact_list inst |> List.map Fact.to_string
    |> List.sort String.compare |> String.concat ",")

(* A result may be stored only when it is a function of the caps in the
   key: complete runs and cap-truncated runs qualify; deadline-, memory-,
   fuel-, cancellation- or fault-truncated runs stopped at a wall-clock
   accident and must not be replayed.  Lookups stay sound for any budget
   sharing the caps — a cached deterministic result is exactly what the
   live-limited run would have produced given enough time. *)
let deterministic_result r =
  match r.outcome with
  | Terminated | Truncated (Budget.Rounds | Budget.Facts) -> true
  | Truncated _ -> false

let cached ~kind ~naive ~budget ~memo ~has_on_fire sigma inst run =
  if memo && not has_on_fire then begin
    let key = chase_key ~kind ~naive ~budget sigma inst in
    match Memo.find result_memo key with
    | Some r -> r
    | None ->
      let r = run () in
      if deterministic_result r then Memo.add result_memo key r;
      r
  end
  else run ()

(* ------------------------------------------------------------------ *)
(* Analysis-driven promotion                                           *)
(*                                                                     *)
(* A termination certificate guarantees the chase finishes on every    *)
(* instance, so a round cap on a certified set is advisory: when it    *)
(* trips, re-running with the cap lifted turns the [Truncated Rounds]  *)
(* into a definite result.  Only the round cap is lifted — fact caps,  *)
(* deadlines, fuel and cancellation are memory/wall-clock guards the   *)
(* certificate says nothing about.  The rerun goes through the same    *)
(* [cached] wrapper with the lifted budget, so every cache entry stays *)
(* keyed by the caps that produced it.                                 *)
(*                                                                     *)
(* The restricted chase consults the full termination lattice (SWA,    *)
(* MSA, MFA, stratification on top of WA/JA): every lattice notion     *)
(* bounds the Skolem chase, hence the restricted chase too.  The       *)
(* oblivious chase keeps the WA/JA front only: it fires once per       *)
(* *universal* binding, so frontier-empty existentials replay beyond   *)
(* what the Skolem-chase notions bound.                                *)
(* ------------------------------------------------------------------ *)

let cert_memo : bool Memo.t = Memo.create ~name:"termination-certs" ()
let lattice_memo : bool Memo.t = Memo.create ~name:"termination-lattice" ()

let certified_terminating sigma =
  let key = Memo.sigma_key sigma in
  match Memo.find cert_memo key with
  | Some b -> b
  | None ->
    let b = Tgd_analysis.Termination.certificate sigma <> None in
    Memo.add cert_memo key b;
    b

let lattice_certified sigma =
  let key = Memo.sigma_key sigma in
  match Memo.find lattice_memo key with
  | Some b -> b
  | None ->
    let b = Tgd_analysis.Lattice.classify sigma <> None in
    Memo.add lattice_memo key b;
    b

let with_promotion ~certified ~analyze ~budget ~rerun sigma r =
  match r.outcome with
  | Truncated Budget.Rounds
    when analyze && budget.Budget.max_rounds < max_int && certified sigma ->
    rerun (Budget.with_rounds budget max_int)
  | _ -> r

let restricted ?(naive = false) ?(budget = default_budget) ?on_fire
    ?(jobs = 1) ?chunk ?(memo = false) ?(analyze = true) sigma inst =
  let go budget =
    cached ~kind:"restricted" ~naive ~budget ~memo
      ~has_on_fire:(Option.is_some on_fire) sigma inst (fun () ->
        if naive then
          run_naive ~recheck_active:true ~skip_fired:false ~budget ?on_fire
            sigma inst
        else
          run_engine ~mode:Seminaive.Restricted ~budget ?on_fire ~jobs ?chunk
            sigma inst)
  in
  with_promotion ~certified:lattice_certified ~analyze ~budget ~rerun:go sigma
    (go budget)

let oblivious ?(naive = false) ?(budget = default_budget) ?on_fire ?(jobs = 1)
    ?chunk ?(memo = false) ?(analyze = true) sigma inst =
  let go budget =
    cached ~kind:"oblivious" ~naive ~budget ~memo
      ~has_on_fire:(Option.is_some on_fire) sigma inst (fun () ->
        if naive then
          run_naive ~recheck_active:false ~skip_fired:true ~budget ?on_fire
            sigma inst
        else
          run_engine ~mode:Seminaive.Oblivious ~budget ?on_fire ~jobs ?chunk
            sigma inst)
  in
  with_promotion ~certified:certified_terminating ~analyze ~budget ~rerun:go
    sigma (go budget)

(* ------------------------------------------------------------------ *)
(* Durable checkpoints                                                 *)
(* ------------------------------------------------------------------ *)

type checkpoint = {
  chk_instance : Instance.t;
  chk_rounds : int;
  chk_fired : int;
}

let snapshot_kind = "chase-state"

let snapshot_store ~dir ~name =
  Snapshot.create ~dir ~name ~kind:snapshot_kind ()

(* --- incremental delta checkpoints ------------------------------------ *)

let log_kind = "chase-delta"

let log_config ?keep ?fsync ~dir ~name () =
  Delta_log.config ?keep ?fsync ~dir ~name ~kind:log_kind ()

(* Base payload: the full committed state (instance, rounds, fired).
   Delta payload: the spans added since the previous record — rounds,
   firings, and the new facts in commit order, relations encoded as indices
   into the base schema.  Folding base + deltas in order reconstructs the
   exact instance (facts carry their literal nulls, and every fresh null
   lands in an added fact, so [Seminaive.max_null] restores the null
   counter too). *)
let encode_base cp =
  let buf = Buffer.create 4096 in
  Codec.write_instance buf cp.chk_instance;
  Wire.write_varint buf cp.chk_rounds;
  Wire.write_varint buf cp.chk_fired;
  Buffer.contents buf

let encode_delta w ~rounds ~fired facts =
  let buf = Buffer.create 256 in
  Wire.write_varint buf rounds;
  Wire.write_varint buf fired;
  Codec.write_facts w buf facts;
  Buffer.contents buf

let decode_chain (chain : Delta_log.chain) =
  let r = Wire.reader chain.Delta_log.base in
  let inst = Codec.read_instance r in
  let rounds = Wire.read_varint r in
  let fired = Wire.read_varint r in
  let rr = Codec.rel_reader (Instance.schema inst) in
  List.fold_left
    (fun cp payload ->
      let r = Wire.reader payload in
      let dr = Wire.read_varint r in
      let df = Wire.read_varint r in
      let facts = Codec.read_facts rr r in
      { chk_instance = List.fold_left Instance.add_fact cp.chk_instance facts;
        chk_rounds = cp.chk_rounds + dr;
        chk_fired = cp.chk_fired + df
      })
    { chk_instance = inst; chk_rounds = rounds; chk_fired = fired }
    chain.Delta_log.deltas

type resumed = {
  rz_checkpoint : checkpoint;
  rz_chain : Delta_log.chain;
  rz_warnings : string list;
}

let load_log cfg =
  match Delta_log.load cfg with
  | Delta_log.Fresh -> Ok None
  | Delta_log.Rejected errs -> Error (List.map Delta_log.error_to_string errs)
  | Delta_log.Resumed chain | Delta_log.Resumed_partial chain -> (
    match decode_chain chain with
    | cp ->
      Ok
        (Some
           { rz_checkpoint = cp;
             rz_chain = chain;
             rz_warnings = chain.Delta_log.warnings
           })
    | exception (Wire.Corrupt m | Invalid_argument m) ->
      (* CRC-valid bytes that do not decode: a format bug or a stale kind,
         never a partial write — reject rather than guess *)
      Error
        [ Printf.sprintf "%s: undecodable checkpoint payload (%s)"
            cfg.Delta_log.name m
        ])

(* Checkpointed restricted chase, rebuilt on the delta log: one engine run
   whose round-barrier commits ({!Seminaive.run}'s [on_commit]) accumulate
   into an append-only chain — a record every [every] committed rounds, a
   compaction folding the chain into a fresh base every [compact_every]
   records.  Appending a delta costs the bytes of that round's new facts,
   not the whole instance, which is what makes fine-grained [every]
   affordable (the old implementation re-seeded the engine per slice and
   marshalled the full state each boundary).

   A resumed run replays base + deltas to the exact committed state (same
   facts, same literal nulls) and continues the saturation from there; the
   engine's delta stratification restarts at the checkpoint, so round
   numbering and fresh-null naming after the resume point may differ from
   the uninterrupted run — the result is identical up to null renaming
   (isomorphism), which is all the chase ever promises.  Certificate-based
   promotion and memoisation are disabled, as before. *)
let restricted_resumable ?(budget = default_budget) ?(jobs = 1) ?chunk
    ?(every = 8) ?(compact_every = 64) ~log ?resume sigma inst =
  if every < 1 then
    invalid_arg "Chase.restricted_resumable: every must be >= 1";
  if compact_every < 1 then
    invalid_arg "Chase.restricted_resumable: compact_every must be >= 1";
  let base_cp, handle =
    match resume with
    | Some r -> (r.rz_checkpoint, Delta_log.resume log r.rz_chain)
    | None ->
      let cp = { chk_instance = inst; chk_rounds = 0; chk_fired = 0 } in
      (cp, Delta_log.start log ~base:(encode_base cp))
  in
  let rounds0 = base_cp.chk_rounds and fired0 = base_cp.chk_fired in
  let start_inst = base_cp.chk_instance in
  let w = Codec.rel_writer (Instance.schema start_inst) in
  (* the state the log encodes so far: base + every appended record *)
  let mirror = ref start_inst in
  let mirror_rounds = ref rounds0 in
  let mirror_fired = ref fired0 in
  let fired_live = ref 0 in
  let pending = ref [] (* committed rounds not yet appended, newest first *) in
  let pending_rounds = ref 0 in
  let flush ~rounds ~fired =
    let facts = List.concat (List.rev !pending) in
    let rounds_span = rounds0 + rounds - !mirror_rounds in
    let fired_span = fired0 + fired - !mirror_fired in
    if rounds_span > 0 || fired_span > 0 || facts <> [] then begin
      Delta_log.append handle
        (encode_delta w ~rounds:rounds_span ~fired:fired_span facts);
      mirror := List.fold_left Instance.add_fact !mirror facts;
      mirror_rounds := !mirror_rounds + rounds_span;
      mirror_fired := !mirror_fired + fired_span;
      pending := [];
      pending_rounds := 0;
      if Delta_log.delta_count handle >= compact_every then
        Delta_log.compact handle
          ~base:
            (encode_base
               { chk_instance = !mirror;
                 chk_rounds = !mirror_rounds;
                 chk_fired = !mirror_fired
               })
    end
  in
  let on_commit ~round dflat =
    pending := dflat :: !pending;
    incr pending_rounds;
    if !pending_rounds >= every then flush ~rounds:round ~fired:!fired_live
  in
  let on_fire _ _ _ = incr fired_live in
  let eff_budget =
    Budget.with_rounds budget (max 0 (budget.Budget.max_rounds - rounds0))
  in
  let r =
    Pool.with_warm ~jobs (fun pool ->
        Seminaive.run ~mode:Seminaive.Restricted ~budget:eff_budget ~on_fire
          ~on_commit ?pool ?chunk sigma start_inst)
  in
  let outcome =
    match r.Seminaive.outcome with
    | Seminaive.Terminated -> Terminated
    | Seminaive.Truncated reason -> Truncated reason
  in
  (match outcome with
  | Terminated ->
    Delta_log.close handle;
    Delta_log.remove log
  | Truncated reason ->
    (* sync the chain to the exact result state before handing back *)
    flush ~rounds:r.Seminaive.rounds ~fired:r.Seminaive.fired;
    (match reason with
    | Budget.Fault _ ->
      (* an injected fault skips the round's barrier, so the engine may
         have kept fire-phase facts no commit reported — diff them in *)
      let missing =
        Fact.Set.elements
          (Fact.Set.diff
             (Instance.facts r.Seminaive.instance)
             (Instance.facts !mirror))
      in
      if missing <> [] then
        Delta_log.append handle (encode_delta w ~rounds:0 ~fired:0 missing)
    | _ -> ());
    Delta_log.close handle);
  { instance = r.Seminaive.instance;
    outcome;
    rounds = rounds0 + r.Seminaive.rounds;
    fired = fired0 + r.Seminaive.fired;
    stats = r.Seminaive.stats
  }

let is_model r = r.outcome = Terminated

let pp_result ppf r =
  Fmt.pf ppf "@[<v>outcome: %s; rounds: %d; fired: %d; facts: %d@]"
    (match r.outcome with
    | Terminated -> "terminated"
    | Truncated reason ->
      "truncated: " ^ Budget.exhaustion_to_string reason)
    r.rounds r.fired
    (Instance.fact_count r.instance)
