open Tgd_syntax
open Tgd_instance
open Tgd_engine

type budget = { max_rounds : int; max_facts : int }

let default_budget = { max_rounds = 64; max_facts = 20_000 }

type outcome =
  | Terminated
  | Budget_exhausted

type result = {
  instance : Instance.t;
  outcome : outcome;
  rounds : int;
  fired : int;
  stats : Stats.t;
}

let rec max_null_in_const acc = function
  | Constant.Null i -> max acc i
  | Constant.Pair (a, b) -> max_null_in_const (max_null_in_const acc a) b
  | Constant.Named _ | Constant.Indexed _ -> acc

let max_null inst =
  Constant.Set.fold (fun c acc -> max_null_in_const acc c) (Instance.dom inst) 0

let fire ?(on_fire = fun _ _ -> ()) null_counter inst tr =
  let tgd = tr.Trigger.tgd in
  let h =
    Variable.Set.fold
      (fun z acc ->
        incr null_counter;
        Binding.add z (Constant.null !null_counter) acc)
      (Tgd.existential_vars tgd)
      tr.Trigger.hom
  in
  match Binding.ground_atoms h (Tgd.head tgd) with
  | Some facts ->
    on_fire tr facts;
    List.fold_left Instance.add_fact inst facts
  | None -> assert false (* body ∪ existential vars cover the head *)

(* The original snapshot-rescan loop, kept as a reference implementation
   behind [~naive:true] and exercised by the differential tests. *)
let run_naive ~recheck_active ~skip_fired ?(budget = default_budget) ?on_fire
    sigma inst =
  let stats = Stats.create () in
  let null_counter = ref (max_null inst) in
  let fired_keys : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let current = ref inst in
  let rounds = ref 0 in
  let fired = ref 0 in
  let out_of_budget = ref false in
  let progressed = ref true in
  while !progressed && (not !out_of_budget) && !rounds < budget.max_rounds do
    incr rounds;
    progressed := false;
    let before = Instance.fact_count !current in
    let snapshot = !current in
    let t0 = Sys.time () in
    List.iter
      (fun tgd ->
        if not !out_of_budget then begin
          (* the rescan examines (at least) every fact of every body
             relation again this round — the work the engine's delta
             restriction avoids; count it as scans for comparability with
             the engine's probes *)
          List.iter
            (fun atom ->
              stats.Stats.scans <-
                stats.Stats.scans
                + Fact.Set.cardinal
                    (Instance.facts_of snapshot (Atom.rel atom)))
            (Tgd.body tgd);
          Seq.iter
            (fun tr ->
              if not !out_of_budget then begin
                let skip =
                  (skip_fired && Hashtbl.mem fired_keys (Trigger.key tr))
                  || recheck_active
                     && begin
                          stats.Stats.scans <- stats.Stats.scans + 1;
                          not (Trigger.is_active tr !current)
                        end
                in
                if not skip then begin
                  if skip_fired then Hashtbl.add fired_keys (Trigger.key tr) ();
                  current := fire ?on_fire null_counter !current tr;
                  incr fired;
                  stats.Stats.fired <- stats.Stats.fired + 1;
                  progressed := true;
                  if Instance.fact_count !current > budget.max_facts then
                    out_of_budget := true
                end
              end)
            (if recheck_active then Trigger.active tgd snapshot
             else Trigger.all tgd snapshot)
        end)
      sigma;
    stats.Stats.fire_time <- stats.Stats.fire_time +. (Sys.time () -. t0);
    stats.Stats.delta_facts <-
      stats.Stats.delta_facts + (Instance.fact_count !current - before)
  done;
  stats.Stats.rounds <- !rounds;
  let outcome =
    if !out_of_budget then Budget_exhausted
    else if !progressed then
      (* the loop stopped because of max_rounds while still making progress *)
      if !rounds >= budget.max_rounds
         && List.exists
              (fun tgd -> not (Seq.is_empty (Trigger.active tgd !current)))
              sigma
      then Budget_exhausted
      else Terminated
    else Terminated
  in
  Stats.add ~into:Stats.global stats;
  { instance = !current; outcome; rounds = !rounds; fired = !fired; stats }

let run_engine ~mode ?(budget = default_budget) ?on_fire sigma inst =
  let on_fire =
    Option.map
      (fun f tgd hom facts -> f { Trigger.tgd; hom } facts)
      on_fire
  in
  let r =
    Seminaive.run ~mode ~max_rounds:budget.max_rounds
      ~max_facts:budget.max_facts ?on_fire sigma inst
  in
  { instance = r.Seminaive.instance;
    outcome =
      (match r.Seminaive.outcome with
      | Seminaive.Terminated -> Terminated
      | Seminaive.Budget_exhausted -> Budget_exhausted);
    rounds = r.Seminaive.rounds;
    fired = r.Seminaive.fired;
    stats = r.Seminaive.stats
  }

let restricted ?(naive = false) ?budget ?on_fire sigma inst =
  if naive then
    run_naive ~recheck_active:true ~skip_fired:false ?budget ?on_fire sigma
      inst
  else run_engine ~mode:Seminaive.Restricted ?budget ?on_fire sigma inst

let oblivious ?(naive = false) ?budget ?on_fire sigma inst =
  if naive then
    run_naive ~recheck_active:false ~skip_fired:true ?budget ?on_fire sigma
      inst
  else run_engine ~mode:Seminaive.Oblivious ?budget ?on_fire sigma inst

let is_model r = r.outcome = Terminated

let pp_result ppf r =
  Fmt.pf ppf "@[<v>outcome: %s; rounds: %d; fired: %d; facts: %d@]"
    (match r.outcome with
    | Terminated -> "terminated"
    | Budget_exhausted -> "budget-exhausted")
    r.rounds r.fired
    (Instance.fact_count r.instance)
