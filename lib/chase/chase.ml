open Tgd_syntax
open Tgd_instance
open Tgd_engine

type budget = { max_rounds : int; max_facts : int }

let default_budget = { max_rounds = 64; max_facts = 20_000 }

type outcome =
  | Terminated
  | Budget_exhausted

type result = {
  instance : Instance.t;
  outcome : outcome;
  rounds : int;
  fired : int;
  stats : Stats.t;
}

let rec max_null_in_const acc = function
  | Constant.Null i -> max acc i
  | Constant.Pair (a, b) -> max_null_in_const (max_null_in_const acc a) b
  | Constant.Named _ | Constant.Indexed _ -> acc

let max_null inst =
  Constant.Set.fold (fun c acc -> max_null_in_const acc c) (Instance.dom inst) 0

let fire ?(on_fire = fun _ _ -> ()) null_counter inst tr =
  let tgd = tr.Trigger.tgd in
  let h =
    Variable.Set.fold
      (fun z acc ->
        incr null_counter;
        Binding.add z (Constant.null !null_counter) acc)
      (Tgd.existential_vars tgd)
      tr.Trigger.hom
  in
  match Binding.ground_atoms h (Tgd.head tgd) with
  | Some facts ->
    on_fire tr facts;
    List.fold_left Instance.add_fact inst facts
  | None -> assert false (* body ∪ existential vars cover the head *)

(* The original snapshot-rescan loop, kept as a reference implementation
   behind [~naive:true] and exercised by the differential tests.

   Scan accounting: one scan per trigger enumerated during matching — the
   same unit the engine books, so naive/engine scan totals are directly
   comparable.  The rescan cost shows up as the naive loop re-enumerating
   {e every} body homomorphism of the snapshot each round, where the engine
   only enumerates triggers touching the previous delta. *)
let run_naive ~recheck_active ~skip_fired ?(budget = default_budget) ?on_fire
    sigma inst =
  let stats = Stats.create () in
  let null_counter = ref (max_null inst) in
  let fired_keys : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let current = ref inst in
  let rounds = ref 0 in
  let fired = ref 0 in
  let out_of_budget = ref false in
  let progressed = ref true in
  while !progressed && (not !out_of_budget) && !rounds < budget.max_rounds do
    incr rounds;
    progressed := false;
    let before = Instance.fact_count !current in
    let snapshot = !current in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun tgd ->
        if not !out_of_budget then
          Seq.iter
            (fun tr ->
              if not !out_of_budget then begin
                stats.Stats.scans <- stats.Stats.scans + 1;
                let skip =
                  (skip_fired && Hashtbl.mem fired_keys (Trigger.key tr))
                  || (recheck_active && not (Trigger.is_active tr !current))
                in
                if not skip then begin
                  if skip_fired then Hashtbl.add fired_keys (Trigger.key tr) ();
                  current := fire ?on_fire null_counter !current tr;
                  incr fired;
                  stats.Stats.fired <- stats.Stats.fired + 1;
                  progressed := true;
                  if Instance.fact_count !current > budget.max_facts then
                    out_of_budget := true
                end
              end)
            (* activity is antitone in the instance, so filtering the full
               snapshot enumeration against the live instance fires exactly
               the triggers the old double check (active in snapshot, then
               in current) did, in the same order *)
            (Trigger.all tgd snapshot))
      sigma;
    stats.Stats.fire_time <- stats.Stats.fire_time +. (Unix.gettimeofday () -. t0);
    stats.Stats.delta_facts <-
      stats.Stats.delta_facts + (Instance.fact_count !current - before)
  done;
  stats.Stats.rounds <- !rounds;
  let outcome =
    if !out_of_budget then Budget_exhausted
    else if !progressed then
      (* the loop stopped because of max_rounds while still making progress *)
      if !rounds >= budget.max_rounds
         && List.exists
              (fun tgd -> not (Seq.is_empty (Trigger.active tgd !current)))
              sigma
      then Budget_exhausted
      else Terminated
    else Terminated
  in
  Stats.add ~into:(Stats.global ()) stats;
  { instance = !current; outcome; rounds = !rounds; fired = !fired; stats }

let run_engine ~mode ?(budget = default_budget) ?on_fire ~jobs sigma inst =
  let on_fire =
    Option.map
      (fun f tgd hom facts -> f { Trigger.tgd; hom } facts)
      on_fire
  in
  let go pool =
    Seminaive.run ~mode ~max_rounds:budget.max_rounds
      ~max_facts:budget.max_facts ?on_fire ?pool sigma inst
  in
  let r =
    if jobs <= 1 then go None
    else Pool.with_pool ~jobs (fun p -> go (Some p))
  in
  { instance = r.Seminaive.instance;
    outcome =
      (match r.Seminaive.outcome with
      | Seminaive.Terminated -> Terminated
      | Seminaive.Budget_exhausted -> Budget_exhausted);
    rounds = r.Seminaive.rounds;
    fired = r.Seminaive.fired;
    stats = r.Seminaive.stats
  }

(* ------------------------------------------------------------------ *)
(* Chase-result cache                                                  *)
(* ------------------------------------------------------------------ *)

(* Keyed on everything the result depends on: chase kind, implementation,
   budget, the canonical theory key, and the (sorted, printed) input facts.
   Only consulted when the caller opts in with [~memo:true] and passes no
   [on_fire] observer (a cached replay could not invoke it). *)
let result_memo : result Memo.t = Memo.create ~name:"chase-results" ()

let clear_memo () = Memo.clear result_memo

let chase_key ~kind ~naive ~budget sigma inst =
  Fmt.str "%s|naive=%b|r%d/f%d|%s|%s" kind naive budget.max_rounds
    budget.max_facts (Memo.sigma_key sigma)
    (Instance.fact_list inst |> List.map Fact.to_string
    |> List.sort String.compare |> String.concat ",")

let cached ~kind ~naive ~budget ~memo ~has_on_fire sigma inst run =
  if memo && not has_on_fire then
    Memo.find_or_add result_memo (chase_key ~kind ~naive ~budget sigma inst) run
  else run ()

let restricted ?(naive = false) ?(budget = default_budget) ?on_fire
    ?(jobs = 1) ?(memo = false) sigma inst =
  cached ~kind:"restricted" ~naive ~budget ~memo
    ~has_on_fire:(Option.is_some on_fire) sigma inst (fun () ->
      if naive then
        run_naive ~recheck_active:true ~skip_fired:false ~budget ?on_fire sigma
          inst
      else
        run_engine ~mode:Seminaive.Restricted ~budget ?on_fire ~jobs sigma inst)

let oblivious ?(naive = false) ?(budget = default_budget) ?on_fire ?(jobs = 1)
    ?(memo = false) sigma inst =
  cached ~kind:"oblivious" ~naive ~budget ~memo
    ~has_on_fire:(Option.is_some on_fire) sigma inst (fun () ->
      if naive then
        run_naive ~recheck_active:false ~skip_fired:true ~budget ?on_fire sigma
          inst
      else
        run_engine ~mode:Seminaive.Oblivious ~budget ?on_fire ~jobs sigma inst)

let is_model r = r.outcome = Terminated

let pp_result ppf r =
  Fmt.pf ppf "@[<v>outcome: %s; rounds: %d; fired: %d; facts: %d@]"
    (match r.outcome with
    | Terminated -> "terminated"
    | Budget_exhausted -> "budget-exhausted")
    r.rounds r.fired
    (Instance.fact_count r.instance)
