(** Mixed theories — tgds, egds, and denial constraints — and their chase.

    Section 10 of the paper names ontologies specified by tgds, egds, and
    denial constraints as the natural next target of the characterization
    program; this module supplies the operational substrate: satisfaction,
    and a chase that interleaves tgd firing with egd-driven equality merging
    and denial checking.

    Equality merging follows the standard data-exchange convention: labelled
    nulls are soft and may be merged into anything; all other constants are
    rigid, and an egd that equates two distinct rigid constants makes the
    chase {e fail} (the theory has no model containing the input facts with
    those constants kept distinct). *)

open Tgd_syntax
open Tgd_instance
open Tgd_engine

type t = {
  tgds : Tgd.t list;
  egds : Egd.t list;
  denials : Denial.t list;
}

val of_tgds : Tgd.t list -> t
(** Duplicate tgds (syntactically equal up to variable renaming, per
    {!Canonical.equal_up_to_renaming}) are dropped keep-first, so they never
    reach the chase or the rewriting sweeps.  Surviving rules keep their
    original spelling and order. *)

val of_dependencies : Dependency.t list -> t
(** Denial-free theory from a mixed tgd/egd list (Step 2's [Σ^{∃,=}]);
    tgds are deduplicated as in {!of_tgds}. *)

val satisfies : Instance.t -> t -> bool

type failure =
  | Egd_clash of Egd.t * Constant.t * Constant.t
      (** the egd forced two distinct rigid constants to be equal *)
  | Denial_violation of Denial.t

type outcome =
  | Model          (** chase terminated on a model of the theory *)
  | Failed of failure
  | Out_of_budget of {
      reason : Budget.exhaustion;  (** which limit tripped *)
      rounds : int;                (** interleaved rounds consumed *)
      facts : int;                 (** instance size when the limit hit *)
    }

type result = {
  instance : Instance.t;
  outcome : outcome;
  merges : int;  (** null-merging steps performed *)
  fired : int;   (** tgd triggers fired *)
}

val chase : ?budget:Chase.budget -> t -> Instance.t -> result
(** Interleaved chase: saturate egds (merging nulls, failing on rigid
    clashes), check denials, fire one restricted-chase round of tgds,
    repeat.  On [Model] the result instance satisfies the whole theory and
    embeds the input up to the performed null merges. *)

val certain_boolean :
  ?budget:Chase.budget -> t -> Instance.t -> Atom.t list ->
  Entailment.answer
(** Certain answers under a mixed theory.  An inconsistent (failed) theory
    entails everything, per the standard certain-answer semantics. *)

val pp_outcome : outcome Fmt.t
