open Tgd_syntax
open Tgd_instance
open Tgd_engine

type answer =
  | Proved
  | Disproved
  | Unknown

let answer_to_string = function
  | Proved -> "proved"
  | Disproved -> "disproved"
  | Unknown -> "unknown"

let pp_answer ppf a = Fmt.string ppf (answer_to_string a)

(* Atomic: freezing happens concurrently on pool workers during parallel
   candidate screening.  The names only need to be collision-free, not
   sequential. *)
let frozen_counter = Atomic.make 0

let freeze atoms =
  let vars =
    List.fold_left
      (fun acc a -> Variable.Set.union acc (Atom.vars a))
      Variable.Set.empty atoms
  in
  Variable.Set.fold
    (fun v acc ->
      let n = 1 + Atomic.fetch_and_add frozen_counter 1 in
      Binding.add v
        (Constant.named (Printf.sprintf "~%s.%d" (Variable.name v) n))
        acc)
    vars Binding.empty

let freeze_instance schema atoms =
  let b = freeze atoms in
  let facts =
    List.map
      (fun a ->
        match Binding.ground_atom b a with
        | Some f -> f
        | None -> assert false)
      atoms
  in
  (b, Instance.of_facts schema facts)

let schema_of_tgds sigma extra =
  let rels =
    List.concat_map
      (fun s ->
        List.map Atom.rel (Tgd.body s) @ List.map Atom.rel (Tgd.head s))
      (extra :: sigma)
  in
  Schema.make rels

let schema_of_body sigma atoms =
  let rels =
    List.map Atom.rel atoms
    @ List.concat_map
        (fun s ->
          List.map Atom.rel (Tgd.body s) @ List.map Atom.rel (Tgd.head s))
        sigma
  in
  Schema.make rels

(* --------------------------------------------------------------------- *)
(* Memoized entailment                                                    *)
(*                                                                        *)
(* Two levels.  The answer cache is keyed on the canonical (Σ, σ, budget) *)
(* triple, so renaming-equivalent queries are answered once.  Below it,   *)
(* the chase cache is keyed on (Σ, canonical body, budget): candidate     *)
(* tgds sharing a body — the common shape in the Algorithm 1/2 candidate  *)
(* sweeps, where one body is paired with many heads — share a single      *)
(* chase, and only the final head-homomorphism check runs per candidate.  *)
(* --------------------------------------------------------------------- *)

let memo_answers : answer Memo.t = Memo.create ~name:"entails" ()

let memo_chases : (Binding.t * Chase.result) Memo.t =
  Memo.create ~name:"chase" ()

let clear_memos () =
  Memo.clear memo_answers;
  Memo.clear memo_chases

let memo_sizes () = (Memo.size memo_answers, Memo.size memo_chases)

(* Server-scope cache governance: answers are a few words each, cached
   chases dominate the footprint, so an overall ceiling gives the answer
   table an eighth and the chase table the rest. *)
let set_cache_limit ~bytes =
  match bytes with
  | None ->
    Memo.set_limit memo_answers ~bytes:None;
    Memo.set_limit memo_chases ~bytes:None
  | Some b ->
    Memo.set_limit memo_answers ~bytes:(Some (max 4096 (b / 8)));
    Memo.set_limit memo_chases ~bytes:(Some (max 4096 (b - (b / 8))))

let cache_counters () =
  Memo.combine_counters (Memo.counters memo_answers) (Memo.counters memo_chases)

(* Only the deterministic caps participate in cache keys ({!Budget.key}),
   and only deterministically-truncated chase results (and the answers
   derived from them) are stored — see {!Chase.deterministic_result}. *)
let budget_key (b : Chase.budget) = Budget.key b

(* The frozen binding for [s]'s own variables, given the freezing of the
   canonical body and the renaming into canonical variables. *)
let unrename_frozen renaming frozen_canonical =
  Variable.Map.fold
    (fun v cv acc ->
      match Binding.find cv frozen_canonical with
      | Some c -> Binding.add v c acc
      | None -> acc)
    renaming Binding.empty

let answer_of ~frozen ~s (result : Chase.result) =
  let partial = Binding.restrict (Tgd.frontier s) frozen in
  if Hom.exists_hom ~partial (Tgd.head s) result.Chase.instance then Proved
  else if Chase.is_model result then Disproved
  else Unknown

let entails_plain ~naive ~budget ~analyze sigma s =
  let schema = schema_of_tgds sigma s in
  let frozen, db = freeze_instance schema (Tgd.body s) in
  let result = Chase.restricted ~naive ~budget ~analyze sigma db in
  answer_of ~frozen ~s result

let entails_memo ~naive ~budget ~analyze sigma s =
  let skey = Memo.sigma_key sigma in
  let bkey = budget_key budget in
  let akey = Fmt.str "%s |- %s @ %s" skey (Memo.tgd_key s) bkey in
  match Memo.find memo_answers akey with
  | Some a -> a
  | None ->
    let canonical_body, renaming = Memo.body_canonical (Tgd.body s) in
    let ckey = Fmt.str "%s |> %s @ %s" skey (Memo.body_key (Tgd.body s)) bkey in
    let frozen_canonical, result =
      match Memo.find memo_chases ckey with
      | Some cached -> cached
      | None ->
        let schema = schema_of_body sigma canonical_body in
        let frozen, db = freeze_instance schema canonical_body in
        let r = Chase.restricted ~naive ~budget ~analyze sigma db in
        (* a chase cut short by a wall-clock accident (deadline, fuel,
           memory, cancellation, fault) must not be replayed under the
           caps-only key; cache hits are deterministic by construction *)
        if Chase.deterministic_result r then
          Memo.add memo_chases ckey (frozen, r);
        (frozen, r)
    in
    let frozen = unrename_frozen renaming frozen_canonical in
    let a = answer_of ~frozen ~s result in
    if Chase.deterministic_result result then Memo.add memo_answers akey a;
    a

let entails ?(naive = false) ?(memo = true) ?(budget = Chase.default_budget)
    ?(analyze = true) sigma s =
  if memo then entails_memo ~naive ~budget ~analyze sigma s
  else entails_plain ~naive ~budget ~analyze sigma s

let combine answers =
  List.fold_left
    (fun acc a ->
      match acc, a with
      | Disproved, _ | _, Disproved -> Disproved
      | Unknown, _ | _, Unknown -> Unknown
      | Proved, Proved -> Proved)
    Proved answers

let entails_set ?naive ?memo ?budget ?analyze sigma sigma' =
  combine (List.map (entails ?naive ?memo ?budget ?analyze sigma) sigma')

let equivalent ?naive ?memo ?budget ?analyze sigma sigma' =
  combine
    [ entails_set ?naive ?memo ?budget ?analyze sigma sigma';
      entails_set ?naive ?memo ?budget ?analyze sigma' sigma
    ]

let entails_egd _sigma e =
  if Egd.is_trivial e then Proved else Disproved

let entailed_subset ?naive ?memo ?budget ?analyze sigma candidates =
  List.partition
    (fun s -> entails ?naive ?memo ?budget ?analyze sigma s = Proved)
    candidates
