open Tgd_syntax
open Tgd_instance
open Tgd_engine

type t = {
  tgds : Tgd.t list;
  egds : Egd.t list;
  denials : Denial.t list;
}

(* Keep-first deduplication up to variable renaming: a duplicate rule adds
   nothing to any chase or sweep but costs a full screening pass in the
   Algorithm 1/2 rewrites, so it is dropped at construction.  The surviving
   rule keeps its original spelling (no canonicalization of the output). *)
let dedup_tgds tgds =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun t ->
      let key = Tgd.to_string (Canonical.tgd t) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    tgds

let of_tgds tgds = { tgds = dedup_tgds tgds; egds = []; denials = [] }

let of_dependencies deps =
  { tgds = dedup_tgds (Dependency.tgds deps);
    egds = Dependency.egds deps;
    denials = []
  }

let satisfies i th =
  Satisfaction.tgds i th.tgds
  && List.for_all (Satisfaction.egd i) th.egds
  && List.for_all (Satisfaction.denial i) th.denials

type failure =
  | Egd_clash of Egd.t * Constant.t * Constant.t
  | Denial_violation of Denial.t

type outcome =
  | Model
  | Failed of failure
  | Out_of_budget of {
      reason : Budget.exhaustion;
      rounds : int;
      facts : int;
    }

type result = {
  instance : Instance.t;
  outcome : outcome;
  merges : int;
  fired : int;
}

let pp_outcome ppf = function
  | Model -> Fmt.string ppf "model"
  | Failed (Egd_clash (e, a, b)) ->
    Fmt.pf ppf "failed: egd %a equates rigid %a and %a" Egd.pp e Constant.pp a
      Constant.pp b
  | Failed (Denial_violation d) -> Fmt.pf ppf "failed: denial %a" Denial.pp d
  | Out_of_budget { reason; rounds; facts } ->
    Fmt.pf ppf "out of budget (%a after %d rounds, %d facts)"
      Budget.pp_exhaustion reason rounds facts

(* Find an egd violation: a body hom with distinct values for lhs/rhs. *)
let egd_violation inst e =
  Hom.all_homs (Egd.body e) inst
  |> Seq.filter_map (fun h ->
         match Binding.find (Egd.lhs e) h, Binding.find (Egd.rhs e) h with
         | Some a, Some b when not (Constant.equal a b) -> Some (a, b)
         | _ -> None)
  |> fun seq -> (match seq () with Seq.Nil -> None | Seq.Cons (v, _) -> Some v)

exception Clash of Egd.t * Constant.t * Constant.t

(* Merge [a] and [b]: the null is renamed to the other constant; two nulls
   keep the smaller one; two rigid constants clash. *)
let merge inst e a b =
  let keep, drop =
    match Constant.is_null a, Constant.is_null b with
    | true, false -> (b, a)
    | false, true -> (a, b)
    | true, true -> if Constant.compare a b <= 0 then (a, b) else (b, a)
    | false, false -> raise (Clash (e, a, b))
  in
  Instance.map_constants
    (fun c -> if Constant.equal c drop then keep else c)
    inst

let saturate_egds inst egds merges =
  let changed = ref true in
  let current = ref inst in
  while !changed do
    changed := false;
    List.iter
      (fun e ->
        match egd_violation !current e with
        | Some (a, b) ->
          current := merge !current e a b;
          incr merges;
          changed := true
        | None -> ())
      egds
  done;
  !current

let violated_denial inst denials =
  List.find_opt (fun d -> not (Satisfaction.denial inst d)) denials

let rec chase ?(budget = Chase.default_budget) th inst =
  let merges = ref 0 in
  let fired = ref 0 in
  let exception Done of outcome * Instance.t in
  try
    let current = ref inst in
    let rounds = ref 0 in
    let continue = ref true in
    let out_of_budget reason =
      raise
        (Done
           ( Out_of_budget
               { reason;
                 rounds = !rounds;
                 facts = Instance.fact_count !current
               },
             !current ))
    in
    while !continue do
      (* 0. live limits (deadline, memory, fuel, cancellation) *)
      (match Budget.check budget with
      | Some reason -> out_of_budget reason
      | None -> ());
      (* 1. equality saturation *)
      (current :=
         match saturate_egds !current th.egds merges with
         | i -> i
         | exception Clash (e, a, b) ->
           raise (Done (Failed (Egd_clash (e, a, b)), !current)));
      (* 2. denial check *)
      (match violated_denial !current th.denials with
      | Some d -> raise (Done (Failed (Denial_violation d), !current))
      | None -> ());
      (* 3. one round of restricted tgd chase *)
      let step =
        Chase.restricted ~budget:(Budget.with_rounds budget 1) th.tgds !current
      in
      fired := !fired + step.Chase.fired;
      incr rounds;
      current := step.Chase.instance;
      (* a one-round step that trips anything other than its round cap hit a
         real limit (facts, deadline, fuel, …) — surface it with the
         progress made so far *)
      (match step.Chase.outcome with
      | Chase.Truncated reason when reason <> Budget.Rounds ->
        out_of_budget reason
      | Chase.Terminated | Chase.Truncated _ -> ());
      if step.Chase.fired = 0 then continue := false
      else begin
        if !rounds >= budget.Budget.max_rounds then out_of_budget Budget.Rounds;
        if Instance.fact_count !current > budget.Budget.max_facts then
          out_of_budget Budget.Facts
      end
    done;
    (* post-condition: tgds are saturated; egds/denials may have been
       re-broken by the last tgd round — re-run the checks once *)
    (current :=
       match saturate_egds !current th.egds merges with
       | i -> i
       | exception Clash (e, a, b) ->
         raise (Done (Failed (Egd_clash (e, a, b)), !current)));
    (match violated_denial !current th.denials with
    | Some d -> raise (Done (Failed (Denial_violation d), !current))
    | None -> ());
    if satisfies !current th then
      { instance = !current; outcome = Model; merges = !merges; fired = !fired }
    else
      (* egd merging re-enabled a tgd trigger: iterate once more by
         recursing with the merged instance *)
      let again =
        chase
          ~budget:
            (Budget.with_rounds budget
               (max 1 (budget.Budget.max_rounds - !rounds)))
          th !current
      in
      { again with
        merges = again.merges + !merges;
        fired = again.fired + !fired
      }
  with Done (outcome, instance) ->
    { instance; outcome; merges = !merges; fired = !fired }


let certain_boolean ?budget th inst atoms =
  let r = chase ?budget th inst in
  match r.outcome with
  | Failed _ -> Entailment.Proved (* ex falso: inconsistent input *)
  | Model ->
    if Satisfaction.boolean_cq r.instance atoms then Entailment.Proved
    else Entailment.Disproved
  | Out_of_budget _ ->
    if Satisfaction.boolean_cq r.instance atoms then Entailment.Proved
    else Entailment.Unknown
