(* Quickstart: parse a small tgd-ontology, inspect its syntactic classes,
   chase a database, decide entailments, and rewrite guarded rules into
   linear ones.

   Run with:  dune exec examples/quickstart.exe *)

open Tgd_syntax
open Tgd_instance
open Tgd_core

let () =
  (* 1. Parse an ontology in the Datalog± surface syntax.  Identifiers in
     rules are variables; head-only variables are implicitly existential. *)
  let sigma =
    Tgd_parse.Parse.tgds_exn
      "Person(x) -> exists y. HasParent(x,y).\n\
       HasParent(x,y) -> Person(y).\n\
       Person(x), HasParent(x,y) -> Ancestor(y,x)."
  in
  Fmt.pr "@[<v>Ontology Σ:@,%a@,@]@."
    Fmt.(list ~sep:cut (box Tgd.pp))
    sigma;

  (* 2. Classify each rule (Section 2 of the paper). *)
  List.iter
    (fun s ->
      Fmt.pr "  %a  ∈ {%a}  (n=%d universal, m=%d existential)@." Tgd.pp s
        Fmt.(list ~sep:(any ", ") Tgd_class.pp_cls)
        (Tgd_class.classify s) (Tgd.n_universal s) (Tgd.m_existential s))
    sigma;

  (* 3. Chase a database. *)
  let schema = Rewrite.schema_of sigma in
  let db = Tgd_parse.Parse.instance_exn ~schema "Person(alice). HasParent(alice,bob)." in
  let result =
    Tgd_chase.Chase.restricted
      ~budget:(Tgd_engine.Budget.limits ~rounds:3 ~facts:64)
      sigma db
  in
  Fmt.pr "@.Chase of the database (%a):@.  %a@." Tgd_chase.Chase.pp_result
    result Instance.pp result.Tgd_chase.Chase.instance;

  (* 4. Entailment via freezing + chase (Section 9.2's tool).  Answers are
     three-valued: the second goal is not provable within the budget and the
     chase does not terminate on this ontology, so the honest answer is
     "unknown". *)
  let budget = Tgd_engine.Budget.limits ~rounds:4 ~facts:64 in
  List.iter
    (fun src ->
      let goal = Tgd_parse.Parse.tgd_exn src in
      Fmt.pr "@.Σ ⊨ (%a)?  %a@." Tgd.pp goal Tgd_chase.Entailment.pp_answer
        (Tgd_chase.Entailment.entails ~budget sigma goal))
    [ "Person(x), HasParent(x,y) -> Ancestor(y,x).";
      "HasParent(x,y) -> Ancestor(y,x)." ];

  (* 5. Rewrite a guarded set into linear tgds (Algorithm 1). *)
  let guarded = Tgd_workload.Families.guarded_rewritable 1 in
  Fmt.pr "@.Rewrite(GTGD → LTGD) on %a:@."
    Fmt.(list ~sep:(any "; ") Tgd.pp)
    guarded;
  let report = Tgd_engine.Budget.value (Rewrite.g_to_l guarded) in
  Fmt.pr "  %a@." Rewrite.pp_outcome report.Rewrite.outcome;
  Fmt.pr "  (%d candidates enumerated, %d entailed)@."
    report.Rewrite.candidates_enumerated report.Rewrite.candidates_entailed
