(* Theorem 4.1, constructively: synthesize a tgd axiomatization of an
   ontology given only as a membership oracle, then verify it.

   The paper proves that criticality + ⊗-closure + (n,m)-locality
   characterize TGD_{n,m}-ontologies; Steps 1–3 of its proof *construct* the
   axiomatization.  Here we run the pipeline over bounded universes: a
   "mystery" oracle is probed, Σ^∃ is synthesized, and the result is checked
   exhaustively.

   Run with:  dune exec examples/synthesis.exe *)

open Tgd_syntax
open Tgd_instance
open Tgd_core

let s = Schema.of_pairs [ ("E", 2) ]

let show : 'a. 'a Properties.verdict -> string = function
  | Properties.Holds -> "holds"
  | Properties.Fails _ -> "fails"
  | Properties.Inconclusive why -> "inconclusive (" ^ why ^ ")"

let pp_props o =
  Fmt.pr "  critical (k ≤ 3):        %s@." (show (Properties.critical_up_to o 3));
  Fmt.pr "  closed under ⊗ (dom ≤ 2): %s@."
    (show (Properties.closed_under_products o ~dom_size:2));
  Fmt.pr "  domain independent:      %s@."
    (show (Properties.domain_independent o ~dom_size:2))

let synthesize_and_verify name oracle ~n ~m =
  Fmt.pr "@.== %s ==@." name;
  let o = Ontology.oracle ~name s oracle in
  pp_props o;
  let sigma =
    Tgd_engine.Budget.value
      (Characterize.synthesize ~minimize:true
         ~candidate_caps:
           Candidates.{ max_body_atoms = 2; max_head_atoms = 1; keep_tautologies = false }
         o ~n ~m)
  in
  Fmt.pr "  synthesized Σ^∃ (%d tgds):@." (List.length sigma);
  List.iter (fun t -> Fmt.pr "    %a@." Tgd.pp t) sigma;
  match Characterize.verify_axiomatization o sigma ~dom_size:2 with
  | None -> Fmt.pr "  ⇒ Σ^∃ axiomatizes the oracle on every instance with ≤ 2 elements.@."
  | Some cex ->
    Fmt.pr "  ⇒ NOT axiomatizable by TGD_{%d,%d}: Σ^∃ disagrees on %a@." n m
      Instance.pp cex

let classify_demo () =
  Fmt.pr "@.== end-to-end: classify a black-box ontology ==@.";
  let o =
    Ontology.oracle ~name:"mystery" s (fun i ->
        Fact.Set.for_all
          (fun f ->
            match Fact.tuple f with
            | [ a; b ] -> Instance.mem i (Fact.make (Relation.make "E" 2) [ b; a ])
            | _ -> false)
          (Instance.facts i))
  in
  let result =
    Characterize.classify_oracle
      ~config:
        Rewrite.
          { default_config with
            caps =
              Candidates.
                { max_body_atoms = 2; max_head_atoms = 1; keep_tautologies = false }
          }
      o ~n:2 ~m:0
  in
  match result.Characterize.axioms, result.Characterize.diagnosis with
  | Some sigma, Some report ->
    Fmt.pr "recovered axioms: %a@." Fmt.(list ~sep:(any "; ") Tgd.pp) sigma;
    Fmt.pr "%a@." Expressibility.pp_report report
  | _ -> Fmt.pr "not a TGD_{2,0}-ontology on the bounded universe@."

let () =
  (* a genuine TGD-ontology, seen only through its membership function *)
  synthesize_and_verify "mystery oracle #1 (symmetric closure?)"
    (fun i ->
      Fact.Set.for_all
        (fun f ->
          match Fact.tuple f with
          | [ a; b ] -> Instance.mem i (Fact.make (Relation.make "E" 2) [ b; a ])
          | _ -> false)
        (Instance.facts i))
    ~n:2 ~m:0;

  (* a TGD-ontology needing an existential *)
  synthesize_and_verify "mystery oracle #2 (every source extends?)"
    (fun i ->
      Constant.Set.for_all
        (fun a ->
          Fact.Set.exists
            (fun f -> match Fact.tuple f with [ x; _ ] -> Constant.equal x a | _ -> false)
            (Instance.facts i)
          || Fact.Set.for_all
               (fun f ->
                 match Fact.tuple f with
                 | [ _; y ] -> not (Constant.equal y a)
                 | _ -> true)
               (Instance.facts i))
        (Instance.adom i))
    ~n:2 ~m:1;

  (* NOT a TGD-ontology: fails ⊗-closure/criticality, synthesis must fail *)
  synthesize_and_verify "mystery oracle #3 (at most 2 facts — not tgd-definable)"
    (fun i -> Instance.fact_count i <= 2)
    ~n:2 ~m:1;

  classify_demo ()
