(* Data exchange with a mixed theory — tgds + egds + denial constraints.

   The paper's concluding remarks point at ontologies specified by tgds,
   egds, and denial constraints as the next frontier; this example runs the
   operational side: a source-to-target exchange where target tgds invent
   null witnesses, key egds merge them (or fail on hard conflicts), a denial
   constraint rejects dirty data, and the final universal solution is
   minimized to its core.

   Run with:  dune exec examples/data_exchange.exe *)

open Tgd_syntax
open Tgd_instance
open Tgd_chase

let theory_src =
  "% source-to-target tgds\n\
   SrcEmp(e,d)          -> Emp(e), WorksIn(e,d), Dept(d).\n\
   SrcMgr(d,m)          -> Mgr(d,m), Emp(m).\n\
   % every department acquires a manager (null if unknown)\n\
   Dept(d)              -> exists m. Mgr(d,m), Emp(m).\n\
   % a department has at most one manager (key egd)\n\
   Mgr(d,m), Mgr(d,m')  -> m = m'.\n\
   % nobody manages a department they do not work in ... unless declared\n\
   Mgr(d,m)             -> WorksIn(m,d).\n\
   % denial: the audit department must not exist in the target\n\
   Dept(d), Audit(d)    -> false.\n"

let run name db_src =
  Fmt.pr "@.== %s ==@." name;
  let prog = Tgd_parse.Parse.program_exn theory_src in
  let schema =
    Schema.union prog.Tgd_parse.Parse.schema
      (Tgd_parse.Parse.program_exn db_src).Tgd_parse.Parse.schema
  in
  let db =
    Instance.of_facts schema
      (Tgd_parse.Parse.program_exn ~schema db_src).Tgd_parse.Parse.facts
  in
  let theory =
    Theory.
      { tgds = prog.Tgd_parse.Parse.tgds;
        egds = prog.Tgd_parse.Parse.egds;
        denials = prog.Tgd_parse.Parse.denials
      }
  in
  Fmt.pr "source: %a@." Instance.pp db;
  let r = Theory.chase theory db in
  Fmt.pr "chase: %a (%d tgd firings, %d null merges)@." Theory.pp_outcome
    r.Theory.outcome r.Theory.fired r.Theory.merges;
  match r.Theory.outcome with
  | Theory.Model ->
    let core = Retract.core_preserving (Instance.adom db) r.Theory.instance in
    Fmt.pr "universal solution (core): %a@." Instance.pp core;
    Fmt.pr "core is a model of the theory: %b@." (Theory.satisfies core theory)
  | Theory.Failed _ | Theory.Out_of_budget _ -> ()

let () =
  (* clean exchange: the generated manager-null for "sales" merges with the
     declared manager of "eng" only where keys force it *)
  run "clean exchange" "SrcEmp(ann,eng). SrcMgr(eng,bob). SrcEmp(carl,sales).";

  (* key conflict: two declared managers for the same department *)
  run "key conflict (rigid clash)" "SrcMgr(eng,bob). SrcMgr(eng,eve).";

  (* denial violation: audited department materializes in the target *)
  run "denial violation" "SrcEmp(ann,shadow). Audit(shadow)."
