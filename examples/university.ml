(* Ontology-mediated query answering over a higher-arity schema.

   The paper's introduction motivates tgds over description logics by their
   ability to "easily handle higher-arity relations that naturally occur in
   relational databases".  This example runs certain-answer computation over
   a ternary enrollment schema that no DL with unary/binary predicates can
   model directly.

   Run with:  dune exec examples/university.exe *)

open Tgd_syntax
open Tgd_instance
open Tgd_core

let ontology_src =
  "% every enrollment is backed by a course offering in the same term\n\
   Enrolled(s,course,term) -> exists p. Offering(course,term,p).\n\
   % offerings are taught by faculty members\n\
   Offering(course,term,p) -> Faculty(p).\n\
   % enrolled students are students\n\
   Enrolled(s,course,term) -> Student(s).\n\
   % faculty advise the students enrolled in their offerings\n\
   Enrolled(s,course,term), Offering(course,term,p) -> Advises(p,s).\n"

let database_src =
  "Enrolled(ann,db101,fall). Enrolled(bob,db101,fall).\n\
   Enrolled(ann,logic,spring).\n\
   Offering(db101,fall,codd).\n"

let () =
  let sigma = Tgd_parse.Parse.tgds_exn ontology_src in
  let schema = Rewrite.schema_of sigma in
  let db = Tgd_parse.Parse.instance_exn ~schema database_src in
  Fmt.pr "@[<v>Ontology (max arity %d):@,%a@,@]@." (Schema.max_arity schema)
    Fmt.(list ~sep:cut (box Tgd.pp))
    sigma;
  List.iter
    (fun s ->
      Fmt.pr "  classes: %a@."
        Fmt.(list ~sep:(any ", ") Tgd_class.pp_cls)
        (Tgd_class.classify s))
    sigma;
  Fmt.pr "@.Database: %a@." Instance.pp db;

  (* certain answers: who advises whom? *)
  let advises = Option.get (Schema.find schema "Advises") in
  let q =
    Tgd_chase.Cq.make
      [ Variable.make "p"; Variable.make "s" ]
      [ Atom.of_vars advises [ Variable.make "p"; Variable.make "s" ] ]
  in
  let answers, precision = Tgd_chase.Cq.certain_answers sigma db q in
  Fmt.pr "@.Certain answers to Advises(p,s) [%s]:@."
    (match precision with `Exact -> "exact" | `Lower_bound -> "lower bound");
  List.iter
    (fun tuple ->
      Fmt.pr "  %a@." Fmt.(list ~sep:(any ", ") Constant.pp) tuple)
    answers;

  (* Boolean query: is ann certainly advised by some faculty member? *)
  let faculty = Option.get (Schema.find schema "Faculty") in
  let bq =
    [ Atom.make advises [ Term.var (Variable.make "p"); Term.const (Constant.named "ann") ];
      Atom.of_vars faculty [ Variable.make "p" ] ]
  in
  Fmt.pr "@.∃p. Advises(p,ann) ∧ Faculty(p) certain?  %a@."
    Tgd_chase.Entailment.pp_answer
    (Tgd_chase.Cq.certain_boolean sigma db bq);

  (* the spring offering's professor is an unnamed null — certain answers
     never leak it, but the Boolean query about ann's logic course holds *)
  let bq_logic =
    [ Atom.make advises [ Term.var (Variable.make "p"); Term.const (Constant.named "ann") ];
      Atom.make (Option.get (Schema.find schema "Offering"))
        [ Term.const (Constant.named "logic"); Term.const (Constant.named "spring");
          Term.var (Variable.make "p") ]
    ]
  in
  Fmt.pr "∃p. Advises(p,ann) ∧ Offering(logic,spring,p) certain?  %a@."
    Tgd_chase.Entailment.pp_answer
    (Tgd_chase.Cq.certain_boolean sigma db bq_logic);

  (* the ontology is weakly acyclic, so all of the above is exact *)
  Fmt.pr "@.Weakly acyclic (chase guaranteed to terminate): %b@."
    (Tgd_analysis.Termination.is_weakly_acyclic sigma)
