(* A gallery of the paper's separations and counterexamples, executed.

   - Section 9.1: LTGD ⊊ GTGD via linear (1,0)-locality;
   - Section 9.1: GTGD ⊊ FGTGD via guarded (2,0)-locality;
   - Example 5.2: the refutation of Makowsky–Vardi's Lemma 7, and the
     corrected non-oblivious closure (Theorem 5.6).

   Run with:  dune exec examples/separations.exe *)

open Tgd_syntax
open Tgd_instance
open Tgd_core

let pp_emb ppf = function
  | Locality.Embeddable -> Fmt.string ppf "yes"
  | Locality.No_witness _ -> Fmt.string ppf "no"

let separation name variant ~n ~m sigma i =
  let o = Ontology.axiomatic (Rewrite.schema_of sigma) sigma in
  Fmt.pr "@.== %s ==@." name;
  Fmt.pr "Σ = %a@." Fmt.(list ~sep:(any "; ") Tgd.pp) sigma;
  Fmt.pr "I = %a@." Instance.pp i;
  let emb = Locality.locally_embeddable variant ~n ~m o i in
  Fmt.pr "Σ %s (%d,%d)-locally embeddable in I?  %a@."
    (Locality.variant_name variant) n m pp_emb emb;
  Fmt.pr "I ⊨ Σ?  %b@." (Satisfaction.tgds i sigma);
  (match Tgd_engine.Budget.value (Locality.check_local_on variant ~n ~m o [ i ]) with
  | Locality.Not_local _ ->
    Fmt.pr "⇒ Σ is NOT %s (%d,%d)-local — no equivalent %s set exists.@."
      (Locality.variant_name variant) n m (Locality.variant_name variant)
  | Locality.Local_on_tests -> Fmt.pr "⇒ no counterexample found.@.")

let () =
  (* Section 9.1, Linear vs. Guarded *)
  let sigma_g, i_g = Tgd_workload.Families.separation_linear_vs_guarded in
  separation "Linear vs. Guarded (Σ_G = R(x), P(x) → T(x))" Locality.Linear
    ~n:1 ~m:0 sigma_g i_g;
  (* cross-check with Algorithm 1 *)
  let report =
    Tgd_engine.Budget.value
    @@ Rewrite.g_to_l
         ~config:
        Rewrite.
          { default_config with
            caps =
              Candidates.
                { max_body_atoms = 8; max_head_atoms = 8; keep_tautologies = false }
          }
      sigma_g
  in
  Fmt.pr "Algorithm 1 (G-to-L) agrees: %a@." Rewrite.pp_outcome
    report.Rewrite.outcome;

  (* Section 9.1, Guarded vs. Frontier-Guarded *)
  let sigma_f, i_f = Tgd_workload.Families.separation_guarded_vs_fg in
  separation "Guarded vs. Frontier-Guarded (Σ_F = R(x), P(y) → T(x))"
    Locality.Guarded ~n:2 ~m:0 sigma_f i_f;
  let report =
    Tgd_engine.Budget.value
    @@ Rewrite.fg_to_g
         ~config:
        Rewrite.
          { default_config with
            caps =
              Candidates.
                { max_body_atoms = 8; max_head_atoms = 8; keep_tautologies = false }
          }
      sigma_f
  in
  Fmt.pr "Algorithm 2 (FG-to-G) agrees: %a@." Rewrite.pp_outcome
    report.Rewrite.outcome;

  (* Example 5.2 *)
  Fmt.pr "@.== Example 5.2: Makowsky–Vardi's Lemma 7 is refuted ==@.";
  let sigma52, i52 = Tgd_workload.Families.example_5_2 in
  let a = Constant.named "a" and c = Constant.named "c" in
  Fmt.pr "σ = %a@." Fmt.(list ~sep:(any "; ") Tgd.pp) sigma52;
  Fmt.pr "I = %a,  I ⊨ σ: %b@." Instance.pp i52 (Satisfaction.tgds i52 sigma52);
  let j_obl = Duplicating.oblivious i52 a c in
  Fmt.pr "oblivious duplicating extension J = %a@." Instance.pp j_obl;
  Fmt.pr "J ⊨ σ: %b   (MV would require true — Lemma 7 of [14] fails)@."
    (Satisfaction.tgds j_obl sigma52);
  let j_non = Duplicating.non_oblivious i52 a c in
  Fmt.pr "non-oblivious extension J' = %a@." Instance.pp j_non;
  Fmt.pr "J' ⊨ σ: %b   (Definition 5.3 repairs the closure)@."
    (Satisfaction.tgds j_non sigma52);

  (* Theorem 5.6's property suite on the FTGD-ontology Mod(σ) *)
  Fmt.pr "@.Theorem 5.6 property suite for Mod(σ):@.";
  let show : 'a. 'a Properties.verdict -> string = function
    | Properties.Holds -> "holds"
    | Properties.Fails _ -> "fails"
    | Properties.Inconclusive why -> "inconclusive (" ^ why ^ ")"
  in
  let o52 = Ontology.axiomatic (Rewrite.schema_of sigma52) sigma52 in
  Fmt.pr "  1-critical:                 %s@." (show (Properties.critical_up_to o52 1));
  Fmt.pr "  domain independent:         %s@."
    (show (Properties.domain_independent o52 ~dom_size:2));
  Fmt.pr "  closed under intersections: %s@."
    (show (Properties.closed_under_intersections o52 ~dom_size:2));
  Fmt.pr "  closed under non-oblivious duplication: %s@."
    (show (Properties.closed_under_non_oblivious_dupext o52 ~dom_size:2));
  Fmt.pr "  closed under oblivious duplication:     %s@."
    (show (Properties.closed_under_oblivious_dupext o52 ~dom_size:2))
