(* End-to-end rewriting pipeline: frontier-guarded → guarded → linear,
   with certificates at every step, plus the Appendix F hardness reduction.

   Run with:  dune exec examples/rewriting_pipeline.exe *)

open Tgd_syntax
open Tgd_core

let config =
  Rewrite.
    { default_config with
      caps =
        Candidates.{ max_body_atoms = 2; max_head_atoms = 1; keep_tautologies = false }
    }

let show_step name sigma report =
  Fmt.pr "@.== %s ==@." name;
  Fmt.pr "input  (n=%d, m=%d): %a@." report.Rewrite.n report.Rewrite.m
    Fmt.(list ~sep:(any ";  ") Tgd.pp)
    sigma;
  Fmt.pr "candidates: %d enumerated, %d entailed@."
    report.Rewrite.candidates_enumerated report.Rewrite.candidates_entailed;
  Fmt.pr "outcome: %a@." Rewrite.pp_outcome report.Rewrite.outcome

let () =
  (* Stage 1: a frontier-guarded set that happens to be guarded-expressible *)
  let fg = Tgd_workload.Families.fg_rewritable 1 in
  let report_g = Tgd_engine.Budget.value (Rewrite.fg_to_g ~config fg) in
  show_step "Stage 1: FG-to-G (Algorithm 2)" fg report_g;
  let guarded =
    match report_g.Rewrite.outcome with
    | Rewrite.Rewritable s -> s
    | _ -> failwith "expected a guarded rewriting"
  in
  (* certificate: equivalence of input and output *)
  Fmt.pr "certificate (mutual entailment): %a@." Tgd_chase.Entailment.pp_answer
    (Tgd_chase.Entailment.equivalent fg guarded);
  Fmt.pr "certificate (bounded models, dom ≤ 2): %s@."
    (match Rewrite.verify_equivalence_bounded fg guarded ~dom_size:2 with
    | None -> "agree"
    | Some i -> Fmt.str "DISAGREE on %a" Tgd_instance.Instance.pp i);

  (* Stage 2: the guarded output happens to be linear-expressible too *)
  let report_l = Tgd_engine.Budget.value (Rewrite.g_to_l ~config guarded) in
  show_step "Stage 2: G-to-L (Algorithm 1)" guarded report_l;
  (match report_l.Rewrite.outcome with
  | Rewrite.Rewritable linear ->
    Fmt.pr "certificate: %a@." Tgd_chase.Entailment.pp_answer
      (Tgd_chase.Entailment.equivalent guarded linear);
    (* Linearization Lemma (1)⇒(2): the rewriting needs no new variables *)
    List.iter
      (fun t ->
        assert (Tgd.in_class_nm ~n:report_l.Rewrite.n ~m:report_l.Rewrite.m t))
      linear;
    Fmt.pr "variable bounds preserved (Linearization Lemma (1)⇒(2)): ok@."
  | _ -> Fmt.pr "not linear-expressible@.");

  (* Stage 3: the Appendix F reduction, both polarities *)
  Fmt.pr "@.== Stage 3: hardness reduction (Theorem 9.1) ==@.";
  let sigma_yes =
    Tgd_parse.Parse.tgds_exn "-> exists z. A(z).\nA(x) -> B(x).\nB(x) -> Q(x)."
  in
  let q = Option.get (Schema.find (Rewrite.schema_of sigma_yes) "Q") in
  let art = Reduction.g_to_l_hardness sigma_yes ~query:q in
  Fmt.pr "Σ ⊨ ∃x Q(x) holds; Σ' (%d tgds over %a)@."
    (List.length art.Reduction.sigma')
    Schema.pp art.Reduction.schema';
  Fmt.pr "Σ' ≡ the witness linear set Σ_L?  %a@."
    Tgd_chase.Entailment.pp_answer
    (Tgd_chase.Entailment.equivalent art.Reduction.sigma'
       art.Reduction.witness_rewriting);

  let sigma_no = Tgd_parse.Parse.tgds_exn "A(x) -> B(x).\nQ(x) -> Q(x)." in
  let q = Option.get (Schema.find (Rewrite.schema_of sigma_no) "Q") in
  let art_no = Reduction.g_to_l_hardness sigma_no ~query:q in
  Fmt.pr "With Σ ⊭ ∃x Q(x): Σ' ≡ Σ_L?  %a  (the reduction separates)@."
    Tgd_chase.Entailment.pp_answer
    (Tgd_chase.Entailment.equivalent art_no.Reduction.sigma'
       art_no.Reduction.witness_rewriting)
