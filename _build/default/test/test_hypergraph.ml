open Tgd_syntax
open Helpers

let e = Relation.make "E" 2
let t3 = Relation.make "T" 3
let atom r vs = Atom.of_vars r (List.map v vs)

let test_basic_shapes () =
  check_bool "empty" true (Hypergraph.is_acyclic []);
  check_bool "single atom" true (Hypergraph.is_acyclic [ atom e [ "x"; "y" ] ]);
  check_bool "path" true
    (Hypergraph.is_acyclic [ atom e [ "x"; "y" ]; atom e [ "y"; "z" ] ]);
  check_bool "star" true
    (Hypergraph.is_acyclic
       [ atom e [ "c"; "x" ]; atom e [ "c"; "y" ]; atom e [ "c"; "z" ] ]);
  check_bool "triangle" false
    (Hypergraph.is_acyclic
       [ atom e [ "x"; "y" ]; atom e [ "y"; "z" ]; atom e [ "z"; "x" ] ])

let test_guard_makes_acyclic () =
  (* a triangle plus a covering guard atom is acyclic (α-acyclicity is not
     hereditary — the classic subtlety) *)
  check_bool "guarded triangle" true
    (Hypergraph.is_acyclic
       [ atom t3 [ "x"; "y"; "z" ]; atom e [ "x"; "y" ]; atom e [ "y"; "z" ];
         atom e [ "z"; "x" ] ])

let test_guarded_tgd_bodies_acyclic () =
  (* guarded tgd bodies are always α-acyclic: the guard is a universal ear *)
  let st = Tgd_workload.Gen.rng 23 in
  let schema = Tgd_workload.Gen.random_schema st ~relations:3 ~max_arity:3 in
  for _ = 1 to 30 do
    let g = Tgd_workload.Gen.random_guarded_tgd st schema ~n:3 ~m:1 ~body_atoms:3 in
    check_bool "guarded body acyclic" true (Hypergraph.is_acyclic (Tgd.body g))
  done

let test_residual () =
  let triangle =
    [ atom e [ "x"; "y" ]; atom e [ "y"; "z" ]; atom e [ "z"; "x" ] ]
  in
  check_int "cyclic core has 3 edges" 3
    (List.length (Hypergraph.gyo_residual triangle));
  check_int "acyclic residual empty" 0
    (List.length (Hypergraph.gyo_residual [ atom e [ "x"; "y" ] ]))

let test_duplicates_and_subsumption () =
  check_bool "duplicate atoms" true
    (Hypergraph.is_acyclic [ atom e [ "x"; "y" ]; atom e [ "x"; "y" ] ]);
  check_bool "subsumed edge" true
    (Hypergraph.is_acyclic
       [ atom t3 [ "x"; "y"; "z" ]; atom e [ "x"; "y" ] ])

let test_cycle_of_length_4 () =
  check_bool "4-cycle" false
    (Hypergraph.is_acyclic
       [ atom e [ "a"; "b" ]; atom e [ "b"; "c" ]; atom e [ "c"; "d" ];
         atom e [ "d"; "a" ] ])

let suite =
  [ case "basic shapes" test_basic_shapes;
    case "guard restores acyclicity" test_guard_makes_acyclic;
    case "guarded bodies acyclic (random)" test_guarded_tgd_bodies_acyclic;
    case "residual" test_residual;
    case "duplicates and subsumption" test_duplicates_and_subsumption;
    case "4-cycle" test_cycle_of_length_4
  ]
