open Tgd_syntax
open Helpers

let test_renaming_equivalence () =
  let a = tgd "R(x,y) -> exists z. R(y,z)." in
  let b = tgd "R(u,v) -> exists w. R(v,w)." in
  check_bool "renamed equal" true (Canonical.equal_up_to_renaming a b);
  check_tgd "same canonical form" (Canonical.tgd a) (Canonical.tgd b)

let test_atom_order_irrelevant () =
  let a = tgd "R(x,y), P(x) -> T(x)." in
  let b = tgd "P(u), R(u,v) -> T(u)." in
  check_bool "reordered equal" true (Canonical.equal_up_to_renaming a b)

let test_distinct_tgds_stay_distinct () =
  let a = tgd "R(x,y) -> T(x)." in
  let b = tgd "R(x,y) -> T(y)." in
  check_bool "projection position matters" false (Canonical.equal_up_to_renaming a b);
  let c = tgd "R(x,x) -> T(x)." in
  check_bool "variable identification matters" false
    (Canonical.equal_up_to_renaming a c)

let test_canonical_idempotent () =
  let samples =
    [ tgd "R(x,y), S(y,z) -> exists u,w. T(x,u), T(u,w).";
      tgd "R(a,b) -> R(b,a)."; tgd "-> exists z. Start(z)." ]
  in
  List.iter
    (fun s ->
      check_tgd "idempotent" (Canonical.tgd s) (Canonical.tgd (Canonical.tgd s)))
    samples

let test_canonical_preserves_semantics () =
  let s = tgd "S(y,z), R(x,y) -> exists u. T(x,u)." in
  let cs = Canonical.tgd s in
  check_int "same n" (Tgd.n_universal s) (Tgd.n_universal cs);
  check_int "same m" (Tgd.m_existential s) (Tgd.m_existential cs);
  check_int "same body size" (List.length (Tgd.body s)) (List.length (Tgd.body cs));
  check_bool "same classes" true (Tgd_class.classify s = Tgd_class.classify cs)

let test_dedup () =
  let l =
    [ tgd "R(x,y) -> T(x)."; tgd "R(u,v) -> T(u)."; tgd "R(x,y) -> T(y)." ]
  in
  check_int "dedup" 2 (List.length (Canonical.dedup l))

let test_existential_renaming () =
  let a = tgd "R(x) -> exists z1,z2. S(x,z1), S(z1,z2)." in
  let b = tgd "R(q) -> exists w2,w1. S(q,w2), S(w2,w1)." in
  check_bool "existential renaming" true (Canonical.equal_up_to_renaming a b)

let suite =
  [ case "renaming equivalence" test_renaming_equivalence;
    case "atom order irrelevant" test_atom_order_irrelevant;
    case "distinct tgds stay distinct" test_distinct_tgds_stay_distinct;
    case "canonical idempotent" test_canonical_idempotent;
    case "canonical preserves structure" test_canonical_preserves_semantics;
    case "dedup" test_dedup;
    case "existential renaming" test_existential_renaming
  ]
