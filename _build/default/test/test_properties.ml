open Tgd_syntax
open Tgd_instance
open Tgd_core
open Helpers

let s = schema [ ("E", 2) ]
let s_rpt = schema [ ("R", 1); ("P", 1); ("T", 1) ]

let holds = Properties.verdict_holds

let sym_o = Ontology.axiomatic s [ tgd "E(x,y) -> E(y,x)." ]
let tc_o = Ontology.axiomatic s [ tgd "E(x,y), E(y,z) -> E(x,z)." ]
let sep_o =
  let sigma, _ = Tgd_workload.Families.separation_linear_vs_guarded in
  Ontology.axiomatic s_rpt sigma

(* an ontology that is NOT tgd-definable: "E is nonempty" *)
let nonempty_o =
  Ontology.oracle ~name:"nonempty" s (fun i -> not (Instance.is_empty i))

(* "at most one fact": not closed under products/unions, not critical *)
let at_most_one_o =
  Ontology.oracle ~name:"≤1 fact" s (fun i -> Instance.fact_count i <= 1)

let test_criticality_positive () =
  (* Lemma 3.2: every tgd-ontology is critical *)
  List.iter
    (fun o -> check_bool "critical" true (holds (Properties.critical_up_to o 3)))
    [ sym_o; tc_o; sep_o ]

let test_criticality_negative () =
  match Properties.critical_up_to at_most_one_o 3 with
  | Properties.Fails k -> check_bool "small witness" true (k >= 1 && k <= 3)
  | _ -> Alcotest.fail "≤1-fact ontology is not critical"

let test_product_closure_positive () =
  (* Lemma 3.4 *)
  List.iter
    (fun o ->
      check_bool "⊗-closed" true
        (holds (Properties.closed_under_products o ~dom_size:2)))
    [ sym_o; tc_o ]

let test_product_closure_negative () =
  (* "non-empty" happens to be ⊗-closed over a single relation *)
  check_bool "nonempty is ⊗-closed" true
    (holds (Properties.closed_under_products nonempty_o ~dom_size:2));
  (* fact counts multiply under ⊗, so "at most 2 facts" is not closed:
     2 · 2 = 4 *)
  let at_most_two_o = Ontology.oracle s (fun i -> Instance.fact_count i <= 2) in
  check_bool "≤2-facts fails" false
    (holds (Properties.closed_under_products at_most_two_o ~dom_size:2))

let test_intersection_closure () =
  (* full tgds are ∩-closed (Theorem 5.6 direction (1) ⇒ (2)) *)
  check_bool "tc ∩-closed" true
    (holds (Properties.closed_under_intersections tc_o ~dom_size:2));
  (* a disjunction-like oracle is not ∩-closed: E(0,0) or E(1,1) present *)
  let disj_o =
    Ontology.oracle s (fun i ->
        Instance.mem i (Fact.make (Relation.make "E" 2) [ Constant.indexed 0; Constant.indexed 0 ])
        || Instance.mem i (Fact.make (Relation.make "E" 2) [ Constant.indexed 1; Constant.indexed 1 ]))
  in
  check_bool "disjunctive fails ∩" false
    (holds (Properties.closed_under_intersections disj_o ~dom_size:2))

let test_union_closure () =
  (* linear tgds are ∪-closed (used in the Linearization Lemma) *)
  let lin_o = Ontology.axiomatic s [ tgd "E(x,y) -> exists z. E(y,z)." ] in
  check_bool "linear ∪-closed" true
    (holds (Properties.closed_under_unions lin_o ~dom_size:2));
  (* the Section 9.1 separation set is NOT ∪-closed (witnesses R(c) and
     P(c) separately fine, union violates) *)
  check_bool "separation set not ∪-closed" false
    (holds (Properties.closed_under_unions sep_o ~dom_size:1))

let test_disjoint_union_closure () =
  (* guarded tgds are closed under disjoint unions (the Theorem 9.2
     argument): every body sits inside one component via its guard *)
  check_bool "guarded Σ_G closed" true
    (holds (Properties.closed_under_disjoint_unions sep_o ~dom_size:1));
  (* the frontier-guarded Σ_F is not: R(c) ⊎ P(d) violates it *)
  let sigma_f, _ = Tgd_workload.Families.separation_guarded_vs_fg in
  let o_f = Ontology.axiomatic s_rpt sigma_f in
  check_bool "fg Σ_F fails" false
    (holds (Properties.closed_under_disjoint_unions o_f ~dom_size:1));
  (* the two notions genuinely differ: the guarded Σ_G survives disjoint
     unions (above) but not ordinary ones — R(c) ∪ P(c) shares the constant
     and triggers the rule *)
  check_bool "Σ_G not plain-∪-closed" false
    (holds (Properties.closed_under_unions sep_o ~dom_size:1))

let test_domain_independence () =
  (* Lemma 3.8 consequence: tgd-ontologies are domain independent *)
  check_bool "tgds dom-independent" true
    (holds (Properties.domain_independent tc_o ~dom_size:2));
  (* a domain-size oracle is not *)
  let size_o = Ontology.oracle s (fun i -> Instance.dom_size i <= 1) in
  check_bool "size oracle fails" false
    (holds (Properties.domain_independent size_o ~dom_size:2))

let test_modularity () =
  (* tc is defined by a 3-variable full tgd: 3-modular *)
  check_bool "tc 3-modular" true (holds (Properties.modular tc_o ~n:3 ~dom_size:3));
  (* but not 1-modular: a violation needs at least 2 elements ... the
     violation E(a,b),E(b,c) without E(a,c) needs 3 *)
  check_bool "tc not 2-modular" false
    (holds (Properties.modular tc_o ~n:2 ~dom_size:3));
  (* "dom size ≠ 2" is not 1-modular: the non-members have exactly two
     domain elements, but every ≤1-element subinstance is a member *)
  let ne2_o = Ontology.oracle s (fun i -> Instance.dom_size i <> 2) in
  check_bool "dom≠2 not 1-modular" false
    (holds (Properties.modular ne2_o ~n:1 ~dom_size:2))

let test_dupext_closures () =
  let sigma52, _ = Tgd_workload.Families.example_5_2 in
  let s52 = schema [ ("R", 2); ("S", 2); ("T", 2) ] in
  let o52 = Ontology.axiomatic s52 sigma52 in
  (* Example 5.2: full tgds are NOT closed under oblivious duplication *)
  check_bool "oblivious fails (MV Lemma 7 refuted)" false
    (holds (Properties.closed_under_oblivious_dupext o52 ~dom_size:2));
  (* but they are closed under the corrected notion *)
  check_bool "non-oblivious holds" true
    (holds (Properties.closed_under_non_oblivious_dupext o52 ~dom_size:2))

let test_verdict_printing () =
  Alcotest.check Alcotest.string "holds" "holds"
    (Fmt.str "%a" (Properties.pp_verdict Fmt.int) Properties.Holds);
  Alcotest.check Alcotest.string "fails" "fails on 3"
    (Fmt.str "%a" (Properties.pp_verdict Fmt.int) (Properties.Fails 3))

let suite =
  [ case "criticality holds for tgd-ontologies (Lemma 3.2)" test_criticality_positive;
    case "criticality can fail" test_criticality_negative;
    case "⊗-closure holds (Lemma 3.4)" test_product_closure_positive;
    case "⊗-closure can fail" test_product_closure_negative;
    case "∩-closure (Theorem 5.6)" test_intersection_closure;
    case "∪-closure (linear tgds)" test_union_closure;
    case "⊎-closure (guarded vs fg, Thm 9.2)" test_disjoint_union_closure;
    case "domain independence (Lemma 3.8)" test_domain_independence;
    case "modularity" test_modularity;
    case "duplicating-extension closures (Example 5.2)" test_dupext_closures;
    case "verdict printing" test_verdict_printing
  ]
