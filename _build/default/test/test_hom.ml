open Tgd_syntax
open Tgd_instance
open Helpers

let s2 = schema [ ("E", 2) ]
let path = inst ~schema:s2 "E(a,b). E(b,c)."
let cycle = inst ~schema:s2 "E(a,b). E(b,a)."
let loop = inst ~schema:s2 "E(a,a)."
let e = Relation.make "E" 2

let test_query_homs () =
  let atoms = [ Atom.of_vars e [ v "x"; v "y" ]; Atom.of_vars e [ v "y"; v "z" ] ] in
  check_int "paths of length 2 in path" 1
    (Combinat.seq_length (Hom.all_homs atoms path));
  check_int "paths of length 2 in cycle" 2
    (Combinat.seq_length (Hom.all_homs atoms cycle));
  check_int "in loop" 1 (Combinat.seq_length (Hom.all_homs atoms loop));
  check_bool "triangle in path" false
    (Hom.exists_hom
       [ Atom.of_vars e [ v "x"; v "y" ]; Atom.of_vars e [ v "y"; v "z" ];
         Atom.of_vars e [ v "z"; v "x" ] ]
       path)

let test_partial_hom () =
  let atoms = [ Atom.of_vars e [ v "x"; v "y" ] ] in
  let partial = Binding.singleton (v "x") (c "b") in
  match Hom.find_hom ~partial atoms path with
  | Some h ->
    check_bool "x pinned" true (Binding.find (v "x") h = Some (c "b"));
    check_bool "y forced" true (Binding.find (v "y") h = Some (c "c"))
  | None -> Alcotest.fail "expected a hom with x=b"

let test_constants_in_atoms () =
  let a = Atom.make e [ Term.const (c "a"); Term.var (v "y") ] in
  check_int "constant anchors" 1 (Combinat.seq_length (Hom.all_homs [ a ] path));
  let bad = Atom.make e [ Term.const (c "c"); Term.var (v "y") ] in
  check_bool "no fact from c" false (Hom.exists_hom [ bad ] path)

let test_empty_query () =
  check_int "empty query has the empty hom" 1
    (Combinat.seq_length (Hom.all_homs [] path))

let test_instance_homs () =
  (* path folds onto loop *)
  check_bool "path -> loop" true (Hom.find_instance_hom path loop <> None);
  check_bool "loop -> path" false (Hom.find_instance_hom loop path <> None);
  check_bool "path -> cycle" true (Hom.find_instance_hom path cycle <> None);
  (* no injective hom path -> loop *)
  check_bool "no injective path -> loop" true
    (Hom.find_instance_hom ~injective:true path loop = None)

let test_fixed_instance_hom () =
  let fixed = Constant.Map.singleton (c "a") (c "a") in
  check_bool "fix a: path -> cycle" true
    (Hom.find_instance_hom ~fixed path cycle <> None);
  (* fixing c to c is impossible since c is not in cycle *)
  let fixed_bad = Constant.Map.singleton (c "c") (c "c") in
  check_bool "fix c fails" true (Hom.find_instance_hom ~fixed:fixed_bad path cycle = None)

let test_embeds_fixing () =
  check_bool "embed fixing {a}" true
    (Hom.embeds_fixing (Constant.Set.singleton (c "a")) path cycle);
  check_bool "embed fixing {a,b,c} fails" false
    (Hom.embeds_fixing (Constant.set_of_list [ c "a"; c "b"; c "c" ]) path cycle)

let test_isomorphism () =
  let cycle' = inst ~schema:s2 "E(u,w). E(w,u)." in
  check_bool "iso cycles" true (Hom.isomorphic cycle cycle');
  check_bool "path not iso cycle" false (Hom.isomorphic path cycle);
  check_bool "not iso loop" false (Hom.isomorphic cycle loop);
  (* domain size matters even with equal facts *)
  check_bool "extra dom element breaks iso" false
    (Hom.isomorphic cycle (Instance.add_dom cycle' (c "spare")));
  check_bool "iso is reflexive" true (Hom.isomorphic path path)

let test_hom_equivalence () =
  (* a path of length 2 and a single edge are NOT hom-equivalent (the
     2-path pattern has no match in ... wait, E(a,b) receives the 2-path
     via collapsing) *)
  let edge = inst ~schema:s2 "E(a,b)." in
  check_bool "edge -> path" true (Hom.find_instance_hom edge path <> None);
  check_bool "path -/-> edge" true (Hom.find_instance_hom path edge = None);
  check_bool "not equivalent" false (Hom.hom_equivalent path edge);
  check_bool "cycle ~ cycle" true (Hom.hom_equivalent cycle cycle)

let test_composition_property () =
  (* h : path -> cycle, g : cycle -> loop, then g∘h : path -> loop *)
  match Hom.find_instance_hom path cycle, Hom.find_instance_hom cycle loop with
  | Some h, Some g ->
    let compose x =
      match Constant.Map.find_opt x h with
      | Some y -> (
        match Constant.Map.find_opt y g with Some z -> z | None -> y)
      | None -> x
    in
    let image = Instance.map_constants compose path in
    check_bool "composite is a hom" true (Instance.subset image loop)
  | _ -> Alcotest.fail "expected homs to exist"

let suite =
  [ case "query homs" test_query_homs;
    case "partial homs" test_partial_hom;
    case "constants in atoms" test_constants_in_atoms;
    case "empty query" test_empty_query;
    case "instance homs" test_instance_homs;
    case "fixed instance homs" test_fixed_instance_hom;
    case "embeds_fixing" test_embeds_fixing;
    case "isomorphism" test_isomorphism;
    case "hom equivalence" test_hom_equivalence;
    case "hom composition" test_composition_property
  ]
