open Tgd_syntax
open Tgd_instance
open Helpers

let s = schema [ ("E", 2); ("P", 1) ]

let test_tgd_satisfaction () =
  let symm = tgd "E(x,y) -> E(y,x)." in
  check_bool "cycle symmetric... no" false
    (Satisfaction.tgd (inst ~schema:s "E(a,b). E(b,c).") symm);
  check_bool "symmetric pair" true
    (Satisfaction.tgd (inst ~schema:s "E(a,b). E(b,a).") symm);
  check_bool "empty instance satisfies" true
    (Satisfaction.tgd (Instance.empty s) symm)

let test_existential_head () =
  let succ = tgd "E(x,y) -> exists z. E(y,z)." in
  check_bool "loop satisfies" true (Satisfaction.tgd (inst ~schema:s "E(a,a).") succ);
  check_bool "dead end violates" false
    (Satisfaction.tgd (inst ~schema:s "E(a,b).") succ);
  check_bool "cycle satisfies" true
    (Satisfaction.tgd (inst ~schema:s "E(a,b). E(b,a).") succ)

let test_bodiless () =
  let start = tgd "-> exists z. P(z)." in
  check_bool "empty violates bodiless" false
    (Satisfaction.tgd (Instance.empty s) start);
  check_bool "P(a) satisfies" true (Satisfaction.tgd (inst ~schema:s "P(a).") start)

let test_multi_atom_head () =
  let both = tgd "P(x) -> exists z. E(x,z), E(z,x)." in
  check_bool "needs both directions" false
    (Satisfaction.tgd (inst ~schema:s "P(a). E(a,b).") both);
  check_bool "same witness required" true
    (Satisfaction.tgd (inst ~schema:s "P(a). E(a,b). E(b,a).") both);
  (* witnesses via different z must NOT count: E(a,b), E(c,a) has no single z *)
  check_bool "split witnesses rejected" false
    (Satisfaction.tgd (inst ~schema:s "P(a). E(a,b). E(c,a).") both)

let test_violating_hom () =
  let symm = tgd "E(x,y) -> E(y,x)." in
  match Satisfaction.violating_hom (inst ~schema:s "E(a,b).") symm with
  | Some h ->
    check_bool "x -> a" true (Binding.find (v "x") h = Some (c "a"));
    check_bool "y -> b" true (Binding.find (v "y") h = Some (c "b"))
  | None -> Alcotest.fail "expected a violation"

let test_egd_satisfaction () =
  let e = Relation.make "E" 2 in
  let key = Egd.make ~body:[ Atom.of_vars e [ v "x"; v "y" ]; Atom.of_vars e [ v "x"; v "z" ] ] (v "y") (v "z") in
  check_bool "functional ok" true (Satisfaction.egd (inst ~schema:s "E(a,b). E(c,b).") key);
  check_bool "violated" false
    (Satisfaction.egd (inst ~schema:s "E(a,b). E(a,q).") key)

let test_edd_satisfaction () =
  let e = Relation.make "E" 2 in
  let d =
    Edd.make
      ~body:[ Atom.of_vars e [ v "x"; v "y" ] ]
      ~disjuncts:
        [ Edd.Eq (v "x", v "y"); Edd.Exists [ Atom.of_vars e [ v "y"; v "z" ] ] ]
  in
  (* every edge either a loop or extends *)
  check_bool "loop ok" true (Satisfaction.edd (inst ~schema:s "E(a,a).") d);
  check_bool "path interior ok" true
    (Satisfaction.edd (inst ~schema:s "E(a,b). E(b,b).") d);
  check_bool "dead end violates" false (Satisfaction.edd (inst ~schema:s "E(a,b).") d)

let test_dependencies_mixed () =
  let e = Relation.make "E" 2 in
  let deps =
    [ Dependency.tgd (tgd "E(x,y) -> E(y,x).");
      Dependency.egd (Egd.make ~body:[ Atom.of_vars e [ v "x"; v "y" ] ] (v "x") (v "y"))
    ]
  in
  check_bool "loops only" true (Satisfaction.dependencies (inst ~schema:s "E(a,a).") deps);
  check_bool "edge fails egd" false
    (Satisfaction.dependencies (inst ~schema:s "E(a,b). E(b,a).") deps)

let test_boolean_cq () =
  let i = inst ~schema:s "E(a,b). E(b,c). P(a)." in
  let e = Relation.make "E" 2 in
  let p = Relation.make "P" 1 in
  check_bool "∃x,y. E(x,y) ∧ P(x)" true
    (Satisfaction.boolean_cq i [ Atom.of_vars e [ v "x"; v "y" ]; Atom.of_vars p [ v "x" ] ]);
  check_bool "∃x,y. E(x,y) ∧ P(y)" false
    (Satisfaction.boolean_cq i [ Atom.of_vars e [ v "x"; v "y" ]; Atom.of_vars p [ v "y" ] ])

let test_frontier_binding_only () =
  (* body variables not in the head must not constrain the head search *)
  let t = tgd "E(x,y), E(y,w) -> exists z. E(x,z)." in
  check_bool "frontier only" true
    (Satisfaction.tgd (inst ~schema:s "E(a,b). E(b,c).") t)

let suite =
  [ case "tgd satisfaction" test_tgd_satisfaction;
    case "existential heads" test_existential_head;
    case "bodiless tgds" test_bodiless;
    case "multi-atom heads share witnesses" test_multi_atom_head;
    case "violating hom" test_violating_hom;
    case "egd satisfaction" test_egd_satisfaction;
    case "edd satisfaction" test_edd_satisfaction;
    case "mixed dependencies" test_dependencies_mixed;
    case "boolean cqs" test_boolean_cq;
    case "frontier-only binding" test_frontier_binding_only
  ]
