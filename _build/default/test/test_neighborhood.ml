open Tgd_syntax
open Tgd_instance
open Helpers

let s = schema [ ("E", 2) ]
let j = inst ~schema:s "E(a,b). E(b,c). E(c,d)."

let test_zero_neighbourhood () =
  let k = inst ~schema:s "E(a,b)." in
  let nbhd = List.of_seq (Neighborhood.of_instance k j 0) in
  check_int "only the induced core" 1 (List.length nbhd);
  let j0 = List.hd nbhd in
  check_bool "contains K" true (Instance.subset k j0);
  check_int "adom bounded" 2 (Constant.Set.cardinal (Instance.adom j0))

let test_one_neighbourhood () =
  let k = inst ~schema:s "E(b,c)." in
  let nbhd = List.of_seq (Neighborhood.of_instance k j 1) in
  (* extensions by ∅, {a}, {d}: three induced subinstances *)
  check_int "three members" 3 (List.length nbhd);
  List.iter
    (fun j' ->
      check_bool "K ⊆ J'" true (Instance.subset k j');
      check_bool "adom ≤ |F| + 1" true
        (Constant.Set.cardinal (Instance.adom j') <= 3);
      check_bool "J' ≤ J" true (Instance.is_induced_subinstance (Instance.active_part j') (Instance.active_part j) || Instance.subset j' j))
    nbhd

let test_neighbourhood_is_induced () =
  let k = inst ~schema:s "E(b,c)." in
  Neighborhood.of_instance k j 2
  |> Seq.iter (fun j' ->
         (* each member carries every J-fact over its active domain *)
         let over_adom =
           Instance.induced j (Instance.adom j')
         in
         check_bool "induced member" true (Instance.equal_facts j' over_adom))

let test_skips_members_losing_f () =
  (* F = {a, d}: no fact of J mentions both, so members exist only where
     both stay active; extensions that keep only one of them are skipped *)
  let f = Constant.set_of_list [ c "a"; c "d" ] in
  Neighborhood.of_set f j 0
  |> Seq.iter (fun j' ->
         check_bool "F ⊆ adom" true (Constant.Set.subset f (Instance.adom j')))

let test_empty_f () =
  let f = Constant.Set.empty in
  let members = List.of_seq (Neighborhood.of_set f j 1) in
  (* ∅ and the four singletons; singleton adoms with no facts collapse to ∅ *)
  check_bool "has empty member" true
    (List.exists Instance.is_empty members)

let test_size_bound () =
  let f = Constant.set_of_list [ c "b" ] in
  (* |adom \ F| = 3, m = 1: 1 + 3 = 4 candidate extension sets *)
  check_int "size bound" 4 (Neighborhood.size_bound f j 1);
  check_int "m = 0" 1 (Neighborhood.size_bound f j 0)

let test_monotone_in_m () =
  let k = inst ~schema:s "E(b,c)." in
  let count m = Combinat.seq_length (Neighborhood.of_instance k j m) in
  check_bool "monotone" true (count 0 <= count 1 && count 1 <= count 2)

let suite =
  [ case "0-neighbourhood" test_zero_neighbourhood;
    case "1-neighbourhood" test_one_neighbourhood;
    case "members are induced" test_neighbourhood_is_induced;
    case "members keep F active" test_skips_members_losing_f;
    case "empty F" test_empty_f;
    case "size bound" test_size_bound;
    case "monotone in m" test_monotone_in_m
  ]
