open Tgd_syntax
open Tgd_instance
open Tgd_core
open Helpers

let s1 = schema [ ("P", 1) ]
let s2 = schema [ ("E", 2) ]

let test_counts () =
  (* one unary relation, k elements: 2^k instances *)
  check_int "P/1 over 2" 4 (Combinat.seq_length (Enumerate.instances s1 ~dom_size:2));
  check_int "E/2 over 2" 16 (Combinat.seq_length (Enumerate.instances s2 ~dom_size:2));
  Alcotest.check Alcotest.string "count formula" "16"
    (Bigint.to_string (Enumerate.count s2 2));
  (* up-to: 1 + 2 + 16 for E/2 (k = 0, 1, 2) *)
  check_int "up to 2" (1 + 2 + 16)
    (Combinat.seq_length (Enumerate.instances_up_to s2 2))

let test_every_instance_distinct () =
  let l = List.of_seq (Enumerate.instances s2 ~dom_size:2) in
  check_int "no duplicates" (List.length l)
    (List.length (List.sort_uniq Instance.compare l))

let test_dom_is_fixed () =
  Enumerate.instances s2 ~dom_size:2
  |> Seq.iter (fun i -> check_int "dom fixed" 2 (Instance.dom_size i))

let test_models_filter () =
  let sigma = [ tgd "E(x,y) -> E(y,x)." ] in
  let all = Combinat.seq_length (Enumerate.instances s2 ~dom_size:2) in
  let models = Combinat.seq_length (Enumerate.models sigma s2 ~dom_size:2) in
  (* symmetric subsets of a 2x2 matrix: diagonal free (2 bits), off-diagonal
     pair tied (1 bit) → 8 *)
  check_int "symmetric count" 8 models;
  check_bool "strictly fewer" true (models < all)

let test_critical_is_enumerated () =
  let has_critical =
    Enumerate.instances s2 ~dom_size:2
    |> Seq.exists (fun i -> Critical.is_critical i)
  in
  check_bool "critical member" true has_critical

let test_subinstances_le () =
  let i = inst ~schema:s2 "E(a,b). E(b,c)." in
  let subs = List.of_seq (Enumerate.subinstances_le i ~max_adom:2) in
  (* subsets of {a,b,c} of size ≤ 2: ∅,{a},{b},{c},{a,b},{a,c},{b,c} = 7 *)
  check_int "seven" 7 (List.length subs);
  List.iter
    (fun k ->
      check_bool "each ≤ I" true
        (Instance.is_induced_subinstance k i))
    subs

let test_all_facts () =
  check_int "all facts" 4
    (List.length (Enumerate.all_facts s2 (Enumerate.canonical_domain 2)))

let suite =
  [ case "cardinalities" test_counts;
    case "instances distinct" test_every_instance_distinct;
    case "domains fixed" test_dom_is_fixed;
    case "model filtering" test_models_filter;
    case "critical enumerated" test_critical_is_enumerated;
    case "subinstances (≤)" test_subinstances_le;
    case "all facts" test_all_facts
  ]
