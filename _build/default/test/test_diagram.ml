open Tgd_syntax
open Tgd_instance
open Helpers

let s = schema [ ("E", 2) ]
let i = inst ~schema:s "E(a,b). E(b,a)."
let k = Instance.induced i (Constant.set_of_list [ c "a"; c "b" ])

let exact = Tgd_instance.Diagram.{ max_atoms = None }

let test_atomic_formulas () =
  (* atoms over {a,b} and 1 star variable: 3^2 = 9 *)
  check_int "A_{K,1}" 9
    (List.length
       (Diagram.atomic_formulas s (Constant.set_of_list [ c "a"; c "b" ]) 1));
  check_int "A_{K,0}" 4
    (List.length
       (Diagram.atomic_formulas s (Constant.set_of_list [ c "a"; c "b" ]) 0))

let test_lemma_4_3 () =
  (* Lemma 4.3: I ⊨ ∃x̄ Φ^I_{K,ℓ}(x̄) for K ≤ I *)
  check_bool "Lemma 4.3 (m=0)" true (Diagram.lemma_4_3_holds ~filter:exact ~k ~i ~m:0 ());
  check_bool "Lemma 4.3 (m=1)" true (Diagram.lemma_4_3_holds ~filter:exact ~k ~i ~m:1 ());
  let k_small = Instance.induced i (Constant.Set.singleton (c "a")) in
  check_bool "Lemma 4.3 on empty K" true
    (Diagram.lemma_4_3_holds ~filter:exact ~k:k_small ~i ~m:1 ())

let test_violated_conjuncts () =
  (* E(a,a) fails in I; E(a,b) holds *)
  let violated =
    Diagram.violated_conjuncts ~filter:exact i
      (Constant.set_of_list [ c "a"; c "b" ])
      0
  in
  let contains_atoms atoms =
    List.exists
      (fun gamma -> List.for_all (fun x -> List.exists (Atom.equal x) gamma) atoms
                    && List.length gamma = List.length atoms)
      violated
  in
  let e = Relation.make "E" 2 in
  let ea_a = Atom.make e [ Term.const (c "a"); Term.const (c "a") ] in
  let ea_b = Atom.make e [ Term.const (c "a"); Term.const (c "b") ] in
  check_bool "E(a,a) violated" true (contains_atoms [ ea_a ]);
  check_bool "E(a,b) not violated alone" false (contains_atoms [ ea_b ])

let test_claim_4_6_edd_shape () =
  match Diagram.claim_4_6_edd ~filter:exact ~k ~i ~m:0 () with
  | None -> Alcotest.fail "expected an edd"
  | Some d ->
    (* body = facts(K) renamed; here K = I so 2 body atoms *)
    check_int "body size" 2 (List.length (Edd.body d));
    check_int "n = |dom K|" 2 (Edd.n_universal d);
    check_bool "within E_{2,0}" true (Edd.in_e_nm ~n:2 ~m:0 d);
    (* δ ≡ ¬∃x̄Φ and Lemma 4.3 gives I ⊨ ∃x̄Φ, so I ⊭ δ *)
    check_bool "I violates its own diagram edd" false (Satisfaction.edd i d)

let test_diagram_distinguishes () =
  (* J = single loop E(c,c): satisfies the edd (cannot embed the 2-cycle
     with a≠b) *)
  match Diagram.claim_4_6_edd ~filter:exact ~k ~i ~m:0 () with
  | None -> Alcotest.fail "expected an edd"
  | Some d ->
    let j_loop = inst ~schema:s "E(q,q)." in
    check_bool "loop satisfies δ (collapses a=b)" true (Satisfaction.edd j_loop d);
    let j_iso = inst ~schema:s "E(u,w). E(w,u)." in
    check_bool "isomorphic copy falsifies δ" false (Satisfaction.edd j_iso d)

let test_star_vars_distinct_from_const_vars () =
  check_bool "star var" true
    (Variable.name (Diagram.star_var 1) <> Variable.name (Diagram.const_var (c "a")))

let suite =
  [ case "atomic formulas count" test_atomic_formulas;
    case "Lemma 4.3" test_lemma_4_3;
    case "violated conjuncts" test_violated_conjuncts;
    case "Claim 4.6 edd shape" test_claim_4_6_edd_shape;
    case "diagram edd distinguishes" test_diagram_distinguishes;
    case "variable pools distinct" test_star_vars_distinct_from_const_vars
  ]
