test/helpers.ml: Alcotest Atom Constant Fact Instance Schema Tgd Tgd_chase Tgd_instance Tgd_parse Tgd_syntax Variable
