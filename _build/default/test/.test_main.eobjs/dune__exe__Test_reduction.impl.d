test/test_reduction.ml: Alcotest Atom Fact Helpers List Option Reduction Relation Rewrite Schema Tgd_chase Tgd_class Tgd_core Tgd_instance Tgd_syntax Tgd_workload Variable
