test/test_datalog.ml: Alcotest Chase Datalog Entailment Fact Helpers Instance List Printf Relation Satisfaction String Tgd Tgd_chase Tgd_instance Tgd_syntax Tgd_workload
