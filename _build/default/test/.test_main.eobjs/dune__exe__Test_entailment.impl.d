test/test_entailment.ml: Atom Binding Chase Constant Egd Entailment Helpers List Relation Tgd_chase Tgd_syntax Tgd_workload
