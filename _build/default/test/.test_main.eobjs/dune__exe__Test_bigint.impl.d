test/test_bigint.ml: Alcotest Bigint Helpers List Tgd_core
