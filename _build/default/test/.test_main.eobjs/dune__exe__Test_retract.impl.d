test/test_retract.ml: Alcotest Constant Fact Helpers Hom Instance List Relation Retract Satisfaction Tgd_chase Tgd_core Tgd_instance Tgd_parse Tgd_syntax
