test/test_theory.ml: Alcotest Atom Constant Denial Dependency Egd Entailment Fact Helpers Instance List Relation Term Tgd_chase Tgd_instance Tgd_syntax Theory
