test/test_neighborhood.ml: Combinat Constant Helpers Instance List Neighborhood Seq Tgd_instance Tgd_syntax
