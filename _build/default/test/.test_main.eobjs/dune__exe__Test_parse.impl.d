test/test_parse.ml: Alcotest Atom Canonical Constant Denial Egd Helpers Instance List Schema String Tgd Tgd_instance Tgd_parse Tgd_syntax
