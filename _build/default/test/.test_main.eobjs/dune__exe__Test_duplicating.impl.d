test/test_duplicating.ml: Alcotest Combinat Constant Duplicating Fact Helpers Instance List Relation Satisfaction Schema Seq Tgd_instance Tgd_parse Tgd_syntax Tgd_workload
