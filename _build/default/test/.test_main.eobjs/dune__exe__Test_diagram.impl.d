test/test_diagram.ml: Alcotest Atom Constant Diagram Edd Helpers Instance List Relation Satisfaction Term Tgd_instance Tgd_syntax Variable
