test/test_product.ml: Alcotest Constant Critical Fact Helpers Instance Product Relation Tgd_instance Tgd_syntax
