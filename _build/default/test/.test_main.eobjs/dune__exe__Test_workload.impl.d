test/test_workload.ml: Alcotest Families Gen Helpers Instance List Satisfaction Schema Tgd_chase Tgd_class Tgd_core Tgd_instance Tgd_parse Tgd_syntax Tgd_workload
