test/test_locality.ml: Alcotest Constant Enumerate Fact Helpers Instance List Locality Ontology Option Seq Tgd_core Tgd_instance Tgd_syntax Tgd_workload
