test/test_provenance.ml: Alcotest Chase Fact Fmt Helpers Instance List Provenance Relation String Tgd_chase Tgd_instance Tgd_syntax
