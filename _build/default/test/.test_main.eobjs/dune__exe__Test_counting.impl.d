test/test_counting.ml: Alcotest Bigint Candidates Counting Helpers List Printf Seq Tgd Tgd_core Tgd_syntax
