test/test_properties.ml: Alcotest Constant Fact Fmt Helpers Instance List Ontology Properties Relation Tgd_core Tgd_instance Tgd_syntax Tgd_workload
