test/test_ontology.ml: Alcotest Combinat Helpers Instance List Ontology Tgd Tgd_chase Tgd_core Tgd_instance Tgd_syntax
