test/test_enumerate.ml: Alcotest Bigint Combinat Critical Enumerate Helpers Instance List Seq Tgd_core Tgd_instance Tgd_syntax
