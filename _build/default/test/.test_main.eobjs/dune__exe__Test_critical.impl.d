test/test_critical.ml: Alcotest Critical Fact Helpers Instance List Relation Satisfaction Tgd_instance Tgd_syntax
