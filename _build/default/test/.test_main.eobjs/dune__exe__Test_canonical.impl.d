test/test_canonical.ml: Canonical Helpers List Tgd Tgd_class Tgd_syntax
