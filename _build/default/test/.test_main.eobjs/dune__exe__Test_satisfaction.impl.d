test/test_satisfaction.ml: Alcotest Atom Binding Dependency Edd Egd Helpers Instance Relation Satisfaction Tgd_instance Tgd_syntax
