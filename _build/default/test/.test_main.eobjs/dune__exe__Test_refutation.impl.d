test/test_refutation.ml: Alcotest Helpers Refutation Satisfaction Tgd_chase Tgd_core Tgd_instance
