test/test_hypergraph.ml: Atom Helpers Hypergraph List Relation Tgd Tgd_syntax Tgd_workload
