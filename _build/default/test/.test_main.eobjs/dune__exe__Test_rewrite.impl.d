test/test_rewrite.ml: Alcotest Candidates Helpers List Rewrite Schema Tgd Tgd_chase Tgd_class Tgd_core Tgd_syntax Tgd_workload
