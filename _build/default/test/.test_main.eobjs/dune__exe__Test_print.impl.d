test/test_print.ml: Alcotest Canonical Constant Fact Filename Helpers In_channel List Relation Sys Tgd_parse Tgd_syntax
