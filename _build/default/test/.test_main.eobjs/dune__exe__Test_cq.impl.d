test/test_cq.ml: Alcotest Atom Chase Cq Entailment Helpers List Relation Term Tgd_chase Tgd_syntax
