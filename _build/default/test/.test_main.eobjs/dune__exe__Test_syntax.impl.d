test/test_syntax.ml: Alcotest Atom Binding Canonical Constant Edd Egd Fact Helpers List Relation Schema Term Tgd Tgd_class Tgd_syntax Variable
