test/test_instance.ml: Alcotest Constant Fact Helpers Instance Relation Tgd_instance Tgd_syntax
