test/test_weak_acyclicity.ml: Chase Helpers List Tgd_chase Tgd_core Tgd_workload Weak_acyclicity
