test/test_expressibility.ml: Candidates Expressibility Fmt Helpers List Rewrite String Tgd_class Tgd_core Tgd_syntax Tgd_workload
