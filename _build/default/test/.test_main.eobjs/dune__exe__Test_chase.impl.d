test/test_chase.ml: Chase Constant Fact Helpers Hom Instance Option Satisfaction Schema Tgd_chase Tgd_core Tgd_instance Tgd_syntax Tgd_workload Weak_acyclicity
