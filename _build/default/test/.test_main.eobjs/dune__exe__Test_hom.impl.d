test/test_hom.ml: Alcotest Atom Binding Combinat Constant Helpers Hom Instance Relation Term Tgd_instance Tgd_syntax
