test/test_candidates.ml: Atom Candidates Canonical Helpers List Seq Tgd Tgd_class Tgd_core Tgd_syntax
