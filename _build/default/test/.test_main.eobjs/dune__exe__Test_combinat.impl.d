test/test_combinat.ml: Alcotest Combinat Helpers List Seq Tgd_syntax
