open Tgd_syntax
open Tgd_instance
open Helpers

let s = schema [ ("E", 2) ]
let e = Relation.make "E" 2

let test_core_of_core () =
  let cycle = inst ~schema:s "E(a,b). E(b,a)." in
  check_bool "2-cycle is a core" true (Retract.is_core cycle);
  check_bool "core is identity on cores" true
    (Instance.equal_facts (Retract.core cycle) cycle)

let test_loop_absorbs () =
  (* anything with a loop retracts onto the loop *)
  let i = inst ~schema:s "E(a,a). E(a,b). E(b,c). E(c,a)." in
  let core = Retract.core i in
  check_int "single loop" 1 (Instance.fact_count core);
  check_bool "loop fact" true
    (Fact.Set.exists
       (fun f -> match Fact.tuple f with [ x; y ] -> Constant.equal x y | _ -> false)
       (Instance.facts core))

let test_path_is_core () =
  let path = inst ~schema:s "E(a,b). E(b,c)." in
  check_bool "odd: 2-path is a core" true (Retract.is_core path)

let test_core_hom_equivalent () =
  let samples =
    [ inst ~schema:s "E(a,a). E(b,b). E(a,b).";
      inst ~schema:s "E(a,b). E(c,b). E(c,d).";
      inst ~schema:s "E(a,b). E(b,a). E(c,d). E(d,c)." ]
  in
  List.iter
    (fun i ->
      let core = Retract.core i in
      check_bool "core ⊆ I" true (Instance.subset core i);
      check_bool "hom-equivalent" true (Hom.hom_equivalent i core);
      check_bool "result is a core" true (Retract.is_core core))
    samples

let test_two_cycles_collapse () =
  (* two disjoint 2-cycles retract onto one *)
  let i = inst ~schema:s "E(a,b). E(b,a). E(c,d). E(d,c)." in
  let core = Retract.core i in
  check_int "one 2-cycle" 2 (Instance.fact_count core)

let test_core_preserving () =
  (* chase-style minimization: database constants are rigid.  The null-like
     witness collapses onto b only if b can replace it; fixing everything
     named keeps the fact. *)
  let i = inst ~schema:s "E(a,b). E(a,q)." in
  let rigid = Constant.set_of_list [ c "a"; c "b" ] in
  let core = Retract.core_preserving rigid i in
  check_int "q folded into b" 1 (Instance.fact_count core);
  check_bool "kept the rigid fact" true
    (Instance.mem core (Fact.make e [ c "a"; c "b" ]));
  (* with q also rigid nothing shrinks *)
  let all_rigid = Constant.set_of_list [ c "a"; c "b"; c "q" ] in
  check_int "all rigid" 2
    (Instance.fact_count (Retract.core_preserving all_rigid i))

let test_shrink_step () =
  let i = inst ~schema:s "E(a,a). E(b,b)." in
  (match Retract.shrink_step i with
  | Some j -> check_int "one loop left" 1 (Instance.fact_count j)
  | None -> Alcotest.fail "two loops must shrink");
  check_bool "single loop cannot shrink" true
    (Retract.shrink_step (inst ~schema:s "E(a,a).") = None)

let test_chase_core_minimal_universal () =
  (* the oblivious chase produces a redundant null witness; its rigid-
     preserving core is the minimal universal model *)
  let sigma = tgds "Dept(d) -> exists m. Mgr(d,m).\nMgr(d,m) -> Person(m)." in
  let sch = Tgd_core.Rewrite.schema_of sigma in
  let db = Tgd_parse.Parse.instance_exn ~schema:sch "Dept(cs). Mgr(cs,codd). Person(codd)." in
  let r = Tgd_chase.Chase.oblivious sigma db in
  check_bool "chase terminated" true (Tgd_chase.Chase.is_model r);
  check_bool "oblivious added a redundant null" true
    (Instance.fact_count r.Tgd_chase.Chase.instance > Instance.fact_count db);
  let core = Retract.core_preserving (Instance.adom db) r.Tgd_chase.Chase.instance in
  check_bool "core is a model" true (Satisfaction.tgds core sigma);
  check_bool "core contains db" true (Instance.subset db core);
  check_bool "core dropped the redundant null" true
    (Instance.equal_facts core db)

let suite =
  [ case "core of a core" test_core_of_core;
    case "loop absorbs everything" test_loop_absorbs;
    case "2-path is a core" test_path_is_core;
    case "core is a hom-equivalent retract" test_core_hom_equivalent;
    case "disjoint cycles collapse" test_two_cycles_collapse;
    case "core preserving rigid constants" test_core_preserving;
    case "shrink step" test_shrink_step;
    case "core universal model" test_chase_core_minimal_universal
  ]
