open Tgd_syntax
open Tgd_core
open Helpers

(* A tiny guarded ontology where the atomic query IS entailed:
   A(x) → B(x), B(x) → Q(x), with a bodiless A-generator so that
   Σ ⊨ ∃x Q(x). *)
let sigma_yes =
  tgds "-> exists z. A(z).\nA(x) -> B(x).\nB(x) -> Q(x)."

(* and one where it is not *)
let sigma_no = tgds "A(x) -> B(x)."

let q schema_sigma = Option.get (Schema.find (Rewrite.schema_of schema_sigma) "Q")

let test_construction_shape () =
  let sigma = sigma_yes in
  let art = Reduction.g_to_l_hardness sigma ~query:(q sigma) in
  (* Σ' = Σ ∪ {σ_Aux | σ ∈ Σ} ∪ {σ_Q, σ_RAux, σ_RS} *)
  check_int "size" ((2 * List.length sigma) + 3) (List.length art.Reduction.sigma');
  check_bool "all guarded" true
    (Tgd_class.all_in_class Tgd_class.Guarded art.Reduction.sigma');
  (* fresh predicates are fresh *)
  check_bool "aux fresh" true
    (Schema.find (Rewrite.schema_of sigma) (Relation.name art.Reduction.aux) = None);
  check_int "aux arity" 0 (Relation.arity art.Reduction.aux)

let test_fg_construction_shape () =
  let sigma, _ = Tgd_workload.Families.separation_guarded_vs_fg in
  (* use T as the query relation *)
  let query = Option.get (Schema.find (Rewrite.schema_of sigma) "T") in
  let art = Reduction.fg_to_g_hardness sigma ~query in
  check_bool "all frontier-guarded" true
    (Tgd_class.all_in_class Tgd_class.Frontier_guarded art.Reduction.sigma');
  (* the σ_RS of the FG reduction is itself frontier-guarded but NOT
     guarded: R(x), S(y) → T(x) *)
  check_bool "σ_RS not guarded" true
    (List.exists
       (fun t -> not (Tgd_class.is_guarded t))
       art.Reduction.sigma')

let test_witness_rewriting_when_query_entailed () =
  (* Σ ⊨ ∃x Q(x) ⟹ Σ' ≡ Σ_L (the paper's (1) ⇒ (2) direction) *)
  let sigma = sigma_yes in
  let art = Reduction.g_to_l_hardness sigma ~query:(q sigma) in
  check_bool "witness is linear" true
    (Tgd_class.all_in_class Tgd_class.Linear art.Reduction.witness_rewriting);
  check_answer "Σ' ≡ Σ_L" Tgd_chase.Entailment.Proved
    (Tgd_chase.Entailment.equivalent art.Reduction.sigma'
       art.Reduction.witness_rewriting);
  check_bool "bounded models agree" true
    (Rewrite.verify_equivalence_bounded art.Reduction.sigma'
       art.Reduction.witness_rewriting ~dom_size:2
    = None)

let test_not_equivalent_when_query_not_entailed () =
  (* Σ ⊭ ∃x Q(x) ⟹ Σ' is NOT closed under union, hence not equivalent to
     the witness linear set *)
  let sigma = sigma_no in
  let query = Option.get (Schema.find (Rewrite.schema_of sigma_yes) "Q") in
  (* extend Σ's schema with Q by mentioning it in a harmless rule *)
  let sigma = sigma @ [ tgd "Q(x) -> Q(x)." ] in
  let art = Reduction.g_to_l_hardness sigma ~query in
  check_answer "not equivalent" Tgd_chase.Entailment.Disproved
    (Tgd_chase.Entailment.equivalent art.Reduction.sigma'
       art.Reduction.witness_rewriting)

let test_union_argument () =
  (* the (2) ⇒ (1) proof: with Σ ⊭ q there are models J, J' of Σ' whose
     union violates Σ' — replay the construction *)
  let sigma = sigma_no @ [ tgd "Q(x) -> Q(x)." ] in
  let query = Option.get (Schema.find (Rewrite.schema_of sigma) "Q") in
  let art = Reduction.g_to_l_hardness sigma ~query in
  let schema' = art.Reduction.schema' in
  let i = Tgd_instance.Instance.empty schema' in
  (* I ⊨ Σ and I ⊭ ∃x Q(x); J adds R(c), J' adds S(c) *)
  let j =
    Tgd_instance.Instance.add_fact i (Fact.make art.Reduction.fresh_r [ c "w" ])
  in
  let j' =
    Tgd_instance.Instance.add_fact i (Fact.make art.Reduction.fresh_s [ c "w" ])
  in
  check_bool "J ⊨ Σ'" true (Tgd_instance.Satisfaction.tgds j art.Reduction.sigma');
  check_bool "J' ⊨ Σ'" true (Tgd_instance.Satisfaction.tgds j' art.Reduction.sigma');
  check_bool "J ∪ J' ⊭ Σ'" false
    (Tgd_instance.Satisfaction.tgds
       (Tgd_instance.Instance.union j j')
       art.Reduction.sigma')

let test_validation () =
  Alcotest.check_raises "query must occur"
    (Invalid_argument "Reduction: query relation does not occur in the input")
    (fun () ->
      ignore
        (Reduction.g_to_l_hardness sigma_no ~query:(Relation.make "Nope" 1)));
  Alcotest.check_raises "guarded input"
    (Invalid_argument "Reduction.g_to_l_hardness: input must be guarded")
    (fun () ->
      ignore
        (Reduction.g_to_l_hardness
           [ tgd "E(x,y), E(y,z) -> E(x,z)." ]
           ~query:(Relation.make "E" 2)))

let test_query_atom () =
  let a = Reduction.query_atom (Relation.make "Q" 3) in
  check_int "distinct vars" 3 (Variable.Set.cardinal (Atom.vars a))

let suite =
  [ case "G-to-L construction shape" test_construction_shape;
    case "FG-to-G construction shape" test_fg_construction_shape;
    case "witness rewriting when entailed" test_witness_rewriting_when_query_entailed;
    case "no equivalence when not entailed" test_not_equivalent_when_query_not_entailed;
    case "union argument (Appendix F)" test_union_argument;
    case "validation" test_validation;
    case "query atom" test_query_atom
  ]
