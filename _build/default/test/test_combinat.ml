open Tgd_syntax
open Helpers

let len s = Combinat.seq_length s

let test_permutations () =
  check_int "0!" 1 (len (Combinat.permutations []));
  check_int "3!" 6 (len (Combinat.permutations [ 1; 2; 3 ]));
  check_int "4!" 24 (len (Combinat.permutations [ 1; 2; 3; 4 ]));
  let perms = List.of_seq (Combinat.permutations [ 1; 2; 3 ]) in
  check_int "all distinct" 6 (List.length (List.sort_uniq compare perms));
  List.iter
    (fun p -> check_int "each is a permutation" 3 (List.length (List.sort_uniq compare p)))
    perms

let test_subsets () =
  check_int "2^4" 16 (len (Combinat.subsets [ 1; 2; 3; 4 ]));
  check_int "2^0" 1 (len (Combinat.subsets []));
  check_int "≤2 of 4" 11 (len (Combinat.subsets_up_to 2 [ 1; 2; 3; 4 ]));
  check_int "choose(4,2)" 6 (len (Combinat.subsets_of_size 2 [ 1; 2; 3; 4 ]));
  check_int "nonempty" 15 (len (Combinat.nonempty_sublists [ 1; 2; 3; 4 ]))

let test_subsets_preserve_order () =
  Combinat.subsets [ 1; 2; 3 ]
  |> Seq.iter (fun s -> check_bool "sorted sublist" true (List.sort compare s = s))

let test_tuples () =
  check_int "3^2" 9 (len (Combinat.tuples [ 1; 2; 3 ] 2));
  check_int "k=0" 1 (len (Combinat.tuples [ 1; 2; 3 ] 0));
  check_int "empty alphabet" 0 (len (Combinat.tuples ([] : int list) 2))

let bell n max_blocks = len (Combinat.growth_strings n max_blocks)

let test_growth_strings () =
  (* with enough blocks these count Bell numbers: 1, 1, 2, 5, 15 *)
  check_int "bell 0" 1 (bell 0 10);
  check_int "bell 1" 1 (bell 1 10);
  check_int "bell 2" 2 (bell 2 10);
  check_int "bell 3" 5 (bell 3 10);
  check_int "bell 4" 15 (bell 4 10);
  (* with at most 1 block there is exactly one string *)
  check_int "1 block" 1 (bell 3 1);
  (* every string is a valid restricted growth string *)
  Combinat.growth_strings 4 3
  |> Seq.iter (fun s ->
         let rec ok maxv = function
           | [] -> true
           | a :: rest -> a <= maxv + 1 && a >= 0 && ok (max maxv a) rest
         in
         match s with
         | [] -> Alcotest.fail "empty growth string of length 4"
         | a :: rest ->
           check_int "starts at 0" 0 a;
           check_bool "restricted growth" true (ok a rest))

let test_cartesian () =
  let s = Combinat.cartesian [ List.to_seq [ 1; 2 ]; List.to_seq [ 3; 4; 5 ] ] in
  check_int "2*3" 6 (len s);
  check_int "empty factor" 0
    (len (Combinat.cartesian [ List.to_seq [ 1 ]; Seq.empty ]))

let test_take () =
  Alcotest.check (Alcotest.list Alcotest.int) "take" [ 1; 2 ]
    (Combinat.take 2 (List.to_seq [ 1; 2; 3 ]))

let suite =
  [ case "permutations" test_permutations;
    case "subsets" test_subsets;
    case "subsets preserve order" test_subsets_preserve_order;
    case "tuples" test_tuples;
    case "growth strings" test_growth_strings;
    case "cartesian" test_cartesian;
    case "take" test_take
  ]
