open Tgd_syntax
open Tgd_instance
open Helpers

let test_parse_tgd () =
  let t = tgd "R(x,y), S(y,z) -> exists u. T(x,u)." in
  check_int "body" 2 (List.length (Tgd.body t));
  check_int "head" 1 (List.length (Tgd.head t));
  check_int "m" 1 (Tgd.m_existential t)

let test_implicit_existentials () =
  (* head-only variables are existential even without 'exists' *)
  let a = tgd "R(x,y) -> T(y,u)." in
  let b = tgd "R(x,y) -> exists u. T(y,u)." in
  check_bool "same tgd" true (Canonical.equal_up_to_renaming a b)

let test_bodiless () =
  let t = tgd "-> exists z. Start(z)." in
  check_int "no body" 0 (List.length (Tgd.body t))

let test_zero_ary () =
  let t = tgd "Q(x) -> Aux." in
  (match Tgd.head t with
  | [ a ] -> check_int "0-ary head" 0 (Atom.arity a)
  | _ -> Alcotest.fail "one head atom expected");
  let t2 = tgd "Q(x) -> Aux()." in
  check_bool "parens optional" true (Tgd.equal t t2)

let test_facts_and_rules_mixed () =
  match Tgd_parse.Parse.program "R(a,b). R(x,y) -> T(x). T(c)." with
  | Ok p ->
    check_int "tgds" 1 (List.length p.Tgd_parse.Parse.tgds);
    check_int "facts" 2 (List.length p.Tgd_parse.Parse.facts);
    check_int "schema" 2 (Schema.size p.Tgd_parse.Parse.schema)
  | Error e -> Alcotest.failf "parse error %a" Tgd_parse.Parse.pp_error e

let test_comments_and_whitespace () =
  let t =
    tgds "% a comment\n  R(x,y) -> T(x). # another\n\n T(x) -> U(x)."
  in
  check_int "two rules" 2 (List.length t)

let test_round_trip () =
  List.iter
    (fun src ->
      let t = tgd src in
      let t' = tgd (Tgd.to_string t ^ ".") in
      check_bool ("round trip: " ^ src) true (Canonical.equal_up_to_renaming t t'))
    [ "R(x,y), S(y,z) -> exists u,w. T(x,u), T(u,w).";
      "R(x,x) -> T(x).";
      "-> exists z. Start(z).";
      "P(x) -> Q(x), R(x,x)." ]

let test_errors_positioned () =
  (match Tgd_parse.Parse.tgds "R(x,y -> T(x)." with
  | Error e -> check_bool "line 1" true (e.Tgd_parse.Parse.line = 1)
  | Ok _ -> Alcotest.fail "should not parse");
  (match Tgd_parse.Parse.tgds "R(x,y).\nR(x y) -> T(x)." with
  | Error e -> check_int "line 2" 2 e.Tgd_parse.Parse.line
  | Ok _ -> Alcotest.fail "should not parse")

let test_arity_conflicts () =
  match Tgd_parse.Parse.tgds "R(x,y) -> T(x). R(x) -> T(x)." with
  | Error e ->
    check_bool "mentions arities" true
      (let msg = e.Tgd_parse.Parse.message in
       String.length msg > 0)
  | Ok _ -> Alcotest.fail "arity conflict must be rejected"

let test_given_schema_enforced () =
  let s = schema [ ("R", 2) ] in
  (match Tgd_parse.Parse.program ~schema:s "R(a,b)." with
  | Ok p -> check_int "ok" 1 (List.length p.Tgd_parse.Parse.facts)
  | Error _ -> Alcotest.fail "should parse");
  match Tgd_parse.Parse.program ~schema:s "T(a)." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown relation must be rejected"

let test_instance_parsing () =
  let i = inst "R(a,b). R(b,c). P(a)." in
  check_int "facts" 3 (Instance.fact_count i);
  check_bool "constants are named" true
    (Constant.Set.mem (c "a") (Instance.adom i))

let test_lexer_tokens () =
  let toks = Tgd_parse.Lexer.tokenize "R(x) -> T(x)." in
  (* R ( x ) -> T ( x ) . EOF *)
  check_int "token count" 11 (List.length toks)

let test_lexer_errors () =
  (match Tgd_parse.Lexer.tokenize "R(x) @ T" with
  | exception Tgd_parse.Lexer.Lex_error (_, 1, 6) -> ()
  | exception Tgd_parse.Lexer.Lex_error (_, l, col) ->
    Alcotest.failf "wrong position %d:%d" l col
  | _ -> Alcotest.fail "expected lex error");
  match Tgd_parse.Lexer.tokenize "R -" with
  | exception Tgd_parse.Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "dangling '-' must fail"

let test_parse_egd () =
  let p = Tgd_parse.Parse.program_exn "E(x,y), E(x,z) -> y = z." in
  check_int "one egd" 1 (List.length p.Tgd_parse.Parse.egds);
  check_int "no tgds" 0 (List.length p.Tgd_parse.Parse.tgds);
  let e = List.hd p.Tgd_parse.Parse.egds in
  check_int "two body atoms" 2 (List.length (Egd.body e))

let test_parse_denial () =
  let p = Tgd_parse.Parse.program_exn "R(x), Forbidden(x) -> false." in
  check_int "one denial" 1 (List.length p.Tgd_parse.Parse.denials);
  check_int "two body atoms" 2
    (List.length (Denial.body (List.hd p.Tgd_parse.Parse.denials)))

let test_parse_mixed_theory () =
  let p =
    Tgd_parse.Parse.program_exn
      "% a full theory\n\
       Emp(x,d) -> Dept(d).\n\
       Emp(x,d), Emp(x,e) -> d = e.\n\
       Dept(d), Banned(d) -> false.\n\
       Emp(ann,cs)."
  in
  check_int "tgds" 1 (List.length p.Tgd_parse.Parse.tgds);
  check_int "egds" 1 (List.length p.Tgd_parse.Parse.egds);
  check_int "denials" 1 (List.length p.Tgd_parse.Parse.denials);
  check_int "facts" 1 (List.length p.Tgd_parse.Parse.facts)

let test_equality_must_be_alone () =
  (match Tgd_parse.Parse.program "E(x,y) -> T(x), x = y." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mixed equality head must be rejected");
  match Tgd_parse.Parse.program "E(x,y) -> false, T(x)." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mixed false head must be rejected"

let test_egd_body_vars_checked () =
  match Tgd_parse.Parse.program "E(x,y) -> x = z." with
  | Error e -> check_bool "reports" true (String.length e.Tgd_parse.Parse.message > 0)
  | Ok _ -> Alcotest.fail "egd over non-body variable must be rejected"

let test_tgd_exn_arity () =
  match Tgd_parse.Parse.tgd_exn "R(x) -> T(x). T(x) -> U(x)." with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "tgd_exn requires exactly one tgd"

let suite =
  [ case "parse tgd" test_parse_tgd;
    case "implicit existentials" test_implicit_existentials;
    case "bodiless" test_bodiless;
    case "0-ary atoms" test_zero_ary;
    case "facts and rules mixed" test_facts_and_rules_mixed;
    case "comments and whitespace" test_comments_and_whitespace;
    case "print/parse round trip" test_round_trip;
    case "error positions" test_errors_positioned;
    case "arity conflicts" test_arity_conflicts;
    case "given schema enforced" test_given_schema_enforced;
    case "instance parsing" test_instance_parsing;
    case "lexer token stream" test_lexer_tokens;
    case "lexer errors" test_lexer_errors;
    case "parse egd" test_parse_egd;
    case "parse denial" test_parse_denial;
    case "parse mixed theory" test_parse_mixed_theory;
    case "equality/false must be alone" test_equality_must_be_alone;
    case "egd variable scoping" test_egd_body_vars_checked;
    case "tgd_exn arity" test_tgd_exn_arity
  ]
