open Tgd_syntax
open Tgd_instance
open Tgd_chase
open Helpers

let s = schema [ ("E", 2); ("T", 2); ("P", 1) ]
let tc = tgds "E(x,y) -> T(x,y).\nT(x,y), E(y,z) -> T(x,z)."
let db = inst ~schema:s "E(a,b). E(b,c)."

let t_fact x y = Fact.make (Relation.make "T" 2) [ c x; c y ]
let e_fact x y = Fact.make (Relation.make "E" 2) [ c x; c y ]

let test_sources () =
  let result, log = Provenance.restricted tc db in
  check_bool "terminated" true (Chase.is_model result);
  (* inputs are inputs *)
  (match Provenance.source_of log (e_fact "a" "b") with
  | Some Provenance.Input -> ()
  | _ -> Alcotest.fail "E(a,b) is an input");
  (* derived facts carry their rule and premises *)
  (match Provenance.source_of log (t_fact "a" "c") with
  | Some (Provenance.Derived { premises; _ }) ->
    check_int "two premises" 2 (List.length premises);
    check_bool "premise T(a,b)" true
      (List.exists (Fact.equal (t_fact "a" "b")) premises);
    check_bool "premise E(b,c)" true
      (List.exists (Fact.equal (e_fact "b" "c")) premises)
  | _ -> Alcotest.fail "T(a,c) must be derived");
  (* unknown facts yield None *)
  check_bool "unknown fact" true (Provenance.source_of log (t_fact "c" "a") = None)

let test_explain_tree () =
  let _, log = Provenance.restricted tc db in
  match Provenance.explain log (t_fact "a" "c") with
  | None -> Alcotest.fail "T(a,c) must be explainable"
  | Some tree ->
    (* T(a,c) ← {T(a,b) ← E(a,b), E(b,c)} : depth 2 *)
    check_int "depth" 2 (Provenance.depth tree);
    check_int "two children" 2 (List.length tree.Provenance.children);
    (* every leaf of the tree is an input fact *)
    let rec leaves t =
      match t.Provenance.children with
      | [] -> [ t ]
      | cs -> List.concat_map leaves cs
    in
    List.iter
      (fun leaf ->
        check_bool "leaf is input" true (leaf.Provenance.source = Provenance.Input))
      (leaves tree);
    (* rendering mentions the root fact *)
    let rendered = Fmt.str "%a" Provenance.pp_tree tree in
    let contains haystack needle =
      let nl = String.length needle and hl = String.length haystack in
      let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
      go 0
    in
    check_bool "mentions T(a,c)" true (contains rendered "T(a,c)")

let test_existential_provenance () =
  let sigma = tgds "P(x) -> exists z. E(x,z)." in
  let dbp = inst ~schema:s "P(a)." in
  let result, log = Provenance.restricted sigma dbp in
  let derived =
    Fact.Set.filter
      (fun f -> Fact.rel f = Relation.make "E" 2)
      (Instance.facts result.Chase.instance)
  in
  check_int "one invented edge" 1 (Fact.Set.cardinal derived);
  match Provenance.source_of log (Fact.Set.choose derived) with
  | Some (Provenance.Derived { premises; _ }) ->
    check_int "premise P(a)" 1 (List.length premises)
  | _ -> Alcotest.fail "invented fact must be derived"

let test_provenance_agrees_with_chase () =
  let result, log = Provenance.restricted tc db in
  Fact.Set.iter
    (fun f -> check_bool "every result fact has a source" true
        (Provenance.source_of log f <> None))
    (Instance.facts result.Chase.instance)

let suite =
  [ case "sources" test_sources;
    case "explain tree" test_explain_tree;
    case "existential provenance" test_existential_provenance;
    case "all result facts have sources" test_provenance_agrees_with_chase
  ]
