open Tgd_syntax
open Tgd_instance
open Helpers

(* Example 5.2 data *)
let sigma52, i52 = Tgd_workload.Families.example_5_2
let a = c "a"
let cc = c "c"

let test_oblivious_shape () =
  (* J = I ∪ h(I) with h(a) = c: the paper's oblivious extension *)
  let j = Duplicating.oblivious i52 a cc in
  check_int "dom" 3 (Instance.dom_size j);
  List.iter
    (fun f -> check_bool ("has " ^ f) true (Instance.mem j (List.hd (Tgd_parse.Parse.instance_exn ~schema:(Instance.schema i52) (f ^ ".") |> Instance.fact_list))))
    [ "R(a,b)"; "S(b,a)"; "T(a,a)"; "R(c,b)"; "S(b,c)"; "T(c,c)" ];
  (* crucially, T(a,c) and T(c,a) are NOT there *)
  check_bool "no T(a,c)" false
    (Instance.mem j (Fact.make (Relation.make "T" 2) [ a; cc ]));
  check_int "fact count" 6 (Instance.fact_count j)

let test_example_5_2_refutes_mv_lemma_7 () =
  (* I ⊨ σ but the oblivious duplicating extension J ⊭ σ *)
  check_bool "I models σ" true (Satisfaction.tgds i52 sigma52);
  let j = Duplicating.oblivious i52 a cc in
  check_bool "oblivious J violates σ" false (Satisfaction.tgds j sigma52)

let test_non_oblivious_shape () =
  let j = Duplicating.non_oblivious i52 a cc in
  (* the paper's "valid duplicating extension": adds R(c,b), S(b,c),
     T(a,c), T(c,a), T(c,c) *)
  List.iter
    (fun (r, t) ->
      check_bool "expected fact" true (Instance.mem j (Fact.make (Relation.make r 2) t)))
    [ ("R", [ a; c "b" ]); ("S", [ c "b"; a ]); ("T", [ a; a ]);
      ("R", [ cc; c "b" ]); ("S", [ c "b"; cc ]); ("T", [ a; cc ]);
      ("T", [ cc; a ]); ("T", [ cc; cc ]) ]

let test_non_oblivious_preserves_tgds () =
  let j = Duplicating.non_oblivious i52 a cc in
  check_bool "non-oblivious J models σ" true (Satisfaction.tgds j sigma52)

let test_recognition () =
  let j = Duplicating.non_oblivious i52 a cc in
  check_bool "recognized" true (Duplicating.is_non_oblivious_of j i52);
  let j_bad = Duplicating.oblivious i52 a cc in
  check_bool "oblivious not recognized as non-oblivious" false
    (Duplicating.is_non_oblivious_of j_bad i52);
  check_bool "unrelated instance" false (Duplicating.is_non_oblivious_of i52 i52)

let test_defining_condition () =
  (* R(t̄) ∈ J iff h(R(t̄)) ∈ I for every tuple over dom(I) ∪ {d} *)
  let j = Duplicating.non_oblivious i52 a cc in
  let h x = if Constant.equal x cc then a else x in
  let domain = Constant.Set.elements (Instance.dom j) in
  List.iter
    (fun r ->
      Combinat.tuples domain (Relation.arity r)
      |> Seq.iter (fun tuple ->
             let f = Fact.make r tuple in
             check_bool "defining condition" (Instance.mem i52 (Fact.map h f))
               (Instance.mem j f)))
    (Schema.relations (Instance.schema i52))

let test_validation () =
  Alcotest.check_raises "c must be in dom"
    (Invalid_argument "Duplicating: witness constant not in the domain")
    (fun () -> ignore (Duplicating.oblivious i52 (c "zz") cc));
  Alcotest.check_raises "d must be fresh"
    (Invalid_argument "Duplicating: fresh constant already in the domain")
    (fun () -> ignore (Duplicating.oblivious i52 a (c "b")))

let test_fresh_for () =
  let d = Duplicating.fresh_for i52 in
  check_bool "fresh" false (Constant.Set.mem d (Instance.dom i52))

let suite =
  [ case "oblivious shape (paper Example 5.2 J)" test_oblivious_shape;
    case "Example 5.2 refutes MV Lemma 7" test_example_5_2_refutes_mv_lemma_7;
    case "non-oblivious shape" test_non_oblivious_shape;
    case "non-oblivious preserves full tgds" test_non_oblivious_preserves_tgds;
    case "recognition" test_recognition;
    case "defining condition" test_defining_condition;
    case "validation" test_validation;
    case "fresh_for" test_fresh_for
  ]
