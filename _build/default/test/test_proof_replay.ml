(* Replays of the paper's proof structures on concrete data — these tests
   exercise the internals that the theorem-level tests use as black boxes. *)

open Tgd_syntax
open Tgd_instance
open Tgd_core
open Helpers

let s_e = schema [ ("E", 2) ]
let succ = [ tgd "E(x,y) -> exists z. E(y,z)." ]
let o_succ = Ontology.axiomatic s_e succ

(* ---- Lemma 3.6 / Figure 2: the (n,m)-local embeddability machinery ---- *)

let test_lemma_3_6_positive_replay () =
  (* the 3-cycle is a model; local embeddability must confirm it with
     witnesses whose neighbourhoods all fold back *)
  let i = inst ~schema:s_e "E(a,b). E(b,c). E(c,a)." in
  check_bool "I ⊨ Σ" true (Satisfaction.tgds i succ);
  match Locality.locally_embeddable Locality.Plain ~n:2 ~m:1 o_succ i with
  | Locality.Embeddable -> ()
  | Locality.No_witness conf ->
    Alcotest.failf "no witness for %a" Instance.pp conf.Locality.sub

let test_lemma_3_6_contrapositive_replay () =
  (* a dead-end path is not a model, so by Lemma 3.6 it cannot be locally
     embeddable; the failing configuration must involve the dead end *)
  let i = inst ~schema:s_e "E(a,b). E(b,c)." in
  check_bool "I ⊭ Σ" false (Satisfaction.tgds i succ);
  match Locality.locally_embeddable Locality.Plain ~n:2 ~m:1 o_succ i with
  | Locality.Embeddable -> Alcotest.fail "Lemma 3.6 violated"
  | Locality.No_witness conf ->
    check_bool "dead end in the failing configuration" true
      (Constant.Set.mem (c "c") (Instance.adom conf.Locality.sub)
      || Instance.is_empty conf.Locality.sub)

let test_figure_2_witness_structure () =
  (* replay the λ = μ_L ∘ g construction: take the body image K of a trigger
     in the 3-cycle, produce a witness J_K ∈ O extending K, extend to g with
     g(ψ) ⊆ J_K, cut out L, fold it back into I with μ_L, and check that
     λ = μ_L ∘ g extends h and lands in I *)
  let i = inst ~schema:s_e "E(a,b). E(b,c). E(c,a)." in
  let sigma_tgd = List.hd succ in
  let h = Binding.of_list [ (v "x", c "a"); (v "y", c "b") ] in
  (* K := induced subinstance on the constants of h(φ) *)
  let k = Instance.induced i (Binding.range h) in
  check_bool "K ≤ I" true (Instance.is_induced_subinstance k i);
  check_bool "|adom K| ≤ n" true (Constant.Set.cardinal (Instance.adom k) <= 2);
  (* witness: a member of O containing K with foldable neighbourhoods *)
  let witness =
    Ontology.member_extending ~max_extra:1 o_succ k
    |> Seq.filter (fun j ->
           Locality.witness_ok ~m:1 ~fixed:(Instance.adom k) ~witness:j
             ~target:i)
    |> fun seq ->
    match seq () with
    | Seq.Nil -> Alcotest.fail "no witness J_K"
    | Seq.Cons (j, _) -> j
  in
  check_bool "K ⊆ J_K" true (Instance.subset k witness);
  check_bool "J_K ∈ O" true (Ontology.mem o_succ witness);
  (* g: extend h to satisfy the head inside J_K *)
  let g =
    match
      Tgd_instance.Hom.find_hom
        ~partial:(Binding.restrict (Tgd.frontier sigma_tgd) h)
        (Tgd.head sigma_tgd) witness
    with
    | Some g -> g
    | None -> Alcotest.fail "J_K must satisfy the trigger"
  in
  (* L: the induced subinstance on h(φ) ∪ g(ψ) *)
  let l =
    Instance.induced witness
      (Constant.Set.union (Binding.range h) (Binding.range g))
  in
  (* L is in the m-neighbourhood of K in J_K *)
  check_bool "L in the 1-neighbourhood" true
    (Neighborhood.of_instance k witness 1
    |> Seq.exists (fun j' -> Instance.equal_facts j' l));
  (* μ_L: fold L into I fixing adom K; λ = μ_L ∘ g lands the head in I *)
  (match
     Tgd_instance.Hom.find_instance_hom
       ~fixed:
         (Constant.Set.fold
            (fun x acc -> Constant.Map.add x x acc)
            (Instance.adom k) Constant.Map.empty)
       l i
   with
  | None -> Alcotest.fail "μ_L must exist"
  | Some mu ->
    let lambda var =
      match Binding.find var g with
      | Some x -> (
        match Constant.Map.find_opt x mu with Some y -> y | None -> x)
      | None -> Alcotest.fail "g must bind all head variables"
    in
    List.iter
      (fun atom ->
        let fact =
          Fact.make (Atom.rel atom)
            (List.map
               (fun t ->
                 match t with
                 | Term.Var var -> lambda var
                 | Term.Const x -> x)
               (Atom.args atom))
        in
        check_bool "λ(ψ) ⊆ facts(I)" true (Instance.mem i fact))
      (Tgd.head sigma_tgd))

(* ---- Claim 4.8: products refute disjunctions disjunct-by-disjunct ---- *)

let test_claim_4_8_replay () =
  let e = Relation.make "E" 2 in
  (* δ = ∀x,y (E(x,y) → x = y ∨ E(y,x)) *)
  let delta =
    Edd.make
      ~body:[ Atom.of_vars e [ v "x"; v "y" ] ]
      ~disjuncts:
        [ Edd.Eq (v "x", v "y"); Edd.Exists [ Atom.of_vars e [ v "y"; v "x" ] ] ]
  in
  (* I_1 refutes the equality disjunct, I_2 the relational one *)
  let i1 = inst ~schema:s_e "E(a,b). E(b,a)." in
  let i2 = inst ~schema:s_e "E(q,q). E(q,d)." in
  check_bool "I_1 ⊨ δ" true (Satisfaction.edd i1 delta);
  check_bool "I_2 ⊨ δ... no: E(q,d) breaks it" false (Satisfaction.edd i2 delta);
  (* the claim's shape: take I_1 violating σ_1 = (φ → x=y) and I_2 violating
     σ_2 = (φ → E(y,x)); their product violates the whole disjunction *)
  let i1 = inst ~schema:s_e "E(a,b)." (* a ≠ b: σ_1 fails *) in
  let i2 = inst ~schema:s_e "E(q,d)." (* no E(d,q): σ_2 fails *) in
  let j = Product.direct i1 i2 in
  check_bool "J ⊭ δ (Claim 4.8)" false (Satisfaction.edd j delta)

(* ---- Step 3: criticality kills egds ---- *)

let test_step_3_replay () =
  (* an egd δ ∈ Σ^{∃,=} with a violating assignment h lifts to a k-critical
     instance that still violates δ — so δ cannot be satisfied by every
     member of a critical ontology *)
  let e = Relation.make "E" 2 in
  let delta = Egd.make ~body:[ Atom.of_vars e [ v "x"; v "y" ] ] (v "x") (v "y") in
  let k_critical = Critical.make s_e 2 in
  check_bool "critical instance violates the egd" false
    (Satisfaction.egd k_critical delta)

let suite =
  [ case "Lemma 3.6: embeddable model (3-cycle)" test_lemma_3_6_positive_replay;
    case "Lemma 3.6: contrapositive (dead end)" test_lemma_3_6_contrapositive_replay;
    case "Figure 2: λ = μ_L ∘ g construction" test_figure_2_witness_structure;
    case "Claim 4.8: product refutes the disjunction" test_claim_4_8_replay;
    case "Step 3: criticality kills egds" test_step_3_replay
  ]
