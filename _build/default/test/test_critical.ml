open Tgd_syntax
open Tgd_instance
open Helpers

let s = schema [ ("R", 2); ("P", 1) ]

let test_make () =
  let k3 = Critical.make s 3 in
  check_int "dom" 3 (Instance.dom_size k3);
  check_int "facts" (9 + 3) (Instance.fact_count k3);
  check_bool "is critical" true (Critical.is_critical k3);
  Alcotest.check_raises "k positive"
    (Invalid_argument "Critical.make: k must be positive") (fun () ->
      ignore (Critical.make s 0))

let test_paper_example () =
  (* the 2-critical {R}-instance of Section 3.1 *)
  let sr = schema [ ("R", 2) ] in
  let k2 = Critical.over sr [ c "c"; c "d" ] in
  check_int "four facts" 4 (Instance.fact_count k2);
  List.iter
    (fun (x, y) ->
      check_bool "has fact" true
        (Instance.mem k2 (Fact.make (Relation.make "R" 2) [ x; y ])))
    [ (c "c", c "c"); (c "c", c "d"); (c "d", c "c"); (c "d", c "d") ]

let test_is_critical_negative () =
  check_bool "missing tuple" false
    (Critical.is_critical (inst ~schema:s "R(a,b). R(b,a). P(a). P(b)."));
  check_bool "empty not critical" false
    (Critical.is_critical (Instance.empty s))

let test_containing () =
  let facts = [ Fact.make (Relation.make "R" 2) [ c "a"; c "b" ] ] in
  let k = Critical.containing s facts in
  check_bool "contains facts" true
    (Instance.subset (Instance.of_facts s facts) k);
  check_bool "critical" true (Critical.is_critical k);
  check_int "minimal domain" 2 (Instance.dom_size k)

let test_critical_models_everything () =
  (* Lemma 3.2 on specific tgds, including existential heads *)
  let sigma =
    [ tgd "R(x,y) -> exists z. R(y,z)."; tgd "R(x,y), P(x) -> P(y).";
      tgd "P(x) -> R(x,x)."; tgd "-> exists z. P(z)." ]
  in
  List.iter
    (fun k ->
      let inst = Critical.make s k in
      List.iter
        (fun t -> check_bool "critical models tgd" true (Satisfaction.tgd inst t))
        sigma)
    [ 1; 2; 3 ]

let test_zero_ary_relation () =
  let s0 = schema [ ("Aux", 0); ("P", 1) ] in
  let k = Critical.make s0 2 in
  check_bool "0-ary fact present" true
    (Instance.mem k (Fact.make (Relation.make "Aux" 0) []));
  check_bool "critical" true (Critical.is_critical k)

let suite =
  [ case "make" test_make;
    case "paper example (2-critical)" test_paper_example;
    case "negative cases" test_is_critical_negative;
    case "containing" test_containing;
    case "critical models every tgd (Lemma 3.2)" test_critical_models_everything;
    case "0-ary relations" test_zero_ary_relation
  ]
