open Tgd_syntax
open Tgd_instance
open Helpers

let s2 = schema [ ("E", 2); ("P", 1) ]
let i1 = inst ~schema:s2 "E(a,b). P(a)."
let i2 = inst ~schema:s2 "E(u,w). E(w,u). P(u). P(w)."

let test_shape () =
  let p = Product.direct i1 i2 in
  check_int "dom size" (Instance.dom_size i1 * Instance.dom_size i2)
    (Instance.dom_size p);
  (* |E^P| = |E^I|·|E^J|, |P^P| = |P^I|·|P^J| *)
  check_int "E facts" 2
    (Fact.Set.cardinal (Instance.facts_of p (Relation.make "E" 2)));
  check_int "P facts" 2
    (Fact.Set.cardinal (Instance.facts_of p (Relation.make "P" 1)))

let test_membership_characterization () =
  (* ((a,b)) ∈ R^{I⊗J} iff a ∈ R^I and b ∈ R^J — check every pair *)
  let p = Product.direct i1 i2 in
  let e = Relation.make "E" 2 in
  Constant.Set.iter
    (fun x ->
      Constant.Set.iter
        (fun y ->
          Constant.Set.iter
            (fun x' ->
              Constant.Set.iter
                (fun y' ->
                  let in_product =
                    Instance.mem p
                      (Fact.make e [ Constant.pair x x'; Constant.pair y y' ])
                  in
                  let expected =
                    Instance.mem i1 (Fact.make e [ x; y ])
                    && Instance.mem i2 (Fact.make e [ x'; y' ])
                  in
                  check_bool "product membership" expected in_product)
                (Instance.dom i2))
            (Instance.dom i2))
        (Instance.dom i1))
    (Instance.dom i1)

let test_projections_are_homs () =
  let p = Product.direct i1 i2 in
  check_bool "π1 hom" true (Instance.subset (Product.project_first p) i1);
  check_bool "π2 hom" true (Instance.subset (Product.project_second p) i2)

let test_schema_mismatch () =
  let other = inst ~schema:(schema [ ("E", 2) ]) "E(a,b)." in
  Alcotest.check_raises "different schemas"
    (Invalid_argument "Product.direct: instances over different schemas")
    (fun () -> ignore (Product.direct i1 other))

let test_power () =
  let p2 = Product.power i2 2 in
  check_int "square dom" 4 (Instance.dom_size p2);
  check_int "square E" 4 (Fact.Set.cardinal (Instance.facts_of p2 (Relation.make "E" 2)));
  check_bool "power 1 is identity" true (Instance.equal (Product.power i1 1) i1);
  Alcotest.check_raises "k ≥ 1"
    (Invalid_argument "Product.power: k must be positive") (fun () ->
      ignore (Product.power i1 0))

let test_n_ary () =
  let p = Product.n_ary [ i1; i2; i1 ] in
  check_int "n-ary dom" (2 * 2 * 2) (Instance.dom_size p)

let test_critical_product () =
  (* product of critical instances is critical *)
  let k2 = Critical.make s2 2 and k3 = Critical.make s2 3 in
  check_bool "critical ⊗ critical critical" true
    (Critical.is_critical (Product.direct k2 k3))

let suite =
  [ case "shape" test_shape;
    case "membership characterization" test_membership_characterization;
    case "projections are homs" test_projections_are_homs;
    case "schema mismatch" test_schema_mismatch;
    case "power" test_power;
    case "n-ary" test_n_ary;
    case "critical ⊗ critical" test_critical_product
  ]
