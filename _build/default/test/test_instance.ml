open Tgd_syntax
open Tgd_instance
open Helpers

let s2 = schema [ ("R", 2); ("P", 1) ]

let i0 = inst ~schema:s2 "R(a,b). R(b,c). P(a)."

let test_basic () =
  check_int "fact count" 3 (Instance.fact_count i0);
  check_int "adom" 3 (Constant.Set.cardinal (Instance.adom i0));
  check_int "dom" 3 (Instance.dom_size i0);
  check_bool "mem" true (Instance.mem i0 (Fact.make (Relation.make "R" 2) [ c "a"; c "b" ]));
  check_bool "not mem" false
    (Instance.mem i0 (Fact.make (Relation.make "R" 2) [ c "b"; c "a" ]));
  check_bool "empty is empty" true (Instance.is_empty (Instance.empty s2))

let test_dom_vs_adom () =
  let i = Instance.add_dom i0 (c "zz") in
  check_int "dom grows" 4 (Instance.dom_size i);
  check_int "adom unchanged" 3 (Constant.Set.cardinal (Instance.adom i));
  check_bool "facts unchanged" true (Instance.equal_facts i i0);
  check_bool "instances differ" false (Instance.equal i i0);
  check_bool "active part recovers" true (Instance.equal (Instance.active_part i) i0)

let test_schema_enforced () =
  Alcotest.check_raises "foreign relation"
    (Invalid_argument "Instance: fact Q(a) uses a relation outside the schema")
    (fun () ->
      ignore (Instance.add_fact i0 (Fact.make (Relation.make "Q" 1) [ c "a" ])))

let test_subset_vs_induced () =
  (* J ⊆ I but not J ≤ I: drop R(b,c) while keeping c in I's domain *)
  let j = inst ~schema:s2 "R(a,b). P(a)." in
  check_bool "subset" true (Instance.subset j i0);
  check_bool "not induced (drops a fact over its dom)" false
    (Instance.is_induced_subinstance (Instance.add_dom j (c "c")) i0);
  (* the induced subinstance on {a,b} *)
  let k = Instance.induced i0 (Constant.set_of_list [ c "a"; c "b" ]) in
  check_bool "induced ≤" true (Instance.is_induced_subinstance k i0);
  check_bool "induced = j on {a,b}" true (Instance.equal_facts k j);
  (* ≤ implies ⊆ (paper, Section 2) *)
  check_bool "≤ implies ⊆" true (Instance.subset k i0)

let test_induced_full_dom () =
  let k = Instance.induced i0 (Instance.dom i0) in
  check_bool "induced on dom is identity" true (Instance.equal k i0)

let test_union_intersection () =
  let a = inst ~schema:s2 "R(a,b). P(a)." in
  let b = inst ~schema:s2 "R(a,b). P(b)." in
  let u = Instance.union a b in
  let n = Instance.intersection a b in
  check_int "union facts" 3 (Instance.fact_count u);
  check_int "inter facts" 1 (Instance.fact_count n);
  check_bool "inter dom" true
    (Constant.Set.equal (Instance.dom n)
       (Constant.set_of_list [ c "a"; c "b" ]));
  (* commutativity *)
  check_bool "union comm" true (Instance.equal u (Instance.union b a));
  check_bool "inter comm" true (Instance.equal n (Instance.intersection b a))

let test_difference_active () =
  let k = inst ~schema:s2 "R(a,b)." in
  let l = Instance.difference_active i0 k in
  check_int "difference facts" 2 (Instance.fact_count l);
  check_bool "dom = adom" true
    (Constant.Set.equal (Instance.dom l) (Instance.adom l))

let test_map_constants () =
  let h x = if Constant.equal x (c "a") then c "q" else x in
  let i = Instance.map_constants h i0 in
  check_bool "mapped fact" true
    (Instance.mem i (Fact.make (Relation.make "R" 2) [ c "q"; c "b" ]));
  check_bool "old fact gone" false
    (Instance.mem i (Fact.make (Relation.make "P" 1) [ c "a" ]));
  check_int "same count (injective here)" 3 (Instance.fact_count i)

let test_with_dom () =
  Alcotest.check_raises "must contain adom"
    (Invalid_argument "Instance.with_dom: domain must contain the active domain")
    (fun () -> ignore (Instance.with_dom i0 (Constant.Set.singleton (c "a"))))

let test_disjoint_union () =
  let a = inst ~schema:s2 "R(a,b). P(a)." in
  let b = inst ~schema:s2 "R(b,q). P(b)." in
  let u, rename = Instance.disjoint_union a b in
  check_int "facts add up" 4 (Instance.fact_count u);
  check_int "domains add up"
    (Instance.dom_size a + Instance.dom_size b)
    (Instance.dom_size u);
  (* a's facts are untouched; b's facts appear renamed *)
  check_bool "a preserved" true (Instance.subset a u);
  check_bool "b image present" true
    (Instance.subset (Instance.map_constants rename b) u);
  check_bool "clash renamed" false (Constant.equal (rename (c "b")) (c "b"));
  check_bool "non-clash kept" true (Constant.equal (rename (c "q")) (c "q"))

let test_facts_of () =
  check_int "R facts" 2 (Fact.Set.cardinal (Instance.facts_of i0 (Relation.make "R" 2)));
  check_int "missing relation" 0
    (Fact.Set.cardinal (Instance.facts_of i0 (Relation.make "P" 2)))

let suite =
  [ case "basics" test_basic;
    case "dom vs adom" test_dom_vs_adom;
    case "schema enforced" test_schema_enforced;
    case "⊆ vs ≤" test_subset_vs_induced;
    case "induced on full dom" test_induced_full_dom;
    case "union and intersection" test_union_intersection;
    case "difference (active)" test_difference_active;
    case "map constants" test_map_constants;
    case "with_dom validation" test_with_dom;
    case "disjoint union" test_disjoint_union;
    case "facts_of" test_facts_of
  ]
