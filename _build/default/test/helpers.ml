(* Shared helpers for the test suite. *)

open Tgd_syntax
open Tgd_instance

let tgd = Tgd_parse.Parse.tgd_exn
let tgds = Tgd_parse.Parse.tgds_exn
let inst ?schema src = Tgd_parse.Parse.instance_exn ?schema src

let schema pairs = Schema.of_pairs pairs

let tgd_testable = Alcotest.testable Tgd.pp Tgd.equal
let instance_testable = Alcotest.testable Instance.pp Instance.equal
let fact_testable = Alcotest.testable Fact.pp Fact.equal
let atom_testable = Alcotest.testable Atom.pp Atom.equal

let check_tgd = Alcotest.check tgd_testable
let check_bool = Alcotest.check Alcotest.bool
let check_int = Alcotest.check Alcotest.int

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* Three-valued entailment assertions. *)
let check_answer name expected actual =
  Alcotest.check
    (Alcotest.testable Tgd_chase.Entailment.pp_answer ( = ))
    name expected actual

let c s = Constant.named s
let v s = Variable.make s
