open Tgd_syntax
open Tgd_core
open Helpers

let small_config =
  Rewrite.
    { default_config with
      caps =
        Candidates.
          { max_body_atoms = 2; max_head_atoms = 1; keep_tautologies = false }
    }

let find_class report cls =
  List.find
    (fun cs -> cs.Expressibility.cls = cls)
    report.Expressibility.classes

let semantic_expressible cs =
  match cs.Expressibility.semantic with
  | Some (Rewrite.Rewritable _) -> true
  | _ -> false

let semantic_definitive_no cs =
  match cs.Expressibility.semantic with
  | Some (Rewrite.Not_rewritable { complete; _ }) -> complete
  | _ -> false

let test_guarded_rewritable_diagnosis () =
  let report =
    Expressibility.diagnose ~config:small_config
      (Tgd_workload.Families.guarded_rewritable 1)
  in
  check_int "n" 2 report.Expressibility.n;
  check_int "m" 0 report.Expressibility.m;
  check_bool "wa" true report.Expressibility.weakly_acyclic;
  let lin = find_class report Tgd_class.Linear in
  check_bool "not syntactically linear" false lin.Expressibility.syntactic;
  check_bool "semantically linear" true (semantic_expressible lin);
  let full = find_class report Tgd_class.Full in
  check_bool "syntactically full" true full.Expressibility.syntactic;
  check_bool "property profile all-true" true
    (report.Expressibility.profile.Expressibility.critical
    && report.Expressibility.profile.Expressibility.product_closed)

let test_separation_diagnosis () =
  let sigma, _ = Tgd_workload.Families.separation_linear_vs_guarded in
  (* the unary schema is tiny: heads up to 3 atoms make G-to-L exhaustive,
     so the negative linear verdict is definitive *)
  let config =
    Rewrite.
      { default_config with
        caps =
          Candidates.
            { max_body_atoms = 4; max_head_atoms = 3; keep_tautologies = false }
      }
  in
  let report = Expressibility.diagnose ~config sigma in
  let lin = find_class report Tgd_class.Linear in
  check_bool "definitively not linear" true (semantic_definitive_no lin);
  let g = find_class report Tgd_class.Guarded in
  check_bool "guarded syntactically" true g.Expressibility.syntactic;
  check_bool "guarded semantically" true (semantic_expressible g);
  (* the profile shows the union-closure failure that blocks linearity *)
  check_bool "not ∪-closed" false
    report.Expressibility.profile.Expressibility.union_closed

let test_plain_tgd_diagnosis () =
  (* transitive closure: no rewriting attempted for linear/guarded (not in
     the prerequisite class), full is syntactic *)
  let report =
    Expressibility.diagnose ~config:small_config
      Tgd_workload.Families.transitive_closure
  in
  let lin = find_class report Tgd_class.Linear in
  check_bool "g2l not attempted" true (lin.Expressibility.semantic = None);
  let fg = find_class report Tgd_class.Frontier_guarded in
  check_bool "not syntactically fg" false fg.Expressibility.syntactic;
  let full = find_class report Tgd_class.Full in
  check_bool "full syntactic" true full.Expressibility.syntactic;
  check_bool "full expressible (itself)" true (semantic_expressible full)

let test_report_prints () =
  let report =
    Expressibility.diagnose ~config:small_config
      [ tgd "E(x,y) -> exists z. E(y,z)." ]
  in
  let rendered = Fmt.str "%a" Expressibility.pp_report report in
  check_bool "mentions the class lattice" true
    (String.length rendered > 50)

let suite =
  [ case "guarded_rewritable" test_guarded_rewritable_diagnosis;
    case "separation set" test_separation_diagnosis;
    case "plain tgd (TC)" test_plain_tgd_diagnosis;
    case "report printing" test_report_prints
  ]
