open Tgd_syntax
open Tgd_core
open Helpers

let s_rpt = schema [ ("R", 1); ("P", 1); ("T", 1) ]
let s_e = schema [ ("E", 2) ]

let all_caps =
  Candidates.{ max_body_atoms = 10; max_head_atoms = 10; keep_tautologies = true }

let test_linear_membership () =
  Candidates.linear ~caps:Candidates.default_caps s_e ~n:2 ~m:1
  |> Seq.iter (fun t ->
         check_bool "linear" true (Tgd_class.is_linear t);
         check_bool "n ≤ 2" true (Tgd.n_universal t <= 2);
         check_bool "m ≤ 1" true (Tgd.m_existential t <= 1))

let test_guarded_membership () =
  Candidates.guarded ~caps:Candidates.default_caps s_rpt ~n:2 ~m:1
  |> Seq.iter (fun t ->
         check_bool "guarded" true (Tgd_class.is_guarded t);
         check_bool "n ≤ 2" true (Tgd.n_universal t <= 2);
         check_bool "m ≤ 1" true (Tgd.m_existential t <= 1))

let test_full_membership () =
  Candidates.full ~caps:Candidates.default_caps s_e ~n:2
  |> Seq.iter (fun t -> check_bool "full" true (Tgd_class.is_full t))

let test_frontier_guarded_membership () =
  Candidates.frontier_guarded ~caps:Candidates.default_caps s_e ~n:2 ~m:1
  |> Seq.iter (fun t -> check_bool "fg" true (Tgd_class.is_frontier_guarded t))

let test_no_duplicates_modulo_renaming () =
  let l = List.of_seq (Candidates.linear ~caps:all_caps s_rpt ~n:1 ~m:1) in
  let deduped = Canonical.dedup l in
  check_int "already canonical" (List.length l) (List.length deduped)

let test_exhaustive_small_case () =
  (* unary schema {R,P,T}, n=1, m=0, with tautologies: bodies R(x)/P(x)/T(x),
     heads = non-empty subsets of {R(x),P(x),T(x)} → 3 · 7 = 21 *)
  let l =
    List.of_seq
      (Candidates.linear ~caps:all_caps s_rpt ~n:1 ~m:0)
  in
  check_int "count 21" 21 (List.length l)

let test_tautology_pruning () =
  let with_taut =
    Candidates.count (Candidates.linear ~caps:all_caps s_rpt ~n:1 ~m:0)
  in
  let without =
    Candidates.count
      (Candidates.linear
         ~caps:Candidates.{ all_caps with keep_tautologies = false }
         s_rpt ~n:1 ~m:0)
  in
  (* a candidate is tautological iff every head atom already holds in the
     frozen body — here, exactly head = {body atom}: 3 tautologies pruned *)
  check_int "pruned" (with_taut - 3) without

let test_cover_known_tgds () =
  (* the separation tgd appears among guarded candidates *)
  let sep = tgd "R(x), P(x) -> T(x)." in
  let found =
    Candidates.guarded ~caps:all_caps s_rpt ~n:1 ~m:0
    |> Seq.exists (fun t -> Canonical.equal_up_to_renaming t sep)
  in
  check_bool "covers separation tgd" true found;
  let lin = tgd "E(x,y) -> exists z. E(y,z)." in
  let found_lin =
    Candidates.linear ~caps:all_caps s_e ~n:2 ~m:1
    |> Seq.exists (fun t -> Canonical.equal_up_to_renaming t lin)
  in
  check_bool "covers linear succ" true found_lin

let test_bodiless_candidates () =
  let has_bodiless =
    Candidates.linear ~caps:all_caps s_e ~n:1 ~m:1
    |> Seq.exists (fun t -> Tgd.body t = [])
  in
  check_bool "bodiless present when m ≥ 1" true has_bodiless;
  let none_bodiless =
    Candidates.linear ~caps:all_caps s_e ~n:1 ~m:0
    |> Seq.for_all (fun t -> Tgd.body t <> [])
  in
  check_bool "no bodiless when m = 0" true none_bodiless

let test_growth_string_bodies () =
  (* E/2 with n=2: patterns E(x0,x0) and E(x0,x1): two linear bodies *)
  let bodies =
    Candidates.linear ~caps:all_caps s_e ~n:2 ~m:0
    |> Seq.filter_map (fun t ->
           match Tgd.body t with [ a ] -> Some (Atom.to_string a) | _ -> None)
    |> List.of_seq |> List.sort_uniq compare
  in
  check_int "two body patterns" 2 (List.length bodies)

let test_completeness_flags () =
  check_bool "capped incomplete" false
    (Candidates.linear_complete Candidates.default_caps s_rpt ~n:1 ~m:0);
  check_bool "uncapped complete" true
    (Candidates.linear_complete all_caps s_rpt ~n:1 ~m:0);
  check_bool "guarded needs body cap too" false
    (Candidates.guarded_complete
       Candidates.{ all_caps with max_body_atoms = 2 }
       s_rpt ~n:1 ~m:0);
  check_bool "guarded complete" true
    (Candidates.guarded_complete all_caps s_rpt ~n:1 ~m:0)

let test_head_conjunctions () =
  let heads =
    Candidates.head_conjunctions all_caps s_e [ v "x" ] ~m:1 |> List.of_seq
  in
  (* atoms over {x, z0}: 4; non-empty subsets: 15; minus those where z0
     usage is fine anyway (prefix condition trivial for m=1) *)
  check_int "15 heads" 15 (List.length heads);
  List.iter (fun h -> check_bool "non-empty" true (h <> [])) heads

let suite =
  [ case "linear membership" test_linear_membership;
    case "guarded membership" test_guarded_membership;
    case "full membership" test_full_membership;
    case "frontier-guarded membership" test_frontier_guarded_membership;
    case "no duplicates modulo renaming" test_no_duplicates_modulo_renaming;
    case "exhaustive small case" test_exhaustive_small_case;
    case "tautology pruning" test_tautology_pruning;
    case "covers known tgds" test_cover_known_tgds;
    case "bodiless candidates" test_bodiless_candidates;
    case "growth-string bodies" test_growth_string_bodies;
    case "completeness flags" test_completeness_flags;
    case "head conjunctions" test_head_conjunctions
  ]
