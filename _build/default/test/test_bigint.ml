open Tgd_core
open Helpers

let check_big name expected actual =
  Alcotest.check Alcotest.string name expected (Bigint.to_string actual)

let test_basic () =
  check_big "zero" "0" Bigint.zero;
  check_big "of_int" "123456789012" (Bigint.of_int 123456789012);
  Alcotest.check_raises "negative" (Invalid_argument "Bigint.of_int: negative")
    (fun () -> ignore (Bigint.of_int (-1)))

let test_add () =
  check_big "small" "5" (Bigint.add (Bigint.of_int 2) (Bigint.of_int 3));
  check_big "carry across limbs" "2000000000"
    (Bigint.add (Bigint.of_int 1_000_000_000) (Bigint.of_int 1_000_000_000));
  check_big "zero identity" "42" (Bigint.add Bigint.zero (Bigint.of_int 42))

let test_mul () =
  check_big "small" "6" (Bigint.mul Bigint.two (Bigint.of_int 3));
  check_big "zero" "0" (Bigint.mul Bigint.zero (Bigint.of_int 99));
  check_big "big" "1000000000000000000"
    (Bigint.mul (Bigint.of_int 1_000_000_000) (Bigint.of_int 1_000_000_000));
  (* (10^9+7)^2 = 10^18 + 14*10^9 + 49 *)
  check_big "cross-limb" "1000000014000000049"
    (Bigint.mul (Bigint.of_int 1_000_000_007) (Bigint.of_int 1_000_000_007))

let test_pow () =
  check_big "2^10" "1024" (Bigint.pow Bigint.two 10);
  check_big "2^0" "1" (Bigint.pow Bigint.two 0);
  check_big "2^100" "1267650600228229401496703205376" (Bigint.pow Bigint.two 100);
  check_big "10^30" "1000000000000000000000000000000"
    (Bigint.pow (Bigint.of_int 10) 30)

let test_compare () =
  check_bool "lt" true (Bigint.compare (Bigint.of_int 5) (Bigint.of_int 9) < 0);
  check_bool "eq" true (Bigint.equal (Bigint.pow Bigint.two 64) (Bigint.pow Bigint.two 64));
  check_bool "multi-limb gt" true
    (Bigint.compare (Bigint.pow Bigint.two 70) (Bigint.pow Bigint.two 69) > 0)

let test_to_int_opt () =
  Alcotest.check Alcotest.(option int) "fits" (Some 123) (Bigint.to_int_opt (Bigint.of_int 123));
  Alcotest.check Alcotest.(option int) "overflows" None
    (Bigint.to_int_opt (Bigint.pow Bigint.two 80))

let test_to_float () =
  let f = Bigint.to_float (Bigint.pow Bigint.two 20) in
  check_bool "2^20" true (abs_float (f -. 1048576.0) < 0.5)

let test_digits () =
  check_int "digits of 2^10" 4 (Bigint.digits (Bigint.pow Bigint.two 10));
  check_int "digits of 0" 1 (Bigint.digits Bigint.zero)

let test_add_mul_consistency () =
  (* x * 3 = x + x + x on assorted values *)
  List.iter
    (fun n ->
      let x = Bigint.of_int n in
      Alcotest.check Alcotest.string "x*3 = x+x+x"
        (Bigint.to_string (Bigint.mul x (Bigint.of_int 3)))
        (Bigint.to_string (Bigint.add x (Bigint.add x x))))
    [ 0; 1; 999_999_999; 1_000_000_000; 123_456_789_123_456 ]

let suite =
  [ case "basics" test_basic;
    case "add" test_add;
    case "mul" test_mul;
    case "pow" test_pow;
    case "compare" test_compare;
    case "to_int_opt" test_to_int_opt;
    case "to_float" test_to_float;
    case "digits" test_digits;
    case "add/mul consistency" test_add_mul_consistency
  ]
