open Tgd_syntax
open Tgd_core
open Helpers

let s_rpt = schema [ ("R", 1); ("P", 1); ("T", 1) ]
let s_e = schema [ ("E", 2) ]

let big = Bigint.to_string

let test_linear_bodies_bound () =
  (* |S| · n^ar(S): 3 · 1 = 3 for the unary schema at n = 1 *)
  Alcotest.check Alcotest.string "unary" "3" (big (Counting.linear_bodies_bound s_rpt ~n:1));
  Alcotest.check Alcotest.string "binary" "4" (big (Counting.linear_bodies_bound s_e ~n:2))

let test_heads_bound () =
  (* 2^(|S|·(n+m)^ar): unary schema, n=1, m=0: 2^3 = 8 *)
  Alcotest.check Alcotest.string "unary heads" "8" (big (Counting.heads_bound s_rpt ~n:1 ~m:0));
  Alcotest.check Alcotest.string "binary heads" "16" (big (Counting.heads_bound s_e ~n:1 ~m:1))

let test_bounds_dominate_enumeration () =
  (* the paper's counting formulas really are upper bounds on the
     (canonically deduplicated) enumeration *)
  let caps = Candidates.{ max_body_atoms = 10; max_head_atoms = 10; keep_tautologies = true } in
  let check_schema schema n m =
    (* the paper's bodies × heads product counts tgds with a body atom; our
       enumerator additionally emits bodiless tgds [→ ∃z̄ψ], which the
       printed formula does not cover — exclude them from the comparison *)
    let enumerated =
      Candidates.count
        (Seq.filter
           (fun t -> Tgd.body t <> [])
           (Candidates.linear ~caps schema ~n ~m))
    in
    let bound = Counting.linear_candidates_bound schema ~n ~m in
    check_bool
      (Printf.sprintf "enum %d ≤ bound %s" enumerated (big bound))
      true
      (Bigint.compare (Bigint.of_int enumerated) bound <= 0)
  in
  check_schema s_rpt 1 0;
  check_schema s_rpt 1 1;
  check_schema s_e 1 1;
  check_schema s_e 2 0

let test_guarded_bound_dominates () =
  let caps = Candidates.{ max_body_atoms = 10; max_head_atoms = 10; keep_tautologies = true } in
  let enumerated = Candidates.count (Candidates.guarded ~caps s_rpt ~n:1 ~m:0) in
  let bound = Counting.guarded_candidates_bound s_rpt ~n:1 ~m:0 in
  check_bool "guarded ≤ bound" true
    (Bigint.compare (Bigint.of_int enumerated) bound <= 0)

let test_exact_atom_count () =
  check_int "unary" 3 (Counting.exact_atom_count s_rpt ~vars:1);
  check_int "binary 2 vars" 4 (Counting.exact_atom_count s_e ~vars:2);
  let mixed = schema [ ("R", 2); ("P", 1) ] in
  check_int "mixed" (4 + 2) (Counting.exact_atom_count mixed ~vars:2)

let test_growth_shape () =
  (* double exponential in arity: bounds for ar = 1, 2, 3 explode *)
  let bounds =
    List.map
      (fun ar ->
        Counting.guarded_candidates_bound (schema [ ("R", ar) ]) ~n:3 ~m:1)
      [ 1; 2; 3 ]
  in
  match bounds with
  | [ b1; b2; b3 ] ->
    check_bool "monotone" true (Bigint.compare b1 b2 < 0 && Bigint.compare b2 b3 < 0);
    check_bool "digits explode" true
      (Bigint.digits b3 > 3 * Bigint.digits b2)
  | _ -> assert false

let test_tgd_size_bound () =
  (* ar(S) · |S| · (n+m)^ar(S) *)
  Alcotest.check Alcotest.string "size bound" "18"
    (big (Counting.tgd_size_bound s_e ~n:2 ~m:1))

let suite =
  [ case "linear bodies bound" test_linear_bodies_bound;
    case "heads bound" test_heads_bound;
    case "bound dominates enumeration (linear)" test_bounds_dominate_enumeration;
    case "bound dominates enumeration (guarded)" test_guarded_bound_dominates;
    case "exact atom count" test_exact_atom_count;
    case "double-exponential growth shape" test_growth_shape;
    case "tgd size bound" test_tgd_size_bound
  ]
