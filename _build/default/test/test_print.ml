open Tgd_syntax
open Helpers

let test_tgd_round_trip () =
  List.iter
    (fun src ->
      let t = tgd src in
      let t' = Tgd_parse.Parse.tgd_exn (Tgd_parse.Print.tgd t) in
      check_bool src true (Canonical.equal_up_to_renaming t t'))
    [ "R(x,y), S(y,z) -> exists u. T(x,u).";
      "-> exists z. Start(z).";
      "Q(x) -> Aux." ]

let test_program_round_trip () =
  let src =
    "Emp(x,d) -> Dept(d).\n\
     Emp(x,d), Emp(x,e) -> d = e.\n\
     Dept(d), Banned(d) -> false.\n\
     Emp(ann,cs). Dept(cs)."
  in
  let p = Tgd_parse.Parse.program_exn src in
  let p' = Tgd_parse.Parse.program_exn (Tgd_parse.Print.program p) in
  check_int "tgds" (List.length p.Tgd_parse.Parse.tgds)
    (List.length p'.Tgd_parse.Parse.tgds);
  check_int "egds" (List.length p.Tgd_parse.Parse.egds)
    (List.length p'.Tgd_parse.Parse.egds);
  check_int "denials" (List.length p.Tgd_parse.Parse.denials)
    (List.length p'.Tgd_parse.Parse.denials);
  check_int "facts" (List.length p.Tgd_parse.Parse.facts)
    (List.length p'.Tgd_parse.Parse.facts);
  (* facts literally equal *)
  List.iter2
    (fun a b -> Alcotest.check fact_testable "fact" a b)
    p.Tgd_parse.Parse.facts p'.Tgd_parse.Parse.facts

let test_unprintable_constants () =
  let f = Fact.make (Relation.make "R" 1) [ Constant.null 3 ] in
  match Tgd_parse.Print.fact f with
  | exception Invalid_argument _ -> ()
  | s -> Alcotest.failf "nulls must not print, got %s" s

let test_to_file () =
  let path = Filename.temp_file "tgd" ".dlp" in
  Tgd_parse.Print.to_file path "R(a,b).\n";
  let p = Tgd_parse.Parse.program_exn (In_channel.with_open_bin path In_channel.input_all) in
  Sys.remove path;
  check_int "one fact" 1 (List.length p.Tgd_parse.Parse.facts)

let suite =
  [ case "tgd round trip" test_tgd_round_trip;
    case "program round trip" test_program_round_trip;
    case "unprintable constants rejected" test_unprintable_constants;
    case "to_file" test_to_file
  ]
