open Tgd_syntax
open Tgd_instance

let rng seed = Random.State.make [| seed |]

let random_schema st ~relations ~max_arity =
  Schema.make
    (List.init relations (fun i ->
         Relation.make
           (Printf.sprintf "G%d" i)
           (1 + Random.State.int st max_arity)))

let random_instance st schema ~dom_size ~density =
  let domain = Tgd_core.Enumerate.canonical_domain dom_size in
  let facts =
    Tgd_core.Enumerate.all_facts schema domain
    |> List.filter (fun _ -> Random.State.float st 1.0 < density)
  in
  Instance.of_facts ~dom:domain schema facts

let pick st l = List.nth l (Random.State.int st (List.length l))

let uvar i = Variable.indexed "x" i
let evar i = Variable.indexed "z" i

let random_atom st schema vars =
  let r = pick st (Schema.relations schema) in
  Atom.make r
    (List.init (Relation.arity r) (fun _ -> Term.var (pick st vars)))

(* Retry helper: random shapes occasionally violate tgd well-formedness
   (e.g. a 0-variable draw); sampling again keeps generators total. *)
let rec retry f = match f () with s -> s | exception Invalid_argument _ -> retry f

let vars_of atoms =
  Variable.Set.elements
    (List.fold_left
       (fun acc a -> Variable.Set.union acc (Atom.vars a))
       Variable.Set.empty atoms)

let random_full_tgd st schema ~n ~body_atoms ~head_atoms =
  retry (fun () ->
      let pool = List.init (max 1 n) uvar in
      let body = List.init (max 1 body_atoms) (fun _ -> random_atom st schema pool) in
      let bvars = vars_of body in
      let head = List.init (max 1 head_atoms) (fun _ -> random_atom st schema bvars) in
      Tgd.make ~body ~head)

let random_linear_tgd st schema ~n ~m =
  retry (fun () ->
      let pool = List.init (max 1 n) uvar in
      let body = [ random_atom st schema pool ] in
      let hpool = vars_of body @ List.init m evar in
      let head = [ random_atom st schema (if hpool = [] then pool else hpool) ] in
      Tgd.make ~body ~head)

let random_guarded_tgd st schema ~n ~m ~body_atoms =
  retry (fun () ->
      let pool = List.init (max 1 n) uvar in
      let guard = random_atom st schema pool in
      let gvars = vars_of [ guard ] in
      let side =
        List.init (max 0 (body_atoms - 1)) (fun _ -> random_atom st schema gvars)
      in
      let hpool = gvars @ List.init m evar in
      let head = [ random_atom st schema hpool ] in
      Tgd.make ~body:(guard :: side) ~head)

let random_tgd st schema ~n ~m ~body_atoms ~head_atoms =
  retry (fun () ->
      let pool = List.init (max 1 n) uvar in
      let body = List.init (max 1 body_atoms) (fun _ -> random_atom st schema pool) in
      let hpool = vars_of body @ List.init m evar in
      let head =
        List.init (max 1 head_atoms) (fun _ -> random_atom st schema hpool)
      in
      Tgd.make ~body ~head)

let random_sigma st schema cls ~size =
  List.init size (fun _ ->
      match cls with
      | Tgd_class.Full -> random_full_tgd st schema ~n:3 ~body_atoms:2 ~head_atoms:1
      | Tgd_class.Linear -> random_linear_tgd st schema ~n:2 ~m:1
      | Tgd_class.Guarded -> random_guarded_tgd st schema ~n:2 ~m:1 ~body_atoms:2
      | Tgd_class.Frontier_guarded ->
        (* guarded tgds are frontier-guarded; a dedicated sampler would bias
           towards non-guarded shapes, which random_tgd below also hits *)
        random_guarded_tgd st schema ~n:2 ~m:1 ~body_atoms:2)
