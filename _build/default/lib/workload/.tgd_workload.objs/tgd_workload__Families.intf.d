lib/workload/families.mli: Schema Tgd Tgd_instance Tgd_syntax
