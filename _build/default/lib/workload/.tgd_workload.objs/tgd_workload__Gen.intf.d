lib/workload/gen.mli: Instance Random Schema Tgd Tgd_class Tgd_instance Tgd_syntax
