lib/workload/gen.ml: Atom Instance List Printf Random Relation Schema Term Tgd Tgd_class Tgd_core Tgd_instance Tgd_syntax Variable
