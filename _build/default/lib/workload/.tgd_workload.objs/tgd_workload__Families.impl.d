lib/workload/families.ml: Array Atom Constant Critical Fact Instance List Printf Relation Schema Tgd Tgd_core Tgd_instance Tgd_syntax Variable
