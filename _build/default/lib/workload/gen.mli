(** Seeded random generators for instances and dependencies.

    All functions take an explicit [Random.State.t] so that tests and benches
    are reproducible. *)

open Tgd_syntax
open Tgd_instance

val rng : int -> Random.State.t
(** Seeded state. *)

val random_schema :
  Random.State.t -> relations:int -> max_arity:int -> Schema.t
(** Relations [G0, G1, …] with arities drawn in [1..max_arity]. *)

val random_instance :
  Random.State.t -> Schema.t -> dom_size:int -> density:float -> Instance.t
(** Each possible fact over the canonical domain is included independently
    with probability [density]. *)

val random_full_tgd :
  Random.State.t -> Schema.t -> n:int -> body_atoms:int -> head_atoms:int ->
  Tgd.t
(** A full tgd over at most [n] universal variables whose head variables all
    occur in the body (retries internally until valid). *)

val random_linear_tgd : Random.State.t -> Schema.t -> n:int -> m:int -> Tgd.t
val random_guarded_tgd :
  Random.State.t -> Schema.t -> n:int -> m:int -> body_atoms:int -> Tgd.t
val random_tgd :
  Random.State.t -> Schema.t -> n:int -> m:int -> body_atoms:int ->
  head_atoms:int -> Tgd.t

val random_sigma :
  Random.State.t -> Schema.t -> Tgd_class.cls -> size:int -> Tgd.t list
(** A set of [size] random members of the class (with default shape
    parameters). *)
