(** Direct products of instances (Section 3.2). *)
val direct : Instance.t -> Instance.t -> Instance.t
(** [direct i j] is [I ⊗ J]: domain [dom(I) × dom(J)] (as {!Constant.Pair}
    constants) and
    [R^{I⊗J} = {((a_1,b_1), …) | ā ∈ R^I, b̄ ∈ R^J}].
    Raises [Invalid_argument] when the schemas differ. *)

val power : Instance.t -> int -> Instance.t
(** [power i k] is [I ⊗ ⋯ ⊗ I] ([k] factors, left-associated).
    Raises [Invalid_argument] when [k < 1]. *)

val n_ary : Instance.t list -> Instance.t
(** Left-associated product of a non-empty list (used for
    [J = I_1 ⊗ ⋯ ⊗ I_k] in Step 2 of Theorem 4.1). *)

val project_first : Instance.t -> Instance.t
(** Image of a product instance under [h_I((a,b)) = a] (Lemma 3.4). *)

val project_second : Instance.t -> Instance.t
