(** Duplicating extensions (Section 5.1).

    Two notions are implemented: the original (oblivious) one of Makowsky and
    Vardi [14], which Example 5.2 of the paper refutes as a closure property
    of tgds, and the corrected {e non-oblivious} duplicating extension of
    Definition 5.3 that distinguishes the different occurrences of the
    duplicated constant. *)

open Tgd_syntax

val oblivious : Instance.t -> Constant.t -> Constant.t -> Instance.t
(** [oblivious i c d] is the Makowsky–Vardi duplicating extension of [I]
    witnessed by [c ∈ dom(I)] and fresh [d ∉ dom(I)]:
    [facts(J) = facts(I) ∪ h(facts(I))] with [h] the identity except
    [h(c) = d].  Raises [Invalid_argument] when [c ∉ dom(I)] or
    [d ∈ dom(I)]. *)

val non_oblivious : Instance.t -> Constant.t -> Constant.t -> Instance.t
(** [non_oblivious i c d] is the non-oblivious duplicating extension
    (Definition 5.3): [R(t̄) ∈ J] iff [h(R(t̄)) ∈ I] for
    [t̄ ∈ (dom(I) ∪ {d})^{ar(R)}], [h] the identity except [h(d) = c].
    Equivalently, every fact of [I] is replicated with every subset of its
    [c]-occurrences renamed to [d]. *)

val is_non_oblivious_of : Instance.t -> Instance.t -> bool
(** [is_non_oblivious_of j i] — is [J] a non-oblivious duplicating extension
    of [I] for some witnesses [c, d]? *)

val fresh_for : Instance.t -> Constant.t
(** A constant outside [dom(I)]. *)
