open Tgd_syntax

let head_holds i head body_binding =
  (* Restrict to head-relevant bindings: frontier variables keep their
     values; existential variables are searched. *)
  Hom.exists_hom ~partial:body_binding head i

let violating_hom i s =
  let body = Tgd.body s in
  let head = Tgd.head s in
  Hom.all_homs body i
  |> Seq.filter (fun h ->
         not
           (head_holds i head
              (Binding.restrict (Tgd.frontier s) h)))
  |> fun seq -> (match seq () with Seq.Nil -> None | Seq.Cons (h, _) -> Some h)

let tgd i s = violating_hom i s = None
let tgds i sigma = List.for_all (tgd i) sigma

let egd i e =
  Hom.all_homs (Egd.body e) i
  |> Seq.for_all (fun h ->
         match Binding.find (Egd.lhs e) h, Binding.find (Egd.rhs e) h with
         | Some a, Some b -> Constant.equal a b
         | _ -> false)

let disjunct_holds i body_vars h = function
  | Edd.Eq (y, z) -> (
    match Binding.find y h, Binding.find z h with
    | Some a, Some b -> Constant.equal a b
    | _ -> false)
  | Edd.Exists atoms ->
    (* Variables of the conjunct in the body keep their values; the rest are
       existential. *)
    let partial =
      Binding.restrict body_vars h
    in
    Hom.exists_hom ~partial atoms i

let edd i d =
  let body_vars = Edd.body_vars d in
  Hom.all_homs (Edd.body d) i
  |> Seq.for_all (fun h ->
         List.exists (disjunct_holds i body_vars h) (Edd.disjuncts d))

let dependency i = function
  | Dependency.Tgd s -> tgd i s
  | Dependency.Egd e -> egd i e

let dependencies i deps = List.for_all (dependency i) deps

let boolean_cq i atoms = Hom.exists_hom atoms i

let denial i d = not (Hom.exists_hom (Denial.body d) i)
