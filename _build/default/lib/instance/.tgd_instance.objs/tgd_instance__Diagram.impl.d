lib/instance/diagram.ml: Array Atom Combinat Constant Edd Fact Instance List Printf Relation Satisfaction Schema Seq Term Tgd_syntax Variable
