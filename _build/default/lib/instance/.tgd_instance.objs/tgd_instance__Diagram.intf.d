lib/instance/diagram.mli: Atom Constant Edd Instance Schema Tgd_syntax Variable
