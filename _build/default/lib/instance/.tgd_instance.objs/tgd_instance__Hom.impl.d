lib/instance/hom.ml: Array Atom Binding Constant Fact Hashtbl Instance List Printf Relation Schema Seq Term Tgd_syntax Variable
