lib/instance/retract.mli: Constant Instance Tgd_syntax
