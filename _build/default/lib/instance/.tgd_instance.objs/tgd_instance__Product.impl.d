lib/instance/product.ml: Array Constant Fact Instance List Schema Tgd_syntax
