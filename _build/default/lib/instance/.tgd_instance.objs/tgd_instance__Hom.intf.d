lib/instance/hom.mli: Atom Binding Constant Fact Instance Seq Tgd_syntax
