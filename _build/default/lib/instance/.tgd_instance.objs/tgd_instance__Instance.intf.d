lib/instance/instance.mli: Constant Fact Fmt Relation Schema Tgd_syntax
