lib/instance/critical.mli: Constant Fact Instance Schema Tgd_syntax
