lib/instance/duplicating.ml: Array Combinat Constant Fact Instance List Seq Tgd_syntax
