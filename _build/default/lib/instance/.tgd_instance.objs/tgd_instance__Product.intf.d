lib/instance/product.mli: Instance
