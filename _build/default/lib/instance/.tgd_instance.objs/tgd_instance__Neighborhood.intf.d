lib/instance/neighborhood.mli: Constant Instance Seq Tgd_syntax
