lib/instance/satisfaction.ml: Binding Constant Denial Dependency Edd Egd Hom List Seq Tgd Tgd_syntax
