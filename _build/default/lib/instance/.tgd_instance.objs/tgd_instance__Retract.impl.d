lib/instance/retract.ml: Constant Hom Instance Seq Tgd_syntax
