lib/instance/instance.ml: Constant Fact Fmt List Printf Relation Schema Tgd_syntax
