lib/instance/critical.ml: Combinat Constant Fact Instance List Relation Schema Seq Tgd_syntax
