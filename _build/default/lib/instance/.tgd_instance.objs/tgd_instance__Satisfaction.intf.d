lib/instance/satisfaction.mli: Atom Binding Denial Dependency Edd Egd Instance Tgd Tgd_syntax
