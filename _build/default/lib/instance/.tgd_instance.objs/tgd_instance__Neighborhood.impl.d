lib/instance/neighborhood.ml: Combinat Constant Instance Seq Tgd_syntax
