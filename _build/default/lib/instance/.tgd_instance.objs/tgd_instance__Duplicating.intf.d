lib/instance/duplicating.mli: Constant Instance Tgd_syntax
