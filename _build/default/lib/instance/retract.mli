(** Cores of instances.

    The {e core} of a finite instance is its smallest retract — the unique
    (up to isomorphism) minimal subinstance it maps into homomorphically.
    Cores are the canonical representatives of homomorphic-equivalence
    classes and the minimal universal models of data exchange; the chase
    result of {!Tgd_chase.Chase} can be minimized with {!core} to obtain the
    core universal model. *)

open Tgd_syntax

val shrink_step : Instance.t -> Instance.t option
(** One retraction step: [Some h(I)] for an endomorphism [h] with strictly
    fewer facts in the image, [None] if every endomorphism is surjective. *)

val core : Instance.t -> Instance.t
(** The core (domain shrunk to the active domain of the retract).
    Exponential-time in the worst case, as unavoidable. *)

val is_core : Instance.t -> bool

val core_preserving : Constant.Set.t -> Instance.t -> Instance.t
(** Core relative to a set of rigid constants that the retraction must fix
    pointwise — e.g. the database constants when minimizing a chase result
    (nulls may collapse, database constants may not). *)
