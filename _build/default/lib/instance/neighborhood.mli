(** m-neighbourhoods (Section 3.3).

    The [m]-neighbourhood of a set of constants [F] in an instance [J] is the
    set of subinstances [J' ≤ J] with [F ⊆ adom(J')] and
    [|adom(J')| ≤ |F| + m].  The [m]-neighbourhood of an instance [K ⊆ J] is
    the [m]-neighbourhood of [adom(K)] in [J].

    Members are enumerated up to fact-equivalence: every member is produced
    as the subinstance of [J] induced by [F ∪ E] for a set [E] of at most [m]
    further active-domain elements.  Since the local-embeddability conditions
    only inspect facts and active domains, this enumeration is complete. *)

open Tgd_syntax

val of_set : Constant.Set.t -> Instance.t -> int -> Instance.t Seq.t
(** [of_set f j m] — the [m]-neighbourhood of [F] in [J].  Members whose
    active domain fails to include all of [F] are skipped, per the
    definition. *)

val of_instance : Instance.t -> Instance.t -> int -> Instance.t Seq.t
(** [of_instance k j m] — the [m]-neighbourhood of [K] in [J]
    ([= of_set (adom k) j m]). *)

val size_bound : Constant.Set.t -> Instance.t -> int -> int
(** Number of candidate extension sets [E] that will be tried —
    [Σ_{e ≤ m} (|adom(J) \ F| choose e)]; callers can use it to refuse
    infeasible checks. *)
