open Tgd_syntax

let direct i j =
  if not (Schema.equal (Instance.schema i) (Instance.schema j)) then
    invalid_arg "Product.direct: instances over different schemas";
  let schema = Instance.schema i in
  let base = Instance.empty schema in
  let with_dom =
    Constant.Set.fold
      (fun a acc ->
        Constant.Set.fold
          (fun b acc -> Instance.add_dom acc (Constant.pair a b))
          (Instance.dom j) acc)
      (Instance.dom i) base
  in
  List.fold_left
    (fun acc r ->
      let tuples_i = Instance.tuples_of i r in
      let tuples_j = Instance.tuples_of j r in
      List.fold_left
        (fun acc ta ->
          List.fold_left
            (fun acc tb ->
              let tuple = Array.map2 Constant.pair ta tb in
              Instance.add_fact acc (Fact.make_arr r tuple))
            acc tuples_j)
        acc tuples_i)
    with_dom (Schema.relations schema)

let power i k =
  if k < 1 then invalid_arg "Product.power: k must be positive";
  let rec go acc k = if k = 0 then acc else go (direct acc i) (k - 1) in
  go i (k - 1)

let n_ary = function
  | [] -> invalid_arg "Product.n_ary: empty list"
  | i :: rest -> List.fold_left direct i rest

let project_first i = Instance.map_constants Constant.first i
let project_second i = Instance.map_constants Constant.second i
