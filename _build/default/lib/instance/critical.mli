(** Critical instances (Section 3.1). *)

open Tgd_syntax

val make : Schema.t -> int -> Instance.t
(** [make s k] is the canonical [k]-critical S-instance: domain
    [{c_0, …, c_{k-1}}] (as {!Constant.Indexed}) and
    [R^I = dom(I)^{ar(R)}] for every [R ∈ S].
    Raises [Invalid_argument] when [k ≤ 0]. *)

val over : Schema.t -> Constant.t list -> Instance.t
(** Critical instance over the given (non-empty, duplicate-free) domain. *)

val is_critical : Instance.t -> bool
(** Does the instance contain {e all} tuples over its domain, for every
    relation of its schema, with a non-empty domain? *)

val containing : Schema.t -> Fact.t list -> Instance.t
(** The smallest critical instance whose facts include the given ones — the
    [k]-critical [J ⊇ h(φ(x̄))] used in Step 3 of Theorem 4.1. *)
