open Tgd_syntax

let star_var i = Variable.make (Printf.sprintf "*%d" i)
let const_var c = Variable.make ("x_" ^ Constant.to_string c)

let atomic_formulas schema consts l =
  let terms =
    List.map Term.const (Constant.Set.elements consts)
    @ List.init l (fun i -> Term.var (star_var (i + 1)))
  in
  List.concat_map
    (fun r ->
      Combinat.tuples terms (Relation.arity r)
      |> Seq.map (fun args -> Atom.make r args)
      |> List.of_seq)
    (Schema.relations schema)

type conjunct_filter = { max_atoms : int option }

let default_filter = { max_atoms = Some 2 }

let conjunctions filter atoms =
  match filter.max_atoms with
  | None -> Combinat.nonempty_sublists atoms
  | Some k -> Seq.filter (fun s -> s <> []) (Combinat.subsets_up_to k atoms)

(* A conjunction only matters up to renaming of its star variables; we do not
   canonicalize (harmless duplicates), but we do require that star variables
   are "anchored": a conjunct using star i without star i-1 is a renaming
   duplicate of one using lower indexes.  We keep all — correctness first. *)

let violated_conjuncts ?(filter = default_filter) i consts l =
  let atoms = atomic_formulas (Instance.schema i) consts l in
  conjunctions filter atoms
  |> Seq.filter (fun gamma -> not (Satisfaction.boolean_cq i gamma))
  |> List.of_seq

let rename_constants_to_vars atom =
  Atom.make_arr (Atom.rel atom)
    (Array.map
       (fun t ->
         match t with
         | Term.Const c -> Term.var (const_var c)
         | Term.Var _ -> t)
       (Atom.args_arr atom))

let claim_4_6_edd ?(filter = default_filter) ~k ~i ~m () =
  (* The paper assumes dom(K) = adom(K) (via domain independence); we take
     the active domain so that every x_c occurs in the edd body, as required
     by item (ii) of Claim 4.6. *)
  let consts = Instance.adom k in
  let body =
    List.map (fun f -> rename_constants_to_vars (Fact.to_atom f))
      (Instance.fact_list k)
  in
  let eq_disjuncts =
    let cs = Constant.Set.elements consts in
    List.concat_map
      (fun c ->
        List.filter_map
          (fun d ->
            if Constant.compare c d < 0 then
              Some (Edd.Eq (const_var c, const_var d))
            else None)
          cs)
      cs
  in
  let exists_disjuncts =
    violated_conjuncts ~filter i consts m
    |> List.map (fun gamma ->
           Edd.Exists (List.map rename_constants_to_vars gamma))
  in
  match eq_disjuncts @ exists_disjuncts with
  | [] -> None
  | disjuncts -> Some (Edd.make ~body ~disjuncts)

let satisfies_existential_diagram j delta = not (Satisfaction.edd j delta)

let lemma_4_3_holds ?filter ~k ~i ~m () =
  match claim_4_6_edd ?filter ~k ~i ~m () with
  | None -> true (* Φ has no negative conjunct and K's facts sit in I *)
  | Some delta -> satisfies_existential_diagram i delta
