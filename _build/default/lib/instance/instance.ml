open Tgd_syntax

type t = {
  schema : Schema.t;
  dom : Constant.Set.t;
  by_rel : Fact.Set.t Relation.Map.t;
}

let empty schema = { schema; dom = Constant.Set.empty; by_rel = Relation.Map.empty }

let check_fact schema f =
  if not (Schema.mem schema (Fact.rel f)) then
    invalid_arg
      (Printf.sprintf "Instance: fact %s uses a relation outside the schema"
         (Fact.to_string f))

let add_fact i f =
  check_fact i.schema f;
  { i with
    dom = Constant.Set.union i.dom (Fact.constants f);
    by_rel =
      Relation.Map.update (Fact.rel f)
        (function
          | None -> Some (Fact.Set.singleton f)
          | Some s -> Some (Fact.Set.add f s))
        i.by_rel
  }

let add_dom i c = { i with dom = Constant.Set.add c i.dom }

let of_facts ?(dom = []) schema fact_list =
  let i = List.fold_left add_fact (empty schema) fact_list in
  { i with dom = Constant.Set.union i.dom (Constant.set_of_list dom) }

let schema i = i.schema
let dom i = i.dom

let facts i =
  Relation.Map.fold (fun _ s acc -> Fact.Set.union s acc) i.by_rel Fact.Set.empty

let fact_list i = Fact.Set.elements (facts i)

let adom i =
  Relation.Map.fold
    (fun _ s acc ->
      Fact.Set.fold (fun f a -> Constant.Set.union (Fact.constants f) a) s acc)
    i.by_rel Constant.Set.empty

let facts_of i r =
  match Relation.Map.find_opt r i.by_rel with
  | Some s -> s
  | None -> Fact.Set.empty

let tuples_of i r = Fact.Set.fold (fun f acc -> Fact.tuple_arr f :: acc) (facts_of i r) []

let mem i f = Fact.Set.mem f (facts_of i (Fact.rel f))
let fact_count i = Relation.Map.fold (fun _ s acc -> acc + Fact.Set.cardinal s) i.by_rel 0
let dom_size i = Constant.Set.cardinal i.dom
let is_empty i = fact_count i = 0

let subset j i =
  Relation.Map.for_all (fun r s -> Fact.Set.subset s (facts_of i r)) j.by_rel

let equal_facts i j = subset i j && subset j i
let equal i j = equal_facts i j && Constant.Set.equal i.dom j.dom

let induced i d =
  let d = Constant.Set.inter d i.dom in
  let keep f = Constant.Set.subset (Fact.constants f) d in
  { i with
    dom = d;
    by_rel = Relation.Map.map (fun s -> Fact.Set.filter keep s) i.by_rel
  }

let is_induced_subinstance j i =
  Constant.Set.subset j.dom i.dom
  && equal_facts j (induced i j.dom)

let union i j =
  let schema = Schema.union i.schema j.schema in
  let by_rel =
    Relation.Map.union (fun _ a b -> Some (Fact.Set.union a b)) i.by_rel j.by_rel
  in
  { schema; dom = Constant.Set.union i.dom j.dom; by_rel }

let intersection i j =
  let schema = Schema.union i.schema j.schema in
  let by_rel =
    Relation.Map.merge
      (fun _ a b ->
        match a, b with
        | Some a, Some b -> Some (Fact.Set.inter a b)
        | _ -> None)
      i.by_rel j.by_rel
  in
  { schema; dom = Constant.Set.inter i.dom j.dom; by_rel }

let difference_active j' k =
  let by_rel =
    Relation.Map.map
      (fun s -> Fact.Set.filter (fun f -> not (mem k f)) s)
      j'.by_rel
  in
  let i = { j' with by_rel } in
  { i with dom = adom i }

let map_constants h i =
  let by_rel = Relation.Map.map (fun s -> Fact.Set.map (Fact.map h) s) i.by_rel in
  { i with dom = Constant.Set.map h i.dom; by_rel }

let with_dom i d =
  if not (Constant.Set.subset (adom i) d) then
    invalid_arg "Instance.with_dom: domain must contain the active domain";
  { i with dom = d }

let shrink_dom_to_adom i = { i with dom = adom i }
let active_part = shrink_dom_to_adom

let pp ppf i =
  let extra = Constant.Set.diff i.dom (adom i) in
  if Constant.Set.is_empty extra then
    Fmt.pf ppf "%a" Fact.Set.pp (facts i)
  else
    Fmt.pf ppf "%a (dom also: %a)" Fact.Set.pp (facts i)
      Fmt.(list ~sep:(any ", ") Constant.pp)
      (Constant.Set.elements extra)

let to_string i = Fmt.str "%a" pp i

let compare i j =
  let c = Fact.Set.compare (facts i) (facts j) in
  if c <> 0 then c else Constant.Set.compare i.dom j.dom

let disjoint_union i j =
  let clash = Constant.Set.inter (dom i) (dom j) in
  let fresh_counter = ref 5000 in
  let fresh_for_both () =
    let rec go () =
      incr fresh_counter;
      let c = Constant.indexed !fresh_counter in
      if Constant.Set.mem c (dom i) || Constant.Set.mem c (dom j) then go ()
      else c
    in
    go ()
  in
  let renaming =
    Constant.Set.fold
      (fun c acc -> Constant.Map.add c (fresh_for_both ()) acc)
      clash Constant.Map.empty
  in
  let rename c =
    match Constant.Map.find_opt c renaming with Some d -> d | None -> c
  in
  (union i (map_constants rename j), rename)
