open Tgd_syntax

let over schema domain =
  let domain = List.sort_uniq Constant.compare domain in
  if domain = [] then invalid_arg "Critical.over: empty domain";
  let base =
    List.fold_left Instance.add_dom (Instance.empty schema) domain
  in
  List.fold_left
    (fun acc r ->
      Seq.fold_left
        (fun acc tuple -> Instance.add_fact acc (Fact.make r tuple))
        acc
        (Combinat.tuples domain (Relation.arity r)))
    base (Schema.relations schema)

let make schema k =
  if k <= 0 then invalid_arg "Critical.make: k must be positive";
  over schema (List.init k Constant.indexed)

let is_critical i =
  let d = Constant.Set.elements (Instance.dom i) in
  d <> []
  && List.for_all
       (fun r ->
         Seq.for_all
           (fun tuple -> Instance.mem i (Fact.make r tuple))
           (Combinat.tuples d (Relation.arity r)))
       (Schema.relations (Instance.schema i))

let containing schema facts =
  let dom =
    List.fold_left
      (fun acc f -> Constant.Set.union acc (Fact.constants f))
      Constant.Set.empty facts
  in
  let dom =
    if Constant.Set.is_empty dom then Constant.Set.singleton (Constant.indexed 0)
    else dom
  in
  over schema (Constant.Set.elements dom)
