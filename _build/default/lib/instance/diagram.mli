(** Relative diagrams (Section 4.1).

    For [K ≤ I] and [ℓ ≥ 0], the [ℓ]-diagram [Δ^I_{K,ℓ}] is the conjunction
    of (i) the facts of [K], (ii) inequalities between the distinct constants
    of [dom(K)], and (iii) the negations [¬∃ȳ γ(ȳ)] of all the
    existentially-quantified conjunctions over [dom(K) ∪ {⋆_1,…,⋆_ℓ}] that
    {e fail} in [I].  The formula [Φ^I_{K,ℓ}(x̄)] renames each constant [c]
    to a variable [x_c]; Claim 4.6 turns [¬∃x̄ Φ^I_{K,ℓ}(x̄)] into an edd of
    [E_{n,m}].  We materialize that edd directly. *)

open Tgd_syntax

val atomic_formulas : Schema.t -> Constant.Set.t -> int -> Atom.t list
(** [A_{K,ℓ}]: all atoms over the schema with arguments from the given
    constants and [ℓ] distinguished variables [⋆_1 … ⋆_ℓ]. *)

val star_var : int -> Variable.t
(** The variable [⋆_i] (1-based). *)

val const_var : Constant.t -> Variable.t
(** The variable [x_c] replacing the constant [c]. *)

type conjunct_filter = {
  max_atoms : int option;
      (** Cap on the size of enumerated conjunctions [γ]; [None] = all
          (exponential in [|A_{K,ℓ}|]). *)
}

val default_filter : conjunct_filter

val violated_conjuncts :
  ?filter:conjunct_filter ->
  Instance.t ->
  Constant.Set.t ->
  int ->
  Atom.t list list
(** The conjunctions [γ(ȳ) ∈ C_{K,ℓ}] (over the given constants) with
    [I ⊭ ∃ȳ γ(ȳ)].  Atoms still carry the constants of [dom(K)]. *)

val claim_4_6_edd :
  ?filter:conjunct_filter -> k:Instance.t -> i:Instance.t -> m:int -> unit ->
  Edd.t option
(** The edd [δ ≡ ¬∃x̄ Φ^I_{K,m}(x̄)] of Claim 4.6 (constants renamed to
    variables; equalities between the [x_c]; one existential disjunct per
    violated conjunction).  [None] when the head would be empty, i.e. when
    [Φ] has no negative conjunct — which by the paper's argument cannot
    happen under the assumptions of Claim 4.5. *)

val satisfies_existential_diagram : Instance.t -> Edd.t -> bool
(** [J ⊨ ∃x̄ Φ^I_{K,m}(x̄)], given the Claim 4.6 edd for [Φ]: equivalent to
    [J ⊭ δ]. *)

val lemma_4_3_holds :
  ?filter:conjunct_filter -> k:Instance.t -> i:Instance.t -> m:int -> unit ->
  bool
(** Lemma 4.3: [I ⊨ ∃x̄ Φ^I_{K,m}(x̄)] whenever [K ≤ I]. *)
