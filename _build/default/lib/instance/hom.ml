open Tgd_syntax

let match_atom binding atom fact =
  let args = Atom.args_arr atom in
  let tup = Fact.tuple_arr fact in
  let n = Array.length args in
  let rec go i b =
    if i = n then Some b
    else
      match args.(i) with
      | Term.Const c ->
        if Constant.equal c tup.(i) then go (i + 1) b else None
      | Term.Var v -> (
        match Binding.extend v tup.(i) b with
        | Some b' -> go (i + 1) b'
        | None -> None)
  in
  go 0 binding

(* Greedy atom ordering: prefer atoms with many already-bound variables and
   few candidate facts; dramatically narrows the backtracking tree. *)
let order_atoms partial atoms inst =
  let arr = Array.of_list atoms in
  let used = Array.make (Array.length arr) false in
  let bound = ref (Binding.domain partial) in
  let out = ref [] in
  for _ = 1 to Array.length arr do
    let score a =
      let vs = Atom.vars a in
      let bound_vars = Variable.Set.cardinal (Variable.Set.inter vs !bound) in
      let candidates = Fact.Set.cardinal (Instance.facts_of inst (Atom.rel a)) in
      (bound_vars, -candidates)
    in
    let best = ref (-1) in
    Array.iteri
      (fun idx a ->
        if not used.(idx) then
          if !best < 0 || score a > score arr.(!best) then best := idx)
      arr;
    if !best >= 0 then begin
      used.(!best) <- true;
      out := arr.(!best) :: !out;
      bound := Variable.Set.union !bound (Atom.vars arr.(!best))
    end
  done;
  List.rev !out

let rec solve inst binding = function
  | [] -> Seq.return binding
  | atom :: rest ->
    Fact.Set.to_seq (Instance.facts_of inst (Atom.rel atom))
    |> Seq.filter_map (fun f -> match_atom binding atom f)
    |> Seq.concat_map (fun b -> solve inst b rest)

let all_homs ?(partial = Binding.empty) atoms inst =
  solve inst partial (order_atoms partial atoms inst)

let find_hom ?partial atoms inst =
  match (all_homs ?partial atoms inst) () with
  | Seq.Nil -> None
  | Seq.Cons (b, _) -> Some b

let exists_hom ?partial atoms inst = find_hom ?partial atoms inst <> None

(* Instance homomorphisms: encode adom(from) constants as variables and reuse
   the query engine. *)

let var_of_const =
  let tbl : (Constant.t, Variable.t) Hashtbl.t = Hashtbl.create 64 in
  fun c ->
    match Hashtbl.find_opt tbl c with
    | Some v -> v
    | None ->
      let v = Variable.make (Printf.sprintf "!c%d" (Hashtbl.length tbl)) in
      Hashtbl.add tbl c v;
      v

let encode_instance fixed from =
  let atom_of_fact f =
    Atom.make_arr (Fact.rel f)
      (Array.map
         (fun c ->
           match Constant.Map.find_opt c fixed with
           | Some d -> Term.const d
           | None -> Term.var (var_of_const c))
         (Fact.tuple_arr f))
  in
  List.map atom_of_fact (Instance.fact_list from)

let decode fixed from binding =
  Constant.Set.fold
    (fun c acc ->
      match Constant.Map.find_opt c fixed with
      | Some d -> Constant.Map.add c d acc
      | None -> (
        match Binding.find (var_of_const c) binding with
        | Some d -> Constant.Map.add c d acc
        | None -> acc))
    (Instance.adom from) Constant.Map.empty

let map_injective m =
  let seen = Hashtbl.create 16 in
  Constant.Map.for_all
    (fun _ d ->
      if Hashtbl.mem seen d then false
      else (
        Hashtbl.add seen d ();
        true))
    m

let instance_homs ?(fixed = Constant.Map.empty) ?(injective = false) from into =
  let atoms = encode_instance fixed from in
  all_homs atoms into
  |> Seq.map (decode fixed from)
  |> Seq.filter (fun m -> (not injective) || map_injective m)

let find_instance_hom ?fixed ?injective from into =
  match (instance_homs ?fixed ?injective from into) () with
  | Seq.Nil -> None
  | Seq.Cons (m, _) -> Some m

let embeds_fixing f j' i =
  let fixed =
    Constant.Set.fold
      (fun c acc -> Constant.Map.add c c acc)
      (Constant.Set.inter f (Instance.adom j'))
      Constant.Map.empty
  in
  find_instance_hom ~fixed j' i <> None

let isomorphic i j =
  Constant.Set.cardinal (Instance.dom i) = Constant.Set.cardinal (Instance.dom j)
  && Instance.fact_count i = Instance.fact_count j
  && List.sort_uniq Relation.compare
       (Schema.relations (Instance.schema i)
       @ Schema.relations (Instance.schema j))
     |> List.for_all (fun r ->
            Fact.Set.cardinal (Instance.facts_of i r)
            = Fact.Set.cardinal (Instance.facts_of j r))
  && find_instance_hom ~injective:true i j <> None

let hom_equivalent i j =
  find_instance_hom i j <> None && find_instance_hom j i <> None
