open Tgd_syntax

let of_set f j m =
  let rest =
    Constant.Set.elements (Constant.Set.diff (Instance.adom j) f)
  in
  Combinat.subsets_up_to m rest
  |> Seq.filter_map (fun extra ->
         let d = Constant.Set.union f (Constant.set_of_list extra) in
         let j' = Instance.induced j d in
         if Constant.Set.subset f (Instance.adom j') then Some j' else None)

let of_instance k j m = of_set (Instance.adom k) j m

let size_bound f j m =
  let n = Constant.Set.cardinal (Constant.Set.diff (Instance.adom j) f) in
  let rec choose n k =
    if k = 0 then 1
    else if k > n then 0
    else choose (n - 1) (k - 1) * n / k
  in
  let rec sum e acc = if e > m then acc else sum (e + 1) (acc + choose n e) in
  sum 0 0
