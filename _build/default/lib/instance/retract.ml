open Tgd_syntax

let image_of_endo i h =
  let apply c =
    match Constant.Map.find_opt c h with Some d -> d | None -> c
  in
  Instance.shrink_dom_to_adom (Instance.map_constants apply i)

let shrink_with ~fixed i =
  Hom.instance_homs ~fixed i i
  |> Seq.filter_map (fun h ->
         let image = image_of_endo i h in
         if Instance.fact_count image < Instance.fact_count i then Some image
         else None)
  |> fun seq -> (match seq () with Seq.Nil -> None | Seq.Cons (j, _) -> Some j)

let shrink_step i = shrink_with ~fixed:Constant.Map.empty i

let core_preserving rigid i =
  let fixed =
    Constant.Set.fold
      (fun c acc -> Constant.Map.add c c acc)
      (Constant.Set.inter rigid (Instance.adom i))
      Constant.Map.empty
  in
  let rec go i =
    match shrink_with ~fixed i with
    | Some j -> go j
    | None -> i
  in
  go (Instance.shrink_dom_to_adom i)

let core i = core_preserving Constant.Set.empty i
let is_core i = shrink_step i = None
