(** Satisfaction of dependencies by instances (Section 2 and Section 4.1). *)

open Tgd_syntax

val tgd : Instance.t -> Tgd.t -> bool
(** [I ⊨ σ]: every homomorphism of the body extends to a homomorphism of the
    head. *)

val tgds : Instance.t -> Tgd.t list -> bool
(** [I ⊨ Σ]. *)

val egd : Instance.t -> Egd.t -> bool
val edd : Instance.t -> Edd.t -> bool
val dependency : Instance.t -> Dependency.t -> bool
val dependencies : Instance.t -> Dependency.t list -> bool

val violating_hom : Instance.t -> Tgd.t -> Binding.t option
(** A body homomorphism witnessing [I ⊭ σ], if one exists. *)

val boolean_cq : Instance.t -> Atom.t list -> bool
(** [I ⊨ ∃x̄ φ(x̄)] — satisfaction of a Boolean conjunctive query, where
    constants in the atoms must match exactly. *)

val denial : Instance.t -> Denial.t -> bool
(** [I ⊨ δ] for a denial constraint: no homomorphism of the body exists. *)
