open Tgd_syntax

let check i c d =
  if not (Constant.Set.mem c (Instance.dom i)) then
    invalid_arg "Duplicating: witness constant not in the domain";
  if Constant.Set.mem d (Instance.dom i) then
    invalid_arg "Duplicating: fresh constant already in the domain"

let oblivious i c d =
  check i c d;
  let h x = if Constant.equal x c then d else x in
  let copy = Instance.map_constants h i in
  Instance.add_dom (Instance.union i copy) d

(* All variants of a tuple where an arbitrary subset of the [c]-positions is
   renamed to [d]. *)
let tuple_variants c d tuple =
  let positions =
    Array.to_list tuple
    |> List.mapi (fun idx x -> (idx, x))
    |> List.filter_map (fun (idx, x) ->
           if Constant.equal x c then Some idx else None)
  in
  Combinat.subsets positions
  |> Seq.map (fun chosen ->
         let t = Array.copy tuple in
         List.iter (fun idx -> t.(idx) <- d) chosen;
         t)

let non_oblivious i c d =
  check i c d;
  let base =
    Constant.Set.fold
      (fun x acc -> Instance.add_dom acc x)
      (Instance.dom i)
      (Instance.add_dom (Instance.empty (Instance.schema i)) d)
  in
  Fact.Set.fold
    (fun f acc ->
      Seq.fold_left
        (fun acc t -> Instance.add_fact acc (Fact.make_arr (Fact.rel f) t))
        acc
        (tuple_variants c d (Fact.tuple_arr f)))
    (Instance.facts i) base

let is_non_oblivious_of j i =
  let extra = Constant.Set.diff (Instance.dom j) (Instance.dom i) in
  match Constant.Set.elements extra with
  | [ d ] ->
    Constant.Set.exists
      (fun c -> Instance.equal (non_oblivious i c d) j)
      (Instance.dom i)
  | _ -> false

let fresh_for i =
  let rec go k =
    let c = Constant.indexed k in
    if Constant.Set.mem c (Instance.dom i) then go (k + 1) else c
  in
  go 1000
