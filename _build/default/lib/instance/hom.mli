(** Homomorphism search.

    Two flavours are needed throughout the paper:

    - {e query homomorphisms}: functions [h] from the variables of a
      conjunction of atoms into an instance with [h(φ) ⊆ facts(I)] — used by
      satisfaction, triggers, diagrams and certain answers;
    - {e instance homomorphisms}: functions [h : dom(I) → dom(J)] with
      [h(facts(I)) ⊆ facts(J)] — used by local embeddability (where [h] must
      moreover be the identity on a given set) and isomorphism.

    The search is backtracking over the per-relation fact indexes with a
    bound-variables-first atom ordering. *)

open Tgd_syntax

val match_atom : Binding.t -> Atom.t -> Fact.t -> Binding.t option
(** Extend a binding so that the atom grounds to exactly the given fact;
    [None] on mismatch.  The unification kernel, exposed for engines that
    drive their own fact iteration (e.g. semi-naive evaluation). *)

val all_homs :
  ?partial:Binding.t -> Atom.t list -> Instance.t -> Binding.t Seq.t
(** All extensions of [partial] mapping every variable of the atoms such that
    each atom grounds to a fact of the instance.  Constants in atoms must
    match facts exactly.  Lazy; solutions may repeat bindings for variables
    already fixed by [partial]. *)

val find_hom : ?partial:Binding.t -> Atom.t list -> Instance.t -> Binding.t option
val exists_hom : ?partial:Binding.t -> Atom.t list -> Instance.t -> bool

val instance_homs :
  ?fixed:Constant.t Constant.Map.t ->
  ?injective:bool ->
  Instance.t ->
  Instance.t ->
  Constant.t Constant.Map.t Seq.t
(** [instance_homs ~fixed from into] — all maps [h] defined on [adom(from)]
    (extending [fixed]) with [h(facts(from)) ⊆ facts(into)].  With
    [~injective:true] only 1-1 maps are produced. *)

val find_instance_hom :
  ?fixed:Constant.t Constant.Map.t ->
  ?injective:bool ->
  Instance.t ->
  Instance.t ->
  Constant.t Constant.Map.t option

val embeds_fixing : Constant.Set.t -> Instance.t -> Instance.t -> bool
(** [embeds_fixing f j' i] — is there [h : adom(J') → adom(I)], identity on
    [f], with [h(facts(J')) ⊆ facts(I)]?  The embedding condition of the
    local-embeddability definitions (Section 3.3, 6.1, 7.1, 8.1). *)

val isomorphic : Instance.t -> Instance.t -> bool
(** [I ≃ J]: a bijective homomorphism [dom(I) → dom(J)] whose inverse is a
    homomorphism. *)

val hom_equivalent : Instance.t -> Instance.t -> bool
(** Homomorphic equivalence (maps both ways, not necessarily bijective). *)
