(** Relational instances over a schema (Section 2).

    An instance is a (finite, in this implementation) domain [dom(I) ⊆ C]
    together with a relation [R^I ⊆ dom(I)^{ar(R)}] for every symbol of the
    schema.  The domain may strictly contain the active domain — this
    distinction matters for domain independence (Definition 3.7). *)

open Tgd_syntax

type t

val empty : Schema.t -> t
(** The empty instance: no facts, empty domain. *)

val of_facts : ?dom:Constant.t list -> Schema.t -> Fact.t list -> t
(** Instance whose facts are the given ones and whose domain is the active
    domain extended with [dom].  Raises [Invalid_argument] if a fact uses a
    relation outside the schema. *)

val add_fact : t -> Fact.t -> t
val add_dom : t -> Constant.t -> t

val schema : t -> Schema.t
val dom : t -> Constant.Set.t
val adom : t -> Constant.Set.t
(** Active domain: constants occurring in at least one fact. *)

val facts : t -> Fact.Set.t
val fact_list : t -> Fact.t list
val facts_of : t -> Relation.t -> Fact.Set.t
val tuples_of : t -> Relation.t -> Constant.t array list

val mem : t -> Fact.t -> bool
val fact_count : t -> int
val dom_size : t -> int

val is_empty : t -> bool

val subset : t -> t -> bool
(** [subset j i] is [J ⊆ I]: [facts(J) ⊆ facts(I)]. *)

val equal_facts : t -> t -> bool
val equal : t -> t -> bool
(** Equal facts {e and} equal domains. *)

val induced : t -> Constant.Set.t -> t
(** [induced i d] is the subinstance of [I] induced by the domain [d]:
    domain [d], relations [R^I] restricted to tuples over [d].  This is the
    [J ≤ I] of the paper when [d ⊆ dom(I)]; constants of [d] outside
    [dom(I)] are ignored. *)

val is_induced_subinstance : t -> t -> bool
(** [is_induced_subinstance j i] is [J ≤ I]. *)

val union : t -> t -> t
(** Domains and facts are unioned.  Schemas are unioned. *)

val intersection : t -> t -> t
(** [dom(I) ∩ dom(J)] and component-wise relation intersection
    (Section 5, "Closure Under Intersections"). *)

val difference_active : t -> t -> t
(** The instance [L] with [facts(L) = facts(J') \ facts(K)] and
    [dom(L) = adom(L)], as used in the proof of Claim 4.5. *)

val map_constants : (Constant.t -> Constant.t) -> t -> t
(** Image instance: domain and facts mapped through the function. *)

val with_dom : t -> Constant.Set.t -> t
(** Replace the domain (must contain the active domain; raises
    [Invalid_argument] otherwise).  Used by domain-independence tests. *)

val shrink_dom_to_adom : t -> t

val active_part : t -> t
(** Same facts, domain shrunk to the active domain. *)

val pp : t Fmt.t
val to_string : t -> string
val compare : t -> t -> int

val disjoint_union : t -> t -> t * (Constant.t -> Constant.t)
(** [disjoint_union i j] renames the domain of [J] apart from [dom(I)]
    (fresh {!Constant.Indexed} names) and unions; the returned function is
    the renaming applied to [J]'s constants.  Used by the closure-under-
    disjoint-union arguments of Appendix F. *)
