lib/syntax/relation.mli: Fmt Map Set
