lib/syntax/variable.ml: Fmt Hashtbl Map Printf Set String
