lib/syntax/canonical.mli: Tgd
