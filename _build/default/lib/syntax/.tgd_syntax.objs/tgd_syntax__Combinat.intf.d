lib/syntax/combinat.mli: Seq
