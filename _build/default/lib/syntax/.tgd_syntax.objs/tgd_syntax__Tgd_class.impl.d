lib/syntax/tgd_class.ml: Atom Fmt List Tgd Variable
