lib/syntax/term.mli: Constant Fmt Variable
