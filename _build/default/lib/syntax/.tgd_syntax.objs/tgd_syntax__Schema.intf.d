lib/syntax/schema.mli: Fmt Relation
