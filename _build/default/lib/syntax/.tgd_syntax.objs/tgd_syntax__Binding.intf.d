lib/syntax/binding.mli: Atom Constant Fact Fmt Variable
