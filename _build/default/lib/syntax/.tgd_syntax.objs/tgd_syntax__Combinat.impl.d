lib/syntax/combinat.ml: List Seq
