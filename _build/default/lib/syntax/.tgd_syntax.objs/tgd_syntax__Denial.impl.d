lib/syntax/denial.ml: Atom Constant Fmt List Variable
