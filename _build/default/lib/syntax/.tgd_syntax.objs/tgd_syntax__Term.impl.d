lib/syntax/term.ml: Constant Fmt Variable
