lib/syntax/canonical.ml: Atom Combinat Hashtbl List Seq Term Tgd Variable
