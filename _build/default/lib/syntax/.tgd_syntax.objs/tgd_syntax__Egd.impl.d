lib/syntax/egd.ml: Atom Constant Fmt List Variable
