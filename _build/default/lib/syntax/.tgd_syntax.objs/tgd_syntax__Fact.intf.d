lib/syntax/fact.mli: Atom Constant Fmt Relation Set
