lib/syntax/tgd_class.mli: Atom Fmt Tgd
