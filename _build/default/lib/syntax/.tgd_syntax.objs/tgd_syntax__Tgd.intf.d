lib/syntax/tgd.mli: Atom Fmt Set Variable
