lib/syntax/dependency.mli: Egd Fmt Tgd
