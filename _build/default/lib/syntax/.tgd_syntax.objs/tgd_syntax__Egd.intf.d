lib/syntax/egd.mli: Atom Fmt Variable
