lib/syntax/hypergraph.mli: Atom Variable
