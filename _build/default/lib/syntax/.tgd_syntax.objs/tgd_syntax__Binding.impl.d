lib/syntax/binding.ml: Array Atom Constant Fact Fmt List Term Variable
