lib/syntax/constant.mli: Fmt Map Set
