lib/syntax/atom.ml: Array Constant Fmt Hashtbl List Printf Relation Set Term Variable
