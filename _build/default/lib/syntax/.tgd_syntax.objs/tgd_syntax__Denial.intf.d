lib/syntax/denial.mli: Atom Fmt Variable
