lib/syntax/schema.ml: Fmt Hashtbl List Option Printf Relation String
