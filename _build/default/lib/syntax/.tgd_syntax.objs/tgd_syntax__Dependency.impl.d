lib/syntax/dependency.ml: Egd Fmt List Tgd
