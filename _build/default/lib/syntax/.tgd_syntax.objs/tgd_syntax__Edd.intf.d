lib/syntax/edd.mli: Atom Egd Fmt Tgd Variable
