lib/syntax/tgd.ml: Atom Constant Fmt List Set Variable
