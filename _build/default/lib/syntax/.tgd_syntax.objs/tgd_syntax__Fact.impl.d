lib/syntax/fact.ml: Array Atom Constant Fmt Printf Relation Set Term
