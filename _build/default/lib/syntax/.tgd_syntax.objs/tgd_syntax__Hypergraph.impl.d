lib/syntax/hypergraph.ml: Atom List Variable
