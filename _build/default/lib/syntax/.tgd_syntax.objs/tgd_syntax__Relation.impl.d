lib/syntax/relation.ml: Fmt Int Map Set String
