lib/syntax/variable.mli: Fmt Map Set
