lib/syntax/atom.mli: Constant Fmt Relation Set Term Variable
