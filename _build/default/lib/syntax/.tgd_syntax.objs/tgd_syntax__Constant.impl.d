lib/syntax/constant.ml: Fmt Hashtbl Int Map Set String
