lib/syntax/edd.ml: Atom Constant Egd Fmt List Tgd Variable
