type t = { body : Atom.t list }

let make body =
  if body = [] then invalid_arg "Denial.make: empty body";
  if
    not
      (List.for_all
         (fun a -> Constant.Set.is_empty (Atom.constants a))
         body)
  then invalid_arg "Denial.make: denial constraints are constant-free";
  { body = List.sort_uniq Atom.compare body }

let body d = d.body

let vars d =
  List.fold_left
    (fun acc a -> Variable.Set.union acc (Atom.vars a))
    Variable.Set.empty d.body

let n_universal d = Variable.Set.cardinal (vars d)
let compare d e = List.compare Atom.compare d.body e.body
let equal d e = compare d e = 0

let pp ppf d =
  Fmt.pf ppf "%a -> ⊥" Fmt.(list ~sep:(any ", ") Atom.pp) d.body

let to_string d = Fmt.str "%a" pp d
