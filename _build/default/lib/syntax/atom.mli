(** Atoms [R(t_1, …, t_k)] over a schema. *)

type t = private { rel : Relation.t; args : Term.t array }

val make : Relation.t -> Term.t list -> t
(** Raises [Invalid_argument] when the number of arguments differs from the
    arity of the relation. *)

val make_arr : Relation.t -> Term.t array -> t

val of_vars : Relation.t -> Variable.t list -> t
(** Atom whose arguments are all variables. *)

val rel : t -> Relation.t
val args : t -> Term.t list
val args_arr : t -> Term.t array
val arity : t -> int

val vars : t -> Variable.Set.t
val var_list : t -> Variable.t list
(** Variables in order of first occurrence (left to right). *)

val constants : t -> Constant.Set.t
val is_ground : t -> bool

val apply : (Variable.t -> Term.t) -> t -> t
(** [apply f a] replaces each variable [v] by [f v]. *)

val substitute : Term.t Variable.Map.t -> t -> t
(** Like {!apply}, leaving unmapped variables in place. *)

val rename : Variable.t Variable.Map.t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
