(* Classic GYO reduction with the two rewrite rules:

   (1) delete a vertex that occurs in exactly one hyperedge;
   (2) delete a hyperedge that is empty or contained in another hyperedge.

   The hypergraph is α-acyclic iff the rules empty it. *)

let edges_of atoms = List.map Atom.vars atoms

let delete_exclusive_vertices edges =
  let occurrence_count v =
    List.length (List.filter (fun e -> Variable.Set.mem v e) edges)
  in
  List.map
    (fun e -> Variable.Set.filter (fun v -> occurrence_count v > 1) e)
    edges

let delete_subsumed edges =
  let rec go kept = function
    | [] -> List.rev kept
    | e :: rest ->
      let subsumed_by_other =
        Variable.Set.is_empty e
        || List.exists (fun w -> Variable.Set.subset e w) rest
        || List.exists (fun w -> Variable.Set.subset e w) kept
      in
      if subsumed_by_other then go kept rest else go (e :: kept) rest
  in
  go [] edges

let rec reduce edges =
  let edges' = delete_subsumed (delete_exclusive_vertices edges) in
  if List.length edges' = List.length edges
     && List.for_all2 Variable.Set.equal
          (List.sort Variable.Set.compare edges')
          (List.sort Variable.Set.compare edges)
  then edges
  else reduce edges'

let gyo_residual atoms = reduce (edges_of atoms)
let is_acyclic atoms = gyo_residual atoms = []
let join_tree_exists = is_acyclic
