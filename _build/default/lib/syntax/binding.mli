(** Variable assignments [h : vars → C].

    These are the functions written [h : x̄ ∪ ȳ → dom(I)] throughout the
    paper — partial maps from variables to constants, extended during
    homomorphism search. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : Variable.t -> Constant.t -> t
val of_list : (Variable.t * Constant.t) list -> t
val to_list : t -> (Variable.t * Constant.t) list
val find : Variable.t -> t -> Constant.t option
val mem : Variable.t -> t -> bool
val add : Variable.t -> Constant.t -> t -> t

val extend : Variable.t -> Constant.t -> t -> t option
(** [extend v c h] is [Some (add v c h)] when [v] is unbound or already bound
    to [c], and [None] on a conflicting binding. *)

val domain : t -> Variable.Set.t
val range : t -> Constant.Set.t
val cardinal : t -> int

val restrict : Variable.Set.t -> t -> t

val merge : t -> t -> t option
(** [merge h g] combines two assignments, [None] on conflict. *)

val apply_atom : t -> Atom.t -> Atom.t
(** Replace bound variables by their constants (partial grounding). *)

val ground_atom : t -> Atom.t -> Fact.t option
(** [Some] fact when every variable of the atom is bound. *)

val ground_atoms : t -> Atom.t list -> Fact.t list option

val is_injective : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
