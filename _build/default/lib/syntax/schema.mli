(** Relational schemas — finite sets of relation symbols (Section 2). *)

type t

val make : Relation.t list -> t
(** [make rels] is the schema with relations [rels].  Raises
    [Invalid_argument] if two relations share a name with different arities
    (a schema is a set of symbols, each with one arity). *)

val of_pairs : (string * int) list -> t
(** [of_pairs [("R", 2); ...]] — convenience constructor. *)

val relations : t -> Relation.t list
(** In increasing symbol order; duplicate-free. *)

val mem : t -> Relation.t -> bool
val find : t -> string -> Relation.t option
val arity_of : t -> string -> int option

val size : t -> int
(** [size s] is [|S|], the number of relation symbols. *)

val max_arity : t -> int
(** [max_arity s] is [ar(S) = max_{R ∈ S} ar(R)]; [0] on the empty schema. *)

val union : t -> t -> t
(** Raises [Invalid_argument] on an arity clash. *)

val extend : t -> Relation.t list -> t
val subset : t -> t -> bool

val pp : t Fmt.t
val to_string : t -> string
val equal : t -> t -> bool
