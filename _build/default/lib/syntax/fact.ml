type t = { rel : Relation.t; tuple : Constant.t array }

let make_arr rel tuple =
  if Array.length tuple <> Relation.arity rel then
    invalid_arg
      (Printf.sprintf "Fact.make: %s expects %d constants, got %d"
         (Relation.name rel) (Relation.arity rel) (Array.length tuple));
  { rel; tuple }

let make rel cs = make_arr rel (Array.of_list cs)
let rel f = f.rel
let tuple f = Array.to_list f.tuple
let tuple_arr f = f.tuple

let constants f =
  Array.fold_left (fun acc c -> Constant.Set.add c acc) Constant.Set.empty
    f.tuple

let map h f = { f with tuple = Array.map h f.tuple }
let to_atom f = Atom.make_arr f.rel (Array.map Term.const f.tuple)

let of_atom a =
  if Atom.is_ground a then
    Some
      (make_arr (Atom.rel a)
         (Array.map
            (fun t ->
              match t with
              | Term.Const c -> c
              | Term.Var _ -> assert false)
            (Atom.args_arr a)))
  else None

let compare f g =
  let c = Relation.compare f.rel g.rel in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length f.tuple then 0
      else
        let c = Constant.compare f.tuple.(i) g.tuple.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal f g = compare f g = 0

let pp ppf f =
  Fmt.pf ppf "%s(%a)" (Relation.name f.rel)
    Fmt.(array ~sep:(any ",") Constant.pp)
    f.tuple

let to_string f = Fmt.str "%a" pp f

module Set = struct
  include Set.Make (struct
    type nonrec t = t

    let compare = compare
  end)

  let pp ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp) (elements s)
end
