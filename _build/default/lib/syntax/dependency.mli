(** Mixed dependencies — the sets [Σ^{∃,=}] of tgds and egds produced by
    Step 2 of the proof of Theorem 4.1. *)

type t =
  | Tgd of Tgd.t
  | Egd of Egd.t

val tgd : Tgd.t -> t
val egd : Egd.t -> t
val as_tgd : t -> Tgd.t option
val as_egd : t -> Egd.t option
val tgds : t list -> Tgd.t list
val egds : t list -> Egd.t list

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
