type t =
  | Named of string
  | Indexed of int
  | Pair of t * t
  | Null of int

let named s = Named s
let indexed i = Indexed i
let pair a b = Pair (a, b)
let null i = Null i

let rec compare c d =
  match c, d with
  | Named a, Named b -> String.compare a b
  | Named _, _ -> -1
  | _, Named _ -> 1
  | Indexed a, Indexed b -> Int.compare a b
  | Indexed _, _ -> -1
  | _, Indexed _ -> 1
  | Pair (a1, a2), Pair (b1, b2) ->
    let c1 = compare a1 b1 in
    if c1 <> 0 then c1 else compare a2 b2
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | Null a, Null b -> Int.compare a b

let equal c d = compare c d = 0
let hash = Hashtbl.hash

let rec is_null = function
  | Null _ -> true
  | Pair (a, b) -> is_null a || is_null b
  | Named _ | Indexed _ -> false

let first = function
  | Pair (a, _) -> a
  | Named _ | Indexed _ | Null _ -> invalid_arg "Constant.first: not a pair"

let second = function
  | Pair (_, b) -> b
  | Named _ | Indexed _ | Null _ -> invalid_arg "Constant.second: not a pair"

let rec pp ppf = function
  | Named s -> Fmt.string ppf s
  | Indexed i -> Fmt.pf ppf "c%d" i
  | Pair (a, b) -> Fmt.pf ppf "(%a,%a)" pp a pp b
  | Null i -> Fmt.pf ppf "_n%d" i

let to_string c = Fmt.str "%a" pp c

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let set_of_list cs = Set.of_list cs
