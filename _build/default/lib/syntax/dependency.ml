type t =
  | Tgd of Tgd.t
  | Egd of Egd.t

let tgd s = Tgd s
let egd e = Egd e
let as_tgd = function Tgd s -> Some s | Egd _ -> None
let as_egd = function Egd e -> Some e | Tgd _ -> None
let tgds l = List.filter_map as_tgd l
let egds l = List.filter_map as_egd l

let compare d e =
  match d, e with
  | Tgd a, Tgd b -> Tgd.compare a b
  | Tgd _, Egd _ -> -1
  | Egd _, Tgd _ -> 1
  | Egd a, Egd b -> Egd.compare a b

let equal d e = compare d e = 0

let pp ppf = function
  | Tgd s -> Tgd.pp ppf s
  | Egd e -> Egd.pp ppf e

let to_string d = Fmt.str "%a" pp d
