type t = { body : Atom.t list; head : Atom.t list }

let vars_of_atoms atoms =
  List.fold_left
    (fun acc a -> Variable.Set.union acc (Atom.vars a))
    Variable.Set.empty atoms

let make ~body ~head =
  if head = [] then invalid_arg "Tgd.make: empty head";
  let ground_free atoms =
    List.for_all (fun a -> Constant.Set.is_empty (Atom.constants a)) atoms
  in
  if not (ground_free body && ground_free head) then
    invalid_arg "Tgd.make: tgds are constant-free";
  let all = Variable.Set.union (vars_of_atoms body) (vars_of_atoms head) in
  if Variable.Set.is_empty all then
    invalid_arg "Tgd.make: a tgd has at least one variable";
  { body = List.sort_uniq Atom.compare body;
    head = List.sort_uniq Atom.compare head
  }

let body s = s.body
let head s = s.head
let universal_vars s = vars_of_atoms s.body

let existential_vars s =
  Variable.Set.diff (vars_of_atoms s.head) (universal_vars s)

let frontier s =
  Variable.Set.inter (universal_vars s) (vars_of_atoms s.head)

let all_vars s = Variable.Set.union (universal_vars s) (vars_of_atoms s.head)
let n_universal s = Variable.Set.cardinal (universal_vars s)
let m_existential s = Variable.Set.cardinal (existential_vars s)
let in_class_nm ~n ~m s = n_universal s <= n && m_existential s <= m

let rename rho s =
  { body = List.map (Atom.rename rho) s.body |> List.sort_uniq Atom.compare;
    head = List.map (Atom.rename rho) s.head |> List.sort_uniq Atom.compare
  }

let refresh s =
  let rho =
    Variable.Set.fold
      (fun v acc ->
        Variable.Map.add v (Variable.fresh ~prefix:(Variable.name v) ()) acc)
      (all_vars s) Variable.Map.empty
  in
  rename rho s

let size s = List.length s.body + List.length s.head

let compare s t =
  let c = List.compare Atom.compare s.body t.body in
  if c <> 0 then c else List.compare Atom.compare s.head t.head

let equal s t = compare s t = 0

let pp ppf s =
  let pp_atoms = Fmt.(list ~sep:(any ", ") Atom.pp) in
  let ex = existential_vars s in
  if Variable.Set.is_empty ex then
    Fmt.pf ppf "%a -> %a" pp_atoms s.body pp_atoms s.head
  else
    Fmt.pf ppf "%a -> exists %a. %a" pp_atoms s.body
      Fmt.(list ~sep:(any ",") Variable.pp)
      (Variable.Set.elements ex) pp_atoms s.head

let to_string s = Fmt.str "%a" pp s

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
