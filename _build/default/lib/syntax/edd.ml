type disjunct =
  | Eq of Variable.t * Variable.t
  | Exists of Atom.t list

type t = { body : Atom.t list; disjuncts : disjunct list }

let atoms_vars atoms =
  List.fold_left
    (fun acc a -> Variable.Set.union acc (Atom.vars a))
    Variable.Set.empty atoms

let constant_free atoms =
  List.for_all (fun a -> Constant.Set.is_empty (Atom.constants a)) atoms

let compare_disjunct d e =
  match d, e with
  | Eq (a, b), Eq (c, d) ->
    let cmp = Variable.compare a c in
    if cmp <> 0 then cmp else Variable.compare b d
  | Eq _, Exists _ -> -1
  | Exists _, Eq _ -> 1
  | Exists xs, Exists ys -> List.compare Atom.compare xs ys

let make ~body ~disjuncts =
  if disjuncts = [] then invalid_arg "Edd.make: empty disjunct list";
  if not (constant_free body) then invalid_arg "Edd.make: edds are constant-free";
  let bvars = atoms_vars body in
  List.iter
    (fun d ->
      match d with
      | Eq (y, z) ->
        if not (Variable.Set.mem y bvars && Variable.Set.mem z bvars) then
          invalid_arg "Edd.make: equality over non-body variables"
      | Exists [] -> invalid_arg "Edd.make: empty existential conjunction"
      | Exists atoms ->
        if not (constant_free atoms) then
          invalid_arg "Edd.make: edds are constant-free")
    disjuncts;
  { body = List.sort_uniq Atom.compare body;
    disjuncts =
      List.sort_uniq compare_disjunct
        (List.map
           (function
             | Eq _ as d -> d
             | Exists atoms -> Exists (List.sort_uniq Atom.compare atoms))
           disjuncts)
  }

let body d = d.body
let disjuncts d = d.disjuncts
let body_vars d = atoms_vars d.body
let n_universal d = Variable.Set.cardinal (body_vars d)

let existentials_of_disjunct bvars = function
  | Eq _ -> Variable.Set.empty
  | Exists atoms -> Variable.Set.diff (atoms_vars atoms) bvars

let m_existential d =
  let bvars = body_vars d in
  List.fold_left
    (fun acc disj ->
      max acc (Variable.Set.cardinal (existentials_of_disjunct bvars disj)))
    0 d.disjuncts

let in_e_nm ~n ~m d = n_universal d <= n && m_existential d <= m

let of_tgd s = make ~body:(Tgd.body s) ~disjuncts:[ Exists (Tgd.head s) ]
let of_egd e = make ~body:(Egd.body e) ~disjuncts:[ Eq (Egd.lhs e, Egd.rhs e) ]

let as_tgd d =
  match d.disjuncts with
  | [ Exists atoms ] -> (
    try Some (Tgd.make ~body:d.body ~head:atoms)
    with Invalid_argument _ -> None)
  | _ -> None

let as_egd d =
  match d.disjuncts with
  | [ Eq (y, z) ] -> (
    try Some (Egd.make ~body:d.body y z) with Invalid_argument _ -> None)
  | _ -> None

let disjunct_dependencies d =
  List.filter_map
    (fun disj ->
      match disj with
      | Eq (y, z) -> (
        try Some (`Egd (Egd.make ~body:d.body y z))
        with Invalid_argument _ -> None)
      | Exists atoms -> (
        try Some (`Tgd (Tgd.make ~body:d.body ~head:atoms))
        with Invalid_argument _ -> None))
    d.disjuncts

let compare d e =
  let c = List.compare Atom.compare d.body e.body in
  if c <> 0 then c else List.compare compare_disjunct d.disjuncts e.disjuncts

let equal d e = compare d e = 0

let pp_disjunct bvars ppf = function
  | Eq (y, z) -> Fmt.pf ppf "%a = %a" Variable.pp y Variable.pp z
  | Exists atoms ->
    let ex = Variable.Set.diff (atoms_vars atoms) bvars in
    if Variable.Set.is_empty ex then
      Fmt.pf ppf "%a" Fmt.(list ~sep:(any ", ") Atom.pp) atoms
    else
      Fmt.pf ppf "exists %a. %a"
        Fmt.(list ~sep:(any ",") Variable.pp)
        (Variable.Set.elements ex)
        Fmt.(list ~sep:(any ", ") Atom.pp)
        atoms

let pp ppf d =
  let bvars = body_vars d in
  Fmt.pf ppf "%a -> %a"
    Fmt.(list ~sep:(any ", ") Atom.pp)
    d.body
    Fmt.(list ~sep:(any " | ") (pp_disjunct bvars))
    d.disjuncts

let to_string d = Fmt.str "%a" pp d
