(** Existential disjunctive dependencies (Section 4.1).

    An edd is a sentence [∀x̄ (φ(x̄) → ⋁_{i=1}^{k} ψ_i(x̄_i))] where each
    disjunct [ψ_i] is either an equality [y = z] between body variables, or an
    existential conjunction [∃ȳ_i χ_i(x̄_i, ȳ_i)] whose frontier variables
    [x̄_i] occur in the body.  Eds generalize tgds (one existential disjunct)
    and egds (one equality disjunct). *)

type disjunct =
  | Eq of Variable.t * Variable.t
  | Exists of Atom.t list
      (** Variables of the conjunction not occurring in the edd body are the
          existentially quantified [ȳ_i]. *)

type t = private { body : Atom.t list; disjuncts : disjunct list }

val make : body:Atom.t list -> disjuncts:disjunct list -> t
(** Raises [Invalid_argument] when the disjunct list is empty, atoms carry
    constants, an equality mentions a variable outside the body, or an
    existential disjunct is an empty conjunction. *)

val body : t -> Atom.t list
val disjuncts : t -> disjunct list

val body_vars : t -> Variable.Set.t

val n_universal : t -> int
(** Number of body variables. *)

val m_existential : t -> int
(** Maximum number of existential variables over the disjuncts — the [m]
    bound of the class [E_{n,m}] (Section 4.2, Step 1). *)

val in_e_nm : n:int -> m:int -> t -> bool
(** Membership in [E_{n,m}]. *)

val of_tgd : Tgd.t -> t
val of_egd : Egd.t -> t

val as_tgd : t -> Tgd.t option
(** [Some] when the edd has exactly one disjunct which is an existential
    conjunction (i.e. the edd is a tgd). *)

val as_egd : t -> Egd.t option
(** [Some] when the edd has exactly one disjunct which is an equality. *)

val disjunct_dependencies : t -> [ `Tgd of Tgd.t | `Egd of Egd.t ] list
(** The single-disjunct dependencies [σ_j = ∀x̄ (φ(x̄) → ψ_j(x̄_j))] used in
    Step 2 of the proof of Theorem 4.1. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
