type t = { name : string; arity : int }

let make name arity =
  if String.length name = 0 then invalid_arg "Relation.make: empty name";
  if arity < 0 then invalid_arg "Relation.make: negative arity";
  { name; arity }

let name r = r.name
let arity r = r.arity

let compare r s =
  let c = String.compare r.name s.name in
  if c <> 0 then c else Int.compare r.arity s.arity

let equal r s = compare r s = 0
let pp ppf r = Fmt.pf ppf "%s/%d" r.name r.arity
let to_string r = Fmt.str "%a" pp r

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
