(** Equality-generating dependencies [∀x̄ (φ(x̄) → x_i = x_j)] (Section 2). *)

type t = private { body : Atom.t list; lhs : Variable.t; rhs : Variable.t }

val make : body:Atom.t list -> Variable.t -> Variable.t -> t
(** Raises [Invalid_argument] if the body is empty, carries constants, or the
    equated variables do not occur in it. *)

val body : t -> Atom.t list
val lhs : t -> Variable.t
val rhs : t -> Variable.t
val vars : t -> Variable.Set.t
val n_universal : t -> int

val is_trivial : t -> bool
(** [x = x]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
