(** Relation symbols (predicates) with their arity. *)

type t = private { name : string; arity : int }

val make : string -> int -> t
(** [make name arity] is the relation symbol [name/arity].  Raises
    [Invalid_argument] when [name] is empty or [arity < 0].  (The paper
    requires positive arity for schema relations; we additionally allow
    arity 0 because the Appendix F reductions use a 0-ary [Aux] predicate.) *)

val name : t -> string
val arity : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
