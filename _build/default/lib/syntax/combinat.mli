(** Small combinatorial enumeration helpers shared by the canonicalizer, the
    candidate enumerators of Algorithms 1 and 2, and the bounded-universe
    model enumerator.  All functions are lazy ({!Seq.t}) so callers can stop
    early or interleave with filtering. *)

val permutations : 'a list -> 'a list Seq.t
(** All permutations; [n!] elements. *)

val subsets : 'a list -> 'a list Seq.t
(** All subsets (as sublists preserving order); [2^n] elements. *)

val subsets_up_to : int -> 'a list -> 'a list Seq.t
(** Subsets of cardinality at most [k]. *)

val subsets_of_size : int -> 'a list -> 'a list Seq.t

val tuples : 'a list -> int -> 'a list Seq.t
(** All [k]-tuples over the alphabet; [n^k] elements.  [tuples _ 0] is the
    singleton sequence containing [[]]. *)

val nonempty_sublists : 'a list -> 'a list Seq.t

val growth_strings : int -> int -> int list Seq.t
(** [growth_strings len max_blocks] enumerates restricted growth strings of
    length [len] with at most [max_blocks] distinct values: sequences
    [a_0 … a_{len-1}] with [a_0 = 0] and [a_i ≤ 1 + max(a_0 … a_{i-1})].
    These canonically represent the ways to fill [len] argument positions
    with at most [max_blocks] distinct variables. *)

val cartesian : 'a Seq.t list -> 'a list Seq.t
(** Cartesian product of a list of sequences. *)

val take : int -> 'a Seq.t -> 'a list
val seq_length : 'a Seq.t -> int
