(** Tuple-generating dependencies (Section 2).

    A tgd is a constant-free sentence
    [∀x̄∀ȳ (φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄))] with a possibly empty body [φ] and a
    non-empty head [ψ].  Quantification is implicit in the representation:
    every body variable is universally quantified, every head variable not
    occurring in the body is existentially quantified. *)

type t = private { body : Atom.t list; head : Atom.t list }

val make : body:Atom.t list -> head:Atom.t list -> t
(** Raises [Invalid_argument] when the head is empty, when any atom carries a
    constant (tgds are constant-free), or when the tgd has no variable at
    all. *)

val body : t -> Atom.t list
val head : t -> Atom.t list

val universal_vars : t -> Variable.Set.t
(** [x̄ ∪ ȳ] — the variables of the body. *)

val existential_vars : t -> Variable.Set.t
(** [z̄] — head variables not occurring in the body. *)

val frontier : t -> Variable.Set.t
(** [fr(σ)] — universally quantified variables occurring in the head
    (Section 2, "Classes of Tuple-Generating Dependencies"). *)

val all_vars : t -> Variable.Set.t

val n_universal : t -> int
(** Number of universally quantified variables; the [n] of [TGD_{n,m}]. *)

val m_existential : t -> int
(** Number of existentially quantified variables; the [m] of [TGD_{n,m}]. *)

val in_class_nm : n:int -> m:int -> t -> bool
(** Membership in [TGD_{n,m}]: at most [n] universal and [m] existential
    variables. *)

val rename : Variable.t Variable.Map.t -> t -> t

val refresh : t -> t
(** Rename every variable to a globally fresh one (for name-apartness). *)

val size : t -> int
(** Number of atoms, body + head. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
