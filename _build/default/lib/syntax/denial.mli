(** Denial constraints [∀x̄ (φ(x̄) → ⊥)].

    The paper's concluding remarks (Section 10) name ontologies specified by
    tgds, egds, and denial constraints as the next target of the
    characterization program; this module supplies the syntax so that
    {!Tgd_chase.Theory} can chase and check mixed ontologies. *)

type t = private { body : Atom.t list }

val make : Atom.t list -> t
(** Raises [Invalid_argument] when the body is empty or carries constants. *)

val body : t -> Atom.t list
val vars : t -> Variable.Set.t
val n_universal : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
