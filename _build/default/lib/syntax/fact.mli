(** Facts — ground atoms [R(c̄)] (Section 2). *)

type t = private { rel : Relation.t; tuple : Constant.t array }

val make : Relation.t -> Constant.t list -> t
val make_arr : Relation.t -> Constant.t array -> t

val rel : t -> Relation.t
val tuple : t -> Constant.t list
val tuple_arr : t -> Constant.t array

val constants : t -> Constant.Set.t
val map : (Constant.t -> Constant.t) -> t -> t
(** [map h f] is [R(h(c_1), …, h(c_k))] — the image of the fact under a
    function on constants, as in [h(facts(I))] of the paper. *)

val to_atom : t -> Atom.t
val of_atom : Atom.t -> t option
(** [None] when the atom is not ground. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : t Fmt.t
val to_string : t -> string

module Set : sig
  include Set.S with type elt = t

  val pp : t Fmt.t
end
