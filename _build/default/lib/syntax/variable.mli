(** First-order variables.

    Variables are drawn from the countably infinite set [V] of the paper
    (Section 2).  They are represented by their name; two variables are equal
    iff their names are equal.  A fresh-name supply is provided for
    constructions that must invent variables (e.g. the [x_c] renaming used to
    build {!Diagram} formulas, or existential variables of enumerated
    candidate tgds). *)

type t

val make : string -> t
(** [make name] is the variable called [name].  Raises [Invalid_argument] on
    the empty string. *)

val name : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : t Fmt.t
val to_string : t -> string

val fresh : ?prefix:string -> unit -> t
(** [fresh ()] is a variable guaranteed distinct from every variable created
    so far by [fresh] in this process, with an optional name [prefix]
    (default ["v"]). *)

val indexed : string -> int -> t
(** [indexed p i] is the variable [p ^ string_of_int i]; the conventional
    spelling for enumerated candidate dependencies ([indexed "x" 0] etc.). *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
