(** Constants (domain elements).

    The paper fixes a countably infinite set [C] of constants and lets
    instance domains be arbitrary subsets of [C].  Our representation makes
    the constructions of the paper first-class:

    - [Named] constants are the ordinary ones appearing in user instances;
    - [Indexed] constants supply canonical countable families (used by
      critical instances and bounded-universe enumeration);
    - [Pair] constants are the elements of direct products
      (Definition of [I ⊗ J], Section 3.2), so that the product of two
      instances is itself an instance over [C];
    - [Null] constants are the labelled nulls invented by the chase; they are
      ordinary constants from the model-theoretic point of view, but carrying
      them separately lets tooling display and test chase provenance. *)

type t =
  | Named of string
  | Indexed of int
  | Pair of t * t
  | Null of int

val named : string -> t
val indexed : int -> t
val pair : t -> t -> t
val null : int -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val is_null : t -> bool
(** [is_null c] is [true] iff [c] is a labelled null or contains one (a
    product element is "null" if either component is). *)

val first : t -> t
(** [first (Pair (a, b))] is [a].  Raises [Invalid_argument] on non-pairs.
    This is the homomorphism [h_I] of Lemma 3.4. *)

val second : t -> t
(** [second (Pair (a, b))] is [b] ([h_J] of Lemma 3.4). *)

val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
