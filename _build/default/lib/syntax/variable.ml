type t = string

let make name =
  if String.length name = 0 then invalid_arg "Variable.make: empty name";
  name

let name v = v
let compare = String.compare
let equal = String.equal
let hash = Hashtbl.hash
let pp = Fmt.string
let to_string v = v

let fresh_counter = ref 0

let fresh ?(prefix = "v") () =
  incr fresh_counter;
  Printf.sprintf "%s#%d" prefix !fresh_counter

let indexed p i = p ^ string_of_int i

module Set = Set.Make (String)
module Map = Map.Make (String)
