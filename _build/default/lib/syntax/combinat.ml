let rec insertions x = function
  | [] -> Seq.return [ x ]
  | y :: ys ->
    Seq.cons
      (x :: y :: ys)
      (Seq.map (fun zs -> y :: zs) (insertions x ys))

let rec permutations = function
  | [] -> Seq.return []
  | x :: xs -> Seq.concat_map (insertions x) (permutations xs)

let rec subsets = function
  | [] -> Seq.return []
  | x :: xs ->
    let rest = subsets xs in
    Seq.append rest (Seq.map (fun s -> x :: s) rest)

let rec subsets_up_to k l =
  if k <= 0 then Seq.return []
  else
    match l with
    | [] -> Seq.return []
    | x :: xs ->
      Seq.append
        (subsets_up_to k xs)
        (Seq.map (fun s -> x :: s) (subsets_up_to (k - 1) xs))

let rec subsets_of_size k l =
  if k = 0 then Seq.return []
  else
    match l with
    | [] -> Seq.empty
    | x :: xs ->
      Seq.append
        (Seq.map (fun s -> x :: s) (subsets_of_size (k - 1) xs))
        (subsets_of_size k xs)

let rec tuples alphabet k =
  if k <= 0 then Seq.return []
  else
    Seq.concat_map
      (fun rest -> Seq.map (fun a -> a :: rest) (List.to_seq alphabet))
      (tuples alphabet (k - 1))

let nonempty_sublists l = Seq.filter (fun s -> s <> []) (subsets l)

let growth_strings len max_blocks =
  let rec go i used prefix () =
    if i = len then Seq.return (List.rev prefix) ()
    else
      let limit = min (used + 1) max_blocks in
      let rec choices v () =
        if v >= limit then Seq.Nil
        else
          Seq.Cons
            ( v,
              choices (v + 1) )
      in
      Seq.concat_map
        (fun v -> go (i + 1) (max used (v + 1)) (v :: prefix))
        (choices 0)
        ()
  in
  if len = 0 then Seq.return [] else go 0 0 []

let rec cartesian = function
  | [] -> Seq.return []
  | s :: rest ->
    Seq.concat_map
      (fun x -> Seq.map (fun xs -> x :: xs) (cartesian rest))
      s

let take n s = List.of_seq (Seq.take n s)
let seq_length s = Seq.fold_left (fun acc _ -> acc + 1) 0 s
