type t = { body : Atom.t list; lhs : Variable.t; rhs : Variable.t }

let make ~body lhs rhs =
  if body = [] then invalid_arg "Egd.make: empty body";
  if
    not
      (List.for_all
         (fun a -> Constant.Set.is_empty (Atom.constants a))
         body)
  then invalid_arg "Egd.make: egds are constant-free";
  let vs =
    List.fold_left
      (fun acc a -> Variable.Set.union acc (Atom.vars a))
      Variable.Set.empty body
  in
  if not (Variable.Set.mem lhs vs && Variable.Set.mem rhs vs) then
    invalid_arg "Egd.make: equated variables must occur in the body";
  { body = List.sort_uniq Atom.compare body; lhs; rhs }

let body e = e.body
let lhs e = e.lhs
let rhs e = e.rhs

let vars e =
  List.fold_left
    (fun acc a -> Variable.Set.union acc (Atom.vars a))
    Variable.Set.empty e.body

let n_universal e = Variable.Set.cardinal (vars e)
let is_trivial e = Variable.equal e.lhs e.rhs

let compare e f =
  let c = List.compare Atom.compare e.body f.body in
  if c <> 0 then c
  else
    let c = Variable.compare e.lhs f.lhs in
    if c <> 0 then c else Variable.compare e.rhs f.rhs

let equal e f = compare e f = 0

let pp ppf e =
  Fmt.pf ppf "%a -> %a = %a"
    Fmt.(list ~sep:(any ", ") Atom.pp)
    e.body Variable.pp e.lhs Variable.pp e.rhs

let to_string e = Fmt.str "%a" pp e
