(** Terms: variables or constants.

    Dependencies in the paper are constant-free, so tgd/edd atoms only carry
    variables; but the machinery of the proofs manipulates mixed atoms (the
    relative diagram uses constants from [dom(K)] together with the
    [⋆_1, …, ⋆_ℓ] variables), so atoms are built over terms. *)

type t =
  | Var of Variable.t
  | Const of Constant.t

val var : Variable.t -> t
val const : Constant.t -> t
val is_var : t -> bool
val is_const : t -> bool

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : t Fmt.t
val to_string : t -> string
