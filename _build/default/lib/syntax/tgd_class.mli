(** The central syntactic classes of tgds (Section 2) and their classifier.

    [LTGD ⊊ GTGD ⊊ FGTGD ≠ FTGD]. *)

type cls =
  | Full            (** no existentially quantified variables *)
  | Linear          (** at most one body atom *)
  | Guarded         (** empty body, or a body atom covering all universals *)
  | Frontier_guarded
      (** empty body, or a body atom covering the frontier *)

val is_full : Tgd.t -> bool
val is_linear : Tgd.t -> bool
val is_guarded : Tgd.t -> bool
val is_frontier_guarded : Tgd.t -> bool

val in_class : cls -> Tgd.t -> bool
val all_in_class : cls -> Tgd.t list -> bool

val guard : Tgd.t -> Atom.t option
(** A body atom containing every universally quantified variable, if any.
    For an empty body the tgd is guarded with no guard atom, and the result
    is [None]. *)

val frontier_guard : Tgd.t -> Atom.t option
(** A body atom containing every frontier variable, if any. *)

val classify : Tgd.t -> cls list
(** Every class the tgd belongs to, most restrictive first.  The empty list
    means the tgd is an unrestricted member of TGD only. *)

val cls_name : cls -> string
val pp_cls : cls Fmt.t
