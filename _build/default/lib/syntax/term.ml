type t =
  | Var of Variable.t
  | Const of Constant.t

let var v = Var v
let const c = Const c

let is_var = function Var _ -> true | Const _ -> false
let is_const = function Const _ -> true | Var _ -> false

let compare t u =
  match t, u with
  | Var v, Var w -> Variable.compare v w
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1
  | Const c, Const d -> Constant.compare c d

let equal t u = compare t u = 0

let pp ppf = function
  | Var v -> Variable.pp ppf v
  | Const c -> Constant.pp ppf c

let to_string t = Fmt.str "%a" pp t
