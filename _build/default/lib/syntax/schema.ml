type t = Relation.t list (* sorted, duplicate-free, names pairwise distinct *)

let check_no_clash rels =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let name = Relation.name r in
      match Hashtbl.find_opt tbl name with
      | Some a when a <> Relation.arity r ->
        invalid_arg
          (Printf.sprintf "Schema: relation %s declared with arities %d and %d"
             name a (Relation.arity r))
      | Some _ -> ()
      | None -> Hashtbl.add tbl name (Relation.arity r))
    rels

let make rels =
  check_no_clash rels;
  List.sort_uniq Relation.compare rels

let of_pairs pairs = make (List.map (fun (n, a) -> Relation.make n a) pairs)
let relations s = s
let mem s r = List.exists (Relation.equal r) s
let find s name = List.find_opt (fun r -> String.equal (Relation.name r) name) s
let arity_of s name = Option.map Relation.arity (find s name)
let size = List.length
let max_arity s = List.fold_left (fun acc r -> max acc (Relation.arity r)) 0 s
let union s1 s2 = make (s1 @ s2)
let extend s rels = make (s @ rels)
let subset s1 s2 = List.for_all (fun r -> mem s2 r) s1
let pp ppf s = Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") Relation.pp) s
let to_string s = Fmt.str "%a" pp s
let equal s1 s2 = subset s1 s2 && subset s2 s1
