type t = { rel : Relation.t; args : Term.t array }

let make_arr rel args =
  if Array.length args <> Relation.arity rel then
    invalid_arg
      (Printf.sprintf "Atom.make: %s expects %d arguments, got %d"
         (Relation.name rel) (Relation.arity rel) (Array.length args));
  { rel; args }

let make rel args = make_arr rel (Array.of_list args)
let of_vars rel vs = make rel (List.map Term.var vs)
let rel a = a.rel
let args a = Array.to_list a.args
let args_arr a = a.args
let arity a = Relation.arity a.rel

let vars a =
  Array.fold_left
    (fun acc t ->
      match t with Term.Var v -> Variable.Set.add v acc | Term.Const _ -> acc)
    Variable.Set.empty a.args

let var_list a =
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc t ->
      match t with
      | Term.Var v when not (Hashtbl.mem seen v) ->
        Hashtbl.add seen v ();
        v :: acc
      | Term.Var _ | Term.Const _ -> acc)
    [] a.args
  |> List.rev

let constants a =
  Array.fold_left
    (fun acc t ->
      match t with Term.Const c -> Constant.Set.add c acc | Term.Var _ -> acc)
    Constant.Set.empty a.args

let is_ground a = Array.for_all Term.is_const a.args

let apply f a =
  { a with
    args =
      Array.map
        (fun t -> match t with Term.Var v -> f v | Term.Const _ -> t)
        a.args
  }

let substitute sigma a =
  apply
    (fun v ->
      match Variable.Map.find_opt v sigma with
      | Some t -> t
      | None -> Term.Var v)
    a

let rename rho a =
  apply
    (fun v ->
      match Variable.Map.find_opt v rho with
      | Some w -> Term.Var w
      | None -> Term.Var v)
    a

let compare a b =
  let c = Relation.compare a.rel b.rel in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a.args then 0
      else
        let c = Term.compare a.args.(i) b.args.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let pp ppf a =
  Fmt.pf ppf "%s(%a)" (Relation.name a.rel)
    Fmt.(array ~sep:(any ",") Term.pp)
    a.args

let to_string a = Fmt.str "%a" pp a

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
