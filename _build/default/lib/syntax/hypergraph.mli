(** Hypergraph acyclicity of conjunctions of atoms (GYO reduction).

    The body of a guarded tgd is an acyclic hypergraph (the guard is an ear
    covering everything), which is the structural reason guardedness buys
    decidability; this module makes the notion first-class: α-acyclicity via
    the classic Graham–Yu–Özsoyoğlu ear-removal procedure. *)

val is_acyclic : Atom.t list -> bool
(** α-acyclic: GYO reduction empties the hypergraph.  The empty conjunction
    and single atoms are acyclic. *)

val gyo_residual : Atom.t list -> Variable.Set.t list
(** The hyperedges (as variable sets) remaining after GYO reduction — empty
    iff acyclic; otherwise the cyclic core, useful in diagnostics. *)

val join_tree_exists : Atom.t list -> bool
(** Alias of {!is_acyclic} (acyclicity ⟺ existence of a join tree). *)
