(** Canonical forms of tgds modulo variable renaming and atom reordering.

    Two tgds are {e syntactically equivalent} when one is obtained from the
    other by a bijective renaming of variables (and reordering of the
    conjunctions).  The candidate enumerators of Algorithms 1 and 2 use the
    canonical form to deduplicate the search space — this is what makes the
    set [E_{n,m}] "finite up to logical equivalence" effectively enumerable.

    The canonical form minimizes the printed tgd over all permutations of
    body and head atoms, renaming variables in order of first occurrence;
    this is exact (not a heuristic) and exponential only in the atom count,
    which the paper bounds by small constants for the classes at hand. *)

val tgd : Tgd.t -> Tgd.t
(** The canonical representative of the renaming-equivalence class. *)

val equal_up_to_renaming : Tgd.t -> Tgd.t -> bool

val dedup : Tgd.t list -> Tgd.t list
(** Deduplicate a list modulo renaming; keeps canonical representatives,
    sorted. *)
