type cls =
  | Full
  | Linear
  | Guarded
  | Frontier_guarded

let is_full s = Variable.Set.is_empty (Tgd.existential_vars s)
let is_linear s = List.length (Tgd.body s) <= 1

let covering_atom vars body =
  List.find_opt (fun a -> Variable.Set.subset vars (Atom.vars a)) body

let is_guarded s =
  match Tgd.body s with
  | [] -> true
  | body -> covering_atom (Tgd.universal_vars s) body <> None

let is_frontier_guarded s =
  match Tgd.body s with
  | [] -> true
  | body -> covering_atom (Tgd.frontier s) body <> None

let in_class c s =
  match c with
  | Full -> is_full s
  | Linear -> is_linear s
  | Guarded -> is_guarded s
  | Frontier_guarded -> is_frontier_guarded s

let all_in_class c sigma = List.for_all (in_class c) sigma

let guard s =
  match Tgd.body s with
  | [] -> None
  | body -> covering_atom (Tgd.universal_vars s) body

let frontier_guard s =
  match Tgd.body s with
  | [] -> None
  | body -> covering_atom (Tgd.frontier s) body

let classify s =
  List.filter
    (fun c -> in_class c s)
    [ Linear; Guarded; Frontier_guarded; Full ]

let cls_name = function
  | Full -> "full"
  | Linear -> "linear"
  | Guarded -> "guarded"
  | Frontier_guarded -> "frontier-guarded"

let pp_cls ppf c = Fmt.string ppf (cls_name c)
