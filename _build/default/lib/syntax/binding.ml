type t = Constant.t Variable.Map.t

let empty = Variable.Map.empty
let is_empty = Variable.Map.is_empty
let singleton = Variable.Map.singleton
let of_list l = List.fold_left (fun m (v, c) -> Variable.Map.add v c m) empty l
let to_list = Variable.Map.bindings
let find = Variable.Map.find_opt
let mem = Variable.Map.mem
let add = Variable.Map.add

let extend v c h =
  match Variable.Map.find_opt v h with
  | None -> Some (Variable.Map.add v c h)
  | Some c' -> if Constant.equal c c' then Some h else None

let domain h =
  Variable.Map.fold (fun v _ acc -> Variable.Set.add v acc) h Variable.Set.empty

let range h =
  Variable.Map.fold (fun _ c acc -> Constant.Set.add c acc) h Constant.Set.empty

let cardinal = Variable.Map.cardinal
let restrict vs h = Variable.Map.filter (fun v _ -> Variable.Set.mem v vs) h

let merge h g =
  Variable.Map.fold
    (fun v c acc ->
      match acc with None -> None | Some m -> extend v c m)
    g (Some h)

let apply_atom h a =
  Atom.apply
    (fun v ->
      match find v h with Some c -> Term.const c | None -> Term.var v)
    a

let ground_atom h a =
  let exception Unbound in
  try
    Some
      (Fact.make_arr (Atom.rel a)
         (Array.map
            (fun t ->
              match t with
              | Term.Const c -> c
              | Term.Var v -> (
                match find v h with Some c -> c | None -> raise Unbound))
            (Atom.args_arr a)))
  with Unbound -> None

let ground_atoms h atoms =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | a :: rest -> (
      match ground_atom h a with
      | Some f -> go (f :: acc) rest
      | None -> None)
  in
  go [] atoms

let is_injective h =
  let range_card = Constant.Set.cardinal (range h) in
  range_card = cardinal h

let compare = Variable.Map.compare Constant.compare
let equal h g = compare h g = 0

let pp ppf h =
  Fmt.pf ppf "[%a]"
    Fmt.(
      list ~sep:(any "; ")
        (pair ~sep:(any "↦") Variable.pp Constant.pp))
    (to_list h)
