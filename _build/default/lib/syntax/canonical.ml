(* Canonicalization minimizes over atom orderings: for each permutation of
   the body and of the head, variables are renamed to x0, x1, … in order of
   first occurrence (body first, then head), and the smallest resulting tgd
   under [Tgd.compare] wins.  Atom lists in a [Tgd.t] are kept sorted by
   [Tgd.make], so equal results denote renaming-equivalent inputs. *)

let rename_by_occurrence body head =
  let counter = ref 0 in
  let map = Hashtbl.create 16 in
  let rename_var v =
    match Hashtbl.find_opt map v with
    | Some w -> w
    | None ->
      let w = Variable.indexed "x" !counter in
      incr counter;
      Hashtbl.add map v w;
      w
  in
  let rename_atom a = Atom.apply (fun v -> Term.var (rename_var v)) a in
  let body' = List.map rename_atom body in
  let head' = List.map rename_atom head in
  Tgd.make ~body:body' ~head:head'

let tgd s =
  let body_perms = Combinat.permutations (Tgd.body s) in
  let head_perms = List.of_seq (Combinat.permutations (Tgd.head s)) in
  let best = ref None in
  Seq.iter
    (fun bp ->
      List.iter
        (fun hp ->
          let candidate = rename_by_occurrence bp hp in
          match !best with
          | None -> best := Some candidate
          | Some b -> if Tgd.compare candidate b < 0 then best := Some candidate)
        head_perms)
    body_perms;
  match !best with
  | Some b -> b
  | None -> assert false (* a tgd has a non-empty head, so ≥1 permutation *)

let equal_up_to_renaming s t = Tgd.equal (tgd s) (tgd t)

let dedup l =
  List.map tgd l |> List.sort_uniq Tgd.compare
