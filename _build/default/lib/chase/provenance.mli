(** Provenance-tracking chase: why is each fact in the result?

    Wraps {!Chase.restricted} with the [on_fire] hook and records, for every
    derived fact, the tgd and trigger homomorphism that first produced it.
    [explain] reconstructs the full derivation tree down to the input
    facts — the "why" provenance of the chase, surfaced by
    [tgdtool chase --explain]. *)

open Tgd_syntax
open Tgd_instance

type source =
  | Input
  | Derived of { rule : Tgd.t; trigger : Binding.t; premises : Fact.t list }
      (** [premises] are the grounded body facts of the firing trigger. *)

type t

val restricted :
  ?budget:Chase.budget -> Tgd.t list -> Instance.t -> Chase.result * t

val source_of : t -> Fact.t -> source option
(** [None] for facts that are in neither the input nor the result. *)

type tree = { fact : Fact.t; source : source; children : tree list }

val explain : t -> Fact.t -> tree option
(** The full derivation tree (premises recursively explained).  Input facts
    are leaves. *)

val pp_tree : tree Fmt.t

val depth : tree -> int
(** 0 for input facts. *)
