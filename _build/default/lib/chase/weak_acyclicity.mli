(** Weak acyclicity of a set of tgds (Fagin–Kolaitis–Miller–Popa).

    Weak acyclicity guarantees termination of the restricted chase in
    polynomially many rounds; {!Entailment} uses it to promote
    budget-exhausted answers to definite ones where possible. *)

open Tgd_syntax

type position = Relation.t * int
(** [(R, i)] — the [i]-th position (0-based) of relation [R]. *)

type edge = { source : position; target : position; special : bool }

val dependency_graph : Tgd.t list -> edge list
(** Regular edges propagate a universal variable from a body position to a
    head position; special edges go from the body positions of each
    head-occurring universal variable to the positions of the existential
    variables of the same tgd. *)

val is_weakly_acyclic : Tgd.t list -> bool
(** No cycle goes through a special edge. *)

val pp_position : position Fmt.t
