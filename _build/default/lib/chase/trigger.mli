(** Triggers — body homomorphisms of a tgd into an instance. *)

open Tgd_syntax
open Tgd_instance

type t = { tgd : Tgd.t; hom : Binding.t }

val all : Tgd.t -> Instance.t -> t Seq.t
(** Every homomorphism of the body into the instance. *)

val active : Tgd.t -> Instance.t -> t Seq.t
(** Triggers with no extension satisfying the head ("active" in the
    restricted-chase sense). *)

val is_active : t -> Instance.t -> bool

val key : t -> string
(** Stable identification of a trigger (tgd + restriction of the hom to the
    body variables), for the oblivious chase's fired-set. *)

val pp : t Fmt.t
