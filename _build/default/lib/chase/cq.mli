(** Certain answers to (Boolean and non-Boolean) conjunctive queries under a
    tgd ontology — ontology-mediated query answering, the data-intensive task
    motivating tgd-ontologies in the paper's introduction. *)

open Tgd_syntax
open Tgd_instance

type query = { head_vars : Variable.t list; atoms : Atom.t list }

val boolean : Atom.t list -> query
val make : Variable.t list -> Atom.t list -> query
(** Raises [Invalid_argument] when a head variable does not occur in the
    atoms. *)

val certain_boolean :
  ?budget:Chase.budget -> Tgd.t list -> Instance.t -> Atom.t list ->
  Entailment.answer
(** Is the BCQ certain, i.e. true in every model of [Σ] containing the
    database? *)

val certain_answers :
  ?budget:Chase.budget -> Tgd.t list -> Instance.t -> query ->
  Constant.t list list * [ `Exact | `Lower_bound ]
(** Tuples of database constants that are certain answers.  [`Lower_bound]
    when the chase budget was exhausted (every returned tuple is certain, but
    more may exist — for monotone queries the missing answers can only be
    over nulls, so over database constants exhaustion matters only for
    certainty of absence). *)

val contained : query -> query -> bool
(** [contained q1 q2] — is [q1 ⊆ q2] (the answers of [q1] always among the
    answers of [q2])?  Decided by the Chandra–Merlin homomorphism theorem:
    evaluate [q2] on the canonical (frozen) database of [q1] with the head
    variables pinned.  Raises [Invalid_argument] when the head arities
    differ. *)

val equivalent_queries : query -> query -> bool

val body_acyclic : query -> bool
(** α-acyclicity of the query's hypergraph (GYO) — acyclic CQs evaluate in
    polynomial time and are the shape of guarded tgd bodies. *)
