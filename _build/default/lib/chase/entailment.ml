open Tgd_syntax
open Tgd_instance

type answer =
  | Proved
  | Disproved
  | Unknown

let answer_to_string = function
  | Proved -> "proved"
  | Disproved -> "disproved"
  | Unknown -> "unknown"

let pp_answer ppf a = Fmt.string ppf (answer_to_string a)

let frozen_counter = ref 0

let freeze atoms =
  let vars =
    List.fold_left
      (fun acc a -> Variable.Set.union acc (Atom.vars a))
      Variable.Set.empty atoms
  in
  Variable.Set.fold
    (fun v acc ->
      incr frozen_counter;
      Binding.add v
        (Constant.named (Printf.sprintf "~%s.%d" (Variable.name v) !frozen_counter))
        acc)
    vars Binding.empty

let freeze_instance schema atoms =
  let b = freeze atoms in
  let facts =
    List.map
      (fun a ->
        match Binding.ground_atom b a with
        | Some f -> f
        | None -> assert false)
      atoms
  in
  (b, Instance.of_facts schema facts)

let schema_of_tgds sigma extra =
  let rels =
    List.concat_map
      (fun s ->
        List.map Atom.rel (Tgd.body s) @ List.map Atom.rel (Tgd.head s))
      (extra :: sigma)
  in
  Schema.make rels

let entails ?budget sigma s =
  let schema = schema_of_tgds sigma s in
  let frozen, db = freeze_instance schema (Tgd.body s) in
  let result = Chase.restricted ?budget sigma db in
  let partial = Binding.restrict (Tgd.frontier s) frozen in
  if Hom.exists_hom ~partial (Tgd.head s) result.Chase.instance then Proved
  else if Chase.is_model result then Disproved
  else Unknown

let combine answers =
  List.fold_left
    (fun acc a ->
      match acc, a with
      | Disproved, _ | _, Disproved -> Disproved
      | Unknown, _ | _, Unknown -> Unknown
      | Proved, Proved -> Proved)
    Proved answers

let entails_set ?budget sigma sigma' =
  combine (List.map (entails ?budget sigma) sigma')

let equivalent ?budget sigma sigma' =
  combine [ entails_set ?budget sigma sigma'; entails_set ?budget sigma' sigma ]

let entails_egd _sigma e =
  if Egd.is_trivial e then Proved else Disproved

let entailed_subset ?budget sigma candidates =
  List.partition (fun s -> entails ?budget sigma s = Proved) candidates
