open Tgd_syntax
open Tgd_instance

type stats = { rounds : int; derived : int }

let check_full sigma =
  if
    List.exists
      (fun t -> not (Variable.Set.is_empty (Tgd.existential_vars t)))
      sigma
  then invalid_arg "Datalog.saturate: rules must be existential-free"

(* All body homs where atom [pivot] matches a fact of [delta] and the other
   atoms match [full]. *)
let pivot_homs full delta body pivot =
  let rec split i acc = function
    | [] -> assert false
    | a :: rest ->
      if i = pivot then (a, List.rev_append acc rest)
      else split (i + 1) (a :: acc) rest
  in
  let pivot_atom, others = split 0 [] body in
  Fact.Set.to_seq (Instance.facts_of delta (Atom.rel pivot_atom))
  |> Seq.concat_map (fun f ->
         match Hom.match_atom Binding.empty pivot_atom f with
         | Some partial -> Hom.all_homs ~partial others full
         | None -> Seq.empty)

let derive full delta rule =
  match Tgd.body rule with
  | [] ->
    (* a bodiless full tgd would have no variables at all, which Tgd.make
       rejects — unreachable, but harmless *)
    Seq.empty
  | body ->
    Seq.init (List.length body) (fun i -> i)
    |> Seq.concat_map (fun pivot -> pivot_homs full delta body pivot)
    |> Seq.concat_map (fun h ->
           match Binding.ground_atoms h (Tgd.head rule) with
           | Some facts -> List.to_seq facts
           | None -> Seq.empty)

let saturate_with_stats ?(max_facts = 1_000_000) sigma inst =
  check_full sigma;
  let schema =
    List.fold_left
      (fun acc t ->
        Schema.union acc
          (Schema.make (List.map Atom.rel (Tgd.body t @ Tgd.head t))))
      (Instance.schema inst) sigma
  in
  let full = ref (Instance.of_facts ~dom:(Constant.Set.elements (Instance.dom inst)) schema (Instance.fact_list inst)) in
  (* the first delta is the instance itself: every rule must see it *)
  let delta = ref !full in
  let rounds = ref 0 in
  let derived = ref 0 in
  while not (Instance.is_empty !delta) do
    incr rounds;
    let fresh = ref (Instance.empty schema) in
    List.iter
      (fun rule ->
        Seq.iter
          (fun fact ->
            if not (Instance.mem !full fact) && not (Instance.mem !fresh fact)
            then begin
              fresh := Instance.add_fact !fresh fact;
              incr derived;
              if !derived + Instance.fact_count !full > max_facts then
                failwith "Datalog.saturate: max_facts exceeded"
            end)
          (derive !full !delta rule))
      sigma;
    full := Instance.union !full !fresh;
    delta := !fresh
  done;
  (!full, { rounds = !rounds; derived = !derived })

let saturate ?max_facts sigma inst = fst (saturate_with_stats ?max_facts sigma inst)

let entails sigma goal =
  check_full sigma;
  check_full [ goal ];
  let schema =
    Schema.make
      (List.concat_map
         (fun t -> List.map Atom.rel (Tgd.body t @ Tgd.head t))
         (goal :: sigma))
  in
  let frozen, db = Entailment.freeze_instance schema (Tgd.body goal) in
  let saturated = saturate sigma db in
  match Binding.ground_atoms frozen (Tgd.head goal) with
  | Some facts -> List.for_all (Instance.mem saturated) facts
  | None -> false
