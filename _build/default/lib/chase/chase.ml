open Tgd_syntax
open Tgd_instance

type budget = { max_rounds : int; max_facts : int }

let default_budget = { max_rounds = 64; max_facts = 20_000 }

type outcome =
  | Terminated
  | Budget_exhausted

type result = {
  instance : Instance.t;
  outcome : outcome;
  rounds : int;
  fired : int;
}

let rec max_null_in_const acc = function
  | Constant.Null i -> max acc i
  | Constant.Pair (a, b) -> max_null_in_const (max_null_in_const acc a) b
  | Constant.Named _ | Constant.Indexed _ -> acc

let max_null inst =
  Constant.Set.fold (fun c acc -> max_null_in_const acc c) (Instance.dom inst) 0

let fire ?(on_fire = fun _ _ -> ()) null_counter inst tr =
  let tgd = tr.Trigger.tgd in
  let h =
    Variable.Set.fold
      (fun z acc ->
        incr null_counter;
        Binding.add z (Constant.null !null_counter) acc)
      (Tgd.existential_vars tgd)
      tr.Trigger.hom
  in
  match Binding.ground_atoms h (Tgd.head tgd) with
  | Some facts ->
    on_fire tr facts;
    List.fold_left Instance.add_fact inst facts
  | None -> assert false (* body ∪ existential vars cover the head *)

let run ~recheck_active ~skip_fired ?(budget = default_budget) ?on_fire sigma
    inst =
  let null_counter = ref (max_null inst) in
  let fired_keys : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let current = ref inst in
  let rounds = ref 0 in
  let fired = ref 0 in
  let out_of_budget = ref false in
  let progressed = ref true in
  while !progressed && (not !out_of_budget) && !rounds < budget.max_rounds do
    incr rounds;
    progressed := false;
    let snapshot = !current in
    List.iter
      (fun tgd ->
        if not !out_of_budget then
          Seq.iter
            (fun tr ->
              if not !out_of_budget then begin
                let skip =
                  (skip_fired && Hashtbl.mem fired_keys (Trigger.key tr))
                  || (recheck_active && not (Trigger.is_active tr !current))
                in
                if not skip then begin
                  if skip_fired then Hashtbl.add fired_keys (Trigger.key tr) ();
                  current := fire ?on_fire null_counter !current tr;
                  incr fired;
                  progressed := true;
                  if Instance.fact_count !current > budget.max_facts then
                    out_of_budget := true
                end
              end)
            (if recheck_active then Trigger.active tgd snapshot
             else Trigger.all tgd snapshot))
      sigma
  done;
  let outcome =
    if !out_of_budget then Budget_exhausted
    else if !progressed then
      (* the loop stopped because of max_rounds while still making progress *)
      if !rounds >= budget.max_rounds
         && List.exists
              (fun tgd -> not (Seq.is_empty (Trigger.active tgd !current)))
              sigma
      then Budget_exhausted
      else Terminated
    else Terminated
  in
  { instance = !current; outcome; rounds = !rounds; fired = !fired }

let restricted ?budget ?on_fire sigma inst =
  run ~recheck_active:true ~skip_fired:false ?budget ?on_fire sigma inst

let oblivious ?budget ?on_fire sigma inst =
  run ~recheck_active:false ~skip_fired:true ?budget ?on_fire sigma inst

let is_model r = r.outcome = Terminated

let pp_result ppf r =
  Fmt.pf ppf "@[<v>outcome: %s; rounds: %d; fired: %d; facts: %d@]"
    (match r.outcome with
    | Terminated -> "terminated"
    | Budget_exhausted -> "budget-exhausted")
    r.rounds r.fired
    (Instance.fact_count r.instance)
