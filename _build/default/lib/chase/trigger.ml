open Tgd_syntax
open Tgd_instance

type t = { tgd : Tgd.t; hom : Binding.t }

let all tgd inst =
  Hom.all_homs (Tgd.body tgd) inst |> Seq.map (fun hom -> { tgd; hom })

let is_active tr inst =
  let partial = Binding.restrict (Tgd.frontier tr.tgd) tr.hom in
  not (Hom.exists_hom ~partial (Tgd.head tr.tgd) inst)

let active tgd inst = Seq.filter (fun tr -> is_active tr inst) (all tgd inst)

let key tr =
  let h = Binding.restrict (Tgd.universal_vars tr.tgd) tr.hom in
  Fmt.str "%a|%a" Tgd.pp tr.tgd Binding.pp h

let pp ppf tr = Fmt.pf ppf "⟨%a, %a⟩" Tgd.pp tr.tgd Binding.pp tr.hom
