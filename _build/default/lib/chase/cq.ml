open Tgd_syntax
open Tgd_instance

type query = { head_vars : Variable.t list; atoms : Atom.t list }

let boolean atoms = { head_vars = []; atoms }

let make head_vars atoms =
  let vs =
    List.fold_left
      (fun acc a -> Variable.Set.union acc (Atom.vars a))
      Variable.Set.empty atoms
  in
  if not (List.for_all (fun v -> Variable.Set.mem v vs) head_vars) then
    invalid_arg "Cq.make: head variable not in query body";
  { head_vars; atoms }

let chase_db ?budget sigma db = Chase.restricted ?budget sigma db

let certain_boolean ?budget sigma db atoms =
  let result = chase_db ?budget sigma db in
  if Satisfaction.boolean_cq result.Chase.instance atoms then Entailment.Proved
  else if Chase.is_model result then Entailment.Disproved
  else Entailment.Unknown

let certain_answers ?budget sigma db q =
  let result = chase_db ?budget sigma db in
  let universal = result.Chase.instance in
  let db_consts = Instance.adom db in
  let answers =
    Hom.all_homs q.atoms universal
    |> Seq.filter_map (fun h ->
           let tuple =
             List.map
               (fun v ->
                 match Binding.find v h with
                 | Some c -> c
                 | None -> assert false)
               q.head_vars
           in
           (* certain answers range over database constants only *)
           if List.for_all (fun c -> Constant.Set.mem c db_consts) tuple then
             Some tuple
           else None)
    |> List.of_seq
    |> List.sort_uniq (List.compare Constant.compare)
  in
  let precision = if Chase.is_model result then `Exact else `Lower_bound in
  (answers, precision)

let contained q1 q2 =
  if List.length q1.head_vars <> List.length q2.head_vars then
    invalid_arg "Cq.contained: head arities differ";
  let schema =
    Tgd_syntax.Schema.make
      (List.map Atom.rel (q1.atoms @ q2.atoms))
  in
  let frozen, db = Entailment.freeze_instance schema q1.atoms in
  (* pin q2's head variables to q1's frozen head images; a repeated head
     variable in q2 facing distinct images is an immediate non-containment *)
  let partial =
    List.fold_left2
      (fun acc v2 v1 ->
        match acc, Binding.find v1 frozen with
        | Some b, Some c -> Binding.extend v2 c b
        | _, None -> acc
        | None, _ -> None)
      (Some Binding.empty) q2.head_vars q1.head_vars
  in
  match partial with
  | None -> false
  | Some partial -> Hom.exists_hom ~partial q2.atoms db

let equivalent_queries q1 q2 = contained q1 q2 && contained q2 q1

let body_acyclic q = Tgd_syntax.Hypergraph.is_acyclic q.atoms
