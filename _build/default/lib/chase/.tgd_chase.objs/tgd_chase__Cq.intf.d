lib/chase/cq.mli: Atom Chase Constant Entailment Instance Tgd Tgd_instance Tgd_syntax Variable
