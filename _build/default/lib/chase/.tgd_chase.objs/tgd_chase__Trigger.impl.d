lib/chase/trigger.ml: Binding Fmt Hom Seq Tgd Tgd_instance Tgd_syntax
