lib/chase/entailment.ml: Atom Binding Chase Constant Egd Fmt Hom Instance List Printf Schema Tgd Tgd_instance Tgd_syntax Variable
