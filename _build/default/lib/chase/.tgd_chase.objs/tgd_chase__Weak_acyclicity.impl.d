lib/chase/weak_acyclicity.ml: Array Atom Fmt Int List Relation Term Tgd Tgd_syntax Variable
