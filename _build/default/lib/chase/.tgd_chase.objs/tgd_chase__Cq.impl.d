lib/chase/cq.ml: Atom Binding Chase Constant Entailment Hom Instance List Satisfaction Seq Tgd_instance Tgd_syntax Variable
