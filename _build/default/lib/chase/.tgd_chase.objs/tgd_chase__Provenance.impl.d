lib/chase/provenance.ml: Binding Chase Fact Fmt Hashtbl Instance List Tgd Tgd_instance Tgd_syntax Trigger
