lib/chase/entailment.mli: Atom Binding Chase Egd Fmt Instance Schema Tgd Tgd_instance Tgd_syntax
