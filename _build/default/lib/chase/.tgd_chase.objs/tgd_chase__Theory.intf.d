lib/chase/theory.mli: Atom Chase Constant Denial Dependency Egd Entailment Fmt Instance Tgd Tgd_instance Tgd_syntax
