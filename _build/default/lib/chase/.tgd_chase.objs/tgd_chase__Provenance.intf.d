lib/chase/provenance.mli: Binding Chase Fact Fmt Instance Tgd Tgd_instance Tgd_syntax
