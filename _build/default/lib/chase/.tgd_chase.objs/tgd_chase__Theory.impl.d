lib/chase/theory.ml: Binding Chase Constant Denial Dependency Egd Entailment Fmt Hom Instance List Satisfaction Seq Tgd Tgd_instance Tgd_syntax
