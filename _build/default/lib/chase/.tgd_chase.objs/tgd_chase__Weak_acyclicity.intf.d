lib/chase/weak_acyclicity.mli: Fmt Relation Tgd Tgd_syntax
