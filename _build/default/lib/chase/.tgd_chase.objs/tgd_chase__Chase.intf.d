lib/chase/chase.mli: Fact Fmt Instance Tgd Tgd_instance Tgd_syntax Trigger
