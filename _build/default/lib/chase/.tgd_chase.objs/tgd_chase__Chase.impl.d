lib/chase/chase.ml: Binding Constant Fmt Hashtbl Instance List Seq Tgd Tgd_instance Tgd_syntax Trigger Variable
