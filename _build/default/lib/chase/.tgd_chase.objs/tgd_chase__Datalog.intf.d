lib/chase/datalog.mli: Instance Tgd Tgd_instance Tgd_syntax
