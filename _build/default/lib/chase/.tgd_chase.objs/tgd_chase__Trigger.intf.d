lib/chase/trigger.mli: Binding Fmt Instance Seq Tgd Tgd_instance Tgd_syntax
