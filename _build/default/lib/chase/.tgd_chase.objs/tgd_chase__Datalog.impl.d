lib/chase/datalog.ml: Atom Binding Constant Entailment Fact Hom Instance List Schema Seq Tgd Tgd_instance Tgd_syntax Variable
