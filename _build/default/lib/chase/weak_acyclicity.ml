open Tgd_syntax

type position = Relation.t * int

type edge = { source : position; target : position; special : bool }

let positions_of_var atoms v =
  List.concat_map
    (fun a ->
      Atom.args_arr a
      |> Array.to_list
      |> List.mapi (fun i t -> (i, t))
      |> List.filter_map (fun (i, t) ->
             match t with
             | Term.Var w when Variable.equal v w -> Some (Atom.rel a, i)
             | Term.Var _ | Term.Const _ -> None))
    atoms

let dependency_graph sigma =
  List.concat_map
    (fun tgd ->
      let body = Tgd.body tgd in
      let head = Tgd.head tgd in
      let frontier = Tgd.frontier tgd in
      let existentials = Tgd.existential_vars tgd in
      let ex_positions =
        Variable.Set.fold
          (fun z acc -> positions_of_var head z @ acc)
          existentials []
      in
      Variable.Set.fold
        (fun x acc ->
          let sources = positions_of_var body x in
          let regular_targets = positions_of_var head x in
          let edges_for src =
            List.map
              (fun tgt -> { source = src; target = tgt; special = false })
              regular_targets
            @ List.map
                (fun tgt -> { source = src; target = tgt; special = true })
                ex_positions
          in
          List.concat_map edges_for sources @ acc)
        frontier [])
    sigma

let position_compare (r1, i1) (r2, i2) =
  let c = Relation.compare r1 r2 in
  if c <> 0 then c else Int.compare i1 i2

(* A set of tgds is weakly acyclic iff no special edge lies on a cycle, i.e.
   iff no special edge has its endpoints in the same strongly connected
   component.  With the small graphs at hand, reachability by DFS per special
   edge is simplest. *)
let is_weakly_acyclic sigma =
  let edges = dependency_graph sigma in
  let succ p =
    List.filter_map
      (fun e -> if position_compare e.source p = 0 then Some e.target else None)
      edges
  in
  let reaches src dst =
    let visited = ref [] in
    let rec dfs p =
      if List.exists (fun q -> position_compare p q = 0) !visited then false
      else begin
        visited := p :: !visited;
        position_compare p dst = 0 || List.exists dfs (succ p)
      end
    in
    dfs src
  in
  not
    (List.exists
       (fun e -> e.special && reaches e.target e.source)
       edges)

let pp_position ppf (r, i) = Fmt.pf ppf "%s[%d]" (Relation.name r) i
