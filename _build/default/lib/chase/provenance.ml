open Tgd_syntax
open Tgd_instance

type source =
  | Input
  | Derived of { rule : Tgd.t; trigger : Binding.t; premises : Fact.t list }

type t = (Fact.t, source) Hashtbl.t

let restricted ?budget sigma inst =
  let log : t = Hashtbl.create 256 in
  Fact.Set.iter (fun f -> Hashtbl.replace log f Input) (Instance.facts inst);
  let on_fire tr facts =
    let rule = tr.Trigger.tgd in
    let premises =
      match Binding.ground_atoms tr.Trigger.hom (Tgd.body rule) with
      | Some fs -> fs
      | None -> [] (* body homs always ground the body *)
    in
    List.iter
      (fun f ->
        if not (Hashtbl.mem log f) then
          Hashtbl.replace log f
            (Derived { rule; trigger = tr.Trigger.hom; premises }))
      facts
  in
  let result = Chase.restricted ?budget ~on_fire sigma inst in
  (result, log)

let source_of log f = Hashtbl.find_opt log f

type tree = { fact : Fact.t; source : source; children : tree list }

let rec explain log f =
  match Hashtbl.find_opt log f with
  | None -> None
  | Some Input -> Some { fact = f; source = Input; children = [] }
  | Some (Derived d as source) ->
    let children = List.filter_map (explain log) d.premises in
    Some { fact = f; source; children }

let rec pp_tree ppf t =
  (match t.source with
  | Input -> Fmt.pf ppf "@[<v>%a  (input)" Fact.pp t.fact
  | Derived d -> Fmt.pf ppf "@[<v>%a  (by %a)" Fact.pp t.fact Tgd.pp d.rule);
  List.iter (fun child -> Fmt.pf ppf "@,  %a" pp_tree child) t.children;
  Fmt.pf ppf "@]"

let rec depth t =
  match t.children with
  | [] -> 0
  | children -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children
