open Tgd_syntax
open Tgd_instance

type error = { message : string; line : int; col : int }

let pp_error ppf e = Fmt.pf ppf "%d:%d: %s" e.line e.col e.message

type program = {
  schema : Schema.t;
  tgds : Tgd.t list;
  egds : Egd.t list;
  denials : Denial.t list;
  facts : Fact.t list;
}

exception Parse_error of error

let fail_at (tok : Lexer.located) message =
  raise (Parse_error { message; line = tok.line; col = tok.col })

(* ---- raw syntax tree ---- *)

type raw_atom = { name : string; args : string list; at : Lexer.located }

type raw_head_item =
  | Raw_atom of raw_atom
  | Raw_eq of string * string * Lexer.located
  | Raw_false of Lexer.located

type raw_statement =
  | Raw_fact of raw_atom list
  | Raw_rule of { body : raw_atom list; head : raw_head_item list }

type state = { mutable toks : Lexer.located list }

let peek st =
  match st.toks with
  | t :: _ -> t
  | [] -> assert false (* tokenize always ends with Eof *)

let next st =
  let t = peek st in
  (match st.toks with
  | _ :: rest when t.token <> Lexer.Eof -> st.toks <- rest
  | _ -> ());
  t

let expect st tok what =
  let t = next st in
  if t.token <> tok then
    fail_at t (Fmt.str "expected %s, found %a" what Lexer.pp_token t.token)

let parse_ident st what =
  let t = next st in
  match t.token with
  | Lexer.Ident s -> (s, t)
  | other -> fail_at t (Fmt.str "expected %s, found %a" what Lexer.pp_token other)

(* the relation name has been consumed; parse an optional argument list *)
let parse_atom_args st name at =
  match (peek st).token with
  | Lexer.Lparen ->
    ignore (next st);
    if (peek st).token = Lexer.Rparen then begin
      ignore (next st);
      { name; args = []; at }
    end
    else begin
      let rec args acc =
        let arg, _ = parse_ident st "a term" in
        let t = next st in
        match t.token with
        | Lexer.Comma -> args (arg :: acc)
        | Lexer.Rparen -> List.rev (arg :: acc)
        | _ -> fail_at t "expected ',' or ')' in the argument list"
      in
      { name; args = args []; at }
    end
  | _ -> { name; args = []; at }

let parse_atom st =
  let name, at = parse_ident st "a relation name" in
  parse_atom_args st name at

let rec parse_atom_list st acc =
  let a = parse_atom st in
  match (peek st).token with
  | Lexer.Comma ->
    ignore (next st);
    parse_atom_list st (a :: acc)
  | _ -> List.rev (a :: acc)

let parse_head_item st =
  match (peek st).token with
  | Lexer.False ->
    let t = next st in
    Raw_false t
  | _ ->
    let name, at = parse_ident st "a relation name or variable" in
    (match (peek st).token with
    | Lexer.Equals ->
      ignore (next st);
      let rhs, _ = parse_ident st "the right-hand side of the equality" in
      Raw_eq (name, rhs, at)
    | _ -> Raw_atom (parse_atom_args st name at))

let rec parse_head_items st acc =
  let item = parse_head_item st in
  match (peek st).token with
  | Lexer.Comma ->
    ignore (next st);
    parse_head_items st (item :: acc)
  | _ -> List.rev (item :: acc)

let parse_head st =
  (* optional 'exists v1,...,vk .' prefix; the variables are implicit in the
     head anyway, so we parse and discard them after a sanity check *)
  (match (peek st).token with
  | Lexer.Exists ->
    ignore (next st);
    let rec vars () =
      let _ = parse_ident st "an existential variable" in
      match (peek st).token with
      | Lexer.Comma ->
        ignore (next st);
        vars ()
      | _ -> ()
    in
    vars ();
    expect st Lexer.Dot "'.' after the existential variables"
  | _ -> ());
  parse_head_items st []

let parse_statement st =
  match (peek st).token with
  | Lexer.Arrow ->
    ignore (next st);
    let head = parse_head st in
    expect st Lexer.Dot "'.' at the end of the rule";
    Raw_rule { body = []; head }
  | _ ->
    let atoms = parse_atom_list st [] in
    let t = next st in
    (match t.token with
    | Lexer.Dot -> Raw_fact atoms
    | Lexer.Arrow ->
      let head = parse_head st in
      expect st Lexer.Dot "'.' at the end of the rule";
      Raw_rule { body = atoms; head }
    | _ -> fail_at t "expected '.' or '->'")

let parse_statements st =
  let rec go acc =
    if (peek st).token = Lexer.Eof then List.rev acc
    else go (parse_statement st :: acc)
  in
  go []

(* ---- schema inference and elaboration ---- *)

let infer_schema given statements =
  let tbl : (string, int * Lexer.located) Hashtbl.t = Hashtbl.create 16 in
  let note (a : raw_atom) =
    let arity = List.length a.args in
    match Hashtbl.find_opt tbl a.name with
    | Some (arity', _) when arity' <> arity ->
      fail_at a.at
        (Printf.sprintf "relation %s used with arities %d and %d" a.name
           arity' arity)
    | Some _ -> ()
    | None -> (
      match given with
      | Some s -> (
        match Schema.arity_of s a.name with
        | Some declared when declared <> arity ->
          fail_at a.at
            (Printf.sprintf "relation %s has declared arity %d, used with %d"
               a.name declared arity)
        | Some _ -> Hashtbl.add tbl a.name (arity, a.at)
        | None ->
          fail_at a.at
            (Printf.sprintf "relation %s is not in the given schema" a.name))
      | None -> Hashtbl.add tbl a.name (arity, a.at))
  in
  let note_head = function
    | Raw_atom a -> note a
    | Raw_eq _ | Raw_false _ -> ()
  in
  List.iter
    (function
      | Raw_fact atoms -> List.iter note atoms
      | Raw_rule { body; head } ->
        List.iter note body;
        List.iter note_head head)
    statements;
  match given with
  | Some s -> s
  | None ->
    Schema.make
      (Hashtbl.fold
         (fun name (arity, _) acc -> Relation.make name arity :: acc)
         tbl [])

let relation_of schema (a : raw_atom) =
  match Schema.find schema a.name with
  | Some r -> r
  | None -> fail_at a.at (Printf.sprintf "unknown relation %s" a.name)

let to_var_atom schema (a : raw_atom) =
  Atom.make (relation_of schema a)
    (List.map (fun v -> Term.var (Variable.make v)) a.args)

let guarded_make at f = try f () with Invalid_argument msg -> fail_at at msg

let elaborate_rule schema body head =
  let body_atoms = List.map (to_var_atom schema) body in
  let at_of = function
    | Raw_atom a -> a.at
    | Raw_eq (_, _, at) -> at
    | Raw_false at -> at
  in
  match head with
  | [ Raw_false at ] ->
    `Denial (guarded_make at (fun () -> Denial.make body_atoms))
  | [ Raw_eq (y, z, at) ] ->
    `Egd
      (guarded_make at (fun () ->
           Egd.make ~body:body_atoms (Variable.make y) (Variable.make z)))
  | items ->
    let atoms =
      List.map
        (fun item ->
          match item with
          | Raw_atom a -> to_var_atom schema a
          | Raw_eq (_, _, at) ->
            fail_at at "an equality must be the only head of its rule"
          | Raw_false at ->
            fail_at at "'false' must be the only head of its rule")
        items
    in
    let at = match items with it :: _ -> at_of it | [] -> assert false in
    `Tgd (guarded_make at (fun () -> Tgd.make ~body:body_atoms ~head:atoms))

let elaborate_fact schema (a : raw_atom) =
  Fact.make (relation_of schema a) (List.map Constant.named a.args)

let program ?schema src =
  match
    let st = { toks = Lexer.tokenize src } in
    let statements = parse_statements st in
    let schema = infer_schema schema statements in
    List.fold_left
      (fun p stmt ->
        match stmt with
        | Raw_fact atoms ->
          { p with facts = p.facts @ List.map (elaborate_fact schema) atoms }
        | Raw_rule { body; head } -> (
          match elaborate_rule schema body head with
          | `Tgd t -> { p with tgds = p.tgds @ [ t ] }
          | `Egd e -> { p with egds = p.egds @ [ e ] }
          | `Denial d -> { p with denials = p.denials @ [ d ] }))
      { schema; tgds = []; egds = []; denials = []; facts = [] }
      statements
  with
  | p -> Ok p
  | exception Parse_error e -> Error e
  | exception Lexer.Lex_error (message, line, col) ->
    Error { message; line; col }

let tgds src = Result.map (fun p -> p.tgds) (program src)

let instance ?schema src =
  Result.map
    (fun p -> Instance.of_facts p.schema p.facts)
    (program ?schema src)

let or_fail what = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%s: %a" what pp_error e)

let tgd_exn src =
  match or_fail "parse" (tgds src) with
  | [ t ] -> t
  | l -> failwith (Printf.sprintf "expected exactly one tgd, got %d" (List.length l))

let tgds_exn src = or_fail "parse" (tgds src)
let instance_exn ?schema src = or_fail "parse" (instance ?schema src)
let program_exn ?schema src = or_fail "parse" (program ?schema src)
