type token =
  | Ident of string
  | Arrow
  | Comma
  | Lparen
  | Rparen
  | Dot
  | Exists
  | Equals
  | False
  | Eof

type located = { token : token; line : int; col : int }

exception Lex_error of string * int * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let col = ref 1 in
  let pos = ref 0 in
  let out = ref [] in
  let emit token l c = out := { token; line = l; col = c } :: !out in
  let advance () =
    if !pos < n then begin
      if src.[!pos] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr pos
    end
  in
  while !pos < n do
    let c = src.[!pos] in
    let l = !line and co = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '%' || c = '#' then
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    else if c = '-' then begin
      advance ();
      if !pos < n && src.[!pos] = '>' then begin
        advance ();
        emit Arrow l co
      end
      else raise (Lex_error ("expected '>' after '-'", l, co))
    end
    else if c = ',' then (advance (); emit Comma l co)
    else if c = '(' then (advance (); emit Lparen l co)
    else if c = ')' then (advance (); emit Rparen l co)
    else if c = '.' then (advance (); emit Dot l co)
    else if c = '=' then (advance (); emit Equals l co)
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      let word = String.sub src start (!pos - start) in
      if String.equal word "exists" then emit Exists l co
      else if String.equal word "false" then emit False l co
      else emit (Ident word) l co
    end
    else raise (Lex_error (Printf.sprintf "unexpected character %C" c, l, co))
  done;
  emit Eof !line !col;
  List.rev !out

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %S" s
  | Arrow -> Fmt.string ppf "'->'"
  | Comma -> Fmt.string ppf "','"
  | Lparen -> Fmt.string ppf "'('"
  | Rparen -> Fmt.string ppf "')'"
  | Dot -> Fmt.string ppf "'.'"
  | Exists -> Fmt.string ppf "'exists'"
  | Equals -> Fmt.string ppf "'='"
  | False -> Fmt.string ppf "'false'"
  | Eof -> Fmt.string ppf "end of input"
