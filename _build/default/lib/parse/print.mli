(** Serialization back to the surface syntax.

    Everything printed by this module re-parses to the same program (up to
    variable renaming); used by [tgdtool rewrite -o] and the golden tests. *)

open Tgd_syntax

val tgd : Tgd.t -> string
(** One statement, ['.']-terminated. *)

val egd : Egd.t -> string
val denial : Denial.t -> string
val fact : Fact.t -> string
(** Raises [Invalid_argument] on facts whose constants do not render as
    identifiers (pairs, nulls): the surface syntax has no notation for
    them. *)

val tgds : Tgd.t list -> string
(** One statement per line. *)

val program : Parse.program -> string
(** Sections ordered: tgds, egds, denials, facts. *)

val to_file : string -> string -> unit
(** [to_file path contents]. *)
