(** Parser for a small Datalog± surface syntax.

    A program is a sequence of statements terminated by ['.']:

    {v
    % guarded tgds (identifiers in rules are variables)
    R(x,y), P(x) -> T(x).
    R(x,y) -> exists z. R(y,z).
    -> exists z. Start(z).        % bodiless tgd
    E(x,y), E(x,z) -> y = z.      % egd
    R(x), Forbidden(x) -> false.  % denial constraint
    Aux.                          % 0-ary atoms may omit parentheses
    R(a,b). P(a).                 % statements without '->' are facts
    v}

    Identifiers occurring in rules denote variables; identifiers occurring in
    fact statements denote constants.  Schemas are inferred (arity conflicts
    are reported as errors) unless one is supplied. *)

open Tgd_syntax
open Tgd_instance

type error = { message : string; line : int; col : int }

val pp_error : error Fmt.t

type program = {
  schema : Schema.t;
  tgds : Tgd.t list;
  egds : Egd.t list;
  denials : Denial.t list;
  facts : Fact.t list;
}

val program : ?schema:Schema.t -> string -> (program, error) result
val tgds : string -> (Tgd.t list, error) result
(** Convenience projection; errors if the source parses but is not a pure
    tgd program would be surprising, so egds/denials are simply ignored
    here — use {!program} for mixed theories. *)

val instance : ?schema:Schema.t -> string -> (Instance.t, error) result
(** Facts only; the instance's schema is the inferred (or given) one. *)

val tgd_exn : string -> Tgd.t
(** Parse exactly one tgd; raises [Failure] with a readable message
    otherwise.  Convenience for tests, examples and benches. *)

val tgds_exn : string -> Tgd.t list
val instance_exn : ?schema:Schema.t -> string -> Instance.t
val program_exn : ?schema:Schema.t -> string -> program
