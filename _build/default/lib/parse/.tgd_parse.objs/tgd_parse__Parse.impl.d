lib/parse/parse.ml: Atom Constant Denial Egd Fact Fmt Hashtbl Instance Lexer List Printf Relation Result Schema Term Tgd Tgd_instance Tgd_syntax Variable
