lib/parse/print.mli: Denial Egd Fact Parse Tgd Tgd_syntax
