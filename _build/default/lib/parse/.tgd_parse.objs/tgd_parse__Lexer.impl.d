lib/parse/lexer.ml: Fmt List Printf String
