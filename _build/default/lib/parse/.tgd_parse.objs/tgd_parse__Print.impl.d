lib/parse/print.ml: Atom Constant Denial Egd Fact Fmt List Parse Printf Relation String Tgd Tgd_syntax
