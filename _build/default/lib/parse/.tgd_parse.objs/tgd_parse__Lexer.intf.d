lib/parse/lexer.mli: Fmt
