lib/parse/parse.mli: Denial Egd Fact Fmt Instance Schema Tgd Tgd_instance Tgd_syntax
