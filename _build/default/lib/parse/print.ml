open Tgd_syntax

let tgd t = Fmt.str "%a." Tgd.pp t
let egd e = Fmt.str "%a." Egd.pp e
let denial d = Fmt.str "%a -> false." Fmt.(list ~sep:(any ", ") Atom.pp) (Denial.body d)

let constant_ident c =
  match c with
  | Constant.Named s
    when String.length s > 0
         && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
    -> s
  | _ ->
    invalid_arg
      (Fmt.str "Print.fact: constant %a has no surface notation" Constant.pp c)

let fact f =
  if Fact.tuple f = [] then Printf.sprintf "%s." (Relation.name (Fact.rel f))
  else
    Printf.sprintf "%s(%s)."
      (Relation.name (Fact.rel f))
      (String.concat "," (List.map constant_ident (Fact.tuple f)))

let tgds l = String.concat "\n" (List.map tgd l)

let program (p : Parse.program) =
  let sections =
    List.map tgd p.Parse.tgds
    @ List.map egd p.Parse.egds
    @ List.map denial p.Parse.denials
    @ List.map fact p.Parse.facts
  in
  String.concat "\n" sections ^ if sections = [] then "" else "\n"

let to_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
