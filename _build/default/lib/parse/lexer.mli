(** Tokenizer for the Datalog± surface syntax. *)

type token =
  | Ident of string
  | Arrow          (** [->] *)
  | Comma
  | Lparen
  | Rparen
  | Dot
  | Exists
  | Equals         (** [=] *)
  | False          (** the keyword [false] (denial-constraint head) *)
  | Eof

type located = { token : token; line : int; col : int }

exception Lex_error of string * int * int
(** message, line, column (1-based). *)

val tokenize : string -> located list
(** Comments run from [%] or [#] to end of line.  Identifiers are
    [A-Za-z0-9_'] sequences starting with a letter or underscore; the
    keywords [exists] and [false] lex as {!Exists} and {!False}. *)

val pp_token : token Fmt.t
