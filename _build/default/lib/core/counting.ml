open Tgd_syntax

let b = Bigint.of_int

let linear_bodies_bound schema ~n =
  Bigint.mul (b (Schema.size schema)) (Bigint.pow (b n) (Schema.max_arity schema))

let exponent schema k =
  match
    Bigint.to_int_opt
      (Bigint.mul (b (Schema.size schema))
         (Bigint.pow (b k) (Schema.max_arity schema)))
  with
  | Some e -> e
  | None -> invalid_arg "Counting: exponent does not fit in an int"

let guarded_bodies_bound schema ~n =
  Bigint.pow Bigint.two (exponent schema n)

let heads_bound schema ~n ~m =
  Bigint.pow Bigint.two (exponent schema (n + m))

let linear_candidates_bound schema ~n ~m =
  Bigint.mul (linear_bodies_bound schema ~n) (heads_bound schema ~n ~m)

let guarded_candidates_bound schema ~n ~m =
  Bigint.mul (guarded_bodies_bound schema ~n) (heads_bound schema ~n ~m)

let tgd_size_bound schema ~n ~m =
  Bigint.mul
    (b (Schema.max_arity schema * Schema.size schema))
    (Bigint.pow (b (n + m)) (Schema.max_arity schema))

let exact_atom_count schema ~vars =
  List.fold_left
    (fun acc r ->
      acc
      + int_of_float (float_of_int vars ** float_of_int (Relation.arity r)))
    0
    (Schema.relations schema)
