open Tgd_syntax
open Tgd_instance

let canonical_domain k = List.init k Constant.indexed

let all_facts schema domain =
  List.concat_map
    (fun r ->
      Combinat.tuples domain (Relation.arity r)
      |> Seq.map (fun tuple -> Fact.make r tuple)
      |> List.of_seq)
    (Schema.relations schema)

let count schema k =
  let exponent =
    List.fold_left
      (fun acc r ->
        acc
        + int_of_float (float_of_int k ** float_of_int (Relation.arity r)))
      0
      (Schema.relations schema)
  in
  Bigint.pow Bigint.two exponent

let instances schema ~dom_size =
  let domain = canonical_domain dom_size in
  let facts = all_facts schema domain in
  Combinat.subsets facts
  |> Seq.map (fun fs -> Instance.of_facts ~dom:domain schema fs)

let instances_up_to schema k =
  Seq.concat_map
    (fun dom_size -> instances schema ~dom_size)
    (Seq.init (k + 1) (fun i -> i))

let models sigma schema ~dom_size =
  Seq.filter (fun i -> Satisfaction.tgds i sigma) (instances schema ~dom_size)

let models_up_to sigma schema k =
  Seq.filter (fun i -> Satisfaction.tgds i sigma) (instances_up_to schema k)

let subinstances_le i ~max_adom =
  Combinat.subsets_up_to max_adom (Constant.Set.elements (Instance.adom i))
  |> Seq.map (fun d -> Instance.induced i (Constant.set_of_list d))
