(** Finite-countermodel search — the complement of the chase.

    Chase-based entailment ({!Tgd_chase.Entailment}) can prove [Σ ⊨ σ] and
    can disprove it only when the chase terminates.  This module attacks the
    other side: it searches for a {e finite} countermodel — a model of [Σ]
    containing the frozen body of [σ] whose frozen head fails — over domains
    of bounded size.  Any hit definitively disproves entailment (the paper's
    remark in Section 10 that its results relativize to finite instances is
    what makes finite refutation meaningful here).

    The combination {!entails} is strictly more complete than either
    procedure alone: chase-provable ⇒ [Proved], finite-refutable ⇒
    [Disproved], otherwise [Unknown]. *)

open Tgd_syntax
open Tgd_instance

val countermodel :
  ?extra:int -> Tgd.t list -> Tgd.t -> Instance.t option
(** [countermodel sigma goal] searches instances over the frozen body's
    constants plus at most [extra] (default 1) fresh elements: a model of
    [sigma] containing the frozen body on which the frozen head fails.
    Exhaustive within the bound — exponential in the number of possible
    facts, so keep schemas and [extra] small. *)

val entails :
  ?budget:Tgd_chase.Chase.budget -> ?extra:int -> Tgd.t list -> Tgd.t ->
  Tgd_chase.Entailment.answer
(** Chase first; on [Unknown], try {!countermodel}. *)

val entails_set :
  ?budget:Tgd_chase.Chase.budget -> ?extra:int -> Tgd.t list -> Tgd.t list ->
  Tgd_chase.Entailment.answer
