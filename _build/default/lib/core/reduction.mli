(** The Appendix F lower-bound reductions.

    Theorem 9.1's 2EXPTIME-hardness reduces atomic query answering under
    guarded tgds to Rewrite(GTGD, LTGD): from [Σ ∈ GTGD] over S and an
    atomic query [∃x̄ Q(x̄)], build [Σ' = Σ'_1 ∪ Σ'_2] with

    - [σ_Aux = G(x̄,ȳ), Aux → ∃z̄ ψ(x̄,z̄)] for every [σ ∈ Σ] with guard [G],
    - [σ_Q = Q(x̄) → Aux],
    - [σ_RAux = R(x), Aux → T(x)],
    - [σ_RS = R(x), S(x) → T(x)]       (for Theorem 9.2: [R(x), S(y) → T(x)]),

    over [S ∪ {Aux/0, R/1, S/1, T/1}]; then [Σ ⊨ ∃x̄ Q(x̄)] iff [Σ'] is
    rewritable into the weaker class.  The module also builds the witnessing
    rewriting [Σ_L] (resp. [Σ_G]) used in the (1) ⇒ (2) direction of the
    proof.

    Deviation from the printed construction: we put [Σ ⊆ Σ'].  The
    Appendix F proof of [Σ' ⊨ Σ_L] asserts "observe also that [I ⊨ Σ]" for
    models [I] of [Σ'], which only holds when [Σ] itself is kept in [Σ'];
    without it, an instance matching a body of [Σ] but containing no [Aux]
    satisfies all the [σ_Aux] yet violates [Σ], and [Σ'] is then {e never}
    equivalent to [Σ_L] (test [reduction/no equivalence...] exercises
    this).  Keeping [Σ] preserves guardedness, polynomiality, and both
    directions of the correctness argument. *)

open Tgd_syntax

type artifacts = {
  sigma' : Tgd.t list;       (** the constructed input to Rewrite *)
  schema' : Schema.t;
  witness_rewriting : Tgd.t list;
      (** the set [Σ_L] (resp. [Σ_G]) that is equivalent to [Σ'] whenever
          [Σ ⊨ ∃x̄ Q(x̄)] *)
  aux : Relation.t;
  fresh_r : Relation.t;
  fresh_s : Relation.t;
  fresh_t : Relation.t;
}

val g_to_l_hardness : Tgd.t list -> query:Relation.t -> artifacts
(** Raises [Invalid_argument] when the input is not guarded or the query
    relation does not occur in it. *)

val fg_to_g_hardness : Tgd.t list -> query:Relation.t -> artifacts
(** Same construction with the frontier-guard and the disconnected
    [σ_RS]. *)

val query_atom : Relation.t -> Atom.t
(** [Q(x̄)] with pairwise distinct variables. *)
