(** The model-theoretic properties of Sections 3 and 5, as bounded-universe
    checkers.

    Each check quantifies over instances with at most [dom_size] canonical
    domain elements (every isomorphism type of that size is covered, and
    ontologies are isomorphism-closed, so a returned counterexample is a
    genuine one, while [Holds] means "holds on the examined sub-universe"). *)

open Tgd_syntax
open Tgd_instance

type 'a verdict =
  | Holds
  | Fails of 'a
  | Inconclusive of string

val verdict_holds : 'a verdict -> bool
val pp_verdict : 'a Fmt.t -> 'a verdict Fmt.t

val critical_up_to : Ontology.t -> int -> int verdict
(** Definition 3.1 — is the ontology [k']-critical for every [k' = 1..k]?
    The counterexample is the failing cardinality. *)

val closed_under_products :
  ?max_pairs:int -> Ontology.t -> dom_size:int ->
  (Instance.t * Instance.t) verdict
(** Definition 3.3, over pairs of members with canonical domains of size
    [≤ dom_size] (at most [max_pairs] pairs, default 10_000). *)

val closed_under_intersections :
  ?max_pairs:int -> Ontology.t -> dom_size:int ->
  (Instance.t * Instance.t) verdict
(** Definition 5.5. *)

val closed_under_unions :
  ?max_pairs:int -> Ontology.t -> dom_size:int ->
  (Instance.t * Instance.t) verdict
(** Closure under (non-disjoint) unions — the property of linear tgds used
    in the proof of the Linearization Lemma and in the Theorem 9.1
    lower-bound argument. *)

val closed_under_disjoint_unions :
  ?max_pairs:int -> Ontology.t -> dom_size:int ->
  (Instance.t * Instance.t) verdict
(** Closure under disjoint unions (domains renamed apart) — the property of
    guarded tgds used by the Theorem 9.2 lower-bound argument: the
    frontier-guarded [Σ_F = R(x), P(y) → T(x)] fails it. *)

val domain_independent : Ontology.t -> dom_size:int -> Instance.t verdict
(** Definition 3.7: membership depends on the facts only.  Checks each
    instance against its active part. *)

val modular : Ontology.t -> n:int -> dom_size:int -> Instance.t verdict
(** Definition 5.4: every non-member has a non-member subinstance with at
    most [n] domain elements. *)

val closed_under_oblivious_dupext :
  Ontology.t -> dom_size:int -> (Instance.t * Constant.t) verdict
(** The Makowsky–Vardi closure property that Example 5.2 refutes. *)

val closed_under_non_oblivious_dupext :
  Ontology.t -> dom_size:int -> (Instance.t * Constant.t) verdict
(** Definition 5.3 — the corrected property of Theorem 5.6. *)
