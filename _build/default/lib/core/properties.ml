open Tgd_syntax
open Tgd_instance

type 'a verdict =
  | Holds
  | Fails of 'a
  | Inconclusive of string

let verdict_holds = function Holds -> true | Fails _ | Inconclusive _ -> false

let pp_verdict pp_cex ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Fails cex -> Fmt.pf ppf "fails on %a" pp_cex cex
  | Inconclusive why -> Fmt.pf ppf "inconclusive (%s)" why

let first_failure seq =
  match seq () with
  | Seq.Nil -> Holds
  | Seq.Cons (cex, _) -> Fails cex

let critical_up_to o k =
  first_failure
    (Seq.init k (fun i -> i + 1)
    |> Seq.filter (fun k' ->
           not (Ontology.mem o (Critical.make (Ontology.schema o) k'))))

let bounded_pairs max_pairs members =
  (* all ordered pairs, diagonal included, lazily, capped *)
  let members = List.of_seq members in
  List.to_seq members
  |> Seq.concat_map (fun i -> List.to_seq members |> Seq.map (fun j -> (i, j)))
  |> Seq.take max_pairs

let closure_check ?(max_pairs = 10_000) o ~dom_size combine =
  first_failure
    (bounded_pairs max_pairs (Ontology.models_up_to o dom_size)
    |> Seq.filter (fun (i, j) -> not (Ontology.mem o (combine i j))))

let closed_under_products ?max_pairs o ~dom_size =
  closure_check ?max_pairs o ~dom_size Product.direct

let closed_under_intersections ?max_pairs o ~dom_size =
  closure_check ?max_pairs o ~dom_size Instance.intersection

let closed_under_unions ?max_pairs o ~dom_size =
  closure_check ?max_pairs o ~dom_size Instance.union

let closed_under_disjoint_unions ?max_pairs o ~dom_size =
  closure_check ?max_pairs o ~dom_size (fun i j ->
      fst (Instance.disjoint_union i j))

let domain_independent o ~dom_size =
  first_failure
    (Enumerate.instances_up_to (Ontology.schema o) dom_size
    |> Seq.filter (fun i ->
           Ontology.mem o i <> Ontology.mem o (Instance.active_part i)))

let modular o ~n ~dom_size =
  let has_small_witness i =
    Combinat.subsets_up_to n (Constant.Set.elements (Instance.dom i))
    |> Seq.exists (fun d ->
           not (Ontology.mem o (Instance.induced i (Constant.set_of_list d))))
  in
  first_failure
    (Ontology.non_members_up_to o dom_size
    |> Seq.filter (fun i -> not (has_small_witness i)))

let dupext_check extend o ~dom_size =
  first_failure
    (Ontology.models_up_to o dom_size
    |> Seq.concat_map (fun i ->
           Constant.Set.to_seq (Instance.dom i) |> Seq.map (fun c -> (i, c)))
    |> Seq.filter (fun (i, c) ->
           let d = Duplicating.fresh_for i in
           not (Ontology.mem o (extend i c d))))

let closed_under_oblivious_dupext o ~dom_size =
  dupext_check Duplicating.oblivious o ~dom_size

let closed_under_non_oblivious_dupext o ~dom_size =
  dupext_check Duplicating.non_oblivious o ~dom_size
