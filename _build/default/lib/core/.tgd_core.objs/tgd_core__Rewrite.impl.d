lib/core/rewrite.ml: Atom Candidates Enumerate Fmt Int List Printf Satisfaction Schema Seq Tgd Tgd_chase Tgd_class Tgd_instance Tgd_syntax
