lib/core/candidates.mli: Atom Schema Seq Tgd Tgd_syntax Variable
