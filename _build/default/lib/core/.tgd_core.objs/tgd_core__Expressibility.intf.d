lib/core/expressibility.mli: Fmt Rewrite Tgd Tgd_class Tgd_syntax
