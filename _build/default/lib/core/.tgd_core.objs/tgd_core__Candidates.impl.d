lib/core/candidates.ml: Atom Canonical Combinat List Relation Schema Seq Term Tgd Tgd_chase Tgd_class Tgd_syntax Variable
