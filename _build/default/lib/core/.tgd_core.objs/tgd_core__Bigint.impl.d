lib/core/bigint.ml: Array Buffer Fmt Int List Printf String
