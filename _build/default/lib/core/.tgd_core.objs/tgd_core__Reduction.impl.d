lib/core/reduction.ml: Atom List Relation Rewrite Schema Tgd Tgd_class Tgd_syntax Variable
