lib/core/counting.ml: Bigint List Relation Schema Tgd_syntax
