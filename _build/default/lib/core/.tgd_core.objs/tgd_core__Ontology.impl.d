lib/core/ontology.ml: Atom Combinat Constant Enumerate Fmt Hom Instance List Satisfaction Schema Seq Tgd Tgd_chase Tgd_instance Tgd_syntax
