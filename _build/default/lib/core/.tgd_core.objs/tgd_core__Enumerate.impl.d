lib/core/enumerate.ml: Bigint Combinat Constant Fact Instance List Relation Satisfaction Schema Seq Tgd_instance Tgd_syntax
