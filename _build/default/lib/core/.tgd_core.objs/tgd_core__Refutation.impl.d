lib/core/refutation.ml: Binding Combinat Constant Enumerate Hom Instance List Rewrite Satisfaction Seq Tgd Tgd_chase Tgd_instance Tgd_syntax
