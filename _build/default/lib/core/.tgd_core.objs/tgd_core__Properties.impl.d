lib/core/properties.ml: Combinat Constant Critical Duplicating Enumerate Fmt Instance List Ontology Product Seq Tgd_instance Tgd_syntax
