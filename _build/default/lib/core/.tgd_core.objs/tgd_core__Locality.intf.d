lib/core/locality.mli: Constant Instance Ontology Seq Tgd_chase Tgd_instance Tgd_syntax
