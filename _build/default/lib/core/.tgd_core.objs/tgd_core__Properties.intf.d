lib/core/properties.mli: Constant Fmt Instance Ontology Tgd_instance Tgd_syntax
