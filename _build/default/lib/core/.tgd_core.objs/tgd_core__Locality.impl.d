lib/core/locality.ml: Combinat Constant Enumerate Fact Hom Instance List Neighborhood Ontology Seq Tgd_chase Tgd_instance Tgd_syntax
