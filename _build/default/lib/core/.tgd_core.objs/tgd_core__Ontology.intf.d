lib/core/ontology.mli: Fmt Instance Schema Seq Tgd Tgd_chase Tgd_instance Tgd_syntax
