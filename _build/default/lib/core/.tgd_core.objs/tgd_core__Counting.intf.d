lib/core/counting.mli: Bigint Schema Tgd_syntax
