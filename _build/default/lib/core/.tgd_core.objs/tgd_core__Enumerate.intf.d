lib/core/enumerate.mli: Bigint Constant Fact Instance Schema Seq Tgd Tgd_instance Tgd_syntax
