lib/core/expressibility.ml: Fmt List Ontology Properties Rewrite Tgd Tgd_chase Tgd_class Tgd_syntax
