lib/core/refutation.mli: Instance Tgd Tgd_chase Tgd_instance Tgd_syntax
