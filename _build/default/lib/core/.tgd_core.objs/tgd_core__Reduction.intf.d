lib/core/reduction.mli: Atom Relation Schema Tgd Tgd_syntax
