lib/core/bigint.mli: Fmt
