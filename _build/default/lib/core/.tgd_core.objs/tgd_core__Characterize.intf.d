lib/core/characterize.mli: Candidates Dependency Edd Expressibility Instance Ontology Rewrite Schema Seq Tgd Tgd_instance Tgd_syntax
