lib/core/rewrite.mli: Candidates Fmt Instance Schema Seq Tgd Tgd_chase Tgd_instance Tgd_syntax
