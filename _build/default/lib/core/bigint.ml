(* Little-endian magnitude arrays in base 10^9.  The canonical form has no
   trailing zero limb; zero is the empty array. *)

let base = 1_000_000_000

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int i =
  if i < 0 then invalid_arg "Bigint.of_int: negative";
  let rec go i acc = if i = 0 then acc else go (i / base) ((i mod base) :: acc) in
  normalize (Array.of_list (List.rev (go i [])))

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    out.(i) <- s mod base;
    carry := s / base
  done;
  normalize out

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let cur = out.(i + j) + (a.(i) * b.(j)) + !carry in
        out.(i + j) <- cur mod base;
        carry := cur / base
      done;
      let k = ref (i + lb) in
      while !carry > 0 do
        let cur = out.(!k) + !carry in
        out.(!k) <- cur mod base;
        carry := cur / base;
        incr k
      done
    done;
    normalize out
  end

let rec pow x e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  if e = 0 then one
  else
    let half = pow x (e / 2) in
    let sq = mul half half in
    if e mod 2 = 0 then sq else mul sq x

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let to_int_opt a =
  let rec go i acc =
    if i < 0 then Some acc
    else if acc > (max_int - a.(i)) / base then None
    else go (i - 1) ((acc * base) + a.(i))
  in
  if Array.length a > 3 then None else go (Array.length a - 1) 0

let to_float a =
  Array.to_list a
  |> List.rev
  |> List.fold_left (fun acc limb -> (acc *. float_of_int base) +. float_of_int limb) 0.

let to_string a =
  if Array.length a = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    Buffer.add_string buf (string_of_int a.(Array.length a - 1));
    for i = Array.length a - 2 downto 0 do
      Buffer.add_string buf (Printf.sprintf "%09d" a.(i))
    done;
    Buffer.contents buf
  end

let pp ppf a = Fmt.string ppf (to_string a)
let digits a = String.length (to_string a)
