(** Enumeration of candidate tgds — the search spaces of Algorithms 1 and 2.

    Algorithm 1 (G-to-L) collects {e all} linear tgds over S in
    [LTGD_{n,m}] entailed by the input; Algorithm 2 (FG-to-G) does the same
    with [GTGD_{n,m}].  We enumerate those spaces up to variable renaming
    (the paper's "finite up to logical equivalence"), with configurable caps
    on the number of atoms; [complete] in {!stats} reports whether the caps
    were binding, so callers can qualify a negative rewriting answer.

    Tautological candidates (head already satisfied by the frozen body) are
    skipped: they are entailed by every set and never contribute to
    [Σ' ⊨ Σ]. *)

open Tgd_syntax

type caps = {
  max_body_atoms : int;
      (** for guarded bodies: guard + side atoms; for generic bodies: total
          atoms.  Ignored by the linear enumerator (1 by definition). *)
  max_head_atoms : int;
  keep_tautologies : bool;
}

val default_caps : caps
(** [{ max_body_atoms = 2; max_head_atoms = 2; keep_tautologies = false }] *)

val head_conjunctions :
  caps -> Schema.t -> Variable.t list -> m:int -> Atom.t list Seq.t
(** Non-empty sets of atoms over the given universal variables plus at most
    [m] canonical existential variables, each existential actually used. *)

val linear : ?caps:caps -> Schema.t -> n:int -> m:int -> Tgd.t Seq.t
(** [LTGD_{n,m}] over the schema, deduplicated modulo renaming.  Bodies are
    single atoms whose variable patterns range over restricted growth
    strings with at most [n] blocks. *)

val guarded : ?caps:caps -> Schema.t -> n:int -> m:int -> Tgd.t Seq.t
(** [GTGD_{n,m}]: a guard atom pattern plus up to [max_body_atoms - 1] side
    atoms over the guard's variables.  (Bodiless guarded tgds
    [→ ∃z̄ ψ(z̄)] are included.) *)

val full : ?caps:caps -> Schema.t -> n:int -> Tgd.t Seq.t
(** [FTGD_{n,0}-style] candidates with generic bodies (up to
    [max_body_atoms]) and existential-free heads. *)

val generic : ?caps:caps -> Schema.t -> n:int -> m:int -> Tgd.t Seq.t
(** Arbitrary [TGD_{n,m}] candidates with generic bodies — the space
    [Σ^∃ ⊆ E_{n,m}] of the Theorem 4.1 synthesis. *)

val frontier_guarded : ?caps:caps -> Schema.t -> n:int -> m:int -> Tgd.t Seq.t
(** {!generic} filtered to frontier-guarded tgds. *)

type stats = {
  enumerated : int;   (** canonical candidates produced *)
  complete : bool;    (** no cap was binding for this schema and (n,m) *)
}

val linear_complete : caps -> Schema.t -> n:int -> m:int -> bool
(** Is the cap non-binding, i.e. does [max_head_atoms] reach the total
    number of distinct head atoms? *)

val guarded_complete : caps -> Schema.t -> n:int -> m:int -> bool

val count : 'a Seq.t -> int

val generic_complete : caps -> Schema.t -> n:int -> m:int -> bool
(** Caps non-binding for the generic [TGD_{n,m}] enumeration: the body cap
    reaches every atom over [n] variables and the head cap every atom over
    [n + m]. *)
