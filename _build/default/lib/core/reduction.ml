open Tgd_syntax

type artifacts = {
  sigma' : Tgd.t list;
  schema' : Schema.t;
  witness_rewriting : Tgd.t list;
  aux : Relation.t;
  fresh_r : Relation.t;
  fresh_s : Relation.t;
  fresh_t : Relation.t;
}

let fresh_relation schema base arity =
  let rec go name =
    match Schema.find schema name with
    | None -> Relation.make name arity
    | Some _ -> go (name ^ "_")
  in
  go base

let query_atom q =
  Atom.of_vars q (List.init (Relation.arity q) (Variable.indexed "x"))

let build ~rs_body_shares_variable guard_of sigma ~query =
  let schema = Rewrite.schema_of sigma in
  if not (Schema.mem schema query) then
    invalid_arg "Reduction: query relation does not occur in the input";
  let aux = fresh_relation schema "Aux" 0 in
  let fresh_r = fresh_relation schema "Rf" 1 in
  let fresh_s = fresh_relation schema "Sf" 1 in
  let fresh_t = fresh_relation schema "Tf" 1 in
  let schema' = Schema.extend schema [ aux; fresh_r; fresh_s; fresh_t ] in
  let aux_atom = Atom.make aux [] in
  let sigma'_1 =
    List.map
      (fun s ->
        let guard_body =
          match guard_of s with
          | Some g -> [ g; aux_atom ]
          | None -> [ aux_atom ]
        in
        Tgd.make ~body:guard_body ~head:(Tgd.head s))
      sigma
  in
  let x = Variable.make "x" in
  let y = Variable.make "y" in
  let sigma_q = Tgd.make ~body:[ query_atom query ] ~head:[ aux_atom ] in
  let sigma_raux =
    Tgd.make
      ~body:[ Atom.of_vars fresh_r [ x ]; aux_atom ]
      ~head:[ Atom.of_vars fresh_t [ x ] ]
  in
  let sigma_rs =
    let s_var = if rs_body_shares_variable then x else y in
    Tgd.make
      ~body:[ Atom.of_vars fresh_r [ x ]; Atom.of_vars fresh_s [ s_var ] ]
      ~head:[ Atom.of_vars fresh_t [ x ] ]
  in
  (* Σ ⊆ Σ' is required by the Appendix F equivalence proof (its "observe
     that I ⊨ Σ" step): the σ_Aux rules alone admit models that violate Σ
     wherever Aux is absent.  With Σ kept, every model of Σ' satisfies Σ,
     hence (when Σ ⊨ ∃x̄Q(x̄)) contains Aux, which collapses each σ to its
     linear companion G → ψ. *)
  let sigma' = sigma @ sigma'_1 @ [ sigma_q; sigma_raux; sigma_rs ] in
  let witness_rewriting =
    sigma_q
    :: Tgd.make ~body:[ Atom.of_vars fresh_r [ x ] ]
         ~head:[ Atom.of_vars fresh_t [ x ] ]
    :: List.filter_map
         (fun s ->
           match guard_of s with
           | Some g -> Some (Tgd.make ~body:[ g ] ~head:(Tgd.head s))
           | None -> Some s (* bodiless tgds are already linear *))
         sigma
  in
  { sigma'; schema'; witness_rewriting; aux; fresh_r; fresh_s; fresh_t }

let g_to_l_hardness sigma ~query =
  if not (Tgd_class.all_in_class Tgd_class.Guarded sigma) then
    invalid_arg "Reduction.g_to_l_hardness: input must be guarded";
  build ~rs_body_shares_variable:true Tgd_class.guard sigma ~query

let fg_to_g_hardness sigma ~query =
  if not (Tgd_class.all_in_class Tgd_class.Frontier_guarded sigma) then
    invalid_arg "Reduction.fg_to_g_hardness: input must be frontier-guarded";
  build ~rs_body_shares_variable:false Tgd_class.frontier_guard sigma ~query
