(** Exhaustive enumeration of instances over bounded domains.

    The paper's properties quantify over all S-instances; closure under
    isomorphism lets a bounded check fix the canonical domain
    [{c_0, …, c_{k-1}}] and enumerate every instance over it — the number is
    [2^{Σ_R k^{ar(R)}}], so this is for small schemas and tiny [k], which is
    exactly the regime of the paper's counterexamples and separations. *)

open Tgd_syntax
open Tgd_instance

val canonical_domain : int -> Constant.t list
(** [{c_0, …, c_{k-1}}] as {!Constant.Indexed} constants. *)

val all_facts : Schema.t -> Constant.t list -> Fact.t list
(** Every fact over the given domain — the facts of the critical instance. *)

val count : Schema.t -> int -> Bigint.t
(** Number of instances over a fixed [k]-element domain. *)

val instances : Schema.t -> dom_size:int -> Instance.t Seq.t
(** All instances whose domain is exactly [canonical_domain dom_size] (their
    active domains range over all subsets). *)

val instances_up_to : Schema.t -> int -> Instance.t Seq.t
(** All instances with canonical domains of size [0..k].  Note that every
    isomorphism class of instances with at most [k] domain elements has a
    representative here. *)

val models : Tgd.t list -> Schema.t -> dom_size:int -> Instance.t Seq.t
val models_up_to : Tgd.t list -> Schema.t -> int -> Instance.t Seq.t

val subinstances_le : Instance.t -> max_adom:int -> Instance.t Seq.t
(** All induced subinstances [K ≤ I] with [|adom(K)| ≤ max_adom], one per
    active-domain-determined fact set (enumerated over subsets of
    [adom(I)]), including the empty instance. *)
