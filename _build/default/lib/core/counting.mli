(** The counting bounds of Section 9.2, exactly as printed in the paper.

    For Algorithm 1, the number of linear tgds over S with at most [n]
    universally and [m] existentially quantified variables is bounded by
    [|S|·n^{ar(S)} · 2^(|S| · (n+m)^ar(S))] (bodies × heads), each of size
    [O(ar(S)·|S|·(n+m)^{ar(S)})]; for Algorithm 2 the body factor becomes
    [2^(|S| · n^ar(S))].  Benchmark E8 compares these against the measured
    sizes of {!Candidates} enumerations. *)

open Tgd_syntax

val linear_bodies_bound : Schema.t -> n:int -> Bigint.t
(** [|S| · n^{ar(S)}]. *)

val guarded_bodies_bound : Schema.t -> n:int -> Bigint.t
(** [2^(|S| · n^ar(S))]. *)

val heads_bound : Schema.t -> n:int -> m:int -> Bigint.t
(** [2^(|S| · (n+m)^ar(S))]. *)

val linear_candidates_bound : Schema.t -> n:int -> m:int -> Bigint.t
val guarded_candidates_bound : Schema.t -> n:int -> m:int -> Bigint.t

val tgd_size_bound : Schema.t -> n:int -> m:int -> Bigint.t
(** [ar(S) · |S| · (n+m)^{ar(S)}] — the paper's bound on the size of each
    candidate. *)

val exact_atom_count : Schema.t -> vars:int -> int
(** [Σ_{R∈S} vars^{ar(R)}] — the exact number of distinct atoms over a fixed
    variable alphabet, refining the paper's [|S|·k^{ar(S)}] upper bound. *)
