open Tgd_syntax
open Tgd_instance
module Entailment = Tgd_chase.Entailment

let schema_of sigma goal = Rewrite.schema_of (goal :: sigma)

let fresh_constants base k =
  let rec go n acc i =
    if n = 0 then List.rev acc
    else
      let c = Constant.indexed i in
      if Constant.Set.mem c base then go n acc (i + 1)
      else go (n - 1) (c :: acc) (i + 1)
  in
  go k [] 9000

let countermodel ?(extra = 1) sigma goal =
  let schema = schema_of sigma goal in
  let frozen, db = Entailment.freeze_instance schema (Tgd.body goal) in
  let head_partial = Binding.restrict (Tgd.frontier goal) frozen in
  let head_fails i = not (Hom.exists_hom ~partial:head_partial (Tgd.head goal) i) in
  let base = Instance.dom db in
  let search_with_domain domain =
    let all = Enumerate.all_facts schema domain in
    let optional = List.filter (fun f -> not (Instance.mem db f)) all in
    Combinat.subsets optional
    |> Seq.map (fun fs -> List.fold_left Instance.add_fact db fs)
    |> Seq.filter (fun i -> head_fails i && Satisfaction.tgds i sigma)
  in
  let candidates =
    Seq.init (extra + 1) (fun k -> k)
    |> Seq.concat_map (fun k ->
           let domain =
             Constant.Set.elements base @ fresh_constants base k
           in
           if domain = [] then Seq.empty else search_with_domain domain)
  in
  match candidates () with
  | Seq.Nil -> None
  | Seq.Cons (i, _) -> Some i

let entails ?budget ?extra sigma goal =
  match Entailment.entails ?budget sigma goal with
  | Entailment.Unknown -> (
    match countermodel ?extra sigma goal with
    | Some _ -> Entailment.Disproved
    | None -> Entailment.Unknown)
  | definite -> definite

let entails_set ?budget ?extra sigma goals =
  List.fold_left
    (fun acc goal ->
      match acc, entails ?budget ?extra sigma goal with
      | Entailment.Disproved, _ | _, Entailment.Disproved -> Entailment.Disproved
      | Entailment.Unknown, _ | _, Entailment.Unknown -> Entailment.Unknown
      | Entailment.Proved, Entailment.Proved -> Entailment.Proved)
    Entailment.Proved goals
