(** Minimal arbitrary-precision non-negative integers.

    The counting formulas of Section 9.2 involve towers like
    [2^(|S|·(n+m)^{ar(S)})] that overflow native integers immediately; the
    sealed build environment has no zarith, so this small bignum (base 10^9
    magnitude arrays, add/mul/pow only) backs {!Counting}. *)

type t

val zero : t
val one : t
val two : t
val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val add : t -> t -> t
val mul : t -> t -> t
val pow : t -> int -> t
(** Raises [Invalid_argument] on negative exponent; [pow x 0 = one]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_int_opt : t -> int option
(** [Some] when the value fits in a native [int]. *)

val to_float : t -> float
(** Approximate; [infinity] when out of float range. *)

val to_string : t -> string
val pp : t Fmt.t

val digits : t -> int
(** Number of decimal digits. *)
