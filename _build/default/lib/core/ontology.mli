(** Ontologies as semantic objects (Section 2).

    An ontology over S is an isomorphism-closed class of S-instances.  Three
    presentations are supported:

    - {e axiomatic}: the models of a finite set of tgds — the
      [C]-ontologies of the paper;
    - {e extensional}: the isomorphism closure of a finite list of instances
      restricted to domains of at most a declared size (a bounded-universe
      ontology, used to exercise the characterizations on classes that are
      {e not} tgd-axiomatizable);
    - {e oracle}: an arbitrary membership predicate (closed under
      isomorphism by the caller's promise). *)

open Tgd_syntax
open Tgd_instance

type t

val axiomatic : ?name:string -> Schema.t -> Tgd.t list -> t
(** Raises [Invalid_argument] if some tgd uses a relation outside the
    schema. *)

val extensional : ?name:string -> Schema.t -> Instance.t list -> t
(** Membership = isomorphism with one of the given instances. *)

val oracle : ?name:string -> Schema.t -> (Instance.t -> bool) -> t

val name : t -> string
val schema : t -> Schema.t

val axioms : t -> Tgd.t list option
(** [Some sigma] for axiomatic ontologies. *)

val mem : t -> Instance.t -> bool
(** [I ∈ O]. *)

val models_up_to : t -> int -> Instance.t Seq.t
(** Members with canonical domains of size [≤ k]. *)

val non_members_up_to : t -> int -> Instance.t Seq.t

val chase_witness :
  ?budget:Tgd_chase.Chase.budget -> t -> Instance.t -> Instance.t option
(** For an axiomatic ontology, [chase(K, Σ)] when the chase terminates — a
    member of [O] containing [K], the canonical witness [J_K] used by the
    local-embeddability checkers.  [None] for non-axiomatic ontologies or
    when the budget is exhausted. *)

val member_extending :
  ?max_extra:int -> t -> Instance.t -> Instance.t Seq.t
(** Members [J ∈ O] with [K ⊆ J], searched over instances whose domain is
    [adom(K)] plus at most [max_extra] (default 1) fresh canonical
    constants.  Exhaustive within that bound. *)

val restrict_mem : t -> (Instance.t -> bool) -> t
(** Intersect with a predicate (handy for building oracle variations). *)

val pp : t Fmt.t

val of_theory : ?name:string -> Schema.t -> Tgd_chase.Theory.t -> t
(** Membership = satisfaction of the mixed theory (tgds + egds + denial
    constraints) — the ontologies of the paper's Section 10 outlook.  Note
    that these generally violate criticality (a critical instance violates
    every non-trivial egd), which is exactly why Step 3 of Theorem 4.1 can
    discard the egds of [Σ^{∃,=}]. *)
