open Tgd_syntax
open Tgd_instance

type kind =
  | Axiomatic of Tgd.t list
  | Extensional of Instance.t list
  | Oracle of (Instance.t -> bool)

type t = { name : string; schema : Schema.t; kind : kind }

let tgd_in_schema schema s =
  List.for_all
    (fun a -> Schema.mem schema (Atom.rel a))
    (Tgd.body s @ Tgd.head s)

let axiomatic ?name schema sigma =
  if not (List.for_all (tgd_in_schema schema) sigma) then
    invalid_arg "Ontology.axiomatic: tgd uses a relation outside the schema";
  let name =
    match name with
    | Some n -> n
    | None -> Fmt.str "Mod(%a)" Fmt.(list ~sep:(any "; ") Tgd.pp) sigma
  in
  { name; schema; kind = Axiomatic sigma }

let extensional ?(name = "extensional") schema instances =
  { name; schema; kind = Extensional instances }

let oracle ?(name = "oracle") schema mem = { name; schema; kind = Oracle mem }

let name o = o.name
let schema o = o.schema
let axioms o = match o.kind with Axiomatic s -> Some s | _ -> None

let mem o i =
  match o.kind with
  | Axiomatic sigma -> Satisfaction.tgds i sigma
  | Extensional instances -> List.exists (Hom.isomorphic i) instances
  | Oracle f -> f i

let models_up_to o k =
  Seq.filter (mem o) (Enumerate.instances_up_to o.schema k)

let non_members_up_to o k =
  Seq.filter (fun i -> not (mem o i)) (Enumerate.instances_up_to o.schema k)

let chase_witness ?budget o k =
  match o.kind with
  | Axiomatic sigma ->
    let result = Tgd_chase.Chase.restricted ?budget sigma k in
    if Tgd_chase.Chase.is_model result then Some result.Tgd_chase.Chase.instance
    else None
  | Extensional _ | Oracle _ -> None

let member_extending ?(max_extra = 1) o k =
  let base_dom = Constant.Set.elements (Instance.adom k) in
  let fresh =
    let rec go n acc i =
      if n = 0 then List.rev acc
      else
        let c = Constant.indexed i in
        if Constant.Set.mem c (Instance.adom k) then go n acc (i + 1)
        else go (n - 1) (c :: acc) (i + 1)
    in
    go max_extra [] 100
  in
  Seq.init (max_extra + 1) (fun extra -> extra)
  |> Seq.concat_map (fun extra ->
         let domain = base_dom @ List.filteri (fun i _ -> i < extra) fresh in
         let facts = Enumerate.all_facts o.schema domain in
         Combinat.subsets facts
         |> Seq.filter_map (fun fs ->
                let j = Instance.of_facts ~dom:domain o.schema fs in
                if Instance.subset k j && mem o j then Some j else None))

let restrict_mem o p =
  oracle ~name:(o.name ^ "+restriction") o.schema (fun i -> mem o i && p i)

let pp ppf o = Fmt.pf ppf "%s over %a" o.name Schema.pp o.schema

let of_theory ?(name = "theory") schema th =
  oracle ~name schema (fun i -> Tgd_chase.Theory.satisfies i th)
