examples/university.ml: Atom Constant Fmt Instance List Option Rewrite Schema Term Tgd Tgd_chase Tgd_class Tgd_core Tgd_instance Tgd_parse Tgd_syntax Variable
