examples/separations.ml: Candidates Constant Duplicating Fmt Instance Locality Ontology Properties Rewrite Satisfaction Tgd Tgd_core Tgd_instance Tgd_syntax Tgd_workload
