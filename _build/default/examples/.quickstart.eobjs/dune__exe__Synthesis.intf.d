examples/synthesis.mli:
