examples/data_exchange.ml: Fmt Instance Retract Schema Tgd_chase Tgd_instance Tgd_parse Tgd_syntax Theory
