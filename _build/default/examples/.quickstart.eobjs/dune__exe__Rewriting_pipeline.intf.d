examples/rewriting_pipeline.mli:
