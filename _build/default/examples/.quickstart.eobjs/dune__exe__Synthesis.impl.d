examples/synthesis.ml: Candidates Characterize Constant Expressibility Fact Fmt Instance List Ontology Properties Relation Rewrite Schema Tgd Tgd_core Tgd_instance Tgd_syntax
