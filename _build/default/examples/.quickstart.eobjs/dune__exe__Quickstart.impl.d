examples/quickstart.ml: Fmt Instance List Rewrite Tgd Tgd_chase Tgd_class Tgd_core Tgd_instance Tgd_parse Tgd_syntax Tgd_workload
