examples/separations.mli:
