examples/university.mli:
