examples/rewriting_pipeline.ml: Candidates Fmt List Option Reduction Rewrite Schema Tgd Tgd_chase Tgd_core Tgd_instance Tgd_parse Tgd_syntax Tgd_workload
