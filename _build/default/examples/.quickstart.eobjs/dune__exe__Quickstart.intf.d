examples/quickstart.mli:
