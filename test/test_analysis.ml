(* The static-analysis subsystem: dependency graph, termination
   certificates (with verified witnesses), lints, strategy, and the
   promotion of round-truncated chases under a certificate. *)

open Tgd_syntax
open Tgd_analysis
open Helpers

let rel n a = Relation.make n a

(* ---- dependency graph ---- *)

let test_depgraph_basic () =
  let sigma = tgds "E(x,y) -> P(x). P(x) -> exists z. Q(x,z)." in
  let g = Depgraph.make sigma in
  check_int "three relations" 3 (Relation.Set.cardinal (Depgraph.relations g));
  check_bool "E is edb" true (Relation.Set.mem (rel "E" 2) (Depgraph.edb g));
  check_bool "P not edb" false (Relation.Set.mem (rel "P" 1) (Depgraph.edb g));
  let d = Depgraph.derivable sigma ~from:(Depgraph.edb g) in
  check_bool "Q derivable from edb" true (Relation.Set.mem (rel "Q" 2) d);
  check_int "no dead rules" 0 (List.length (Depgraph.dead_rules sigma))

let test_depgraph_dead_rule () =
  (* Ghost/1 appears only in rule 1's body and in no head: rule 1 can never
     fire from an instance over the extensional relations derivable story —
     wait, Ghost IS extensional (no head occurrence), so it can be
     populated.  A genuinely dead rule needs a body relation that is
     intensional yet underivable: Loop feeds only itself. *)
  let sigma =
    tgds "E(x,y) -> P(x). Loop(x), E(x,y) -> Loop(y). P(x), Loop(x) -> Bad(x)."
  in
  (* Loop occurs in a head, so it is intensional; but its only rule needs
     Loop in the body, so nothing ever derives it from the edb {E}. *)
  check_bool "Loop underived" true
    (Relation.Set.mem (rel "Loop" 1) (Depgraph.underived sigma));
  (match Depgraph.dead_rules sigma with
  | [ 1; 2 ] -> ()
  | l ->
    Alcotest.failf "expected dead rules [1;2], got [%s]"
      (String.concat ";" (List.map string_of_int l)))

let test_depgraph_sccs_strata () =
  let sigma = tgds "A(x) -> B(x). B(x) -> A(x). B(x) -> C(x)." in
  let g = Depgraph.make sigma in
  let comps = Depgraph.sccs g in
  check_int "two sccs" 2 (List.length comps);
  (* callees-first: {A,B} precedes {C} *)
  (match comps with
  | [ ab; [ c ] ] ->
    check_int "A,B together" 2 (List.length ab);
    check_bool "C alone" true (Relation.equal c (rel "C" 1))
  | _ -> Alcotest.fail "unexpected scc shape");
  let strata = Depgraph.strata g in
  let lvl r = Relation.Map.find (rel r 1) strata in
  check_bool "A,B same stratum" true (lvl "A" = lvl "B");
  check_bool "C above" true (lvl "C" > lvl "A");
  check_bool "A,B recursive" true
    (Relation.Set.mem (rel "A" 1) (Depgraph.recursive g));
  check_bool "C not recursive" false
    (Relation.Set.mem (rel "C" 1) (Depgraph.recursive g))

let test_depgraph_empty_body_fires () =
  let sigma = [ tgd "-> exists z. Seed(z)."; tgd "Seed(x) -> P(x)." ] in
  let d = Depgraph.derivable sigma ~from:Relation.Set.empty in
  check_bool "Seed fires unconditionally" true
    (Relation.Set.mem (rel "Seed" 1) d);
  check_bool "P follows" true (Relation.Set.mem (rel "P" 1) d)

(* ---- termination certificates ---- *)

let test_certificates () =
  let wa = tgds "P(x) -> exists z. E(x,z). E(x,y) -> Q(y)." in
  check_bool "wa" true (Termination.is_weakly_acyclic wa);
  Alcotest.(check (option (of_pp Termination.pp_cert)))
    "wa cert" (Some Termination.Weakly_acyclic) (Termination.certificate wa);
  (* JA but not WA: the special edge A[0] → A[1] lies on a cycle of the
     position graph, but the null invented for z never reaches position 0
     of A in rule bodies jointly *)
  let ja = tgds "A(x,y), A(y,x) -> exists z. A(x,z)." in
  check_bool "not wa" false (Termination.is_weakly_acyclic ja);
  check_bool "ja" true (Termination.is_jointly_acyclic ja);
  Alcotest.(check (option (of_pp Termination.pp_cert)))
    "ja cert" (Some Termination.Jointly_acyclic) (Termination.certificate ja);
  (* neither *)
  let none = tgds "E(x,y) -> exists z. E(y,z)." in
  check_bool "no cert" true (Termination.certificate none = None);
  Alcotest.(check (option (of_pp Termination.pp_cert)))
    "empty set is wa" (Some Termination.Weakly_acyclic)
    (Termination.certificate [])

let edge_exists edges src tgt =
  List.exists
    (fun e ->
      e.Termination.source = src && e.Termination.target = tgt)
    edges

let test_wa_witness_is_real () =
  (* the witness cycle must consist of actual consecutive edges of the
     dependency graph, and its special edge must be special *)
  let check_witness sigma =
    match Termination.weak_acyclicity_witness sigma with
    | None -> Alcotest.fail "expected a witness"
    | Some w ->
      let edges = Termination.dependency_graph sigma in
      let n = List.length w.Termination.cycle in
      check_bool "non-empty cycle" true (n > 0);
      List.iteri
        (fun i p ->
          let q = List.nth w.Termination.cycle ((i + 1) mod n) in
          check_bool "consecutive edge" true (edge_exists edges p q))
        w.Termination.cycle;
      let s, t = w.Termination.special_edge in
      check_bool "special edge on cycle" true
        (List.exists
           (fun e ->
             e.Termination.source = s && e.Termination.target = t
             && e.Termination.special)
           edges)
  in
  check_witness (tgds "E(x,y) -> exists z. E(y,z).");
  check_witness
    (tgds "E(x,y) -> exists z. F(y,z). F(x,y) -> exists z. E(y,z).");
  check_witness (tgds "P(x) -> exists z. E(x,z), P(z).")

let test_ja_witness_is_real () =
  let sigma = tgds "E(x,y) -> exists z. E(y,z)." in
  match Termination.jointly_acyclic_witness sigma with
  | None -> Alcotest.fail "expected a ja witness"
  | Some w ->
    check_bool "non-empty" true (w.Termination.variables <> []);
    (* each variable in the cycle is an existential of its rule *)
    List.iter
      (fun (i, y) ->
        let s = List.nth sigma i in
        check_bool "existential of its rule" true
          (Variable.Set.mem y (Tgd.existential_vars s)))
      w.Termination.variables

let test_movement () =
  let sigma = tgds "P(x) -> exists z. E(x,z). E(x,y) -> Q(y)." in
  let mov = Termination.movement sigma ~rule:0 (v "z") in
  check_bool "z lands in E[1]" true (List.mem (rel "E" 2, 1) mov);
  check_bool "z moves to Q[0]" true (List.mem (rel "Q" 1, 0) mov);
  check_bool "z never reaches E[0]" false (List.mem (rel "E" 2, 0) mov)

let test_wa_implies_ja () =
  (* WA ⇒ JA on random workload rule sets *)
  let st = Tgd_workload.Gen.rng 11 in
  let schema = Tgd_workload.Gen.random_schema st ~relations:3 ~max_arity:2 in
  for _ = 1 to 40 do
    let sigma =
      List.init 3 (fun _ ->
          Tgd_workload.Gen.random_tgd st schema ~n:3 ~m:1 ~body_atoms:2
            ~head_atoms:1)
    in
    if Termination.is_weakly_acyclic sigma then
      check_bool "wa implies ja" true (Termination.is_jointly_acyclic sigma)
  done

let test_certificate_families () =
  (* certificates agree with known ground truth on the §9.1 families *)
  let certified sigma = Termination.certificate sigma <> None in
  check_bool "linear_chain" true (certified (Tgd_workload.Families.linear_chain 5));
  check_bool "existential_chain" true
    (certified (Tgd_workload.Families.existential_chain 5));
  check_bool "transitive_closure" true
    (certified Tgd_workload.Families.transitive_closure);
  check_bool "guarded_rewritable" true
    (certified (Tgd_workload.Families.guarded_rewritable 3));
  check_bool "fg_rewritable" true
    (certified (Tgd_workload.Families.fg_rewritable 3));
  check_bool "dl_lite_roles" true
    (certified (Tgd_workload.Families.dl_lite_roles 4))

let test_certified_chase_terminates () =
  (* the point of a certificate: the unbudgeted chase reaches a model *)
  let run sigma =
    let schema = Tgd_core.Rewrite.schema_of sigma in
    let i =
      Tgd_workload.Gen.random_instance (Tgd_workload.Gen.rng 5) schema
        ~dom_size:3 ~density:0.5
    in
    let r = Tgd_chase.Chase.restricted sigma i in
    check_bool "model" true (Tgd_chase.Chase.is_model r)
  in
  run (tgds "A(x,y), A(y,x) -> exists z. A(x,z).");
  run (Tgd_workload.Families.existential_chain 4);
  run (Tgd_workload.Families.dl_lite_roles 3)

let qcheck_certified_terminates =
  (* certified ⇒ the unbudgeted restricted chase terminates.  Termination of
     a non-terminating chase would hang the test, so give certified sets a
     generous fact budget and require a Terminated outcome within it. *)
  QCheck.Test.make ~count:60 ~name:"certificate implies chase termination"
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (s1, s2) ->
      let st = Tgd_workload.Gen.rng (1 + s1 + (1000 * s2)) in
      let schema =
        Tgd_workload.Gen.random_schema st ~relations:3 ~max_arity:2
      in
      let sigma =
        List.init 3 (fun _ ->
            Tgd_workload.Gen.random_tgd st schema ~n:3 ~m:1 ~body_atoms:2
              ~head_atoms:1)
      in
      match Termination.certificate sigma with
      | None -> QCheck.assume_fail ()
      | Some _ ->
        let i =
          Tgd_workload.Gen.random_instance st schema ~dom_size:2 ~density:0.5
        in
        let budget =
          Tgd_engine.Budget.limits ~rounds:max_int ~facts:200_000
        in
        let r = Tgd_chase.Chase.restricted ~budget ~analyze:false sigma i in
        Tgd_chase.Chase.is_model r)

(* ---- lints ---- *)

let test_lint_duplicates () =
  let sigma = tgds "E(x,y) -> P(x). E(u,w) -> P(u). E(x,y) -> P(y)." in
  match Lint.duplicates sigma with
  | [ d ] ->
    check_bool "warning" true (d.Diagnostic.severity = Diagnostic.Warning);
    Alcotest.(check string) "code" "duplicate-rule" d.Diagnostic.code;
    Alcotest.(check (option int)) "rule 1 flagged" (Some 1) d.Diagnostic.rule
  | l -> Alcotest.failf "expected one duplicate, got %d" (List.length l)

let test_lint_tautology () =
  check_bool "projection tautology" true
    (Lint.tautological (tgd "E(x,y) -> exists z. E(x,z)."));
  check_bool "reflexive head not tautological" false
    (Lint.tautological (tgd "E(x,y) -> E(y,x)."));
  check_bool "copy rule tautological" true
    (Lint.tautological (tgd "E(x,y) -> E(x,y)."));
  check_bool "new relation not tautological" false
    (Lint.tautological (tgd "E(x,y) -> P(x)."));
  check_bool "empty body never tautological" false
    (Lint.tautological (tgd "-> exists z. P(z)."))

let test_lint_unused_universals () =
  match Lint.unused_universals (tgds "E(x,y) -> P(x).") with
  | [ d ] ->
    check_bool "info" true (d.Diagnostic.severity = Diagnostic.Info);
    check_bool "mentions y" true
      (String.length d.Diagnostic.message > 0
      && String.contains d.Diagnostic.message 'y')
  | l -> Alcotest.failf "expected one lint, got %d" (List.length l)

let test_lint_class_downgrades () =
  (* frontier-guarded, not guarded: z escapes every guard *)
  let almost = tgds "R(x,y), S(y,z) -> T(x,y)." in
  check_bool "almost-guarded hint" true
    (List.exists
       (fun d -> d.Diagnostic.code = "almost-guarded")
       (Lint.class_downgrades almost));
  let linear = tgds "R(x,y) -> T(x)." in
  check_int "linear rule clean" 0 (List.length (Lint.class_downgrades linear))

let test_lint_subsumed () =
  let oracle rest s =
    Tgd_chase.Entailment.(entails rest s = Proved)
  in
  let sigma =
    tgds "E(x,y) -> P(x). E(x,y) -> P(x), Q(y). Q(x) -> R(x)."
  in
  (match Lint.subsumed ~oracle sigma with
  | [ d ] -> Alcotest.(check (option int)) "rule 0 subsumed" (Some 0) d.Diagnostic.rule
  | l -> Alcotest.failf "expected one subsumption, got %d" (List.length l));
  (* exact duplicates are left to the duplicate lint *)
  let dup = tgds "E(x,y) -> P(x). E(u,w) -> P(u)." in
  check_int "duplicates skipped" 0 (List.length (Lint.subsumed ~oracle dup))

(* ---- strategy ---- *)

let test_strategy () =
  let full = Tgd_workload.Families.linear_chain 3 in
  let s = Strategy.decide full in
  check_bool "full -> datalog" true (s.Strategy.engine = Strategy.Datalog_saturation);
  check_bool "promotable" true (Strategy.may_promote s);
  let wa = tgds "P(x) -> exists z. E(x,z)." in
  let s = Strategy.decide wa in
  check_bool "certified -> completion" true
    (s.Strategy.engine = Strategy.Chase_to_completion);
  let none = tgds "E(x,y) -> exists z. E(y,z)." in
  let s = Strategy.decide none in
  check_bool "uncertified -> budgeted" true
    (s.Strategy.engine = Strategy.Budgeted_chase);
  check_bool "not promotable" false (Strategy.may_promote s)

(* ---- promotion through the chase front-end ---- *)

let test_promotion () =
  let sigma = Tgd_workload.Families.existential_chain 6 in
  let schema = Tgd_core.Rewrite.schema_of sigma in
  let i =
    Tgd_workload.Gen.random_instance (Tgd_workload.Gen.rng 2) schema
      ~dom_size:3 ~density:0.6
  in
  let budget = Tgd_engine.Budget.limits ~rounds:1 ~facts:100_000 in
  let plain = Tgd_chase.Chase.restricted ~budget ~analyze:false sigma i in
  check_bool "truncated without analysis" true
    (plain.Tgd_chase.Chase.outcome
    = Tgd_chase.Chase.Truncated Tgd_engine.Budget.Rounds);
  let promoted = Tgd_chase.Chase.restricted ~budget sigma i in
  check_bool "promoted to a model" true (Tgd_chase.Chase.is_model promoted);
  (* an uncertified set keeps its typed truncation even with analysis on *)
  let bad = tgds "E(x,y) -> exists z. E(y,z)." in
  let bad_schema = Tgd_core.Rewrite.schema_of bad in
  let bi = inst ~schema:bad_schema "E(a,b)." in
  let r = Tgd_chase.Chase.restricted ~budget bad bi in
  check_bool "still truncated" true
    (r.Tgd_chase.Chase.outcome
    = Tgd_chase.Chase.Truncated Tgd_engine.Budget.Rounds)

let test_promotion_never_lifts_fact_caps () =
  (* certificate or not, a Facts truncation is the caller's memory guard and
     must survive analysis *)
  let sigma = Tgd_workload.Families.existential_chain 8 in
  let schema = Tgd_core.Rewrite.schema_of sigma in
  (* a single seed fact forces eight derivations, well past the cap *)
  let i = inst ~schema "E0(a,b)." in
  let budget = Tgd_engine.Budget.limits ~rounds:1000 ~facts:3 in
  let r = Tgd_chase.Chase.restricted ~budget sigma i in
  check_bool "facts cap kept" true
    (r.Tgd_chase.Chase.outcome
    = Tgd_chase.Chase.Truncated Tgd_engine.Budget.Facts)

(* ---- the driver ---- *)

let test_analyze_report () =
  let sigma =
    tgds "E(x,y) -> P(x). E(u,w) -> P(u). E(x,y) -> exists z. E(x,z)."
  in
  let r = Analyze.run sigma in
  check_int "rules" 3 r.Analyze.n_rules;
  check_int "exit 2: tautological head is an error" 2 (Analyze.exit_code r);
  check_bool "duplicate reported" true
    (List.exists
       (fun d -> d.Diagnostic.code = "duplicate-rule")
       r.Analyze.diagnostics);
  check_bool "tautology reported" true
    (List.exists
       (fun d -> d.Diagnostic.code = "tautological-head")
       r.Analyze.diagnostics);
  (* sorted most severe first *)
  let ranks =
    List.map (fun d -> Diagnostic.severity_rank d.Diagnostic.severity)
      r.Analyze.diagnostics
  in
  check_bool "sorted" true (List.sort compare ranks = ranks)

let test_analyze_clean_and_json () =
  (* transitive closure: E occurs in a head, so under the closed Datalog
     convention nothing populates it — flagged, but only as a warning *)
  let tc = Analyze.run (tgds "E(x,y), E(y,z) -> E(x,z).") in
  check_int "dead-rule is a warning" 1 (Analyze.exit_code tc);
  check_bool "dead-rule reported" true
    (List.exists
       (fun d -> d.Diagnostic.code = "dead-rule")
       tc.Analyze.diagnostics);
  let r = Analyze.run (tgds "E(x,y) -> P(x). P(x), E(x,y) -> Q(y).") in
  check_int "clean" 0 (Analyze.exit_code r);
  let j = Analyze.to_json r in
  check_bool "json has exit_code" true
    (let needle = "\"exit_code\":0" in
     let rec find i =
       i + String.length needle <= String.length j
       && (String.sub j i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  (* witness path: non-wa set reports its cycle *)
  let r2 = Analyze.run (tgds "E(x,y) -> exists z. E(y,z).") in
  check_bool "wa witness present" true (r2.Analyze.wa_witness <> None);
  check_int "warning exit" 1 (Analyze.exit_code r2)

let suite =
  [ case "depgraph: edb/derivable/dead" test_depgraph_basic;
    case "depgraph: underivable body kills rules" test_depgraph_dead_rule;
    case "depgraph: sccs and strata" test_depgraph_sccs_strata;
    case "depgraph: empty bodies fire" test_depgraph_empty_body_fires;
    case "termination: certificates" test_certificates;
    case "termination: wa witness is a real cycle" test_wa_witness_is_real;
    case "termination: ja witness is real" test_ja_witness_is_real;
    case "termination: movement sets" test_movement;
    case "termination: wa implies ja" test_wa_implies_ja;
    case "termination: certificates on §9.1 families" test_certificate_families;
    slow_case "termination: certified chase terminates"
      test_certified_chase_terminates;
    QCheck_alcotest.to_alcotest qcheck_certified_terminates;
    case "lint: duplicates" test_lint_duplicates;
    case "lint: tautological heads" test_lint_tautology;
    case "lint: unused universals" test_lint_unused_universals;
    case "lint: class downgrades" test_lint_class_downgrades;
    slow_case "lint: subsumption" test_lint_subsumed;
    case "strategy: engine selection" test_strategy;
    case "chase: certificate promotes round truncation" test_promotion;
    case "chase: promotion never lifts fact caps"
      test_promotion_never_lifts_fact_caps;
    case "analyze: report and exit codes" test_analyze_report;
    case "analyze: clean set and json" test_analyze_clean_and_json
  ]
