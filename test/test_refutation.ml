open Tgd_instance
open Tgd_core
open Helpers

let looping = [ tgd "E(x,y) -> exists z. E(y,z)." ]
let tiny = Tgd_engine.Budget.limits ~rounds:4 ~facts:50

let test_upgrades_unknown () =
  let goal = tgd "E(x,y) -> F(x,y)." in
  (* the chase alone cannot settle this *)
  check_answer "chase says unknown" Tgd_chase.Entailment.Unknown
    (Tgd_chase.Entailment.entails ~budget:tiny looping goal);
  (* finite refutation settles it *)
  check_answer "refutation disproves" Tgd_chase.Entailment.Disproved
    (Refutation.entails ~budget:tiny looping goal)

let test_countermodel_is_genuine () =
  let goal = tgd "E(x,y) -> F(x,y)." in
  match Refutation.countermodel looping goal with
  | None -> Alcotest.fail "expected a countermodel"
  | Some i ->
    check_bool "models Σ" true (Satisfaction.tgds i looping);
    check_bool "violates goal" false (Satisfaction.tgd i goal)

let test_no_false_refutation () =
  (* an actually-entailed goal must never be "refuted" *)
  let sigma = [ tgd "E(x,y) -> F(x,y)."; tgd "F(x,y) -> G(x,y)." ] in
  check_answer "still proved" Tgd_chase.Entailment.Proved
    (Refutation.entails sigma (tgd "E(x,y) -> G(x,y)."));
  (* confirming absence is exponential in the fact space, so bound the
     extra elements: the 3-relation schema over the 2 frozen constants is
     already 2^11 candidate instances *)
  check_bool "no countermodel exists" true
    (Refutation.countermodel ~extra:0 sigma (tgd "E(x,y) -> G(x,y).") = None)

let test_unknown_persists_when_bound_too_small () =
  (* every node has a successor, and any loop or 2-cycle marks its nodes
     with W.  The goal E(x,y) → W(y) fails only in models where the frozen
     target's successor chain escapes without cycling through it — which
     needs one fresh element beyond the frozen body. *)
  let sigma =
    tgds
      "E(x,y) -> exists z. E(y,z).\nE(x,y), E(y,x) -> W(x).\nE(x,x) -> W(x)."
  in
  let goal = tgd "E(x,y) -> W(y)." in
  check_answer "chase alone cannot settle" Tgd_chase.Entailment.Unknown
    (Tgd_chase.Entailment.entails ~budget:tiny sigma goal);
  check_answer "refutable with 1 extra" Tgd_chase.Entailment.Disproved
    (Refutation.entails ~budget:tiny ~extra:1 sigma goal);
  check_answer "not refutable with 0 extra" Tgd_chase.Entailment.Unknown
    (Refutation.entails ~budget:tiny ~extra:0 sigma goal)

let test_bodiless_goal () =
  let sigma = [ tgd "P(x) -> Q(x)." ] in
  let goal = tgd "-> exists z. P(z)." in
  (* the empty instance is a model of Σ violating the goal *)
  check_answer "refuted" Tgd_chase.Entailment.Disproved
    (Refutation.entails sigma goal)

let test_entails_set () =
  check_answer "mixed set disproved" Tgd_chase.Entailment.Disproved
    (Refutation.entails_set ~budget:tiny looping
       [ tgd "E(x,y) -> exists z. E(y,z)."; tgd "E(x,y) -> F(x,y)." ])

let suite =
  [ case "upgrades chase unknowns" test_upgrades_unknown;
    case "countermodels are genuine" test_countermodel_is_genuine;
    case "no false refutations" test_no_false_refutation;
    case "bound sensitivity" test_unknown_persists_when_bound_too_small;
    case "bodiless goals" test_bodiless_goal;
    case "set version" test_entails_set
  ]
