(* Fault injection (Tgd_engine.Chaos): every injected fault surfaces as a
   typed outcome at a run boundary — never an escaped exception, never a
   hung pool — and fault-free chaos (delays, allocation spikes) perturbs
   timing without changing any result. *)

open Tgd_instance
open Tgd_engine
open Helpers
module Chase = Tgd_chase.Chase
module Rewrite = Tgd_core.Rewrite

let s = schema [ ("E", 2) ]
let sigma_tc = [ tgd "E(x,y), E(y,z) -> E(x,z)." ]
let chain = inst ~schema:s "E(a,b). E(b,c). E(c,d). E(d,e)."

let always_raise = { Chaos.default_config with Chaos.raise_p = 1.0 }

let perturb_only =
  { Chaos.default_config with
    Chaos.delay_p = 0.3;
    delay_s = 1e-4;
    alloc_p = 0.3;
    alloc_words = 16_384
  }

let fault_site r =
  match r.Chase.outcome with
  | Chase.Truncated (Budget.Fault site) -> site
  | _ -> Alcotest.failf "expected a Fault trip, got %a" Chase.pp_result r

(* -- faults become typed truncations ------------------------------------ *)

let test_chase_fault_typed () =
  let r =
    Chaos.with_config always_raise (fun () -> Chase.restricted sigma_tc chain)
  in
  let site = fault_site r in
  check_bool "site names the firing loop" true
    (String.length site >= 10 && String.sub site 0 10 = "chase.fire");
  (* the instance is still a committed, sound prefix *)
  check_bool "contains input" true (Instance.subset chain r.Chase.instance);
  check_bool "fault results are not cacheable" false
    (Chase.deterministic_result r);
  check_bool "config uninstalled on exit" false (Chaos.active ())

let test_naive_chase_fault_typed () =
  let r =
    Chaos.with_config always_raise (fun () ->
        Chase.restricted ~naive:true sigma_tc chain)
  in
  let site = fault_site r in
  check_bool "site names the naive loop" true
    (String.length site >= 11 && String.sub site 0 11 = "chase.naive");
  check_bool "contains input" true (Instance.subset chain r.Chase.instance)

let test_parallel_chase_fault_typed () =
  (* jobs > 1 adds the pool.chunk site; the fault must still come back as a
     typed trip on the submitting domain, with the pool drained *)
  let r =
    Chaos.with_config always_raise (fun () ->
        Chase.restricted ~jobs:4 sigma_tc chain)
  in
  ignore (fault_site r);
  (* the engine is healthy afterwards: the same pool-backed chase completes *)
  let clean = Chase.restricted ~jobs:4 sigma_tc chain in
  check_bool "pool usable after fault" true (Chase.is_model clean)

let test_pool_drains_and_reraises () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (match
         Chaos.with_config always_raise (fun () ->
             Pool.parallel_map pool (fun x -> x + 1) (Seq.init 64 Fun.id))
       with
      | _ -> Alcotest.fail "an injected pool fault must re-raise at the join"
      | exception Chaos.Injected site ->
        check_bool "site names the chunk" true
          (String.length site >= 10 && String.sub site 0 10 = "pool.chunk"));
      (* the pool survives the fault: same workers, clean batch *)
      check_bool "pool survives" true
        (Pool.parallel_map pool (fun x -> x * 2) (Seq.init 10 Fun.id)
        = List.init 10 (fun x -> x * 2)))

let test_rewrite_fault_typed () =
  let sigma_g, _ = Tgd_workload.Families.separation_linear_vs_guarded in
  let config = Rewrite.{ default_config with jobs = 4 } in
  match
    Chaos.with_config always_raise (fun () -> Rewrite.g_to_l ~config sigma_g)
  with
  | Budget.Truncated { reason = Budget.Fault _; partial; _ } ->
    (* the discarded-batch contract: nothing half-screened is committed *)
    let cp = Option.get partial.Rewrite.checkpoint in
    check_int "cursor at a committed boundary" cp.Rewrite.cursor
      (List.length cp.Rewrite.screened_prefix)
  | Budget.Truncated { reason; _ } ->
    Alcotest.failf "expected Fault, got %a" Budget.pp_exhaustion reason
  | Budget.Complete _ -> Alcotest.fail "raise_p = 1 cannot complete a sweep"

(* -- fault-free chaos perturbs timing, never results -------------------- *)

let test_perturbation_preserves_results () =
  let baseline = Chase.restricted sigma_tc chain in
  List.iter
    (fun jobs ->
      let r =
        Chaos.with_config perturb_only (fun () ->
            Chase.restricted ~jobs sigma_tc chain)
      in
      check_bool
        (Printf.sprintf "delays/allocs change nothing at jobs %d" jobs)
        true
        (Chase.is_model r
        && Instance.equal baseline.Chase.instance r.Chase.instance
        && baseline.Chase.fired = r.Chase.fired))
    [ 1; 4 ]

let test_uninstall_restores_quiet () =
  Chaos.install always_raise;
  Chaos.uninstall ();
  check_bool "inactive" false (Chaos.active ());
  let r = Chase.restricted sigma_tc chain in
  check_bool "no residual faults" true (Chase.is_model r)

(* -- per-site shot streams are deterministic and independent ------------ *)

let firing_shots cfg site n =
  Chaos.install cfg;
  let out = ref [] in
  for shot = 0 to n - 1 do
    match Chaos.step ~site with
    | () -> ()
    | exception Chaos.Injected _ -> out := shot :: !out
  done;
  Chaos.uninstall ();
  List.rev !out

let test_site_streams_replay () =
  let cfg = { Chaos.default_config with Chaos.seed = 42; raise_p = 0.3 } in
  let a = firing_shots cfg "chase.fire" 200 in
  check_bool "the stream fires somewhere at p = 0.3" true (a <> []);
  check_bool "install resets the schedule: identical replay" true
    (firing_shots cfg "chase.fire" 200 = a);
  (* independence: interleaving steps of other sites must not shift this
     site's stream — shot numbers are per site, not global *)
  Chaos.install cfg;
  let interleaved = ref [] in
  for shot = 0 to 199 do
    (try Chaos.step ~site:"pool.worker" with Chaos.Injected _ -> ());
    (try Chaos.step ~site:"serve.request" with Chaos.Injected _ -> ());
    match Chaos.step ~site:"chase.fire" with
    | () -> ()
    | exception Chaos.Injected _ -> interleaved := shot :: !interleaved
  done;
  Chaos.uninstall ();
  check_bool "stream unchanged under interleaving" true
    (List.rev !interleaved = a);
  (* distinct sites see distinct schedules under the same seed *)
  check_bool "sites are decorrelated" true
    (firing_shots cfg "pool.worker" 200 <> a);
  (* and the shot counter is observable for test mining *)
  Chaos.install cfg;
  (try Chaos.step ~site:"chase.fire" with Chaos.Injected _ -> ());
  (try Chaos.step ~site:"chase.fire" with Chaos.Injected _ -> ());
  check_int "shot_count advances per site" 2
    (Chaos.shot_count ~site:"chase.fire");
  check_int "other sites unaffected" 0 (Chaos.shot_count ~site:"pool.chunk");
  Chaos.uninstall ()

let test_seed_changes_schedule () =
  let cfg seed = { Chaos.default_config with Chaos.seed; raise_p = 0.3 } in
  check_bool "different seeds, different schedules" true
    (firing_shots (cfg 1) "chase.fire" 200
    <> firing_shots (cfg 2) "chase.fire" 200)

(* -- qcheck: arbitrary fault schedules never break the typed contract --- *)

let arb_chaos_config =
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf "{seed=%d; delay_p=%.2f; alloc_p=%.2f; raise_p=%.2f}"
        c.Chaos.seed c.Chaos.delay_p c.Chaos.alloc_p c.Chaos.raise_p)
    (fun st ->
      { Chaos.seed = Random.State.int st 1_000_000;
        delay_p = Random.State.float st 0.5;
        delay_s = 1e-5;
        alloc_p = Random.State.float st 0.5;
        alloc_words = 4_096;
        raise_p = Random.State.float st 1.0;
        kill_p = 0.
      })

let prop_chaos_chase_typed =
  QCheck.Test.make ~name:"chase under arbitrary chaos is typed and sound"
    ~count:40 arb_chaos_config (fun cfg ->
      let jobs = 1 + (cfg.Chaos.seed mod 4) in
      let r =
        Chaos.with_config cfg (fun () ->
            Chase.restricted ~jobs sigma_tc chain)
      in
      (* with_pool returned (no hang), the outcome is typed, the committed
         prefix is sound, and quiet determinism is restored *)
      let typed =
        match r.Chase.outcome with
        | Chase.Terminated -> Chase.is_model r
        | Chase.Truncated (Budget.Fault _) -> true
        | Chase.Truncated _ -> false
      in
      typed
      && Instance.subset chain r.Chase.instance
      && (not (Chaos.active ()))
      && Chase.is_model (Chase.restricted ~jobs sigma_tc chain))

let prop_chaos_pool_drains =
  QCheck.Test.make ~name:"pool batches under chaos drain or re-raise Injected"
    ~count:30 arb_chaos_config (fun cfg ->
      Pool.with_pool ~jobs:3 (fun pool ->
          let input = Seq.init 48 Fun.id in
          let expected = List.init 48 (fun x -> x * x) in
          (match
             Chaos.with_config cfg (fun () ->
                 Pool.parallel_map pool (fun x -> x * x) input)
           with
          | result -> result = expected
          | exception Chaos.Injected _ -> true)
          (* and the pool is reusable either way *)
          && Pool.parallel_map pool (fun x -> x * x) input = expected))

let suite =
  [ case "chase fault is a typed trip" test_chase_fault_typed;
    case "naive chase fault is a typed trip" test_naive_chase_fault_typed;
    case "parallel chase fault is a typed trip" test_parallel_chase_fault_typed;
    case "pool drains and re-raises" test_pool_drains_and_reraises;
    case "rewrite sweep fault is a typed trip" test_rewrite_fault_typed;
    case "delays and allocs preserve results" test_perturbation_preserves_results;
    case "uninstall restores quiet" test_uninstall_restores_quiet;
    case "per-site streams replay deterministically" test_site_streams_replay;
    case "seed changes the schedule" test_seed_changes_schedule
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_chaos_chase_typed; prop_chaos_pool_drains ]
