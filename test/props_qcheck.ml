(* Property-based tests (qcheck) on the paper's invariants. *)

open Tgd_syntax
open Tgd_instance
open Tgd_workload

let s2 = Schema.of_pairs [ ("E", 2); ("P", 1) ]

(* qcheck generators are functions of Random.State.t, which is exactly what
   Tgd_workload.Gen takes. *)

let gen_instance : Instance.t QCheck.Gen.t =
 fun st ->
  Gen.random_instance st s2
    ~dom_size:(1 + Random.State.int st 3)
    ~density:(Random.State.float st 0.8)

let gen_full_tgd : Tgd.t QCheck.Gen.t =
 fun st -> Gen.random_full_tgd st s2 ~n:3 ~body_atoms:2 ~head_atoms:1

let gen_linear_tgd : Tgd.t QCheck.Gen.t =
 fun st -> Gen.random_linear_tgd st s2 ~n:2 ~m:1

let gen_any_tgd : Tgd.t QCheck.Gen.t =
 fun st ->
  if Random.State.bool st then gen_full_tgd st else gen_linear_tgd st

let arb_instance = QCheck.make ~print:Instance.to_string gen_instance
let arb_full_tgd = QCheck.make ~print:Tgd.to_string gen_full_tgd
let arb_any_tgd = QCheck.make ~print:Tgd.to_string gen_any_tgd

let arb_pair_full =
  QCheck.make
    ~print:(fun (a, b) -> Tgd.to_string a ^ " ;; " ^ Tgd.to_string b)
    (QCheck.Gen.pair gen_full_tgd gen_full_tgd)

let chase_model sigma i =
  let r = Tgd_chase.Chase.restricted sigma i in
  r.Tgd_chase.Chase.instance

(* Lemma 3.2: critical instances model every tgd *)
let prop_critical_models_tgds =
  QCheck.Test.make ~name:"Lemma 3.2: critical ⊨ σ (random σ)" ~count:200
    arb_any_tgd (fun t ->
      List.for_all
        (fun k -> Satisfaction.tgd (Critical.make s2 k) t)
        [ 1; 2; 3 ])

(* Lemma 3.4: models of full tgds are closed under ⊗ (full tgds so the
   chase provides genuine models) *)
let prop_product_closure =
  QCheck.Test.make ~name:"Lemma 3.4: I,J ⊨ Σ ⟹ I⊗J ⊨ Σ" ~count:100
    (QCheck.pair arb_pair_full (QCheck.pair arb_instance arb_instance))
    (fun ((t1, t2), (i, j)) ->
      let sigma = [ t1; t2 ] in
      let mi = chase_model sigma i and mj = chase_model sigma j in
      QCheck.assume (Satisfaction.tgds mi sigma && Satisfaction.tgds mj sigma);
      Satisfaction.tgds (Product.direct mi mj) sigma)

(* hom search soundness: a returned map really is a homomorphism *)
let prop_hom_soundness =
  QCheck.Test.make ~name:"hom search soundness" ~count:200
    (QCheck.pair arb_instance arb_instance) (fun (i, j) ->
      match Hom.find_instance_hom i j with
      | None -> true
      | Some h ->
        let apply x =
          match Constant.Map.find_opt x h with Some y -> y | None -> x
        in
        Instance.subset (Instance.map_constants apply i) j)

(* canonicalization is invariant under renaming *)
let prop_canonical_renaming =
  QCheck.Test.make ~name:"canonical form invariant under renaming" ~count:200
    arb_any_tgd (fun t ->
      let rho =
        Variable.Set.fold
          (fun v acc -> Variable.Map.add v (Variable.make (Variable.name v ^ "_r")) acc)
          (Tgd.all_vars t) Variable.Map.empty
      in
      Canonical.equal_up_to_renaming t (Tgd.rename rho t))

(* product projections are homomorphisms *)
let prop_product_projections =
  QCheck.Test.make ~name:"π1(I⊗J) ⊆ I and π2(I⊗J) ⊆ J" ~count:100
    (QCheck.pair arb_instance arb_instance) (fun (i, j) ->
      let p = Product.direct i j in
      Instance.subset (Product.project_first p) i
      && Instance.subset (Product.project_second p) j)

(* chase soundness: result contains the input and satisfies Σ *)
let prop_chase_soundness =
  QCheck.Test.make ~name:"chase: D ⊆ chase(D,Σ) ⊨ Σ (full tgds)" ~count:100
    (QCheck.pair arb_pair_full arb_instance) (fun ((t1, t2), i) ->
      let sigma = [ t1; t2 ] in
      let r = Tgd_chase.Chase.restricted sigma i in
      Tgd_chase.Chase.is_model r
      && Instance.subset i r.Tgd_chase.Chase.instance
      && Satisfaction.tgds r.Tgd_chase.Chase.instance sigma)

(* entailment soundness, verified exhaustively on the bounded universe *)
let prop_entailment_sound =
  QCheck.Test.make ~name:"Σ ⊨ σ proved ⟹ models(Σ) ⊆ models(σ) (dom ≤ 2)"
    ~count:60
    (QCheck.pair arb_pair_full arb_full_tgd)
    (fun ((t1, t2), goal) ->
      let sigma = [ t1; t2 ] in
      match Tgd_chase.Entailment.entails sigma goal with
      | Tgd_chase.Entailment.Proved ->
        Tgd_core.Enumerate.models_up_to sigma s2 2
        |> Seq.for_all (fun i -> Satisfaction.tgd i goal)
      | Tgd_chase.Entailment.Disproved | Tgd_chase.Entailment.Unknown -> true)

(* entailment completeness on the bounded universe: a disproved entailment
   has a (possibly large) countermodel; we check the contrapositive on the
   bounded fragment: if all bounded models agree, the chase countermodel
   must disagree only beyond the bound — rarely triggered, so we instead
   check Disproved ⟹ the chase produced a genuine countermodel *)
let prop_disproved_has_countermodel =
  QCheck.Test.make ~name:"Σ ⊭ σ disproved ⟹ countermodel exists" ~count:60
    (QCheck.pair arb_pair_full arb_full_tgd)
    (fun ((t1, t2), goal) ->
      let sigma = [ t1; t2 ] in
      match Tgd_chase.Entailment.entails sigma goal with
      | Tgd_chase.Entailment.Disproved ->
        (* rebuild the countermodel: chase of the frozen body *)
        let _, db =
          Tgd_chase.Entailment.freeze_instance
            (Tgd_core.Rewrite.schema_of (goal :: sigma))
            (Tgd.body goal)
        in
        let m = chase_model sigma db in
        Satisfaction.tgds m sigma && not (Satisfaction.tgd m goal)
      | Tgd_chase.Entailment.Proved | Tgd_chase.Entailment.Unknown -> true)

(* Theorem 5.6 (1)⇒(2) item 3: full-tgd models closed under non-oblivious
   duplication *)
let prop_non_oblivious_dupext =
  QCheck.Test.make ~name:"full tgds closed under non-oblivious duplication"
    ~count:100
    (QCheck.pair arb_pair_full arb_instance)
    (fun ((t1, t2), i) ->
      let sigma = [ t1; t2 ] in
      let m = chase_model sigma i in
      QCheck.assume (not (Constant.Set.is_empty (Instance.dom m)));
      let cs = Constant.Set.elements (Instance.dom m) in
      let cpick = List.nth cs 0 in
      let d = Duplicating.fresh_for m in
      Satisfaction.tgds (Duplicating.non_oblivious m cpick d) sigma)

(* parser round trip *)
let prop_parse_round_trip =
  QCheck.Test.make ~name:"parse ∘ print = id (mod renaming)" ~count:200
    arb_any_tgd (fun t ->
      let t' = Tgd_parse.Parse.tgd_exn (Tgd.to_string t ^ ".") in
      Canonical.equal_up_to_renaming t t')

(* neighbourhood members respect the cardinality contract *)
let prop_neighbourhood_bound =
  QCheck.Test.make ~name:"m-neighbourhood: |adom| ≤ |F| + m" ~count:100
    (QCheck.pair arb_instance QCheck.(int_bound 2))
    (fun (j, m) ->
      let adom = Constant.Set.elements (Instance.adom j) in
      let f =
        Constant.set_of_list (List.filteri (fun k _ -> k < 1) adom)
      in
      Neighborhood.of_set f j m
      |> Seq.for_all (fun j' ->
             Constant.Set.cardinal (Instance.adom j')
             <= Constant.Set.cardinal f + m
             && Instance.subset j' j))

(* bigint ring laws against native ints *)
let prop_bigint_matches_native =
  QCheck.Test.make ~name:"bigint matches native arithmetic" ~count:300
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      let open Tgd_core.Bigint in
      to_string (add (of_int a) (of_int b)) = string_of_int (a + b)
      && to_string (mul (of_int a) (of_int b)) = string_of_int (a * b)
      && compare (of_int a) (of_int b) = Int.compare a b)

let prop_bigint_distributive =
  QCheck.Test.make ~name:"bigint distributivity at scale" ~count:100
    QCheck.(triple (int_bound 1000) (int_bound 1000) (int_bound 1000))
    (fun (a, b, e) ->
      let open Tgd_core.Bigint in
      let x = pow (of_int (a + 2)) (20 + (e mod 10)) in
      let y = of_int b and z = of_int a in
      equal (mul x (add y z)) (add (mul x y) (mul x z)))

(* isomorphic instances agree on tgd satisfaction *)
let prop_iso_invariance =
  QCheck.Test.make ~name:"satisfaction is isomorphism-invariant" ~count:100
    (QCheck.pair arb_any_tgd arb_instance) (fun (t, i) ->
      let rho x =
        match x with
        | Constant.Indexed k -> Constant.named (Printf.sprintf "iso%d" k)
        | other -> other
      in
      let j = Instance.map_constants rho i in
      Satisfaction.tgd i t = Satisfaction.tgd j t)

(* hypergraph: adding an atom covering all variables makes any body acyclic *)
let prop_guard_acyclic =
  QCheck.Test.make ~name:"a covering guard makes any conjunction acyclic" ~count:100
    (QCheck.make ~print:Tgd.to_string (fun st ->
         Gen.random_tgd st s2 ~n:4 ~m:0 ~body_atoms:3 ~head_atoms:1))
    (fun t ->
      let body = Tgd.body t in
      let guard_rel = Relation.make "Guard" 4 in
      let vars = Variable.Set.elements (Tgd.universal_vars t) in
      let padded =
        List.init 4 (fun i ->
            List.nth vars (if vars = [] then 0 else i mod List.length vars))
      in
      QCheck.assume (vars <> []);
      Hypergraph.is_acyclic (Atom.of_vars guard_rel padded :: body))

(* retract: the core is a hom-equivalent subinstance and itself a core *)
let prop_core_invariants =
  QCheck.Test.make ~name:"core: hom-equivalent retract, idempotent" ~count:60
    arb_instance (fun i ->
      let core = Retract.core i in
      Instance.subset core i
      && Hom.hom_equivalent i core
      && Retract.is_core core)

(* theory chase: on egd-free theories it agrees with the plain chase *)
let prop_theory_chase_agrees =
  QCheck.Test.make ~name:"theory chase = chase on egd-free theories" ~count:60
    (QCheck.pair arb_pair_full arb_instance)
    (fun ((t1, t2), i) ->
      let sigma = [ t1; t2 ] in
      let th = Tgd_chase.Theory.of_tgds sigma in
      let r1 = Tgd_chase.Theory.chase th i in
      let r2 = Tgd_chase.Chase.restricted sigma i in
      match r1.Tgd_chase.Theory.outcome with
      | Tgd_chase.Theory.Model ->
        Tgd_chase.Chase.is_model r2
        && Instance.equal_facts r1.Tgd_chase.Theory.instance
             r2.Tgd_chase.Chase.instance
      | _ -> false)

(* theory chase soundness: on Model the result satisfies the theory *)
let prop_theory_chase_sound =
  QCheck.Test.make ~name:"theory chase soundness (with key egd)" ~count:60
    (QCheck.pair arb_full_tgd arb_instance)
    (fun (t, i) ->
      let e = Relation.make "E" 2 in
      let key =
        Egd.make
          ~body:
            [ Atom.of_vars e [ Variable.make "x"; Variable.make "y" ];
              Atom.of_vars e [ Variable.make "x"; Variable.make "y'" ] ]
          (Variable.make "y") (Variable.make "y'")
      in
      let th = Tgd_chase.Theory.{ tgds = [ t ]; egds = [ key ]; denials = [] } in
      let r = Tgd_chase.Theory.chase th i in
      match r.Tgd_chase.Theory.outcome with
      | Tgd_chase.Theory.Model -> Tgd_chase.Theory.satisfies r.Tgd_chase.Theory.instance th
      | Tgd_chase.Theory.Failed _ -> true (* rigid clash on random data is fine *)
      | Tgd_chase.Theory.Out_of_budget _ -> true)

(* refutation never contradicts the chase *)
let prop_refutation_consistent =
  QCheck.Test.make ~name:"refutation agrees with definite chase answers" ~count:40
    (QCheck.pair arb_pair_full arb_full_tgd)
    (fun ((t1, t2), goal) ->
      let sigma = [ t1; t2 ] in
      let chase_ans = Tgd_chase.Entailment.entails sigma goal in
      let combined = Tgd_core.Refutation.entails sigma goal in
      match chase_ans with
      | Tgd_chase.Entailment.Unknown -> true
      | definite -> combined = definite)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_critical_models_tgds;
      prop_product_closure;
      prop_hom_soundness;
      prop_canonical_renaming;
      prop_product_projections;
      prop_chase_soundness;
      prop_entailment_sound;
      prop_disproved_has_countermodel;
      prop_non_oblivious_dupext;
      prop_parse_round_trip;
      prop_neighbourhood_bound;
      prop_guard_acyclic;
      prop_core_invariants;
      prop_theory_chase_agrees;
      prop_theory_chase_sound;
      prop_refutation_consistent;
      prop_bigint_matches_native;
      prop_bigint_distributive;
      prop_iso_invariance
    ]
