(* Unified resource governance (Tgd_engine.Budget): typed truncation of the
   chase, theory chase and Section 9 sweeps; deadline/fuel/cancellation
   trips; checkpoint/resume of the rewriting enumerators. *)

open Tgd_instance
open Tgd_core
open Helpers
module Budget = Tgd_engine.Budget
module Chase = Tgd_chase.Chase
module Theory = Tgd_chase.Theory

let s_e = schema [ ("E", 2) ]
let nonterm = [ tgd "E(x,y) -> exists z. E(y,z)." ]
let db = inst ~schema:s_e "E(a,b)."

(* -- budget primitives -------------------------------------------------- *)

let test_check_order_and_token () =
  let b = Budget.make ~fuel:1 () in
  check_bool "fresh budget passes" true (Budget.check b = None);
  check_bool "token untripped" true (Budget.cancelled b = None);
  check_bool "fuel spend ok" true (Budget.spend_fuel b 1 = None);
  check_bool "tank dry" true (Budget.spend_fuel b 1 = Some Budget.Fuel);
  (* a live-limit trip cancels the embedded token for pool workers *)
  check_bool "token tripped" true (Budget.cancelled b = Some Budget.Fuel);
  check_bool "check reports it" true (Budget.check b = Some Budget.Fuel)

let test_cancel_write_once () =
  let c = Budget.Cancel.create () in
  Budget.Cancel.cancel ~reason:Budget.Deadline c;
  Budget.Cancel.cancel ~reason:Budget.Memory c;
  check_bool "first reason sticks" true
    (Budget.Cancel.reason c = Some Budget.Deadline)

let test_with_rounds_shares_fuel () =
  (* retuning the round cap must keep the same fuel tank and token — the
     Theory loop depends on its one-round inner budgets drawing from the
     outer allowance *)
  let b = Budget.make ~fuel:2 () in
  let b1 = Budget.with_rounds b 1 in
  check_bool "spend via copy" true (Budget.spend_fuel b1 2 = None);
  check_bool "original sees empty tank" true
    (Budget.spend_fuel b 1 = Some Budget.Fuel);
  check_bool "copy's token tripped too" true
    (Budget.cancelled b1 = Some Budget.Fuel)

let test_key_covers_caps_only () =
  check_bool "same caps, same key" true
    (Budget.key (Budget.limits ~rounds:4 ~facts:50)
    = Budget.key (Budget.make ~rounds:4 ~facts:50 ~fuel:1 ~timeout_s:0.01 ()));
  check_bool "different caps differ" true
    (Budget.key (Budget.limits ~rounds:4 ~facts:50)
    <> Budget.key (Budget.limits ~rounds:5 ~facts:50))

(* -- chase under live limits ------------------------------------------- *)

let deadline_case ~naive () =
  let budget = Budget.make ~rounds:max_int ~facts:max_int ~timeout_s:0.05 () in
  let r = Chase.restricted ~naive ~budget nonterm db in
  (match r.Chase.outcome with
  | Chase.Truncated Budget.Deadline -> ()
  | Chase.Truncated other ->
    Alcotest.failf "wrong reason: %a" Budget.pp_exhaustion other
  | Chase.Terminated -> Alcotest.fail "a non-terminating chase terminated");
  (* the partial is a usable, sound prefix *)
  check_bool "nonempty partial" true (Instance.fact_count r.Chase.instance >= 1);
  check_bool "contains input" true (Instance.subset db r.Chase.instance);
  check_bool "prefix folds into a model fixing the input" true
    (Tgd_instance.Hom.embeds_fixing (Instance.adom db) r.Chase.instance
       (inst ~schema:s_e "E(a,b). E(b,b)."))

let test_deadline_engine () = deadline_case ~naive:false ()
let test_deadline_naive () = deadline_case ~naive:true ()

let test_fuel_cap () =
  let budget = Budget.make ~rounds:max_int ~facts:max_int ~fuel:5 () in
  let r = Chase.restricted ~budget nonterm db in
  (match r.Chase.outcome with
  | Chase.Truncated Budget.Fuel -> ()
  | _ -> Alcotest.fail "expected a fuel trip");
  check_bool "fired bounded by the tank" true (r.Chase.fired <= 5)

let test_pre_cancelled () =
  let cancel = Budget.Cancel.create () in
  let budget = Budget.make ~rounds:max_int ~facts:max_int ~cancel () in
  Budget.Cancel.cancel cancel;
  let r = Chase.restricted ~budget nonterm db in
  (match r.Chase.outcome with
  | Chase.Truncated Budget.Cancelled -> ()
  | _ -> Alcotest.fail "expected a cancellation trip");
  check_bool "input untouched" true (Instance.subset db r.Chase.instance)

let test_deterministic_result () =
  let capped = Chase.restricted ~budget:(Budget.limits ~rounds:3 ~facts:1000) nonterm db in
  check_bool "round trips are deterministic" true
    (Chase.deterministic_result capped);
  let timed =
    Chase.restricted
      ~budget:(Budget.make ~rounds:max_int ~facts:max_int ~timeout_s:0.05 ())
      nonterm db
  in
  check_bool "deadline trips are not" false (Chase.deterministic_result timed)

(* -- theory chase reports its consumption ------------------------------- *)

let test_theory_out_of_budget () =
  let th = Theory.of_tgds nonterm in
  let r = Theory.chase ~budget:(Budget.limits ~rounds:3 ~facts:10_000) th db in
  match r.Theory.outcome with
  | Theory.Out_of_budget { reason = Budget.Rounds; rounds; facts } ->
    check_int "rounds consumed = cap" 3 rounds;
    check_int "facts reported accurately" facts
      (Instance.fact_count r.Theory.instance);
    check_bool "made progress" true (facts > Instance.fact_count db)
  | _ -> Alcotest.fail "expected Out_of_budget Rounds"

let test_theory_deadline () =
  let th = Theory.of_tgds nonterm in
  let budget = Budget.make ~rounds:max_int ~facts:max_int ~timeout_s:0.05 () in
  let r = Theory.chase ~budget th db in
  match r.Theory.outcome with
  | Theory.Out_of_budget { reason = Budget.Deadline; facts; _ } ->
    check_int "facts match the instance" facts
      (Instance.fact_count r.Theory.instance)
  | _ -> Alcotest.fail "expected Out_of_budget Deadline"

(* -- Section 9 sweeps: truncation and checkpoint/resume ------------------ *)

let sep_caps =
  Candidates.{ max_body_atoms = 8; max_head_atoms = 8; keep_tautologies = false }

let small_caps =
  Candidates.{ max_body_atoms = 2; max_head_atoms = 1; keep_tautologies = false }

let config_with caps budget = Rewrite.{ default_config with caps; budget }

let clear_memos () =
  Tgd_chase.Entailment.clear_memos ();
  Tgd_chase.Chase.clear_memo ()

(* Drive a budgeted rewrite to completion by resuming from each checkpoint
   with a fresh fuel tank (the tank Atomic is shared between budget copies,
   so each attempt must build a new budget).  Chase memoization caches the
   deterministic chases completed inside a discarded batch, so every attempt
   makes progress and the loop terminates. *)
let drive ~caps ~fuel algo sigma =
  let rec go resume attempts =
    if attempts > 200 then Alcotest.fail "resume loop did not converge";
    let config = config_with caps (Budget.make ~fuel ()) in
    match algo ?config:(Some config) ?resume sigma with
    | Budget.Complete (r : Rewrite.report) -> (r, attempts)
    | Budget.Truncated { partial; _ } -> (
      match partial.Rewrite.checkpoint with
      | Some cp ->
        check_int "cursor = |screened prefix|" cp.Rewrite.cursor
          (List.length cp.Rewrite.screened_prefix);
        go (Some cp) (attempts + 1)
      | None -> Alcotest.fail "truncated report must carry a checkpoint")
  in
  go None 0

let outcome_sig = function
  | Rewrite.Rewritable s -> "R:" ^ string_of_int (List.length s)
  | Rewrite.Not_rewritable { complete; unknown_candidates } ->
    Printf.sprintf "N:%b:%d" complete unknown_candidates
  | Rewrite.Unknown msg -> "U:" ^ msg

(* Fuel-starved sweeps: the workloads are chosen so screening actually burns
   fuel (the chases fire triggers), making mid-sweep truncation certain. *)
let resume_case ~caps ~fuel algo sigma =
  clear_memos ();
  let unbudgeted =
    Budget.value
      (algo ?config:(Some (config_with caps Chase.default_budget)) ?resume:None
         sigma)
  in
  clear_memos ();
  let resumed, attempts = drive ~caps ~fuel algo sigma in
  check_bool "the budgeted run was actually truncated at least once" true
    (attempts >= 1);
  Alcotest.check Alcotest.string "resume ∘ truncate = unbudgeted"
    (outcome_sig unbudgeted.Rewrite.outcome)
    (outcome_sig resumed.Rewrite.outcome);
  check_int "same candidates enumerated"
    unbudgeted.Rewrite.candidates_enumerated
    resumed.Rewrite.candidates_enumerated

let test_resume_g_to_l () =
  resume_case ~caps:small_caps ~fuel:12 Rewrite.g_to_l
    (Tgd_workload.Families.guarded_rewritable 2)

let test_resume_fg_to_g () =
  resume_case ~caps:small_caps ~fuel:40 Rewrite.fg_to_g
    (Tgd_workload.Families.fg_rewritable 1)

(* §9.1 separation families: their sweeps fire no triggers, so the live
   limit exercised here is external cancellation — trip at the first batch
   boundary, then resume from the checkpoint and match the unbudgeted
   verdict. *)
let sep_resume_case algo sigma =
  clear_memos ();
  let unbudgeted =
    Budget.value
      (algo ?config:(Some (config_with sep_caps Chase.default_budget))
         ?resume:None sigma)
  in
  let cancel = Budget.Cancel.create () in
  Budget.Cancel.cancel cancel;
  let cp =
    match
      algo ?config:(Some (config_with sep_caps (Budget.make ~cancel ())))
        ?resume:None sigma
    with
    | Budget.Truncated { reason = Budget.Cancelled; partial; _ } ->
      Option.get partial.Rewrite.checkpoint
    | Budget.Truncated { reason; _ } ->
      Alcotest.failf "wrong reason: %a" Budget.pp_exhaustion reason
    | Budget.Complete _ -> Alcotest.fail "a cancelled sweep cannot complete"
  in
  check_int "nothing committed under a dead token" 0 cp.Rewrite.cursor;
  let resumed =
    match
      algo ?config:(Some (config_with sep_caps Chase.default_budget))
        ?resume:(Some cp) sigma
    with
    | Budget.Complete r -> r
    | Budget.Truncated _ -> Alcotest.fail "unbudgeted resume must complete"
  in
  Alcotest.check Alcotest.string "resume ∘ truncate = unbudgeted"
    (outcome_sig unbudgeted.Rewrite.outcome)
    (outcome_sig resumed.Rewrite.outcome)

let test_sep_g_to_l_resume () =
  let sigma_g, _ = Tgd_workload.Families.separation_linear_vs_guarded in
  sep_resume_case Rewrite.g_to_l sigma_g

let test_sep_fg_to_g_resume () =
  let sigma_f, _ = Tgd_workload.Families.separation_guarded_vs_fg in
  sep_resume_case Rewrite.fg_to_g sigma_f

let test_truncation_jobs_independent () =
  (* a fuel trip inside the screening sweep must surface identically at any
     [jobs]: typed Truncated, committed prefix only, resumable to the same
     final outcome *)
  let sigma = Tgd_workload.Families.fg_rewritable 1 in
  let run jobs =
    clear_memos ();
    let config =
      Rewrite.{ (config_with small_caps (Budget.make ~fuel:40 ())) with jobs }
    in
    match Rewrite.fg_to_g ~config sigma with
    | Budget.Truncated { reason; partial; _ } ->
      check_bool "live-limit reason" true
        (match reason with
        | Budget.Fuel | Budget.Deadline | Budget.Cancelled -> true
        | _ -> false);
      let cp = Option.get partial.Rewrite.checkpoint in
      check_int "prefix committed whole batches only" cp.Rewrite.cursor
        (List.length cp.Rewrite.screened_prefix);
      clear_memos ();
      let full, _ = drive ~caps:small_caps ~fuel:40 Rewrite.fg_to_g sigma in
      outcome_sig full.Rewrite.outcome
    | Budget.Complete _ -> Alcotest.fail "fuel 40 must not finish this sweep"
  in
  Alcotest.check Alcotest.string "jobs 1 ≡ jobs 4" (run 1) (run 4)

let test_characterize_truncation () =
  let o = Ontology.axiomatic s_e [ tgd "E(x,y) -> E(y,x)." ] in
  let budget = Budget.make ~rounds:max_int ~facts:max_int ~timeout_s:0.0 () in
  (* an already-expired deadline: the sweep must return an empty (but typed)
     prefix rather than raising or spinning *)
  match Characterize.synthesize ~budget o ~n:2 ~m:0 with
  | Budget.Truncated { reason = Budget.Deadline; partial; _ } ->
    check_bool "partial is a list" true (List.length partial >= 0)
  | Budget.Truncated { reason; _ } ->
    Alcotest.failf "wrong reason: %a" Budget.pp_exhaustion reason
  | Budget.Complete _ -> Alcotest.fail "expired deadline must truncate"

let test_locality_budgeted () =
  let o = Ontology.axiomatic s_e [ tgd "E(x,y) -> E(y,x)." ] in
  (match
     Locality.check_local_up_to
       ~budget:(Budget.make ~rounds:max_int ~facts:max_int ~timeout_s:0.0 ())
       Locality.Plain ~n:2 ~m:0 o 2
   with
  | Budget.Truncated { reason = Budget.Deadline; partial = Locality.Local_on_tests; _ }
    ->
    ()
  | Budget.Truncated _ -> Alcotest.fail "wrong truncation shape"
  | Budget.Complete _ -> Alcotest.fail "expired deadline must truncate");
  (* and an unconstrained budget still completes with the old verdict *)
  match Locality.check_local_up_to Locality.Plain ~n:2 ~m:0 o 2 with
  | Budget.Complete Locality.Local_on_tests -> ()
  | _ -> Alcotest.fail "symmetric closure is (2,0)-local on dom ≤ 2"

let suite =
  [ case "check order and token trip" test_check_order_and_token;
    case "cancellation is write-once" test_cancel_write_once;
    case "with_rounds shares fuel and token" test_with_rounds_shares_fuel;
    case "cache key covers caps only" test_key_covers_caps_only;
    case "deadline truncates the engine chase" test_deadline_engine;
    case "deadline truncates the naive chase" test_deadline_naive;
    case "fuel cap truncates" test_fuel_cap;
    case "pre-cancelled token" test_pre_cancelled;
    case "deterministic_result classification" test_deterministic_result;
    case "theory chase reports rounds/facts" test_theory_out_of_budget;
    case "theory chase under a deadline" test_theory_deadline;
    slow_case "resume ∘ truncate = unbudgeted (G-to-L, fuel)"
      test_resume_g_to_l;
    slow_case "resume ∘ truncate = unbudgeted (FG-to-G, fuel)"
      test_resume_fg_to_g;
    case "cancel + resume on §9.1 Σ_G" test_sep_g_to_l_resume;
    case "cancel + resume on §9.1 Σ_F" test_sep_fg_to_g_resume;
    slow_case "truncation semantics independent of jobs"
      test_truncation_jobs_independent;
    case "synthesis sweep truncates" test_characterize_truncation;
    case "locality scan truncates" test_locality_budgeted
  ]
